// Package reconvirt is a Go implementation of the virtualization framework
// for reconfigurable hardware in distributed systems described in
// "On Virtualization of Reconfigurable Hardware in Distributed Systems"
// (Nadeem, Nadeem & Wong, ICPP 2012), together with every substrate the
// paper depends on: the node and task models, the Resource Management
// System, the Job Submission System, the scheduling strategies, the FPGA
// fabric and soft-core models, the Quipu-style area predictor, the
// gprof-style profiler, the ClustalW aligner of the case study, and the
// DReAMSim-equivalent discrete-event grid simulator.
//
// This file is the public facade: the names most programs need, re-exported
// from the internal packages with constructors for the common flows. See
// the examples/ directory for runnable programs and DESIGN.md for the full
// system inventory.
package reconvirt

import (
	"context"
	"io"

	"repro/internal/bio"
	"repro/internal/capability"
	"repro/internal/casestudy"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/faults"
	"repro/internal/grid"
	"repro/internal/hdl"
	"repro/internal/jss"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/pe"
	"repro/internal/profiler"
	"repro/internal/quipu"
	"repro/internal/rms"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/softcore"
	"repro/internal/stream"
	"repro/internal/task"
)

// Core framework types (the paper's contribution).
type (
	// VirtualGrid is the virtual organization: the hardware-independent
	// layer between application developers and GPP/RPE resources.
	VirtualGrid = core.VirtualGrid
	// Level is a virtualization/abstraction level (Fig. 2).
	Level = core.Level
	// Scenario is a use-case scenario (Fig. 1, Section III).
	Scenario = pe.Scenario
)

// Abstraction levels, most abstract first.
const (
	LevelGrid     = core.LevelGrid
	LevelSoftcore = core.LevelSoftcore
	LevelFabric   = core.LevelFabric
	LevelDevice   = core.LevelDevice
)

// Use-case scenarios.
const (
	SoftwareOnly     = pe.SoftwareOnly
	PredeterminedHW  = pe.PredeterminedHW
	UserDefinedHW    = pe.UserDefinedHW
	DeviceSpecificHW = pe.DeviceSpecificHW
)

// Node and capability model (Eq. 1, Table I).
type (
	// Node is a grid computing node holding GPPs and RPEs.
	Node = node.Node
	// Element is one processing element installed in a node.
	Element = node.Element
	// GPPCaps, FPGACaps, SoftcoreCaps, GPUCaps are Table I parameter sets.
	GPPCaps      = capability.GPPCaps
	FPGACaps     = capability.FPGACaps
	SoftcoreCaps = capability.SoftcoreCaps
	GPUCaps      = capability.GPUCaps
	// Requirements is a conjunction of ExecReq capability predicates.
	Requirements = capability.Requirements
)

// Task model (Eq. 2/3, Figs. 4, 7, 8).
type (
	// Task is the paper's task tuple.
	Task = task.Task
	// ExecReq is a task's execution requirement.
	ExecReq = task.ExecReq
	// Graph is an application task graph.
	Graph = task.Graph
	// Program is a parsed Seq/Par application expression.
	Program = task.Program
)

// Grid services (Figs. 3, 9).
type (
	// Registry is the RMS node registry.
	Registry = rms.Registry
	// Matchmaker maps ExecReqs to candidate processing elements.
	Matchmaker = rms.Matchmaker
	// Candidate is one feasible task↔element mapping (Table II rows).
	Candidate = rms.Candidate
	// Lease binds a task to an element until released.
	Lease = rms.Lease
	// JSS is the job submission system.
	JSS = jss.JSS
	// QoS are submission service attributes.
	QoS = jss.QoS
	// Submission is one submitted application.
	Submission = jss.Submission
)

// Hardware substrates.
type (
	// Fabric is a live FPGA with configuration state.
	Fabric = fabric.Fabric
	// Device is an FPGA part description.
	Device = fabric.Device
	// Bitstream is a device configuration image.
	Bitstream = fabric.Bitstream
	// Design is an HDL accelerator design.
	Design = hdl.Design
	// Toolchain is a provider's synthesis CAD tool.
	Toolchain = hdl.Toolchain
	// SoftCore is a parameterizable VLIW soft-core (ρ-VEX style).
	SoftCore = softcore.Core
)

// Simulation (the DReAMSim equivalent).
type (
	// Engine is the discrete-event grid simulator.
	Engine = grid.Engine
	// EngineConfig parameterizes a simulation run.
	EngineConfig = grid.Config
	// GridSpec describes simulated grid resources.
	GridSpec = grid.GridSpec
	// WorkloadSpec describes a synthetic many-task workload.
	WorkloadSpec = grid.WorkloadSpec
	// Metrics aggregates one run's outcomes.
	Metrics = grid.Metrics
	// Strategy is a task scheduling strategy.
	Strategy = sched.Strategy
	// ScenarioSpec bundles one scenario run's inputs for RunScenario.
	ScenarioSpec = grid.ScenarioSpec
)

// Event core (the simulator's pending-event set). Both schedulers obey
// the same (Time, Priority, seq) total order, so swapping one for the
// other is a pure performance choice: runs stay bit-identical. Select
// per engine via EngineConfig.Scheduler, or per bare simulator via
// sim.WithScheduler.
type (
	// EventScheduler is the pluggable pending-event set contract.
	EventScheduler = sim.Scheduler
	// HeapQueue is the binary-heap scheduler (O(log n) per operation).
	HeapQueue = sim.HeapQueue
	// WheelQueue is the hierarchical timing-wheel scheduler (amortized
	// O(1) near-future operations; the default).
	WheelQueue = sim.WheelQueue
)

// NewHeapQueue returns an empty binary-heap event scheduler.
func NewHeapQueue() *HeapQueue { return sim.NewHeapQueue() }

// NewWheelQueue returns an empty timing-wheel event scheduler.
func NewWheelQueue() *WheelQueue { return sim.NewWheelQueue() }

// Observability (pluggable trace sinks and timeline metrics). The
// engine emits lifecycle events and periodic gauge samples through any
// TraceSink wired into EngineConfig.Tracer or ScenarioSpec.Sinks; see the
// obs package comment for the full sink contract.
type (
	// TraceSink consumes engine lifecycle events and gauge samples.
	TraceSink = obs.TraceSink
	// TraceEvent is one engine lifecycle event.
	TraceEvent = obs.Event
	// TraceSample is one periodic gauge snapshot (enable via
	// EngineConfig.SampleEverySeconds).
	TraceSample = obs.Sample
	// TraceRecorder retains the full stream in memory for post-hoc
	// analysis: CSV dumps, Gantt charts, differential checks.
	TraceRecorder = obs.Recorder
	// ChromeTrace streams a Chrome trace-event JSON document
	// (Perfetto-loadable); Close finalizes it.
	ChromeTrace = obs.Chrome
	// StreamingCSV streams events as CSV with O(1) memory, byte-identical
	// to TraceRecorder.WriteCSV output.
	StreamingCSV = obs.CSV
	// TimelineSink folds gauge samples into virtual-time series and
	// report tables.
	TimelineSink = obs.Timeline
	// NoopSink discards everything (instrumentation-cost baseline).
	NoopSink = obs.Noop
)

// NewChromeTrace returns a Chrome trace-event sink writing to w.
func NewChromeTrace(w io.Writer) *ChromeTrace { return obs.NewChrome(w) }

// NewStreamingCSV returns a bounded-memory CSV event sink writing to w.
func NewStreamingCSV(w io.Writer) *StreamingCSV { return obs.NewCSV(w) }

// NewTimeline returns an empty timeline sink.
func NewTimeline() *TimelineSink { return obs.NewTimeline() }

// MultiSink fans one engine's stream out to several sinks; nil members
// are dropped.
func MultiSink(sinks ...TraceSink) TraceSink { return obs.Multi(sinks...) }

// Fault injection and recovery (availability experiments).
type (
	// FaultSpec parameterizes deterministic fault injection: node
	// crash/recovery cycles, SEU configuration upsets, and link
	// degradation/partitions, plus the lease TTL and retry policy the
	// recovery machinery uses. Attach one to a ScenarioSpec or SweepPoint.
	FaultSpec = faults.Spec
	// RetryPolicy caps and paces fault-induced task retries.
	RetryPolicy = faults.RetryPolicy
	// FaultEvent is one scheduled fault occurrence.
	FaultEvent = faults.Event
)

// DefaultFaults returns a moderate fault model; adjust rates as needed
// and set HorizonSeconds (or leave it zero to cover the workload).
func DefaultFaults() FaultSpec { return faults.Default() }

// FaultSchedule derives the deterministic fault timeline a spec produces
// for the given nodes — useful for inspecting what a seed will inject.
func FaultSchedule(rng *sim.RNG, spec FaultSpec, nodeIDs []string) ([]FaultEvent, error) {
	return faults.Schedule(rng, spec, nodeIDs)
}

// Parallel experiment sweeps (the DReAMSim evaluation loop).
type (
	// SweepSpec describes a parallel sweep: points × seeds fanned across a
	// bounded worker pool.
	SweepSpec = grid.SweepSpec
	// SweepPoint is one (strategy, config, grid, workload) cell.
	SweepPoint = grid.SweepPoint
	// SweepResult is a completed (or cancelled) sweep.
	SweepResult = grid.SweepResult
	// Replica identifies one point × seed replica.
	Replica = grid.Replica
	// ReplicaResult is one replica's metrics or error.
	ReplicaResult = grid.ReplicaResult
	// PointSummary is a point's mean/stddev/95%-CI aggregate across seeds.
	PointSummary = grid.PointSummary
	// Summary is a mean/stddev/95%-CI condensation of replicated values.
	Summary = sim.Summary
)

// NewVirtualGrid creates an empty virtual organization. Pass a Toolchain
// via Options to enable the user-defined-hardware scenario.
func NewVirtualGrid(opts core.Options) (*VirtualGrid, error) { return core.NewVirtualGrid(opts) }

// GridOptions configure NewVirtualGrid.
type GridOptions = core.Options

// NewNode creates an empty grid node.
func NewNode(id string) (*Node, error) { return node.New(id) }

// NewToolchain creates a provider CAD toolchain for the given families.
func NewToolchain(vendor string, families ...string) (*Toolchain, error) {
	return hdl.NewToolchain(vendor, families...)
}

// LookupIP returns a built-in OpenCores-style library design.
func LookupIP(name string) (*Design, error) { return hdl.LookupIP(name) }

// LookupDevice returns a catalog FPGA part.
func LookupDevice(name string) (Device, error) { return fabric.LookupDevice(name) }

// NewFullBitstream builds a user-supplied full-device bitstream for the
// device-specific-hardware scenario.
func NewFullBitstream(id, design string, dev Device, usedSlices int) *Bitstream {
	return fabric.FullBitstream(id, design, dev, usedSlices)
}

// RVEX returns the ρ-VEX-style soft-core preset.
func RVEX(issueWidth, clusters int) (*SoftCore, error) { return softcore.RVEX(issueWidth, clusters) }

// ParseApp parses a Seq/Par application expression such as
// "App{Seq(T2), Par(T4,T1,T7), Seq(T5,T10)}".
func ParseApp(src string) (*Program, error) { return task.ParseApp(src) }

// NewGraph returns an empty application task graph.
func NewGraph() *Graph { return task.NewGraph() }

// NewMatchmaker builds a matchmaker over a registry. The toolchain may be
// nil (a provider without CAD tools never serves user-defined hardware).
func NewMatchmaker(reg *Registry, tc *Toolchain) (*Matchmaker, error) {
	return rms.NewMatchmaker(reg, tc)
}

// NewEngine wires a simulator around a registry and matchmaker.
func NewEngine(cfg EngineConfig, reg *Registry, mm *Matchmaker) (*Engine, error) {
	return grid.NewEngine(cfg, reg, mm)
}

// DefaultEngineConfig returns the default simulation configuration.
func DefaultEngineConfig() EngineConfig { return grid.DefaultConfig() }

// BuildGrid constructs a registry from a grid spec.
func BuildGrid(spec GridSpec) (*Registry, error) { return grid.BuildGrid(spec) }

// RunScenario builds a grid, generates a workload, and simulates it. The
// context cancels the run mid-simulation; cancelled runs return partial
// metrics together with the context's error.
func RunScenario(ctx context.Context, spec ScenarioSpec) (*Metrics, error) {
	return grid.RunScenario(ctx, spec)
}

// RunSweep fans a sweep's point × seed replicas across a bounded worker
// pool, each replica an independent simulation with a deterministically
// split seed. Cancelling ctx stops the sweep promptly and returns the
// partial result together with ctx's error. See grid.Sweep for the full
// contract.
func RunSweep(ctx context.Context, spec SweepSpec) (*SweepResult, error) {
	return grid.Sweep(ctx, spec)
}

// Strategies returns every built-in scheduling strategy.
func Strategies() []Strategy { return sched.All() }

// StrategyByName returns a built-in strategy by name; unknown names report
// an error wrapping sched.ErrUnknownStrategy.
func StrategyByName(name string) (Strategy, error) { return sched.ByName(name) }

// CaseStudyNodes builds the Section V grid (Fig. 5).
func CaseStudyNodes() (*Registry, error) { return casestudy.BuildNodes() }

// CaseStudyTasks builds the Section V tasks (Fig. 6).
func CaseStudyTasks() ([]*Task, error) { return casestudy.Tasks() }

// TableII regenerates the paper's mapping table.
func TableII() ([]casestudy.TableIIRow, error) { return casestudy.TableII() }

// AlignProteins runs the ClustalW-style pipeline of the case study. Pass a
// profiler from NewProfiler to collect the Fig. 10 kernel profile.
func AlignProteins(seqs []bio.Sequence, prof *profiler.Profiler) (*bio.Result, error) {
	return bio.Align(seqs, prof, bio.DefaultOptions())
}

// NewProfiler returns a gprof-style instrumenting profiler.
func NewProfiler() *profiler.Profiler { return profiler.New() }

// PredictArea runs the Quipu-style predictor on kernel metrics.
func PredictArea(m quipu.Metrics) (quipu.Prediction, error) {
	return quipu.Default().Predict(m)
}

// NewRNG returns the deterministic random generator simulations use.
func NewRNG(seed uint64) *sim.RNG { return sim.NewRNG(seed) }

// Streaming extension (the paper's future work).
type (
	// StreamManager admits continuous dataflows with throughput
	// guarantees onto grid elements.
	StreamManager = stream.Manager
	// StreamSpec describes a streaming session request.
	StreamSpec = stream.Spec
	// StreamSession is an admitted stream holding its reservation.
	StreamSession = stream.Session
)

// NewStreamManager builds a streaming manager over a matchmaker and a
// simulator for session timing.
func NewStreamManager(mm *Matchmaker, s *sim.Simulator) (*StreamManager, error) {
	return stream.NewManager(mm, s)
}

// NewSimulator returns a fresh discrete-event simulator (for callers
// driving streams or custom models directly rather than via Engine).
func NewSimulator() *sim.Simulator { return sim.NewSimulator() }

// FamilyOptions control synthetic protein-family generation for the
// bioinformatics case study.
type FamilyOptions = bio.FamilyOptions

// GenerateProteinFamily produces a synthetic homologous protein family.
func GenerateProteinFamily(rng *sim.RNG, opts FamilyOptions) ([]bio.Sequence, error) {
	return bio.GenerateFamily(rng, opts)
}

// DefaultFamily matches the scale of a BioBench ClustalW input.
func DefaultFamily() FamilyOptions { return bio.DefaultFamily() }

// PairalignMetrics returns the measured software-complexity metrics of the
// ClustalW pairalign kernel (the case study's Quipu input).
func PairalignMetrics() quipu.Metrics { return quipu.PairalignMetrics() }

// MalignMetrics returns the measured metrics of the malign kernel.
func MalignMetrics() quipu.Metrics { return quipu.MalignMetrics() }

// Multi-tenant control plane (the long-running RMS server behind
// cmd/rmsd; see README "Control plane").
type (
	// ControlPlane is the sharded multi-tenant RMS server.
	ControlPlane = controlplane.Server
	// ControlPlaneConfig parameterizes a ControlPlane.
	ControlPlaneConfig = controlplane.Config
	// ServiceTier is an RC3E-style provisioning tier.
	ServiceTier = controlplane.Tier
	// WireRequest and WireResponse are the line-delimited JSON wire
	// protocol messages.
	WireRequest  = controlplane.Request
	WireResponse = controlplane.Response
)

// The RC3E provisioning tiers.
const (
	TierFull        = controlplane.TierFull
	TierVirtualized = controlplane.TierVirtualized
	TierBackground  = controlplane.TierBackground
)

// NewControlPlane starts a control plane; the caller must Shutdown it.
func NewControlPlane(cfg ControlPlaneConfig) (*ControlPlane, error) {
	return controlplane.New(cfg)
}

// DefaultControlPlaneConfig returns a deterministic quota-free
// configuration.
func DefaultControlPlaneConfig() ControlPlaneConfig {
	return controlplane.DefaultConfig()
}

// ErrQuotaExceeded is the typed rejection a submission over its cost
// quota returns (errors.Is-matchable).
var ErrQuotaExceeded = jss.ErrQuotaExceeded

// Deprecated shims, kept one release for migration; reconlint's
// deprecatedshim analyzer flags any new use. See DESIGN.md for the
// old-name → new-name table and the removal plan.

// SimConfig is the former name of EngineConfig.
//
// Deprecated: use EngineConfig.
type SimConfig = EngineConfig

// DefaultSimConfig is the former name of DefaultEngineConfig.
//
// Deprecated: use DefaultEngineConfig.
func DefaultSimConfig() EngineConfig { return DefaultEngineConfig() }
