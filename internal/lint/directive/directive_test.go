package directive_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"repro/internal/lint/directive"
)

const src = `package p

func a() {
	_ = 1 //reconlint:allow detrand timer is wall-clock only
	//reconlint:allow maporder,lockcheck shared suppression with reason
	_ = 2
	_ = 3
	_ = 4 //reconlint:allow all everything hushed here
	_ = 5
	_ = 6 //reconlint:allow detrand
	//reconlint:allow
	_ = 7
}
`

func parse(t *testing.T) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestParse(t *testing.T) {
	_, files := parse(t)
	allows, probs := directive.Parse(files)
	if len(allows) != 3 {
		t.Fatalf("got %d well-formed directives, want 3: %+v", len(allows), allows)
	}
	if allows[1].Analyzers[0] != "maporder" || allows[1].Analyzers[1] != "lockcheck" {
		t.Errorf("comma list parsed as %v", allows[1].Analyzers)
	}
	if allows[0].Reason != "timer is wall-clock only" {
		t.Errorf("reason parsed as %q", allows[0].Reason)
	}
	if len(probs) != 2 {
		t.Fatalf("got %d problems, want 2 (missing reason, empty directive): %+v", len(probs), probs)
	}
}

// lineStart returns a Pos on the given 1-based line of the parsed file.
func lineStart(fset *token.FileSet, line int) token.Pos {
	var pos token.Pos
	fset.Iterate(func(f *token.File) bool {
		pos = f.LineStart(line)
		return false
	})
	return pos
}

func TestSuppresses(t *testing.T) {
	fset, files := parse(t)
	cases := []struct {
		analyzer string
		line     int
		want     bool
	}{
		{"detrand", 4, true},   // trailing directive, same line
		{"maporder", 4, false}, // different analyzer
		{"maporder", 6, true},  // directive on the line above
		{"lockcheck", 6, true}, // second name in the comma list
		{"detrand", 6, false},  // not named by the list
		{"maporder", 7, false}, // directive reaches only one line down
		{"detrand", 8, true},   // "all" covers every analyzer
		{"ctxflow", 8, true},   // "all" covers every analyzer
		{"detrand", 10, false}, // malformed (no reason) suppresses nothing
		{"detrand", 12, false}, // malformed (empty) suppresses nothing
	}
	for _, c := range cases {
		sup := directive.Suppresses(fset, files, c.analyzer)
		if got := sup(lineStart(fset, c.line)); got != c.want {
			t.Errorf("Suppresses(%s, line %d) = %v, want %v", c.analyzer, c.line, got, c.want)
		}
	}
}

// parseSrc parses arbitrary fixture source.
func parseSrc(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

// TestSuppressesMultiLineStatement pins the bugfix: a directive above a
// statement that wraps across lines must cover the statement's whole
// span, not just the first line.
func TestSuppressesMultiLineStatement(t *testing.T) {
	const multi = `package p

func f(a, b, c string) string { return a + b + c }

func g() string {
	//reconlint:allow detrand wrapped call is one logical statement
	return f(
		"one",
		"two",
		"three",
	)
}

func h() string {
	s := f( //reconlint:allow detrand trailing form covers the span too
		"x",
		"y",
		"z",
	)
	return s
}

func unrelated() string {
	return f(
		"not",
		"covered",
		"at all",
	)
}
`
	fset, files := parseSrc(t, multi)
	sup := directive.Suppresses(fset, files, "detrand")
	for line := 7; line <= 11; line++ { // leading form: whole return statement
		if !sup(lineStart(fset, line)) {
			t.Errorf("line %d of the wrapped statement not suppressed", line)
		}
	}
	for line := 15; line <= 19; line++ { // trailing form: whole assignment
		if !sup(lineStart(fset, line)) {
			t.Errorf("line %d of the trailing-form statement not suppressed", line)
		}
	}
	if sup(lineStart(fset, 12)) {
		t.Error("line after the wrapped statement must not be suppressed")
	}
	for line := 24; line <= 28; line++ {
		if sup(lineStart(fset, line)) {
			t.Errorf("undirected function suppressed at line %d", line)
		}
	}
}

// TestEmptyReasonRejected pins the other half of the bugfix: reasons
// with no word characters are rejected with a clear error.
func TestEmptyReasonRejected(t *testing.T) {
	const bad = `package p

func a() {
	_ = 1 //reconlint:allow detrand
	_ = 2 //reconlint:allow detrand ...
	_ = 3 //reconlint:allow detrand --- !!!
	_ = 4 //reconlint:allow detrand ok reason 42
}
`
	_, files := parseSrc(t, bad)
	allows, probs := directive.Parse(files)
	if len(allows) != 1 {
		t.Fatalf("got %d well-formed directives, want 1: %+v", len(allows), allows)
	}
	if len(probs) != 3 {
		t.Fatalf("got %d problems, want 3: %+v", len(probs), probs)
	}
	for _, p := range probs {
		if p.Message != "reconlint:allow directive has an empty reason; justify the suppression" {
			t.Errorf("unexpected problem message %q", p.Message)
		}
	}
}

// TestHotpaths checks marker attachment: doc-comment markers mark their
// function, detached markers are problems.
func TestHotpaths(t *testing.T) {
	const src = `package p

// Hot dispatches events.
//
//reconlint:hotpath once per event
func Hot() {}

//reconlint:hotpath floating, attached to nothing

var X = 1

func Cold() {
	//reconlint:hotpath inside a body marks nothing
}
`
	_, files := parseSrc(t, src)
	marked, probs := directive.Hotpaths(files)
	if len(marked) != 1 {
		t.Fatalf("got %d marked functions, want 1", len(marked))
	}
	for fd := range marked {
		if fd.Name.Name != "Hot" {
			t.Errorf("marked function is %s, want Hot", fd.Name.Name)
		}
	}
	if len(probs) != 2 {
		t.Fatalf("got %d detached-marker problems, want 2: %+v", len(probs), probs)
	}
}
