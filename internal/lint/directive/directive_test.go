package directive_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"repro/internal/lint/directive"
)

const src = `package p

func a() {
	_ = 1 //reconlint:allow detrand timer is wall-clock only
	//reconlint:allow maporder,lockcheck shared suppression with reason
	_ = 2
	_ = 3
	_ = 4 //reconlint:allow all everything hushed here
	_ = 5
	_ = 6 //reconlint:allow detrand
	//reconlint:allow
	_ = 7
}
`

func parse(t *testing.T) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestParse(t *testing.T) {
	_, files := parse(t)
	allows, probs := directive.Parse(files)
	if len(allows) != 3 {
		t.Fatalf("got %d well-formed directives, want 3: %+v", len(allows), allows)
	}
	if allows[1].Analyzers[0] != "maporder" || allows[1].Analyzers[1] != "lockcheck" {
		t.Errorf("comma list parsed as %v", allows[1].Analyzers)
	}
	if allows[0].Reason != "timer is wall-clock only" {
		t.Errorf("reason parsed as %q", allows[0].Reason)
	}
	if len(probs) != 2 {
		t.Fatalf("got %d problems, want 2 (missing reason, empty directive): %+v", len(probs), probs)
	}
}

// lineStart returns a Pos on the given 1-based line of the parsed file.
func lineStart(fset *token.FileSet, line int) token.Pos {
	var pos token.Pos
	fset.Iterate(func(f *token.File) bool {
		pos = f.LineStart(line)
		return false
	})
	return pos
}

func TestSuppresses(t *testing.T) {
	fset, files := parse(t)
	cases := []struct {
		analyzer string
		line     int
		want     bool
	}{
		{"detrand", 4, true},   // trailing directive, same line
		{"maporder", 4, false}, // different analyzer
		{"maporder", 6, true},  // directive on the line above
		{"lockcheck", 6, true}, // second name in the comma list
		{"detrand", 6, false},  // not named by the list
		{"maporder", 7, false}, // directive reaches only one line down
		{"detrand", 8, true},   // "all" covers every analyzer
		{"ctxflow", 8, true},   // "all" covers every analyzer
		{"detrand", 10, false}, // malformed (no reason) suppresses nothing
		{"detrand", 12, false}, // malformed (empty) suppresses nothing
	}
	for _, c := range cases {
		sup := directive.Suppresses(fset, files, c.analyzer)
		if got := sup(lineStart(fset, c.line)); got != c.want {
			t.Errorf("Suppresses(%s, line %d) = %v, want %v", c.analyzer, c.line, got, c.want)
		}
	}
}
