// Package directive parses //reconlint:allow suppression comments,
// //reconlint:hotpath region markers, and //reconlint:sanitized trust
// assertions, and filters analyzer diagnostics through them.
//
// Grammar, one directive per comment line:
//
//	//reconlint:allow <analyzer>[,<analyzer>...] <reason>
//	//reconlint:hotpath
//	//reconlint:sanitized <reason>
//
// The analyzer list may be "all". The reason is mandatory and must
// contain at least one word character: a suppression without a recorded
// justification is itself reported as a finding, so the determinism
// contract stays auditable. A directive suppresses matching diagnostics
// on its own line, on the line directly below it, and — when the line
// below starts a statement or declaration that spans several lines —
// on every line of that statement, so an allow above a wrapped call
// covers the whole call.
//
// //reconlint:hotpath marks the function whose doc comment carries it
// as a hot path: the hotalloc analyzer polices it (and its same-package
// callees) for per-event allocations. A hotpath marker that is not
// attached to a function declaration is reported as a problem.
//
// //reconlint:sanitized is the taint layer's escape hatch: values read
// and sinks evaluated on the covered lines are treated as trusted by
// the wiretaint/sizecap/logtaint analyzers. Unlike allow (which hides
// one analyzer's diagnostic), sanitized changes the dataflow itself —
// downstream flows of the covered value stay clean too — so the
// mandatory reason must say why the input is trusted (for example an
// operator-supplied flag rather than tenant wire input).
package directive

import (
	"go/ast"
	"go/token"
	"strings"
	"unicode"
)

const (
	prefix          = "//reconlint:allow"
	hotpathPrefix   = "//reconlint:hotpath"
	sanitizedPrefix = "//reconlint:sanitized"
)

// Allow is one parsed directive.
type Allow struct {
	Pos       token.Pos
	Analyzers []string // lower-case names, or ["all"]
	Reason    string
}

// Problem is a malformed directive (missing analyzer list or reason).
type Problem struct {
	Pos     token.Pos
	Message string
}

// ownDirective reports whether comment text is our directive with the
// given prefix (and not e.g. //reconlint:allowfoo), returning the rest.
func ownDirective(text, prefix string) (string, bool) {
	if !strings.HasPrefix(text, prefix) {
		return "", false
	}
	rest := strings.TrimPrefix(text, prefix)
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false
	}
	return rest, true
}

// hasWord reports whether s contains at least one letter or digit — the
// minimum for a reason to say anything.
func hasWord(s string) bool {
	return strings.IndexFunc(s, func(r rune) bool {
		return unicode.IsLetter(r) || unicode.IsDigit(r)
	}) >= 0
}

// Parse extracts every //reconlint:allow directive from the files,
// returning well-formed directives and the problems found in malformed
// ones. A malformed directive never suppresses anything.
func Parse(files []*ast.File) ([]Allow, []Problem) {
	var allows []Allow
	var probs []Problem
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := ownDirective(c.Text, prefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					probs = append(probs, Problem{Pos: c.Pos(),
						Message: "reconlint:allow directive names no analyzer"})
					continue
				}
				reason := strings.Join(fields[1:], " ")
				if len(fields) < 2 || !hasWord(reason) {
					probs = append(probs, Problem{Pos: c.Pos(),
						Message: "reconlint:allow directive has an empty reason; justify the suppression"})
					continue
				}
				names := strings.Split(strings.ToLower(fields[0]), ",")
				allows = append(allows, Allow{
					Pos:       c.Pos(),
					Analyzers: names,
					Reason:    reason,
				})
			}
		}
	}
	return allows, probs
}

// Hotpaths returns the function declarations marked //reconlint:hotpath
// via their doc comment, plus problems for markers that are attached to
// nothing (a detached marker silently policing no function would be a
// false sense of coverage).
func Hotpaths(files []*ast.File) (map[*ast.FuncDecl]bool, []Problem) {
	marked := make(map[*ast.FuncDecl]bool)
	attached := make(map[*ast.Comment]bool)
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				if _, ok := ownDirective(c.Text, hotpathPrefix); ok {
					marked[fd] = true
					attached[c] = true
				}
			}
		}
	}
	var probs []Problem
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if _, ok := ownDirective(c.Text, hotpathPrefix); ok && !attached[c] {
					probs = append(probs, Problem{Pos: c.Pos(),
						Message: "reconlint:hotpath marker is not attached to a function declaration"})
				}
			}
		}
	}
	return marked, probs
}

// Sanitized is one parsed //reconlint:sanitized directive.
type Sanitized struct {
	Pos    token.Pos
	Reason string
}

// ParseSanitized extracts every //reconlint:sanitized directive,
// returning well-formed directives and problems for reasonless ones. A
// malformed directive sanitizes nothing: asserting trust without saying
// why is exactly the blind spot the taint layer exists to close.
func ParseSanitized(files []*ast.File) ([]Sanitized, []Problem) {
	var out []Sanitized
	var probs []Problem
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := ownDirective(c.Text, sanitizedPrefix)
				if !ok {
					continue
				}
				reason := strings.TrimSpace(rest)
				if !hasWord(reason) {
					probs = append(probs, Problem{Pos: c.Pos(),
						Message: "reconlint:sanitized directive has an empty reason; say why the input is trusted"})
					continue
				}
				out = append(out, Sanitized{Pos: c.Pos(), Reason: reason})
			}
		}
	}
	return out, probs
}

// SanitizedLines returns the covered lines of every well-formed
// //reconlint:sanitized directive, keyed by filename, with the same
// span rules as allow suppression: the directive's own line, the line
// below, and the whole span of a statement starting on either.
func SanitizedLines(fset *token.FileSet, files []*ast.File) map[string]map[int]bool {
	sans, _ := ParseSanitized(files)
	covered := make(map[string]map[int]bool)
	var spans map[string]map[int]int // built lazily, like Suppresses
	for _, s := range sans {
		if spans == nil {
			spans = spanStarts(fset, files)
		}
		p := fset.Position(s.Pos)
		lines := covered[p.Filename]
		if lines == nil {
			lines = make(map[int]bool)
			covered[p.Filename] = lines
		}
		lines[p.Line] = true
		lines[p.Line+1] = true
		for _, start := range []int{p.Line, p.Line + 1} {
			if end, ok := spans[p.Filename][start]; ok {
				for l := start; l <= end; l++ {
					lines[l] = true
				}
			}
		}
	}
	return covered
}

// spanStarts maps "start line" -> largest "end line" over every
// statement and declaration in the files, per filename. It lets an
// allow directive on the line above a multi-line statement cover the
// statement's whole span.
func spanStarts(fset *token.FileSet, files []*ast.File) map[string]map[int]int {
	spans := make(map[string]map[int]int)
	note := func(n ast.Node) {
		start := fset.Position(n.Pos())
		end := fset.Position(n.End())
		byLine := spans[start.Filename]
		if byLine == nil {
			byLine = make(map[int]int)
			spans[start.Filename] = byLine
		}
		if end.Line > byLine[start.Line] {
			byLine[start.Line] = end.Line
		}
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case ast.Stmt, ast.Decl, *ast.Field:
				note(n)
			}
			return true
		})
	}
	return spans
}

// Suppresses returns a predicate reporting whether a diagnostic from
// the named analyzer at a position is covered by an allow directive.
// A diagnostic at line L is suppressed when a directive covering the
// analyzer (or "all") sits at line L or line L-1 of the same file, or
// when the directive sits directly above a statement whose span
// includes L. Diagnostic and directive positions must come from the
// same fset.
func Suppresses(fset *token.FileSet, files []*ast.File, analyzer string) func(pos token.Pos) bool {
	allows, _ := Parse(files)
	name := strings.ToLower(analyzer)
	var spans map[string]map[int]int // built lazily: most packages have no allows
	suppressed := make(map[string]map[int]bool)
	for _, a := range allows {
		match := false
		for _, n := range a.Analyzers {
			if n == "all" || n == name {
				match = true
				break
			}
		}
		if !match {
			continue
		}
		if spans == nil {
			spans = spanStarts(fset, files)
		}
		p := fset.Position(a.Pos)
		lines := suppressed[p.Filename]
		if lines == nil {
			lines = make(map[int]bool)
			suppressed[p.Filename] = lines
		}
		lines[p.Line] = true
		lines[p.Line+1] = true
		// A statement starting on the directive's line (trailing form) or
		// the line below (leading form) is covered across its whole span.
		for _, start := range []int{p.Line, p.Line + 1} {
			if end, ok := spans[p.Filename][start]; ok {
				for l := start; l <= end; l++ {
					lines[l] = true
				}
			}
		}
	}
	return func(pos token.Pos) bool {
		p := fset.Position(pos)
		return suppressed[p.Filename][p.Line]
	}
}
