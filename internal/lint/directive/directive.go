// Package directive parses //reconlint:allow suppression comments and
// filters analyzer diagnostics through them.
//
// Grammar, one directive per comment line:
//
//	//reconlint:allow <analyzer>[,<analyzer>...] <reason>
//
// The analyzer list may be "all". The reason is mandatory: a
// suppression without a recorded justification is itself reported as a
// finding, so the determinism contract stays auditable. A directive
// suppresses matching diagnostics on its own line and on the line
// directly below it (i.e. it may trail the offending statement or sit
// on the line above it).
package directive

import (
	"go/ast"
	"go/token"
	"strings"
)

const prefix = "//reconlint:allow"

// Allow is one parsed directive.
type Allow struct {
	Pos       token.Pos
	Analyzers []string // lower-case names, or ["all"]
	Reason    string
}

// Problem is a malformed directive (missing analyzer list or reason).
type Problem struct {
	Pos     token.Pos
	Message string
}

// Parse extracts every //reconlint:allow directive from the files,
// returning well-formed directives and the problems found in malformed
// ones.
func Parse(files []*ast.File) ([]Allow, []Problem) {
	var allows []Allow
	var probs []Problem
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, prefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, prefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //reconlint:allowfoo — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					probs = append(probs, Problem{Pos: c.Pos(),
						Message: "reconlint:allow directive names no analyzer"})
					continue
				}
				if len(fields) < 2 {
					probs = append(probs, Problem{Pos: c.Pos(),
						Message: "reconlint:allow directive has no reason; justify the suppression"})
					continue
				}
				names := strings.Split(strings.ToLower(fields[0]), ",")
				allows = append(allows, Allow{
					Pos:       c.Pos(),
					Analyzers: names,
					Reason:    strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return allows, probs
}

// Suppresses returns a predicate reporting whether a diagnostic from
// the named analyzer at a position is covered by an allow directive.
// A diagnostic at line L is suppressed when a directive covering the
// analyzer (or "all") sits at line L or line L-1 of the same file.
// Diagnostic and directive positions must come from the same fset.
func Suppresses(fset *token.FileSet, files []*ast.File, analyzer string) func(pos token.Pos) bool {
	allows, _ := Parse(files)
	suppressed := make(map[string]map[int]bool) // filename -> line set
	name := strings.ToLower(analyzer)
	for _, a := range allows {
		match := false
		for _, n := range a.Analyzers {
			if n == "all" || n == name {
				match = true
				break
			}
		}
		if !match {
			continue
		}
		p := fset.Position(a.Pos)
		lines := suppressed[p.Filename]
		if lines == nil {
			lines = make(map[int]bool)
			suppressed[p.Filename] = lines
		}
		lines[p.Line] = true
		lines[p.Line+1] = true
	}
	return func(pos token.Pos) bool {
		p := fset.Position(pos)
		return suppressed[p.Filename][p.Line]
	}
}
