package loader_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint/loader"
)

func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const goMod = "module loadvictim\n\ngo 1.22\n"

// TestLoadAllClosure checks LoadAll returns both the matched roots and
// the dependency closure, dependencies first.
func TestLoadAllClosure(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":     goMod,
		"lib/lib.go": "package lib\n\nfunc V() int { return 1 }\n",
		"app/app.go": "package app\n\nimport \"loadvictim/lib\"\n\nfunc Use() int { return lib.V() }\n",
	})
	roots, all, err := loader.LoadAll(dir, "./app")
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 || roots[0].ImportPath != "loadvictim/app" {
		t.Fatalf("roots = %+v, want just loadvictim/app", roots)
	}
	var paths []string
	for _, p := range all {
		paths = append(paths, p.ImportPath)
	}
	joined := strings.Join(paths, " ")
	if !strings.Contains(joined, "loadvictim/lib") || !strings.Contains(joined, "loadvictim/app") {
		t.Fatalf("closure = %v, want lib and app", paths)
	}
	if strings.Index(joined, "loadvictim/lib") > strings.Index(joined, "loadvictim/app") {
		t.Errorf("closure not in dependency order: %v", paths)
	}
	for _, p := range all {
		if len(p.TypeErrors) != 0 {
			t.Errorf("%s has type errors: %v", p.ImportPath, p.TypeErrors)
		}
	}
}

// TestImportCycle checks a cyclic module surfaces a load error rather
// than hanging or silently analyzing half a program.
func TestImportCycle(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod": goMod,
		"a/a.go": "package a\n\nimport \"loadvictim/b\"\n\nfunc A() int { return b.B() }\n",
		"b/b.go": "package b\n\nimport \"loadvictim/a\"\n\nfunc B() int { return a.A() }\n",
	})
	_, _, err := loader.LoadAll(dir, "./...")
	if err == nil {
		t.Fatal("expected an import-cycle error, got nil")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("error should mention the cycle: %v", err)
	}
}

// TestBuildTagExcluded checks files excluded by build constraints are
// not parsed or analyzed: `go list` GoFiles is the source of truth.
func TestBuildTagExcluded(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"go.mod":        goMod,
		"pkg/pkg.go":    "package pkg\n\nfunc Live() int { return 1 }\n",
		"pkg/gated.go":  "//go:build neverenabled\n\npackage pkg\n\nfunc Gated() int { return brokenReference }\n",
		"pkg/other.txt": "not go at all",
	})
	roots, _, err := loader.LoadAll(dir, "./pkg")
	if err != nil {
		t.Fatal(err)
	}
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	pkg := roots[0]
	if len(pkg.TypeErrors) != 0 {
		t.Errorf("excluded file leaked into type-checking: %v", pkg.TypeErrors)
	}
	if len(pkg.Syntax) != 1 {
		t.Errorf("got %d parsed files, want 1 (gated.go excluded)", len(pkg.Syntax))
	}
	name := pkg.Fset.Position(pkg.Syntax[0].Pos()).Filename
	if !strings.HasSuffix(name, "pkg.go") {
		t.Errorf("parsed file = %s, want pkg.go", name)
	}
}
