// Package loader loads and type-checks Go packages for the reconlint
// driver without depending on golang.org/x/tools/go/packages (the build
// environment is offline). It shells out to `go list -json` for package
// metadata and dependency order, parses the listed sources, and
// type-checks them with go/types; standard-library imports resolve
// from the build cache's compiled export data when `go list -export`
// can supply it, and fall back to the stdlib source importer when it
// can't.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Syntax     []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects this package's parse and type-check errors.
	// Analyzers still run over partially-checked packages, but the
	// driver reports these separately (a broken build is not a lint
	// finding).
	TypeErrors []error
}

// listEntry is the subset of `go list -json` output we consume.
type listEntry struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	Export     string
}

// goList runs `go list -json` over patterns in dir and decodes the
// stream of package objects. With export set it also asks the build
// cache for each dependency's compiled export data (and passes -e so a
// package that fails to compile is still listed, just without export
// data — the caller falls back to type-checking from source).
func goList(dir string, deps, export bool, patterns []string) ([]listEntry, error) {
	args := []string{"list", "-json=ImportPath,Name,Dir,GoFiles,Standard,Export"}
	if deps {
		args = append(args, "-deps")
	}
	if export {
		args = append(args, "-e", "-export")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var entries []listEntry
	dec := json.NewDecoder(out)
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, fmt.Errorf("loader: decoding go list output: %w", err)
		}
		entries = append(entries, e)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("loader: go list %v: %w\n%s", patterns, err, stderr.String())
	}
	return entries, nil
}

// chainImporter resolves module-local packages from an in-progress map
// and everything else (the standard library) from the source importer.
type chainImporter struct {
	local map[string]*types.Package
	std   types.ImporterFrom
	dir   string
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, c.dir, 0)
}

func (c *chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := c.local[path]; ok && p != nil {
		return p, nil
	}
	return c.std.ImportFrom(path, dir, mode)
}

// Load type-checks the packages matched by patterns (relative to dir)
// plus their in-module dependencies, and returns the matched packages
// in `go list` order. Test files are not loaded: reconlint polices
// library and command code, not tests.
func Load(dir string, patterns ...string) ([]*Package, error) {
	roots, _, err := LoadAll(dir, patterns...)
	return roots, err
}

// LoadAll is Load plus the closure: it returns both the matched root
// packages and every in-module package that was type-checked to serve
// them (dependencies included, in dependency order). Whole-program
// passes — the interprocedural dataflow graph in particular — need the
// closure; per-package analyzers iterate the roots.
func LoadAll(dir string, patterns ...string) (rootPkgs, allPkgs []*Package, err error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	roots, err := goList(dir, false, false, patterns)
	if err != nil {
		return nil, nil, err
	}
	all, err := goList(dir, true, true, patterns)
	if err != nil {
		return nil, nil, err
	}

	fset := token.NewFileSet()
	std, err := stdImporter(fset, all)
	if err != nil {
		return nil, nil, err
	}
	local := make(map[string]*types.Package)
	imp := &chainImporter{local: local, std: std, dir: dir}

	checked := make(map[string]*Package)
	// `go list -deps` emits dependencies before dependents, so a single
	// forward sweep type-checks every import before its importers.
	for _, e := range all {
		if e.Standard || len(e.GoFiles) == 0 {
			continue
		}
		pkg := checkOne(fset, imp, e)
		local[e.ImportPath] = pkg.Types
		checked[e.ImportPath] = pkg
		allPkgs = append(allPkgs, pkg)
	}

	rootPkgs = make([]*Package, 0, len(roots))
	for _, r := range roots {
		if p, ok := checked[r.ImportPath]; ok {
			rootPkgs = append(rootPkgs, p)
		}
	}
	return rootPkgs, allPkgs, nil
}

// stdImporter picks the standard-library importer: compiled export
// data from the build cache when `go list -export` produced it for
// every stdlib dependency, else type-checking the stdlib from source.
// The choice is all-or-nothing — mixing the two importers would
// materialize a shared dependency twice and break type identity, so a
// single gap sends the whole run down the (slower, self-contained)
// source path.
func stdImporter(fset *token.FileSet, all []listEntry) (types.ImporterFrom, error) {
	exports := make(map[string]string)
	complete := true
	for _, e := range all {
		if !e.Standard || e.ImportPath == "unsafe" {
			continue
		}
		if e.Export == "" {
			complete = false
			break
		}
		exports[e.ImportPath] = e.Export
	}
	if complete && len(exports) > 0 {
		lookup := func(path string) (io.ReadCloser, error) {
			file, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("loader: no export data for %q", path)
			}
			return os.Open(file)
		}
		if gc, ok := importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom); ok {
			return gc, nil
		}
	}
	src, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("loader: source importer unavailable")
	}
	return src, nil
}

// checkOne parses and type-checks one package.
func checkOne(fset *token.FileSet, imp types.Importer, e listEntry) *Package {
	pkg := &Package{ImportPath: e.ImportPath, Name: e.Name, Dir: e.Dir, Fset: fset}
	for _, name := range e.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(e.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			pkg.TypeErrors = append(pkg.TypeErrors, err)
		}
		if f != nil {
			pkg.Syntax = append(pkg.Syntax, f)
		}
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(e.ImportPath, fset, pkg.Syntax, pkg.Info)
	pkg.Types = tpkg
	return pkg
}
