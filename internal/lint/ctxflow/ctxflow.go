// Package ctxflow implements the reconlint analyzer that enforces
// context propagation through blocking library entry points.
//
// The sweep engine's cancellation contract (Engine.Run, grid.Sweep)
// only holds if every exported entry point that reaches a
// context-aware callee threads a caller-supplied context.Context down
// to it. Minting a fresh context inside library code silently detaches
// the call from the caller's deadline. The analyzer reports:
//
//   - any call to context.Background() or context.TODO() in library
//     code (main packages are excluded by the driver's scoping),
//   - exported functions and methods that call a context-aware callee
//     (one whose signature takes a context.Context) without themselves
//     accepting a context.Context parameter.
//
// Deliberate detachment points (e.g. a documented nil-context
// fallback) are suppressed with //reconlint:allow ctxflow <reason>.
package ctxflow

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the ctxflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "exported blocking entry points must accept and propagate context.Context; no context.Background in library code",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBackground(pass, fd)
			if fd.Name.IsExported() && !takesContext(pass, fd) {
				checkPropagation(pass, fd)
			}
		}
	}
	return nil, nil
}

// checkBackground reports context.Background/TODO calls anywhere in fd.
func checkBackground(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pass.FuncOf(call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			pass.Reportf(call.Pos(),
				"context.%s() in library code detaches callees from the caller's cancellation; accept a context.Context parameter and pass it through",
				fn.Name())
		}
		return true
	})
}

// takesContext reports whether fd declares a context.Context parameter.
func takesContext(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if isContextType(pass.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// checkPropagation reports fd's calls to context-aware callees: an
// exported entry point reaching one must itself accept a context.
func checkPropagation(pass *analysis.Pass, fd *ast.FuncDecl) {
	reported := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			// A closure may legitimately capture a context created by a
			// caller-side helper; only direct calls indict the signature.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := pass.FuncOf(call)
		if fn == nil {
			return true
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return true
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if isContextType(sig.Params().At(i).Type()) {
				pass.Reportf(fd.Name.Pos(),
					"exported %s calls context-aware %s but does not accept a context.Context; add one and propagate it",
					fd.Name.Name, fn.Name())
				reported = true
				return false
			}
		}
		return true
	})
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
