// Package a exercises the ctxflow analyzer: context.Background/TODO in
// library code and exported entry points that reach context-aware
// callees without accepting a context are flagged.
package a

import "context"

func doWork(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

func Blocked() error { // want `exported Blocked calls context-aware doWork but does not accept a context\.Context`
	return doWork(context.Background()) // want `context\.Background\(\) in library code`
}

func Todo() { // want `exported Todo calls context-aware doWork`
	_ = doWork(context.TODO()) // want `context\.TODO\(\) in library code`
}

// Good threads the caller's context straight through: fine.
func Good(ctx context.Context) error {
	return doWork(ctx)
}

// unexported helpers are not entry points; only the Background/TODO
// rule applies inside them.
func pump(ctx context.Context) error {
	return doWork(ctx)
}

// Pure is exported but touches nothing context-aware: fine.
func Pure(a, b int) int { return a + b }

// Spawn returns a closure; the closure receives its own context, so the
// constructor's signature is not indicted.
func Spawn() func(context.Context) error {
	return func(ctx context.Context) error { return doWork(ctx) }
}

// Fallback documents a deliberate nil-context default.
func Fallback(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background() //reconlint:allow ctxflow documented nil-ctx fallback
	}
	return doWork(ctx)
}
