package deprecatedshim_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/deprecatedshim"
)

func TestSamePackage(t *testing.T) {
	deprecatedshim.Reset()
	analysistest.Run(t, "testdata", deprecatedshim.Analyzer, "a")
}

func TestCrossPackageRegistry(t *testing.T) {
	deprecatedshim.Reset()
	deprecatedshim.Register("dep.Old", "use New.")
	deprecatedshim.RegisterType("dep.OldWidget", "use Widget.")
	defer deprecatedshim.Reset()
	analysistest.Run(t, "testdata", deprecatedshim.Analyzer, "b")
}
