// Package b exercises the deprecatedshim analyzer's cross-package
// path: dep.Old is registered by the driver pre-scan (simulated by the
// test), so calls here are flagged even though the deprecation note
// lives in another package.
package b

import "dep"

func use() int {
	return dep.Old() // want `call to deprecated dep\.Old: use New\.`
}

func fine() int {
	return dep.New()
}

func useRegisteredType() int {
	var w dep.OldWidget // want `use of deprecated type dep\.OldWidget: use Widget\.`
	return w.N
}

func fineRegisteredType() int {
	var w dep.Widget
	return w.N
}
