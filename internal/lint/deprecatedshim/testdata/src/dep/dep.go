// Package dep provides a deprecated symbol for the cross-package
// registry test.
package dep

// Old is the legacy entry point.
//
// Deprecated: use New.
func Old() int { return New() }

// New is the replacement.
func New() int { return 1 }

// Widget is the current type.
type Widget struct{ N int }

// OldWidget is the legacy name, registered by the driver pre-scan in
// the test.
//
// Deprecated: use Widget.
type OldWidget = Widget
