// Package dep provides a deprecated symbol for the cross-package
// registry test.
package dep

// Old is the legacy entry point.
//
// Deprecated: use New.
func Old() int { return New() }

// New is the replacement.
func New() int { return 1 }
