// Package a exercises the deprecatedshim analyzer's same-package path:
// calls to functions whose doc carries a "Deprecated:" paragraph are
// flagged, the declarations themselves are not.
package a

// OldSum is the legacy positional form.
//
// Deprecated: use Sum.
func OldSum(x, y int) int { return Sum(x, y) }

// Sum adds two ints.
func Sum(x, y int) int { return x + y }

func caller() int {
	return OldSum(1, 2) // want `call to deprecated a\.OldSum: use Sum\.`
}

func fine() int {
	return Sum(1, 2)
}

func allowed() int {
	return OldSum(3, 4) //reconlint:allow deprecatedshim fixture migration scheduled for next pass
}

// Queue is the current type.
type Queue struct{ n int }

// OldQueue is the legacy name. Its declaration mentions Queue without
// being flagged: deprecated declarations are exempt spans.
//
// Deprecated: use Queue.
type OldQueue = Queue

func useType() int {
	var q OldQueue // want `use of deprecated type a\.OldQueue: use Queue\.`
	return q.n
}

func fineType() int {
	var q Queue
	return q.n
}

func allowedType() int {
	var q OldQueue //reconlint:allow deprecatedshim fixture migration scheduled for next pass
	return q.n
}
