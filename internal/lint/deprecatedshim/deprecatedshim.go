// Package deprecatedshim implements the reconlint analyzer that flags
// uses of this module's deprecated functions and types, so
// compatibility shims (like the late grid.RunScenarioArgs, or the
// sim.EventQueue alias) cannot quietly accrete callers while awaiting
// deletion.
//
// A symbol is deprecated when its doc comment contains a paragraph
// beginning "Deprecated:" (the standard Go convention). Same-package
// declarations are discovered from the package's own syntax; for
// cross-package uses the driver pre-scans every loaded module package
// and registers the deprecated symbols with Register/RegisterType
// before analyzers run. Standard-library deprecations are deliberately
// out of scope — this reporter polices the module's own migration debt.
//
// Uses inside deprecated declarations are exempt: a deprecated alias
// may mention the shim it forwards to, and one shim may be implemented
// in terms of another, without tripping the reporter.
package deprecatedshim

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the deprecated-shim analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "deprecatedshim",
	Doc:  "flag uses of the module's own deprecated functions and types; migrate callers instead of accreting new ones",
	Run:  run,
}

// registry maps types.Func.FullName() of known-deprecated module
// functions to the first line of their deprecation note; typeRegistry
// does the same for type names, keyed "pkgpath.TypeName".
var (
	registry     = map[string]string{}
	typeRegistry = map[string]string{}
)

// Register records a deprecated function by its types.Func.FullName()
// (e.g. "repro/internal/grid.RunScenarioArgs"). The driver calls this
// during its pre-scan; tests may call it directly.
func Register(fullName, note string) { registry[fullName] = note }

// RegisterType records a deprecated type by "pkgpath.TypeName"
// (e.g. "repro/internal/sim.EventQueue").
func RegisterType(fullName, note string) { typeRegistry[fullName] = note }

// Reset clears both registries (test isolation).
func Reset() {
	registry = map[string]string{}
	typeRegistry = map[string]string{}
}

// DeprecationNote returns the first line of the "Deprecated:" paragraph
// in a doc comment, or "" when the doc carries none.
func DeprecationNote(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "Deprecated:") {
			return strings.TrimSpace(strings.TrimPrefix(line, "Deprecated:"))
		}
	}
	return ""
}

// TypeSpecNote returns the deprecation note for one type spec inside a
// declaration: the spec's own doc wins, then a single-spec declaration
// inherits the GenDecl doc.
func TypeSpecNote(decl *ast.GenDecl, spec *ast.TypeSpec) string {
	if note := DeprecationNote(spec.Doc); note != "" {
		return note
	}
	if len(decl.Specs) == 1 {
		return DeprecationNote(decl.Doc)
	}
	return ""
}

// typeFullName renders a *types.TypeName as "pkgpath.Name", matching
// types.Func.FullName() for package-level symbols.
func typeFullName(tn *types.TypeName) string {
	if tn.Pkg() == nil {
		return tn.Name()
	}
	return tn.Pkg().Path() + "." + tn.Name()
}

// span is a source range whose contents are exempt from reporting.
type span struct{ lo, hi token.Pos }

func run(pass *analysis.Pass) (interface{}, error) {
	// Same-package deprecated declarations, and their spans so a
	// deprecated body or alias RHS is not itself flagged.
	localFuncs := map[string]string{}
	localTypes := map[string]string{}
	var exempt []span
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if note := DeprecationNote(d.Doc); note != "" {
					if obj, ok := pass.TypesInfo.Defs[d.Name].(interface{ FullName() string }); ok {
						localFuncs[obj.FullName()] = note
					}
					exempt = append(exempt, span{d.Pos(), d.End()})
				}
			case *ast.GenDecl:
				if d.Tok != token.TYPE {
					continue
				}
				for _, s := range d.Specs {
					ts, ok := s.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if note := TypeSpecNote(d, ts); note != "" {
						if tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName); ok {
							localTypes[typeFullName(tn)] = note
						}
						exempt = append(exempt, span{ts.Pos(), ts.End()})
					}
				}
			}
		}
	}
	exempted := func(pos token.Pos) bool {
		for _, s := range exempt {
			if pos >= s.lo && pos < s.hi {
				return true
			}
		}
		return false
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := pass.FuncOf(n)
				if fn == nil || exempted(n.Pos()) {
					return true
				}
				full := fn.FullName()
				note, dep := localFuncs[full]
				if !dep {
					note, dep = registry[full]
				}
				if dep {
					msg := "call to deprecated " + full
					if note != "" {
						msg += ": " + note
					}
					pass.Reportf(n.Pos(), "%s", msg)
				}
			case *ast.Ident:
				tn, ok := pass.TypesInfo.Uses[n].(*types.TypeName)
				if !ok || exempted(n.Pos()) {
					return true
				}
				full := typeFullName(tn)
				note, dep := localTypes[full]
				if !dep {
					note, dep = typeRegistry[full]
				}
				if dep {
					msg := "use of deprecated type " + full
					if note != "" {
						msg += ": " + note
					}
					pass.Reportf(n.Pos(), "%s", msg)
				}
			}
			return true
		})
	}
	return nil, nil
}
