// Package deprecatedshim implements the reconlint analyzer that flags
// calls to this module's deprecated functions, so compatibility shims
// (like the late grid.RunScenarioArgs) cannot quietly accrete callers
// while awaiting deletion.
//
// A function is deprecated when its doc comment contains a paragraph
// beginning "Deprecated:" (the standard Go convention). Same-package
// declarations are discovered from the package's own syntax; for
// cross-package calls the driver pre-scans every loaded module package
// and registers the deprecated symbols with Register before analyzers
// run. Standard-library deprecations are deliberately out of scope —
// this reporter polices the module's own migration debt.
package deprecatedshim

import (
	"go/ast"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the deprecated-shim analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "deprecatedshim",
	Doc:  "flag calls to the module's own deprecated functions; migrate callers instead of accreting new ones",
	Run:  run,
}

// registry maps types.Func.FullName() of known-deprecated module
// functions to the first line of their deprecation note.
var registry = map[string]string{}

// Register records a deprecated function by its types.Func.FullName()
// (e.g. "repro/internal/grid.RunScenarioArgs"). The driver calls this
// during its pre-scan; tests may call it directly.
func Register(fullName, note string) { registry[fullName] = note }

// Reset clears the registry (test isolation).
func Reset() { registry = map[string]string{} }

// DeprecationNote returns the first line of the "Deprecated:" paragraph
// in a doc comment, or "" when the doc carries none.
func DeprecationNote(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "Deprecated:") {
			return strings.TrimSpace(strings.TrimPrefix(line, "Deprecated:"))
		}
	}
	return ""
}

func run(pass *analysis.Pass) (interface{}, error) {
	// Same-package deprecated declarations, and their positions so the
	// declaration body itself is not flagged.
	local := map[string]string{}
	inDeprecated := map[*ast.FuncDecl]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if note := DeprecationNote(fd.Doc); note != "" {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(interface{ FullName() string }); ok {
					local[obj.FullName()] = note
				}
				inDeprecated[fd] = true
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || inDeprecated[fd] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := pass.FuncOf(call)
				if fn == nil {
					return true
				}
				full := fn.FullName()
				note, dep := local[full]
				if !dep {
					note, dep = registry[full]
				}
				if dep {
					msg := "call to deprecated " + full
					if note != "" {
						msg += ": " + note
					}
					pass.Reportf(call.Pos(), "%s", msg)
				}
				return true
			})
		}
	}
	return nil, nil
}
