// Package analysistest runs a reconlint analyzer over GOPATH-style
// fixture packages and compares its diagnostics against // want
// comments, mirroring golang.org/x/tools/go/analysis/analysistest for
// the subset this repo needs.
//
// Fixtures live under <testdata>/src/<path>/*.go. A line expecting a
// diagnostic carries a trailing comment of the form
//
//	// want "regexp"            (one or more, double- or back-quoted)
//
// Every diagnostic must match an unconsumed want on its line and every
// want must be matched — extra or missing findings fail the test.
// //reconlint:allow directives are honored exactly as in the driver,
// so suppression behavior is testable with a violation line that
// carries a directive and no want.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/directive"
)

// shared caches the fileset and stdlib source importer across Run
// calls: re-type-checking the standard library per fixture would
// dominate test time.
var shared struct {
	mu   sync.Mutex
	fset *token.FileSet
	std  types.ImporterFrom
}

// Run loads each fixture package under testdata/src and checks the
// analyzer's diagnostics against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	shared.mu.Lock()
	defer shared.mu.Unlock()
	if shared.fset == nil {
		shared.fset = token.NewFileSet()
		std, ok := importer.ForCompiler(shared.fset, "source", nil).(types.ImporterFrom)
		if !ok {
			t.Fatal("analysistest: source importer unavailable")
		}
		shared.std = std
	}
	l := &fixtureLoader{
		root: filepath.Join(testdata, "src"),
		fset: shared.fset,
		std:  shared.std,
		pkgs: make(map[string]*fixturePkg),
	}
	for _, path := range paths {
		pkg, err := l.load(path)
		if err != nil {
			t.Fatalf("analysistest: loading %s: %v", path, err)
		}
		check(t, l.fset, pkg, a)
	}
}

// fixturePkg is one loaded fixture package.
type fixturePkg struct {
	types *types.Package
	files []*ast.File
	info  *types.Info
}

// fixtureLoader resolves imports among fixture packages and defers
// everything else to the stdlib source importer.
type fixtureLoader struct {
	root string
	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*fixturePkg
}

func (l *fixtureLoader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir := filepath.Join(l.root, path); isDir(dir) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.types, nil
	}
	return l.std.ImportFrom(path, l.root, 0)
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

func (l *fixtureLoader) load(path string) (*fixturePkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &fixturePkg{types: tpkg, files: files, info: info}
	l.pkgs[path] = p
	return p, nil
}

// want is one expectation at a file line.
type want struct {
	re       *regexp.Regexp
	raw      string
	consumed bool
}

// check runs the analyzer over one fixture package and diffs
// diagnostics against want comments.
func check(t *testing.T, fset *token.FileSet, pkg *fixturePkg, a *analysis.Analyzer) {
	t.Helper()
	wants := make(map[string][]*want) // "file:line" -> expectations
	for _, f := range pkg.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				parseWants(t, fset, c, wants)
			}
		}
	}

	suppressed := directive.Suppresses(fset, pkg.files, a.Name)
	var diags []analysis.Diagnostic
	seen := make(map[string]bool)
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     pkg.files,
		Pkg:       pkg.types,
		TypesInfo: pkg.info,
		Report: func(d analysis.Diagnostic) {
			if suppressed(d.Pos) {
				return
			}
			key := fmt.Sprintf("%s: %s", fset.Position(d.Pos), d.Message)
			if !seen[key] {
				seen[key] = true
				diags = append(diags, d)
			}
		},
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: %s: %v", a.Name, err)
	}

	for _, d := range diags {
		p := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", p.Filename, p.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.consumed && w.re.MatchString(d.Message) {
				w.consumed = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", p, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.consumed {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.raw)
			}
		}
	}
}

// parseWants extracts `// want "re" "re"…` expectations from a comment.
func parseWants(t *testing.T, fset *token.FileSet, c *ast.Comment, wants map[string][]*want) {
	t.Helper()
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	if !strings.HasPrefix(text, "want ") {
		return
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "want"))
	pos := fset.Position(c.Pos())
	key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
	for rest != "" {
		q := rest[0]
		if q != '"' && q != '`' {
			t.Fatalf("%s: malformed want comment near %q", pos, rest)
		}
		end := strings.IndexByte(rest[1:], q)
		if end < 0 {
			t.Fatalf("%s: unterminated quote in want comment", pos)
		}
		lit := rest[:end+2]
		raw, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("%s: bad want literal %s: %v", pos, lit, err)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
		}
		wants[key] = append(wants[key], &want{re: re, raw: raw})
		rest = strings.TrimSpace(rest[end+2:])
	}
}
