// Package sizecap implements the reconlint analyzer that converts
// unbounded tainted allocation sizes into clamped ones.
//
// sizecap is the machine-repair half of wiretaint's allocation-size
// rule: where wiretaint reports every tainted sink kind with its
// interprocedural chain, sizecap focuses on size expressions declared
// in the function under inspection — a `make([]T, n)` length or
// capacity, a `strings.Repeat`/`Builder.Grow` count, a
// `Scanner.Buffer` cap — and attaches a SuggestedFix wrapping the
// expression in `min(expr, maxTaintedLen)`, declaring the named
// constant in the file when it does not already exist. The driver's
// -fix mode applies it; the named constant (rather than an inline
// magic number) keeps every clamp in a file auditable at one
// declaration.
//
// The fix is a floor, not absolution: the right repair is usually a
// semantic bound rejected at the trust boundary with a stable wire
// error (see DESIGN.md "Trust boundary contract"), after which the
// taint lattice recognizes the validated field and the finding
// disappears without any clamp at the use site.
package sizecap

import (
	"go/ast"
	"go/token"

	"repro/internal/lint/analysis"
	"repro/internal/lint/dataflow"
)

// Analyzer is the sizecap analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "sizecap",
	Doc:  "tainted allocation sizes must be clamped; suggested fix wraps the size in min(..., maxTaintedLen)",
	Run:  run,
}

// capName and capValue define the clamp constant the fix inserts:
// 1<<16 matches the wire layer's 64KB request cap, the repo's existing
// notion of "as big as one hostile message can be".
const (
	capName  = "maxTaintedLen"
	capValue = "1 << 16"
)

func run(pass *analysis.Pass) (interface{}, error) {
	g := dataflow.Resolve(pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo)
	// Only the first fix per file declares the constant, so applying
	// every fix in a file yields one declaration.
	declPlanned := make(map[string]bool)
	for _, node := range g.SortedFuncs() {
		if node.Pkg != pass.Pkg {
			continue
		}
		sum := g.Taint(node.Fn)
		if sum == nil {
			continue
		}
		for _, sink := range sum.Sinks {
			if !sink.Val.Tainted || sink.Kind != dataflow.TaintAllocSize || sink.SizeExpr == nil {
				continue
			}
			pass.Report(analysis.Diagnostic{
				Pos: sink.Pos,
				Message: sink.Val.Src + " is used as an allocation size without an upper bound; clamp it to " + capName +
					" or reject oversized values at the trust boundary",
				SuggestedFixes: []analysis.SuggestedFix{
					clampFix(pass, sink.SizeExpr, declPlanned),
				},
			})
		}
	}
	return nil, nil
}

// clampFix builds the min(expr, maxTaintedLen) wrap plus, once per
// file, the constant declaration after the imports.
func clampFix(pass *analysis.Pass, size ast.Expr, declPlanned map[string]bool) analysis.SuggestedFix {
	fix := analysis.SuggestedFix{
		Message: "clamp the size with min(..., " + capName + ")",
		TextEdits: []analysis.TextEdit{
			{Pos: size.Pos(), End: size.Pos(), NewText: []byte("min(")},
			{Pos: size.End(), End: size.End(), NewText: []byte(", " + capName + ")")},
		},
	}
	file := fileOf(pass, size.Pos())
	if file == nil {
		return fix
	}
	fname := pass.Fset.Position(file.Pos()).Filename
	if declPlanned[fname] || pass.Pkg.Scope().Lookup(capName) != nil {
		return fix
	}
	declPlanned[fname] = true
	fix.TextEdits = append(fix.TextEdits, analysis.TextEdit{
		Pos:     declInsertPos(file),
		NewText: []byte("\n// " + capName + " bounds every tainted length sizecap clamps in this file.\nconst " + capName + " = " + capValue + "\n"),
	})
	return fix
}

// fileOf returns the file containing pos.
func fileOf(pass *analysis.Pass, pos token.Pos) *ast.File {
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// declInsertPos picks where the constant declaration goes: after the
// last import declaration, or after the package clause when there are
// no imports.
func declInsertPos(file *ast.File) token.Pos {
	pos := file.Name.End()
	for _, d := range file.Decls {
		if gd, ok := d.(*ast.GenDecl); ok && gd.Tok == token.IMPORT {
			pos = gd.End()
			continue
		}
		break
	}
	return pos
}
