package sizecap_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/sizecap"
)

func TestSizecap(t *testing.T) {
	analysistest.Run(t, "testdata", sizecap.Analyzer, "controlplane")
}
