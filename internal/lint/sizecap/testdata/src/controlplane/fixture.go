// Package controlplane exercises sizecap: tainted allocation sizes
// with a SuggestedFix, including taint that crosses a function boundary
// through a return value and a channel send before allocating.
package controlplane

import "strings"

type Request struct {
	Tenant string `json:"tenant"`
	Count  int    `json:"count"`
}

func alloc(req Request) []byte {
	return make([]byte, req.Count) // want `wire field Request\.Count is used as an allocation size without an upper bound`
}

func repeat(req Request) string {
	return strings.Repeat("x", req.Count) // want `wire field Request\.Count is used as an allocation size without an upper bound`
}

func grown(req Request) string {
	var b strings.Builder
	b.Grow(req.Count) // want `wire field Request\.Count is used as an allocation size without an upper bound`
	b.WriteString(req.Tenant)
	return b.String()
}

// count carries the taint across a function boundary via its return.
func count(req Request) int { return req.Count }

func viaReturn(req Request) []byte {
	return make([]byte, count(req)) // want `wire field Request\.Count is used as an allocation size without an upper bound`
}

// The channel hop: a value received from sizeCh is as hostile as the
// wire field that was sent on it.
var sizeCh = make(chan int)

func sendSize(req Request) {
	sizeCh <- req.Count
}

func viaChannel() []byte {
	n := <-sizeCh
	return make([]byte, n) // want `wire field Request\.Count is used as an allocation size without an upper bound`
}

func clamped(req Request) []byte {
	return make([]byte, min(req.Count, 1024)) // clamped: clean
}
