// Package lockorder implements the reconlint analyzer that detects
// deadlock candidates in the acquires-while-holding graph.
//
// Using the dataflow layer's per-function CFG locksets and the CHA call
// graph, the analyzer builds the whole-program lock-order relation:
// an edge A -> B means some execution acquires lock class B (r.mu on a
// type, a package-level mutex) while holding A — directly, or through
// a call chain that reaches an acquisition of B. Two findings come out
// of it:
//
//   - a cycle A -> B -> ... -> A is a deadlock candidate: two
//     goroutines acquiring the classes in opposite orders can block
//     forever. The report shows every acquisition site of the cycle
//     with its call chain, so both orders are auditable.
//   - re-acquiring a held sync.Mutex (or write-locking under a read
//     lock on the same instance) is a guaranteed self-deadlock — Go
//     locks are not reentrant.
//
// Lock classes are instance-insensitive (every Registry's mu is one
// class), which is the sound direction for ordering: two instances of
// one type locked in both orders by different code paths deadlock just
// like two distinct locks. Hand-over-hand locking of one class is out
// of scope (the same-class edge is skipped).
//
// Escape hatch: //reconlint:allow lockorder <reason> on or above the
// acquisition the report points at.
package lockorder

import (
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/dataflow"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisition order must be acyclic across the engine, RMS, and observability packages (deadlock candidates) and never re-entrant",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	g := dataflow.Resolve(pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo)
	lg := g.LockGraph()

	// Self-deadlocks: report the ones in this package's functions.
	for _, e := range lg.SelfDeadlocks() {
		if e.Fn.Pkg() != pass.Pkg {
			continue
		}
		pass.Reportf(e.Pos,
			"%s re-acquires %s while already holding it: sync mutexes are not reentrant, this deadlocks at runtime",
			e.Fn.Name(), e.From)
	}

	// Ordering cycles: report each cycle once, at the witnessing
	// acquisition that lies in this package (so a cross-package cycle
	// surfaces wherever the driver scopes the analyzer). Every hop's
	// chain goes into the message — both acquisition orders are visible.
	for _, cyc := range lg.Cycles() {
		for _, w := range cyc.Witness {
			if w.Fn.Pkg() != pass.Pkg {
				continue
			}
			pass.Reportf(w.Pos,
				"lock-order cycle %s: %s — acquiring in opposite orders deadlocks; pick one global order",
				strings.Join(append(append([]string(nil), cyc.Classes...), cyc.Classes[0]), " -> "),
				describeWitnesses(cyc.Witness))
			break // one report per cycle per package
		}
	}
	return nil, nil
}

// describeWitnesses renders every hop of a cycle: "a.mu->b.mu at
// pkg.F (via pkg.F -> pkg.g)".
func describeWitnesses(ws []dataflow.AcqEdge) string {
	parts := make([]string, 0, len(ws))
	for _, w := range ws {
		s := w.From + "->" + w.To + " in " + strings.Join(w.Chain, " -> ")
		parts = append(parts, s)
	}
	return strings.Join(parts, "; ")
}
