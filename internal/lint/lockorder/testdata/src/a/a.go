// Package a exercises the lockorder analyzer: a deliberately seeded
// AB/BA deadlock across two lock classes, a self-deadlock, an
// interprocedural ordering edge through a helper, and clean
// single-order code that must stay silent.
package a

import "sync"

type Engine struct{ mu sync.Mutex }
type Registry struct{ mu sync.Mutex }

// lockAB and lockBA acquire the two classes in opposite orders — the
// classic deadlock seed. The cycle is reported once, at the first
// witnessing acquisition.
func lockAB(e *Engine, r *Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r.mu.Lock() // want `lock-order cycle a\.Engine\.mu -> a\.Registry\.mu -> a\.Engine\.mu`
	defer r.mu.Unlock()
}

func lockBA(e *Engine, r *Registry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e.mu.Lock()
	defer e.mu.Unlock()
}

// Self-deadlock: sync.Mutex is not reentrant.
func double(e *Engine) {
	e.mu.Lock()
	e.mu.Lock() // want `double re-acquires a\.Engine\.mu while already holding it`
	e.mu.Unlock()
	e.mu.Unlock()
}

// Interprocedural: holding the sink lock while calling a helper that
// takes the state lock, and vice versa, closes a cycle through the
// call graph.
type Sink struct{ mu sync.Mutex }
type State struct{ mu sync.Mutex }

func (s *State) touch() {
	s.mu.Lock()
	defer s.mu.Unlock()
}

func (k *Sink) flush(st *State) {
	k.mu.Lock()
	defer k.mu.Unlock()
	st.touch() // want `lock-order cycle a\.Sink\.mu -> a\.State\.mu -> a\.Sink\.mu`
}

func (k *Sink) emit() {
	k.mu.Lock()
	defer k.mu.Unlock()
}

func (st *State) publish(k *Sink) {
	st.mu.Lock()
	defer st.mu.Unlock()
	k.emit()
}

// Clean: consistent global order Engine < Registry everywhere.
type Pair struct {
	a sync.Mutex
	b sync.Mutex
}

func (p *Pair) both() {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock()
	defer p.b.Unlock()
}

func (p *Pair) bothAgain() {
	p.a.Lock()
	p.b.Lock()
	p.b.Unlock()
	p.a.Unlock()
}

// Clean: two instances of one class in sequence is ordering inside a
// class, not re-acquisition (hand-over-hand is out of scope).
func handOver(x, y *Engine) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

// Clean: RLock under RLock on the same instance is legal.
type RW struct{ mu sync.RWMutex }

func (r *RW) readTwice() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	r.readMore()
}

func (r *RW) readMore() {
	r.mu.RLock()
	defer r.mu.RUnlock()
}
