package chanmisuse_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/chanmisuse"
)

func TestChanmisuse(t *testing.T) {
	analysistest.Run(t, "testdata", chanmisuse.Analyzer, "a")
}
