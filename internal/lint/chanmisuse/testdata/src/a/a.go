// Package a exercises the chanmisuse analyzer: possibly-nil sends and
// closes, close of caller-owned channels, and sends under a lock the
// receiver also needs.
package a

import "sync"

func MakeOK() {
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
}

func NilSend() {
	var ch chan int
	ch <- 1 // want `send on ch, which is declared without make and may still be nil`
}

func NilClose() {
	var ch chan int
	close(ch) // want `close on ch, which is declared without make and may still be nil`
}

// A make in one branch does not cover the paths that skip it.
func BranchNil(b bool) {
	var ch chan int
	if b {
		ch = make(chan int)
	}
	ch <- 1 // want `send on ch, which is declared without make and may still be nil`
}

// Every path assigns before the send: clean.
func AllPathsAssigned(b bool) {
	var ch chan int
	if b {
		ch = make(chan int, 1)
	} else {
		ch = make(chan int, 2)
	}
	ch <- 1
}

// Closing a channel received from the caller: the creator owns it.
func CloseParam(ch chan int) {
	close(ch) // want `close of parameter channel ch`
}

// Sending through a parameter is the normal producer shape: clean.
func sendOnly(ch chan<- int) { ch <- 1 }

// Send while holding a lock the parallel receiver also takes: if the
// channel is unbuffered or full, the sender blocks holding what the
// receiver needs.

var pairMu sync.Mutex
var pairCh = make(chan string)

func RunPair() {
	go recvLoop()
	pairMu.Lock()
	pairCh <- "x" // want `send on chan string while holding a\.pairMu, but recvLoop receives from this channel under the same lock`
	pairMu.Unlock()
}

func recvLoop() {
	pairMu.Lock()
	v := <-pairCh
	_ = v
	pairMu.Unlock()
}

// Same shape but the send happens after the unlock: clean.
func RunPairSafe() {
	go recvLoop()
	pairMu.Lock()
	pairMu.Unlock()
	pairCh <- "y"
}
