// Package chanmisuse implements the reconlint analyzer for channel
// protocol violations the runtime only surfaces as hangs or panics:
//
//   - send or close on a possibly-nil channel: a function-local channel
//     declared without make (var ch chan T) that can reach a send or a
//     close before every path assigns it. A nil send blocks forever; a
//     nil close panics. Decided on the dataflow CFG, so a make in one
//     branch does not excuse a send reachable through the other.
//   - close by non-owner: closing a channel the function received as a
//     parameter. Go's ownership convention is that the goroutine that
//     creates a channel closes it; a callee closing its caller's
//     channel invites double-close panics and send-on-closed races.
//   - send under a lock the receiver needs: a send executed while a
//     mutex is held (must-lockset), where some receive of the same
//     channel class runs under an intersecting lockset in a function
//     that may execute in parallel (the MHP approximation). The sender
//     blocks holding the lock; the receiver blocks wanting it.
//
// Escape hatch: //reconlint:allow chanmisuse <reason> — e.g. a close
// helper that is documented as the owner's delegate.
package chanmisuse

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/dataflow"
)

// Analyzer is the chanmisuse analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "chanmisuse",
	Doc:  "no send/close on possibly-nil channels, no close of caller-owned channels, no send while holding a lock the receiver's lockset intersects",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	g := dataflow.Resolve(pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo)
	lg := g.LockGraph()
	mhp := g.MHP()

	// Receive sites across the whole graph, keyed by channel class
	// (element type), each with its must-lockset — the partners the
	// send-under-lock check pairs against.
	recvs := collectReceives(g, lg)

	for _, node := range g.SortedFuncs() {
		if node.Pkg != pass.Pkg {
			continue
		}
		checkNilChannels(pass, node)
		checkCloseOwnership(pass, node)
		checkSendUnderLock(pass, g, lg, mhp, node, recvs)
	}
	return nil, nil
}

// --- possibly-nil send/close ---------------------------------------

// checkNilChannels runs a definite-assignment dataflow over the CFG for
// the function's channel-typed locals declared nil (var ch chan T), and
// reports sends/closes reachable with the local possibly still nil.
func checkNilChannels(pass *analysis.Pass, node *dataflow.FuncNode) {
	info := node.Info

	// nilDecls: channel locals introduced with no initializer.
	nilDecls := make(map[types.Object]bool)
	ast.Inspect(node.Decl.Body, func(x ast.Node) bool {
		decl, ok := x.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := decl.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) != 0 {
				continue
			}
			for _, name := range vs.Names {
				obj := info.Defs[name]
				if obj == nil {
					continue
				}
				if _, isChan := obj.Type().Underlying().(*types.Chan); isChan {
					nilDecls[obj] = true
				}
			}
		}
		return true
	})
	if len(nilDecls) == 0 {
		return
	}

	cfg := dataflow.BuildCFG(node.Decl.Body)
	// Must-assigned forward dataflow: in[b] = ∩ out[preds].
	type set = map[types.Object]bool
	clone := func(s set) set {
		o := make(set, len(s))
		for k := range s {
			o[k] = true
		}
		return o
	}
	intersect := func(a, b set) set {
		o := make(set)
		for k := range a {
			if b[k] {
				o[k] = true
			}
		}
		return o
	}
	equal := func(a, b set) bool {
		if len(a) != len(b) {
			return false
		}
		for k := range a {
			if !b[k] {
				return false
			}
		}
		return true
	}

	// assignsIn collects the nil-decl objects a node definitely assigns.
	assignsIn := func(n ast.Node, cur set) {
		ast.Inspect(n, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			as, ok := x.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.ObjectOf(id)
				if obj != nil && nilDecls[obj] {
					cur[obj] = true
				}
			}
			return true
		})
	}

	in := make([]set, len(cfg.Blocks))
	out := make([]set, len(cfg.Blocks))
	before := make(map[ast.Node]set)
	for changed := true; changed; {
		changed = false
		for _, blk := range cfg.Blocks {
			var cur set
			for _, p := range blk.Preds {
				if out[p.Index] == nil {
					continue
				}
				if cur == nil {
					cur = clone(out[p.Index])
				} else {
					cur = intersect(cur, out[p.Index])
				}
			}
			if blk == cfg.Entry {
				cur = make(set)
			}
			if cur == nil {
				continue
			}
			if in[blk.Index] == nil || !equal(in[blk.Index], cur) {
				in[blk.Index] = clone(cur)
				changed = true
			}
			for _, n := range blk.Nodes {
				before[n] = clone(cur)
				assignsIn(n, cur)
			}
			if out[blk.Index] == nil || !equal(out[blk.Index], cur) {
				out[blk.Index] = cur
				changed = true
			}
		}
	}

	report := func(n ast.Node, ch ast.Expr, verb string) {
		id, ok := ast.Unparen(ch).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.ObjectOf(id)
		if obj == nil || !nilDecls[obj] {
			return
		}
		assigned := before[n]
		if assigned != nil && assigned[obj] {
			return
		}
		what := "blocks forever"
		if verb == "close" {
			what = "panics"
		}
		pass.Reportf(n.Pos(),
			"%s on %s, which is declared without make and may still be nil here: a nil-channel %s %s",
			verb, id.Name, verb, what)
	}
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			node := n
			ast.Inspect(node, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.FuncLit:
					return false
				case *ast.SendStmt:
					report(node, x.Chan, "send")
				case *ast.CallExpr:
					if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" {
						if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin && len(x.Args) == 1 {
							report(node, x.Args[0], "close")
						}
					}
				}
				return true
			})
		}
	}
}

// --- close ownership -----------------------------------------------

// checkCloseOwnership reports close(ch) where ch is a parameter: the
// channel's creator owns closing it.
func checkCloseOwnership(pass *analysis.Pass, node *dataflow.FuncNode) {
	info := node.Info
	params := make(map[types.Object]bool)
	if node.Decl.Type.Params != nil {
		for _, f := range node.Decl.Type.Params.List {
			for _, name := range f.Names {
				if obj := info.Defs[name]; obj != nil {
					if _, isChan := obj.Type().Underlying().(*types.Chan); isChan {
						params[obj] = true
					}
				}
			}
		}
	}
	if len(params) == 0 {
		return
	}
	ast.Inspect(node.Decl.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "close" {
			return true
		}
		if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); !isBuiltin || len(call.Args) != 1 {
			return true
		}
		argID, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		if obj := info.ObjectOf(argID); obj != nil && params[obj] {
			pass.Reportf(call.Pos(),
				"close of parameter channel %s: the creating goroutine owns the close; closing a caller's channel risks double-close panics and send-on-closed races",
				argID.Name)
		}
		return true
	})
}

// --- send under intersecting lockset -------------------------------

// recvSite is one channel receive with the must-lockset at it.
type recvSite struct {
	fn    *types.Func
	held  dataflow.LockSet
	class string
}

// collectReceives gathers every receive/range-over-channel in the
// graph with the lockset in force, keyed by channel class.
func collectReceives(g *dataflow.Graph, lg *dataflow.LockGraph) map[string][]recvSite {
	out := make(map[string][]recvSite)
	for _, node := range g.SortedFuncs() {
		fl := lg.Locks[node.Fn]
		if fl == nil {
			continue
		}
		info := node.Info
		for _, blk := range fl.CFG.Blocks {
			for _, n := range blk.Nodes {
				held := fl.Before[n]
				ast.Inspect(n, func(x ast.Node) bool {
					if _, ok := x.(*ast.FuncLit); ok {
						return false
					}
					var chX ast.Expr
					switch x := x.(type) {
					case *ast.UnaryExpr:
						if x.Op == token.ARROW {
							chX = x.X
						}
					case *ast.RangeStmt:
						chX = x.X
					}
					if chX == nil {
						return true
					}
					class := chanClass(info, chX)
					if class == "" {
						return true
					}
					out[class] = append(out[class], recvSite{fn: node.Fn, held: held, class: class})
					return true
				})
			}
		}
	}
	return out
}

// chanClass keys a channel expression by element type, mirroring the
// provenance layer's channel keying.
func chanClass(info *types.Info, e ast.Expr) string {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return ""
	}
	return types.TypeString(ch.Elem(), nil)
}

// checkSendUnderLock pairs this function's sends-under-lock with
// known receives of the same channel class under intersecting locksets
// in functions that may run in parallel.
func checkSendUnderLock(pass *analysis.Pass, g *dataflow.Graph, lg *dataflow.LockGraph, mhp *dataflow.MHPInfo, node *dataflow.FuncNode, recvs map[string][]recvSite) {
	fl := lg.Locks[node.Fn]
	if fl == nil {
		return
	}
	info := node.Info
	for _, blk := range fl.CFG.Blocks {
		for _, n := range blk.Nodes {
			held := fl.Before[n]
			if len(held) == 0 {
				continue
			}
			send, ok := n.(*ast.SendStmt)
			if !ok {
				continue
			}
			class := chanClass(info, send.Chan)
			if class == "" {
				continue
			}
			for _, r := range recvs[class] {
				if r.fn == node.Fn {
					continue // same body: sequential, not parallel
				}
				if !mhp.MayHappenInParallel(node.Fn, r.fn) {
					continue
				}
				common := ""
				for cls := range held {
					if _, ok := r.held[cls]; ok {
						common = cls
						break
					}
				}
				if common == "" {
					continue
				}
				pass.Reportf(send.Pos(),
					"send on chan %s while holding %s, but %s receives from this channel under the same lock: if the buffer is full this deadlocks (sender holds what the receiver needs)",
					class, common, r.fn.Name())
				break
			}
		}
	}
}
