// Package hotalloc implements the reconlint analyzer that polices
// per-event allocations in functions marked //reconlint:hotpath.
//
// The engine event loop and the matchmaker run once per simulated
// event across millions of tasks; a fmt.Sprintf or a pointer
// allocation per iteration is the difference between the simulator
// being CPU-bound and GC-bound. A //reconlint:hotpath marker in a
// function's doc comment opts it into the check, and the dataflow call
// graph extends the region to the function's same-package callees
// (marking Engine.tryDispatch covers dispatchOne and execute without
// markers on each). Inside the region the analyzer reports:
//
//   - fmt.Sprint/Sprintf/Sprintln/Errorf calls anywhere in the region
//     (reflection-driven formatting boxes every argument); a Sprintf
//     of pure %s verbs and string arguments gets an automatic
//     concatenation fix,
//   - pointer-producing allocations inside loops: &T{…} literals,
//     new(T), and make(…),
//   - interface boxing inside loops: explicit conversions to an
//     interface type and concrete arguments passed to ...interface{}
//     variadics,
//   - non-constant string concatenation anywhere in the region: the
//     region runs once per simulated event, so a "+" that survives
//     constant folding forms a fresh string per event — intern the
//     identifier (obs.Name) once instead, or gate the build behind a
//     cold-path check and suppress with an allow directive.
//
// Calls inside panic(...) arguments are exempt — a panicking path is
// cold by definition. Escape hatch: //reconlint:allow hotalloc
// <reason> for allocations that are deliberate (e.g. amortized by a
// free list).
package hotalloc

import (
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/dataflow"
	"repro/internal/lint/directive"
)

// Analyzer is the hotalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "no per-event allocations, interface boxing, or fmt formatting in //reconlint:hotpath regions",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	marked, probs := directive.Hotpaths(pass.Files)
	for _, p := range probs {
		pass.Reportf(p.Pos, "%s", p.Message)
	}
	if len(marked) == 0 {
		return nil, nil
	}
	g := dataflow.Resolve(pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo)

	// Seed the region with the marked functions, then extend it to
	// same-package callees via the call graph.
	region := make(map[*types.Func]string) // func -> originating hotpath mark
	var queue []*types.Func
	for _, node := range g.SortedFuncs() {
		if marked[node.Decl] {
			region[node.Fn] = node.Fn.Name()
			queue = append(queue, node.Fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := g.Node(fn)
		if node == nil {
			continue
		}
		for _, callee := range node.SortedCallees() {
			cn := g.Node(callee)
			if cn == nil || cn.Pkg != node.Pkg {
				continue
			}
			if _, ok := region[callee]; ok {
				continue
			}
			region[callee] = region[fn]
			queue = append(queue, callee)
		}
	}

	for _, node := range g.SortedFuncs() {
		origin, ok := region[node.Fn]
		if !ok || node.Pkg != pass.Pkg {
			continue
		}
		suffix := ""
		if !marked[node.Decl] {
			suffix = " (reached from hotpath " + origin + ")"
		}
		checkFunc(pass, node.Decl.Body, suffix)
	}
	return nil, nil
}

// checkFunc walks one region function, tracking lexical loop depth and
// skipping panic(...) arguments. inConcat suppresses reports on the
// sub-expressions of an already-reported concatenation chain (a+b+c is
// two BinaryExprs; only the outermost is diagnosed).
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, suffix string) {
	var walk func(n ast.Node, inLoop, inConcat bool)
	walk = func(n ast.Node, inLoop, inConcat bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ForStmt:
			walkChildren(n, func(c ast.Node) { walk(c, true, inConcat) })
			return
		case *ast.RangeStmt:
			walkChildren(n, func(c ast.Node) { walk(c, true, inConcat) })
			return
		case *ast.CallExpr:
			if isPanic(pass, n) {
				return // cold path: do not descend into the arguments
			}
			checkCall(pass, n, inLoop, suffix)
		case *ast.BinaryExpr:
			if n.Op == token.ADD && !inConcat && stringConcat(pass, n) {
				pass.Reportf(n.Pos(), "string concatenation builds a new string per event in hot path%s; intern the identifier once (obs.Name) or gate it behind a cold-path check", suffix)
				walkChildren(n, func(c ast.Node) { walk(c, inLoop, true) })
				return
			}
		case *ast.UnaryExpr:
			if inLoop && n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(n.Pos(), "&-literal allocates per iteration in hot path%s; hoist it or reuse a pooled object", suffix)
				}
			}
		}
		walkChildren(n, func(c ast.Node) { walk(c, inLoop, inConcat) })
	}
	walk(body, false, false)
}

// stringConcat reports whether the expression is a string "+" that
// survives constant folding (the compiler folds all-constant chains
// into one literal, which allocates nothing at run time).
func stringConcat(pass *analysis.Pass, n *ast.BinaryExpr) bool {
	tv, ok := pass.TypesInfo.Types[n]
	if !ok || tv.Value != nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// walkChildren visits n's immediate children.
func walkChildren(n ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			visit(c)
		}
		return false
	})
}

// isPanic reports whether call is the panic builtin.
func isPanic(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// checkCall reports fmt formatting, in-loop make/new, and in-loop
// variadic interface boxing.
func checkCall(pass *analysis.Pass, call *ast.CallExpr, inLoop bool, suffix string) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && inLoop {
			if id.Name == "make" || id.Name == "new" {
				pass.Reportf(call.Pos(), "%s allocates per iteration in hot path%s; hoist it out of the loop", id.Name, suffix)
			}
			return
		}
	}
	// Conversion to an interface type boxes its operand.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && inLoop {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(call.Args) == 1 {
			if argT := pass.TypeOf(call.Args[0]); argT != nil {
				if _, argIface := argT.Underlying().(*types.Interface); !argIface {
					pass.Reportf(call.Pos(), "conversion boxes a concrete value into an interface per iteration in hot path%s", suffix)
				}
			}
		}
		return
	}
	fn := pass.FuncOf(call)
	if fn == nil {
		return
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		switch fn.Name() {
		case "Sprint", "Sprintf", "Sprintln", "Errorf":
			d := analysis.Diagnostic{
				Pos:     call.Pos(),
				Message: "fmt." + fn.Name() + " in hot path" + suffix + " boxes its arguments and formats reflectively; build the string directly",
			}
			if fix, ok := sprintfConcatFix(pass, call, fn.Name()); ok {
				d.SuggestedFixes = []analysis.SuggestedFix{fix}
			}
			pass.Report(d)
		}
		return
	}
	if inLoop && boxesVariadicArgs(pass, call, fn) {
		pass.Reportf(call.Pos(), "call to %s boxes concrete arguments into ...interface{} per iteration in hot path%s", fn.Name(), suffix)
	}
}

// boxesVariadicArgs reports whether a non-fmt call passes concrete
// values to a ...interface{} parameter.
func boxesVariadicArgs(pass *analysis.Pass, call *ast.CallExpr, fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !sig.Variadic() || call.Ellipsis.IsValid() {
		return false
	}
	last := sig.Params().At(sig.Params().Len() - 1)
	slice, ok := last.Type().(*types.Slice)
	if !ok {
		return false
	}
	iface, ok := slice.Elem().Underlying().(*types.Interface)
	if !ok || !iface.Empty() {
		return false
	}
	fixed := sig.Params().Len() - 1
	if sig.Recv() == nil && fixed > len(call.Args) {
		return false
	}
	for i := fixed; i < len(call.Args); i++ {
		if t := pass.TypeOf(call.Args[i]); t != nil {
			if _, isIface := t.Underlying().(*types.Interface); !isIface {
				return true
			}
		}
	}
	return false
}

// sprintfConcatFix builds a concatenation replacement for a Sprintf
// whose format is a constant of pure %s verbs with string-typed
// arguments: fmt.Sprintf("%s <-> %s", a, b) => a + " <-> " + b.
func sprintfConcatFix(pass *analysis.Pass, call *ast.CallExpr, name string) (analysis.SuggestedFix, bool) {
	if name != "Sprintf" || len(call.Args) < 2 {
		return analysis.SuggestedFix{}, false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return analysis.SuggestedFix{}, false
	}
	format := constant.StringVal(tv.Value)
	args := call.Args[1:]
	for _, a := range args {
		t := pass.TypeOf(a)
		basic, ok := t.(*types.Basic)
		if !ok || basic.Kind() != types.String {
			return analysis.SuggestedFix{}, false
		}
	}
	var parts []string
	rest := format
	argIdx := 0
	for {
		i := strings.IndexByte(rest, '%')
		if i < 0 {
			if rest != "" {
				parts = append(parts, quote(rest))
			}
			break
		}
		if i+1 >= len(rest) || rest[i+1] != 's' {
			return analysis.SuggestedFix{}, false // %d, %%, … not handled
		}
		if i > 0 {
			parts = append(parts, quote(rest[:i]))
		}
		if argIdx >= len(args) {
			return analysis.SuggestedFix{}, false
		}
		var buf strings.Builder
		if err := printer.Fprint(&buf, pass.Fset, args[argIdx]); err != nil {
			return analysis.SuggestedFix{}, false
		}
		argText := buf.String()
		if needsParens(args[argIdx]) {
			argText = "(" + argText + ")"
		}
		parts = append(parts, argText)
		argIdx++
		rest = rest[i+2:]
	}
	if argIdx != len(args) || len(parts) == 0 {
		return analysis.SuggestedFix{}, false
	}
	return analysis.SuggestedFix{
		Message: "replace Sprintf of %s verbs with concatenation",
		TextEdits: []analysis.TextEdit{{
			Pos: call.Pos(), End: call.End(),
			NewText: []byte(strings.Join(parts, " + ")),
		}},
	}, true
}

// needsParens reports whether an argument expression must be wrapped
// when spliced into a + chain.
func needsParens(e ast.Expr) bool {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.CallExpr, *ast.BasicLit, *ast.IndexExpr, *ast.ParenExpr:
		return false
	}
	return true
}

func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}
