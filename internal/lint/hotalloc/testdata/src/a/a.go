// Package a is the hotalloc golden fixture: allocations, boxing, and
// fmt formatting inside a //reconlint:hotpath region.
package a

import "fmt"

type thing struct{ n int }

func (t *thing) M() {}

type boxer interface{ M() }

func logAll(args ...interface{}) { _ = args }

// Hot is the marked hot path.
//
//reconlint:hotpath fixture: runs once per simulated event
func Hot(items []int) string {
	total := 0
	for _, it := range items {
		buf := make([]int, it) // want `make allocates per iteration in hot path`
		total += len(buf)
		p := &thing{n: it} // want `&-literal allocates per iteration in hot path`
		p.M()
		var b boxer = p
		b = boxer(p) // want `conversion boxes a concrete value into an interface per iteration`
		b.M()
		logAll(it) // want `call to logAll boxes concrete arguments into \.\.\.interface\{\} per iteration`
		//reconlint:allow hotalloc pooled buffer, amortized by the free list
		q := &thing{n: it}
		q.M()
	}
	if total < 0 {
		panic(fmt.Sprintf("impossible total %d", total)) // cold path: exempt
	}
	return describe(total)
}

// HotNames forms identifier strings per event: non-constant "+" is
// flagged anywhere in the region, folded constants and allows are not.
//
//reconlint:hotpath fixture: renders identifiers once per event
func HotNames(id, node string) string {
	key := id + "@" + node         // want `string concatenation builds a new string per event in hot path`
	const prefix = "ev-" + "grid-" // folded at compile time: exempt
	//reconlint:allow hotalloc gated behind a monitoring opt-in in the real caller
	label := "task " + id
	_ = label
	return prefix + key // want `string concatenation builds a new string per event in hot path`
}

// describe is unmarked but reached from Hot, so the region extends to
// it.
func describe(total int) string {
	return fmt.Sprint(total) // want `fmt\.Sprint in hot path \(reached from hotpath Hot\)`
}

// Cold has identical allocations but no marker: out of region.
func Cold(items []int) []*thing {
	var out []*thing
	for _, it := range items {
		out = append(out, &thing{n: it})
	}
	_ = fmt.Sprintf("%d", len(out))
	return out
}
