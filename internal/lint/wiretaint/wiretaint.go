// Package wiretaint implements the reconlint analyzer that polices the
// multi-tenant trust boundary: no attacker-controlled value may reach a
// resource-shaping operation unbounded.
//
// PR 8 turned the reproduction into a long-running RMS server, so every
// field of a wire-decoded request is hostile input — the grid-services
// trust model PROTEUS and RC3E assume a resource manager enforces. The
// 64KB request cap bounds the *message*, not the *meaning*: a 40-byte
// request carrying {"work_mi": 9e18} is syntactically tiny and
// semantically a denial of service if that number reaches a `make`
// size, a loop bound, a goroutine-spawn count, a time.Duration, a panic
// argument, or a file path.
//
// Using the dataflow layer's taint lattice (see dataflow/taint.go), the
// analyzer reports every sink in this package's functions reached by a
// tainted value, with the full source→sink chain, exactly like
// seedflow: "wire field TaskSpec.WorkMI reaches an allocation size:
// make (via buildTask -> reserve)". Taint propagates through function
// summaries and channel sends, so a value a shard goroutine receives
// from the dispatcher inbox is as hostile as the decode that produced
// it.
//
// Sanitizers — upper-bound guards, min/clamp, membership checks against
// fixed tables, Validate-style calls, and the //reconlint:sanitized
// directive — lower values back to trusted; see the dataflow package
// doc for the exact recognized forms.
package wiretaint

import (
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/dataflow"
)

// Analyzer is the wiretaint analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "wiretaint",
	Doc:  "tenant-controlled wire values (and operator flag/env input) must be bounded before reaching allocation sizes, loop bounds, spawn counts, durations, panics, or file paths",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	g := dataflow.Resolve(pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo)
	for _, node := range g.SortedFuncs() {
		if node.Pkg != pass.Pkg {
			continue
		}
		sum := g.Taint(node.Fn)
		if sum == nil {
			continue
		}
		for _, sink := range sum.Sinks {
			if !sink.Val.Tainted {
				continue
			}
			switch sink.Kind {
			case dataflow.TaintFormatString, dataflow.TaintFormatArg:
				continue // logtaint's kinds
			}
			pass.Reportf(sink.Pos,
				"%s reaches %s: %s — clamp or reject it at the trust boundary",
				sink.Val.Src, sink.Kind, DescribeChain(sink.Chain))
		}
	}
	return nil, nil
}

// DescribeChain renders a sink chain: "make" for a direct sink,
// "make (via buildTask -> reserve)" for one forwarded through callees.
// Shared by the three taint analyzers.
func DescribeChain(chain []string) string {
	if len(chain) == 0 {
		return "a sink"
	}
	op := chain[len(chain)-1]
	if len(chain) == 1 {
		return op
	}
	return op + " (via " + strings.Join(chain[:len(chain)-1], " -> ") + ")"
}
