// Package controlplane mirrors the repo's wire surface: json-tagged
// struct fields in a package of this name are taint sources, so the
// fixture exercises every sink kind, interprocedural chains, a
// channel-crossing flow, and each recognized sanitizer.
package controlplane

import (
	"os"
	"time"
)

// Request is the fixture's wire struct. Each field feeds exactly one
// demo: reject/clamp guards sanitize a field program-wide (the
// validate-at-the-boundary idiom), so sink demos and sanitizer demos
// must not share fields.
type Request struct {
	Tenant  string `json:"tenant"`
	Count   int    `json:"count"`
	Delay   int64  `json:"delay"`
	Path    string `json:"path"`
	Bounded int    `json:"bounded"`
	Small   int    `json:"small"`
	Trusted int    `json:"trusted"`
	skipped int    // no json tag: not wire-decoded, not a source
}

// --- direct sinks ---

func directSinks(req Request) {
	_ = make([]byte, req.Count) // want `wire field Request\.Count reaches an allocation size: make`
	panic(req.Tenant)           // want `wire field Request\.Tenant reaches a panic argument: panic`
}

func durations(req Request) {
	d := time.Duration(req.Delay) // want `wire field Request\.Delay reaches a time\.Duration: time\.Duration`
	time.Sleep(d)                 // want `wire field Request\.Delay reaches a time\.Duration: time\.Sleep`
}

func paths(req Request) {
	f, err := os.Open(req.Path) // want `wire field Request\.Path reaches a file path: os\.Open`
	if err == nil {
		f.Close()
	}
}

func loops(req Request) {
	for i := 0; i < req.Count; i++ { // want `wire field Request\.Count reaches a loop bound: for loop`
		go work() // want `wire field Request\.Count reaches a goroutine-spawn count: go statement`
	}
	for range req.Count { // want `wire field Request\.Count reaches a loop bound: range`
	}
}

func work() {}

func spread(req Request, out []byte) []byte {
	hostile := []byte(req.Tenant)
	return append(out, hostile...) // want `wire field Request\.Tenant reaches an allocation size: append`
}

func unsourced(req Request) {
	_ = make([]byte, req.skipped) // untagged field: no source, no finding
}

// --- a chain crossing a function boundary ---

func grow(n int) []byte {
	// The sink here carries only a param bit, so it is not reported in
	// grow itself; the caller passing a tainted argument is.
	return make([]byte, n)
}

func callsGrow(req Request) {
	_ = grow(req.Count) // want `wire field Request\.Count reaches an allocation size: make \(via controlplane\.grow\)`
}

// --- a chain crossing a channel send ---

var countCh = make(chan int)

func sendCount(req Request) {
	countCh <- req.Count
}

func recvCount() {
	n := <-countCh
	_ = make([]byte, n) // want `wire field Request\.Count reaches an allocation size: make`
}

// --- sanitizers: no findings below this line ---

func rejectGuard(req Request) {
	if req.Bounded > 1024 {
		return
	}
	_ = make([]byte, req.Bounded) // rejected above the sink: clean
}

func clampBuiltin(req Request) {
	n := min(req.Count, 1024)
	_ = make([]byte, n) // clamped to a constant: clean
}

func acceptGuard(req Request) {
	if req.Small <= 512 {
		_ = make([]byte, req.Small) // inside the accepting branch: clean
	}
}

func directiveSanitized(req Request) {
	//reconlint:sanitized the fixture vouches for this count to prove the directive is honored
	_ = make([]byte, req.Trusted)
}

// Validate is recognized by name; a guarded call sanitizes the
// receiver's fields for the rest of the function.
func (r Request) Validate() error { return nil }

func validatorGuard(req Request) {
	if err := req.Validate(); err != nil {
		return
	}
	_ = make([]byte, req.Trusted) // validated root: clean
}
