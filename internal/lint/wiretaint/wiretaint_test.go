package wiretaint_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/wiretaint"
)

func TestWiretaint(t *testing.T) {
	analysistest.Run(t, "testdata", wiretaint.Analyzer, "controlplane")
}
