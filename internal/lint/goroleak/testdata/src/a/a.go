// Package a exercises the goroleak analyzer: goroutines spawned on
// entry paths (main, Run*, Sweep*) must be ctx-cancellable or joined.
package a

import (
	"context"
	"sync"
)

func work() {}

// Fire-and-forget on an entry path: reported.
func RunLeaky() {
	go work() // want `goroutine started on the RunLeaky entry path is neither ctx-cancellable nor joined`
}

// Joined by WaitGroup: clean.
func RunWaited() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// Cancellable: the goroutine selects on the context: clean.
func RunCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// Named worker taking the context as an argument: clean.
func RunNamedCtx(ctx context.Context) {
	go watch(ctx)
}

func watch(ctx context.Context) { <-ctx.Done() }

// Joined by channel: the goroutine closes what the spawner drains.
func RunChan() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

// Worker-pool feed: the spawner sends on the channel the goroutine
// ranges over — opposite ends of one channel, clean.
func RunPool() {
	jobs := make(chan int)
	go func() {
		for j := range jobs {
			_ = j
		}
	}()
	jobs <- 1
	close(jobs)
}

// The leak can hide in a helper on the entry path; it is reported at
// the spawning function.
func RunDeep() { helper() }

func helper() {
	go work() // want `goroutine started on the helper entry path is neither ctx-cancellable nor joined`
}

// Not reachable from any entry point: out of this analyzer's scope.
func orphan() {
	go work()
}
