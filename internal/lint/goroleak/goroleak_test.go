package goroleak_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/goroleak"
)

func TestGoroleak(t *testing.T) {
	analysistest.Run(t, "testdata", goroleak.Analyzer, "a")
}
