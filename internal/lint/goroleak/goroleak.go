// Package goroleak implements the reconlint analyzer that detects
// unowned goroutines on the engine's entry paths.
//
// The sweep/engine contract is that RunSweep/RunScenario return only
// after every goroutine they started has finished (or is provably
// cancellable): a goroutine that outlives its spawner leaks memory per
// call in a long-running control plane and races the next run's state.
// The analyzer walks every `go` statement in functions reachable from
// an entry point (func main, or a name starting with Run or Sweep) and
// demands evidence of ownership, any of:
//
//   - cancellation: the goroutine references a context.Context (ctx
//     passed in, ctx.Done() selected on) so the spawner's caller can
//     stop it;
//   - join by WaitGroup: the goroutine calls Done/Add(-1) on a
//     sync.WaitGroup that some function in the analyzed set Waits on;
//   - join by channel: the goroutine sends on or closes a channel, or
//     receives from one, that the spawning function also touches from
//     the other side (worker-pool feed/drain idiom);
//   - join by handle: `go f(...)` where f's body itself satisfies one
//     of the above (checked one level deep through the call graph).
//
// A goroutine with none of these is reported at the `go` statement.
// Fire-and-forget daemons that are intentional (a pprof server, a
// process-lifetime logger) carry //reconlint:allow goroleak <reason>.
package goroleak

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/dataflow"
)

// Analyzer is the goroleak analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc:  "goroutines on Run*/Sweep*/main entry paths must be cancellable (ctx) or joined (WaitGroup, channel) before return",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	g := dataflow.Resolve(pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo)
	mhp := g.MHP()

	// Entry points: this package's main/Run*/Sweep* declarations.
	var entries []*types.Func
	for _, node := range g.SortedFuncs() {
		if node.Pkg != pass.Pkg {
			continue
		}
		if isEntryName(node.Fn.Name()) {
			entries = append(entries, node.Fn)
		}
	}
	if len(entries) == 0 {
		return nil, nil
	}
	reach := g.Reachable(entries)

	for _, site := range mhp.Spawns {
		if site.Fn.Pkg() != pass.Pkg || !reach[site.Fn] {
			continue
		}
		node := g.Node(site.Fn)
		if node == nil {
			continue
		}
		if ownedSpawn(pass, g, node, site) {
			continue
		}
		pass.Reportf(site.Stmt.Pos(),
			"goroutine started on the %s entry path is neither ctx-cancellable nor joined (WaitGroup/channel) before return; it can outlive the run",
			site.Fn.Name())
	}
	return nil, nil
}

// isEntryName mirrors the errflow entry-point convention.
func isEntryName(name string) bool {
	return name == "main" || strings.HasPrefix(name, "Run") || strings.HasPrefix(name, "Sweep")
}

// ownedSpawn decides whether one go statement shows an ownership
// pattern.
func ownedSpawn(pass *analysis.Pass, g *dataflow.Graph, spawner *dataflow.FuncNode, site dataflow.SpawnSite) bool {
	gs := site.Stmt

	// Evidence scope: the go call's arguments plus, for a literal, its
	// body.
	var bodies []ast.Node
	for _, arg := range gs.Call.Args {
		bodies = append(bodies, arg)
	}
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		bodies = append(bodies, lit.Body)
	} else {
		bodies = append(bodies, gs.Call.Fun)
	}

	info := spawner.Info
	if referencesContext(pass, info, bodies) {
		return true
	}
	if joinedByWaitGroup(info, spawner.Decl.Body, bodies) {
		return true
	}
	if joinedByChannel(info, spawner.Decl.Body, gs, bodies) {
		return true
	}
	// go f(...): look one level into f's body for the same evidence —
	// the common case of a named worker function taking ctx/wg/chan
	// parameters is already covered by the argument scan above, so this
	// catches workers that reach package-level state.
	for _, target := range site.Targets {
		tn := g.Node(target)
		if tn == nil {
			continue
		}
		tb := []ast.Node{tn.Decl.Body}
		if referencesContext(pass, tn.Info, tb) {
			return true
		}
	}
	return false
}

// referencesContext reports whether any node mentions a value of type
// context.Context.
func referencesContext(pass *analysis.Pass, info *types.Info, nodes []ast.Node) bool {
	found := false
	for _, n := range nodes {
		ast.Inspect(n, func(x ast.Node) bool {
			if found {
				return false
			}
			id, ok := x.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.ObjectOf(id)
			if obj == nil {
				return true
			}
			if isContextType(obj.Type()) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// joinedByWaitGroup reports whether the goroutine calls Done (or
// Add(-1)) on a sync.WaitGroup object that the spawning function's body
// Waits on.
func joinedByWaitGroup(info *types.Info, spawnerBody *ast.BlockStmt, goroutine []ast.Node) bool {
	done := waitGroupCalls(info, goroutine, "Done")
	if len(done) == 0 {
		return false
	}
	waited := waitGroupCalls(info, []ast.Node{spawnerBody}, "Wait")
	for obj := range done {
		if waited[obj] {
			return true
		}
	}
	return false
}

// waitGroupCalls collects the base objects of wg.<method>() calls on
// sync.WaitGroup values within nodes.
func waitGroupCalls(info *types.Info, nodes []ast.Node, method string) map[types.Object]bool {
	out := make(map[types.Object]bool)
	for _, n := range nodes {
		ast.Inspect(n, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != method {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
				return true
			}
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil {
					out[obj] = true
				}
			}
			return true
		})
	}
	return out
}

// joinedByChannel reports whether the goroutine and its spawner sit on
// opposite ends of one channel object: the goroutine sends/closes what
// the spawner receives or ranges over, or the goroutine receives/ranges
// what the spawner sends or closes.
func joinedByChannel(info *types.Info, spawnerBody *ast.BlockStmt, gs *ast.GoStmt, goroutine []ast.Node) bool {
	goSend, goRecv := chanEnds(info, goroutine, nil)
	spSend, spRecv := chanEnds(info, []ast.Node{spawnerBody}, gs)
	for obj := range goSend {
		if spRecv[obj] {
			return true
		}
	}
	for obj := range goRecv {
		if spSend[obj] {
			return true
		}
	}
	return false
}

// chanEnds collects the channel objects sent-to/closed (send side) and
// received-from/ranged-over (recv side) in nodes, skipping the subtree
// rooted at skip (the go statement itself, when scanning its spawner).
func chanEnds(info *types.Info, nodes []ast.Node, skip ast.Node) (send, recv map[types.Object]bool) {
	send = make(map[types.Object]bool)
	recv = make(map[types.Object]bool)
	chanObj := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return nil
		}
		if _, ok := obj.Type().Underlying().(*types.Chan); !ok {
			return nil
		}
		return obj
	}
	for _, n := range nodes {
		ast.Inspect(n, func(x ast.Node) bool {
			if x == skip {
				return false
			}
			switch x := x.(type) {
			case *ast.SendStmt:
				if obj := chanObj(x.Chan); obj != nil {
					send[obj] = true
				}
			case *ast.UnaryExpr:
				if x.Op.String() == "<-" {
					if obj := chanObj(x.X); obj != nil {
						recv[obj] = true
					}
				}
			case *ast.RangeStmt:
				if obj := chanObj(x.X); obj != nil {
					recv[obj] = true
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "close" {
					if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin && len(x.Args) == 1 {
						// Closing counts as the send side (the owner
						// signalling completion).
						if obj := chanObj(x.Args[0]); obj != nil {
							send[obj] = true
						}
					}
				}
			}
			return true
		})
	}
	return send, recv
}
