// Package detrand implements the reconlint analyzer that keeps
// nondeterministic entropy sources out of simulation logic.
//
// Replicated simulation runs must be bit-reproducible (workers=1 ≡
// workers=N is enforced by TestSweepDeterminism), so simulation
// packages may not draw randomness from process-global or wall-clock
// state. RNGs must flow from an explicit seed via sim.NewRNG /
// sim.SplitSeed. The analyzer reports:
//
//   - any use of a package-level math/rand or math/rand/v2 function or
//     variable (rand.Intn, rand.Float64, rand.Seed, …); the seeded
//     constructors New, NewSource, NewZipf, NewPCG, and NewChaCha8 are
//     exempt because their seed is explicit at the call site,
//   - any use of crypto/rand (hardware entropy is never reproducible),
//   - wall-clock reads: time.Now, time.Since, time.Until.
//
// Wall-clock timing that never feeds simulation state (sweep elapsed
// time, profiler instrumentation) is suppressed with
// //reconlint:allow detrand <reason>, or by keeping the package out of
// the driver's detrand scope (internal/profiler).
package detrand

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the detrand analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid global math/rand, crypto/rand, and wall-clock reads in simulation packages",
	Run:  run,
}

// seededConstructors are math/rand entry points whose determinism is
// decided by their explicit argument, not by global state.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// wallClock are the time package functions that read the wall clock.
var wallClock = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			if !isPackageLevel(obj) {
				return true
			}
			switch obj.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if _, isType := obj.(*types.TypeName); isType {
					return true // rand.Rand / rand.Source in signatures is fine
				}
				if seededConstructors[obj.Name()] {
					return true
				}
				pass.Reportf(id.Pos(),
					"use of global %s.%s: simulation randomness must come from an explicitly seeded RNG (sim.NewRNG / sim.SplitSeed)",
					obj.Pkg().Path(), obj.Name())
			case "crypto/rand":
				pass.Reportf(id.Pos(),
					"use of crypto/rand.%s: hardware entropy is not reproducible; derive randomness from the run seed",
					obj.Name())
			case "time":
				if fn, ok := obj.(*types.Func); ok && wallClock[fn.Name()] {
					pass.Reportf(id.Pos(),
						"wall-clock read time.%s in simulation code: use virtual time (sim.Time) so replicated runs stay bit-identical",
						fn.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}

// isPackageLevel reports whether obj is declared at package scope in
// its defining package (methods and locals are not).
func isPackageLevel(obj types.Object) bool {
	if fn, ok := obj.(*types.Func); ok && fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}
