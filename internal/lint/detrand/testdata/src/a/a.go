// Package a exercises the detrand analyzer: global entropy and
// wall-clock reads are flagged; seeded constructors, RNG instance
// methods, and allow-directives are not.
package a

import (
	crand "crypto/rand"
	"math/rand"
	mrv2 "math/rand/v2"
	"time"
)

func bad() {
	_ = rand.Intn(10)           // want `use of global math/rand\.Intn`
	rand.Seed(1)                // want `use of global math/rand\.Seed`
	_ = rand.Float64()          // want `use of global math/rand\.Float64`
	_ = mrv2.IntN(4)            // want `use of global math/rand/v2\.IntN`
	_, _ = crand.Read(nil)      // want `use of crypto/rand\.Read`
	_ = time.Now()              // want `wall-clock read time\.Now`
	_ = time.Since(time.Time{}) // want `wall-clock read time\.Since`
	_ = time.Until(time.Time{}) // want `wall-clock read time\.Until`
}

func good(seed int64) {
	r := rand.New(rand.NewSource(seed)) // seeded constructor: fine
	_ = r.Intn(10)                      // instance method: fine
	r2 := mrv2.New(mrv2.NewPCG(1, 2))   // seeded v2 constructor: fine
	_ = r2.IntN(10)
	_ = time.Duration(5) * time.Second // time types and constants: fine
	var t time.Time
	_ = t.Add(time.Hour)
}

func allowed() {
	_ = time.Now() //reconlint:allow detrand fixture wall-clock timer that never feeds sim state
}

func allowedAbove() time.Time {
	//reconlint:allow detrand directive on the line above also suppresses
	return time.Now()
}
