// Package maporder implements the reconlint analyzer that catches
// order-dependent work performed while ranging over a map.
//
// Go randomizes map iteration order, so any computation inside
// `for k, v := range m` whose result depends on visit order wobbles
// between runs — exactly the bug class of the power.TotalJoules float
// summation that broke EnergyJoules reproducibility in the last bit.
// The analyzer reports, inside a range-over-map body:
//
//   - floating-point accumulation involving the iteration variables
//     (float addition is not associative, so visit order changes the
//     rounding),
//   - appends of iteration-derived values to a slice, unless that
//     slice is later passed to a sort.*/slices.Sort* call in the same
//     function (the collect-then-sort idiom, e.g. power.inKindOrder,
//     is the sanctioned fix),
//   - output and metrics emission (Print/Write/AddRow/Observe/…) that
//     mentions the iteration variables,
//   - channel sends of iteration-derived values.
//
// The fix is sorted-key iteration: collect the keys, sort them, then
// range over the sorted slice.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Analyzer is the maporder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag order-dependent float accumulation, appends, and output inside range-over-map loops",
	Run:  run,
}

// emitNames are callee names treated as output or metrics emission.
var emitNames = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"AddRow": true, "Observe": true, "Record": true, "Emit": true,
	"Log": true, "Logf": true, "Fatal": true, "Fatalf": true,
}

// sortCallees maps qualified sort-function names that make a collected
// slice order-independent again.
var sortCallees = map[string]bool{
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true,
	"sort.Stable": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sorted := sortedSlices(pass, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if t := pass.TypeOf(rs.X); t == nil || !isMap(t) {
					return true
				}
				checkBody(pass, rs, sorted)
				return true
			})
		}
	}
	return nil, nil
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// sortedSlices collects the objects of every slice passed to a
// recognized sort call anywhere in the function body.
func sortedSlices(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call)
		if !sortCallees[name] {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := pass.ObjectOf(id); obj != nil {
						out[obj] = true
					}
				}
				return true
			})
		}
		return true
	})
	return out
}

// calleeName renders a call's callee as pkg.Func or recv-less Name.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if x, ok := fun.X.(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return ""
}

// checkBody inspects one range-over-map body for order-dependent work.
func checkBody(pass *analysis.Pass, rs *ast.RangeStmt, sorted map[types.Object]bool) {
	loopVars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
			loopVars[obj] = true
		}
	}
	mentions := func(e ast.Node) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && loopVars[pass.ObjectOf(id)] {
				found = true
				return false
			}
			return !found
		})
		return found
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, st, mentions, sorted)
		case *ast.ExprStmt:
			if call, ok := st.X.(*ast.CallExpr); ok {
				checkEmit(pass, call, mentions)
			}
		case *ast.SendStmt:
			if mentions(st.Value) || mentions(st.Chan) {
				pass.Reportf(st.Arrow,
					"channel send inside range over map: receive order depends on map iteration order; iterate sorted keys instead")
			}
		}
		return true
	})
}

// checkAssign flags float accumulation and unsorted appends.
func checkAssign(pass *analysis.Pass, st *ast.AssignStmt, mentions func(ast.Node) bool, sorted map[types.Object]bool) {
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(st.Lhs) == 1 && isFloat(pass.TypeOf(st.Lhs[0])) && mentions(st.Rhs[0]) {
			pass.Reportf(st.TokPos,
				"floating-point accumulation inside range over map: float addition is not associative, so map iteration order changes the result; iterate sorted keys (see power.inKindOrder)")
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range st.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
					if _, isBuiltin := pass.ObjectOf(id).(*types.Builtin); isBuiltin {
						checkAppend(pass, st, i, call, mentions, sorted)
						continue
					}
				}
			}
			// x = x + f(v) style float accumulation.
			if i < len(st.Lhs) && st.Tok == token.ASSIGN {
				if bin, ok := ast.Unparen(rhs).(*ast.BinaryExpr); ok && isFloat(pass.TypeOf(st.Lhs[i])) &&
					sameIdent(pass, st.Lhs[i], bin.X) && mentions(bin.Y) {
					pass.Reportf(st.TokPos,
						"floating-point accumulation inside range over map: float addition is not associative, so map iteration order changes the result; iterate sorted keys (see power.inKindOrder)")
				}
			}
		}
	}
}

// checkAppend flags `s = append(s, …loop-derived…)` unless s is sorted
// later in the same function.
func checkAppend(pass *analysis.Pass, st *ast.AssignStmt, i int, call *ast.CallExpr, mentions func(ast.Node) bool, sorted map[types.Object]bool) {
	derived := false
	for _, arg := range call.Args[1:] {
		if mentions(arg) {
			derived = true
			break
		}
	}
	if !derived {
		return
	}
	if i < len(st.Lhs) {
		// The collect-then-sort idiom: the target (a variable, or the
		// field of one) is passed to a sort call later in the function.
		var target *ast.Ident
		switch lhs := ast.Unparen(st.Lhs[i]).(type) {
		case *ast.Ident:
			target = lhs
		case *ast.SelectorExpr:
			target = lhs.Sel
		}
		if target != nil {
			if obj := pass.ObjectOf(target); obj != nil && sorted[obj] {
				return
			}
		}
	}
	pass.Reportf(call.Pos(),
		"append of map-iteration values in map order: element order will differ between runs; collect into the slice and sort it, or iterate sorted keys")
}

// checkEmit flags output/metrics calls that mention the loop variables.
func checkEmit(pass *analysis.Pass, call *ast.CallExpr, mentions func(ast.Node) bool) {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return
	}
	if !emitNames[name] {
		return
	}
	for _, arg := range call.Args {
		if mentions(arg) {
			pass.Reportf(call.Pos(),
				"%s inside range over map emits in map iteration order: output will differ between runs; iterate sorted keys", name)
			return
		}
	}
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// sameIdent reports whether a and b are the same resolved identifier.
func sameIdent(pass *analysis.Pass, a, b ast.Expr) bool {
	ia, ok1 := ast.Unparen(a).(*ast.Ident)
	ib, ok2 := ast.Unparen(b).(*ast.Ident)
	if !ok1 || !ok2 {
		return false
	}
	oa, ob := pass.ObjectOf(ia), pass.ObjectOf(ib)
	return oa != nil && oa == ob
}
