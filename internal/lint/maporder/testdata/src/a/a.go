// Package a exercises the maporder analyzer: order-dependent float
// accumulation, appends, output, and channel sends inside
// range-over-map loops are flagged; the collect-then-sort idiom,
// order-independent bodies, and allow-directives are not.
package a

import (
	"fmt"
	"sort"
)

func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `floating-point accumulation inside range over map`
	}
	return total
}

func assignFormSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `floating-point accumulation inside range over map`
	}
	return total
}

func sortedSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collect-then-sort: fine
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys { // ranging a slice: fine
		total += m[k]
	}
	return total
}

func collectUnsorted(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want `append of map-iteration values in map order`
	}
	return out
}

type listing struct {
	names []string
}

func fieldSorted(m map[string]int) listing {
	var l listing
	for k := range m {
		l.names = append(l.names, k) // sorted below: fine
	}
	sort.Strings(l.names)
	return l
}

func emit(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `Printf inside range over map`
	}
}

func send(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `channel send inside range over map`
	}
}

func intCount(m map[string]int) int {
	n := 0
	for range m { // no loop variables: fine
		n++
	}
	return n
}

func orderFreeFloat(m map[string]int) float64 {
	x := 0.0
	for range m {
		x += 1 // constant step, no loop variables: fine
	}
	return x
}

func intAccumulation(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // integer addition is associative: fine
	}
	return total
}

func mapWrite(src map[string]int, dst map[string]int) {
	for k, v := range src {
		dst[k] = v // keyed writes commute: fine
	}
}

func allowedEmit(m map[string]int) {
	for k := range m {
		fmt.Println(k) //reconlint:allow maporder fixture diagnostic dump, order deliberately irrelevant
	}
}
