// Package analysis is a deliberately small, stdlib-only mirror of the
// golang.org/x/tools/go/analysis API: an Analyzer inspects one
// type-checked package through a Pass and reports position-accurate
// Diagnostics.
//
// The build environment for this repository is offline, so the real
// x/tools module cannot be pinned in go.mod. Field and type names below
// match x/tools exactly for the subset we use; migrating an analyzer to
// the upstream framework is a one-line import change.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. Name appears in diagnostics and
// in //reconlint:allow directives; Doc is the one-paragraph help text.
type Analyzer struct {
	Name string
	Doc  string
	// Run inspects a package via the Pass and reports findings through
	// pass.Report / pass.Reportf. The first return value is unused by
	// this repo's driver but kept for x/tools signature compatibility.
	Run func(*Pass) (interface{}, error)
}

// Pass hands one type-checked package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one finding to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos token.Pos
	// Category is the reporting analyzer's name, filled by the driver.
	Category string
	Message  string
	// SuggestedFixes are machine-applicable repairs for this finding,
	// consumed by the driver's -fix mode. A diagnostic with no fixes is
	// report-only.
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one self-contained repair: applying every edit in it
// resolves the diagnostic. Edits within a fix must not overlap.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces the source range [Pos, End) with NewText. A zero
// End means End = Pos (pure insertion).
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if t, ok := p.TypesInfo.Types[e]; ok {
		return t.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// ObjectOf resolves an identifier to its types.Object (use or def), or
// nil when the identifier is not resolved (e.g. a parse-error artifact).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	return p.TypesInfo.ObjectOf(id)
}

// FuncOf resolves the callee of a call expression to a *types.Func when
// the callee is a plain identifier or selector naming a function or
// method (instantiated generic calls included); it returns nil for
// function-typed variables, conversions, and builtins.
func (p *Pass) FuncOf(call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	// Strip the type-argument index of an instantiated generic callee:
	// f[int](...) names f.
	for {
		if ix, ok := fun.(*ast.IndexExpr); ok {
			fun = ast.Unparen(ix.X)
			continue
		}
		if ix, ok := fun.(*ast.IndexListExpr); ok {
			fun = ast.Unparen(ix.X)
			continue
		}
		break
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		if fn, ok := p.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := p.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
