package seedflow_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/seedflow"
)

func TestSeedflow(t *testing.T) {
	analysistest.Run(t, "testdata", seedflow.Analyzer, "grid")
}
