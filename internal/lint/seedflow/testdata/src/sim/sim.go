// Package sim is a fixture mirror of the repo's deterministic RNG: the
// seedflow analyzer recognizes it by package name and type name, so
// the fixture exercises the same special cases as the real package.
package sim

// RNG is a deterministic splittable generator.
type RNG struct{ state uint64 }

// NewRNG seeds a generator; the seed argument is a seedflow sink.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 advances the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return r.state
}

// Float64 draws from [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Split derives an independent child stream; by contract the result is
// seed-derived whenever the parent was seeded at all.
func (r *RNG) Split(label string) *RNG {
	return &RNG{state: r.Uint64() ^ uint64(len(label))}
}

// SplitSeed derives a child seed for stream i.
func (r *RNG) SplitSeed(i uint64) uint64 {
	return r.state ^ (i * 0xbf58476d1ce4e5b9)
}
