// Package grid is the seedflow golden fixture: every way a seed can
// reach an RNG constructor, good and bad.
package grid

import (
	"math/rand"
	"time"

	"sim"
)

// Spec mirrors ScenarioSpec: a Seed field is a seed-derived root.
type Spec struct {
	Seed uint64
	Name string
}

// BadConstant plants the canonical violation: a literal seed.
func BadConstant() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `constant seed reaches rand\.NewSource`
}

// BadWallClock seeds from the wall clock, so replicated runs diverge.
func BadWallClock() *sim.RNG {
	return sim.NewRNG(uint64(time.Now().UnixNano())) // want `wall-clock-derived seed reaches sim\.NewRNG`
}

// BadGlobalRand launders the shared global generator into a seed.
func BadGlobalRand() *sim.RNG {
	seed := rand.Uint64()
	return sim.NewRNG(seed) // want `global-rand-derived seed reaches sim\.NewRNG`
}

// GoodSpecSeed threads the scenario seed: no finding.
func GoodSpecSeed(spec Spec) *sim.RNG {
	return sim.NewRNG(spec.Seed)
}

// GoodSplit derives per-replica seeds from a parent stream: no finding.
func GoodSplit(spec Spec, i uint64) *sim.RNG {
	root := sim.NewRNG(spec.Seed)
	return sim.NewRNG(root.SplitSeed(i))
}

// newRNGFor is an interprocedural hop: its parameter is a seed sink by
// propagation, so call sites are judged by what they pass.
func newRNGFor(seed uint64) *sim.RNG {
	return sim.NewRNG(seed)
}

// BadThroughHelper feeds a constant through the helper.
func BadThroughHelper() *sim.RNG {
	return newRNGFor(1234) // want `constant seed reaches`
}

// GoodThroughHelper feeds the spec seed through the same helper.
func GoodThroughHelper(spec Spec) *sim.RNG {
	return newRNGFor(spec.Seed)
}

// Allowed documents a deliberate fixed seed; the directive suppresses
// the finding.
func Allowed() *rand.Rand {
	//reconlint:allow seedflow fixed seed for the docs example
	return rand.New(rand.NewSource(7))
}
