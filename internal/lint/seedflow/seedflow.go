// Package seedflow implements the reconlint analyzer that proves RNG
// seed provenance across function boundaries.
//
// The determinism contract (workers=1 ≡ workers=N, byte-identical
// traces under faults) requires every random stream in simulation code
// to derive from the scenario seed: ScenarioSpec.Seed, SweepSpec
// replica seeds, or a sim.RNG Split/SplitSeed of one. detrand already
// bans *global* randomness syntactically; seedflow closes the
// interprocedural gap: a locally-constructed RNG whose seed is a
// constant literal, a wall-clock read, or a global-rand draw silently
// breaks reproducibility even though every call looks innocent in
// isolation.
//
// Using the dataflow layer's call graph and provenance lattice, the
// analyzer inspects every RNG-construction seed argument reachable from
// this package's functions — rand.NewSource / rand.NewPCG / rand.Seed /
// sim.NewRNG directly, or any function a summary proves forwards a
// parameter into one — and reports arguments whose provenance is
// constant, wall-clock-derived, or global-rand-derived. Seed-derived
// and unprovable (unknown) arguments pass: the analyzer flags what it
// can prove wrong, not what it cannot prove right.
//
// Escape hatch: //reconlint:allow seedflow <reason> on or above the
// offending line (a fixed golden-trace seed, for example).
package seedflow

import (
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/dataflow"
)

// Analyzer is the seedflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "seedflow",
	Doc:  "RNG seeds in simulation code must be provenance-traceable to the scenario seed (no constant, wall-clock, or global-rand seeds)",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	g := dataflow.Resolve(pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo)
	for _, node := range g.SortedFuncs() {
		if node.Pkg != pass.Pkg {
			continue
		}
		sum := g.Summary(node.Fn)
		if sum == nil {
			continue
		}
		for _, sink := range sum.Sinks {
			switch sink.Arg.Prov {
			case dataflow.Constant, dataflow.WallClock, dataflow.GlobalRand:
				pass.Reportf(sink.Pos,
					"%s seed reaches %s: derive the seed from ScenarioSpec.Seed / SplitSeed so replicated runs stay reproducible",
					sink.Arg.Prov, describeChain(sink.Chain))
			}
		}
	}
	return nil, nil
}

// describeChain renders a sink chain: "sim.NewRNG" for a direct call,
// "sim.NewRNG (via newThing)" for one forwarded through callees.
func describeChain(chain []string) string {
	if len(chain) == 0 {
		return "an RNG constructor"
	}
	ctor := chain[len(chain)-1]
	if len(chain) == 1 {
		return ctor
	}
	return ctor + " (via " + strings.Join(chain[:len(chain)-1], " -> ") + ")"
}
