// Package lint assembles the reconlint analyzer suite: which analyzers
// exist, which packages each one polices, and how diagnostics are
// collected, deduplicated, and filtered through //reconlint:allow
// directives. cmd/reconlint is a thin driver over this package.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/chanmisuse"
	"repro/internal/lint/ctxflow"
	"repro/internal/lint/dataflow"
	"repro/internal/lint/deprecatedshim"
	"repro/internal/lint/detrand"
	"repro/internal/lint/directive"
	"repro/internal/lint/errflow"
	"repro/internal/lint/goroleak"
	"repro/internal/lint/hotalloc"
	"repro/internal/lint/loader"
	"repro/internal/lint/lockcheck"
	"repro/internal/lint/lockorder"
	"repro/internal/lint/logtaint"
	"repro/internal/lint/maporder"
	"repro/internal/lint/seedflow"
	"repro/internal/lint/sizecap"
	"repro/internal/lint/wiretaint"
)

// Diagnostic is one resolved finding with its file position.
type Diagnostic struct {
	Position token.Position
	Analyzer string
	Message  string
	// SuggestedFixes carries machine-applicable repairs (driver -fix).
	SuggestedFixes []analysis.SuggestedFix
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Position, d.Message, d.Analyzer)
}

// ScopedAnalyzer pairs an analyzer with the package scope it polices.
type ScopedAnalyzer struct {
	*analysis.Analyzer
	// Applies reports whether the analyzer runs on a package, by import
	// path. Scoping is by path segment, so it holds for any module name
	// (the real tree and test fixtures alike).
	Applies func(importPath string) bool
}

// pathHasDir reports whether importPath contains dir as a consecutive
// run of path segments ("internal/grid" matches "repro/internal/grid").
func pathHasDir(importPath, dir string) bool {
	return strings.Contains("/"+importPath+"/", "/"+dir+"/")
}

// simulationScope is the detrand scope: everything under internal/
// except the wall-clock profiler (its whole purpose is wall-clock
// instrumentation) and the linter itself.
func simulationScope(importPath string) bool {
	return pathHasDir(importPath, "internal") &&
		!pathHasDir(importPath, "internal/profiler") &&
		!pathHasDir(importPath, "internal/lint")
}

func everywhere(string) bool { return true }

// seedflowScope covers the packages whose randomness must derive from
// the scenario seed: the simulation core and everything the engine
// touches per event.
func seedflowScope(importPath string) bool {
	for _, dir := range []string{
		"internal/sim", "internal/grid", "internal/faults",
		"internal/sched", "internal/rms",
	} {
		if pathHasDir(importPath, dir) {
			return true
		}
	}
	return false
}

// errflowScope covers the engine execution paths plus the command
// mains that drive them.
func errflowScope(importPath string) bool {
	if pathHasDir(importPath, "cmd") {
		return true
	}
	for _, dir := range []string{
		"internal/grid", "internal/rms", "internal/faults", "internal/sim",
	} {
		if pathHasDir(importPath, dir) {
			return true
		}
	}
	return false
}

// concurrencyScope covers the packages that share mutable state across
// goroutines: the engine, the RMS control plane, and the observability
// sinks (all hold locks; the engine and sweeps spawn workers).
func concurrencyScope(importPath string) bool {
	for _, dir := range []string{
		"internal/grid", "internal/rms", "internal/obs",
		"internal/sim", "internal/faults",
	} {
		if pathHasDir(importPath, dir) {
			return true
		}
	}
	return false
}

// goroleakScope is concurrencyScope plus the command mains (entry
// points that must not leak goroutines past a run).
func goroleakScope(importPath string) bool {
	return pathHasDir(importPath, "cmd") || concurrencyScope(importPath)
}

// taintScope covers the multi-tenant trust boundary: the wire control
// plane and scheduler it feeds, plus the server and load-driver mains
// whose flag/env input shapes resource limits.
func taintScope(importPath string) bool {
	for _, dir := range []string{
		"internal/controlplane", "internal/jss",
		"cmd/rmsd", "cmd/gridload",
	} {
		if pathHasDir(importPath, dir) {
			return true
		}
	}
	return false
}

// Suite returns the reconlint analyzer suite with its package scoping.
func Suite() []ScopedAnalyzer {
	return []ScopedAnalyzer{
		{Analyzer: detrand.Analyzer, Applies: simulationScope},
		{Analyzer: maporder.Analyzer, Applies: everywhere},
		{Analyzer: ctxflow.Analyzer, Applies: func(p string) bool { return pathHasDir(p, "internal/grid") }},
		{Analyzer: lockcheck.Analyzer, Applies: everywhere},
		{Analyzer: deprecatedshim.Analyzer, Applies: everywhere},
		{Analyzer: seedflow.Analyzer, Applies: seedflowScope},
		{Analyzer: errflow.Analyzer, Applies: errflowScope},
		// hotalloc runs everywhere: it only fires inside functions that
		// opted in with //reconlint:hotpath.
		{Analyzer: hotalloc.Analyzer, Applies: everywhere},
		// Concurrency analyzers (flow-sensitive, on the dataflow CFG and
		// lockset layer).
		{Analyzer: lockorder.Analyzer, Applies: concurrencyScope},
		{Analyzer: goroleak.Analyzer, Applies: goroleakScope},
		{Analyzer: chanmisuse.Analyzer, Applies: goroleakScope},
		// Taint analyzers (interprocedural taint lattice over the trust
		// boundary: wire structs, flags, env).
		{Analyzer: wiretaint.Analyzer, Applies: taintScope},
		{Analyzer: sizecap.Analyzer, Applies: taintScope},
		{Analyzer: logtaint.Analyzer, Applies: taintScope},
	}
}

// Prepare runs the whole-program pre-passes the per-package analyzers
// rely on: the deprecated-function registry and the interprocedural
// dataflow graph (call graph + provenance summaries). Pass every
// loaded package, dependencies included — cross-package provenance is
// only as complete as the package set handed in.
func Prepare(pkgs []*loader.Package) {
	RegisterDeprecated(pkgs)
	infos := make([]*dataflow.PackageInfo, 0, len(pkgs))
	for _, p := range pkgs {
		infos = append(infos, &dataflow.PackageInfo{
			Fset: p.Fset, Files: p.Syntax, Pkg: p.Types, Info: p.Info,
		})
	}
	dataflow.SetProgram(dataflow.Build(infos))
}

// RegisterDeprecated pre-scans loaded packages for functions and types
// whose doc comment carries a "Deprecated:" paragraph and registers
// them with the deprecatedshim analyzer, so cross-package uses are
// caught.
func RegisterDeprecated(pkgs []*loader.Package) {
	for _, pkg := range pkgs {
		for _, f := range pkg.Syntax {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					note := deprecatedshim.DeprecationNote(d.Doc)
					if note == "" {
						continue
					}
					if obj, ok := pkg.Info.Defs[d.Name].(interface{ FullName() string }); ok {
						deprecatedshim.Register(obj.FullName(), note)
					}
				case *ast.GenDecl:
					if d.Tok != token.TYPE {
						continue
					}
					for _, s := range d.Specs {
						ts, ok := s.(*ast.TypeSpec)
						if !ok {
							continue
						}
						note := deprecatedshim.TypeSpecNote(d, ts)
						if note == "" {
							continue
						}
						if pkg.Types != nil {
							deprecatedshim.RegisterType(pkg.Types.Path()+"."+ts.Name.Name, note)
						}
					}
				}
			}
		}
	}
}

// RunPackage runs every in-scope analyzer over one loaded package and
// returns the surviving diagnostics in position order. Directive
// problems (an allow with no reason) are reported under the pseudo
// analyzer name "reconlint".
func RunPackage(pkg *loader.Package, suite []ScopedAnalyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	seen := make(map[string]bool)
	add := func(analyzer string, pos token.Pos, msg string, fixes []analysis.SuggestedFix) {
		d := Diagnostic{Position: pkg.Fset.Position(pos), Analyzer: analyzer, Message: msg, SuggestedFixes: fixes}
		key := d.String()
		if !seen[key] {
			seen[key] = true
			out = append(out, d)
		}
	}

	_, problems := directive.Parse(pkg.Syntax)
	for _, p := range problems {
		add("reconlint", p.Pos, p.Message, nil)
	}
	_, sanProblems := directive.ParseSanitized(pkg.Syntax)
	for _, p := range sanProblems {
		add("reconlint", p.Pos, p.Message, nil)
	}

	for _, sa := range suite {
		if sa.Applies != nil && !sa.Applies(pkg.ImportPath) {
			continue
		}
		suppressed := directive.Suppresses(pkg.Fset, pkg.Syntax, sa.Name)
		pass := &analysis.Pass{
			Analyzer:  sa.Analyzer,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		name := sa.Name
		pass.Report = func(d analysis.Diagnostic) {
			if suppressed(d.Pos) {
				return
			}
			add(name, d.Pos, d.Message, d.SuggestedFixes)
		}
		if _, err := sa.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", sa.Name, pkg.ImportPath, err)
		}
	}

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Position, out[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
