package errflow_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/errflow"
)

func TestErrflow(t *testing.T) {
	analysistest.Run(t, "testdata", errflow.Analyzer, "a")
}
