// Package errflow implements the reconlint analyzer that flags dropped
// errors and swallowed cancellation along the engine's execution paths.
//
// A dropped error on the event loop or a retry path turns a fault into
// silent metric corruption — exactly the failure mode the invariant
// test layer exists to catch, one layer too late. The analyzer uses
// the dataflow call graph to compute the set of functions reachable
// from the engine entry points (main.main, Run*, Sweep*) — interface
// calls resolved via CHA, event-loop closures attributed to the
// function that scheduled them — and inside that set reports:
//
//   - a call statement that silently discards an error result (an
//     explicit `_ =` assignment is a visible, auditable drop and is
//     allowed; the fmt print family and never-failing in-memory
//     writers like strings.Builder and bytes.Buffer are exempt),
//   - `go`/`defer` statements discarding an error result,
//   - a ctx.Err() result that is discarded outright,
//   - `return nil` inside a <-ctx.Done() select case in a function
//     returning error: cancellation observed, then swallowed.
//
// Escape hatch: //reconlint:allow errflow <reason>.
package errflow

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/dataflow"
)

// Analyzer is the errflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errflow",
	Doc:  "no dropped error returns or swallowed ctx.Err() on paths reachable from engine entry points",
	Run:  run,
}

var errorType = types.Universe.Lookup("error").Type()

func run(pass *analysis.Pass) (interface{}, error) {
	g := dataflow.Resolve(pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo)
	var roots []*types.Func
	for _, node := range g.SortedFuncs() {
		if isRoot(node.Fn) {
			roots = append(roots, node.Fn)
		}
	}
	reach := g.Reachable(roots)
	c := &checker{pass: pass}
	for _, node := range g.SortedFuncs() {
		if node.Pkg != pass.Pkg || !reach[node.Fn] {
			continue
		}
		sig := node.Fn.Type().(*types.Signature)
		c.checkBody(node.Decl.Body, sig)
	}
	return nil, nil
}

// isRoot reports whether fn anchors reachability: a program entry point
// or an engine run/sweep entry.
func isRoot(fn *types.Func) bool {
	if fn.Pkg() != nil && fn.Pkg().Name() == "main" && fn.Name() == "main" {
		return true
	}
	return strings.HasPrefix(fn.Name(), "Run") || strings.HasPrefix(fn.Name(), "Sweep")
}

type checker struct {
	pass *analysis.Pass
}

// checkBody walks one function body; nested literals are checked
// against their own signatures (their returns are theirs, not the
// enclosing function's).
func (c *checker) checkBody(body *ast.BlockStmt, sig *types.Signature) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if litSig, ok := c.pass.TypeOf(n).(*types.Signature); ok {
				c.checkBody(n.Body, litSig)
			}
			return false
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				c.checkDropped(call, "")
			}
		case *ast.GoStmt:
			c.checkDropped(n.Call, "go ")
		case *ast.DeferStmt:
			c.checkDropped(n.Call, "defer ")
		case *ast.AssignStmt:
			c.checkBlankCtxErr(n)
		case *ast.CommClause:
			c.checkDoneCase(n, sig)
		}
		return true
	})
	// Comm clauses and nested statements are handled above; nothing else
	// to do at the body level.
}

// errorResults counts error-typed results in a call's type.
func errorResults(t types.Type) (errs, total int) {
	if t == nil {
		return 0, 0
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errorType) {
				errs++
			}
		}
		return errs, tuple.Len()
	}
	if types.Identical(t, errorType) {
		return 1, 1
	}
	return 0, 1
}

// fmtPrintFamily are conventionally-unchecked writers to std streams.
var fmtPrintFamily = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// neverFails reports whether fn is a method documented to always
// return a nil error: writes to in-memory buffers (strings.Builder,
// bytes.Buffer). Flagging those would only breed noise `_ =` clutter.
func neverFails(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

func (c *checker) checkDropped(call *ast.CallExpr, stmtKind string) {
	tv, ok := c.pass.TypesInfo.Types[call]
	if !ok {
		return
	}
	errs, total := errorResults(tv.Type)
	if errs == 0 {
		return
	}
	if fn := c.pass.FuncOf(call); fn != nil {
		if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" && fmtPrintFamily[fn.Name()] {
			return
		}
		if neverFails(fn) {
			return
		}
		if c.isCtxErr(fn) {
			c.pass.Report(analysis.Diagnostic{
				Pos:     call.Pos(),
				Message: "ctx.Err() result discarded: the observed cancellation never reaches the caller",
			})
			return
		}
	}
	name := calleeLabel(c.pass, call)
	d := analysis.Diagnostic{
		Pos:     call.Pos(),
		Message: "error result of " + name + " silently dropped on a Run-reachable path; handle it or discard explicitly with _ =",
	}
	if stmtKind == "" {
		// Autofix: make the drop explicit and auditable.
		blanks := make([]string, total)
		for i := range blanks {
			blanks[i] = "_"
		}
		d.SuggestedFixes = []analysis.SuggestedFix{{
			Message: "assign discarded results to blank explicitly",
			TextEdits: []analysis.TextEdit{{
				Pos: call.Pos(), End: call.Pos(),
				NewText: []byte(strings.Join(blanks, ", ") + " = "),
			}},
		}}
	} else {
		d.Message = "error result of " + stmtKind + name + " silently dropped on a Run-reachable path; handle it in the " +
			strings.TrimSpace(stmtKind) + "ed function or wrap the call"
	}
	c.pass.Report(d)
}

// checkBlankCtxErr flags `_ = ctx.Err()`: unlike other errors, blank-
// assigning a cancellation check is never a deliberate drop — the call
// has no side effects, so the statement does nothing at all.
func (c *checker) checkBlankCtxErr(as *ast.AssignStmt) {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name != "_" {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	if fn := c.pass.FuncOf(call); fn != nil && c.isCtxErr(fn) {
		c.pass.Reportf(call.Pos(),
			"ctx.Err() result discarded: the observed cancellation never reaches the caller")
	}
}

// isCtxErr reports whether fn is (context.Context).Err.
func (c *checker) isCtxErr(fn *types.Func) bool {
	if fn.Name() != "Err" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return isContextType(sig.Recv().Type())
}

// checkDoneCase flags `case <-ctx.Done(): … return nil` in a function
// whose last result is error.
func (c *checker) checkDoneCase(clause *ast.CommClause, sig *types.Signature) {
	nres := sig.Results().Len()
	if nres == 0 || !types.Identical(sig.Results().At(nres-1).Type(), errorType) {
		return
	}
	ctxExpr := doneReceiver(c.pass, clause.Comm)
	if ctxExpr == nil {
		return
	}
	for _, stmt := range clause.Body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || len(ret.Results) != nres {
				return true
			}
			last := ret.Results[nres-1]
			if id, ok := last.(*ast.Ident); ok && id.Name == "nil" {
				var buf strings.Builder
				_ = printer.Fprint(&buf, c.pass.Fset, ctxExpr) //reconlint:allow errflow printing to a Builder cannot fail
				c.pass.Report(analysis.Diagnostic{
					Pos: last.Pos(),
					Message: "cancellation observed via <-" + buf.String() + ".Done() but nil returned: return " +
						buf.String() + ".Err() so callers see it",
					SuggestedFixes: []analysis.SuggestedFix{{
						Message: "return the context's error",
						TextEdits: []analysis.TextEdit{{
							Pos: last.Pos(), End: last.End(),
							NewText: []byte(buf.String() + ".Err()"),
						}},
					}},
				})
			}
			return true
		})
	}
}

// doneReceiver extracts ctx from a `<-ctx.Done()` comm statement.
func doneReceiver(pass *analysis.Pass, comm ast.Stmt) ast.Expr {
	var recv ast.Expr
	switch s := comm.(type) {
	case *ast.ExprStmt:
		recv = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			recv = s.Rhs[0]
		}
	}
	un, ok := ast.Unparen(recv).(*ast.UnaryExpr)
	if !ok || un.Op != token.ARROW {
		return nil
	}
	call, ok := ast.Unparen(un.X).(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return nil
	}
	if !isContextType(pass.TypeOf(sel.X)) {
		return nil
	}
	return sel.X
}

// calleeLabel names a call for diagnostics.
func calleeLabel(pass *analysis.Pass, call *ast.CallExpr) string {
	if fn := pass.FuncOf(call); fn != nil {
		return fn.Name()
	}
	return "call"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
