// Package a is the errflow golden fixture: dropped errors and
// swallowed cancellation on Run-reachable paths.
package a

import (
	"context"
	"errors"
	"fmt"
	"strings"
)

func mayFail() error { return errors.New("boom") }

func two() (int, error) { return 0, errors.New("boom") }

// RunAll is a reachability root (Run prefix).
func RunAll(ctx context.Context) error {
	mayFail()       // want `error result of mayFail silently dropped`
	_ = mayFail()   // explicit drop: allowed
	two()           // want `error result of two silently dropped`
	go mayFail()    // want `error result of go mayFail silently dropped`
	defer mayFail() // want `error result of defer mayFail silently dropped`
	fmt.Println("print family is exempt")
	var sb strings.Builder
	sb.WriteString("never fails")
	_ = ctx.Err() // want `ctx\.Err\(\) result discarded`
	if err := helper(ctx); err != nil {
		return err
	}
	return nil
}

// helper is reachable from RunAll, so its body is checked too.
func helper(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return nil // want `cancellation observed via <-ctx\.Done\(\) but nil returned`
	default:
	}
	mayFail() // want `error result of mayFail silently dropped`
	return nil
}

// orphan is not reachable from any root: a drop here is out of scope.
func orphan() {
	mayFail()
}

// RunAllowed exercises the directive escape hatch.
func RunAllowed() {
	//reconlint:allow errflow best-effort cleanup, failure is benign here
	mayFail()
}
