package logtaint_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/logtaint"
)

func TestLogtaint(t *testing.T) {
	analysistest.Run(t, "testdata", logtaint.Analyzer, "controlplane")
}
