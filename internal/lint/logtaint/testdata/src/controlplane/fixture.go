// Package controlplane exercises logtaint: hostile strings used as
// format strings or bound to non-escaping verbs, judged at the call
// site where the constant format is visible — including through the
// repo's errWire-shaped helper and across a channel send.
package controlplane

import "fmt"

type Request struct {
	Tenant string `json:"tenant"`
	TaskID string `json:"task_id"`
}

func formatString(req Request) error {
	return fmt.Errorf(req.Tenant) // want `wire field Request\.Tenant is used as a format string in fmt\.Errorf`
}

func rawVerb(req Request) string {
	return fmt.Sprintf("tenant %s rejected", req.Tenant) // want `wire field Request\.Tenant flows into fmt\.Sprintf %s unescaped`
}

func rawValueVerb(req Request) error {
	return fmt.Errorf("task %v not found", req.TaskID) // want `wire field Request\.TaskID flows into fmt\.Errorf %v unescaped`
}

func quotedVerb(req Request) string {
	return fmt.Sprintf("tenant %q rejected", req.Tenant) // %q escapes: clean
}

func numericVerb(req Request) string {
	return fmt.Sprintf("tenant name is %d bytes", len(req.Tenant)) // len() is a count, not content: clean
}

// errWire matches the format-helper shape structurally (a `format
// string` parameter directly before the variadic tail), so its call
// sites are policed against their constant formats.
func errWire(code, format string, args ...any) error {
	return fmt.Errorf("["+code+"] "+format, args...)
}

func viaHelper(req Request) error {
	return errWire("bad_request", "tenant %s is unknown", req.Tenant) // want `wire field Request\.Tenant flows into controlplane\.errWire %s unescaped`
}

func viaHelperQuoted(req Request) error {
	return errWire("bad_request", "tenant %q is unknown", req.Tenant) // escaped at the helper call site: clean
}

// The channel hop: a string received from nameCh is as hostile as the
// wire field sent on it.
var nameCh = make(chan string)

func sendName(req Request) {
	nameCh <- req.Tenant
}

func recvName() string {
	name := <-nameCh
	return fmt.Sprintf("draining %s", name) // want `wire field Request\.Tenant flows into fmt\.Sprintf %s unescaped`
}
