// Package logtaint implements the reconlint analyzer that keeps
// hostile strings out of format strings and unescaped log/error text.
//
// The control plane's errors round-trip onto the wire: a Response's
// Error field is built with printf-style helpers and delivered to
// every tenant's client. A tenant-supplied string formatted with %s or
// %v therefore re-emits raw attacker bytes — newlines that forge log
// lines, ANSI escapes that corrupt operator terminals, or quotes that
// confuse line-oriented wire parsers. Worse, a tainted string used
// *as* the format ("fmt.Errorf(msg)") hands the attacker the verb
// table itself.
//
// Using the dataflow taint lattice, the analyzer reports two sink
// kinds at printf-style call sites (fmt.Sprintf/Errorf, log.Printf,
// and any function with a `format string` parameter before a variadic
// tail — the repo's errWire matches structurally):
//
//   - a tainted format string (TaintFormatString);
//   - a tainted argument bound to a non-escaping %s/%v/%w verb of a
//     constant format (TaintFormatArg). Escaping verbs — %q, %d, %x
//     and the other numeric/typed verbs — launder the argument: %q
//     cannot smuggle raw bytes, and that is the canonical fix.
//
// Verbs are judged at the call site where the constant format is
// visible, so a helper like errWire(code, format, args...) is policed
// per call, not once against its opaque internal Sprintf.
package logtaint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/dataflow"
	"repro/internal/lint/wiretaint"
)

// Analyzer is the logtaint analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "logtaint",
	Doc:  "tainted strings must not become format strings and must be escaped (%q, not %s/%v) in log and wire-error text",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	g := dataflow.Resolve(pass.Fset, pass.Files, pass.Pkg, pass.TypesInfo)
	for _, node := range g.SortedFuncs() {
		if node.Pkg != pass.Pkg {
			continue
		}
		sum := g.Taint(node.Fn)
		if sum == nil {
			continue
		}
		for _, sink := range sum.Sinks {
			if !sink.Val.Tainted {
				continue
			}
			switch sink.Kind {
			case dataflow.TaintFormatString:
				pass.Reportf(sink.Pos,
					"%s is used as a format string in %s: pass a constant format and render the value with %%q",
					sink.Val.Src, wiretaint.DescribeChain(sink.Chain))
			case dataflow.TaintFormatArg:
				pass.Reportf(sink.Pos,
					"%s flows into %s unescaped: use %%q so hostile bytes cannot round-trip onto the wire",
					sink.Val.Src, wiretaint.DescribeChain(sink.Chain))
			}
		}
	}
	return nil, nil
}
