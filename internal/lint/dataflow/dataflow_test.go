package dataflow_test

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/lint/dataflow"
)

// load type-checks one in-memory package and wraps it for Build.
func load(t *testing.T, path, src string) *dataflow.PackageInfo {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return &dataflow.PackageInfo{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info}
}

// fn finds a function node by name in the graph.
func fn(t *testing.T, g *dataflow.Graph, name string) *dataflow.FuncNode {
	t.Helper()
	for _, n := range g.SortedFuncs() {
		if n.Fn.Name() == name {
			return n
		}
	}
	t.Fatalf("function %s not in graph", name)
	return nil
}

const chaSrc = `package p

type doer interface{ Do() }

type alpha struct{}

func (alpha) Do() {}

type beta struct{}

func (*beta) Do() {}

func helper() {}

func Drive(d doer) {
	d.Do()
	helper()
}

func ClosureCaller() {
	f := func() { helper() }
	f()
}

func Island() {}
`

func TestCallGraphCHA(t *testing.T) {
	g := dataflow.Build([]*dataflow.PackageInfo{load(t, "p", chaSrc)})
	drive := fn(t, g, "Drive")

	var callees []string
	for _, c := range drive.SortedCallees() {
		callees = append(callees, c.FullName())
	}
	joined := strings.Join(callees, " ")
	// CHA: the interface call resolves to both concrete implementations.
	for _, want := range []string{"(p.alpha).Do", "(*p.beta).Do", "p.helper"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Drive callees = %v, missing %s", callees, want)
		}
	}

	// Calls inside a closure are edges of the enclosing declaration.
	cc := fn(t, g, "ClosureCaller")
	found := false
	for _, c := range cc.SortedCallees() {
		if c.Name() == "helper" {
			found = true
		}
	}
	if !found {
		t.Error("closure call not attributed to the enclosing function")
	}

	reach := g.Reachable([]*types.Func{drive.Fn})
	if !reach[fn(t, g, "helper").Fn] {
		t.Error("helper not reachable from Drive")
	}
	if reach[fn(t, g, "Island").Fn] {
		t.Error("Island wrongly reachable from Drive")
	}

	// Callers is the reverse edge set.
	helper := fn(t, g, "helper")
	if len(helper.Callers) == 0 {
		t.Error("helper has no recorded callers")
	}
}

const provSrc = `package q

import (
	"math/rand"
	"time"
)

type Spec struct{ Seed uint64 }

func constant() uint64 { return 42 }

func passthrough(x uint64) uint64 { return x }

func wallClock() int64 { return time.Now().UnixNano() }

func globalDraw() uint64 { return rand.Uint64() }

func fromSpec(s Spec) uint64 { return s.Seed }

func sinkDirect() { rand.NewSource(99) }

func sinkParam(seed int64) { rand.NewSource(seed) }

func sinkThroughHelper() { sinkParam(7) }

func sinkClean(s Spec) { sinkParam(int64(s.Seed)) }
`

func summaryOf(t *testing.T, g *dataflow.Graph, name string) *dataflow.Summary {
	t.Helper()
	s := g.Summary(fn(t, g, name).Fn)
	if s == nil {
		t.Fatalf("no summary for %s", name)
	}
	return s
}

func TestProvenanceSummaries(t *testing.T) {
	g := dataflow.Build([]*dataflow.PackageInfo{load(t, "q", provSrc)})

	cases := []struct {
		fn   string
		want dataflow.Provenance
	}{
		{"constant", dataflow.Constant},
		{"wallClock", dataflow.WallClock},
		{"globalDraw", dataflow.GlobalRand},
		{"fromSpec", dataflow.SeedDerived},
	}
	for _, c := range cases {
		s := summaryOf(t, g, c.fn)
		if len(s.Results) == 0 || s.Results[0].Prov != c.want {
			t.Errorf("%s result provenance = %+v, want %v", c.fn, s.Results, c.want)
		}
	}

	// A parameter returned unchanged carries its param bit, so callers
	// can substitute the argument's provenance.
	pt := summaryOf(t, g, "passthrough")
	if len(pt.Results) == 0 || pt.Results[0].Params == 0 {
		t.Errorf("passthrough result = %+v, want a parameter bit", pt.Results)
	}

	// A direct constant into a primitive sink.
	sd := summaryOf(t, g, "sinkDirect")
	if len(sd.Sinks) != 1 || sd.Sinks[0].Arg.Prov != dataflow.Constant {
		t.Fatalf("sinkDirect sinks = %+v, want one constant sink", sd.Sinks)
	}

	// sinkParam feeds its parameter to the sink: the summary exposes the
	// parameter as a seed sink for interprocedural propagation.
	sp := summaryOf(t, g, "sinkParam")
	if len(sp.SeedParams) != 1 {
		t.Fatalf("sinkParam SeedParams = %+v, want one entry", sp.SeedParams)
	}

	// One hop up, a constant argument becomes a constant sink with a
	// chain through the helper.
	sth := summaryOf(t, g, "sinkThroughHelper")
	if len(sth.Sinks) != 1 || sth.Sinks[0].Arg.Prov != dataflow.Constant {
		t.Fatalf("sinkThroughHelper sinks = %+v, want one constant sink", sth.Sinks)
	}
	if len(sth.Sinks[0].Chain) < 2 {
		t.Errorf("propagated sink chain = %v, want the helper hop recorded", sth.Sinks[0].Chain)
	}

	// A seed-derived argument keeps the sink quiet for seedflow: the
	// sink is recorded, but its provenance is SeedDerived.
	sc := summaryOf(t, g, "sinkClean")
	for _, s := range sc.Sinks {
		if s.Arg.Prov != dataflow.SeedDerived {
			t.Errorf("sinkClean sink = %+v, want seed-derived", s)
		}
	}
}

func TestResolveRegistry(t *testing.T) {
	dataflow.Reset()
	defer dataflow.Reset()

	pi := load(t, "r", `package r

func A() { B() }

func B() {}
`)
	whole := dataflow.Build([]*dataflow.PackageInfo{pi})
	dataflow.SetProgram(whole)

	// A registered program covering the package is returned as-is.
	if got := dataflow.Resolve(pi.Fset, pi.Files, pi.Pkg, pi.Info); got != whole {
		t.Error("Resolve did not return the registered whole-program graph")
	}

	// A package outside the program gets a fresh single-package graph.
	other := load(t, "s", `package s

func C() {}
`)
	got := dataflow.Resolve(other.Fset, other.Files, other.Pkg, other.Info)
	if got == whole {
		t.Error("Resolve returned a graph that does not cover the package")
	}
	if !got.HasPackage(other.Pkg) {
		t.Error("fallback graph does not cover the requesting package")
	}

	dataflow.Reset()
	if got := dataflow.Resolve(pi.Fset, pi.Files, pi.Pkg, pi.Info); got == whole {
		t.Error("Reset did not clear the registered program")
	}
}
