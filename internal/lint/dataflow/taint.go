// Taint tracking: the second interprocedural lattice the dataflow layer
// runs on top of the CHA call graph, modelling *untrusted* data the way
// provenance models *random* data.
//
// Sources are the multi-tenant trust boundary: wire-decoded request
// structs (a json-tagged field of a struct declared in a package named
// "controlplane"), json.Unmarshal / Decoder.Decode targets, flag values
// (flag.Int, flag.IntVar and friends, flag.Args), os.Args, and
// environment reads. Taint propagates through assignments, field reads
// (a global, flow-insensitive join per type-qualified field, exactly
// like provenance's fieldProv), slice/map operations, function
// summaries with parameter bitmasks, and channel sends keyed by element
// type — the same channel abstraction the MHP layer pairs into
// concurrent send/receive sites, so a value sent from a spawned
// goroutine stays tainted at every may-happen-in-parallel receive.
//
// Sanitizers lower a value back to trusted:
//
//   - an upper-bound comparison guard on the CFG: `if n > k { reject }`
//     (reject = the branch returns/panics/breaks, or clamps n) makes n
//     trusted after the guard, and `if n < k { use }` makes n trusted
//     inside the branch. Lower-bound-only guards do NOT sanitize — the
//     whole point of wiretaint is unbounded growth.
//   - the min builtin with a bounded argument, and clamp-named helpers.
//   - a map-membership reject (`if !valid[op] { reject }`): membership
//     in a fixed table bounds the value to the table's key set.
//   - allow-listed validator calls (`if err := x.Validate(); err != nil
//     { return }`) sanitize x afterwards; in addition, an upper-bound or
//     membership reject applied to a *field* anywhere in the program
//     marks that field key validated program-wide — the repo's
//     validate-at-the-boundary idiom, where TaskSpec.Validate's bounds
//     are what make every later TaskSpec.WorkMI read trusted.
//   - escaping format verbs: fmt.Sprintf with a constant format string
//     launders arguments under %q/%d/%x and the other non-string verbs;
//     only %s/%v pass string taint through.
//   - the //reconlint:sanitized <reason> directive (see package
//     directive), which trusts reads and sinks on the covered lines.
//
// Sinks are where hostile magnitudes or strings become damage:
// allocation sizes (make, append spreads, strings/bytes Repeat, Grow,
// Scanner.Buffer caps), loop bounds and range-over-int, goroutine-spawn
// counts, time.Duration construction, panic arguments, file paths, and
// format strings/arguments (the logtaint kinds). Like seed sinks, taint
// sinks propagate up the call graph with chains, so the wiretaint
// analyzer reports the full source→sink path.
package dataflow

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strconv"
	"strings"

	"repro/internal/lint/directive"
)

// TaintValue is one taint-lattice element: whether the value is
// attacker-controlled, which enclosing-function parameters flow into it
// (receiver first, as bit 0 — the interprocedural hook), and a short
// human-readable source description for diagnostics. Join keeps the
// lexicographically smallest tainted source so the fixpoint stays
// deterministic and convergent.
type TaintValue struct {
	Tainted bool
	Params  uint64
	Src     string
}

func joinTaint(a, b TaintValue) TaintValue {
	out := TaintValue{Tainted: a.Tainted || b.Tainted, Params: a.Params | b.Params}
	switch {
	case a.Tainted && b.Tainted:
		out.Src = a.Src
		if b.Src != "" && (out.Src == "" || b.Src < out.Src) {
			out.Src = b.Src
		}
	case a.Tainted:
		out.Src = a.Src
	case b.Tainted:
		out.Src = b.Src
	}
	return out
}

// stripParams drops the parameter bits for global (cross-function)
// state, where they would be meaningless.
func stripParams(v TaintValue) TaintValue {
	return TaintValue{Tainted: v.Tainted, Src: v.Src}
}

// TaintKind classifies what a tainted value reaches.
type TaintKind uint8

const (
	// TaintAllocSize is a make/append/Repeat/Grow/Buffer size.
	TaintAllocSize TaintKind = iota
	// TaintLoopBound is a for-loop comparison bound or range-over-int.
	TaintLoopBound
	// TaintSpawnCount is a goroutine launch inside a tainted-bound loop.
	TaintSpawnCount
	// TaintDuration is a time.Duration conversion or timer/sleep argument.
	TaintDuration
	// TaintPanic is a panic argument.
	TaintPanic
	// TaintFilePath is a filesystem-operation path argument.
	TaintFilePath
	// TaintFormatString is a non-constant tainted format string.
	TaintFormatString
	// TaintFormatArg is a tainted argument under a non-escaping %s/%v verb.
	TaintFormatArg
)

func (k TaintKind) String() string {
	switch k {
	case TaintAllocSize:
		return "an allocation size"
	case TaintLoopBound:
		return "a loop bound"
	case TaintSpawnCount:
		return "a goroutine-spawn count"
	case TaintDuration:
		return "a time.Duration"
	case TaintPanic:
		return "a panic argument"
	case TaintFilePath:
		return "a file path"
	case TaintFormatString:
		return "a format string"
	}
	return "an unescaped format argument"
}

// TaintSink is one sink argument reached from a function: directly
// (Chain has one hop, the sink operation) or through summarized callees
// (Chain lists the hops outermost-first, like SeedSink).
type TaintSink struct {
	// Pos is the argument expression at this function's own call site.
	Pos   token.Pos
	Kind  TaintKind
	Chain []string
	Val   TaintValue
	// SizeExpr is the size expression for alloc-size sinks declared in
	// this very function — the expression sizecap's SuggestedFix wraps.
	// nil for propagated sinks.
	SizeExpr ast.Expr
}

// TaintSummary is one function's taint summary after the fixpoint.
type TaintSummary struct {
	// Results holds the taint of each declared result, with Params
	// referring to this function's own parameters.
	Results []TaintValue
	// Sinks are the taint sinks evaluated inside this function,
	// transitively through summarized callees.
	Sinks []TaintSink
	// ParamSinks maps a parameter index to a representative sink it
	// reaches — the hook callers use to propagate sinks upward.
	ParamSinks map[int]TaintSink
	// FieldWrites maps a struct-field key to the parameter bits written
	// into it (directly, or inherited from a callee). Callers join their
	// argument taint into the global field state through it, so a
	// constructor like tenantEngine{id: tenant} taints the id field when
	// some call site passes wire input. nil when empty.
	FieldWrites map[string]uint64
}

// taintSummaryEqual compares summaries without reflect.DeepEqual-ing
// the SizeExpr AST (identity is enough, and DeepEqual would walk
// ast.Object cycles).
func taintSummaryEqual(a, b *TaintSummary) bool {
	if a == nil || b == nil {
		return a == b
	}
	if !reflect.DeepEqual(a.Results, b.Results) || len(a.Sinks) != len(b.Sinks) || len(a.ParamSinks) != len(b.ParamSinks) {
		return false
	}
	if !reflect.DeepEqual(a.FieldWrites, b.FieldWrites) {
		return false
	}
	eq := func(x, y TaintSink) bool {
		return x.Pos == y.Pos && x.Kind == y.Kind && x.Val == y.Val &&
			x.SizeExpr == y.SizeExpr && reflect.DeepEqual(x.Chain, y.Chain)
	}
	for i := range a.Sinks {
		if !eq(a.Sinks[i], b.Sinks[i]) {
			return false
		}
	}
	for i, s := range a.ParamSinks {
		o, ok := b.ParamSinks[i]
		if !ok || !eq(s, o) {
			return false
		}
	}
	return true
}

// Taint returns fn's taint summary, or nil for functions outside the
// analyzed packages.
func (g *Graph) Taint(fn *types.Func) *TaintSummary {
	return g.taints[fn]
}

// ChanSenders returns the functions that send on channels whose element
// type renders as key, in deterministic order — the senders the MHP
// layer pairs against a tainted receive.
func (g *Graph) ChanSenders(key string) []*types.Func {
	out := append([]*types.Func(nil), g.chanSenders[key]...)
	sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
	return out
}

// solveTaint runs the taint fixpoint after the call graph and the
// provenance fixpoint are in place.
func (g *Graph) solveTaint() {
	g.collectSanitizedLines()
	g.collectValidatedFields()
	funcs := g.SortedFuncs()
	const maxRounds = 10
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, n := range funcs {
			st := &taintState{g: g, n: n, env: make(map[types.Object]TaintValue), params: paramIndex(n.Fn)}
			st.collectGuards()
			sum := st.summarize()
			if st.globalChanged || !taintSummaryEqual(g.taints[n.Fn], sum) {
				changed = true
			}
			g.taints[n.Fn] = sum
		}
		if !changed {
			return
		}
	}
}

// collectSanitizedLines merges every package's //reconlint:sanitized
// coverage into one filename-keyed line set.
func (g *Graph) collectSanitizedLines() {
	g.sanitizedLines = make(map[string]map[int]bool)
	for _, p := range g.pkgs {
		for file, lines := range directive.SanitizedLines(p.Fset, p.Files) {
			dst := g.sanitizedLines[file]
			if dst == nil {
				dst = make(map[int]bool)
				g.sanitizedLines[file] = dst
			}
			for l := range lines {
				dst[l] = true
			}
		}
	}
}

func (g *Graph) sanitizedAt(pos token.Pos) bool {
	if len(g.sanitizedLines) == 0 || !pos.IsValid() {
		return false
	}
	p := g.Fset.Position(pos)
	return g.sanitizedLines[p.Filename][p.Line]
}

// guardSpan is one region of the source where a key is sanitized.
type guardSpan struct{ from, to token.Pos }

func covers(spans []guardSpan, pos token.Pos) bool {
	for _, s := range spans {
		if s.from <= pos && pos < s.to {
			return true
		}
	}
	return false
}

// boundGuard is one recognized sanitization site inside a function.
type boundGuard struct {
	expr ast.Expr // the guarded ident or selector
	span guardSpan
	// global marks reject/clamp-style guards: applied to a field, they
	// validate the field key program-wide (the validate-at-the-boundary
	// idiom); accept-style guards stay local to their branch.
	global bool
}

// terminates reports whether a block's last statement leaves the
// enclosing flow: return, panic, or an unconditional branch.
func terminates(b *ast.BlockStmt) bool {
	if b == nil || len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// guardKey unwraps parens and single-argument conversions to the
// guarded ident or field selector; len() is deliberately NOT unwrapped
// — bounding a string's length says nothing about its content.
func guardKey(info *types.Info, e ast.Expr) ast.Expr {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return guardKey(info, call.Args[0])
		}
	}
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if tv, ok := info.Types[e]; ok && tv.Value != nil {
			return nil // a constant needs no bounding
		}
		return e
	}
	return nil
}

// splitCond flattens a condition over the given logical operator.
func splitCond(e ast.Expr, op token.Token) []ast.Expr {
	e = ast.Unparen(e)
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == op {
		return append(splitCond(b.X, op), splitCond(b.Y, op)...)
	}
	return []ast.Expr{e}
}

// rejectLeafKey matches one ||-leaf of a reject-style guard: an
// upper-bound comparison (key > k, key >= k, k < key, k <= key) or a
// map-membership test (!table[key]), returning the bounded key.
func rejectLeafKey(info *types.Info, leaf ast.Expr) ast.Expr {
	leaf = ast.Unparen(leaf)
	if u, ok := leaf.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		if idx, ok := ast.Unparen(u.X).(*ast.IndexExpr); ok {
			if _, isMap := typeOf(info, idx.X).(*types.Map); isMap {
				return guardKey(info, idx.Index)
			}
		}
		return nil
	}
	b, ok := leaf.(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	switch b.Op {
	case token.GTR, token.GEQ:
		return guardKey(info, b.X)
	case token.LSS, token.LEQ:
		return guardKey(info, b.Y)
	}
	return nil
}

// acceptLeafKey matches one &&-leaf of an accept-style guard: key < k,
// key <= k, k > key, k >= key.
func acceptLeafKey(info *types.Info, leaf ast.Expr) ast.Expr {
	b, ok := ast.Unparen(leaf).(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	switch b.Op {
	case token.LSS, token.LEQ:
		return guardKey(info, b.X)
	case token.GTR, token.GEQ:
		return guardKey(info, b.Y)
	}
	return nil
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type.Underlying()
	}
	return nil
}

// assignsKey reports whether the block writes the guarded key itself —
// the clamp half of `if n > k { n = k }`.
func assignsKey(info *types.Info, b *ast.BlockStmt, key ast.Expr) bool {
	found := false
	ast.Inspect(b, func(x ast.Node) bool {
		as, ok := x.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if sameKey(info, lhs, key) {
				found = true
			}
		}
		return true
	})
	return found
}

// sameKey compares two guard keys: identical objects for idents, equal
// field keys for selectors.
func sameKey(info *types.Info, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch a := a.(type) {
	case *ast.Ident:
		bi, ok := b.(*ast.Ident)
		return ok && objectOf(info, a) != nil && objectOf(info, a) == objectOf(info, bi)
	case *ast.SelectorExpr:
		bs, ok := b.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		ka, oka := selectionFieldKey(info, a)
		kb, okb := selectionFieldKey(info, bs)
		return oka && okb && ka == kb
	}
	return false
}

func objectOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}

func selectionFieldKey(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return "", false
	}
	return fieldKeyFromSelection(s), true
}

// upperBoundGuards walks a function body and returns every recognized
// sanitization guard. funcEnd bounds reject/clamp-style spans.
func upperBoundGuards(info *types.Info, body *ast.BlockStmt) []boundGuard {
	var out []boundGuard
	end := body.End()
	ast.Inspect(body, func(x ast.Node) bool {
		switch st := x.(type) {
		case *ast.IfStmt:
			reject := terminates(st.Body)
			for _, leaf := range splitCond(st.Cond, token.LOR) {
				key := rejectLeafKey(info, leaf)
				if key == nil {
					continue
				}
				if reject || assignsKey(info, st.Body, key) {
					out = append(out, boundGuard{expr: key, span: guardSpan{from: st.End(), to: end}, global: true})
				}
			}
			for _, leaf := range splitCond(st.Cond, token.LAND) {
				if key := acceptLeafKey(info, leaf); key != nil {
					out = append(out, boundGuard{expr: key, span: guardSpan{from: st.Body.Pos(), to: st.Body.End()}})
				}
			}
			// Validator guard: if err := x.Validate(...); err != nil { return }
			// sanitizes x (and ident arguments) after the statement.
			if reject {
				if call := validatorCallOf(info, st); call != nil {
					for _, e := range validatorTargets(call) {
						out = append(out, boundGuard{expr: e, span: guardSpan{from: st.End(), to: end}})
					}
				}
			}
		case *ast.AssignStmt:
			// n = min(n, k) / n = clamp(...): sanitized afterwards.
			if len(st.Lhs) == 1 && len(st.Rhs) == 1 && isClampCall(info, st.Rhs[0]) {
				if key := guardKey(info, st.Lhs[0]); key != nil {
					out = append(out, boundGuard{expr: key, span: guardSpan{from: st.End(), to: end}, global: true})
				}
			}
		}
		return true
	})
	return out
}

// validatorCallOf extracts the validator call of an if-guard: either in
// the init statement (if err := x.Validate(); err != nil) or directly
// in the condition (if x.Validate() != nil).
func validatorCallOf(info *types.Info, st *ast.IfStmt) *ast.CallExpr {
	if as, ok := st.Init.(*ast.AssignStmt); ok && len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && isValidatorCall(info, call) {
			return call
		}
	}
	if b, ok := ast.Unparen(st.Cond).(*ast.BinaryExpr); ok && b.Op == token.NEQ {
		if call, ok := ast.Unparen(b.X).(*ast.CallExpr); ok && isValidatorCall(info, call) {
			return call
		}
	}
	return nil
}

func isValidatorCall(info *types.Info, call *ast.CallExpr) bool {
	fn := staticCallee(info, call)
	if fn == nil {
		return false
	}
	name := fn.Name()
	return strings.HasPrefix(name, "Validate") || strings.HasPrefix(name, "validate")
}

// validatorTargets returns the receiver and plain ident/selector
// arguments a validator call vouches for.
func validatorTargets(call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		out = append(out, sel.X)
	}
	for _, a := range call.Args {
		switch ast.Unparen(a).(type) {
		case *ast.Ident, *ast.SelectorExpr:
			out = append(out, a)
		}
	}
	return out
}

// isClampCall matches the min builtin (with at least one constant
// bound) and clamp-named helpers.
func isClampCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "min" {
			for _, a := range call.Args {
				if tv, ok := info.Types[a]; ok && tv.Value != nil {
					return true
				}
			}
			return false
		}
	}
	if fn := staticCallee(info, call); fn != nil {
		return strings.Contains(strings.ToLower(fn.Name()), "clamp")
	}
	return false
}

// collectValidatedFields pre-scans every function for reject/clamp
// upper-bound guards applied to struct fields and records the field
// keys as validated program-wide. Flow-insensitive on purpose: the
// repo's convention is to bound wire fields once at the trust boundary
// (TaskSpec.Validate, Config normalization in New), and this is the
// hook that lets those fixes clean every downstream read.
func (g *Graph) collectValidatedFields() {
	g.validatedFields = make(map[string]bool)
	for _, n := range g.SortedFuncs() {
		for _, bg := range upperBoundGuards(n.Info, n.Decl.Body) {
			if !bg.global {
				continue
			}
			if sel, ok := ast.Unparen(bg.expr).(*ast.SelectorExpr); ok {
				if key, ok := selectionFieldKey(n.Info, sel); ok {
					g.validatedFields[key] = true
				}
			}
		}
	}
}

// taintState is the per-function analysis state for one summarize call.
type taintState struct {
	g             *Graph
	n             *FuncNode
	params        map[types.Object]int
	env           map[types.Object]TaintValue
	objGuards     map[types.Object][]guardSpan
	fieldGuards   map[string][]guardSpan
	fieldWrites   map[string]uint64
	localChanged  bool
	globalChanged bool
}

// noteFieldWrite records param bits flowing into a struct field, for
// the summary's FieldWrites.
func (s *taintState) noteFieldWrite(key string, v TaintValue) {
	if v.Params == 0 {
		return
	}
	if s.fieldWrites == nil {
		s.fieldWrites = make(map[string]uint64)
	}
	s.fieldWrites[key] |= v.Params
}

func (s *taintState) collectGuards() {
	s.objGuards = make(map[types.Object][]guardSpan)
	s.fieldGuards = make(map[string][]guardSpan)
	for _, bg := range upperBoundGuards(s.n.Info, s.n.Decl.Body) {
		switch e := ast.Unparen(bg.expr).(type) {
		case *ast.Ident:
			if obj := objectOf(s.n.Info, e); obj != nil {
				s.objGuards[obj] = append(s.objGuards[obj], bg.span)
			}
		case *ast.SelectorExpr:
			if key, ok := selectionFieldKey(s.n.Info, e); ok {
				s.fieldGuards[key] = append(s.fieldGuards[key], bg.span)
			}
		}
	}
}

func (s *taintState) summarize() *TaintSummary {
	for i := 0; i < 8; i++ {
		s.localChanged = false
		ast.Inspect(s.n.Decl.Body, func(x ast.Node) bool {
			s.processNode(x)
			return true
		})
		if !s.localChanged {
			break
		}
	}
	sum := &TaintSummary{
		Results:     s.collectReturns(),
		ParamSinks:  make(map[int]TaintSink),
		FieldWrites: s.fieldWrites,
	}
	sum.Sinks = s.collectSinks()
	for _, sink := range sum.Sinks {
		for i := 0; i < 64; i++ {
			if sink.Val.Params&(1<<i) == 0 {
				continue
			}
			if _, ok := sum.ParamSinks[i]; !ok {
				sum.ParamSinks[i] = sink
			}
		}
	}
	return sum
}

func (s *taintState) envGet(obj types.Object) TaintValue {
	return s.env[obj]
}

func (s *taintState) envJoin(obj types.Object, v TaintValue) {
	old, ok := s.env[obj]
	if !ok {
		s.env[obj] = v
		if v != (TaintValue{}) {
			s.localChanged = true
		}
		return
	}
	merged := joinTaint(old, v)
	if merged != old {
		s.env[obj] = merged
		s.localChanged = true
	}
}

func (s *taintState) joinGlobal(m map[string]TaintValue, key string, v TaintValue) {
	v = stripParams(v)
	if !v.Tainted {
		return
	}
	old, ok := m[key]
	if !ok {
		m[key] = v
		s.globalChanged = true
		return
	}
	merged := joinTaint(old, v)
	if merged != old {
		m[key] = merged
		s.globalChanged = true
	}
}

func (s *taintState) processNode(x ast.Node) {
	switch st := x.(type) {
	case *ast.AssignStmt:
		if len(st.Lhs) > 1 && len(st.Rhs) == 1 {
			vals := s.multiValues(st.Rhs[0], len(st.Lhs))
			for i, lhs := range st.Lhs {
				s.assign(lhs, vals[i])
			}
		} else if len(st.Lhs) == len(st.Rhs) {
			for i := range st.Lhs {
				s.assign(st.Lhs[i], s.valueOf(st.Rhs[i]))
			}
		}
	case *ast.ValueSpec:
		if len(st.Names) > 1 && len(st.Values) == 1 {
			vals := s.multiValues(st.Values[0], len(st.Names))
			for i, name := range st.Names {
				s.assignIdent(name, vals[i])
			}
		} else if len(st.Names) == len(st.Values) {
			for i, name := range st.Names {
				s.assignIdent(name, s.valueOf(st.Values[i]))
			}
		}
	case *ast.RangeStmt:
		v := s.valueOf(st.X)
		if _, isInt := typeOf(s.n.Info, st.X).(*types.Basic); isInt && isIntegerType(typeOf(s.n.Info, st.X)) {
			// range-over-int: the key walks up to the tainted bound.
			if st.Key != nil {
				s.assign(st.Key, v)
			}
			return
		}
		if st.Key != nil {
			s.assign(st.Key, TaintValue{})
		}
		if st.Value != nil {
			s.assign(st.Value, TaintValue{Tainted: v.Tainted, Src: v.Src, Params: v.Params})
		}
	case *ast.SendStmt:
		if key := s.chanKey(st.Chan); key != "" {
			v := s.valueOf(st.Value)
			s.joinGlobal(s.g.chanTaint, key, v)
			if v.Tainted {
				s.noteChanSender(key)
			}
		}
	case *ast.CompositeLit:
		s.recordCompositeFields(st)
	case *ast.CallExpr:
		s.recordPointerTargets(st)
		s.applyCalleeFieldWrites(st)
	}
}

// applyCalleeFieldWrites replays a summarized callee's param-to-field
// writes with this call site's arguments: the global field state gets
// the argument taint, and param-carrying arguments are inherited into
// this function's own FieldWrites so the flow keeps climbing.
func (s *taintState) applyCalleeFieldWrites(call *ast.CallExpr) {
	fn := staticCallee(s.n.Info, call)
	if fn == nil {
		return
	}
	sum := s.g.taints[fn]
	if sum == nil || len(sum.FieldWrites) == 0 {
		return
	}
	for key, bits := range sum.FieldWrites {
		v := TaintValue{}
		for i := 0; i < 64; i++ {
			if bits&(1<<uint(i)) == 0 {
				continue
			}
			v = joinTaint(v, s.valueOf(argExpr(call, fn, i)))
		}
		s.joinGlobal(s.g.fieldTaint, key, v)
		s.noteFieldWrite(key, v)
	}
}

func isIntegerType(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// noteChanSender records this function as a tainted sender on the
// channel key (deduplicated; order restored by ChanSenders).
func (s *taintState) noteChanSender(key string) {
	for _, fn := range s.g.chanSenders[key] {
		if fn == s.n.Fn {
			return
		}
	}
	s.g.chanSenders[key] = append(s.g.chanSenders[key], s.n.Fn)
}

// recordPointerTargets taints decode targets: json.Unmarshal(data, &x),
// (*json.Decoder).Decode(&x), and the flag.XxxVar(&x, ...) family.
func (s *taintState) recordPointerTargets(call *ast.CallExpr) {
	fn := staticCallee(s.n.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	var target ast.Expr
	var src string
	switch fn.Pkg().Path() {
	case "encoding/json":
		switch {
		case fn.Name() == "Unmarshal" && len(call.Args) == 2:
			target, src = call.Args[1], "a wire decode"
		case fn.Name() == "Decode" && len(call.Args) == 1:
			target, src = call.Args[0], "a wire decode"
		}
	case "flag":
		if strings.HasSuffix(fn.Name(), "Var") && len(call.Args) > 0 {
			target, src = call.Args[0], "flag "+flagNameOf(s.n.Info, call)
		}
	}
	if target == nil {
		return
	}
	if u, ok := ast.Unparen(target).(*ast.UnaryExpr); ok && u.Op == token.AND {
		target = u.X
	}
	s.assign(target, TaintValue{Tainted: true, Src: src})
}

// flagNameOf renders the flag name argument of a flag registration for
// source descriptions ("flag -shards"), falling back to "value".
func flagNameOf(info *types.Info, call *ast.CallExpr) string {
	for _, a := range call.Args {
		if tv, ok := info.Types[a]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
			return "-" + constant.StringVal(tv.Value)
		}
	}
	return "value"
}

func (s *taintState) assign(lhs ast.Expr, v TaintValue) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		s.assignIdent(lhs, v)
	case *ast.SelectorExpr:
		if sel, ok := s.n.Info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			key := fieldKeyFromSelection(sel)
			s.joinGlobal(s.g.fieldTaint, key, v)
			s.noteFieldWrite(key, v)
		}
	case *ast.IndexExpr:
		// Coarse, like provenance: storing into a container taints the
		// container local.
		if id, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
			s.assignIdent(id, v)
		}
	case *ast.StarExpr:
		if id, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
			s.assignIdent(id, v)
		}
	}
}

func (s *taintState) assignIdent(id *ast.Ident, v TaintValue) {
	if id.Name == "_" {
		return
	}
	obj := s.n.Info.Defs[id]
	if obj == nil {
		obj = s.n.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	if _, isParam := s.params[obj]; isParam {
		return // reassigned params keep their call-site taint
	}
	s.envJoin(obj, v)
}

func (s *taintState) recordCompositeFields(lit *ast.CompositeLit) {
	tv, ok := s.n.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	t := deref(tv.Type)
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		var name string
		var valExpr ast.Expr
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			name, valExpr = key.Name, kv.Value
		} else if i < st.NumFields() {
			name, valExpr = st.Field(i).Name(), elt
		} else {
			continue
		}
		v := s.valueOf(valExpr)
		key := fieldKey(t, name)
		s.joinGlobal(s.g.fieldTaint, key, v)
		s.noteFieldWrite(key, v)
	}
}

// guarded reports whether a use of the given object at pos sits inside
// a sanitizing guard span.
func (s *taintState) guarded(obj types.Object, pos token.Pos) bool {
	return covers(s.objGuards[obj], pos)
}

// wireFieldSource reports whether a field selection reads a wire-struct
// source: a json-tagged field of a struct declared in a package named
// "controlplane" — the trust frontier.
func wireFieldSource(sel *types.Selection) (string, bool) {
	obj, ok := sel.Obj().(*types.Var)
	if !ok || obj.Pkg() == nil || obj.Pkg().Name() != "controlplane" {
		return "", false
	}
	owner := deref(sel.Recv())
	st, ok := owner.Underlying().(*types.Struct)
	if !ok {
		return "", false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i) != obj && st.Field(i).Name() != obj.Name() {
			continue
		}
		tag := jsonTagName(st.Tag(i))
		if tag == "" || tag == "-" {
			return "", false
		}
		return "wire field " + shortTypeName(owner) + "." + obj.Name(), true
	}
	return "", false
}

// jsonTagName extracts the json name from a struct tag without
// importing reflect: `json:"work_mi,omitempty"` -> "work_mi".
func jsonTagName(tag string) string {
	for tag != "" {
		i := strings.IndexByte(tag, ':')
		if i < 0 {
			return ""
		}
		key := strings.TrimSpace(tag[:i])
		rest := tag[i+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return ""
		}
		j := strings.IndexByte(rest[1:], '"')
		if j < 0 {
			return ""
		}
		val := rest[1 : 1+j]
		tag = strings.TrimSpace(rest[j+2:])
		if key == "json" {
			return strings.SplitN(val, ",", 2)[0]
		}
	}
	return ""
}

func shortTypeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return types.TypeString(t, nil)
}

func (s *taintState) valueOf(e ast.Expr) TaintValue {
	if e == nil {
		return TaintValue{}
	}
	if tv, ok := s.n.Info.Types[e]; ok && tv.Value != nil {
		return TaintValue{}
	}
	switch e := e.(type) {
	case *ast.BasicLit, *ast.FuncLit:
		return TaintValue{}
	case *ast.Ident:
		obj := s.n.Info.Uses[e]
		if obj == nil {
			obj = s.n.Info.Defs[e]
		}
		if obj == nil {
			return TaintValue{}
		}
		if s.guarded(obj, e.Pos()) || s.g.sanitizedAt(e.Pos()) {
			return TaintValue{}
		}
		if i, ok := s.params[obj]; ok {
			return TaintValue{Params: 1 << i}
		}
		return s.envGet(obj)
	case *ast.SelectorExpr:
		// os.Args, the package-level source.
		if obj, ok := s.n.Info.Uses[e.Sel].(*types.Var); ok &&
			obj.Pkg() != nil && obj.Pkg().Path() == "os" && obj.Name() == "Args" {
			if s.g.sanitizedAt(e.Pos()) {
				return TaintValue{}
			}
			return TaintValue{Tainted: true, Src: "os.Args"}
		}
		if sel, ok := s.n.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			key := fieldKeyFromSelection(sel)
			if covers(s.fieldGuards[key], e.Pos()) || s.g.validatedFields[key] || s.g.sanitizedAt(e.Pos()) {
				return TaintValue{}
			}
			// A validator guard on the root object vouches for its fields.
			if root, ok := ast.Unparen(e.X).(*ast.Ident); ok {
				if obj := objectOf(s.n.Info, root); obj != nil && s.guarded(obj, e.Pos()) {
					return TaintValue{}
				}
			}
			if src, ok := wireFieldSource(sel); ok {
				return TaintValue{Tainted: true, Src: src}
			}
			return s.g.fieldTaint[key]
		}
		return TaintValue{}
	case *ast.CallExpr:
		return s.callValue(e)
	case *ast.BinaryExpr:
		return joinTaint(s.valueOf(e.X), s.valueOf(e.Y))
	case *ast.ParenExpr:
		return s.valueOf(e.X)
	case *ast.StarExpr:
		return s.valueOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			if key := s.chanKey(e.X); key != "" {
				return s.g.chanTaint[key]
			}
			return TaintValue{}
		}
		return s.valueOf(e.X)
	case *ast.IndexExpr:
		return s.valueOf(e.X)
	case *ast.SliceExpr:
		return s.valueOf(e.X)
	case *ast.TypeAssertExpr:
		return s.valueOf(e.X)
	case *ast.CompositeLit:
		v := TaintValue{}
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = joinTaint(v, s.valueOf(kv.Value))
			} else {
				v = joinTaint(v, s.valueOf(elt))
			}
		}
		return v
	}
	return TaintValue{}
}

// flagValueFns are the flag-package registration functions whose result
// is attacker-adjacent operator input.
var flagValueFns = map[string]bool{
	"String": true, "Bool": true, "Int": true, "Int64": true,
	"Uint": true, "Uint64": true, "Float64": true, "Duration": true,
	"Arg": true, "Args": true, "Func": false,
}

// envFns are the os-package environment readers.
var envFns = map[string]bool{"Getenv": true, "LookupEnv": true, "Environ": true}

func (s *taintState) callValue(call *ast.CallExpr) TaintValue {
	if tv, ok := s.n.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return s.valueOf(call.Args[0]) // conversion passes taint through
		}
		return TaintValue{}
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := s.n.Info.Uses[id].(*types.Builtin); ok {
			return s.builtinValue(b.Name(), call)
		}
	}
	fn := staticCallee(s.n.Info, call)
	if fn == nil {
		return TaintValue{}
	}
	if pkg := fn.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "flag":
			if flagValueFns[fn.Name()] {
				if s.g.sanitizedAt(call.Pos()) {
					return TaintValue{}
				}
				return TaintValue{Tainted: true, Src: "flag " + flagNameOf(s.n.Info, call)}
			}
			return TaintValue{}
		case "os":
			if envFns[fn.Name()] {
				if s.g.sanitizedAt(call.Pos()) {
					return TaintValue{}
				}
				return TaintValue{Tainted: true, Src: "env read"}
			}
			return TaintValue{}
		case "fmt":
			if idx, ok := formatArgIndex(fn); ok {
				return s.formatResultValue(call, idx)
			}
			if fn.Name() == "Sprint" || fn.Name() == "Sprintln" {
				v := TaintValue{}
				for _, a := range call.Args {
					v = joinTaint(v, s.valueOf(a))
				}
				return v
			}
			return TaintValue{}
		}
	}
	name := strings.ToLower(fn.Name())
	if strings.Contains(name, "clamp") {
		return TaintValue{}
	}
	if sum := s.g.taints[fn]; sum != nil && len(sum.Results) > 0 {
		return s.applyFlow(sum.Results[0], call, fn)
	}
	return TaintValue{}
}

func (s *taintState) builtinValue(name string, call *ast.CallExpr) TaintValue {
	switch name {
	case "min":
		// One bounded argument caps the result: min(n, k) is at most k.
		joined := TaintValue{}
		for _, a := range call.Args {
			v := s.valueOf(a)
			if v == (TaintValue{}) {
				return TaintValue{}
			}
			joined = joinTaint(joined, v)
		}
		return joined
	case "max", "append":
		v := TaintValue{}
		for _, a := range call.Args {
			v = joinTaint(v, s.valueOf(a))
		}
		return v
	}
	// len/cap/make/new/copy and the rest: bounded or fresh.
	return TaintValue{}
}

// formatArgIndex returns the format-parameter index of a printf-style
// function: a string parameter named "format" directly before a
// variadic tail. This matches fmt.Sprintf/Errorf/Fprintf, log.Printf,
// and repo helpers like errWire without an allow list.
func formatArgIndex(fn *types.Func) (int, bool) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || !sig.Variadic() || sig.Params().Len() < 2 {
		return 0, false
	}
	i := sig.Params().Len() - 2
	p := sig.Params().At(i)
	if p.Name() != "format" {
		return 0, false
	}
	if b, ok := p.Type().Underlying().(*types.Basic); !ok || b.Kind() != types.String {
		return 0, false
	}
	return i, true
}

// formatResultValue computes the taint of a printf-style call's result:
// a constant format launders every argument under an escaping verb
// (%q/%d/%x/...); only %s and %v pass taint through. A non-constant
// format joins everything.
func (s *taintState) formatResultValue(call *ast.CallExpr, fmtIdx int) TaintValue {
	if fmtIdx >= len(call.Args) {
		return TaintValue{}
	}
	fmtArg := call.Args[fmtIdx]
	tv, ok := s.n.Info.Types[fmtArg]
	if !ok || tv.Value == nil {
		v := TaintValue{}
		for _, a := range call.Args[fmtIdx:] {
			v = joinTaint(v, s.valueOf(a))
		}
		return v
	}
	verbs := formatVerbs(constStringValue(tv))
	v := TaintValue{}
	for i, a := range call.Args[fmtIdx+1:] {
		if i < len(verbs) && !escapingVerb(verbs[i]) {
			v = joinTaint(v, s.valueOf(a))
		}
	}
	return v
}

func constStringValue(tv types.TypeAndValue) string {
	if tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value)
	}
	str := tv.Value.ExactString()
	if u, err := strconv.Unquote(str); err == nil {
		return u
	}
	return str
}

// formatVerbs extracts the verb letter consumed by each successive
// argument of a printf format string. '*' width/precision arguments
// consume an argument and are reported as '*'.
func formatVerbs(format string) []byte {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			if c == '%' {
				break // literal %%
			}
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if (c >= '0' && c <= '9') || c == '.' || c == '+' || c == '-' || c == '#' || c == ' ' || c == '[' || c == ']' {
				i++
				continue
			}
			verbs = append(verbs, c)
			break
		}
	}
	return verbs
}

// escapingVerb reports whether a verb renders its argument in a form
// that cannot smuggle raw attacker bytes: quoted, numeric, or typed.
// Only %s and %v (and %w, which wraps) pass the raw string through.
func escapingVerb(v byte) bool {
	switch v {
	case 's', 'v', 'w':
		return false
	}
	return true
}

func (s *taintState) applyFlow(res TaintValue, call *ast.CallExpr, fn *types.Func) TaintValue {
	out := stripParams(res)
	for i := 0; i < 64; i++ {
		if res.Params&(1<<uint(i)) == 0 {
			continue
		}
		out = joinTaint(out, s.valueOf(argExpr(call, fn, i)))
	}
	return out
}

func (s *taintState) multiValues(rhs ast.Expr, n int) []TaintValue {
	out := make([]TaintValue, n)
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		if fn := staticCallee(s.n.Info, e); fn != nil {
			if fn.Pkg() != nil && fn.Pkg().Path() == "os" && envFns[fn.Name()] {
				out[0] = TaintValue{Tainted: true, Src: "env read"}
				return out
			}
			if sum := s.g.taints[fn]; sum != nil {
				for i := 0; i < n && i < len(sum.Results); i++ {
					out[i] = s.applyFlow(sum.Results[i], e, fn)
				}
			}
		}
	case *ast.TypeAssertExpr:
		out[0] = s.valueOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			out[0] = s.valueOf(rhs)
		}
	case *ast.IndexExpr:
		out[0] = s.valueOf(e.X)
	}
	return out
}

func (s *taintState) collectReturns() []TaintValue {
	sig := s.n.Fn.Type().(*types.Signature)
	nres := sig.Results().Len()
	if nres == 0 {
		return nil
	}
	out := make([]TaintValue, nres)
	// Zero TaintValue is the lattice bottom, so a plain join over every
	// return is correct (no first-return special case like provenance).
	s.walkSameFunc(s.n.Decl.Body, func(x ast.Node) {
		ret, ok := x.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return
		}
		if len(ret.Results) == 1 && nres > 1 {
			vals := s.multiValues(ret.Results[0], nres)
			for i := range out {
				out[i] = joinTaint(out[i], vals[i])
			}
			return
		}
		for i := 0; i < len(ret.Results) && i < nres; i++ {
			out[i] = joinTaint(out[i], s.valueOf(ret.Results[i]))
		}
	})
	return out
}

func (s *taintState) walkSameFunc(body ast.Node, visit func(ast.Node)) {
	ast.Inspect(body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if x != nil {
			visit(x)
		}
		return true
	})
}

// timerFns are the time-package entry points whose Duration argument a
// tenant must not control (an unbounded sleep is a stall, an unbounded
// ticker a busy loop).
var timerFns = map[string]bool{
	"Sleep": true, "After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
}

// pathFns maps os-package filesystem functions to their path-argument
// indices.
var pathFns = map[string][]int{
	"Open": {0}, "Create": {0}, "OpenFile": {0}, "ReadFile": {0},
	"WriteFile": {0}, "Remove": {0}, "RemoveAll": {0},
	"Mkdir": {0}, "MkdirAll": {0}, "Rename": {0, 1}, "Chdir": {0},
}

// collectSinks gathers every taint sink evaluated in the body,
// including closures, plus sinks propagated from summarized callees.
func (s *taintState) collectSinks() []TaintSink {
	var sinks []TaintSink
	seen := make(map[string]bool)
	add := func(sink TaintSink) {
		if s.g.sanitizedAt(sink.Pos) {
			return
		}
		if len(sink.Chain) > maxChain {
			sink.Chain = sink.Chain[:maxChain]
		}
		key := s.g.Fset.Position(sink.Pos).String() + "|" + strings.Join(sink.Chain, "<")
		if !seen[key] {
			seen[key] = true
			sinks = append(sinks, sink)
		}
	}
	ast.Inspect(s.n.Decl.Body, func(x ast.Node) bool {
		switch n := x.(type) {
		case *ast.CallExpr:
			s.callSinks(n, add)
		case *ast.ForStmt:
			s.loopSinks(n.Cond, n.Body, add)
		case *ast.RangeStmt:
			if isIntegerType(typeOf(s.n.Info, n.X)) {
				add(TaintSink{Pos: n.X.Pos(), Kind: TaintLoopBound, Chain: []string{"range"}, Val: s.valueOf(n.X)})
				s.spawnSinks(n.Body, s.valueOf(n.X), add)
			} else {
				s.spawnSinks(n.Body, s.valueOf(n.X), add)
			}
		}
		return true
	})
	return sinks
}

// loopSinks records the tainted bound of a for-loop condition and any
// goroutine spawned under it.
func (s *taintState) loopSinks(cond ast.Expr, body *ast.BlockStmt, add func(TaintSink)) {
	b, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return
	}
	switch b.Op {
	case token.LSS, token.LEQ, token.GTR, token.GEQ, token.NEQ:
	default:
		return
	}
	bound := joinTaint(s.valueOf(b.X), s.valueOf(b.Y))
	add(TaintSink{Pos: cond.Pos(), Kind: TaintLoopBound, Chain: []string{"for loop"}, Val: bound})
	s.spawnSinks(body, bound, add)
}

// spawnSinks records goroutine launches inside a tainted-bound loop
// body: the spawn count is the loop trip count.
func (s *taintState) spawnSinks(body *ast.BlockStmt, bound TaintValue, add func(TaintSink)) {
	if body == nil || (!bound.Tainted && bound.Params == 0) {
		return
	}
	ast.Inspect(body, func(x ast.Node) bool {
		if gs, ok := x.(*ast.GoStmt); ok {
			add(TaintSink{Pos: gs.Pos(), Kind: TaintSpawnCount, Chain: []string{"go statement"}, Val: bound})
		}
		return true
	})
}

func (s *taintState) callSinks(call *ast.CallExpr, add func(TaintSink)) {
	// Builtins: make sizes, append spreads, panic arguments.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := s.n.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				for _, a := range call.Args[1:] {
					add(TaintSink{Pos: a.Pos(), Kind: TaintAllocSize, Chain: []string{"make"}, Val: s.valueOf(a), SizeExpr: a})
				}
			case "append":
				if call.Ellipsis.IsValid() && len(call.Args) == 2 {
					add(TaintSink{Pos: call.Args[1].Pos(), Kind: TaintAllocSize, Chain: []string{"append"}, Val: s.valueOf(call.Args[1])})
				}
			case "panic":
				if len(call.Args) == 1 {
					add(TaintSink{Pos: call.Args[0].Pos(), Kind: TaintPanic, Chain: []string{"panic"}, Val: s.valueOf(call.Args[0])})
				}
			}
			return
		}
	}
	// time.Duration conversions.
	if tv, ok := s.n.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if types.TypeString(tv.Type, nil) == "time.Duration" {
			add(TaintSink{Pos: call.Args[0].Pos(), Kind: TaintDuration, Chain: []string{"time.Duration"}, Val: s.valueOf(call.Args[0])})
		}
		return
	}
	fn := staticCallee(s.n.Info, call)
	if fn == nil {
		return
	}
	if pkg := fn.Pkg(); pkg != nil {
		hasRecv := fn.Type().(*types.Signature).Recv() != nil
		switch pkg.Path() {
		case "time":
			if !hasRecv && timerFns[fn.Name()] && len(call.Args) > 0 {
				add(TaintSink{Pos: call.Args[0].Pos(), Kind: TaintDuration, Chain: []string{"time." + fn.Name()}, Val: s.valueOf(call.Args[0])})
			}
			return
		case "os":
			for _, i := range pathFns[fn.Name()] {
				if !hasRecv && i < len(call.Args) {
					add(TaintSink{Pos: call.Args[i].Pos(), Kind: TaintFilePath, Chain: []string{"os." + fn.Name()}, Val: s.valueOf(call.Args[i])})
				}
			}
			if pathFns[fn.Name()] != nil {
				return
			}
		case "strings", "bytes":
			if fn.Name() == "Repeat" && !hasRecv && len(call.Args) == 2 {
				add(TaintSink{Pos: call.Args[1].Pos(), Kind: TaintAllocSize, Chain: []string{pkg.Name() + ".Repeat"}, Val: s.valueOf(call.Args[1]), SizeExpr: call.Args[1]})
				return
			}
			if fn.Name() == "Grow" && hasRecv && len(call.Args) == 1 {
				add(TaintSink{Pos: call.Args[0].Pos(), Kind: TaintAllocSize, Chain: []string{displayName(fn)}, Val: s.valueOf(call.Args[0]), SizeExpr: call.Args[0]})
				return
			}
		case "bufio":
			if fn.Name() == "Buffer" && hasRecv && len(call.Args) == 2 {
				add(TaintSink{Pos: call.Args[1].Pos(), Kind: TaintAllocSize, Chain: []string{"Scanner.Buffer"}, Val: s.valueOf(call.Args[1]), SizeExpr: call.Args[1]})
				return
			}
		}
	}
	// Printf-style callees: verbs are judged at this call site, where
	// the format string is visible; the callee's own internal format
	// sink is NOT propagated (it could not see the verbs).
	if idx, ok := formatArgIndex(fn); ok {
		s.formatSinks(call, fn, idx, add)
		return
	}
	// Propagate the callee summary's parameter sinks.
	if sum := s.g.taints[fn]; sum != nil && len(sum.ParamSinks) > 0 {
		idxs := make([]int, 0, len(sum.ParamSinks))
		for i := range sum.ParamSinks {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			arg := argExpr(call, fn, i)
			if arg == nil {
				continue
			}
			inner := sum.ParamSinks[i]
			chain := append([]string{displayName(fn)}, inner.Chain...)
			add(TaintSink{Pos: arg.Pos(), Kind: inner.Kind, Chain: chain, Val: s.valueOf(arg)})
		}
	}
}

// formatSinks records logtaint sinks at a printf-style call site: a
// tainted format string, or tainted arguments under non-escaping verbs
// of a constant format.
func (s *taintState) formatSinks(call *ast.CallExpr, fn *types.Func, fmtIdx int, add func(TaintSink)) {
	if fmtIdx >= len(call.Args) {
		return
	}
	fmtArg := call.Args[fmtIdx]
	name := displayName(fn)
	tv, ok := s.n.Info.Types[fmtArg]
	if !ok || tv.Value == nil {
		if v := s.valueOf(fmtArg); v.Tainted || v.Params != 0 {
			add(TaintSink{Pos: fmtArg.Pos(), Kind: TaintFormatString, Chain: []string{name}, Val: v})
		}
		return
	}
	verbs := formatVerbs(constStringValue(tv))
	for i, a := range call.Args[fmtIdx+1:] {
		if i >= len(verbs) || escapingVerb(verbs[i]) {
			continue
		}
		v := s.valueOf(a)
		if v.Tainted || v.Params != 0 {
			add(TaintSink{Pos: a.Pos(), Kind: TaintFormatArg, Chain: []string{name + " %" + string(verbs[i])}, Val: v})
		}
	}
}

func (s *taintState) chanKey(e ast.Expr) string {
	tv, ok := s.n.Info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return ""
	}
	return types.TypeString(ch.Elem(), nil)
}
