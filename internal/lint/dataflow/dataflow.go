// Package dataflow is the interprocedural layer under the reconlint
// analyzers: a class-hierarchy-analysis (CHA) call graph over the
// loader's type-checked packages, plus a value-provenance lattice
// (seed-derived / wall-clock / global-rand / constant / unknown)
// propagated through calls, returns, struct fields, and channel sends.
//
// The graph is built once per driver run over every loaded package
// (lint.Prepare) and shared by the seedflow, errflow, and hotalloc
// analyzers; analyzer unit tests fall back to a single-package graph
// built on demand, so intra-package interprocedural behavior is
// testable without a whole-program load.
//
// Everything here is stdlib-only (go/ast, go/types); the design mirrors
// golang.org/x/tools/go/callgraph/cha scaled down to what the reconlint
// suite needs.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// PackageInfo is one type-checked package handed to Build. It carries
// the same fields an analysis.Pass does, so both the driver's loader
// packages and a single analyzer pass can feed the builder.
type PackageInfo struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// FuncNode is one function (or method) in the call graph.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	// Pkg/Info identify the defining package; function literals inside
	// the body are attributed to this node.
	Pkg  *types.Package
	Info *types.Info
	// Callees maps each statically-resolved or CHA-resolved callee to
	// the call positions that reach it.
	Callees map[*types.Func][]token.Pos
	// Callers is the reverse edge set.
	Callers map[*types.Func]bool
}

// Graph is the whole-program view: call graph plus provenance state.
type Graph struct {
	Fset  *token.FileSet
	Funcs map[*types.Func]*FuncNode
	pkgs  map[*types.Package]*PackageInfo
	// summaries holds the per-function provenance summaries after the
	// interprocedural fixpoint.
	summaries map[*types.Func]*Summary
	// fieldProv joins the provenance of every value assigned to a named
	// struct field (keyed by type-qualified field name): reading the
	// field anywhere yields the join of all writes. Flow- and
	// instance-insensitive by design.
	fieldProv map[string]Provenance
	// chanProv does the same for channel element types: a send joins the
	// sent value's provenance, a receive reads the join.
	chanProv map[string]Provenance
	// taints holds the per-function taint summaries after the taint
	// fixpoint (see taint.go).
	taints map[*types.Func]*TaintSummary
	// fieldTaint / chanTaint are the taint lattice's counterparts to
	// fieldProv / chanProv.
	fieldTaint map[string]TaintValue
	chanTaint  map[string]TaintValue
	// chanSenders records, per channel-element key, the functions that
	// send tainted values on it — the MHP layer pairs these against
	// receives to show the concurrent half of a channel-crossing chain.
	chanSenders map[string][]*types.Func
	// validatedFields holds field keys bounded by a reject/clamp guard
	// anywhere in the program (the validate-at-the-boundary idiom).
	validatedFields map[string]bool
	// sanitizedLines is //reconlint:sanitized coverage, filename -> line.
	sanitizedLines map[string]map[int]bool
}

// Build constructs the call graph and runs the provenance fixpoint over
// the given packages.
func Build(pkgs []*PackageInfo) *Graph {
	g := &Graph{
		Funcs:     make(map[*types.Func]*FuncNode),
		pkgs:      make(map[*types.Package]*PackageInfo),
		summaries: make(map[*types.Func]*Summary),
		fieldProv: make(map[string]Provenance),
		chanProv:  make(map[string]Provenance),

		taints:      make(map[*types.Func]*TaintSummary),
		fieldTaint:  make(map[string]TaintValue),
		chanTaint:   make(map[string]TaintValue),
		chanSenders: make(map[string][]*types.Func),
	}
	for _, p := range pkgs {
		if p == nil || p.Pkg == nil {
			continue
		}
		if g.Fset == nil {
			g.Fset = p.Fset
		}
		g.pkgs[p.Pkg] = p
		g.indexFuncs(p)
	}
	g.buildEdges()
	g.solve()
	g.solveTaint()
	return g
}

// HasPackage reports whether pkg was part of this graph's build.
func (g *Graph) HasPackage(pkg *types.Package) bool {
	_, ok := g.pkgs[pkg]
	return ok
}

// Node returns the call-graph node for fn, or nil when fn is not a
// declared function in the analyzed packages.
func (g *Graph) Node(fn *types.Func) *FuncNode {
	return g.Funcs[fn]
}

// Summary returns fn's provenance summary, or nil for functions outside
// the analyzed packages.
func (g *Graph) Summary(fn *types.Func) *Summary {
	return g.summaries[fn]
}

// SortedFuncs returns every function node in deterministic order
// (position order), so analyzer output does not depend on map ranging.
func (g *Graph) SortedFuncs() []*FuncNode {
	out := make([]*FuncNode, 0, len(g.Funcs))
	for _, n := range g.Funcs {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Decl.Pos() != out[j].Decl.Pos() {
			return out[i].Decl.Pos() < out[j].Decl.Pos()
		}
		return out[i].Fn.FullName() < out[j].Fn.FullName()
	})
	return out
}

// SortedCallees returns a node's callees in deterministic (full name,
// position) order, so graph traversals do not depend on map ranging.
func (n *FuncNode) SortedCallees() []*types.Func {
	out := make([]*types.Func, 0, len(n.Callees))
	for fn := range n.Callees {
		out = append(out, fn)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FullName() != out[j].FullName() {
			return out[i].FullName() < out[j].FullName()
		}
		return out[i].Pos() < out[j].Pos()
	})
	return out
}

// Reachable returns the set of functions reachable from roots over call
// edges (roots included).
func (g *Graph) Reachable(roots []*types.Func) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var queue []*types.Func
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			queue = append(queue, r)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := g.Funcs[fn]
		if node == nil {
			continue
		}
		for _, callee := range node.SortedCallees() {
			if !seen[callee] {
				seen[callee] = true
				queue = append(queue, callee)
			}
		}
	}
	return seen
}

// program is the driver-registered whole-program graph; analyzers fall
// back to a per-package build when their package was not part of it.
var program struct {
	mu sync.Mutex
	g  *Graph
}

// SetProgram registers the whole-program graph built by the driver.
func SetProgram(g *Graph) {
	program.mu.Lock()
	defer program.mu.Unlock()
	program.g = g
}

// Reset clears the registered whole-program graph and the derived
// per-graph caches (tests).
func Reset() {
	SetProgram(nil)
	lockGraphCache.mu.Lock()
	lockGraphCache.cache = nil
	lockGraphCache.mu.Unlock()
	mhpCache.mu.Lock()
	mhpCache.cache = nil
	mhpCache.mu.Unlock()
}

// Resolve returns the graph an analyzer pass should consult: the
// registered whole-program graph when it covers the pass's package,
// otherwise a fresh single-package graph (the analysistest path —
// interprocedural within the fixture package).
func Resolve(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Graph {
	program.mu.Lock()
	g := program.g
	program.mu.Unlock()
	if g != nil && g.HasPackage(pkg) {
		return g
	}
	return Build([]*PackageInfo{{Fset: fset, Files: files, Pkg: pkg, Info: info}})
}
