package dataflow

import (
	"go/ast"
	"go/token"
	"sort"
)

// CFG is a per-function control-flow graph over go/ast statements. It
// is the substrate under the flow-sensitive analyses (reaching
// locksets, definite channel initialization): blocks hold statements in
// source order, edges model branches, loops, switches, selects, goto,
// and labeled break/continue. Short-circuit operators are not split
// into separate blocks — statement granularity is what the lockset and
// init analyses need — and panics are not modeled as edges.
//
// Defer is modeled with the Go runtime's semantics at the granularity
// the lock analyses require: deferred calls are collected into Defers
// (in source order) and conceptually run after Exit, so a
// defer mu.Unlock() never kills the lockset mid-body.
type CFG struct {
	Blocks []*Block
	Entry  *Block
	Exit   *Block
	// Defers lists every defer statement in the function body, source
	// order. Conditional defers are included — the lock analyses treat
	// all of them as running at function exit, which is conservative for
	// "still held" and exact for the dominant defer-at-top idiom.
	Defers []*ast.DeferStmt
}

// Block is one straight-line run of statements. Nodes are ast.Stmt or
// the ast.Expr of a condition, in source order.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// addSucc wires b -> s once.
func (b *Block) addSucc(s *Block) {
	for _, old := range b.Succs {
		if old == s {
			return
		}
	}
	b.Succs = append(b.Succs, s)
	s.Preds = append(s.Preds, b)
}

// cfgBuilder holds the in-progress graph.
type cfgBuilder struct {
	cfg *CFG
	// cur is the block new statements append to; nil after a terminating
	// statement (return, goto, break) until the next label or join.
	cur *Block
	// breakTo / continueTo are the innermost loop/switch targets; labeled
	// variants index by label name.
	breakTo         *Block
	continueTo      *Block
	labeledBreak    map[string]*Block
	labeledContinue map[string]*Block
	// labels maps a label name to its block for goto; gotos seen before
	// their label are fixed up at the end.
	labels     map[string]*Block
	gotoFixups map[string][]*Block
}

// BuildCFG constructs the CFG of one function body. The body may be a
// declared function's or a function literal's.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:             &CFG{},
		labeledBreak:    make(map[string]*Block),
		labeledContinue: make(map[string]*Block),
		labels:          make(map[string]*Block),
		gotoFixups:      make(map[string][]*Block),
	}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.cur.addSucc(b.cfg.Exit)
	}
	// Unresolved gotos (syntactically impossible in type-checked code,
	// but partial packages happen): fall through to exit.
	for _, blocks := range b.gotoFixups {
		for _, blk := range blocks {
			blk.addSucc(b.cfg.Exit)
		}
	}
	return b.cfg
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// startBlock makes blk current, joining from the previous current block
// when it is still open.
func (b *cfgBuilder) startBlock(blk *Block) {
	if b.cur != nil {
		b.cur.addSucc(blk)
	}
	b.cur = blk
}

// add appends a node to the current block, opening one if control just
// terminated (unreachable code still gets a block so every statement
// appears in the graph exactly once).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.LabeledStmt:
		blk := b.newBlock()
		b.labels[s.Label.Name] = blk
		for _, g := range b.gotoFixups[s.Label.Name] {
			g.addSucc(blk)
		}
		delete(b.gotoFixups, s.Label.Name)
		b.startBlock(blk)
		// Pre-register labeled break/continue targets for the labeled
		// loop/switch, then build it.
		switch inner := s.Stmt.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			done := b.newBlock()
			b.labeledBreak[s.Label.Name] = done
			if _, isLoop := inner.(*ast.ForStmt); isLoop {
				b.labeledLoop(s.Label.Name, inner, done)
			} else if _, isRange := inner.(*ast.RangeStmt); isRange {
				b.labeledLoop(s.Label.Name, inner, done)
			} else {
				b.stmtInto(inner, done)
			}
			delete(b.labeledBreak, s.Label.Name)
			delete(b.labeledContinue, s.Label.Name)
			b.cur = done
		default:
			b.stmt(s.Stmt)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		join := b.newBlock()
		thenBlk := b.newBlock()
		condBlk.addSucc(thenBlk)
		b.cur = thenBlk
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.cur.addSucc(join)
		}
		if s.Else != nil {
			elseBlk := b.newBlock()
			condBlk.addSucc(elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			if b.cur != nil {
				b.cur.addSucc(join)
			}
		} else {
			condBlk.addSucc(join)
		}
		b.cur = join
	case *ast.ForStmt:
		done := b.newBlock()
		b.labeledLoop("", s, done)
		b.cur = done
	case *ast.RangeStmt:
		done := b.newBlock()
		b.labeledLoop("", s, done)
		b.cur = done
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		done := b.newBlock()
		b.stmtInto(s, done)
		b.cur = done
	case *ast.ReturnStmt:
		b.add(s)
		b.cur.addSucc(b.cfg.Exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.add(s)
		switch s.Tok {
		case token.BREAK:
			target := b.breakTo
			if s.Label != nil {
				target = b.labeledBreak[s.Label.Name]
			}
			if target != nil {
				b.cur.addSucc(target)
			} else {
				b.cur.addSucc(b.cfg.Exit)
			}
			b.cur = nil
		case token.CONTINUE:
			target := b.continueTo
			if s.Label != nil {
				target = b.labeledContinue[s.Label.Name]
			}
			if target != nil {
				b.cur.addSucc(target)
			} else {
				b.cur.addSucc(b.cfg.Exit)
			}
			b.cur = nil
		case token.GOTO:
			if s.Label != nil {
				if target, ok := b.labels[s.Label.Name]; ok {
					b.cur.addSucc(target)
				} else {
					b.gotoFixups[s.Label.Name] = append(b.gotoFixups[s.Label.Name], b.cur)
				}
			}
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by the switch builder: the case body's open block
			// falls into the next clause. Nothing to wire here.
		}
	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		b.add(s)
	default:
		// Straight-line statements: assignments, declarations, calls,
		// sends, go, inc/dec, empty.
		b.add(s)
	}
}

// labeledLoop builds a for or range loop whose break target is done and
// whose continue target is the loop head (post-statement block for a
// 3-clause for). label is "" for unlabeled loops.
func (b *cfgBuilder) labeledLoop(label string, s ast.Stmt, done *Block) {
	savedBreak, savedCont := b.breakTo, b.continueTo
	defer func() { b.breakTo, b.continueTo = savedBreak, savedCont }()

	switch s := s.(type) {
	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		b.startBlock(head)
		if s.Cond != nil {
			b.add(s.Cond)
			b.cur.addSucc(done)
		}
		condBlk := b.cur
		post := head
		if s.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			post.addSucc(head)
		}
		b.breakTo, b.continueTo = done, post
		if label != "" {
			b.labeledContinue[label] = post
		}
		body := b.newBlock()
		condBlk.addSucc(body)
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.cur.addSucc(post)
		}
		if s.Cond == nil {
			// for {}: no fall-out edge; done is only reachable via break.
			_ = condBlk
		}
	case *ast.RangeStmt:
		head := b.newBlock()
		b.startBlock(head)
		b.add(s) // the range clause itself (key/value binding + X eval)
		head = b.cur
		head.addSucc(done)
		b.breakTo, b.continueTo = done, head
		if label != "" {
			b.labeledContinue[label] = head
		}
		body := b.newBlock()
		head.addSucc(body)
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.cur.addSucc(head)
		}
	}
}

// stmtInto builds a switch/type-switch/select whose break target is
// done.
func (b *cfgBuilder) stmtInto(s ast.Stmt, done *Block) {
	savedBreak := b.breakTo
	b.breakTo = done
	defer func() { b.breakTo = savedBreak }()

	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.switchClauses(s.Body.List, done)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.switchClauses(s.Body.List, done)
	case *ast.SelectStmt:
		head := b.cur
		if head == nil {
			head = b.newBlock()
			b.cur = head
		}
		hasDefault := false
		for _, clause := range s.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			head.addSucc(blk)
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			} else {
				hasDefault = true
			}
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.cur.addSucc(done)
			}
		}
		if len(s.Body.List) == 0 || !hasDefault {
			// select{} blocks forever; selects without default still reach
			// done only through a clause. Keep done reachable from head only
			// when there are zero clauses (degenerate source).
			if len(s.Body.List) == 0 {
				head.addSucc(done)
			}
		}
		b.cur = nil
	}
}

// switchClauses wires expression/type switch cases: the dispatch block
// branches to every clause (and to done when no default exists);
// fallthrough chains a clause's open end into the next clause's block.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, done *Block) {
	dispatch := b.cur
	if dispatch == nil {
		dispatch = b.newBlock()
		b.cur = dispatch
	}
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
		dispatch.addSucc(blocks[i])
	}
	hasDefault := false
	for i, clause := range clauses {
		cc, ok := clause.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
		}
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		fallsThrough := false
		if n := len(cc.Body); n > 0 {
			if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
		}
		b.stmtList(cc.Body)
		if b.cur != nil {
			if fallsThrough && i+1 < len(blocks) {
				b.cur.addSucc(blocks[i+1])
			} else {
				b.cur.addSucc(done)
			}
		}
	}
	if !hasDefault {
		dispatch.addSucc(done)
	}
	b.cur = nil
}

// Statements returns every statement node in the CFG in source-position
// order — the flattened view tests and exhaustiveness checks use.
func (c *CFG) Statements() []ast.Node {
	var out []ast.Node
	for _, blk := range c.Blocks {
		out = append(out, blk.Nodes...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}
