package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

func TestScratchRangeLockset(t *testing.T) {
	src := `package p

import "sync"

func f(mu1, mu2 *sync.Mutex, xs []int) {
	for _, x := range xs {
		mu1.Lock()
		mu2.Lock()
		mu2.Unlock()
		mu1.Unlock()
		_ = x
	}
}

func g(mu1, mu2 *sync.Mutex) {
	for i := 0; i < 3; i++ {
		mu1.Lock()
		mu2.Lock()
		mu2.Unlock()
		mu1.Unlock()
	}
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
		Types: make(map[ast.Expr]types.TypeAndValue),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls[1:] {
		fd := d.(*ast.FuncDecl)
		fl := AnalyzeLocks(info, fd.Body)
		for _, acq := range fl.Acquires {
			t.Logf("%s: acquire %s at %s held=%v", fd.Name.Name, acq.Lock.Class, fset.Position(acq.Pos), acq.Held.SortedClasses())
		}
	}
}
