package dataflow

import (
	"go/ast"
	"go/types"
	"sort"
	"sync"
)

// SpawnSite is one `go` statement: the function whose body contains it,
// the statement itself, and the statically-resolvable functions the new
// goroutine starts in (the called function for `go f(...)`; for
// `go func(){...}()` the literal's direct static callees).
type SpawnSite struct {
	Fn      *types.Func
	Stmt    *ast.GoStmt
	Targets []*types.Func
}

// MHPInfo is the may-happen-in-parallel approximation seeded from `go`
// statements: a function is Concurrent when it can run on a spawned
// goroutine (it is a spawn target or reachable from one through call
// edges), and a Spawner when a goroutine launch is reachable from it.
// Two program points may run in parallel only if at least one of their
// enclosing functions is Concurrent — the gate the chanmisuse analyzer
// applies before pairing a send's lockset with a receive's.
type MHPInfo struct {
	Spawns []SpawnSite
	// Concurrent marks functions that may execute on a spawned goroutine.
	Concurrent map[*types.Func]bool
	// Spawner marks functions from which a `go` statement is reachable
	// (the spawn-site call chains of the issue statement): their
	// continuations run in parallel with the spawned work.
	Spawner map[*types.Func]bool
}

var mhpCache struct {
	mu    sync.Mutex
	cache map[*Graph]*MHPInfo
}

// MHP computes (once per Graph) the spawn sites and the
// may-run-concurrently function sets.
func (g *Graph) MHP() *MHPInfo {
	mhpCache.mu.Lock()
	defer mhpCache.mu.Unlock()
	if mhpCache.cache == nil {
		mhpCache.cache = make(map[*Graph]*MHPInfo)
	}
	if m, ok := mhpCache.cache[g]; ok {
		return m
	}
	m := g.buildMHP()
	mhpCache.cache[g] = m
	return m
}

func (g *Graph) buildMHP() *MHPInfo {
	m := &MHPInfo{
		Concurrent: make(map[*types.Func]bool),
		Spawner:    make(map[*types.Func]bool),
	}
	var roots []*types.Func
	for _, n := range g.SortedFuncs() {
		n := n
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			gs, ok := x.(*ast.GoStmt)
			if !ok {
				return true
			}
			site := SpawnSite{Fn: n.Fn, Stmt: gs}
			site.Targets = g.spawnTargets(n.Info, gs)
			m.Spawns = append(m.Spawns, site)
			m.Spawner[n.Fn] = true
			roots = append(roots, site.Targets...)
			return true
		})
	}
	// Concurrent: closure of spawn targets over call edges.
	for fn := range g.Reachable(roots) {
		m.Concurrent[fn] = true
	}
	// Spawner: closed over callers — anything that (transitively) calls
	// a spawning function has the spawned goroutine running alongside
	// its own continuation.
	queue := make([]*types.Func, 0, len(m.Spawner))
	for fn := range m.Spawner {
		queue = append(queue, fn)
	}
	sort.Slice(queue, func(i, j int) bool { return queue[i].FullName() < queue[j].FullName() })
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := g.Funcs[fn]
		if node == nil {
			continue
		}
		callers := make([]*types.Func, 0, len(node.Callers))
		for c := range node.Callers {
			callers = append(callers, c)
		}
		sort.Slice(callers, func(i, j int) bool { return callers[i].FullName() < callers[j].FullName() })
		for _, c := range callers {
			if !m.Spawner[c] {
				m.Spawner[c] = true
				queue = append(queue, c)
			}
		}
	}
	return m
}

// spawnTargets resolves the functions a go statement starts: the static
// callee of `go f(...)`, or the static callees inside a `go func(){}()`
// literal's body (the literal itself is attributed to the enclosing
// declaration, so its calls stand in for it).
func (g *Graph) spawnTargets(info *types.Info, gs *ast.GoStmt) []*types.Func {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		var out []*types.Func
		seen := make(map[*types.Func]bool)
		ast.Inspect(lit.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := staticCallee(info, call); fn != nil && !seen[fn] {
				seen[fn] = true
				out = append(out, fn)
			}
			return true
		})
		sort.Slice(out, func(i, j int) bool { return out[i].FullName() < out[j].FullName() })
		return out
	}
	if fn := staticCallee(info, gs.Call); fn != nil {
		return []*types.Func{fn}
	}
	return nil
}

// MayHappenInParallel reports whether code in f and code in g can
// execute at the same time under the spawn-seeded approximation: one of
// them must be able to run on a spawned goroutine, and the other must
// either also run on one or have a live goroutine in flight (be a
// spawner or be concurrent itself).
func (m *MHPInfo) MayHappenInParallel(f, g *types.Func) bool {
	if m.Concurrent[f] && (m.Concurrent[g] || m.Spawner[g]) {
		return true
	}
	if m.Concurrent[g] && (m.Concurrent[f] || m.Spawner[f]) {
		return true
	}
	return false
}
