package dataflow

import "testing"

// TestJoinTaintLattice pins the algebra the taint fixpoint relies on:
// join is commutative, associative, idempotent, monotone in Tainted and
// Params, has the zero value as identity, and breaks Src ties
// lexicographically so the fixpoint is deterministic regardless of the
// order facts arrive in.
func TestJoinTaintLattice(t *testing.T) {
	vals := []TaintValue{
		{},
		{Params: 1},
		{Params: 6},
		{Tainted: true, Src: "wire field Request.Tenant"},
		{Tainted: true, Src: "flag -shards"},
		{Tainted: true, Src: "os.Getenv", Params: 2},
	}
	for _, a := range vals {
		for _, b := range vals {
			ab, ba := joinTaint(a, b), joinTaint(b, a)
			if ab != ba {
				t.Errorf("join not commutative: %+v vs %+v", ab, ba)
			}
			if got := joinTaint(a, a); got != a {
				t.Errorf("join not idempotent on %+v: %+v", a, got)
			}
			if ab.Tainted != (a.Tainted || b.Tainted) {
				t.Errorf("Tainted not monotone for %+v ⊔ %+v", a, b)
			}
			if ab.Params != a.Params|b.Params {
				t.Errorf("Params not monotone for %+v ⊔ %+v", a, b)
			}
			for _, c := range vals {
				l, r := joinTaint(joinTaint(a, b), c), joinTaint(a, joinTaint(b, c))
				if l != r {
					t.Errorf("join not associative: %+v vs %+v", l, r)
				}
			}
		}
		if got := joinTaint(a, TaintValue{}); got != a {
			t.Errorf("zero not identity: %+v ⊔ ⊥ = %+v", a, got)
		}
	}

	// Src tie-break: the lexicographically smaller tainted source wins,
	// so diagnostics are stable across iteration orders.
	got := joinTaint(
		TaintValue{Tainted: true, Src: "wire field Request.Tenant"},
		TaintValue{Tainted: true, Src: "flag -shards"},
	)
	if got.Src != "flag -shards" {
		t.Errorf("Src tie-break = %q, want the lexicographic minimum", got.Src)
	}
}

// TestStripParams pins that lowering a value into global state (field
// or channel taint) keeps the taint fact but drops caller-relative
// parameter bits, which are meaningless outside the summarized frame.
func TestStripParams(t *testing.T) {
	v := TaintValue{Tainted: true, Params: 5, Src: "wire field Request.Count"}
	got := stripParams(v)
	if !got.Tainted || got.Src != v.Src || got.Params != 0 {
		t.Errorf("stripParams = %+v, want tainted, same source, no params", got)
	}
}
