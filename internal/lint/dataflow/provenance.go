package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// Provenance classifies where a value ultimately came from. The order
// is the join order (join = max): mixing a constant into a seed-derived
// value stays seed-derived, mixing anything with a wall-clock or
// global-rand value taints the result.
type Provenance uint8

const (
	// Constant is a compile-time constant (a literal RNG seed — exactly
	// what the determinism contract forbids outside ScenarioSpec.Seed).
	Constant Provenance = iota
	// Unknown carries no information; analyzers treat it as unprovable
	// rather than wrong.
	Unknown
	// SeedDerived is traced to a *Seed struct field or a sim.RNG
	// Split/SplitSeed result — the sanctioned provenance.
	SeedDerived
	// WallClock is traced to time.Now / time.Since / time.Until.
	WallClock
	// GlobalRand is traced to process-global math/rand state.
	GlobalRand
)

func (p Provenance) String() string {
	switch p {
	case Constant:
		return "constant"
	case SeedDerived:
		return "seed-derived"
	case WallClock:
		return "wall-clock-derived"
	case GlobalRand:
		return "global-rand-derived"
	}
	return "unknown"
}

// Value is one lattice element: a provenance joined with the set of
// enclosing-function parameters (receiver first, as bit 0) that flow
// into the value. The parameter mask is what makes summaries
// interprocedural: a caller substitutes its own argument provenance for
// each set bit.
type Value struct {
	Prov   Provenance
	Params uint64
}

func join(a, b Value) Value {
	p := a.Prov
	if b.Prov > p {
		p = b.Prov
	}
	return Value{Prov: p, Params: a.Params | b.Params}
}

// SeedSink is one RNG-construction seed argument reached from a
// function: directly (Chain has one hop, the constructor) or through
// callees (Chain lists the hops outermost-first).
type SeedSink struct {
	// Pos is the seed argument expression at this function's own call
	// site — diagnostics point at the code that supplied the value.
	Pos   token.Pos
	Chain []string
	Arg   Value
}

// maxChain bounds sink chains so mutual recursion cannot grow them
// forever; deeper paths are truncated, not dropped.
const maxChain = 6

// Summary is one function's provenance summary after the fixpoint.
type Summary struct {
	// Results holds the provenance of each declared result, with Params
	// referring to this function's own parameters.
	Results []Value
	// Sinks are the RNG seed arguments evaluated inside this function
	// (transitively through summarized callees).
	Sinks []SeedSink
	// SeedParams maps a parameter index to a representative sink it
	// reaches, the hook callers use to propagate sinks upward.
	SeedParams map[int]SeedSink
}

// solve runs the interprocedural fixpoint: each round recomputes every
// function's summary against the previous round's summaries and the
// global field/channel provenance, until nothing changes.
func (g *Graph) solve() {
	funcs := g.SortedFuncs()
	const maxRounds = 10
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, n := range funcs {
			st := &funcState{g: g, n: n, env: make(map[types.Object]Value), params: paramIndex(n.Fn)}
			sum := st.summarize()
			if st.globalChanged || !reflect.DeepEqual(g.summaries[n.Fn], sum) {
				changed = true
			}
			g.summaries[n.Fn] = sum
		}
		if !changed {
			return
		}
	}
}

// paramIndex maps each parameter object (receiver first) to its bit.
func paramIndex(fn *types.Func) map[types.Object]int {
	idx := make(map[types.Object]int)
	sig := fn.Type().(*types.Signature)
	i := 0
	if recv := sig.Recv(); recv != nil {
		idx[recv] = i
		i++
	}
	for j := 0; j < sig.Params().Len() && i < 64; j++ {
		idx[sig.Params().At(j)] = i
		i++
	}
	return idx
}

// funcState is the per-function analysis state for one summarize call.
type funcState struct {
	g             *Graph
	n             *FuncNode
	params        map[types.Object]int
	env           map[types.Object]Value
	localChanged  bool
	globalChanged bool
}

func (s *funcState) summarize() *Summary {
	// Local fixpoint: later statements can feed earlier ones through
	// loops, so re-walk until the environment stabilizes.
	for i := 0; i < 8; i++ {
		s.localChanged = false
		ast.Inspect(s.n.Decl.Body, func(x ast.Node) bool {
			s.processNode(x)
			return true
		})
		if !s.localChanged {
			break
		}
	}
	sum := &Summary{
		Results:    s.collectReturns(),
		SeedParams: make(map[int]SeedSink),
	}
	sum.Sinks = s.collectSinks()
	for _, sink := range sum.Sinks {
		for i := 0; i < 64; i++ {
			if sink.Arg.Params&(1<<i) == 0 {
				continue
			}
			if _, ok := sum.SeedParams[i]; !ok {
				sum.SeedParams[i] = sink
			}
		}
	}
	return sum
}

// envGet reads a local's value; absent means no information.
func (s *funcState) envGet(obj types.Object) Value {
	if v, ok := s.env[obj]; ok {
		return v
	}
	return Value{Prov: Unknown}
}

// envJoin joins v into a local's value, tracking change.
func (s *funcState) envJoin(obj types.Object, v Value) {
	old, ok := s.env[obj]
	if !ok {
		// First sight: record v as-is so a lone constant write reads back
		// as Constant, not Unknown.
		s.env[obj] = v
		if v != (Value{Prov: Unknown}) {
			s.localChanged = true
		}
		return
	}
	merged := join(old, v)
	if merged != old {
		s.env[obj] = merged
		s.localChanged = true
	}
}

// joinGlobal joins p into a global provenance map (struct fields,
// channel element types). Absence is bottom: the first write is taken
// verbatim.
func (s *funcState) joinGlobal(m map[string]Provenance, key string, p Provenance) {
	old, ok := m[key]
	if !ok {
		m[key] = p
		s.globalChanged = true
		return
	}
	if p > old {
		m[key] = p
		s.globalChanged = true
	}
}

func globalGet(m map[string]Provenance, key string) Provenance {
	if p, ok := m[key]; ok {
		return p
	}
	return Unknown
}

// processNode folds one AST node into the environment and the global
// field/channel provenance.
func (s *funcState) processNode(x ast.Node) {
	switch st := x.(type) {
	case *ast.AssignStmt:
		if len(st.Lhs) > 1 && len(st.Rhs) == 1 {
			vals := s.multiValues(st.Rhs[0], len(st.Lhs))
			for i, lhs := range st.Lhs {
				s.assign(lhs, vals[i])
			}
		} else if len(st.Lhs) == len(st.Rhs) {
			for i := range st.Lhs {
				s.assign(st.Lhs[i], s.valueOf(st.Rhs[i]))
			}
		}
	case *ast.ValueSpec:
		if len(st.Names) > 1 && len(st.Values) == 1 {
			vals := s.multiValues(st.Values[0], len(st.Names))
			for i, name := range st.Names {
				s.assignIdent(name, vals[i])
			}
		} else if len(st.Names) == len(st.Values) {
			for i, name := range st.Names {
				s.assignIdent(name, s.valueOf(st.Values[i]))
			}
		}
	case *ast.RangeStmt:
		v := s.valueOf(st.X)
		v.Params = 0 // container identity, not element flow, for params
		if st.Key != nil {
			s.assign(st.Key, Value{Prov: Unknown})
		}
		if st.Value != nil {
			s.assign(st.Value, v)
		}
	case *ast.SendStmt:
		if key := s.chanKey(st.Chan); key != "" {
			s.joinGlobal(s.g.chanProv, key, s.valueOf(st.Value).Prov)
		}
	case *ast.CompositeLit:
		s.recordCompositeFields(st)
	}
}

// assign routes one assignment target.
func (s *funcState) assign(lhs ast.Expr, v Value) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		s.assignIdent(lhs, v)
	case *ast.SelectorExpr:
		if sel, ok := s.n.Info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			s.joinGlobal(s.g.fieldProv, fieldKeyFromSelection(sel), v.Prov)
		}
	case *ast.IndexExpr:
		// Coarse: storing into a container taints the container local.
		if id, ok := ast.Unparen(lhs.X).(*ast.Ident); ok {
			s.assignIdent(id, v)
		}
	}
}

func (s *funcState) assignIdent(id *ast.Ident, v Value) {
	if id.Name == "_" {
		return
	}
	obj := s.n.Info.Defs[id]
	if obj == nil {
		obj = s.n.Info.Uses[id]
	}
	if obj == nil {
		return
	}
	if _, isParam := s.params[obj]; isParam {
		return // reassigned params keep their call-site provenance
	}
	s.envJoin(obj, v)
}

// recordCompositeFields joins each struct-literal field value into the
// global field provenance.
func (s *funcState) recordCompositeFields(lit *ast.CompositeLit) {
	tv, ok := s.n.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	t := deref(tv.Type)
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		var name string
		var valExpr ast.Expr
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			name, valExpr = key.Name, kv.Value
		} else if i < st.NumFields() {
			name, valExpr = st.Field(i).Name(), elt
		} else {
			continue
		}
		s.joinGlobal(s.g.fieldProv, fieldKey(t, name), s.valueOf(valExpr).Prov)
	}
}

// valueOf computes the lattice value of an expression.
func (s *funcState) valueOf(e ast.Expr) Value {
	if e == nil {
		return Value{Prov: Unknown}
	}
	if tv, ok := s.n.Info.Types[e]; ok && tv.Value != nil {
		return Value{Prov: Constant}
	}
	switch e := e.(type) {
	case *ast.BasicLit:
		return Value{Prov: Constant}
	case *ast.Ident:
		obj := s.n.Info.Uses[e]
		if obj == nil {
			obj = s.n.Info.Defs[e]
		}
		if obj == nil {
			return Value{Prov: Unknown}
		}
		if i, ok := s.params[obj]; ok {
			return Value{Prov: Unknown, Params: 1 << i}
		}
		return s.envGet(obj)
	case *ast.SelectorExpr:
		if sel, ok := s.n.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			name := sel.Obj().Name()
			// *Seed fields are the sanctioned provenance roots
			// (ScenarioSpec.Seed, SweepSpec.BaseSeed, …).
			if name == "Seed" || strings.HasSuffix(name, "Seed") {
				return Value{Prov: SeedDerived}
			}
			return Value{Prov: globalGet(s.g.fieldProv, fieldKeyFromSelection(sel))}
		}
		return Value{Prov: Unknown}
	case *ast.CallExpr:
		return s.callValue(e)
	case *ast.BinaryExpr:
		return join(s.valueOf(e.X), s.valueOf(e.Y))
	case *ast.ParenExpr:
		return s.valueOf(e.X)
	case *ast.StarExpr:
		return s.valueOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			if key := s.chanKey(e.X); key != "" {
				return Value{Prov: globalGet(s.g.chanProv, key)}
			}
			return Value{Prov: Unknown}
		}
		return s.valueOf(e.X)
	case *ast.IndexExpr:
		return s.valueOf(e.X)
	case *ast.TypeAssertExpr:
		return s.valueOf(e.X)
	case *ast.CompositeLit:
		v := Value{Prov: Unknown}
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = join(v, s.valueOf(kv.Value))
			} else {
				v = join(v, s.valueOf(elt))
			}
		}
		return v
	}
	return Value{Prov: Unknown}
}

// wallClockFn mirrors the detrand wall-clock set.
var wallClockFn = map[string]bool{"Now": true, "Since": true, "Until": true}

// seededRandCtor are math/rand(/v2) constructors whose result's
// determinism is decided by their arguments.
var seededRandCtor = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

// callValue computes the provenance of a call's (first) result.
func (s *funcState) callValue(call *ast.CallExpr) Value {
	if tv, ok := s.n.Info.Types[call.Fun]; ok && tv.IsType() {
		// Conversion: provenance passes through.
		if len(call.Args) == 1 {
			return s.valueOf(call.Args[0])
		}
		return Value{Prov: Unknown}
	}
	fn := staticCallee(s.n.Info, call)
	if fn == nil {
		return Value{Prov: Unknown}
	}
	sig := fn.Type().(*types.Signature)
	if pkg := fn.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "math/rand", "math/rand/v2":
			if sig.Recv() != nil {
				// Draws from a local *rand.Rand are as good as its seed.
				return s.receiverValue(call)
			}
			if seededRandCtor[fn.Name()] {
				v := Value{Prov: Unknown}
				for _, a := range call.Args {
					v = join(v, s.valueOf(a))
				}
				return v
			}
			return Value{Prov: GlobalRand}
		case "time":
			if sig.Recv() != nil {
				return s.receiverValue(call) // time.Now().UnixNano() etc.
			}
			if wallClockFn[fn.Name()] {
				return Value{Prov: WallClock}
			}
			return Value{Prov: Unknown}
		}
	}
	if isSimRNGMethod(fn) {
		if fn.Name() == "Split" || fn.Name() == "SplitSeed" {
			// The sanctioned derivation primitives: their results count as
			// seed-derived by contract.
			return Value{Prov: SeedDerived}
		}
		return s.receiverValue(call)
	}
	if sum := s.g.summaries[fn]; sum != nil && len(sum.Results) > 0 {
		return s.applyFlow(sum.Results[0], call, fn)
	}
	return Value{Prov: Unknown}
}

// applyFlow substitutes this call site's argument values for the
// callee-parameter bits in a summary value.
func (s *funcState) applyFlow(res Value, call *ast.CallExpr, fn *types.Func) Value {
	out := Value{Prov: res.Prov}
	for i := 0; i < 64; i++ {
		if res.Params&(1<<uint(i)) == 0 {
			continue
		}
		out = join(out, s.valueOf(argExpr(call, fn, i)))
	}
	return out
}

// receiverValue returns the provenance of a method call's receiver.
func (s *funcState) receiverValue(call *ast.CallExpr) Value {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return s.valueOf(sel.X)
	}
	return Value{Prov: Unknown}
}

// multiValues computes the values of a multi-assignment right side.
func (s *funcState) multiValues(rhs ast.Expr, n int) []Value {
	out := make([]Value, n)
	for i := range out {
		out[i] = Value{Prov: Unknown}
	}
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		if fn := staticCallee(s.n.Info, e); fn != nil {
			if sum := s.g.summaries[fn]; sum != nil {
				for i := 0; i < n && i < len(sum.Results); i++ {
					out[i] = s.applyFlow(sum.Results[i], e, fn)
				}
			}
		}
	case *ast.TypeAssertExpr:
		out[0] = s.valueOf(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			out[0] = s.valueOf(rhs)
		}
	case *ast.IndexExpr:
		out[0] = s.valueOf(e.X)
	}
	return out
}

// collectReturns joins the depth-0 return statements per result index.
func (s *funcState) collectReturns() []Value {
	sig := s.n.Fn.Type().(*types.Signature)
	nres := sig.Results().Len()
	if nres == 0 {
		return nil
	}
	out := make([]Value, nres)
	for i := range out {
		out[i] = Value{Prov: Unknown}
	}
	// The first return is taken verbatim: Constant is the lattice bottom
	// (rank 0), so seeding the accumulator with Unknown and joining would
	// wrongly swallow an all-constant result.
	first := true
	s.walkSameFunc(s.n.Decl.Body, func(x ast.Node) {
		ret, ok := x.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return
		}
		vals := make([]Value, nres)
		for i := range vals {
			vals[i] = Value{Prov: Unknown}
		}
		if len(ret.Results) == 1 && nres > 1 {
			copy(vals, s.multiValues(ret.Results[0], nres))
		} else {
			for i := 0; i < len(ret.Results) && i < nres; i++ {
				vals[i] = s.valueOf(ret.Results[i])
			}
		}
		if first {
			copy(out, vals)
			first = false
			return
		}
		for i := range out {
			out[i] = join(out[i], vals[i])
		}
	})
	return out
}

// walkSameFunc visits nodes without descending into nested function
// literals (used where FuncLit returns must not count as the outer
// function's).
func (s *funcState) walkSameFunc(body ast.Node, visit func(ast.Node)) {
	ast.Inspect(body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if x != nil {
			visit(x)
		}
		return true
	})
}

// collectSinks gathers every RNG seed argument evaluated in the body,
// including closures (event-loop handlers run on behalf of the function
// that scheduled them) and sinks propagated from summarized callees.
func (s *funcState) collectSinks() []SeedSink {
	var sinks []SeedSink
	seen := make(map[string]bool)
	add := func(sink SeedSink) {
		if len(sink.Chain) > maxChain {
			sink.Chain = sink.Chain[:maxChain]
		}
		key := s.g.Fset.Position(sink.Pos).String() + "|" + strings.Join(sink.Chain, "<")
		if !seen[key] {
			seen[key] = true
			sinks = append(sinks, sink)
		}
	}
	ast.Inspect(s.n.Decl.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := staticCallee(s.n.Info, call)
		if fn == nil {
			return true
		}
		if idxs := primitiveSeedParams(fn); len(idxs) > 0 {
			for _, i := range idxs {
				if arg := argExpr(call, fn, i); arg != nil {
					add(SeedSink{Pos: arg.Pos(), Chain: []string{displayName(fn)}, Arg: s.valueOf(arg)})
				}
			}
			return true
		}
		if sum := s.g.summaries[fn]; sum != nil && len(sum.SeedParams) > 0 {
			idxs := make([]int, 0, len(sum.SeedParams))
			for i := range sum.SeedParams {
				idxs = append(idxs, i)
			}
			sort.Ints(idxs)
			for _, i := range idxs {
				arg := argExpr(call, fn, i)
				if arg == nil {
					continue
				}
				inner := sum.SeedParams[i]
				chain := append([]string{displayName(fn)}, inner.Chain...)
				add(SeedSink{Pos: arg.Pos(), Chain: chain, Arg: s.valueOf(arg)})
			}
		}
		return true
	})
	return sinks
}

// primitiveSeedParams returns the parameter indices (receiver counted
// first) that are RNG seeds for the known construction primitives:
// math/rand(/v2) NewSource/NewPCG/Seed and sim.NewRNG.
func primitiveSeedParams(fn *types.Func) []int {
	pkg := fn.Pkg()
	if pkg == nil {
		return nil
	}
	hasRecv := fn.Type().(*types.Signature).Recv() != nil
	switch pkg.Path() {
	case "math/rand", "math/rand/v2":
		switch {
		case fn.Name() == "NewSource" && !hasRecv:
			return []int{0}
		case fn.Name() == "NewPCG" && !hasRecv:
			return []int{0, 1}
		case fn.Name() == "Seed" && !hasRecv:
			return []int{0}
		case fn.Name() == "Seed" && hasRecv:
			return []int{1}
		}
		return nil
	}
	// sim.NewRNG by package name, so fixture modules qualify too.
	if pkg.Name() == "sim" && fn.Name() == "NewRNG" && !hasRecv {
		return []int{0}
	}
	return nil
}

// isSimRNGMethod reports whether fn is a method on the sim package's
// RNG type (matched by name so fixtures qualify).
func isSimRNGMethod(fn *types.Func) bool {
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil || fn.Pkg() == nil || fn.Pkg().Name() != "sim" {
		return false
	}
	named, ok := deref(recv.Type()).(*types.Named)
	return ok && named.Obj().Name() == "RNG"
}

// staticCallee resolves a call's single static target, nil for
// func-typed variables, builtins, and conversions. Instantiated generic
// calls (f[T](...), recv.m[T](...)) resolve to the generic declaration:
// summaries are computed per declaration, which is the right
// granularity for provenance and lockset flow.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := uninstantiate(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// uninstantiate strips parens and the type-argument index of a generic
// call's callee expression: f[int] -> f, pair[K, V] -> pair.
func uninstantiate(fun ast.Expr) ast.Expr {
	fun = ast.Unparen(fun)
	for {
		switch e := fun.(type) {
		case *ast.IndexExpr:
			fun = ast.Unparen(e.X)
		case *ast.IndexListExpr:
			fun = ast.Unparen(e.X)
		default:
			return fun
		}
	}
}

// argExpr returns the expression bound to callee parameter index i at a
// call site, receiver included as index 0 for methods.
func argExpr(call *ast.CallExpr, fn *types.Func, i int) ast.Expr {
	if fn.Type().(*types.Signature).Recv() != nil {
		if i == 0 {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				return sel.X
			}
			return nil
		}
		i--
	}
	if i < len(call.Args) {
		return call.Args[i]
	}
	return nil
}

// displayName renders a function for sink chains: pkg.Func or
// pkg.Type.Method.
func displayName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named, ok := deref(sig.Recv().Type()).(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// fieldKeyFromSelection keys a field by its owner type and name.
func fieldKeyFromSelection(sel *types.Selection) string {
	return fieldKey(deref(sel.Recv()), sel.Obj().Name())
}

func fieldKey(t types.Type, field string) string {
	return types.TypeString(deref(t), nil) + "." + field
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// chanKey keys a channel expression by its element type.
func (s *funcState) chanKey(e ast.Expr) string {
	tv, ok := s.n.Info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return ""
	}
	return types.TypeString(ch.Elem(), nil)
}
