package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// indexFuncs creates a FuncNode for every function and method declared
// in the package. Function literals are not independent nodes: calls
// inside them are attributed to the enclosing declaration, which is the
// right granularity for event-loop closures scheduled on the simulator.
func (g *Graph) indexFuncs(p *PackageInfo) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.Funcs[fn] = &FuncNode{
				Fn: fn, Decl: fd, Pkg: p.Pkg, Info: p.Info,
				Callees: make(map[*types.Func][]token.Pos),
				Callers: make(map[*types.Func]bool),
			}
		}
	}
}

// concreteTypes collects every named non-interface type declared in the
// analyzed packages, the CHA class hierarchy.
func (g *Graph) concreteTypes() []types.Type {
	var out []types.Type
	for pkg := range g.pkgs {
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			out = append(out, named)
		}
	}
	return out
}

// buildEdges resolves every call expression in every function body to
// its callee set: static calls directly, interface method calls via CHA
// (every concrete type in the analyzed packages that implements the
// interface contributes its method).
func (g *Graph) buildEdges() {
	concrete := g.concreteTypes()
	for _, node := range g.Funcs {
		n := node
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, callee := range g.resolveCall(n.Info, call, concrete) {
				if target := g.Funcs[callee]; target != nil {
					n.Callees[callee] = append(n.Callees[callee], call.Pos())
					target.Callers[n.Fn] = true
				}
			}
			return true
		})
	}
}

// resolveCall returns the possible callees of one call expression:
// one static target, or the CHA set for an interface method call.
// Instantiated generic calls (f[T](...)) resolve to the generic
// declaration, so call-graph edges traverse generic helpers.
func (g *Graph) resolveCall(info *types.Info, call *ast.CallExpr, concrete []types.Type) []*types.Func {
	switch fun := uninstantiate(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return []*types.Func{fn}
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok {
			return nil
		}
		sel := info.Selections[fun]
		if sel == nil || sel.Kind() != types.MethodVal {
			return []*types.Func{fn} // package-qualified function
		}
		iface, ok := sel.Recv().Underlying().(*types.Interface)
		if !ok {
			return []*types.Func{fn} // concrete method
		}
		return chaTargets(iface, fn.Name(), concrete)
	}
	return nil // func-typed variable, builtin, or conversion
}

// chaTargets finds every concrete method that an interface method call
// could dispatch to among the analyzed types.
func chaTargets(iface *types.Interface, method string, concrete []types.Type) []*types.Func {
	var out []*types.Func
	for _, t := range concrete {
		impl := types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
		if !impl {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, nil, method)
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, fn)
		}
	}
	return out
}
