package dataflow_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/lint/dataflow"
)

// anyTaintedSink reports whether any sink in the summary is reached by
// a genuinely tainted value (param-only sinks are propagation plumbing,
// not findings).
func anyTaintedSink(sum *dataflow.TaintSummary) bool {
	if sum == nil {
		return false
	}
	for _, s := range sum.Sinks {
		if s.Val.Tainted {
			return true
		}
	}
	return false
}

// TestTaintWireSource pins the source definition: json-tagged fields of
// structs declared in a controlplane package are hostile; untagged
// fields are not.
func TestTaintWireSource(t *testing.T) {
	src := `package controlplane

type Request struct {
	Count  int ` + "`json:\"count\"`" + `
	hidden int
}

func tagged(req Request) { _ = make([]byte, req.Count) }
func untagged(req Request) { _ = make([]byte, req.hidden) }
`
	g := dataflow.Build([]*dataflow.PackageInfo{load(t, "controlplane", src)})
	if sum := g.Taint(fn(t, g, "tagged").Fn); !anyTaintedSink(sum) {
		t.Error("tagged: json-tagged wire field did not taint the make size")
	} else if want := "wire field Request.Count"; sum.Sinks[0].Val.Src != want {
		t.Errorf("tagged: Src = %q, want %q", sum.Sinks[0].Val.Src, want)
	}
	if anyTaintedSink(g.Taint(fn(t, g, "untagged").Fn)) {
		t.Error("untagged: field without a json tag was treated as a wire source")
	}
}

// TestTaintSanitizerRecognition drives each recognized sanitizer form —
// and the near-misses that must NOT sanitize — through a sink.
func TestTaintSanitizerRecognition(t *testing.T) {
	header := `package controlplane

type Request struct {
	Count int    ` + "`json:\"count\"`" + `
	Tenant string ` + "`json:\"tenant\"`" + `
	Op     string ` + "`json:\"op\"`" + `
}
`
	cases := []struct {
		name    string
		body    string
		tainted bool
	}{
		{"reject guard", `
func use(req Request) {
	if req.Count > 1024 {
		return
	}
	_ = make([]byte, req.Count)
}`, false},
		{"lower bound only", `
func use(req Request) {
	if req.Count < 1 {
		return
	}
	_ = make([]byte, req.Count)
}`, true},
		{"len guard leaves content tainted", `
func use(req Request) {
	s := req.Tenant
	if len(s) > 8 {
		return
	}
	panic(s)
}`, true},
		{"min builtin clamp", `
func use(req Request) {
	n := min(req.Count, 1024)
	_ = make([]byte, n)
}`, false},
		{"clamp-named helper", `
func clampCount(n int) int {
	if n > 1024 {
		return 1024
	}
	return n
}

func use(req Request) {
	_ = make([]byte, clampCount(req.Count))
}`, false},
		{"clamp assignment", `
func use(req Request) {
	n := req.Count
	if n > 1024 {
		n = 1024
	}
	_ = make([]byte, n)
}`, false},
		{"directive with reason", `
func use(req Request) {
	//reconlint:sanitized the test vouches for this size
	_ = make([]byte, req.Count)
}`, false},
		{"directive without reason sanitizes nothing", `
func use(req Request) {
	//reconlint:sanitized
	_ = make([]byte, req.Count)
}`, true},
		{"membership reject", `
var valid = map[string]bool{"submit": true}

func use(req Request) {
	if !valid[req.Op] {
		return
	}
	panic(req.Op)
}`, false},
		{"validator call guard", `
func (r Request) Validate() error { return nil }

func use(req Request) {
	if err := req.Validate(); err != nil {
		return
	}
	_ = make([]byte, req.Count)
}`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := dataflow.Build([]*dataflow.PackageInfo{load(t, "controlplane", header+tc.body)})
			if got := anyTaintedSink(g.Taint(fn(t, g, "use").Fn)); got != tc.tainted {
				t.Errorf("tainted = %v, want %v", got, tc.tainted)
			}
		})
	}
}

// TestTaintThroughChannelMHP pins the channel hop and its pairing with
// the MHP layer: a value received in one goroutine is tainted by the
// wire field another goroutine sent, the sender is recorded for the
// diagnostic, and MHP confirms the two endpoints actually overlap.
func TestTaintThroughChannelMHP(t *testing.T) {
	src := `package controlplane

type Request struct {
	Count int ` + "`json:\"count\"`" + `
}

var sizeCh = make(chan int)

func producer(req Request) {
	sizeCh <- req.Count
}

func consumer() {
	n := <-sizeCh
	_ = make([]byte, n)
}

func boot(req Request) {
	go producer(req)
	go consumer()
}
`
	g := dataflow.Build([]*dataflow.PackageInfo{load(t, "controlplane", src)})
	producer, consumer := fn(t, g, "producer").Fn, fn(t, g, "consumer").Fn
	sum := g.Taint(consumer)
	if !anyTaintedSink(sum) {
		t.Fatal("consumer's make size not tainted through the channel")
	}
	if want := "wire field Request.Count"; sum.Sinks[0].Val.Src != want {
		t.Errorf("Src = %q, want %q preserved across the send", sum.Sinks[0].Val.Src, want)
	}
	senders := g.ChanSenders("int")
	if len(senders) != 1 || senders[0] != producer {
		t.Errorf("ChanSenders(int) = %v, want exactly producer", senders)
	}
	if !g.MHP().MayHappenInParallel(producer, consumer) {
		t.Error("MHP: producer and consumer should overlap (both spawned)")
	}
}

// TestTaintReorderProperty is the randomized property test: the local
// fixpoint is flow-insensitive over straight-line assignments, so any
// statement order must propagate taint through a 5-step copy chain to
// the sink. 30 seeded shuffles keep the test deterministic.
func TestTaintReorderProperty(t *testing.T) {
	base := []string{
		"a0 = req.Count",
		"a1 = a0",
		"a2 = a1",
		"a3 = a2",
		"a4 = a3",
	}
	for seed := 0; seed < 30; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		stmts := append([]string(nil), base...)
		rng.Shuffle(len(stmts), func(i, j int) { stmts[i], stmts[j] = stmts[j], stmts[i] })
		src := fmt.Sprintf(`package controlplane

type Request struct {
	Count int `+"`json:\"count\"`"+`
}

func use(req Request) {
	var a0, a1, a2, a3, a4 int
	%s
	_ = make([]byte, a4)
}
`, strings.Join(stmts, "\n\t"))
		g := dataflow.Build([]*dataflow.PackageInfo{load(t, "controlplane", src)})
		if !anyTaintedSink(g.Taint(fn(t, g, "use").Fn)) {
			t.Fatalf("seed %d: order %v lost the taint chain", seed, stmts)
		}
	}
}
