package dataflow

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"math/rand"
	"strings"
	"testing"
)

// parseBody parses a function body given its statement list source.
func parseBody(t *testing.T, stmts string) (*token.FileSet, *ast.BlockStmt) {
	t.Helper()
	fset := token.NewFileSet()
	src := "package p\n\nfunc f() {\n" + stmts + "\n}\n"
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v\nsource:\n%s", err, src)
	}
	return fset, f.Decls[0].(*ast.FuncDecl).Body
}

// blockOf finds the unique block containing a node for which pred
// holds.
func blockOf(t *testing.T, cfg *CFG, fset *token.FileSet, pred func(ast.Node) bool) *Block {
	t.Helper()
	var found *Block
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			if pred(n) {
				if found != nil && found != blk {
					t.Fatalf("node matched in two blocks (%d and %d)", found.Index, blk.Index)
				}
				found = blk
			}
		}
	}
	if found == nil {
		t.Fatal("no block contains the node")
	}
	return found
}

// assignTo matches `name = ...` assignments.
func assignTo(name string) func(ast.Node) bool {
	return func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return false
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		return ok && id.Name == name
	}
}

// reachable returns the blocks reachable from the entry.
func reachable(cfg *CFG) map[*Block]bool {
	seen := map[*Block]bool{cfg.Entry: true}
	queue := []*Block{cfg.Entry}
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		for _, s := range blk.Succs {
			if !seen[s] {
				seen[s] = true
				queue = append(queue, s)
			}
		}
	}
	return seen
}

func hasSucc(b, s *Block) bool {
	for _, x := range b.Succs {
		if x == s {
			return true
		}
	}
	return false
}

func TestCFGDeferCollection(t *testing.T) {
	fset, body := parseBody(t, `
	defer a()
	if cond {
		defer b()
	}
	defer c()
`)
	cfg := BuildCFG(body)
	if len(cfg.Defers) != 3 {
		t.Fatalf("Defers = %d, want 3 (conditional defers included)", len(cfg.Defers))
	}
	for i := 1; i < len(cfg.Defers); i++ {
		if cfg.Defers[i].Pos() < cfg.Defers[i-1].Pos() {
			t.Errorf("Defers out of source order at %d", i)
		}
	}
	// Defer statements also appear in the flow (their argument
	// expressions evaluate at the defer site); the conditional one
	// sits in the if-branch block, not the entry block.
	condDefer := blockOf(t, cfg, fset, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return false
		}
		id, ok := d.Call.Fun.(*ast.Ident)
		return ok && id.Name == "b"
	})
	if condDefer == cfg.Entry {
		t.Error("conditional defer placed in the entry block")
	}
}

func TestCFGGotoForwardAndUnreachable(t *testing.T) {
	fset, body := parseBody(t, `
	x = 1
	goto L
	y = 2
L:
	z = 3
`)
	cfg := BuildCFG(body)
	gotoBlk := blockOf(t, cfg, fset, func(n ast.Node) bool {
		br, ok := n.(*ast.BranchStmt)
		return ok && br.Tok == token.GOTO
	})
	labelBlk := blockOf(t, cfg, fset, assignTo("z"))
	if !hasSucc(gotoBlk, labelBlk) {
		t.Errorf("goto block %d does not branch to label block %d", gotoBlk.Index, labelBlk.Index)
	}
	deadBlk := blockOf(t, cfg, fset, assignTo("y"))
	if len(deadBlk.Preds) != 0 {
		t.Errorf("statement after goto should be predecessor-less, has %d preds", len(deadBlk.Preds))
	}
	if reachable(cfg)[deadBlk] {
		t.Error("unreachable statement is reachable from entry")
	}
	if !reachable(cfg)[labelBlk] {
		t.Error("label target not reachable from entry")
	}
}

func TestCFGGotoBackward(t *testing.T) {
	fset, body := parseBody(t, `
L:
	x = 1
	if cond {
		goto L
	}
	y = 2
`)
	cfg := BuildCFG(body)
	gotoBlk := blockOf(t, cfg, fset, func(n ast.Node) bool {
		br, ok := n.(*ast.BranchStmt)
		return ok && br.Tok == token.GOTO
	})
	labelBlk := blockOf(t, cfg, fset, assignTo("x"))
	if !hasSucc(gotoBlk, labelBlk) {
		t.Errorf("backward goto not wired to its label block")
	}
	if !reachable(cfg)[blockOf(t, cfg, fset, assignTo("y"))] {
		t.Error("fallthrough path after conditional goto lost")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	fset, body := parseBody(t, `
outer:
	for {
		for {
			if cond {
				break outer
			}
			x = 1
		}
	}
	after = 9
`)
	cfg := BuildCFG(body)
	breakBlk := blockOf(t, cfg, fset, func(n ast.Node) bool {
		br, ok := n.(*ast.BranchStmt)
		return ok && br.Tok == token.BREAK && br.Label != nil
	})
	afterBlk := blockOf(t, cfg, fset, assignTo("after"))
	// break outer must reach the code after the outer loop without
	// passing through either loop head again.
	seen := map[*Block]bool{}
	queue := breakBlk.Succs
	for len(queue) > 0 {
		blk := queue[0]
		queue = queue[1:]
		if seen[blk] {
			continue
		}
		seen[blk] = true
		queue = append(queue, blk.Succs...)
	}
	if !seen[afterBlk] {
		t.Error("break outer does not lead to the statement after the labeled loop")
	}
	innerBody := blockOf(t, cfg, fset, assignTo("x"))
	if seen[innerBody] {
		t.Error("break outer leaks back into the inner loop body")
	}
	if !reachable(cfg)[afterBlk] {
		t.Error("code after labeled loop unreachable")
	}
}

func TestCFGLabeledContinue(t *testing.T) {
	fset, body := parseBody(t, `
outer:
	for i = 0; i < n; i++ {
		for {
			continue outer
		}
	}
	after = 1
`)
	cfg := BuildCFG(body)
	contBlk := blockOf(t, cfg, fset, func(n ast.Node) bool {
		br, ok := n.(*ast.BranchStmt)
		return ok && br.Tok == token.CONTINUE && br.Label != nil
	})
	postBlk := blockOf(t, cfg, fset, func(n ast.Node) bool {
		_, ok := n.(*ast.IncDecStmt)
		return ok
	})
	if !hasSucc(contBlk, postBlk) {
		t.Errorf("continue outer must target the outer loop's post block")
	}
	if !reachable(cfg)[blockOf(t, cfg, fset, assignTo("after"))] {
		t.Error("loop exit path lost")
	}
}

func TestCFGFallthrough(t *testing.T) {
	fset, body := parseBody(t, `
	switch x {
	case 1:
		a = 1
		fallthrough
	case 2:
		b = 2
	default:
		c = 3
	}
	after = 4
`)
	cfg := BuildCFG(body)
	caseOne := blockOf(t, cfg, fset, assignTo("a"))
	caseTwo := blockOf(t, cfg, fset, assignTo("b"))
	if !hasSucc(caseOne, caseTwo) {
		t.Error("fallthrough does not chain into the next case block")
	}
	afterBlk := blockOf(t, cfg, fset, assignTo("after"))
	for _, leaf := range []*Block{caseTwo, blockOf(t, cfg, fset, assignTo("c"))} {
		if !hasSucc(leaf, afterBlk) {
			t.Errorf("case block %d does not join the code after the switch", leaf.Index)
		}
	}
}

func TestCFGSelect(t *testing.T) {
	fset, body := parseBody(t, `
	select {
	case v = <-ch:
		a = 1
	case ch2 <- 1:
		b = 2
	}
	after = 3
`)
	cfg := BuildCFG(body)
	afterBlk := blockOf(t, cfg, fset, assignTo("after"))
	for _, name := range []string{"a", "b"} {
		clause := blockOf(t, cfg, fset, assignTo(name))
		if !hasSucc(clause, afterBlk) {
			t.Errorf("select clause %q does not reach the join", name)
		}
	}
	if !reachable(cfg)[afterBlk] {
		t.Error("code after select unreachable")
	}
}

func TestCFGInfiniteLoopExitOnlyViaBreak(t *testing.T) {
	fset, body := parseBody(t, `
	for {
		x = 1
	}
	after = 2
`)
	cfg := BuildCFG(body)
	if reachable(cfg)[blockOf(t, cfg, fset, assignTo("after"))] {
		t.Error("code after a break-less for{} must be unreachable")
	}
}

func TestCFGRangeLoop(t *testing.T) {
	fset, body := parseBody(t, `
	for k = range m {
		x = 1
		if cond {
			continue
		}
		y = 2
	}
	after = 3
`)
	cfg := BuildCFG(body)
	head := blockOf(t, cfg, fset, func(n ast.Node) bool { _, ok := n.(*ast.RangeStmt); return ok })
	contBlk := blockOf(t, cfg, fset, func(n ast.Node) bool {
		br, ok := n.(*ast.BranchStmt)
		return ok && br.Tok == token.CONTINUE
	})
	if !hasSucc(contBlk, head) {
		t.Error("continue in a range loop must return to the range head")
	}
	if !reachable(cfg)[blockOf(t, cfg, fset, assignTo("after"))] {
		t.Error("range loop exit path lost")
	}
}

// --- randomized property test --------------------------------------

// stmtGen emits random nested control flow over numbered leaf
// assignments (s0 = 0, s1 = 1, ...), with breaks and continues inside
// loops. The shapes parse without type-checking, which is all BuildCFG
// needs.
type stmtGen struct {
	r     *rand.Rand
	sb    strings.Builder
	count int
}

func (g *stmtGen) leaf(indent string) {
	fmt.Fprintf(&g.sb, "%ss%d = %d\n", indent, g.count, g.count)
	g.count++
}

func (g *stmtGen) stmts(indent string, depth, inLoop int) {
	n := 1 + g.r.Intn(3)
	for i := 0; i < n; i++ {
		choice := g.r.Intn(10)
		switch {
		case depth == 0 || choice < 4:
			g.leaf(indent)
		case choice < 6:
			fmt.Fprintf(&g.sb, "%sif c%d {\n", indent, g.r.Intn(5))
			g.stmts(indent+"\t", depth-1, inLoop)
			if g.r.Intn(2) == 0 {
				fmt.Fprintf(&g.sb, "%s} else {\n", indent)
				g.stmts(indent+"\t", depth-1, inLoop)
			}
			fmt.Fprintf(&g.sb, "%s}\n", indent)
		case choice < 8:
			fmt.Fprintf(&g.sb, "%sfor i%d = 0; i%d < 10; i%d++ {\n", indent, depth, depth, depth)
			g.stmts(indent+"\t", depth-1, inLoop+1)
			fmt.Fprintf(&g.sb, "%s}\n", indent)
		case choice == 8 && inLoop > 0:
			// Terminates the list early; later statements become
			// unreachable, which the CFG must still place exactly once.
			if g.r.Intn(2) == 0 {
				fmt.Fprintf(&g.sb, "%sbreak\n", indent)
			} else {
				fmt.Fprintf(&g.sb, "%scontinue\n", indent)
			}
		default:
			fmt.Fprintf(&g.sb, "%sswitch t%d {\n%scase 1:\n", indent, depth, indent)
			g.stmts(indent+"\t", depth-1, inLoop)
			fmt.Fprintf(&g.sb, "%sdefault:\n", indent)
			g.stmts(indent+"\t", depth-1, inLoop)
			fmt.Fprintf(&g.sb, "%s}\n", indent)
		}
	}
}

// TestCFGStatementOrderProperty checks two invariants over randomly
// generated (fixed-seed) nested control flow:
//
//  1. every leaf statement of the source appears in the CFG exactly
//     once, reachable or not;
//  2. within each block, nodes appear in strictly increasing source
//     position — a block is a straight-line run.
func TestCFGStatementOrderProperty(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		g := &stmtGen{r: rand.New(rand.NewSource(seed))}
		g.stmts("\t", 3, 0)
		src := g.sb.String()
		fset, body := parseBody(t, src)
		cfg := BuildCFG(body)

		// Count leaf assignments in the AST.
		wantLeaves := map[string]bool{}
		ast.Inspect(body, func(n ast.Node) bool {
			if assignTo("")(n) {
				return true
			}
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && strings.HasPrefix(id.Name, "s") {
					wantLeaves[id.Name] = true
				}
			}
			return true
		})

		// Each leaf appears in exactly one block, exactly once.
		gotLeaves := map[string]int{}
		for _, blk := range cfg.Blocks {
			for _, n := range blk.Nodes {
				if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
					if id, ok := as.Lhs[0].(*ast.Ident); ok && strings.HasPrefix(id.Name, "s") {
						gotLeaves[id.Name]++
					}
				}
			}
		}
		if len(gotLeaves) != len(wantLeaves) {
			t.Fatalf("seed %d: CFG holds %d distinct leaves, source has %d\nsource:\n%s",
				seed, len(gotLeaves), len(wantLeaves), src)
		}
		for name, n := range gotLeaves {
			if n != 1 {
				t.Fatalf("seed %d: leaf %s appears %d times\nsource:\n%s", seed, name, n, src)
			}
		}

		// Within a block, source order is respected.
		for _, blk := range cfg.Blocks {
			for i := 1; i < len(blk.Nodes); i++ {
				if blk.Nodes[i].Pos() <= blk.Nodes[i-1].Pos() {
					t.Fatalf("seed %d: block %d nodes out of source order at %v\nsource:\n%s",
						seed, blk.Index, fset.Position(blk.Nodes[i].Pos()), src)
				}
			}
		}

		// Statements() agrees with the per-block walk.
		if got := len(cfg.Statements()); got < len(wantLeaves) {
			t.Fatalf("seed %d: Statements() lost nodes: %d < %d leaves", seed, got, len(wantLeaves))
		}
	}
}
