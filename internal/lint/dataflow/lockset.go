package dataflow

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Lock identifies one mutex a function can hold. Root is the object of
// the base identifier the lock was reached through (a method receiver,
// a local, a parameter, or a package-level var); Path is the selector
// path from it ("mu" for r.mu, "" for a package-level or embedded
// mutex locked directly). Class is the instance-insensitive identity
// used for cross-function lock-order comparison: "pkg.Type.mu" for a
// field lock, "pkg.var" or "pkg.var.mu" for a package-level one, and a
// position-qualified key for function-local mutexes.
type Lock struct {
	Root   types.Object
	Path   string
	Class  string
	Reader bool // RLock acquisition (same class; mode kept for messages)
}

// HeldLock is one entry of a LockSet: the lock plus the acquisition
// site it entered the set through.
type HeldLock struct {
	Lock Lock
	Pos  token.Pos
	// acquire distinguishes Lock from Unlock when HeldLock doubles as
	// the classification result of one sync call site.
	acquire bool
}

// classifyLockCall decides whether call is a Lock/RLock/Unlock/RUnlock
// on a sync.Mutex or sync.RWMutex (directly or through embedding) and
// returns the lock identity. TryLock counts as an acquire: the lockset
// becomes may-hold, which is the conservative direction for ordering.
func classifyLockCall(info *types.Info, call *ast.CallExpr) (HeldLock, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return HeldLock{}, false
	}
	var acquire, reader bool
	switch sel.Sel.Name {
	case "Lock", "TryLock":
		acquire = true
	case "RLock", "TryRLock":
		acquire, reader = true, true
	case "Unlock":
	case "RUnlock":
		reader = true
	default:
		return HeldLock{}, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return HeldLock{}, false
	}
	lk, ok := lockIdentity(info, sel.X)
	if !ok {
		return HeldLock{}, false
	}
	lk.Reader = reader
	return HeldLock{Lock: lk, acquire: acquire, Pos: call.Pos()}, true
}

// lockIdentity resolves the mutex expression (the X of x.Lock()) to a
// Lock. Supported shapes: ident (local/pkg-level mutex or struct with
// embedded mutex), ident.field, ident.field.field (one struct hop).
func lockIdentity(info *types.Info, e ast.Expr) (Lock, bool) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.ObjectOf(e)
		if obj == nil {
			return Lock{}, false
		}
		return Lock{Root: obj, Path: "", Class: lockClass(obj, "")}, true
	case *ast.SelectorExpr:
		var path []string
		base := ast.Expr(e)
		for {
			s, ok := ast.Unparen(base).(*ast.SelectorExpr)
			if !ok {
				break
			}
			path = append([]string{s.Sel.Name}, path...)
			base = s.X
		}
		id, ok := ast.Unparen(base).(*ast.Ident)
		if !ok {
			return Lock{}, false
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return Lock{}, false
		}
		p := strings.Join(path, ".")
		return Lock{Root: obj, Path: p, Class: lockClass(obj, p)}, true
	}
	return Lock{}, false
}

// lockClass renders the instance-insensitive class key for a lock.
func lockClass(root types.Object, path string) string {
	suffix := ""
	if path != "" {
		suffix = "." + path
	}
	// Package-level var: name it by package path (instance = class).
	if v, ok := root.(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
		return v.Pkg().Name() + "." + v.Name() + suffix
	}
	// Field path rooted at a typed value (receiver, param, local): key by
	// the root's named type, so r.mu and m.mu of the same type share a
	// class.
	if named, ok := deref(root.Type()).(*types.Named); ok && path != "" {
		name := named.Obj().Name()
		if named.Obj().Pkg() != nil {
			name = named.Obj().Pkg().Name() + "." + name
		}
		return name + suffix
	}
	// Function-local mutex value: class is the declaration site.
	return fmt.Sprintf("local:%d.%s", root.Pos(), root.Name())
}

// LockSet is a must-hold set of lock classes mapped to the acquisition
// detail (the Lock and its site). nil means "unknown" (top) during the
// dataflow; an empty non-nil map means "holds nothing".
type LockSet map[string]HeldLock

func (s LockSet) clone() LockSet {
	out := make(LockSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func (s LockSet) equal(o LockSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k, v := range s {
		ov, ok := o[k]
		if !ok || ov.Pos != v.Pos || ov.Lock.Reader != v.Lock.Reader {
			return false
		}
	}
	return true
}

// intersect keeps the locks present in both (must analysis): a merge
// point only holds what every predecessor holds.
func (s LockSet) intersect(o LockSet) LockSet {
	out := make(LockSet)
	for k, v := range s {
		if _, ok := o[k]; ok {
			out[k] = v
		}
	}
	return out
}

// SortedClasses returns the held classes in deterministic order.
func (s LockSet) SortedClasses() []string {
	out := make([]string, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// FuncLocks is the flow-sensitive lockset result for one function body:
// the must-hold lockset *before* each statement/expression node of its
// CFG, plus every acquisition site with the set held at that moment.
type FuncLocks struct {
	CFG *CFG
	// Before maps each CFG node to the lockset in force when it executes.
	Before map[ast.Node]LockSet
	// Acquires lists every Lock/RLock call with the lockset held at it.
	Acquires []Acquisition
	// Releases counts Unlock calls per class (used to detect functions
	// that return holding a lock they took — a summary detail callers of
	// lock-order use).
	exitSet LockSet
}

// Acquisition is one Lock/RLock call and the locks already held there.
type Acquisition struct {
	Lock Lock
	Pos  token.Pos
	Held LockSet
}

// HeldAt returns the must-hold lockset before the given node, or nil
// when the node is not part of the analyzed CFG.
func (fl *FuncLocks) HeldAt(n ast.Node) LockSet { return fl.Before[n] }

// ExitSet returns the lockset still held when the function returns
// (deferred unlocks applied).
func (fl *FuncLocks) ExitSet() LockSet { return fl.exitSet }

// AnalyzeLocks runs the reaching-lockset dataflow over one function
// body. Deferred Unlock/RUnlock calls do not kill the set mid-body;
// they are applied to the exit set. Calls to functions are not
// transparent: a callee that acquires and releases internally does not
// change the caller's set (Go locks are not reentrant, so the balanced
// idiom dominates; cross-function holding is handled by the lock-order
// summaries, not here).
func AnalyzeLocks(info *types.Info, body *ast.BlockStmt) *FuncLocks {
	cfg := BuildCFG(body)
	fl := &FuncLocks{CFG: cfg, Before: make(map[ast.Node]LockSet)}

	in := make([]LockSet, len(cfg.Blocks))
	out := make([]LockSet, len(cfg.Blocks))
	in[cfg.Entry.Index] = make(LockSet)

	// Iterate to fixpoint; the lattice (must-sets shrink) and the
	// bounded program size keep this fast.
	for changed := true; changed; {
		changed = false
		for _, blk := range cfg.Blocks {
			var cur LockSet
			for _, p := range blk.Preds {
				if out[p.Index] == nil {
					continue
				}
				if cur == nil {
					cur = out[p.Index].clone()
				} else {
					cur = cur.intersect(out[p.Index])
				}
			}
			if blk == cfg.Entry {
				cur = make(LockSet)
			}
			if cur == nil {
				continue // unreachable so far
			}
			if in[blk.Index] == nil || !in[blk.Index].equal(cur) {
				in[blk.Index] = cur.clone()
				changed = true
			}
			for _, n := range blk.Nodes {
				fl.Before[n] = cur.clone()
				cur = transferLocks(info, n, cur)
			}
			if out[blk.Index] == nil || !out[blk.Index].equal(cur) {
				out[blk.Index] = cur
				changed = true
			}
		}
	}

	// Acquisition sites with held-at sets, in source order.
	seen := make(map[token.Pos]bool)
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			base := fl.Before[n]
			walkNodeCalls(n, func(call *ast.CallExpr) {
				op, ok := classifyLockCall(info, call)
				if !ok || !op.acquire || seen[op.Pos] {
					return
				}
				seen[op.Pos] = true
				fl.Acquires = append(fl.Acquires, Acquisition{Lock: op.Lock, Pos: op.Pos, Held: base.clone()})
			})
		}
	}
	sort.Slice(fl.Acquires, func(i, j int) bool { return fl.Acquires[i].Pos < fl.Acquires[j].Pos })

	// Exit set: join of exit preds, minus deferred releases.
	var exit LockSet
	for _, p := range cfg.Exit.Preds {
		if out[p.Index] == nil {
			continue
		}
		if exit == nil {
			exit = out[p.Index].clone()
		} else {
			exit = exit.intersect(out[p.Index])
		}
	}
	if exit == nil {
		exit = make(LockSet)
	}
	for _, d := range cfg.Defers {
		if op, ok := classifyLockCall(info, d.Call); ok && !op.acquire {
			delete(exit, op.Lock.Class)
		}
	}
	fl.exitSet = exit
	return fl
}

// transferLocks applies one node's lock effects to a lockset. Deferred
// calls have no mid-body effect (handled at exit); function literals
// are opaque (their bodies run later, on another goroutine or not at
// all).
func transferLocks(info *types.Info, n ast.Node, cur LockSet) LockSet {
	if _, ok := n.(*ast.DeferStmt); ok {
		return cur
	}
	next := cur
	walkNodeCalls(n, func(call *ast.CallExpr) {
		op, ok := classifyLockCall(info, call)
		if !ok {
			return
		}
		if next == nil {
			return
		}
		if op.acquire {
			next = next.clone()
			next[op.Lock.Class] = op
		} else {
			next = next.clone()
			delete(next, op.Lock.Class)
		}
	})
	return next
}

// walkNodeCalls visits the call expressions inside one CFG node without
// descending into function literals or defer/go payloads (those do not
// execute at this program point).
func walkNodeCalls(n ast.Node, visit func(*ast.CallExpr)) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			visit(x)
		}
		_ = x
		return true
	})
}
