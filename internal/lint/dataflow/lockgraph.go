package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"sync"
)

// AcqEdge is one "acquired To while holding From" observation: the
// acquisition happened at Pos inside Fn, reached through Chain
// (outermost caller first; one element for a direct acquisition).
type AcqEdge struct {
	From, To string
	Fn       *types.Func
	Pos      token.Pos
	Chain    []string
}

// LockGraph is the whole-program acquires-while-holding relation over
// lock classes, plus the per-function flow-sensitive lockset results it
// was built from.
type LockGraph struct {
	// Edges maps From -> To -> the witnessing acquisition sites.
	Edges map[string]map[string][]AcqEdge
	// Locks holds each analyzed function's lockset analysis.
	Locks map[*types.Func]*FuncLocks
	// acquires is the transitive may-acquire summary: lock class -> a
	// representative chain of function display names leading to the
	// acquisition, bounded at maxChain hops.
	acquires map[*types.Func]map[string][]string
}

var lockGraphCache struct {
	mu    sync.Mutex
	cache map[*Graph]*LockGraph
}

// LockGraph computes (once per Graph) the flow-sensitive lockset
// analysis for every function and the interprocedural lock-order graph
// on top of it.
func (g *Graph) LockGraph() *LockGraph {
	lockGraphCache.mu.Lock()
	defer lockGraphCache.mu.Unlock()
	if lockGraphCache.cache == nil {
		lockGraphCache.cache = make(map[*Graph]*LockGraph)
	}
	if lg, ok := lockGraphCache.cache[g]; ok {
		return lg
	}
	lg := g.buildLockGraph()
	lockGraphCache.cache[g] = lg
	return lg
}

func (g *Graph) buildLockGraph() *LockGraph {
	lg := &LockGraph{
		Edges:    make(map[string]map[string][]AcqEdge),
		Locks:    make(map[*types.Func]*FuncLocks),
		acquires: make(map[*types.Func]map[string][]string),
	}
	funcs := g.SortedFuncs()
	for _, n := range funcs {
		lg.Locks[n.Fn] = AnalyzeLocks(n.Info, n.Decl.Body)
	}

	// Transitive may-acquire fixpoint: TA(f) = direct(f) ∪ ⋃ TA(callee),
	// chains kept short and deterministic.
	for round := 0; round < maxChain+1; round++ {
		changed := false
		for _, n := range funcs {
			ta := lg.acquires[n.Fn]
			if ta == nil {
				ta = make(map[string][]string)
				lg.acquires[n.Fn] = ta
			}
			for _, acq := range lg.Locks[n.Fn].Acquires {
				if _, ok := ta[acq.Lock.Class]; !ok {
					ta[acq.Lock.Class] = []string{displayName(n.Fn)}
					changed = true
				}
			}
			for _, callee := range n.SortedCallees() {
				sub := lg.acquires[callee]
				classes := make([]string, 0, len(sub))
				for class := range sub {
					classes = append(classes, class)
				}
				sort.Strings(classes)
				for _, class := range classes {
					if _, ok := ta[class]; ok {
						continue
					}
					chain := sub[class]
					if len(chain) >= maxChain {
						continue
					}
					ta[class] = append([]string{displayName(n.Fn)}, chain...)
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	// Edges. Direct: each acquisition with a non-empty held set. Through
	// calls: a call executed under a held set reaches every class the
	// callee may transitively acquire.
	for _, n := range funcs {
		fl := lg.Locks[n.Fn]
		for _, acq := range fl.Acquires {
			for _, fromClass := range acq.Held.SortedClasses() {
				if fromClass == acq.Lock.Class {
					continue // recursive re-acquire is selfDeadlock's domain, not ordering
				}
				lg.addEdge(AcqEdge{
					From: fromClass, To: acq.Lock.Class,
					Fn: n.Fn, Pos: acq.Pos, Chain: []string{displayName(n.Fn)},
				})
			}
		}
		for _, blk := range fl.CFG.Blocks {
			for _, node := range blk.Nodes {
				held := fl.Before[node]
				if len(held) == 0 {
					continue
				}
				walkNodeCalls(node, func(call *ast.CallExpr) {
					if _, isLock := classifyLockCall(n.Info, call); isLock {
						return // already handled as a direct acquisition
					}
					callee := staticCallee(n.Info, call)
					if callee == nil {
						return
					}
					sub := lg.acquires[callee]
					if len(sub) == 0 {
						return
					}
					classes := make([]string, 0, len(sub))
					for c := range sub {
						classes = append(classes, c)
					}
					sort.Strings(classes)
					for _, toClass := range classes {
						for _, fromClass := range held.SortedClasses() {
							if fromClass == toClass {
								continue
							}
							chain := append([]string{displayName(n.Fn)}, sub[toClass]...)
							if len(chain) > maxChain {
								chain = chain[:maxChain]
							}
							lg.addEdge(AcqEdge{
								From: fromClass, To: toClass,
								Fn: n.Fn, Pos: call.Pos(), Chain: chain,
							})
						}
					}
				})
			}
		}
	}
	return lg
}

func (lg *LockGraph) addEdge(e AcqEdge) {
	m := lg.Edges[e.From]
	if m == nil {
		m = make(map[string][]AcqEdge)
		lg.Edges[e.From] = m
	}
	m[e.To] = append(m[e.To], e)
}

// MayAcquire returns the lock classes fn may acquire, directly or
// through callees, each with a representative call chain.
func (lg *LockGraph) MayAcquire(fn *types.Func) map[string][]string {
	return lg.acquires[fn]
}

// Cycle is one deadlock candidate: a cyclic lock-order chain. Classes
// lists the classes in cycle order (len ≥ 2 — recursive single-lock
// re-acquisition is reported separately); Witness holds one AcqEdge per
// hop, so a report can show both (all) acquisition chains.
type Cycle struct {
	Classes []string
	Witness []AcqEdge
}

// Cycles enumerates elementary cycles in the acquires-while-holding
// graph deterministically (lexicographically smallest class first).
// Each cycle is reported once, rotated so its smallest class leads.
func (lg *LockGraph) Cycles() []Cycle {
	classes := make([]string, 0, len(lg.Edges))
	for c := range lg.Edges {
		classes = append(classes, c)
	}
	sort.Strings(classes)

	var cycles []Cycle
	seen := make(map[string]bool)
	// Bounded DFS from each class; cycles longer than maxChain classes
	// are beyond any realistic lock hierarchy and are cut off.
	var path []string
	var dfs func(start, cur string)
	dfs = func(start, cur string) {
		if len(path) > maxChain {
			return
		}
		next := lg.Edges[cur]
		tos := make([]string, 0, len(next))
		for t := range next {
			tos = append(tos, t)
		}
		sort.Strings(tos)
		for _, t := range tos {
			if t == start && len(path) >= 2 {
				key := canonicalCycleKey(path)
				if !seen[key] {
					seen[key] = true
					cycles = append(cycles, lg.witnessCycle(path))
				}
				continue
			}
			if t <= start { // canonical start is the smallest class
				continue
			}
			onPath := false
			for _, p := range path {
				if p == t {
					onPath = true
					break
				}
			}
			if onPath {
				continue
			}
			path = append(path, t)
			dfs(start, t)
			path = path[:len(path)-1]
		}
	}
	for _, c := range classes {
		path = []string{c}
		dfs(c, c)
	}
	sort.Slice(cycles, func(i, j int) bool {
		return canonicalCycleKey(cycles[i].Classes) < canonicalCycleKey(cycles[j].Classes)
	})
	return cycles
}

// witnessCycle attaches one witnessing edge per hop of the class path.
func (lg *LockGraph) witnessCycle(path []string) Cycle {
	c := Cycle{Classes: append([]string(nil), path...)}
	for i := range path {
		from := path[i]
		to := path[(i+1)%len(path)]
		edges := lg.Edges[from][to]
		best := edges[0]
		for _, e := range edges[1:] {
			if e.Pos < best.Pos {
				best = e
			}
		}
		c.Witness = append(c.Witness, best)
	}
	return c
}

func canonicalCycleKey(path []string) string {
	key := ""
	for _, p := range path {
		key += p + "->"
	}
	return key
}

// SelfDeadlocks reports acquisitions of a lock class that is already
// held (sync.Mutex is not reentrant: mu.Lock() under mu.Lock() is a
// guaranteed deadlock; RLock under Lock likewise). Write-under-read
// (Lock while RLock held) is included; RLock under RLock is excluded —
// legal, though it can starve under a pending writer.
func (lg *LockGraph) SelfDeadlocks() []AcqEdge {
	var out []AcqEdge
	fns := make([]*types.Func, 0, len(lg.Locks))
	for fn := range lg.Locks {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
	for _, fn := range fns {
		for _, acq := range lg.Locks[fn].Acquires {
			prior, held := acq.Held[acq.Lock.Class]
			if !held {
				continue
			}
			// Same class but a different instance (a.mu then b.mu on two
			// values of one type) is lock ordering, not re-acquisition.
			if prior.Lock.Root != acq.Lock.Root || prior.Lock.Path != acq.Lock.Path {
				continue
			}
			if prior.Lock.Reader && acq.Lock.Reader {
				continue // RLock under RLock
			}
			out = append(out, AcqEdge{
				From: acq.Lock.Class, To: acq.Lock.Class,
				Fn: fn, Pos: acq.Pos, Chain: []string{displayName(fn)},
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}
