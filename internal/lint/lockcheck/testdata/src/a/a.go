// Package a exercises the lockcheck analyzer: accesses to fields
// annotated "guarded by <mu>" must happen in functions that visibly
// acquire that mutex, carry a Locked-suffix name, or justify an allow
// directive.
package a

import "sync"

type Counter struct {
	mu  sync.Mutex
	n   int // guarded by mu
	hot int
}

func (c *Counter) Inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *Counter) Bad() int {
	return c.n // want `c\.n is guarded by mu, but Bad does not hold c\.mu`
}

func (c *Counter) nLocked() int {
	return c.n // Locked suffix asserts the caller holds mu: fine
}

func (c *Counter) Hot() int {
	return c.hot // unannotated field: fine
}

func New(n int) *Counter {
	return &Counter{n: n} // composite literal construction: fine
}

func (c *Counter) Snapshot() int {
	return c.n //reconlint:allow lockcheck fixture snapshot with no concurrent writers
}

type Cache struct {
	// data memoizes lookups across goroutines.
	// guarded by mu
	data map[string]int
	mu   sync.RWMutex
}

func (c *Cache) Get(k string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.data[k]
}

func (c *Cache) Put(k string, v int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data[k] = v
}

func (c *Cache) Race(k string) int {
	return c.data[k] // want `c\.data is guarded by mu, but Race does not hold c\.mu`
}

func drain(c *Cache) []string {
	var out []string
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.data {
		out = append(out, k)
	}
	return out
}

func leak(c *Cache) int {
	return len(c.data) // want `c\.data is guarded by mu, but leak does not hold c\.mu`
}

// --- v2 flow-sensitive cases: v1 accepted all of these because the
// function mentions the lock somewhere; the lockset analysis does not.

func (c *Counter) UseAfterUnlock() int {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.n // want `c\.n is guarded by mu, but UseAfterUnlock does not hold c\.mu`
}

func (c *Counter) LockInOneBranch(b bool) int {
	if b {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.n // locked on this path: fine
	}
	return c.n // want `c\.n is guarded by mu, but LockInOneBranch does not hold c\.mu`
}

func (c *Counter) SortedUnder() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := func() int { return c.n } // closure inherits creation-site lockset: fine
	return f()
}

func (c *Counter) EitherPath(b bool) int {
	if b {
		c.mu.Lock()
	} else {
		c.mu.Lock()
	}
	defer c.mu.Unlock()
	return c.n // both predecessors hold mu (must-intersection): fine
}
