package lockcheck_test

import (
	"testing"

	"repro/internal/lint/analysistest"
	"repro/internal/lint/lockcheck"
)

func TestLockcheck(t *testing.T) {
	analysistest.Run(t, "testdata", lockcheck.Analyzer, "a")
}
