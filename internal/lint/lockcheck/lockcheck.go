// Package lockcheck implements the reconlint analyzer that verifies
// "// guarded by <mu>" field annotations against the flow-sensitive
// lockset computed by the dataflow layer.
//
// A struct field annotated with a comment containing "guarded by mu"
// (doc comment or trailing line comment) may only be accessed through
// a selector whose base is a local identifier (usually the method
// receiver) at a program point where the must-lockset contains that
// mutex on the same base: base.mu.Lock() dominates the access and no
// intervening base.mu.Unlock() kills it. This is the v2 of the check —
// v1 accepted any function that mentioned base.mu.Lock() anywhere in
// its body, so lock-then-unlock-then-access and branch-local locking
// slipped through. Two escape hatches keep the check honest:
//
//   - functions whose name ends in "Locked" assert that the caller
//     holds the lock (the usual Go convention),
//   - //reconlint:allow lockcheck <reason> on the access line.
//
// Composite literals (construction before the value escapes) are not
// flagged. Function literals inherit the lockset at their creation
// site in addition to locks they acquire themselves: a sort.Slice
// closure inside a locked region stays clean, at the cost of trusting
// that a closure spawned as a goroutine is not reading state its
// spawner only held at spawn time (goroleak polices that direction).
package lockcheck

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/dataflow"
)

// Analyzer is the lockcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "fields annotated '// guarded by mu' must only be accessed while the must-lockset holds that mutex on the same base",
	Run:  run,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// guardedField identifies one annotated field of one struct type.
type guardedField struct {
	structType *types.Named
	field      string
	mutex      string
}

func run(pass *analysis.Pass) (interface{}, error) {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			fl := dataflow.AnalyzeLocks(pass.TypesInfo, fd.Body)
			checkLocks(pass, fd.Name.Name, fl, nil, guarded)
		}
	}
	return nil, nil
}

// collectGuarded finds every struct field annotated "guarded by <mu>".
func collectGuarded(pass *analysis.Pass) []guardedField {
	var out []guardedField
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[ts.Name]
				if obj == nil {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					mu := guardAnnotation(field)
					if mu == "" {
						continue
					}
					for _, name := range field.Names {
						out = append(out, guardedField{structType: named, field: name.Name, mutex: mu})
					}
				}
			}
		}
	}
	return out
}

// guardAnnotation returns the mutex name from a field's doc or line
// comment, or "".
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkLocks walks one analyzed body. outer is the lockset inherited
// from the creation site when the body is a function literal (nil for
// a declared function).
func checkLocks(pass *analysis.Pass, fnName string, fl *dataflow.FuncLocks, outer dataflow.LockSet, guarded []guardedField) {
	for _, blk := range fl.CFG.Blocks {
		for _, n := range blk.Nodes {
			held := fl.Before[n]
			ast.Inspect(n, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.CompositeLit:
					return false // construction, not shared access
				case *ast.FuncLit:
					// Analyze the literal's own body; it additionally
					// inherits the lockset at its creation site.
					inner := dataflow.AnalyzeLocks(pass.TypesInfo, x.Body)
					inherited := held
					if outer != nil {
						inherited = union(held, outer)
					}
					checkLocks(pass, fnName, inner, inherited, guarded)
					return false
				case *ast.SelectorExpr:
					checkAccess(pass, fnName, x, held, outer, guarded)
				}
				return true
			})
		}
	}
}

// union merges two locksets (b wins no conflicts — classes are keys).
func union(a, b dataflow.LockSet) dataflow.LockSet {
	out := make(dataflow.LockSet, len(a)+len(b))
	for k, v := range b {
		out[k] = v
	}
	for k, v := range a {
		out[k] = v
	}
	return out
}

// checkAccess reports sel if it reads/writes a guarded field while the
// effective lockset lacks the annotated mutex on the same base object.
func checkAccess(pass *analysis.Pass, fnName string, sel *ast.SelectorExpr, held, outer dataflow.LockSet, guarded []guardedField) {
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.ObjectOf(base)
	if obj == nil {
		return
	}
	named := namedOf(obj.Type())
	if named == nil {
		return
	}
	for _, g := range guarded {
		if g.structType != named || g.field != sel.Sel.Name {
			continue
		}
		if holdsOn(held, obj, g.mutex) || holdsOn(outer, obj, g.mutex) {
			continue
		}
		pass.Reportf(sel.Sel.Pos(),
			"%s.%s is guarded by %s, but %s does not hold %s.%s here (lock it, suffix the function name with Locked, or justify with a reconlint:allow directive)",
			base.Name, g.field, g.mutex, fnName, base.Name, g.mutex)
	}
}

// holdsOn reports whether the lockset contains mutex <mu> reached from
// exactly the given base object.
func holdsOn(held dataflow.LockSet, base types.Object, mu string) bool {
	for _, h := range held {
		if h.Lock.Root == base && h.Lock.Path == mu {
			return true
		}
	}
	return false
}

// namedOf unwraps pointers to a named struct type.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}
