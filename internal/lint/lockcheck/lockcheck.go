// Package lockcheck implements the reconlint analyzer that verifies
// "// guarded by <mu>" field annotations syntactically.
//
// A struct field annotated with a comment containing "guarded by mu"
// (doc comment or trailing line comment) may only be accessed through
// a selector whose base is a local identifier (usually the method
// receiver) inside a function that visibly acquires that mutex on the
// same base: base.mu.Lock(), base.mu.RLock(), or a
// defer/assignment thereof. Two escape hatches keep the check honest
// without flow analysis:
//
//   - functions whose name ends in "Locked" assert that the caller
//     holds the lock (the usual Go convention),
//   - //reconlint:allow lockcheck <reason> on the access line.
//
// Composite literals (construction before the value escapes) are not
// flagged. This is a syntactic check: it cannot see aliasing or prove
// lock ordering — it exists to catch the easy, common mistake of a new
// method touching shared state without locking.
package lockcheck

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the lockcheck analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "fields annotated '// guarded by mu' must only be accessed while that mutex is visibly held",
	Run:  run,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// guardedField identifies one annotated field of one struct type.
type guardedField struct {
	structType *types.Named
	field      string
	mutex      string
}

func run(pass *analysis.Pass) (interface{}, error) {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			checkFunc(pass, fd, guarded)
		}
	}
	return nil, nil
}

// collectGuarded finds every struct field annotated "guarded by <mu>".
func collectGuarded(pass *analysis.Pass) []guardedField {
	var out []guardedField
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[ts.Name]
				if obj == nil {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					mu := guardAnnotation(field)
					if mu == "" {
						continue
					}
					for _, name := range field.Names {
						out = append(out, guardedField{structType: named, field: name.Name, mutex: mu})
					}
				}
			}
		}
	}
	return out
}

// guardAnnotation returns the mutex name from a field's doc or line
// comment, or "".
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkFunc reports guarded-field accesses in fd that are not covered
// by a visible Lock/RLock on the same base identifier.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, guarded []guardedField) {
	// locked[obj][mu] records that fd contains obj.mu.Lock()/RLock().
	locked := make(map[types.Object]map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		muSel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := ast.Unparen(muSel.X).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.ObjectOf(base)
		if obj == nil {
			return true
		}
		if locked[obj] == nil {
			locked[obj] = make(map[string]bool)
		}
		locked[obj][muSel.Sel.Name] = true
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.CompositeLit); ok {
			return false // construction, not shared access
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.ObjectOf(base)
		if obj == nil {
			return true
		}
		named := namedOf(obj.Type())
		if named == nil {
			return true
		}
		for _, g := range guarded {
			if g.structType != named || g.field != sel.Sel.Name {
				continue
			}
			if locked[obj][g.mutex] {
				continue
			}
			pass.Reportf(sel.Sel.Pos(),
				"%s.%s is guarded by %s, but %s does not acquire %s.%s (lock it, suffix the function name with Locked, or justify with a reconlint:allow directive)",
				base.Name, g.field, g.mutex, fd.Name.Name, base.Name, g.mutex)
		}
		return true
	})
}

// namedOf unwraps pointers to a named struct type.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}
