package controlplane

import (
	"fmt"
	"strings"
)

// dumpState renders the whole control plane as deterministic text: a
// header, one block per tenant sorted by name, and a totals line. The
// format is pinned by a golden test and exposed both as the wire OpDump
// and as `rmsd -dump-state`.
func (s *Server) dumpState() (string, error) {
	dumps, err := s.DumpTenants()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "controlplane state seed=%d shards=%d draining=%v paused=%v tenants=%d\n",
		s.cfg.Seed, len(s.shards), s.draining.Load(), s.paused.Load(), len(dumps))
	var total TenantStats
	for _, d := range dumps {
		st := d.Stats
		// Tenant names are wire input: %q keeps a hostile name (newlines,
		// ANSI escapes) from forging dump lines. The tier is rendered from
		// the Tier enum but travels through the wire stats struct, so it
		// gets the same treatment.
		fmt.Fprintf(&b, "tenant %q tier=%q submitted=%d accepted=%d rejected=%d quota_denied=%d completed=%d evicted=%d canceled=%d in_flight=%d retries=%d cost=%.2f vtime=%.3f\n",
			st.Tenant, st.Tier, st.Submitted, st.Accepted, st.Rejected, st.QuotaDenied,
			st.Completed, st.Evicted, st.Canceled, st.InFlight, st.Retries,
			st.CostUnits, st.VirtualSeconds)
		for _, line := range d.Fabric {
			fmt.Fprintf(&b, "  %s\n", line)
		}
		total.Submitted += st.Submitted
		total.Accepted += st.Accepted
		total.Rejected += st.Rejected
		total.QuotaDenied += st.QuotaDenied
		total.Completed += st.Completed
		total.Evicted += st.Evicted
		total.Canceled += st.Canceled
		total.InFlight += st.InFlight
		total.Retries += st.Retries
		total.CostUnits += st.CostUnits
	}
	fmt.Fprintf(&b, "totals submitted=%d accepted=%d rejected=%d completed=%d evicted=%d canceled=%d in_flight=%d retries=%d cost=%.2f\n",
		total.Submitted, total.Accepted, total.Rejected, total.Completed,
		total.Evicted, total.Canceled, total.InFlight, total.Retries, total.CostUnits)
	return b.String(), nil
}

// DumpState renders the deterministic state snapshot (see dumpState);
// the error case only arises during shutdown.
func (s *Server) DumpState() (string, error) { return s.dumpState() }
