package controlplane

import (
	"strings"
	"testing"
)

// FuzzDecodeRequest throws arbitrary bytes at the wire decoder. The
// contract: never panic, reject with a stable wire code (malformed JSON,
// oversized payloads, unknown ops/tiers/scenarios), and accept only
// requests that re-validate — an accepted submit always carries a tenant
// and a task spec that passes Validate.
func FuzzDecodeRequest(f *testing.F) {
	for _, seed := range []string{
		`{"op":"ping"}`,
		`{"op":"submit","tenant":"alice","tier":"full","task":{"id":"t1","work_mi":100,"parallel":0.5,"data_mb":8}}`,
		`{"op":"submit","tenant":"a","task":{"id":"hw","work_mi":1000,"scenario":"userhw","design":"aes128"}}`,
		`{"op":"status","tenant":"a","task_id":"t1"}`,
		`{"op":"cancel","tenant":"a","task_id":"t1"}`,
		`{"op":"stats"}`,
		`{"op":"drain"}`,
		`{"op":"shutdown"}`,
		`{"op":"submit","tenant":"a","tier":"platinum","task":{"id":"t","work_mi":1}}`,
		`{"op":"submit","tenant":"a","task":{"id":"t","work_mi":-1}}`,
		`{"op":"submit","tenant":"a","task":{"id":"t","work_mi":1e999}}`,
		`{"op":"submit","tenant":"a","task":{"id":"t","work_mi":1,"scenario":"quantum"}}`,
		`{"op":"submit","tenant":"a","task":{"id":"t","work_mi":1,"parallel":2}}`,
		`{not json`,
		`null`,
		`[]`,
		`""`,
		``,
		`{"op":"ping","extra":{"deep":{"deeper":[1,2,3]}}}`,
		"{\"op\":\"ping\"}\x00",
		// Hostile boundary numerics: a tiny request carrying a huge
		// magnitude must reject with a stable code, never admit work the
		// simulator would choke on.
		`{"op":"submit","tenant":"a","task":{"id":"t","work_mi":9223372036854775807}}`,
		`{"op":"submit","tenant":"a","task":{"id":"t","work_mi":-9223372036854775808}}`,
		`{"op":"submit","tenant":"a","task":{"id":"t","work_mi":4294967295}}`,
		`{"op":"submit","tenant":"a","task":{"id":"t","work_mi":4294967297}}`,
		`{"op":"submit","tenant":"a","task":{"id":"t","work_mi":1,"data_mb":9223372036854775807}}`,
		`{"op":"submit","tenant":"a","task":{"id":"t","work_mi":1,"parallel":9223372036854775807}}`,
		`{"op":"submit","tenant":"a","task":{"id":"t","work_mi":1e9}}`,
		`{"op":"submit","tenant":"` + strings.Repeat("A", 257) + `","task":{"id":"t","work_mi":1}}`,
		`{"op":"status","tenant":"a","task_id":"` + strings.Repeat("é", 200) + `"}`,
		`{"op":"submit","tenant":"\u001b[31mred\u001b[0m","task":{"id":"a\nb","work_mi":1}}`,
	} {
		f.Add([]byte(seed))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		req, err := DecodeRequest(line, MaxRequestBytes)
		if err != nil {
			code := ErrorCode(err)
			switch code {
			case CodeBadRequest, CodeOversized, CodeUnknownOp, CodeUnknownTier, CodeInvalidTask:
			default:
				t.Fatalf("DecodeRequest(%q): unexpected reject code %q (%v)", line, code, err)
			}
			return
		}
		if !validOps[req.Op] {
			t.Fatalf("DecodeRequest(%q) accepted unknown op %q", line, req.Op)
		}
		if _, terr := ParseTier(req.Tier); terr != nil {
			t.Fatalf("DecodeRequest(%q) accepted unknown tier %q", line, req.Tier)
		}
		if req.Op == OpSubmit {
			if req.Tenant == "" || req.Task == nil {
				t.Fatalf("DecodeRequest(%q) accepted a bare submit", line)
			}
			if verr := req.Task.Validate(); verr != nil {
				t.Fatalf("DecodeRequest(%q) accepted invalid task: %v", line, verr)
			}
		}
		if len(line) > MaxRequestBytes {
			t.Fatalf("DecodeRequest accepted %d bytes over the %d cap", len(line), MaxRequestBytes)
		}
		_ = strings.TrimSpace(req.Op)
	})
}
