package controlplane

import (
	"fmt"

	"repro/internal/capability"
	"repro/internal/faults"
	"repro/internal/hdl"
	"repro/internal/jss"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/pe"
	"repro/internal/rms"
	"repro/internal/sim"
	"repro/internal/task"
)

// TenantStats is the per-tenant counter snapshot the wire API exposes.
// The conservation invariant the property suite enforces is
//
//	Submitted == Completed + Rejected + Evicted + Canceled + InFlight
//
// at every point in the tenant's life, with InFlight == 0 after a drain.
type TenantStats struct {
	Tenant string `json:"tenant"`
	Tier   string `json:"tier"`
	// Submitted counts every submit request received for the tenant;
	// Accepted the ones past admission (Accepted = Submitted - Rejected).
	Submitted int `json:"submitted"`
	Accepted  int `json:"accepted"`
	// Rejected counts every admission denial (quota, queue bound,
	// invalid task, draining); QuotaDenied is the subset denied by a
	// tier resource limit — admission rate, queue bound, or cost
	// budget — as opposed to malformed or mistimed requests.
	Rejected    int `json:"rejected"`
	QuotaDenied int `json:"quota_denied"`
	// Completed / Evicted / Canceled are terminal outcomes; InFlight is
	// the queued-or-running remainder.
	Completed int `json:"completed"`
	Evicted   int `json:"evicted"`
	Canceled  int `json:"canceled"`
	InFlight  int `json:"in_flight"`
	// Retries counts fault-aborted attempts that were re-queued.
	Retries int `json:"retries"`
	// FaultAborts counts execution attempts killed by an injected fault
	// (whether or not the task was later re-queued). RepairedTasks and
	// RepairSeconds accumulate the repair record: a task that completes
	// after at least one fault abort contributes the virtual time from
	// its last fault strike to its completion, so
	// RepairSeconds/RepairedTasks is the tenant's mean time to repair.
	// All three are omitempty: fault-free runs serialize exactly as
	// before these fields existed.
	FaultAborts   int     `json:"fault_aborts,omitempty"`
	RepairedTasks int     `json:"repaired_tasks,omitempty"`
	RepairSeconds float64 `json:"repair_seconds,omitempty"`
	// VirtualSeconds is the tenant engine's virtual clock; CostUnits the
	// accumulated execution cost at the jss cost rates.
	VirtualSeconds float64 `json:"virtual_seconds"`
	CostUnits      float64 `json:"cost_units"`
}

// conserved reports whether the tenant's counters balance.
func (s TenantStats) conserved() bool {
	return s.Submitted == s.Completed+s.Rejected+s.Evicted+s.Canceled+s.InFlight
}

// taskState is a control-plane task's lifecycle state.
type taskState int

const (
	stateQueued taskState = iota
	stateDone
	stateEvicted
	stateCanceled
)

// maxDoneLog bounds the per-tenant completion log: large enough for
// every test workload and any plausible dump window, small enough that
// a tenant completing tasks forever cannot grow server memory.
const maxDoneLog = 4096

var taskStateNames = [...]string{
	stateQueued: "queued", stateDone: "done",
	stateEvicted: "evicted", stateCanceled: "canceled",
}

func (s taskState) String() string {
	if s >= 0 && int(s) < len(taskStateNames) {
		return taskStateNames[s]
	}
	return fmt.Sprintf("taskState(%d)", int(s))
}

// cpTask is one accepted task riding through a tenant engine.
type cpTask struct {
	id    string
	t     *task.Task
	sub   *jss.Submission
	state taskState
	// attempts counts fault-aborted executions so far; lastFaultAt is
	// the virtual time of the most recent abort, the start of the repair
	// window MTTR accounting measures.
	attempts    int
	lastFaultAt sim.Time
	// queuedAt/doneAt are tenant-virtual times.
	queuedAt sim.Time
	doneAt   sim.Time
}

// tenantEngine is one tenant's deterministic slice of the control plane:
// a vFPGA slice (a private registry/matchmaker over the tier's device
// set), a jss instance for validation/quotas/cost accounting, a lease
// monitor, and a discrete-event simulator providing the virtual clock
// work executes under. Everything the engine does is a pure function of
// (tenant seed, op sequence): it draws no wall-clock time and no global
// randomness, which is what makes per-tenant results independent of the
// shard count and of cross-tenant interleaving.
//
// A tenantEngine is owned by exactly one shard goroutine; it needs no
// locking.
type tenantEngine struct {
	id     string
	tier   Tier
	policy TierPolicy
	seed   uint64

	reg *rms.Registry
	mm  *rms.Matchmaker
	mon *rms.Monitor
	jss *jss.JSS
	sim *sim.Simulator

	// faultEvents is the precomputed, time-sorted fault timeline for the
	// slice; faultIdx the consumption cursor (virtual time is monotone).
	faultEvents []faults.Event
	faultIdx    int

	queue []*cpTask
	tasks map[string]*cpTask
	// doneLog records completed task IDs in completion order — the
	// differential suite compares these sets across shard counts. Capped
	// at maxDoneLog (oldest dropped): a long-running server must not
	// grow memory with every task a tenant ever completed.
	doneLog []string

	bucket tokenBucket
	// costBudget caps total accepted cost when positive (wired through
	// jss QoS so over-budget submissions reject with ErrQuotaExceeded).
	costBudget float64
	quotedCost float64

	stats TenantStats

	// Observability: nil sink disables emission entirely.
	sink      obs.TraceSink
	name      obs.Name
	elemNames map[*node.Element]obs.Name
	// sampleEvery emits a gauge sample every N completions (0 = off).
	sampleEvery int
	sinceSample int

	// reqs are the shared per-scenario requirement sets.
	reqs tenantReqs
}

type tenantReqs struct {
	software capability.Requirements
	softcore capability.Requirements
	userHW   capability.Requirements
}

// newTenantEngine builds a tenant's slice for its tier. The clock
// argument seeds the admission bucket's refill timeline.
func newTenantEngine(id string, tier Tier, seed uint64, cfg *Config, nowNanos int64) (*tenantEngine, error) {
	policy := tier.Policy()
	if cfg.NowNanos == nil {
		// Without an admission clock the bucket could never refill, so
		// rate limiting is off entirely; queue bounds still apply.
		policy.RatePerSec = 0
	}
	if cfg.MaxQueueOverride > 0 {
		policy.MaxQueue = cfg.MaxQueueOverride
	}
	if cfg.RateOverride > 0 {
		policy.RatePerSec = cfg.RateOverride
	}
	if cfg.BurstOverride > 0 {
		policy.Burst = cfg.BurstOverride
	}

	n, err := node.New("n0")
	if err != nil {
		return nil, err
	}
	if _, err := n.AddGPP(capability.GPPCaps{
		CPUType: "Intel Xeon E5540", MIPS: 42000, OS: "Linux",
		RAMMB: 16384, Cores: policy.GPPCores,
	}); err != nil {
		return nil, err
	}
	for _, dev := range policy.RPEDevices {
		if _, err := n.AddRPE(dev); err != nil {
			return nil, err
		}
	}
	reg := rms.NewRegistry()
	if err := reg.AddNode(n); err != nil {
		return nil, err
	}
	tc, err := hdl.NewToolchain("Xilinx ISE 13", "Virtex-4", "Virtex-5", "Virtex-6")
	if err != nil {
		return nil, err
	}
	mm, err := rms.NewMatchmaker(reg, tc)
	if err != nil {
		return nil, err
	}

	te := &tenantEngine{
		id:     id,
		tier:   tier,
		policy: policy,
		seed:   seed,
		reg:    reg,
		mm:     mm,
		mon:    rms.NewMonitor(),
		jss:    jss.New(),
		// Tenant simulators are small (a handful of pending events);
		// the binary heap beats the timing wheel's fixed footprint at
		// thousands-of-tenants scale.
		sim:         sim.NewSimulator(sim.WithScheduler(sim.NewHeapQueue())),
		tasks:       make(map[string]*cpTask),
		bucket:      newTokenBucket(policy.RatePerSec, policy.Burst, nowNanos),
		costBudget:  cfg.CostBudgetUnits,
		sink:        cfg.Sink,
		sampleEvery: cfg.SampleEvery,
		reqs: tenantReqs{
			software: task.GPPOnly(1000, 256),
			softcore: capability.Requirements{}.Min(capability.ParamSoftIssueWidth, 2),
			userHW:   task.FPGAFamily("Virtex-5", 1),
		},
		stats: TenantStats{Tenant: id, Tier: tier.String()},
	}
	if te.sink != nil {
		te.name = obs.Str(id)
		te.elemNames = make(map[*node.Element]obs.Name)
	}
	if cfg.Faults.Enabled() {
		rng := sim.NewRNG(seed).Split(faults.ScheduleStream)
		events, err := faults.Schedule(rng, cfg.Faults, []string{n.ID})
		if err != nil {
			return nil, err
		}
		te.faultEvents = events
	}
	return te, nil
}

// buildTask turns a validated wire TaskSpec into the paper's task tuple.
func (te *tenantEngine) buildTask(spec *TaskSpec) (*task.Task, error) {
	t := &task.Task{
		ID: spec.ID,
		Work: pe.Work{
			MInstructions:    spec.WorkMI,
			ParallelFraction: spec.Parallel,
			DataMB:           spec.DataMB,
		},
		EstimatedSeconds: spec.WorkMI / 1000,
	}
	if spec.DataMB > 0 {
		t.Inputs = []task.DataIn{{DataID: "in", SizeMB: spec.DataMB}}
		t.Outputs = []task.DataOut{{DataID: "out", SizeMB: spec.DataMB / 4}}
	}
	switch spec.Scenario {
	case "", "software":
		t.ExecReq = task.ExecReq{Scenario: pe.SoftwareOnly, Requirements: te.reqs.software}
	case "softcore":
		t.ExecReq = task.ExecReq{Scenario: pe.PredeterminedHW, SoftcoreISA: "rvex-vliw", Requirements: te.reqs.softcore}
	case "userhw":
		d, err := hdl.LookupIP(spec.Design)
		if err != nil {
			return nil, errWire(CodeInvalidTask, "task %q: %v", spec.ID, err)
		}
		t.ExecReq = task.ExecReq{Scenario: pe.UserDefinedHW, Requirements: te.reqs.userHW, Design: d}
		t.Work.HWSpeedup = d.AccelFactor
	default:
		return nil, errWire(CodeInvalidTask, "task %q: unknown scenario %q", spec.ID, spec.Scenario)
	}
	return t, nil
}

// submit runs admission for one task: token-bucket quota, queue bound,
// task construction, and the jss validation/cost gate. On success the
// task is queued; every failure path is a counted rejection.
func (te *tenantEngine) submit(spec *TaskSpec, nowNanos int64, draining bool) Response {
	te.stats.Submitted++
	fail := func(err error) Response {
		te.stats.Rejected++
		return errorResponse(OpSubmit, err)
	}
	if draining {
		return fail(errWire(CodeDraining, "server is draining; submissions are closed"))
	}
	if _, dup := te.tasks[spec.ID]; dup {
		return fail(errWire(CodeInvalidTask, "task %q already exists", spec.ID))
	}
	if len(te.queue) >= te.policy.MaxQueue {
		te.stats.QuotaDenied++
		return fail(errWire(CodeQueueFull, "queue full (%d tasks, tier %s bound %d)", len(te.queue), te.tier, te.policy.MaxQueue))
	}
	if !te.bucket.take(nowNanos) {
		te.stats.QuotaDenied++
		return fail(errWire(CodeQuotaExceeded, "tenant %q is over its %s-tier admission rate", te.id, te.tier))
	}
	t, err := te.buildTask(spec)
	if err != nil {
		return fail(err)
	}
	g := task.NewGraph()
	if err := g.Add(t); err != nil {
		// %q because the graph error embeds the tenant-chosen task ID.
		return fail(errWire(CodeInvalidTask, "task %q: %q", spec.ID, err))
	}
	var qos jss.QoS
	if te.costBudget > 0 {
		remaining := te.costBudget - te.stats.CostUnits - te.quotedCost
		if remaining <= 0 {
			// The budget is spent (or fully quoted away): reject here
			// rather than via the jss gate, whose MaxCostUnits <= 0
			// means "uncapped" and would admit everything.
			te.stats.QuotaDenied++
			return fail(errWire(CodeQuotaExceeded, "tenant %q exhausted its cost budget %.2f", te.id, te.costBudget))
		}
		qos.MaxCostUnits = remaining
	}
	sub, err := te.jss.Submit(te.id, g, nil, qos, te.sim.Now())
	if err != nil {
		if ErrorCode(err) == CodeQuotaExceeded {
			te.stats.QuotaDenied++
		}
		return fail(err)
	}
	te.quotedCost += sub.QuotedCost

	ct := &cpTask{id: spec.ID, t: t, sub: sub, state: stateQueued, queuedAt: te.sim.Now()}
	te.queue = append(te.queue, ct)
	te.tasks[spec.ID] = ct
	te.stats.Accepted++
	te.stats.InFlight++
	te.emit(obs.KindQueued, ct, nil)
	return Response{OK: true, Op: OpSubmit, Tenant: te.id, TaskID: spec.ID, State: ct.state.String()}
}

// cancel removes a queued task. Terminal tasks report their state with
// OK=false and code unknown_task is reserved for IDs never seen.
func (te *tenantEngine) cancel(taskID string) Response {
	ct, ok := te.tasks[taskID]
	if !ok {
		return errorResponse(OpCancel, errWire(CodeUnknownTask, "tenant %q has no task %q", te.id, taskID))
	}
	if ct.state != stateQueued {
		resp := errorResponse(OpCancel, errWire(CodeBadRequest, "task %q is already %s", taskID, ct.state))
		resp.State = ct.state.String()
		return resp
	}
	for i, q := range te.queue {
		if q == ct {
			//reconlint:sanitized queue length is bounded by policy.MaxQueue at admission, so this removal copy is bounded
			te.queue = append(te.queue[:i], te.queue[i+1:]...)
			break
		}
	}
	ct.state = stateCanceled
	ct.doneAt = te.sim.Now()
	te.jss.Fail(ct.sub.ID, te.sim.Now(), "canceled by user")
	te.quotedCost -= ct.sub.QuotedCost
	te.stats.Canceled++
	te.stats.InFlight--
	return Response{OK: true, Op: OpCancel, Tenant: te.id, TaskID: taskID, State: ct.state.String()}
}

// status reports a task's lifecycle state.
func (te *tenantEngine) status(taskID string) Response {
	ct, ok := te.tasks[taskID]
	if !ok {
		return errorResponse(OpStatus, errWire(CodeUnknownTask, "tenant %q has no task %q", te.id, taskID))
	}
	return Response{OK: true, Op: OpStatus, Tenant: te.id, TaskID: taskID, State: ct.state.String()}
}

// snapshot returns the tenant's counters with the live queue depth.
func (te *tenantEngine) snapshot() TenantStats {
	s := te.stats
	s.VirtualSeconds = float64(te.sim.Now())
	return s
}

// hasWork reports whether the tenant has queued tasks.
func (te *tenantEngine) hasWork() bool { return len(te.queue) > 0 }

// step executes the head-of-queue task to a terminal state in virtual
// time and returns true; false when the queue is empty.
func (te *tenantEngine) step() bool {
	if len(te.queue) == 0 {
		return false
	}
	ct := te.queue[0]
	te.queue = te.queue[1:]
	te.schedule(ct, 0)
	// Run drains the attempt/retry/completion events this task put on the
	// tenant's simulator; no other task is in flight, so the queue is
	// empty again when Run returns.
	if err := te.sim.Run(); err != nil {
		// Run only errors via Stop, which nothing here calls.
		panic(fmt.Sprintf("controlplane: tenant %q simulator: %v", te.id, err))
	}
	return true
}

// schedule arms one execution attempt for ct after delay.
func (te *tenantEngine) schedule(ct *cpTask, delay sim.Time) {
	te.sim.After(delay, "attempt", func() {
		te.attempt(ct, te.sim.Now())
	})
}

// attempt places and executes ct once: match, lease, charge the
// reconfiguration/synthesis/execution time, and either complete at the
// end or abort at the first fault that strikes the window.
func (te *tenantEngine) attempt(ct *cpTask, now sim.Time) {
	cands, err := te.mm.Candidates(ct.t.ExecReq)
	if err != nil || len(cands) == 0 {
		te.evict(ct, now, "no feasible mapping on the tenant slice")
		return
	}
	// First-fit over the deterministic candidate order: the slice is
	// private and the engine runs one task at a time, so the first
	// candidate is free by construction.
	cand := cands[0]
	lease, err := te.mm.Allocate(cand, ct.t.ExecReq)
	if err != nil {
		te.evict(ct, now, err.Error())
		return
	}
	exec, err := lease.Estimator.EstimateSeconds(ct.t.Work)
	if err != nil {
		te.release(lease, false)
		te.evict(ct, now, err.Error())
		return
	}
	overhead := lease.ReconfigDelay + lease.CompactionDelay + sim.Time(lease.SynthesisSeconds)
	total := overhead + sim.Time(exec)
	ttl := total + 1
	if err := te.mon.Grant(lease, now+ttl); err != nil {
		te.release(lease, false)
		te.evict(ct, now, err.Error())
		return
	}

	te.emit(obs.KindDispatch, ct, cand.Elem)
	if lease.ReconfigDelay > 0 {
		te.emit(obs.KindReconfig, ct, cand.Elem)
	}

	kind := elementKind(cand)
	if strike, hit := te.faultWithin(now, now+total); hit {
		// The attempt dies at the strike: the monitor expires the lease,
		// the element is released, and the task retries (tier policy
		// permitting) after backoff.
		te.sim.Schedule(strike, "fault-abort", func() {
			at := te.sim.Now()
			te.release(lease, true)
			te.emit(obs.KindFail, ct, cand.Elem)
			ct.attempts++
			ct.lastFaultAt = at
			te.stats.FaultAborts++
			if ct.attempts > te.policy.Retry.MaxRetries {
				te.evict(ct, at, "retries exhausted")
				return
			}
			te.stats.Retries++
			te.emit(obs.KindRetry, ct, nil)
			te.schedule(ct, sim.Time(te.policy.Retry.Delay(ct.attempts)))
		})
		return
	}
	te.sim.Schedule(now+total, "complete", func() {
		at := te.sim.Now()
		te.release(lease, false)
		ct.state = stateDone
		ct.doneAt = at
		te.jss.ChargeFor(ct.sub, exec, kind)
		te.jss.TaskDoneFor(ct.sub, at)
		te.quotedCost -= ct.sub.QuotedCost
		te.stats.CostUnits += ct.sub.FinalCost
		te.stats.Completed++
		te.stats.InFlight--
		if ct.attempts > 0 {
			te.stats.RepairedTasks++
			te.stats.RepairSeconds += float64(at - ct.lastFaultAt)
		}
		te.doneLog = append(te.doneLog, ct.id)
		if len(te.doneLog) > maxDoneLog {
			te.doneLog = te.doneLog[len(te.doneLog)-maxDoneLog:]
		}
		te.emit(obs.KindComplete, ct, cand.Elem)
		te.sample()
	})
}

// release settles (or expires) the lease with the monitor and frees the
// element.
func (te *tenantEngine) release(l *rms.Lease, expired bool) {
	if te.mon.Active(l) {
		if expired {
			te.mon.Expire(l)
		} else {
			te.mon.Settle(l)
		}
	}
	// Release can only fail on double release, which the call sites
	// exclude by construction.
	if err := l.Release(); err != nil {
		panic(fmt.Sprintf("controlplane: tenant %q lease: %v", te.id, err))
	}
}

// evict terminates ct without completion.
func (te *tenantEngine) evict(ct *cpTask, now sim.Time, reason string) {
	ct.state = stateEvicted
	ct.doneAt = now
	te.jss.Fail(ct.sub.ID, now, reason)
	te.quotedCost -= ct.sub.QuotedCost
	te.stats.Evicted++
	te.stats.InFlight--
	te.emit(obs.KindLost, ct, nil)
}

// faultWithin returns the first crash/SEU/partition strike in (from, to],
// consuming every fault event with time ≤ to. Virtual time is monotone
// per tenant, so a single cursor suffices.
func (te *tenantEngine) faultWithin(from, to sim.Time) (sim.Time, bool) {
	for te.faultIdx < len(te.faultEvents) {
		ev := te.faultEvents[te.faultIdx]
		if ev.Time > to {
			return 0, false
		}
		te.faultIdx++
		if ev.Time <= from {
			continue
		}
		switch ev.Kind {
		case faults.KindNodeCrash, faults.KindSEU:
			return ev.Time, true
		case faults.KindLinkDegrade:
			if ev.Partition {
				return ev.Time, true
			}
		}
	}
	return 0, false
}

// elementKind classifies a candidate's element for cost accounting.
func elementKind(c rms.Candidate) capability.Kind {
	if c.Core != nil || c.Fallback {
		return capability.KindSoftcore
	}
	return c.Elem.Kind
}

// emit sends one lifecycle event to the sink (no-op without one).
func (te *tenantEngine) emit(kind obs.Kind, ct *cpTask, elem *node.Element) {
	if te.sink == nil {
		return
	}
	var en obs.Name
	if elem != nil {
		var ok bool
		if en, ok = te.elemNames[elem]; !ok {
			en = obs.Str(elem.ID)
			te.elemNames[elem] = en
		}
	}
	te.sink.Emit(obs.Event{
		Time:    te.sim.Now(),
		Kind:    kind,
		TaskID:  obs.Str(ct.id),
		Node:    te.name,
		Element: en,
	})
}

// sample emits a per-tenant gauge sample every sampleEvery completions.
func (te *tenantEngine) sample() {
	if te.sink == nil || te.sampleEvery <= 0 {
		return
	}
	te.sinceSample++
	if te.sinceSample < te.sampleEvery {
		return
	}
	te.sinceSample = 0
	s := obs.Sample{
		Time:       te.sim.Now(),
		QueueDepth: len(te.queue),
		Completed:  te.stats.Completed,
	}
	for _, n := range te.reg.Nodes() {
		for _, e := range n.RPEs() {
			st := e.Fabric.State()
			s.FabricRegions += len(st.Configurations)
			s.FabricSlicesUsed += st.TotalSlices - st.AvailableSlices
			s.FabricSlicesTotal += st.TotalSlices
		}
	}
	te.sink.Sample(s)
}
