package controlplane

import (
	"strings"
	"testing"
)

// TestDecodeRequestBounds pins the per-field semantic bounds added for
// the hostile-input audit: every tenant-controlled magnitude has a
// ceiling, every over-ceiling input rejects with a stable wire code,
// and values exactly at the ceiling are still accepted.
func TestDecodeRequestBounds(t *testing.T) {
	longName := strings.Repeat("n", MaxNameBytes+1)
	edgeName := strings.Repeat("n", MaxNameBytes)
	cases := []struct {
		name string
		line string
		code string // "" means accepted
	}{
		{"tenant too long", `{"op":"stats","tenant":"` + longName + `"}`, CodeBadRequest},
		{"tenant at bound", `{"op":"stats","tenant":"` + edgeName + `"}`, ""},
		{"task_id too long", `{"op":"status","tenant":"a","task_id":"` + longName + `"}`, CodeBadRequest},
		{"task_id at bound", `{"op":"status","tenant":"a","task_id":"` + edgeName + `"}`, ""},
		{"task id too long", `{"op":"submit","tenant":"a","task":{"id":"` + longName + `","work_mi":1}}`, CodeInvalidTask},
		{"work over ceiling", `{"op":"submit","tenant":"a","task":{"id":"t","work_mi":1.0000001e9}}`, CodeInvalidTask},
		{"work at ceiling", `{"op":"submit","tenant":"a","task":{"id":"t","work_mi":1e9}}`, ""},
		{"work huge", `{"op":"submit","tenant":"a","task":{"id":"t","work_mi":9e18}}`, CodeInvalidTask},
		{"data over ceiling", `{"op":"submit","tenant":"a","task":{"id":"t","work_mi":1,"data_mb":1.5e6}}`, CodeInvalidTask},
		{"data at ceiling", `{"op":"submit","tenant":"a","task":{"id":"t","work_mi":1,"data_mb":1e6}}`, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeRequest([]byte(tc.line), 0)
			if tc.code == "" {
				if err != nil {
					t.Fatalf("unexpected reject: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted, want code %s", tc.code)
			}
			if got := ErrorCode(err); got != tc.code {
				t.Errorf("code = %q, want %q (err: %v)", got, tc.code, err)
			}
		})
	}
}

// TestMaxShardsClamp pins the dispatcher-width ceiling: an absurd
// operator value is clamped to MaxShards, not allocated.
func TestMaxShardsClamp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = MaxShards + 7
	s := newTestServer(t, cfg)
	if got := len(s.shards); got != MaxShards {
		t.Fatalf("shards = %d, want clamp to %d", got, MaxShards)
	}
	if resp := s.Do(Request{Op: OpPing}); !resp.OK {
		t.Fatalf("ping on clamped server failed: %+v", resp)
	}
}

// TestHostileRejectAllocs guards the reject path's allocation profile:
// decoding and admitting a hostile request allocates a small constant,
// never memory proportional to the magnitudes the request claims. A
// regression here means a flood of garbage requests can run the server
// out of memory before admission control ever says no.
func TestHostileRejectAllocs(t *testing.T) {
	hostile := []byte(`{"op":"submit","tenant":"a","task":{"id":"t","work_mi":9223372036854775807}}`)
	decode := func() {
		if _, err := DecodeRequest(hostile, 0); err == nil {
			t.Fatal("hostile request accepted")
		}
	}
	if avg := testing.AllocsPerRun(200, decode); avg > 64 {
		t.Errorf("decode reject = %.1f allocs/op, want a small constant (<= 64)", avg)
	}

	// Admission reject: a duplicate task ID turns the submit away inside
	// the tenant engine with constant work.
	cfg := DefaultConfig()
	te, err := newTenantEngine("acme", TierFull, 1, &cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp := te.submit(&TaskSpec{ID: "dup", WorkMI: 10}, 0, false); !resp.OK {
		t.Fatalf("seed submit failed: %+v", resp)
	}
	spec := &TaskSpec{ID: "dup", WorkMI: 10}
	admit := func() {
		if resp := te.submit(spec, 0, false); resp.OK {
			t.Fatal("duplicate submit accepted")
		}
	}
	if avg := testing.AllocsPerRun(200, admit); avg > 32 {
		t.Errorf("admission reject = %.1f allocs/op, want a small constant (<= 32)", avg)
	}
}

// TestDoneLogCapped pins the completion-log bound: a tenant that keeps
// completing tasks cannot grow server memory past maxDoneLog entries,
// and the log keeps the most recent completions.
func TestDoneLogCapped(t *testing.T) {
	cfg := DefaultConfig()
	te, err := newTenantEngine("acme", TierFull, 1, &cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-fill to the cap, then complete one more task for real.
	for i := 0; i < maxDoneLog; i++ {
		te.doneLog = append(te.doneLog, "old")
	}
	resp := te.submit(&TaskSpec{ID: "fresh", WorkMI: 10}, 0, false)
	if !resp.OK {
		t.Fatalf("submit failed: %+v", resp)
	}
	for te.hasWork() {
		te.step()
	}
	if got := len(te.doneLog); got != maxDoneLog {
		t.Fatalf("doneLog length = %d, want %d", got, maxDoneLog)
	}
	if last := te.doneLog[len(te.doneLog)-1]; last != "fresh" {
		t.Fatalf("last doneLog entry = %q, want the fresh completion", last)
	}
}
