// Package controlplane is the multi-tenant control plane over the RMS: a
// long-running server speaking a line-delimited JSON wire protocol
// (submit/status/cancel/stats/drain), with per-tenant admission control
// (token-bucket quotas and bounded queues) and RC3E-style service tiers
// mapping onto dispatch priority and retry policy. Tenants are partitioned
// across deterministic shards, so one server sustains on the order of 10^6
// queued tasks from thousands of tenants while per-tenant outcomes stay a
// pure function of (seed, tenant, request sequence) — independent of the
// shard count.
package controlplane

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sim"
)

// Config parameterizes a Server.
type Config struct {
	// Shards is the dispatcher width; ≤ 0 selects DefaultShards.
	// Per-tenant results do not depend on it.
	Shards int
	// Seed roots every tenant's deterministic engine: tenant seeds are
	// split from it by tenant-name hash, independent of sharding.
	Seed uint64
	// Faults optionally injects a fault model into every tenant slice.
	Faults faults.Spec
	// Sink receives per-tenant lifecycle events and gauges when set.
	// Sinks must be safe for concurrent use (the obs contract); shards
	// emit from their own goroutines.
	Sink obs.TraceSink
	// NowNanos is the admission clock feeding token-bucket refill (the
	// only wall-clock input the control plane has). nil disables rate
	// limiting; queue bounds still apply.
	NowNanos func() int64
	// MaxRequestBytes caps a request line; ≤ 0 selects MaxRequestBytes.
	MaxRequestBytes int
	// MaxQueueOverride / RateOverride / BurstOverride replace the
	// per-tier admission defaults when positive (mainly for tests and
	// load drivers).
	MaxQueueOverride int
	RateOverride     float64
	BurstOverride    float64
	// CostBudgetUnits caps each tenant's total accepted cost when
	// positive; over-budget submissions reject with quota_exceeded.
	CostBudgetUnits float64
	// SampleEvery emits a per-tenant gauge sample every N completions
	// when positive.
	SampleEvery int
}

// DefaultShards is the dispatcher width when Config.Shards is unset.
const DefaultShards = 4

// MaxShards caps the dispatcher width: each shard costs a goroutine and
// a 256-slot inbox, so a runaway configuration value is clamped rather
// than allocated.
const MaxShards = 1024

// DefaultConfig returns a deterministic quota-free configuration.
func DefaultConfig() Config { return Config{Shards: DefaultShards, Seed: 1} }

// Server is the control plane: shards plus the connection front end.
// Request routing is lock-free (atomic flags and channel sends); the
// mutex only guards the listener/connection roster.
type Server struct {
	cfg    Config
	rng    *sim.RNG // seed splitter; only the pure SplitSeed is used
	shards []*shard

	draining atomic.Bool
	paused   atomic.Bool
	closed   atomic.Bool

	// wg joins shard loops, accept loops, and connection handlers.
	wg sync.WaitGroup

	mu        sync.Mutex // guards listeners and conns
	listeners []net.Listener
	conns     map[net.Conn]struct{}

	shutdownOnce sync.Once
	shutdownCh   chan struct{}
}

// New starts a server's shards. The caller must Shutdown it.
func New(cfg Config) (*Server, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.Shards > MaxShards {
		// Each shard is a goroutine plus a buffered inbox; an absurd
		// operator value must not translate into an absurd allocation.
		cfg.Shards = MaxShards
	}
	if cfg.MaxRequestBytes <= 0 {
		cfg.MaxRequestBytes = MaxRequestBytes
	}
	if cfg.Faults.Enabled() {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("controlplane: %w", err)
		}
	}
	s := &Server{
		cfg:        cfg,
		rng:        sim.NewRNG(cfg.Seed),
		conns:      make(map[net.Conn]struct{}),
		shutdownCh: make(chan struct{}),
	}
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		s.shards[i] = newShard(i, s)
	}
	for _, sh := range s.shards {
		s.wg.Add(1)
		go sh.loop()
	}
	return s, nil
}

// tenantHash is 64-bit FNV-1a over the tenant name: the shard partition
// key and the tenant seed stream, deliberately independent of shard
// count and arrival order.
func tenantHash(id string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime
	}
	return h
}

func (s *Server) shardFor(tenant string) *shard {
	return s.shards[tenantHash(tenant)%uint64(len(s.shards))]
}

// tenantSeed derives a tenant's engine seed from the server seed. Pure:
// the same (server seed, tenant) pair always yields the same seed.
func (s *Server) tenantSeed(tenant string) uint64 {
	return s.rng.SplitSeed(tenantHash(tenant))
}

func (s *Server) now() int64 {
	if s.cfg.NowNanos != nil {
		return s.cfg.NowNanos()
	}
	return 0
}

// errShutdown is the response for requests caught by a shutdown.
func errShutdown(op string) Response {
	return errorResponse(op, errWire(CodeInternal, "server is shutting down"))
}

// Do serves one decoded request. It is safe for concurrent use and is
// the same entry point the wire front end drives, so in-process callers
// (tests, embedders) get identical semantics without a socket.
func (s *Server) Do(req Request) Response {
	switch req.Op {
	case OpPing:
		return Response{OK: true, Op: OpPing}
	case OpPause:
		s.paused.Store(true)
		return Response{OK: true, Op: OpPause}
	case OpResume:
		s.paused.Store(false)
		s.draining.Store(false)
		s.nudge()
		return Response{OK: true, Op: OpResume}
	case OpShutdown:
		s.shutdownOnce.Do(func() { close(s.shutdownCh) })
		return Response{OK: true, Op: OpShutdown}
	case OpDrain:
		return s.drain()
	case OpDump:
		dump, err := s.dumpState()
		if err != nil {
			return errShutdown(OpDump)
		}
		return Response{OK: true, Op: OpDump, Dump: dump}
	case OpStats:
		if req.Tenant == "" {
			stats, err := s.StatsAll()
			if err != nil {
				return errShutdown(OpStats)
			}
			return Response{OK: true, Op: OpStats, Tenants: stats}
		}
	case OpSubmit, OpStatus, OpCancel:
	default:
		return errorResponse(req.Op, errWire(CodeUnknownOp, "unknown op %q", req.Op))
	}
	if req.Tenant == "" {
		return errorResponse(req.Op, errWire(CodeBadRequest, "%s needs a tenant", req.Op))
	}
	reply, ok := s.shardFor(req.Tenant).send(opMsg{
		kind: ctlRequest, req: req, nowNanos: s.now(),
		reply: make(chan shardReply, 1),
	})
	if !ok {
		return errShutdown(req.Op)
	}
	return reply.resp
}

// nudge wakes every shard loop (used after resume, when shards may be
// blocked on their inboxes with work still queued).
func (s *Server) nudge() {
	for _, sh := range s.shards {
		reply := make(chan shardReply, 1)
		if sh.post(opMsg{kind: ctlNudge, reply: reply}) {
			<-reply
		}
	}
}

// drain closes admission, lets every shard run its queues empty, and
// returns when no task is in flight anywhere. Resume reopens admission.
func (s *Server) drain() Response {
	s.draining.Store(true)
	s.paused.Store(false)
	replies := make([]chan shardReply, 0, len(s.shards))
	for _, sh := range s.shards {
		reply := make(chan shardReply, 1)
		if !sh.post(opMsg{kind: ctlDrainWait, reply: reply}) {
			return errShutdown(OpDrain)
		}
		replies = append(replies, reply)
	}
	for _, reply := range replies {
		select {
		case <-reply:
		case <-s.shards[0].quit:
			return errShutdown(OpDrain)
		}
	}
	return Response{OK: true, Op: OpDrain}
}

// StatsAll snapshots every tenant across all shards, sorted by name.
func (s *Server) StatsAll() ([]TenantStats, error) {
	dumps := make([][]TenantStats, 0, len(s.shards))
	for _, sh := range s.shards {
		reply, ok := sh.send(opMsg{kind: ctlStatsAll, reply: make(chan shardReply, 1)})
		if !ok {
			return nil, errors.New("controlplane: server is shutting down")
		}
		dumps = append(dumps, reply.stats)
	}
	return mergeSorted(dumps, func(a, b TenantStats) bool { return a.Tenant < b.Tenant }), nil
}

// DumpTenants snapshots every tenant's full state, sorted by name.
func (s *Server) DumpTenants() ([]TenantDump, error) {
	dumps := make([][]TenantDump, 0, len(s.shards))
	for _, sh := range s.shards {
		reply, ok := sh.send(opMsg{kind: ctlDumpAll, reply: make(chan shardReply, 1)})
		if !ok {
			return nil, errors.New("controlplane: server is shutting down")
		}
		dumps = append(dumps, reply.dumps)
	}
	return mergeSorted(dumps, func(a, b TenantDump) bool { return a.Stats.Tenant < b.Stats.Tenant }), nil
}

// mergeSorted k-way merges per-shard slices that are already sorted.
func mergeSorted[T any](parts [][]T, less func(a, b T) bool) []T {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for len(parts) > 0 {
		best := -1
		for i, p := range parts {
			if len(p) == 0 {
				continue
			}
			if best < 0 || less(p[0], parts[best][0]) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, parts[best][0])
		parts[best] = parts[best][1:]
	}
	return out
}

// ShutdownRequested is closed when a wire client sends OpShutdown; the
// process owner decides whether to honour it (cmd/rmsd does).
func (s *Server) ShutdownRequested() <-chan struct{} { return s.shutdownCh }

// Serve accepts connections on ln until Shutdown. It blocks; run it in
// its own goroutine when serving multiple listeners.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		_ = ln.Close()
		return errors.New("controlplane: server is shut down")
	}
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed.Load() {
			s.mu.Unlock()
			_ = conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.handleConn(conn)
	}
}

// handleConn runs one connection's request/response loop.
func (s *Server) handleConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	enc := json.NewEncoder(conn)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 0, 4096), s.cfg.MaxRequestBytes+2)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		req, err := DecodeRequest(line, s.cfg.MaxRequestBytes)
		var resp Response
		if err != nil {
			resp = errorResponse(req.Op, err)
		} else {
			resp = s.Do(req)
		}
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
	// A line beyond the size cap kills the scanner; tell the client why
	// before hanging up.
	if errors.Is(sc.Err(), bufio.ErrTooLong) {
		_ = enc.Encode(errorResponse("", errWire(CodeOversized, "request line exceeds the %d-byte cap", s.cfg.MaxRequestBytes)))
	}
}

// Shutdown stops accepting work, closes listeners and connections, stops
// every shard, and joins all goroutines. Idempotent.
func (s *Server) Shutdown() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.mu.Lock()
	for _, ln := range s.listeners {
		_ = ln.Close()
	}
	// Close in place: net.Conn.Close is concurrency-safe and does not
	// touch s.mu, and order is immaterial for teardown.
	for conn := range s.conns {
		_ = conn.Close()
	}
	s.mu.Unlock()
	for _, sh := range s.shards {
		close(sh.quit)
	}
	s.wg.Wait()
}
