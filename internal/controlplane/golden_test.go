package controlplane

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faults"
)

var updateGolden = flag.Bool("update", false, "rewrite golden state files from the current model")

// compareGolden diffs got against the named testdata file, rewriting it
// first under -update. Review -update diffs like any other code change.
func compareGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file (regenerate with -update if intended)\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

// goldenServer runs a small pinned scenario: three tenants on different
// tiers, a few tasks each (one canceled, faults on), drained to
// completion. Any change to admission, placement, fault strikes, retry
// policy, cost accounting, or the dump format shows up as a diff.
func goldenServer(t *testing.T) *Server {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Shards = 2
	cfg.Seed = 7
	cfg.Faults = faults.Spec{CrashRate: 0.1, MeanOutageSeconds: 4, SEURate: 0.1, HorizonSeconds: 200}
	s := newTestServer(t, cfg)
	mustOK(t, s.Do(Request{Op: OpPause}))
	type sub struct {
		tenant, tier string
		task         *TaskSpec
	}
	subs := []sub{
		{"acme", "full", &TaskSpec{ID: "a1", WorkMI: 4000, Parallel: 0.5}},
		{"acme", "full", &TaskSpec{ID: "a2", WorkMI: 9000, Scenario: "userhw", Design: "aes128", Parallel: 0.9}},
		{"acme", "full", &TaskSpec{ID: "a3", WorkMI: 1000}},
		{"birch", "virtualized", &TaskSpec{ID: "b1", WorkMI: 2500, Scenario: "softcore", Parallel: 0.7}},
		{"birch", "virtualized", &TaskSpec{ID: "b2", WorkMI: 500, DataMB: 16}},
		{"cedar", "background", &TaskSpec{ID: "c1", WorkMI: 12000, Parallel: 0.3}},
		{"cedar", "background", &TaskSpec{ID: "c2", WorkMI: 800}},
	}
	for _, sb := range subs {
		mustOK(t, s.Do(Request{Op: OpSubmit, Tenant: sb.tenant, Tier: sb.tier, Task: sb.task}))
	}
	mustOK(t, s.Do(Request{Op: OpCancel, Tenant: "cedar", TaskID: "c2"}))
	mustOK(t, s.Do(Request{Op: OpDrain}))
	return s
}

// TestDumpStateGolden pins the deterministic `rmsd -dump-state` /
// OpDump snapshot format byte for byte.
//
//scenario:golden strategy=first-fit regime=hostile workload=control-plane file=testdata/dump_state.golden
func TestDumpStateGolden(t *testing.T) {
	s := goldenServer(t)
	dump := mustOK(t, s.Do(Request{Op: OpDump})).Dump
	direct, err := s.DumpState()
	if err != nil {
		t.Fatal(err)
	}
	if dump != direct {
		t.Error("OpDump and DumpState disagree")
	}
	compareGolden(t, "dump_state.golden", []byte(dump))
}

// TestDrainEmptiesFabric pins that a drained server holds no fabric
// state: every tenant RPE reports zero busy regions and no loaded
// configurations, and nothing is in flight.
func TestDrainEmptiesFabric(t *testing.T) {
	s := goldenServer(t)
	dumps, err := s.DumpTenants()
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != 3 {
		t.Fatalf("tenants = %d, want 3", len(dumps))
	}
	for _, d := range dumps {
		if d.Stats.InFlight != 0 {
			t.Errorf("tenant %s: %d in flight after drain", d.Stats.Tenant, d.Stats.InFlight)
		}
		if !d.Stats.conserved() {
			t.Errorf("tenant %s violates conservation: %+v", d.Stats.Tenant, d.Stats)
		}
		for _, line := range d.Fabric {
			// A leased region renders as "N busy" with N > 0; a drained
			// fabric may keep cached configurations but must not be
			// executing anything.
			if strings.Contains(line, "busy") && !strings.Contains(line, " 0 busy") {
				t.Errorf("tenant %s fabric still busy after drain: %s", d.Stats.Tenant, line)
			}
		}
	}
	// The dump itself must agree that nothing is queued.
	dump := mustOK(t, s.Do(Request{Op: OpDump})).Dump
	if !strings.Contains(dump, "in_flight=0") || strings.Contains(dump, fmt.Sprintf("in_flight=%d", 1)) {
		t.Errorf("dump shows in-flight work after drain:\n%s", dump)
	}
}
