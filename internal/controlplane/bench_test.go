package controlplane

import (
	"fmt"
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
)

// BenchmarkControlPlane measures the in-process cost of the full
// submit/execute/drain path under faults: admission (token bucket, jss
// validation, cost quote), per-tenant matchmaking, the fault/retry
// window, and MTTR accounting. It reports the model's own counters as
// custom metrics, so the perf-regression gate also pins the control
// plane's semantics: any drift in completions or repair totals at a
// fixed seed is a model change, not noise.
func BenchmarkControlPlane(b *testing.B) {
	b.ReportAllocs()
	var completed, faultAborts, repairSeconds float64
	for i := 0; i < b.N; i++ {
		cfg := DefaultConfig()
		cfg.Shards = 1
		cfg.Seed = 11
		cfg.Faults = faults.Spec{
			CrashRate:         0.05,
			MeanOutageSeconds: 5,
			SEURate:           0.05,
			HorizonSeconds:    500,
		}
		s, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rng := sim.NewRNG(99)
		scenarios := []string{"software", "softcore", "userhw"}
		for t := 0; t < 8; t++ {
			tenant := fmt.Sprintf("bench-t%02d", t)
			for j := 0; j < 25; j++ {
				ts := &TaskSpec{
					ID:       fmt.Sprintf("task-%02d-%03d", t, j),
					WorkMI:   float64(100 + rng.Intn(5000)),
					Parallel: rng.Float64(),
					Scenario: scenarios[rng.Intn(len(scenarios))],
				}
				if ts.Scenario == "userhw" {
					ts.Design = "aes128"
				}
				s.Do(Request{Op: OpSubmit, Tenant: tenant, Tier: "virtualized", Task: ts})
			}
		}
		resp := s.Do(Request{Op: OpDrain})
		if !resp.OK {
			b.Fatalf("drain failed: %s", resp.Error)
		}
		stats := s.Do(Request{Op: OpStats})
		if !stats.OK {
			b.Fatalf("stats failed: %s", stats.Error)
		}
		completed, faultAborts, repairSeconds = 0, 0, 0
		for _, st := range stats.Tenants {
			completed += float64(st.Completed)
			faultAborts += float64(st.FaultAborts)
			repairSeconds += st.RepairSeconds
		}
		s.Shutdown()
	}
	b.ReportMetric(completed, "completed")
	b.ReportMetric(faultAborts, "fault-aborts")
	b.ReportMetric(repairSeconds, "repair-s")
}
