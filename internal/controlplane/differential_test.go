package controlplane

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
)

// runTrace replays one seeded, deterministic request trace against a
// server with the given shard count and returns per-tenant completion
// logs and counter snapshots.
func runTrace(t *testing.T, shards int, withFaults bool) (map[string][]string, []TenantStats) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Shards = shards
	cfg.Seed = 9
	if withFaults {
		cfg.Faults = faults.Spec{
			CrashRate:         0.05,
			MeanOutageSeconds: 5,
			SEURate:           0.05,
			HorizonSeconds:    500,
		}
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	rng := sim.NewRNG(1234)
	tiers := []string{"full", "virtualized", "background"}
	scenarios := []string{"software", "softcore", "userhw"}
	for i := 0; i < 600; i++ {
		tenant := fmt.Sprintf("t%02d", rng.Intn(16))
		ts := &TaskSpec{
			ID:       fmt.Sprintf("task-%04d", i),
			WorkMI:   float64(100 + rng.Intn(5000)),
			Parallel: rng.Float64(),
			Scenario: scenarios[rng.Intn(len(scenarios))],
		}
		if ts.Scenario == "userhw" {
			ts.Design = "aes128"
		}
		tier := tiers[int(tenantHash(tenant)%3)]
		s.Do(Request{Op: OpSubmit, Tenant: tenant, Tier: tier, Task: ts})
		if rng.Intn(5) == 0 {
			// Cancel a random earlier task; often already terminal, which
			// must be equally deterministic.
			s.Do(Request{Op: OpCancel, Tenant: tenant, TaskID: fmt.Sprintf("task-%04d", rng.Intn(i+1))})
		}
	}
	mustOK(t, s.Do(Request{Op: OpDrain}))

	dumps, err := s.DumpTenants()
	if err != nil {
		t.Fatal(err)
	}
	done := make(map[string][]string, len(dumps))
	stats := make([]TenantStats, 0, len(dumps))
	for _, d := range dumps {
		done[d.Stats.Tenant] = d.DoneLog
		st := d.Stats
		stats = append(stats, st)
	}
	return done, stats
}

// TestDifferentialShardCount pins the control plane's central
// determinism claim: the same seeded request trace produces identical
// per-tenant completion logs and counters whether the dispatcher runs
// one shard or many. Sharding buys throughput, never different answers.
//
//scenario:differential strategy=first-fit regime=none,moderate workload=control-plane
func TestDifferentialShardCount(t *testing.T) {
	for _, withFaults := range []bool{false, true} {
		name := "clean"
		if withFaults {
			name = "faulty"
		}
		t.Run(name, func(t *testing.T) {
			done1, stats1 := runTrace(t, 1, withFaults)
			done5, stats5 := runTrace(t, 5, withFaults)
			if !reflect.DeepEqual(done1, done5) {
				for tenant, log1 := range done1 {
					if !reflect.DeepEqual(log1, done5[tenant]) {
						t.Errorf("tenant %s completion log diverges:\n shards=1: %v\n shards=5: %v", tenant, log1, done5[tenant])
					}
				}
				t.Fatal("completion sets differ between shard counts")
			}
			if !reflect.DeepEqual(stats1, stats5) {
				t.Fatalf("stats differ between shard counts:\n shards=1: %+v\n shards=5: %+v", stats1, stats5)
			}
			if withFaults {
				// The faulty run must actually exercise retries/evictions
				// somewhere, or the differential proves less than claimed.
				retries, evicted := 0, 0
				for _, st := range stats1 {
					retries += st.Retries
					evicted += st.Evicted
				}
				if retries == 0 && evicted == 0 {
					t.Error("fault injection produced neither retries nor evictions; differential under-tests the fault path")
				}
			}
		})
	}
}

// TestTraceRepeatable pins that the very same configuration replayed
// twice is bit-identical — the weaker but foundational property.
func TestTraceRepeatable(t *testing.T) {
	doneA, statsA := runTrace(t, 3, true)
	doneB, statsB := runTrace(t, 3, true)
	if !reflect.DeepEqual(doneA, doneB) || !reflect.DeepEqual(statsA, statsB) {
		t.Fatal("same trace, same config, different outcome")
	}
}
