package controlplane

import (
	"bufio"
	"encoding/json"
	"net"
	"strconv"
	"strings"
	"testing"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Shutdown)
	return s
}

func mustOK(t *testing.T, resp Response) Response {
	t.Helper()
	if !resp.OK {
		t.Fatalf("%s failed: code=%s error=%s", resp.Op, resp.Code, resp.Error)
	}
	return resp
}

func spec(id string, mi float64) *TaskSpec {
	return &TaskSpec{ID: id, WorkMI: mi}
}

func taskID(prefix string, i int) string {
	return prefix + "-" + strconv.Itoa(i)
}

// TestSubmitCompleteStatus drives one task through the in-process API.
func TestSubmitCompleteStatus(t *testing.T) {
	s := newTestServer(t, DefaultConfig())
	mustOK(t, s.Do(Request{Op: OpSubmit, Tenant: "alice", Task: spec("t1", 5000)}))
	mustOK(t, s.Do(Request{Op: OpDrain}))
	resp := mustOK(t, s.Do(Request{Op: OpStatus, Tenant: "alice", TaskID: "t1"}))
	if resp.State != "done" {
		t.Errorf("state = %q, want done", resp.State)
	}
	stats := mustOK(t, s.Do(Request{Op: OpStats, Tenant: "alice"}))
	if stats.Stats == nil || stats.Stats.Completed != 1 || stats.Stats.InFlight != 0 {
		t.Errorf("stats = %+v", stats.Stats)
	}
	if stats.Stats.CostUnits <= 0 || stats.Stats.VirtualSeconds <= 0 {
		t.Errorf("accounting: %+v", stats.Stats)
	}
}

// TestScenarios covers the three wire scenarios end to end.
func TestScenarios(t *testing.T) {
	s := newTestServer(t, DefaultConfig())
	tasks := []*TaskSpec{
		{ID: "sw", WorkMI: 2000, Scenario: "software"},
		{ID: "sc", WorkMI: 2000, Scenario: "softcore", Parallel: 0.8},
		{ID: "hw", WorkMI: 20000, Scenario: "userhw", Design: "aes128", Parallel: 0.9},
	}
	for _, ts := range tasks {
		mustOK(t, s.Do(Request{Op: OpSubmit, Tenant: "bob", Task: ts}))
	}
	mustOK(t, s.Do(Request{Op: OpDrain}))
	for _, ts := range tasks {
		resp := mustOK(t, s.Do(Request{Op: OpStatus, Tenant: "bob", TaskID: ts.ID}))
		if resp.State != "done" {
			t.Errorf("task %s state = %q, want done", ts.ID, resp.State)
		}
	}
}

// TestCancelAndUnknowns covers cancel semantics and unknown lookups.
func TestCancelAndUnknowns(t *testing.T) {
	s := newTestServer(t, DefaultConfig())
	mustOK(t, s.Do(Request{Op: OpPause}))
	mustOK(t, s.Do(Request{Op: OpSubmit, Tenant: "carol", Task: spec("t1", 1000)}))
	resp := mustOK(t, s.Do(Request{Op: OpCancel, Tenant: "carol", TaskID: "t1"}))
	if resp.State != "canceled" {
		t.Errorf("state = %q, want canceled", resp.State)
	}
	// Canceling a terminal task reports its state without double counting.
	resp = s.Do(Request{Op: OpCancel, Tenant: "carol", TaskID: "t1"})
	if resp.OK || resp.State != "canceled" {
		t.Errorf("double cancel = %+v", resp)
	}
	if resp = s.Do(Request{Op: OpCancel, Tenant: "carol", TaskID: "nope"}); resp.Code != CodeUnknownTask {
		t.Errorf("code = %q, want %q", resp.Code, CodeUnknownTask)
	}
	if resp = s.Do(Request{Op: OpStatus, Tenant: "nobody", TaskID: "t1"}); resp.Code != CodeUnknownTenant {
		t.Errorf("code = %q, want %q", resp.Code, CodeUnknownTenant)
	}
	stats := mustOK(t, s.Do(Request{Op: OpStats, Tenant: "carol"})).Stats
	if stats.Canceled != 1 || stats.InFlight != 0 || !stats.conserved() {
		t.Errorf("stats = %+v", stats)
	}
}

// TestTierConflict pins that a tenant cannot switch tiers mid-life.
func TestTierConflict(t *testing.T) {
	s := newTestServer(t, DefaultConfig())
	mustOK(t, s.Do(Request{Op: OpSubmit, Tenant: "dan", Tier: "full", Task: spec("t1", 100)}))
	resp := s.Do(Request{Op: OpSubmit, Tenant: "dan", Tier: "background", Task: spec("t2", 100)})
	if resp.OK || resp.Code != CodeTierConflict {
		t.Errorf("resp = %+v, want tier_conflict", resp)
	}
	// An unnamed tier rides on the existing engine regardless of tier.
	mustOK(t, s.Do(Request{Op: OpSubmit, Tenant: "dan", Task: spec("t3", 100)}))
}

// TestDrainingRejectsSubmissions pins the draining admission gate and
// that resume reopens it.
func TestDrainingRejectsSubmissions(t *testing.T) {
	s := newTestServer(t, DefaultConfig())
	mustOK(t, s.Do(Request{Op: OpDrain}))
	resp := s.Do(Request{Op: OpSubmit, Tenant: "eve", Task: spec("t1", 100)})
	if resp.OK || resp.Code != CodeDraining {
		t.Errorf("resp = %+v, want draining", resp)
	}
	mustOK(t, s.Do(Request{Op: OpResume}))
	mustOK(t, s.Do(Request{Op: OpSubmit, Tenant: "eve", Task: spec("t2", 100)}))
	mustOK(t, s.Do(Request{Op: OpDrain}))
	stats := mustOK(t, s.Do(Request{Op: OpStats, Tenant: "eve"})).Stats
	if stats.Submitted != 2 || stats.Rejected != 1 || stats.Completed != 1 || !stats.conserved() {
		t.Errorf("stats = %+v", stats)
	}
}

// TestWireRoundTrip drives the server over a real TCP connection with
// the line-delimited JSON protocol.
func TestWireRoundTrip(t *testing.T) {
	s := newTestServer(t, DefaultConfig())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		if err := s.Serve(ln); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := conn.Close(); err != nil && !strings.Contains(err.Error(), "closed") {
			t.Errorf("close: %v", err)
		}
	}()
	enc := json.NewEncoder(conn)
	sc := bufio.NewScanner(conn)
	roundTrip := func(req Request) Response {
		t.Helper()
		if err := enc.Encode(req); err != nil {
			t.Fatal(err)
		}
		if !sc.Scan() {
			t.Fatalf("no response: %v", sc.Err())
		}
		var resp Response
		if err := json.Unmarshal(sc.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	mustOK(t, roundTrip(Request{Op: OpPing}))
	mustOK(t, roundTrip(Request{Op: OpSubmit, Tenant: "frank", Tier: "virtualized", Task: spec("t1", 3000)}))
	mustOK(t, roundTrip(Request{Op: OpDrain}))
	if resp := mustOK(t, roundTrip(Request{Op: OpStatus, Tenant: "frank", TaskID: "t1"})); resp.State != "done" {
		t.Errorf("state = %q, want done", resp.State)
	}
	// Malformed and unknown inputs come back as coded errors, same conn.
	if _, err := conn.Write([]byte("{not json}\n")); err != nil {
		t.Fatal(err)
	}
	if !sc.Scan() {
		t.Fatalf("no response to malformed line: %v", sc.Err())
	}
	var bad Response
	if err := json.Unmarshal(sc.Bytes(), &bad); err != nil {
		t.Fatal(err)
	}
	if bad.OK || bad.Code != CodeBadRequest {
		t.Errorf("bad line resp = %+v", bad)
	}
	if resp := roundTrip(Request{Op: "launch"}); resp.Code != CodeUnknownOp {
		t.Errorf("code = %q, want unknown_op", resp.Code)
	}
	stats := mustOK(t, roundTrip(Request{Op: OpStats}))
	if len(stats.Tenants) != 1 || stats.Tenants[0].Tenant != "frank" {
		t.Errorf("tenants = %+v", stats.Tenants)
	}
}

// TestShutdownIdempotent pins that Shutdown is safe to call twice and
// that requests after shutdown fail cleanly rather than hang or panic.
func TestShutdownIdempotent(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	mustOK(t, s.Do(Request{Op: OpSubmit, Tenant: "gail", Task: spec("t1", 100)}))
	s.Shutdown()
	s.Shutdown()
	if resp := s.Do(Request{Op: OpSubmit, Tenant: "gail", Task: spec("t2", 100)}); resp.OK {
		t.Errorf("submit after shutdown = %+v", resp)
	}
}
