package controlplane

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"repro/internal/jss"
)

// The wire protocol is line-delimited JSON over TCP or a unix socket: one
// request object per line in, one response object per line out, in order.
// It is deliberately schema-light — a tenant needs nothing beyond a JSON
// encoder — and every malformed input maps to an error response with a
// stable code, never to a dropped connection or a panic (the decoder is
// fuzzed on that contract).

// Wire operation names.
const (
	OpSubmit   = "submit"
	OpStatus   = "status"
	OpCancel   = "cancel"
	OpStats    = "stats"
	OpDrain    = "drain"
	OpPause    = "pause"
	OpResume   = "resume"
	OpDump     = "dump"
	OpPing     = "ping"
	OpShutdown = "shutdown"
)

// Wire error codes. Codes are stable strings; prose in Response.Error may
// change freely.
const (
	CodeBadRequest    = "bad_request"
	CodeOversized     = "oversized"
	CodeUnknownOp     = "unknown_op"
	CodeUnknownTier   = "unknown_tier"
	CodeInvalidTask   = "invalid_task"
	CodeUnknownTenant = "unknown_tenant"
	CodeUnknownTask   = "unknown_task"
	CodeTierConflict  = "tier_conflict"
	CodeQuotaExceeded = "quota_exceeded"
	CodeQueueFull     = "queue_full"
	CodeDraining      = "draining"
	CodeUnsupported   = "unsupported"
	CodeInternal      = "internal"
)

// MaxRequestBytes is the default request-line size cap. A line longer
// than the cap is rejected with CodeOversized before JSON decoding.
const MaxRequestBytes = 64 * 1024

// Per-field semantic bounds. The request-size cap bounds the message,
// not the meaning: a 40-byte request carrying work_mi=9e18 is
// syntactically tiny and semantically a denial of service, so every
// tenant-controlled magnitude gets its own ceiling, rejected with a
// stable wire code at decode time (the wiretaint analyzer proves
// nothing unbounded slips past these).
const (
	// MaxNameBytes bounds tenant names and task IDs.
	MaxNameBytes = 256
	// MaxTaskWorkMI bounds a task's demand (a million seconds of work
	// on the reference GPP — far beyond any sane request, small enough
	// that virtual-time arithmetic stays comfortably finite).
	MaxTaskWorkMI = 1e9
	// MaxTaskDataMB bounds a task's payload descriptor (1 TB).
	MaxTaskDataMB = 1e6
)

// TaskSpec is the wire description of one task: architecture-neutral
// demand plus the scenario selecting the paper's abstraction level.
type TaskSpec struct {
	ID string `json:"id"`
	// WorkMI is the demand in millions of instructions; Parallel the
	// parallelizable fraction in [0,1]; DataMB the payload size.
	WorkMI   float64 `json:"work_mi"`
	Parallel float64 `json:"parallel,omitempty"`
	DataMB   float64 `json:"data_mb,omitempty"`
	// Scenario is "software" (default), "softcore", or "userhw".
	Scenario string `json:"scenario,omitempty"`
	// Design names the IP-library design for userhw tasks.
	Design string `json:"design,omitempty"`
}

// Request is one wire request.
type Request struct {
	Op     string    `json:"op"`
	Tenant string    `json:"tenant,omitempty"`
	Tier   string    `json:"tier,omitempty"`
	Task   *TaskSpec `json:"task,omitempty"`
	TaskID string    `json:"task_id,omitempty"`
}

// Response is one wire response.
type Response struct {
	OK     bool   `json:"ok"`
	Op     string `json:"op,omitempty"`
	Code   string `json:"code,omitempty"`
	Error  string `json:"error,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	TaskID string `json:"task_id,omitempty"`
	// State is the task lifecycle state for submit/status/cancel.
	State string `json:"state,omitempty"`
	// Stats carries per-tenant counters for OpStats with a tenant, and
	// Tenants the full sorted roster for OpStats without one.
	Stats   *TenantStats  `json:"stats,omitempty"`
	Tenants []TenantStats `json:"tenants,omitempty"`
	// Dump carries the OpDump state snapshot.
	Dump string `json:"dump,omitempty"`
}

// wireError is a decode/validation failure with its wire code.
type wireError struct {
	code string
	msg  string
}

func (e *wireError) Error() string { return e.msg }

// errWire builds a wireError.
func errWire(code, format string, args ...any) error {
	return &wireError{code: code, msg: fmt.Sprintf(format, args...)}
}

// ErrorCode maps an error to its wire code: wireErrors carry their own,
// typed JSS rejections translate by rejection code (ErrQuotaExceeded →
// quota_exceeded), and anything else is internal. The mapping is what
// the jss error-mapping table test pins.
func ErrorCode(err error) string {
	var we *wireError
	if errors.As(err, &we) {
		return we.code
	}
	var re *jss.RejectError
	if errors.As(err, &re) {
		switch re.Code {
		case jss.CodeQuotaExceeded:
			return CodeQuotaExceeded
		case jss.CodeUnsupported:
			return CodeUnsupported
		case jss.CodeInvalid:
			return CodeInvalidTask
		}
		return CodeInvalidTask
	}
	if err != nil {
		return CodeInternal
	}
	return ""
}

// errorResponse renders err as a wire response.
func errorResponse(op string, err error) Response {
	return Response{Op: op, Code: ErrorCode(err), Error: err.Error()}
}

// validOps is the decoder's operation whitelist.
var validOps = map[string]bool{
	OpSubmit: true, OpStatus: true, OpCancel: true, OpStats: true,
	OpDrain: true, OpPause: true, OpResume: true, OpDump: true,
	OpPing: true, OpShutdown: true,
}

// wireScenarios are the scenario names a TaskSpec may carry. The
// device-specific scenario needs a user bitstream, which the wire format
// does not transport; it is rejected as unsupported.
var wireScenarios = map[string]bool{"": true, "software": true, "softcore": true, "userhw": true}

// DecodeRequest parses and validates one request line under the given
// size cap (maxBytes ≤ 0 selects MaxRequestBytes). It never panics:
// malformed JSON, oversized payloads, unknown operations, unknown tiers,
// non-finite numbers, and invalid task specs all return an error whose
// ErrorCode is a stable wire code.
func DecodeRequest(line []byte, maxBytes int) (Request, error) {
	if maxBytes <= 0 {
		maxBytes = MaxRequestBytes
	}
	var req Request
	if len(line) > maxBytes {
		return req, errWire(CodeOversized, "request of %d bytes exceeds the %d-byte cap", len(line), maxBytes)
	}
	if err := json.Unmarshal(line, &req); err != nil {
		return req, errWire(CodeBadRequest, "malformed request: %v", err)
	}
	if !validOps[req.Op] {
		return req, errWire(CodeUnknownOp, "unknown op %q", req.Op)
	}
	if len(req.Tenant) > MaxNameBytes {
		return req, errWire(CodeBadRequest, "tenant name longer than %d bytes", MaxNameBytes)
	}
	if len(req.TaskID) > MaxNameBytes {
		return req, errWire(CodeBadRequest, "task_id longer than %d bytes", MaxNameBytes)
	}
	if _, err := ParseTier(req.Tier); err != nil {
		return req, errWire(CodeUnknownTier, "unknown tier %q", req.Tier)
	}
	switch req.Op {
	case OpSubmit:
		if req.Tenant == "" {
			return req, errWire(CodeBadRequest, "submit without a tenant")
		}
		if req.Task == nil {
			return req, errWire(CodeBadRequest, "submit without a task")
		}
		if err := req.Task.Validate(); err != nil {
			return req, err
		}
	case OpStatus, OpCancel:
		if req.Tenant == "" || req.TaskID == "" {
			return req, errWire(CodeBadRequest, "%s needs tenant and task_id", req.Op)
		}
	}
	return req, nil
}

// Validate checks a wire task spec: a non-empty bounded ID, finite
// positive work under MaxTaskWorkMI, a parallel fraction in [0,1],
// non-negative data under MaxTaskDataMB, and a known scenario (userhw
// additionally needs a design name). IDs are rendered with %q in every
// message so hostile bytes never round-trip raw onto the wire.
func (t *TaskSpec) Validate() error {
	if t.ID == "" {
		return errWire(CodeInvalidTask, "task without an id")
	}
	if len(t.ID) > MaxNameBytes {
		return errWire(CodeInvalidTask, "task id longer than %d bytes", MaxNameBytes)
	}
	if !finite(t.WorkMI) || t.WorkMI <= 0 || t.WorkMI > MaxTaskWorkMI {
		return errWire(CodeInvalidTask, "task %q: work_mi must be a finite positive number at most %g", t.ID, float64(MaxTaskWorkMI))
	}
	if !finite(t.Parallel) || t.Parallel < 0 || t.Parallel > 1 {
		return errWire(CodeInvalidTask, "task %q: parallel must be within [0,1]", t.ID)
	}
	if !finite(t.DataMB) || t.DataMB < 0 || t.DataMB > MaxTaskDataMB {
		return errWire(CodeInvalidTask, "task %q: data_mb must be finite, non-negative, and at most %g", t.ID, float64(MaxTaskDataMB))
	}
	if !wireScenarios[t.Scenario] {
		return errWire(CodeInvalidTask, "task %q: unknown scenario %q", t.ID, t.Scenario)
	}
	if t.Scenario == "userhw" && t.Design == "" {
		return errWire(CodeInvalidTask, "task %q: userhw task without a design", t.ID)
	}
	return nil
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
