package controlplane

import (
	"sort"
)

// The dispatcher is sharded: tenants are partitioned across N shards by a
// hash of the tenant name, and each shard is a single goroutine owning its
// tenants outright — no locks, no shared state between shards. All
// cross-shard communication is message passing over the shard inbox.
// Because every tenant engine is deterministic in isolation (see
// tenantEngine) and a tenant's requests are totally ordered by its shard,
// per-tenant results are identical for any shard count; sharding buys
// throughput, never different answers.

// ctlKind selects what an inbox message asks the shard to do.
type ctlKind int

const (
	// ctlRequest carries a tenant-routed wire request.
	ctlRequest ctlKind = iota
	// ctlDrainWait registers the reply channel to be answered when the
	// shard has no queued work left.
	ctlDrainWait
	// ctlStatsAll asks for every tenant's counter snapshot.
	ctlStatsAll
	// ctlDumpAll asks for every tenant's full state dump.
	ctlDumpAll
	// ctlNudge wakes the shard loop (after a resume) and is acknowledged
	// immediately.
	ctlNudge
)

// opMsg is one message into a shard inbox.
type opMsg struct {
	kind ctlKind
	req  Request
	// nowNanos is the admission clock reading taken at receipt.
	nowNanos int64
	reply    chan shardReply
}

// shardReply is a shard's answer; exactly one field is populated
// depending on the request kind.
type shardReply struct {
	resp  Response
	stats []TenantStats
	dumps []TenantDump
}

// TenantDump is one tenant's full state snapshot for OpDump and the
// differential/golden test suites.
type TenantDump struct {
	Stats TenantStats
	// DoneLog lists completed task IDs in completion order.
	DoneLog []string
	// Fabric describes each RPE of the tenant slice, one line per device.
	Fabric []string
}

// advanceBatch bounds how many tasks a shard executes between inbox
// polls, so requests stay responsive under deep queues.
const advanceBatch = 32

// shard owns a partition of the tenant space. Everything below is
// accessed only from the shard's own loop goroutine.
type shard struct {
	id    int
	srv   *Server
	inbox chan opMsg
	// quit is closed by Server.Shutdown; it both stops the loop and
	// unblocks senders.
	quit chan struct{}

	tenants map[string]*tenantEngine
	// order holds the engines sorted by (tier priority, creation order):
	// the dispatch order. Higher tiers drain first — the control plane's
	// rendering of RC3E priority.
	order []*tenantEngine
	// pending counts queued tasks across all tenants of the shard.
	pending int

	drainWaiters []chan shardReply
}

func newShard(id int, srv *Server) *shard {
	return &shard{
		id:      id,
		srv:     srv,
		inbox:   make(chan opMsg, 256),
		quit:    make(chan struct{}),
		tenants: make(map[string]*tenantEngine),
	}
}

// send delivers a message and waits for the reply; false means the
// server shut down first.
func (sh *shard) send(m opMsg) (shardReply, bool) {
	select {
	case sh.inbox <- m:
	case <-sh.quit:
		return shardReply{}, false
	}
	select {
	case r := <-m.reply:
		return r, true
	case <-sh.quit:
		return shardReply{}, false
	}
}

// post delivers a message without waiting for a reply; false means the
// server shut down first.
func (sh *shard) post(m opMsg) bool {
	select {
	case sh.inbox <- m:
		return true
	case <-sh.quit:
		return false
	}
}

// loop is the shard goroutine: handle every queued message, then either
// advance tenant work or block for the next message. Drain waiters are
// settled whenever the shard goes idle.
func (sh *shard) loop() {
	defer sh.srv.wg.Done()
	for {
		select {
		case <-sh.quit:
			return
		default:
		}
		// Handle everything already queued before running more work, so
		// cancels and stats see a fresh state and submits batch up.
		for pumped := true; pumped; {
			select {
			case m := <-sh.inbox:
				sh.handle(m)
			default:
				pumped = false
			}
		}
		if sh.pending > 0 && !sh.srv.paused.Load() {
			sh.advance()
			continue
		}
		sh.settleDrains()
		select {
		case m := <-sh.inbox:
			sh.handle(m)
		case <-sh.quit:
			return
		}
	}
}

// advance executes up to advanceBatch queued tasks, highest tier first.
func (sh *shard) advance() {
	ran := 0
	for _, te := range sh.order {
		for ran < advanceBatch && te.hasWork() {
			te.step()
			sh.pending--
			ran++
		}
		if ran >= advanceBatch {
			return
		}
	}
}

// settleDrains answers every waiting drain once no work is queued.
func (sh *shard) settleDrains() {
	if sh.pending > 0 || len(sh.drainWaiters) == 0 {
		return
	}
	for _, w := range sh.drainWaiters {
		w <- shardReply{resp: Response{OK: true, Op: OpDrain}}
	}
	sh.drainWaiters = nil
}

// handle dispatches one inbox message.
func (sh *shard) handle(m opMsg) {
	switch m.kind {
	case ctlDrainWait:
		sh.drainWaiters = append(sh.drainWaiters, m.reply)
	case ctlStatsAll:
		m.reply <- shardReply{stats: sh.statsAll()}
	case ctlDumpAll:
		m.reply <- shardReply{dumps: sh.dumpAll()}
	case ctlNudge:
		m.reply <- shardReply{}
	default:
		m.reply <- shardReply{resp: sh.request(m)}
	}
}

// request serves one tenant-routed wire request.
func (sh *shard) request(m opMsg) Response {
	switch m.req.Op {
	case OpSubmit:
		te, err := sh.engineFor(m.req.Tenant, m.req.Tier, m.nowNanos)
		if err != nil {
			return errorResponse(OpSubmit, err)
		}
		before := len(te.queue)
		resp := te.submit(m.req.Task, m.nowNanos, sh.srv.draining.Load())
		sh.pending += len(te.queue) - before
		return resp
	case OpStatus:
		te, ok := sh.tenants[m.req.Tenant]
		if !ok {
			return errorResponse(OpStatus, errWire(CodeUnknownTenant, "unknown tenant %q", m.req.Tenant))
		}
		return te.status(m.req.TaskID)
	case OpCancel:
		te, ok := sh.tenants[m.req.Tenant]
		if !ok {
			return errorResponse(OpCancel, errWire(CodeUnknownTenant, "unknown tenant %q", m.req.Tenant))
		}
		before := len(te.queue)
		resp := te.cancel(m.req.TaskID)
		sh.pending += len(te.queue) - before
		return resp
	case OpStats:
		te, ok := sh.tenants[m.req.Tenant]
		if !ok {
			return errorResponse(OpStats, errWire(CodeUnknownTenant, "unknown tenant %q", m.req.Tenant))
		}
		snap := te.snapshot()
		return Response{OK: true, Op: OpStats, Tenant: te.id, Stats: &snap}
	}
	return errorResponse(m.req.Op, errWire(CodeUnknownOp, "unknown op %q", m.req.Op))
}

// engineFor returns the tenant's engine, creating it on first submit.
// A tier named explicitly on a later submit must match the tier the
// tenant was created under.
func (sh *shard) engineFor(tenant, tierName string, nowNanos int64) (*tenantEngine, error) {
	tier, err := ParseTier(tierName)
	if err != nil {
		return nil, errWire(CodeUnknownTier, "unknown tier %q", tierName)
	}
	if te, ok := sh.tenants[tenant]; ok {
		if tierName != "" && te.tier != tier {
			return nil, errWire(CodeTierConflict, "tenant %q is %s-tier; cannot submit as %s", tenant, te.tier, tier)
		}
		return te, nil
	}
	te, err := newTenantEngine(tenant, tier, sh.srv.tenantSeed(tenant), &sh.srv.cfg, nowNanos)
	if err != nil {
		return nil, err
	}
	sh.tenants[tenant] = te
	sh.order = append(sh.order, te)
	// Stable sort keeps creation order within a tier, so dispatch order
	// is (priority, first-seen).
	sort.SliceStable(sh.order, func(i, j int) bool {
		return sh.order[i].policy.Priority < sh.order[j].policy.Priority
	})
	return te, nil
}

// statsAll snapshots every tenant, sorted by name.
func (sh *shard) statsAll() []TenantStats {
	out := make([]TenantStats, 0, len(sh.order))
	for _, te := range sh.order {
		out = append(out, te.snapshot())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// dumpAll snapshots every tenant's full state, sorted by name.
func (sh *shard) dumpAll() []TenantDump {
	out := make([]TenantDump, 0, len(sh.order))
	for _, te := range sh.order {
		d := TenantDump{
			Stats: te.snapshot(),
			//reconlint:sanitized doneLog is capped at maxDoneLog entries on completion, so this snapshot copy is bounded
			DoneLog: append([]string(nil), te.doneLog...),
		}
		for _, n := range te.reg.Nodes() {
			for _, e := range n.RPEs() {
				st := e.Fabric.State()
				d.Fabric = append(d.Fabric, e.ID+" "+st.String())
			}
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Stats.Tenant < out[j].Stats.Tenant })
	return out
}
