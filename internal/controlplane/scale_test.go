package controlplane

import (
	"fmt"
	"sync"
	"testing"
)

// TestScaleQueueDepth is the acceptance-scale run: 1000 tenants submit
// 100 tasks each (10^5 total) into a paused server, the aggregate queue
// depth is verified, and a resume+drain must complete every task with
// per-tenant conservation intact. Kept in-process (no sockets) so the
// cost is the control plane itself, not connection handling; the CI
// smoke job covers the same scale over the wire.
func TestScaleQueueDepth(t *testing.T) {
	if testing.Short() {
		t.Skip("scale run skipped in -short mode")
	}
	const (
		tenants = 1000
		each    = 100
	)
	cfg := DefaultConfig()
	cfg.Shards = 8
	cfg.Seed = 3
	s := newTestServer(t, cfg)
	mustOK(t, s.Do(Request{Op: OpPause}))

	tiers := []string{"full", "virtualized", "background"}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ten := w; ten < tenants; ten += 8 {
				tenant := fmt.Sprintf("tenant-%04d", ten)
				tier := tiers[ten%len(tiers)]
				for i := 0; i < each; i++ {
					resp := s.Do(Request{Op: OpSubmit, Tenant: tenant, Tier: tier,
						Task: spec(taskID("s", i), float64(50+i%200))})
					if !resp.OK {
						t.Errorf("submit %s/%d rejected: %s %s", tenant, i, resp.Code, resp.Error)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	all, err := s.StatsAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != tenants {
		t.Fatalf("tenants = %d, want %d", len(all), tenants)
	}
	queued := 0
	for _, st := range all {
		queued += st.InFlight
	}
	if queued < tenants*each {
		t.Fatalf("queued = %d, want ≥ %d", queued, tenants*each)
	}

	mustOK(t, s.Do(Request{Op: OpResume}))
	mustOK(t, s.Do(Request{Op: OpDrain}))

	all, err = s.StatsAll()
	if err != nil {
		t.Fatal(err)
	}
	completed := 0
	for _, st := range all {
		if !st.conserved() || st.InFlight != 0 {
			t.Fatalf("tenant %s after drain: %+v", st.Tenant, st)
		}
		if st.Completed+st.Evicted != each {
			t.Fatalf("tenant %s lost tasks: %+v", st.Tenant, st)
		}
		completed += st.Completed
	}
	if completed == 0 {
		t.Fatal("nothing completed")
	}
	t.Logf("drained %d tasks from %d tenants (%d completed)", queued, tenants, completed)
}
