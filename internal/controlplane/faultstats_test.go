package controlplane

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestFaultRepairStats pins the MTTR accounting the release report
// consumes: fault aborts, repaired-task counts, and repair time must be
// internally consistent with the retry counters and leave conservation
// untouched.
func TestFaultRepairStats(t *testing.T) {
	_, stats := runTrace(t, 2, true)
	var aborts, retries, repaired int
	var repairSeconds float64
	for _, st := range stats {
		if !st.conserved() {
			t.Errorf("tenant %s: counters do not balance: %+v", st.Tenant, st)
		}
		// Every re-queued attempt was first a fault abort; aborts that
		// exhausted retries are counted but not retried.
		if st.FaultAborts < st.Retries {
			t.Errorf("tenant %s: fault_aborts %d < retries %d", st.Tenant, st.FaultAborts, st.Retries)
		}
		if st.RepairedTasks > st.Completed {
			t.Errorf("tenant %s: repaired %d > completed %d", st.Tenant, st.RepairedTasks, st.Completed)
		}
		if st.RepairSeconds < 0 {
			t.Errorf("tenant %s: negative repair seconds %v", st.Tenant, st.RepairSeconds)
		}
		if st.RepairedTasks > 0 && st.RepairSeconds <= 0 {
			t.Errorf("tenant %s: %d repaired tasks but zero repair time", st.Tenant, st.RepairedTasks)
		}
		if st.RepairedTasks == 0 && st.RepairSeconds != 0 {
			t.Errorf("tenant %s: repair time %v without repaired tasks", st.Tenant, st.RepairSeconds)
		}
		aborts += st.FaultAborts
		retries += st.Retries
		repaired += st.RepairedTasks
		repairSeconds += st.RepairSeconds
	}
	// The hostile trace must actually exercise the repair path, or this
	// test (and the report's MTTR column) is vacuous.
	if aborts == 0 || repaired == 0 || repairSeconds == 0 {
		t.Errorf("faulty trace exercised no repairs: aborts=%d repaired=%d repair_s=%v",
			aborts, repaired, repairSeconds)
	}
}

// TestFaultStatsOmittedWhenClean pins the wire-compat contract: a
// fault-free run serializes TenantStats exactly as before the repair
// fields existed, so old snapshots and new ones stay interchangeable.
func TestFaultStatsOmittedWhenClean(t *testing.T) {
	_, stats := runTrace(t, 1, false)
	for _, st := range stats {
		if st.FaultAborts != 0 || st.RepairedTasks != 0 || st.RepairSeconds != 0 {
			t.Fatalf("tenant %s: fault-free run recorded repairs: %+v", st.Tenant, st)
		}
		b, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		for _, field := range []string{"fault_aborts", "repaired_tasks", "repair_seconds"} {
			if strings.Contains(string(b), field) {
				t.Errorf("tenant %s: clean snapshot serializes %q: %s", st.Tenant, field, b)
			}
		}
	}
}
