package controlplane

import (
	"errors"
	"math"
	"strings"
	"testing"

	"repro/internal/jss"
)

// TestDecodeRequestTable pins the decode/validation surface: every
// malformed input maps to a stable wire code.
func TestDecodeRequestTable(t *testing.T) {
	cases := []struct {
		name string
		line string
		code string // "" means accepted
	}{
		{"ping", `{"op":"ping"}`, ""},
		{"submit ok", `{"op":"submit","tenant":"a","task":{"id":"t1","work_mi":100}}`, ""},
		{"submit full tier", `{"op":"submit","tenant":"a","tier":"full","task":{"id":"t1","work_mi":100}}`, ""},
		{"status ok", `{"op":"status","tenant":"a","task_id":"t1"}`, ""},
		{"stats no tenant", `{"op":"stats"}`, ""},
		{"malformed json", `{not json`, CodeBadRequest},
		{"empty object", `{}`, CodeUnknownOp},
		{"unknown op", `{"op":"launch"}`, CodeUnknownOp},
		{"unknown tier", `{"op":"submit","tenant":"a","tier":"platinum","task":{"id":"t1","work_mi":1}}`, CodeUnknownTier},
		{"submit no tenant", `{"op":"submit","task":{"id":"t1","work_mi":1}}`, CodeBadRequest},
		{"submit no task", `{"op":"submit","tenant":"a"}`, CodeBadRequest},
		{"task no id", `{"op":"submit","tenant":"a","task":{"work_mi":1}}`, CodeInvalidTask},
		{"task long id", `{"op":"submit","tenant":"a","task":{"id":"` + strings.Repeat("x", 300) + `","work_mi":1}}`, CodeInvalidTask},
		{"task no work", `{"op":"submit","tenant":"a","task":{"id":"t1"}}`, CodeInvalidTask},
		{"task negative work", `{"op":"submit","tenant":"a","task":{"id":"t1","work_mi":-5}}`, CodeInvalidTask},
		{"task huge exponent", `{"op":"submit","tenant":"a","task":{"id":"t1","work_mi":1e999}}`, CodeBadRequest},
		{"task parallel over 1", `{"op":"submit","tenant":"a","task":{"id":"t1","work_mi":1,"parallel":1.5}}`, CodeInvalidTask},
		{"task negative data", `{"op":"submit","tenant":"a","task":{"id":"t1","work_mi":1,"data_mb":-1}}`, CodeInvalidTask},
		{"task unknown scenario", `{"op":"submit","tenant":"a","task":{"id":"t1","work_mi":1,"scenario":"quantum"}}`, CodeInvalidTask},
		{"userhw no design", `{"op":"submit","tenant":"a","task":{"id":"t1","work_mi":1,"scenario":"userhw"}}`, CodeInvalidTask},
		{"status no task_id", `{"op":"status","tenant":"a"}`, CodeBadRequest},
		{"cancel no tenant", `{"op":"cancel","task_id":"t1"}`, CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeRequest([]byte(tc.line), 0)
			if tc.code == "" {
				if err != nil {
					t.Fatalf("unexpected reject: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("accepted, want code %s", tc.code)
			}
			if got := ErrorCode(err); got != tc.code {
				t.Errorf("code = %q, want %q (err: %v)", got, tc.code, err)
			}
		})
	}
}

// TestDecodeRequestOversized pins the size cap: the reject happens
// before JSON work and carries the oversized code.
func TestDecodeRequestOversized(t *testing.T) {
	line := `{"op":"ping","tenant":"` + strings.Repeat("a", 200) + `"}`
	if _, err := DecodeRequest([]byte(line), 64); ErrorCode(err) != CodeOversized {
		t.Errorf("err = %v, want oversized", err)
	}
	if _, err := DecodeRequest([]byte(line), 0); err != nil {
		t.Errorf("default cap rejected a small line: %v", err)
	}
}

// TestErrorCodeMapping pins the error→wire-code translation, in
// particular that typed jss rejections cross the boundary as their wire
// equivalents (the control-plane half of the ErrQuotaExceeded fix).
func TestErrorCodeMapping(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want string
	}{
		{"nil", nil, ""},
		{"wire error", errWire(CodeQueueFull, "full"), CodeQueueFull},
		{"jss quota", &jss.RejectError{Code: jss.CodeQuotaExceeded, Reason: "quote 9 exceeds cost cap 1"}, CodeQuotaExceeded},
		{"jss quota sentinel", jss.ErrQuotaExceeded, CodeQuotaExceeded},
		{"jss unsupported", &jss.RejectError{Code: jss.CodeUnsupported, Reason: "streaming"}, CodeUnsupported},
		{"jss invalid", &jss.RejectError{Code: jss.CodeInvalid, Reason: "no tasks"}, CodeInvalidTask},
		{"plain error", errors.New("boom"), CodeInternal},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ErrorCode(tc.err); got != tc.want {
				t.Errorf("ErrorCode = %q, want %q", got, tc.want)
			}
		})
	}
}

// TestQuotaBudgetRejectsOverCostCap drives the typed quota path end to
// end: a tenant with a tiny cost budget gets quota_exceeded on the wire.
func TestQuotaBudgetRejectsOverCostCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CostBudgetUnits = 2.5 // one 2000-MI software task quotes 2.0 units
	s := newTestServer(t, cfg)
	// Pause so the first task's 2.0-unit quote is still outstanding when
	// the second submission hits the budget gate.
	mustOK(t, s.Do(Request{Op: OpPause}))
	mustOK(t, s.Do(Request{Op: OpSubmit, Tenant: "a", Task: spec("t1", 2000)}))
	resp := s.Do(Request{Op: OpSubmit, Tenant: "a", Task: spec("t2", 2000)})
	if resp.OK || resp.Code != CodeQuotaExceeded {
		t.Errorf("resp = %+v, want quota_exceeded", resp)
	}
	mustOK(t, s.Do(Request{Op: OpDrain}))
	stats := mustOK(t, s.Do(Request{Op: OpStats, Tenant: "a"})).Stats
	if stats.QuotaDenied != 1 || stats.Completed != 1 || !stats.conserved() {
		t.Errorf("stats = %+v", stats)
	}
}

// TestQuotaBudgetExhaustedRejects pins the remaining<=0 path: once the
// budget is exactly consumed by outstanding quotes, every later
// submission rejects with quota_exceeded — the control plane must gate
// this itself, because a non-positive jss MaxCostUnits means uncapped.
func TestQuotaBudgetExhaustedRejects(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CostBudgetUnits = 2.0 // exactly one 2000-MI software task
	s := newTestServer(t, cfg)
	mustOK(t, s.Do(Request{Op: OpPause}))
	mustOK(t, s.Do(Request{Op: OpSubmit, Tenant: "a", Task: spec("t1", 2000)}))
	for i := 0; i < 2; i++ {
		resp := s.Do(Request{Op: OpSubmit, Tenant: "a", Task: spec(taskID("x", i), 2000)})
		if resp.OK || resp.Code != CodeQuotaExceeded {
			t.Errorf("submit %d: resp = %+v, want quota_exceeded", i, resp)
		}
	}
	mustOK(t, s.Do(Request{Op: OpDrain}))
	stats := mustOK(t, s.Do(Request{Op: OpStats, Tenant: "a"})).Stats
	if stats.QuotaDenied != 2 || stats.Completed != 1 || !stats.conserved() {
		t.Errorf("stats = %+v", stats)
	}
}

// TestTokenBucketQuota pins deterministic refill against a fake clock.
func TestTokenBucketQuota(t *testing.T) {
	clock := int64(0)
	cfg := DefaultConfig()
	cfg.NowNanos = func() int64 { return clock }
	cfg.RateOverride = 2 // 2 admissions/second
	cfg.BurstOverride = 3
	s := newTestServer(t, cfg)
	mustOK(t, s.Do(Request{Op: OpPause}))
	admitted := 0
	for i := 0; i < 5; i++ {
		if s.Do(Request{Op: OpSubmit, Tenant: "a", Task: spec(taskID("b", i), 100)}).OK {
			admitted++
		}
	}
	if admitted != 3 {
		t.Fatalf("burst admitted %d, want 3", admitted)
	}
	clock += int64(1e9) // one second refills two tokens
	for i := 0; i < 5; i++ {
		if s.Do(Request{Op: OpSubmit, Tenant: "a", Task: spec(taskID("r", i), 100)}).OK {
			admitted++
		}
	}
	if admitted != 5 {
		t.Fatalf("after refill admitted %d, want 5", admitted)
	}
	stats := mustOK(t, s.Do(Request{Op: OpStats, Tenant: "a"})).Stats
	if stats.QuotaDenied != 5 || !stats.conserved() {
		t.Errorf("stats = %+v", stats)
	}
}

// TestTokenBucketInvariants sweeps the bucket directly: tokens stay in
// [0, burst] and admissions over any window respect burst + rate·Δ.
func TestTokenBucketInvariants(t *testing.T) {
	b := newTokenBucket(5, 10, 0)
	admissions := 0
	clock := int64(0)
	for i := 0; i < 10_000; i++ {
		// A hostile clock: mostly forward, sometimes backwards.
		switch i % 7 {
		case 3:
			clock -= 50_000_000
		default:
			clock += int64(i%5) * 100_000_000
		}
		if b.take(clock) {
			admissions++
		}
		if b.tokens < 0 || b.tokens > 10 {
			t.Fatalf("tokens %v outside [0,10] at step %d", b.tokens, i)
		}
	}
	if math.IsNaN(b.tokens) {
		t.Fatal("tokens went NaN")
	}
	// Upper bound over the whole run: initial burst + rate × elapsed.
	elapsed := float64(clock) / 1e9
	if maxAdmit := 10 + 5*elapsed; float64(admissions) > maxAdmit+1 {
		t.Fatalf("admitted %d > bound %.0f", admissions, maxAdmit)
	}
}
