package controlplane

import (
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/sim"
)

// TestPropertyTaskConservation hammers a sharded server from concurrent
// clients with a random interleaving of submits, cancels, status polls,
// pauses, resumes, and drains, then checks the conservation invariant
// for every tenant:
//
//	Submitted == Completed + Rejected + Evicted + Canceled + InFlight
//
// and, after a final drain, InFlight == 0 — no task is ever lost or
// double-counted regardless of interleaving. Run under -race this also
// exercises the shard ownership discipline.
func TestPropertyTaskConservation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 3
	cfg.Seed = 42
	s := newTestServer(t, cfg)

	const (
		clients = 8
		ops     = 400
		tenants = 24
	)
	tiers := []string{"", "full", "virtualized", "background"}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := sim.NewRNG(uint64(1000 + c))
			for i := 0; i < ops; i++ {
				tenant := "tenant-" + strconv.Itoa(rng.Intn(tenants))
				switch rng.Intn(10) {
				case 0:
					s.Do(Request{Op: OpCancel, Tenant: tenant, TaskID: taskID("c"+strconv.Itoa(c), rng.Intn(ops))})
				case 1:
					s.Do(Request{Op: OpStatus, Tenant: tenant, TaskID: taskID("c"+strconv.Itoa(c), rng.Intn(ops))})
				case 2:
					s.Do(Request{Op: OpStats, Tenant: tenant})
				case 3:
					switch rng.Intn(3) {
					case 0:
						s.Do(Request{Op: OpPause})
					case 1:
						s.Do(Request{Op: OpResume})
					default:
						s.Do(Request{Op: OpDrain})
					}
				default:
					// Tenant tier is a pure function of the tenant name so
					// concurrent creators never conflict.
					tier := tiers[int(tenantHash(tenant)%uint64(len(tiers)))]
					s.Do(Request{Op: OpSubmit, Tenant: tenant, Tier: tier,
						Task: spec(taskID("c"+strconv.Itoa(c), i), float64(10+rng.Intn(500)))})
				}
			}
		}(c)
	}
	wg.Wait()
	mustOK(t, s.Do(Request{Op: OpDrain}))

	all, err := s.StatsAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no tenants created")
	}
	totalSubmitted := 0
	for _, st := range all {
		if !st.conserved() {
			t.Errorf("tenant %s violates conservation: %+v", st.Tenant, st)
		}
		if st.InFlight != 0 {
			t.Errorf("tenant %s has %d in flight after drain", st.Tenant, st.InFlight)
		}
		if st.Accepted != st.Submitted-st.Rejected {
			t.Errorf("tenant %s: accepted %d != submitted %d - rejected %d", st.Tenant, st.Accepted, st.Submitted, st.Rejected)
		}
		totalSubmitted += st.Submitted
	}
	if totalSubmitted == 0 {
		t.Fatal("no submissions recorded")
	}
}

// TestPropertyQuotaMonotonic replays one fixed submit sequence against
// increasing admission rates and checks monotonicity: a tenant with a
// larger quota never gets fewer tasks admitted.
func TestPropertyQuotaMonotonic(t *testing.T) {
	run := func(rate float64) int {
		clock := int64(0)
		cfg := DefaultConfig()
		cfg.Shards = 2
		cfg.NowNanos = func() int64 { return clock }
		cfg.RateOverride = rate
		cfg.BurstOverride = 4
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Shutdown()
		mustOK(t, s.Do(Request{Op: OpPause}))
		rng := sim.NewRNG(7)
		admitted := 0
		for i := 0; i < 300; i++ {
			clock += int64(rng.Intn(200)) * 1_000_000 // 0–200 ms steps
			if s.Do(Request{Op: OpSubmit, Tenant: "m", Task: spec(taskID("q", i), 100)}).OK {
				admitted++
			}
		}
		st := mustOK(t, s.Do(Request{Op: OpStats, Tenant: "m"})).Stats
		if st.Accepted != admitted || !st.conserved() {
			t.Fatalf("rate %v: stats %+v disagree with %d admissions", rate, st, admitted)
		}
		return admitted
	}
	prev := -1
	for _, rate := range []float64{0.5, 1, 2, 5, 20, 100} {
		got := run(rate)
		if got < prev {
			t.Fatalf("rate %v admitted %d < %d at a lower rate", rate, got, prev)
		}
		prev = got
	}
	if prev != 300 {
		t.Errorf("highest rate admitted %d of 300; expected all", prev)
	}
}

// TestPropertyQuotaBound checks the token-bucket upper bound end to end
// under concurrent submitters sharing one tenant: admissions over the
// run never exceed burst + rate·Δ.
func TestPropertyQuotaBound(t *testing.T) {
	var clock atomic.Int64
	cfg := DefaultConfig()
	cfg.NowNanos = clock.Load
	cfg.RateOverride = 50
	cfg.BurstOverride = 10
	s := newTestServer(t, cfg)
	mustOK(t, s.Do(Request{Op: OpPause}))
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				clock.Add(1_000_000) // each attempt advances the clock 1 ms
				s.Do(Request{Op: OpSubmit, Tenant: "shared", Task: spec(taskID("c"+strconv.Itoa(c), i), 50)})
			}
		}(c)
	}
	wg.Wait()
	st := mustOK(t, s.Do(Request{Op: OpStats, Tenant: "shared"})).Stats
	elapsed := float64(clock.Load()) / 1e9
	bound := 10 + 50*elapsed + 1
	if float64(st.Accepted) > bound {
		t.Errorf("accepted %d exceeds bound %.1f over %.3fs", st.Accepted, bound, elapsed)
	}
	if !st.conserved() {
		t.Errorf("conservation: %+v", st)
	}
}
