package controlplane

import (
	"fmt"

	"repro/internal/faults"
)

// Tier is an RC3E-style vFPGA provisioning tier (arXiv:1508.06843): the
// service model a tenant rents the fabric under. The tier decides how much
// of the catalog the tenant's vFPGA slice carries, how its admission
// quota defaults, how the dispatcher prioritizes it, and how aggressively
// fault-aborted work is retried before eviction.
type Tier int

// The three RC3E provisioning models.
const (
	// TierFull rents a whole physical FPGA setup exclusively: the largest
	// slice, the highest dispatch priority, and generous retries.
	TierFull Tier = iota
	// TierVirtualized rents a vFPGA share of a device: the default tier.
	TierVirtualized
	// TierBackground rents best-effort batch capacity: the smallest
	// slice, the deepest queue, the lowest priority, and no retries —
	// fault-aborted background work is evicted immediately.
	TierBackground
)

var tierNames = [...]string{
	TierFull:        "full",
	TierVirtualized: "virtualized",
	TierBackground:  "background",
}

// String returns the wire name of the tier.
func (t Tier) String() string {
	if t >= 0 && int(t) < len(tierNames) {
		return tierNames[t]
	}
	return fmt.Sprintf("Tier(%d)", int(t))
}

// ParseTier maps a wire tier name to a Tier. The empty string selects
// TierVirtualized (the default service model); anything else unknown is
// an error the decoder rejects.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "":
		return TierVirtualized, nil
	case "full":
		return TierFull, nil
	case "virtualized":
		return TierVirtualized, nil
	case "background":
		return TierBackground, nil
	}
	return TierVirtualized, fmt.Errorf("controlplane: unknown tier %q", s)
}

// Tiers lists the provisioning tiers in priority order.
func Tiers() []Tier { return []Tier{TierFull, TierVirtualized, TierBackground} }

// TierPolicy bundles everything the control plane derives from a tier.
type TierPolicy struct {
	// Priority orders dispatch across tenants within a shard; lower runs
	// first when several tenants have queued work.
	Priority int
	// GPPCores and RPEDevices describe the tenant's vFPGA slice: one
	// node carrying a GPP with this many cores plus these catalog FPGAs.
	GPPCores   int
	RPEDevices []string
	// MaxQueue bounds the tenant's pending queue; submissions beyond it
	// are rejected with queue_full.
	MaxQueue int
	// RatePerSec/Burst are the token-bucket admission defaults (tokens
	// are submissions). A zero rate disables refill-based limiting.
	RatePerSec float64
	Burst      float64
	// Retry bounds re-execution of fault-aborted tasks before eviction.
	Retry faults.RetryPolicy
}

// Policy returns the tier's default policy. The slice shapes follow the
// RC3E models: full tenants get a whole two-device setup, virtualized
// tenants one mid-size device, background tenants a small device with a
// deep best-effort queue.
func (t Tier) Policy() TierPolicy {
	switch t {
	case TierFull:
		return TierPolicy{
			Priority:   0,
			GPPCores:   4,
			RPEDevices: []string{"XC5VLX330T", "XC5VLX155T"},
			MaxQueue:   4096,
			RatePerSec: 2000,
			Burst:      4096,
			Retry:      faults.RetryPolicy{MaxRetries: 6, BackoffSeconds: 0.5, BackoffCapSeconds: 8},
		}
	case TierBackground:
		return TierPolicy{
			Priority:   2,
			GPPCores:   1,
			RPEDevices: []string{"XC5VLX30"},
			MaxQueue:   16384,
			RatePerSec: 500,
			Burst:      16384,
			Retry:      faults.RetryPolicy{},
		}
	default: // TierVirtualized
		return TierPolicy{
			Priority:   1,
			GPPCores:   2,
			RPEDevices: []string{"XC5VLX110T"},
			MaxQueue:   8192,
			RatePerSec: 1000,
			Burst:      8192,
			Retry:      faults.RetryPolicy{MaxRetries: 3, BackoffSeconds: 0.5, BackoffCapSeconds: 4},
		}
	}
}
