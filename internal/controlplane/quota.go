package controlplane

// tokenBucket is the per-tenant admission limiter. It is deterministic by
// construction: refill is driven by an injected monotonic nanosecond
// clock (Config.NowNanos), never by a wall-clock read of its own, so a
// server running with a virtual clock — or with no clock at all — admits
// exactly the same request sequence on every replay.
//
// Invariants (checked by the quota property test):
//   - tokens never exceeds burst,
//   - tokens never goes negative,
//   - over any clock window Δ, admissions ≤ burst + rate·Δ.
type tokenBucket struct {
	rate  float64 // tokens per second; 0 disables refill-based limiting
	burst float64
	// tokens is the current balance; lastNanos the clock at last refill.
	tokens    float64
	lastNanos int64
}

func newTokenBucket(rate, burst float64, nowNanos int64) tokenBucket {
	return tokenBucket{rate: rate, burst: burst, tokens: burst, lastNanos: nowNanos}
}

// refill advances the bucket to nowNanos. A clock that goes backwards is
// clamped (no refund, no negative elapsed).
func (b *tokenBucket) refill(nowNanos int64) {
	if b.rate <= 0 {
		return
	}
	if nowNanos > b.lastNanos {
		b.tokens += b.rate * float64(nowNanos-b.lastNanos) / 1e9
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.lastNanos = nowNanos
	}
}

// take spends one token if available; false means the admission is over
// quota. With rate 0 the bucket is inert and always admits.
func (b *tokenBucket) take(nowNanos int64) bool {
	if b.rate <= 0 {
		return true
	}
	b.refill(nowNanos)
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
