package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical draws", same)
	}
}

func TestSplitProducesIndependentStream(t *testing.T) {
	r := NewRNG(7)
	s1 := r.Split(1)
	s2 := r.Split(2)
	if s1.Uint64() == s2.Uint64() {
		t.Error("split streams start identically")
	}
}

func TestFloat64InUnitInterval(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnInRange(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		bound := int(n%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 20; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntRange(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 100; i++ {
		v := r.IntRange(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntRange(5,9) = %d", v)
		}
	}
	if r.IntRange(4, 4) != 4 {
		t.Error("degenerate range should return lo")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestUniformityOfFloat64(t *testing.T) {
	r := NewRNG(99)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of uniforms = %v, want ≈0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ≈1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(6)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ≈1", mean)
	}
}
