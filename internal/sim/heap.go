package sim

import "container/heap"

// eventHeap implements container/heap for *Event ordered by
// (Time, Priority, seq).
type eventHeap []*Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return eventLess(h[i], h[j]) }

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// HeapQueue is the binary-heap Scheduler: O(log n) Push/Pop, O(1) lazy
// Cancel. It is the reference implementation — simple, allocation-pooled,
// and robust at any event-time scale. The zero value is ready to use.
type HeapQueue struct {
	h     eventHeap
	seq   uint64
	live  int
	pool  eventPool
	fired *Event // last popped event, recycled on the next Pop
}

// NewHeapQueue returns an empty heap-backed scheduler.
func NewHeapQueue() *HeapQueue { return &HeapQueue{} }

// Len returns the number of live (non-canceled) queued events.
func (q *HeapQueue) Len() int { return q.live }

// Push enqueues an event at time t and returns a handle for canceling it.
func (q *HeapQueue) Push(t Time, priority int, label string, fn Handler) EventRef {
	e := q.pool.alloc()
	q.seq++
	e.Time, e.Priority, e.Label, e.fn, e.seq = t, priority, label, fn, q.seq
	e.state = stateQueued
	heap.Push(&q.h, e)
	q.live++
	return EventRef{e: e, gen: e.gen}
}

// Peek returns the earliest live event without removing it, or nil if none
// remain. Canceled events reaching the head are reclaimed on the way.
func (q *HeapQueue) Peek() *Event {
	q.dropCanceled()
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Pop removes and returns the earliest live event, or nil if none remain.
// The returned event is valid until the next Pop.
func (q *HeapQueue) Pop() *Event {
	if q.fired != nil {
		q.pool.recycle(q.fired)
		q.fired = nil
	}
	q.dropCanceled()
	if len(q.h) == 0 {
		return nil
	}
	e := heap.Pop(&q.h).(*Event)
	e.state = stateFired
	q.live--
	q.fired = e
	return e
}

// Cancel marks a pending event so it will never fire. It returns true only
// if ref was still pending; stale or repeated cancels are no-ops.
func (q *HeapQueue) Cancel(ref EventRef) bool {
	if !ref.Pending() {
		return false
	}
	ref.e.state = stateCanceled
	q.live--
	return true
}

func (q *HeapQueue) dropCanceled() {
	for len(q.h) > 0 && q.h[0].state == stateCanceled {
		q.pool.recycle(heap.Pop(&q.h).(*Event))
	}
}

// EventQueue is the pre-Scheduler name of the heap-backed event queue.
//
// Deprecated: use the Scheduler interface with NewHeapQueue (or
// NewWheelQueue) instead; EventQueue will be removed once out-of-tree
// callers have migrated.
type EventQueue = HeapQueue
