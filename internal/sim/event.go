package sim

// Handler is the callback attached to a scheduled event. It runs when the
// simulator's clock reaches the event's time.
type Handler func()

// Event states. An event cycles free → queued → (fired | canceled) → free;
// the generation counter bumps each time it returns to the free list, so
// stale EventRefs can never act on a recycled event.
const (
	stateFree uint8 = iota
	stateQueued
	stateFired
	stateCanceled
)

// Event is a pending occurrence in virtual time. Events are ordered by
// (Time, Priority, sequence number); the sequence number makes ordering a
// total, deterministic order even for simultaneous events.
//
// Events are pooled: a *Event returned by a Scheduler's Pop is valid only
// until the next Pop on the same scheduler, and an event that was canceled
// is reclaimed as soon as the scheduler sweeps past it. Code that needs to
// refer to an event later (to cancel it) must hold the EventRef returned by
// Push, never the bare pointer.
type Event struct {
	Time     Time
	Priority int // lower runs first among simultaneous events
	Label    string
	fn       Handler
	seq      uint64
	index    int    // heap index (heap-backed schedulers); -1 when not queued
	tick     int64  // quantized time (wheel scheduler)
	gen      uint32 // recycle generation; EventRef validity check
	state    uint8
	next     *Event // free-list link
}

// Canceled reports whether the event has been canceled and will not fire.
func (e *Event) Canceled() bool { return e.state == stateCanceled }

// call invokes the event's handler.
func (e *Event) call() { e.fn() }

// eventLess is the scheduler total order: (Time, Priority, seq).
func eventLess(a, b *Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.seq < b.seq
}

// EventRef is a safe handle to a scheduled event. The zero value refers to
// nothing. A ref stays usable forever: once its event has fired, been
// canceled, or been recycled for a new occupant, Pending reports false and
// Cancel is a no-op — so double cancels and cancels racing a completion are
// harmless by construction.
type EventRef struct {
	e   *Event
	gen uint32
}

// Pending reports whether the referenced event is still queued to fire.
func (r EventRef) Pending() bool {
	return r.e != nil && r.e.gen == r.gen && r.e.state == stateQueued
}

// Scheduler is the pending-event set of a simulation: a deterministic
// priority queue over (Time, Priority, seq) insertion order. Implementations
// are single-goroutine, like the Simulator that drives them.
//
// Contract:
//   - Push assigns the next sequence number, so two schedulers fed the same
//     Push/Cancel calls pop events in the identical order.
//   - Peek and Pop return the earliest live event; canceled events are
//     never returned. Pop's result is valid only until the next Pop.
//   - Cancel acts only when ref is still pending; it returns false for
//     fired, already-canceled, stale, or zero refs.
//   - Len counts live (non-canceled) events only.
type Scheduler interface {
	Push(t Time, priority int, label string, fn Handler) EventRef
	Peek() *Event
	Pop() *Event
	Cancel(ref EventRef) bool
	Len() int
}

// poolBlock is how many Events one free-list refill allocates. Blocks keep
// steady-state scheduling at zero allocations: after warm-up every Push
// reuses an event recycled by an earlier fire or cancel.
const poolBlock = 64

// eventPool is a free list of recycled events. Not safe for concurrent use;
// each scheduler owns its own pool.
type eventPool struct {
	free *Event
}

func (p *eventPool) alloc() *Event {
	if p.free == nil {
		blk := make([]Event, poolBlock)
		for i := range blk {
			blk[i].next = p.free
			p.free = &blk[i]
		}
	}
	e := p.free
	p.free = e.next
	e.next = nil
	return e
}

// recycle returns an event to the free list and invalidates every EventRef
// pointing at it.
func (p *eventPool) recycle(e *Event) {
	e.gen++
	e.state = stateFree
	e.fn = nil
	e.Label = ""
	e.next = p.free
	p.free = e
}
