package sim

import "container/heap"

// Handler is the callback attached to a scheduled event. It runs when the
// simulator's clock reaches the event's time.
type Handler func()

// Event is a pending occurrence in virtual time. Events are ordered by
// (Time, Priority, sequence number); the sequence number makes ordering a
// total, deterministic order even for simultaneous events.
type Event struct {
	Time     Time
	Priority int // lower runs first among simultaneous events
	Label    string
	fn       Handler
	seq      uint64
	index    int // heap index; -1 when not queued
	canceled bool
}

// Canceled reports whether the event has been canceled and will not fire.
func (e *Event) Canceled() bool { return e.canceled }

// Pending reports whether the event is still queued.
func (e *Event) Pending() bool { return e.index >= 0 && !e.canceled }

// eventHeap implements container/heap for *Event ordered by
// (Time, Priority, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.seq < b.seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// EventQueue is a deterministic priority queue of events. The zero value is
// ready to use.
type EventQueue struct {
	h   eventHeap
	seq uint64
}

// Len returns the number of queued (possibly canceled) events.
func (q *EventQueue) Len() int { return len(q.h) }

// Push enqueues an event at time t with the given priority and handler, and
// returns the event so it can later be canceled.
func (q *EventQueue) Push(t Time, priority int, label string, fn Handler) *Event {
	q.seq++
	e := &Event{Time: t, Priority: priority, Label: label, fn: fn, seq: q.seq, index: -1}
	heap.Push(&q.h, e)
	return e
}

// Peek returns the earliest event without removing it, or nil if empty.
// Canceled events at the head are discarded first.
func (q *EventQueue) Peek() *Event {
	q.dropCanceled()
	if len(q.h) == 0 {
		return nil
	}
	return q.h[0]
}

// Pop removes and returns the earliest non-canceled event, or nil if the
// queue is empty.
func (q *EventQueue) Pop() *Event {
	q.dropCanceled()
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Event)
}

// Cancel marks an event so it will never fire. Canceling an already-fired or
// already-canceled event is a no-op. Cancel returns true if the event was
// pending.
func (q *EventQueue) Cancel(e *Event) bool {
	if e == nil || e.canceled || e.index < 0 {
		return false
	}
	e.canceled = true
	return true
}

func (q *EventQueue) dropCanceled() {
	for len(q.h) > 0 && q.h[0].canceled {
		heap.Pop(&q.h)
	}
}
