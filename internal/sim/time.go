// Package sim provides a deterministic discrete-event simulation kernel used
// by the grid simulator (the DReAMSim equivalent of the reproduced paper).
//
// The kernel is intentionally small: a virtual clock, a pending-event set
// ordered by (time, priority, sequence), a seeded pseudo-random number
// generator with the usual distributions, and online statistics collectors.
// Everything is deterministic given a seed, so simulation experiments are
// reproducible bit-for-bit.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is virtual simulation time in seconds. It is a distinct type so that
// wall-clock durations cannot be accidentally mixed into simulation state.
type Time float64

// TimeZero is the start of simulated time.
const TimeZero Time = 0

// TimeInf sorts after every real event time; it is used as "never".
var TimeInf = Time(math.Inf(1))

// Seconds returns the time as a plain float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) }

// Millis returns the time in milliseconds.
func (t Time) Millis() float64 { return float64(t) * 1e3 }

// Duration converts a virtual time span to a time.Duration for display
// purposes only. Durations beyond ~290 years saturate.
func (t Time) Duration() time.Duration {
	s := float64(t)
	if math.IsInf(s, 1) || s > math.MaxInt64/1e9 {
		return time.Duration(math.MaxInt64)
	}
	if s < 0 {
		return 0
	}
	return time.Duration(s * float64(time.Second))
}

// IsInf reports whether t is the "never" sentinel.
func (t Time) IsInf() bool { return math.IsInf(float64(t), 1) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Add returns t shifted by d seconds.
func (t Time) Add(d Time) Time { return t + d }

// Sub returns the span t-u.
func (t Time) Sub(u Time) Time { return t - u }

// String formats the time with engineering-friendly units.
func (t Time) String() string {
	switch {
	case t.IsInf():
		return "+inf"
	case t < 0:
		return fmt.Sprintf("%.6gs", float64(t))
	case t < 1e-3:
		return fmt.Sprintf("%.3gµs", float64(t)*1e6)
	case t < 1:
		return fmt.Sprintf("%.4gms", float64(t)*1e3)
	default:
		return fmt.Sprintf("%.6gs", float64(t))
	}
}

// MaxTime returns the later of a and b.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// MinTime returns the earlier of a and b.
func MinTime(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
