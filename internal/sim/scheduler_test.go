package sim

import (
	"testing"
)

// schedulers enumerates every Scheduler implementation; each conformance
// subtest runs once per entry so the two queues can never drift apart on
// the contract.
func schedulers() map[string]func() Scheduler {
	return map[string]func() Scheduler{
		"heap":  func() Scheduler { return NewHeapQueue() },
		"wheel": func() Scheduler { return NewWheelQueue() },
	}
}

// TestSchedulerLenCountsLiveOnly is the regression test for the Len
// bug: canceled events must leave the count immediately, not linger
// until the sweep reclaims them.
func TestSchedulerLenCountsLiveOnly(t *testing.T) {
	for name, mk := range schedulers() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			var refs []EventRef
			for i := 0; i < 5; i++ {
				refs = append(refs, q.Push(Time(i), 0, "e", func() {}))
			}
			if q.Len() != 5 {
				t.Fatalf("Len = %d after 5 pushes", q.Len())
			}
			q.Cancel(refs[1])
			q.Cancel(refs[3])
			if q.Len() != 3 {
				t.Fatalf("Len = %d after canceling 2 of 5; canceled events must not count", q.Len())
			}
			for want := 2; want >= 0; want-- {
				if e := q.Pop(); e == nil {
					t.Fatalf("Pop = nil with %d live events left", want+1)
				}
				if q.Len() != want {
					t.Fatalf("Len = %d after pop, want %d", q.Len(), want)
				}
			}
			if e := q.Pop(); e != nil {
				t.Fatalf("Pop returned %q from an empty queue", e.Label)
			}
		})
	}
}

// TestSchedulerCancelSemantics pins the Cancel contract: true exactly
// once while pending, false for repeated, fired, and zero refs, and a
// canceled event is never served.
func TestSchedulerCancelSemantics(t *testing.T) {
	for name, mk := range schedulers() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			q.Push(1, 0, "keep", func() {})
			doomed := q.Push(2, 0, "doomed", func() {})
			if !doomed.Pending() {
				t.Fatal("fresh ref not pending")
			}
			if !q.Cancel(doomed) {
				t.Fatal("first Cancel = false on a pending event")
			}
			if q.Cancel(doomed) {
				t.Fatal("second Cancel = true; must be a no-op")
			}
			if doomed.Pending() {
				t.Fatal("ref still pending after Cancel")
			}
			fired := q.Pop()
			if fired == nil || fired.Label != "keep" {
				t.Fatalf("Pop = %v, want the live event", fired)
			}
			if q.Pop() != nil {
				t.Fatal("canceled event was served")
			}
			if q.Cancel(EventRef{}) {
				t.Fatal("Cancel of the zero ref = true")
			}
		})
	}
}

// TestSchedulerRefStaleAfterFire: once an event fires its ref goes
// inert — Pending false, Cancel a no-op — even though the pooled Event
// will be recycled for a future Push.
func TestSchedulerRefStaleAfterFire(t *testing.T) {
	for name, mk := range schedulers() {
		t.Run(name, func(t *testing.T) {
			q := mk()
			ref := q.Push(1, 0, "once", func() {})
			if q.Pop() == nil {
				t.Fatal("Pop = nil")
			}
			if ref.Pending() {
				t.Fatal("ref pending after its event fired")
			}
			if q.Cancel(ref) {
				t.Fatal("Cancel of a fired event = true")
			}
			// Force recycling (the fired event is reclaimed on the next
			// Pop) and reoccupy the slot: the stale ref must not be able
			// to cancel the new occupant.
			for i := 0; i < 2*poolBlock; i++ {
				q.Push(Time(i+2), 0, "fill", func() {})
			}
			live := q.Len()
			if q.Cancel(ref) {
				t.Fatal("stale ref canceled a recycled event")
			}
			if q.Len() != live {
				t.Fatalf("stale Cancel changed Len %d -> %d", live, q.Len())
			}
		})
	}
}

// schedOp is one scripted scheduler operation for the differential
// drivers: push at a (bounded) time, cancel an earlier push, or pop.
type schedOp struct {
	kind   uint8 // 0 push, 1 cancel, 2 pop
	at     Time
	prio   int
	target int // cancel: index into the pushes so far
}

// runScript drives one scheduler through a script and returns the pop
// order as (Time, Priority, Label) triples plus the Cancel results.
func runScript(q Scheduler, ops []schedOp) (pops []string, cancels []bool, lens []int) {
	var refs []EventRef
	serial := 0
	for _, op := range ops {
		switch op.kind {
		case 0:
			label := pushLabels[serial%len(pushLabels)]
			serial++
			refs = append(refs, q.Push(op.at, op.prio, label, func() {}))
		case 1:
			if len(refs) > 0 {
				cancels = append(cancels, q.Cancel(refs[op.target%len(refs)]))
			}
		case 2:
			if e := q.Pop(); e == nil {
				pops = append(pops, "<nil>")
			} else {
				pops = append(pops, e.Time.String()+"/"+itoa(e.Priority)+"/"+e.Label)
			}
		}
		lens = append(lens, q.Len())
	}
	for {
		e := q.Pop()
		if e == nil {
			break
		}
		pops = append(pops, e.Time.String()+"/"+itoa(e.Priority)+"/"+e.Label)
	}
	return pops, cancels, lens
}

var pushLabels = []string{"a", "b", "c", "d", "e", "f", "g", "h"}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// decodeOps turns fuzz bytes into an op script. Times cover the wheel's
// interesting regimes: the current tick, the ring window (< 1 s at the
// default resolution), and the overflow heap (far future).
func decodeOps(data []byte) []schedOp {
	var ops []schedOp
	for i := 0; i+3 < len(data); i += 4 {
		op := schedOp{kind: data[i] % 3}
		raw := int(data[i+1])<<8 | int(data[i+2])
		switch data[i+3] % 4 {
		case 0: // sub-tick times around zero
			op.at = Time(raw) / 65536
		case 1: // within the ring window
			op.at = Time(raw) / 256
		case 2: // spans ring and overflow
			op.at = Time(raw)
		case 3: // deep overflow
			op.at = Time(raw) * 1024
		}
		op.prio = int(data[i+1] % 3)
		op.target = raw
		ops = append(ops, op)
	}
	return ops
}

// diffSchedulers runs one script through both implementations and
// reports the first divergence, if any.
func diffSchedulers(t *testing.T, ops []schedOp) {
	t.Helper()
	hp, hc, hl := runScript(NewHeapQueue(), ops)
	wp, wc, wl := runScript(NewWheelQueue(), ops)
	if len(hp) != len(wp) {
		t.Fatalf("pop counts diverge: heap %d, wheel %d", len(hp), len(wp))
	}
	for i := range hp {
		if hp[i] != wp[i] {
			t.Fatalf("pop %d diverges: heap %s, wheel %s", i, hp[i], wp[i])
		}
	}
	if len(hc) != len(wc) {
		t.Fatalf("cancel counts diverge: heap %d, wheel %d", len(hc), len(wc))
	}
	for i := range hc {
		if hc[i] != wc[i] {
			t.Fatalf("cancel %d diverges: heap %v, wheel %v", i, hc[i], wc[i])
		}
	}
	for i := range hl {
		if hl[i] != wl[i] {
			t.Fatalf("Len after op %d diverges: heap %d, wheel %d", i, hl[i], wl[i])
		}
	}
}

// TestSchedulerDifferentialRandomized feeds identical randomized
// Push/Cancel/Pop interleavings to both schedulers and requires
// identical pop order, cancel outcomes, and live counts throughout.
func TestSchedulerDifferentialRandomized(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		r := NewRNG(seed)
		n := 4 + r.Intn(400)
		data := make([]byte, 4*n)
		for i := range data {
			data[i] = byte(r.Intn(256))
		}
		diffSchedulers(t, decodeOps(data))
	}
}

// FuzzSchedulerDifferential is the open-ended form of the randomized
// differential: any byte string decodes to an op script, and the two
// schedulers must stay in lockstep on it.
func FuzzSchedulerDifferential(f *testing.F) {
	// Seed corpus: a push/pop mix in each time regime, a cancel-heavy
	// script, and a same-timestamp burst.
	f.Add([]byte{0, 1, 0, 0, 0, 2, 0, 1, 2, 0, 0, 0, 0, 3, 0, 2, 2, 0, 0, 0})
	f.Add([]byte{0, 0, 10, 3, 0, 0, 10, 3, 0, 0, 10, 3, 2, 0, 0, 0, 2, 0, 0, 0})
	f.Add([]byte{0, 1, 1, 1, 1, 0, 0, 0, 1, 0, 1, 0, 0, 2, 2, 2, 1, 0, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			return // bound script length; long scripts add time, not coverage
		}
		diffSchedulers(t, decodeOps(data))
	})
}

// TestDrainLoopZeroAllocs is the tentpole's zero-alloc claim as a test:
// once the pool is warm, a steady-state schedule→fire→reschedule loop
// allocates nothing, on either scheduler.
func TestDrainLoopZeroAllocs(t *testing.T) {
	for name, mk := range schedulers() {
		t.Run(name, func(t *testing.T) {
			s := NewSimulator(WithScheduler(mk()))
			// Steady-state model: each firing reschedules itself a few
			// times, so Push always reuses a recycled Event.
			var tick func()
			hops := 0
			tick = func() {
				if hops > 0 {
					hops--
					s.After(0.25, "tick", tick)
				}
			}
			// Warm the pool and the wheel's batch buffers.
			hops = 64
			s.After(0.25, "tick", tick)
			if err := s.Run(); err != nil {
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(50, func() {
				hops = 16
				s.After(0.25, "tick", tick)
				if err := s.Run(); err != nil {
					t.Fatal(err)
				}
			})
			if avg > 0.5 {
				t.Errorf("drain loop allocates %.2f allocs/run, want ~0", avg)
			}
		})
	}
}
