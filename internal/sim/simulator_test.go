package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSimulatorRunsEventsInTimeOrder(t *testing.T) {
	s := NewSimulator()
	var order []string
	s.Schedule(3, "c", func() { order = append(order, "c") })
	s.Schedule(1, "a", func() { order = append(order, "a") })
	s.Schedule(2, "b", func() { order = append(order, "b") })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a", "b", "c"}
	for i, w := range want {
		if order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 3 {
		t.Errorf("Now = %v, want 3", s.Now())
	}
	if s.Executed != 3 {
		t.Errorf("Executed = %d, want 3", s.Executed)
	}
}

func TestSimultaneousEventsRunInScheduleOrder(t *testing.T) {
	s := NewSimulator()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, "e", func() { order = append(order, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events out of schedule order: %v", order)
		}
	}
}

func TestPriorityBreaksTies(t *testing.T) {
	s := NewSimulator()
	var order []string
	s.ScheduleWithPriority(1, 5, "low", func() { order = append(order, "low") })
	s.ScheduleWithPriority(1, 1, "high", func() { order = append(order, "high") })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if order[0] != "high" || order[1] != "low" {
		t.Fatalf("priority tie-break failed: %v", order)
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	s := NewSimulator()
	var at Time
	s.Schedule(10, "outer", func() {
		s.After(5, "inner", func() { at = s.Now() })
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 15 {
		t.Errorf("inner fired at %v, want 15", at)
	}
}

func TestCancelPreventsExecution(t *testing.T) {
	s := NewSimulator()
	fired := false
	e := s.Schedule(1, "x", func() { fired = true })
	if !s.Cancel(e) {
		t.Fatal("Cancel returned false for pending event")
	}
	if s.Cancel(e) {
		t.Fatal("second Cancel should return false")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Error("canceled event fired")
	}
}

func TestStopHaltsRun(t *testing.T) {
	s := NewSimulator()
	n := 0
	var step func()
	step = func() {
		n++
		if n == 3 {
			s.Stop()
		}
		s.After(1, "step", step)
	}
	s.After(1, "step", step)
	if err := s.Run(); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if n != 3 {
		t.Errorf("executed %d steps, want 3", n)
	}
}

func TestRunUntilLeavesLaterEventsQueued(t *testing.T) {
	s := NewSimulator()
	var fired []Time
	for _, at := range []Time{1, 2, 3, 10} {
		at := at
		s.Schedule(at, "e", func() { fired = append(fired, at) })
	}
	if err := s.RunUntil(5); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(fired) != 3 {
		t.Fatalf("fired %v, want 3 events", fired)
	}
	if s.Now() != 5 {
		t.Errorf("Now = %v, want 5", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", s.Pending())
	}
}

func TestHorizonStopsRun(t *testing.T) {
	s := NewSimulator()
	s.Horizon = 5
	fired := 0
	for _, at := range []Time{1, 4, 6} {
		s.Schedule(at, "e", func() { fired++ })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 2 {
		t.Errorf("fired = %d, want 2", fired)
	}
	if s.Now() != 5 {
		t.Errorf("Now = %v, want horizon 5", s.Now())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewSimulator()
	s.Schedule(5, "x", func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.Schedule(1, "past", func() {})
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestCanceledHeadSkipped(t *testing.T) {
	for name, q := range map[string]Scheduler{"heap": NewHeapQueue(), "wheel": NewWheelQueue()} {
		e1 := q.Push(1, 0, "a", func() {})
		q.Push(2, 0, "b", func() {})
		q.Cancel(e1)
		got := q.Pop()
		if got == nil || got.Label != "b" {
			t.Fatalf("%s: Pop = %v, want event b", name, got)
		}
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{TimeInf, "+inf"},
		{Time(2), "2s"},
		{Time(0.5), "500ms"},
		{Time(2e-6), "2µs"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", float64(c.t), got, c.want)
		}
	}
}

func TestTimeHelpers(t *testing.T) {
	if MaxTime(1, 2) != 2 || MinTime(1, 2) != 1 {
		t.Error("MaxTime/MinTime broken")
	}
	if !TimeInf.IsInf() {
		t.Error("TimeInf.IsInf = false")
	}
	if Time(3).Add(2) != 5 || Time(3).Sub(2) != 1 {
		t.Error("Add/Sub broken")
	}
	if !Time(1).Before(2) || !Time(2).After(1) {
		t.Error("Before/After broken")
	}
	if math.Abs(Time(1.5).Millis()-1500) > 1e-9 {
		t.Error("Millis broken")
	}
	if Time(-1).Duration() != 0 {
		t.Error("negative duration should clamp to 0")
	}
	if TimeInf.Duration() <= 0 {
		t.Error("inf duration should saturate positive")
	}
}

func TestSchedulerMatchesReferenceOrdering(t *testing.T) {
	// Property: popping a scheduler yields events sorted by
	// (time, priority, insertion order), matching a reference sort —
	// for both implementations.
	for name, mk := range map[string]func() Scheduler{
		"heap":  func() Scheduler { return NewHeapQueue() },
		"wheel": func() Scheduler { return NewWheelQueue() },
	} {
		f := func(seed uint64) bool {
			r := NewRNG(seed)
			q := mk()
			type ref struct {
				t    Time
				prio int
				seq  int
			}
			var refs []ref
			n := 2 + r.Intn(200)
			for i := 0; i < n; i++ {
				at := Time(r.Intn(50))
				prio := r.Intn(3)
				q.Push(at, prio, "e", func() {})
				refs = append(refs, ref{at, prio, i})
			}
			sort.SliceStable(refs, func(i, j int) bool {
				if refs[i].t != refs[j].t {
					return refs[i].t < refs[j].t
				}
				return refs[i].prio < refs[j].prio
			})
			for _, want := range refs {
				got := q.Pop()
				if got == nil || got.Time != want.t || got.Priority != want.prio {
					return false
				}
			}
			return q.Pop() == nil
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}
