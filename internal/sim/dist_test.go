package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleMean(d Distribution, seed uint64, n int) float64 {
	r := NewRNG(seed)
	var sum float64
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return sum / float64(n)
}

func TestConstant(t *testing.T) {
	d := Constant{Value: 4.2}
	if d.Sample(NewRNG(1)) != 4.2 || d.Mean() != 4.2 {
		t.Error("Constant broken")
	}
}

func TestUniformMeanAndSupport(t *testing.T) {
	d := Uniform{Lo: 2, Hi: 6}
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		v := d.Sample(r)
		if v < 2 || v >= 6 {
			t.Fatalf("uniform sample %v out of [2,6)", v)
		}
	}
	if m := sampleMean(d, 2, 100000); math.Abs(m-4) > 0.05 {
		t.Errorf("uniform sample mean %v, want ≈4", m)
	}
	if d.Mean() != 4 {
		t.Errorf("Mean = %v", d.Mean())
	}
}

func TestExponentialMean(t *testing.T) {
	d := Exponential{Rate: 0.5}
	if d.Mean() != 2 {
		t.Errorf("Mean = %v, want 2", d.Mean())
	}
	if m := sampleMean(d, 3, 200000); math.Abs(m-2) > 0.05 {
		t.Errorf("sample mean %v, want ≈2", m)
	}
}

func TestNormalTruncatesAtZero(t *testing.T) {
	d := Normal{Mu: 0.1, Sigma: 5}
	r := NewRNG(4)
	for i := 0; i < 1000; i++ {
		if d.Sample(r) < 0 {
			t.Fatal("normal sample went negative")
		}
	}
}

func TestLogNormalMean(t *testing.T) {
	d := LogNormal{Mu: 0, Sigma: 0.25}
	want := math.Exp(0.25 * 0.25 / 2)
	if math.Abs(d.Mean()-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", d.Mean(), want)
	}
	if m := sampleMean(d, 5, 200000); math.Abs(m-want) > 0.02 {
		t.Errorf("sample mean %v, want ≈%v", m, want)
	}
}

func TestParetoMean(t *testing.T) {
	d := Pareto{Xm: 1, Alpha: 3}
	if d.Mean() != 1.5 {
		t.Errorf("Mean = %v, want 1.5", d.Mean())
	}
	if !math.IsInf(Pareto{Xm: 1, Alpha: 1}.Mean(), 1) {
		t.Error("alpha<=1 should have infinite mean")
	}
	r := NewRNG(6)
	for i := 0; i < 1000; i++ {
		if d.Sample(r) < 1 {
			t.Fatal("pareto sample below xm")
		}
	}
}

func TestChoiceValidation(t *testing.T) {
	if _, err := NewChoice(nil, nil); err == nil {
		t.Error("empty choice should error")
	}
	if _, err := NewChoice([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := NewChoice([]float64{1}, []float64{-1}); err == nil {
		t.Error("negative weight should error")
	}
	if _, err := NewChoice([]float64{1}, []float64{0}); err == nil {
		t.Error("zero total weight should error")
	}
}

func TestChoiceDistribution(t *testing.T) {
	c, err := NewChoice([]float64{1, 10}, []float64{3, 1})
	if err != nil {
		t.Fatal(err)
	}
	wantMean := (1*3 + 10*1) / 4.0
	if math.Abs(c.Mean()-wantMean) > 1e-12 {
		t.Errorf("Mean = %v, want %v", c.Mean(), wantMean)
	}
	r := NewRNG(7)
	counts := map[float64]int{}
	for i := 0; i < 40000; i++ {
		counts[c.Sample(r)]++
	}
	ratio := float64(counts[1]) / float64(counts[10])
	if math.Abs(ratio-3) > 0.2 {
		t.Errorf("weight ratio = %v, want ≈3", ratio)
	}
}

func TestDistributionsNonNegative(t *testing.T) {
	dists := []Distribution{
		Constant{1}, Uniform{0, 5}, Exponential{Rate: 2},
		Normal{Mu: 1, Sigma: 0.3}, LogNormal{Mu: 0, Sigma: 1}, Pareto{Xm: 0.5, Alpha: 2},
	}
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for _, d := range dists {
			for i := 0; i < 10; i++ {
				if d.Sample(r) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistributionStrings(t *testing.T) {
	dists := []Distribution{
		Constant{1}, Uniform{0, 5}, Exponential{Rate: 2},
		Normal{Mu: 1, Sigma: 0.3}, LogNormal{Mu: 0, Sigma: 1}, Pareto{Xm: 0.5, Alpha: 2},
	}
	for _, d := range dists {
		if d.String() == "" {
			t.Errorf("%T has empty String()", d)
		}
	}
}
