package sim

import (
	"container/heap"
	"math/bits"
	"slices"
)

const (
	// wheelSlots is the ring size (power of two). With the default
	// resolution of 1024 ticks/second the ring spans one second of
	// virtual time; events further out wait in the overflow heap.
	wheelSlots = 1 << 10
	wheelMask  = wheelSlots - 1

	defaultTicksPerSec = 1024

	// maxTick bounds quantized time so that float→int conversion can
	// never overflow: times at or beyond it (including +Inf) are clamped
	// and served from the overflow heap, ordered by their exact Time.
	maxTick = int64(1) << 62
	minTick = -maxTick
)

// WheelQueue is a hierarchical timing-wheel Scheduler: a ring of
// wheelSlots single-tick buckets around a cursor, an overflow min-heap for
// events beyond the ring's window, and a sorted current-tick batch that
// same-timestamp events are served from. For the dominant DES access
// pattern — pop the earliest event, push a handful of near-future ones —
// Push and Pop are O(1); events parked in the overflow pay one heap pass
// when the cursor window reaches them.
//
// Ordering is identical to HeapQueue: the exact (Time, Priority, seq)
// total order, not the quantized tick — ticks only bucket events, and each
// bucket is sorted by real time before it is served.
type WheelQueue struct {
	seq   uint64
	live  int
	pool  eventPool
	fired *Event // last popped event, recycled on the next Pop

	ticksPerSec float64
	cursor      int64 // tick of the batch currently being served
	slots       [wheelSlots][]*Event
	occ         [wheelSlots / 64]uint64
	ringN       int // events parked in ring slots (incl. canceled)
	cur         []*Event
	curIdx      int
	overflow    eventHeap
}

// NewWheelQueue returns an empty timing-wheel scheduler at the default
// resolution (1024 ticks per simulated second).
func NewWheelQueue() *WheelQueue { return newWheelQueue(defaultTicksPerSec) }

func newWheelQueue(ticksPerSec float64) *WheelQueue {
	return &WheelQueue{ticksPerSec: ticksPerSec}
}

// Len returns the number of live (non-canceled) queued events.
func (q *WheelQueue) Len() int { return q.live }

// tickOf quantizes a time to a wheel tick. Truncation toward zero is fine:
// any monotone bucketing works, because buckets are re-sorted by exact
// Time before serving. Out-of-range and NaN times clamp to the sentinel
// ticks so the conversion itself is always defined.
func (q *WheelQueue) tickOf(t Time) int64 {
	f := float64(t) * q.ticksPerSec
	if f != f { // NaN: park in the overflow, exact-Time order still applies
		return maxTick
	}
	if f >= float64(maxTick) {
		return maxTick
	}
	if f <= float64(minTick) {
		return minTick
	}
	return int64(f)
}

func (q *WheelQueue) structEmpty() bool {
	return q.ringN == 0 && q.curIdx >= len(q.cur) && len(q.overflow) == 0
}

// Push enqueues an event at time t and returns a handle for canceling it.
func (q *WheelQueue) Push(t Time, priority int, label string, fn Handler) EventRef {
	e := q.pool.alloc()
	q.seq++
	e.Time, e.Priority, e.Label, e.fn, e.seq = t, priority, label, fn, q.seq
	e.state = stateQueued
	tk := q.tickOf(t)
	e.tick = tk
	q.live++
	switch {
	case q.structEmpty():
		// Re-anchor the cursor on the first event so the ring window
		// always starts where the work is.
		q.cur = append(q.cur[:0], e)
		q.curIdx = 0
		q.cursor = tk
	case tk <= q.cursor:
		// Current (or past) tick: ordered insert into the live batch.
		q.insertCur(e)
	case tk < q.cursor+wheelSlots:
		sl := int(tk & wheelMask)
		q.slots[sl] = append(q.slots[sl], e)
		q.occ[sl>>6] |= 1 << uint(sl&63)
		q.ringN++
	default:
		heap.Push(&q.overflow, e)
	}
	return EventRef{e: e, gen: e.gen}
}

// insertCur splices an event into the sorted current batch, after any
// events it ties with (it carries the newest seq, so this keeps the total
// order stable).
func (q *WheelQueue) insertCur(e *Event) {
	lo, hi := q.curIdx, len(q.cur)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if eventLess(e, q.cur[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	q.cur = append(q.cur, nil)
	copy(q.cur[lo+1:], q.cur[lo:])
	q.cur[lo] = e
}

// Peek returns the earliest live event without removing it, or nil.
func (q *WheelQueue) Peek() *Event { return q.ensureHead() }

// Pop removes and returns the earliest live event, or nil if none remain.
// The returned event is valid until the next Pop.
func (q *WheelQueue) Pop() *Event {
	if q.fired != nil {
		q.pool.recycle(q.fired)
		q.fired = nil
	}
	e := q.ensureHead()
	if e == nil {
		return nil
	}
	q.cur[q.curIdx] = nil
	q.curIdx++
	e.state = stateFired
	q.live--
	q.fired = e
	return e
}

// Cancel marks a pending event so it will never fire. It returns true only
// if ref was still pending; stale or repeated cancels are no-ops.
func (q *WheelQueue) Cancel(ref EventRef) bool {
	if !ref.Pending() {
		return false
	}
	ref.e.state = stateCanceled
	q.live--
	return true
}

// ensureHead positions the next live event at cur[curIdx], reclaiming
// canceled events and advancing the cursor across ring slots and overflow
// refills as needed. It returns that event, or nil when the queue is empty.
func (q *WheelQueue) ensureHead() *Event {
	for {
		for q.curIdx < len(q.cur) {
			e := q.cur[q.curIdx]
			if e.state != stateCanceled {
				return e
			}
			q.cur[q.curIdx] = nil
			q.curIdx++
			q.pool.recycle(e)
		}
		if !q.advance() {
			return nil
		}
	}
}

// advance moves the cursor to the next occupied tick. Overflow events whose
// ticks have entered the ring window since the last advance are migrated
// first — without that, a fast-moving cursor could serve a later ring tick
// before an earlier overflow one. Then the nearest occupied ring slot is
// drained into the current batch; when the ring is empty too, the cursor
// fast-forwards to the overflow's earliest tick and pulls the whole new
// window out of the heap. Returns false when no events remain anywhere.
func (q *WheelQueue) advance() bool {
	q.cur = q.cur[:0]
	q.curIdx = 0
	q.migrateOverflow()
	if q.ringN == 0 && len(q.cur) == 0 {
		for len(q.overflow) > 0 && q.overflow[0].state == stateCanceled {
			q.pool.recycle(heap.Pop(&q.overflow).(*Event))
		}
		if len(q.overflow) == 0 {
			return false
		}
		q.cursor = q.overflow[0].tick
		// The minimum lands in cur (tick == cursor); the rest of the
		// window fills ring slots.
		q.migrateOverflow()
	}
	if len(q.cur) > 0 {
		return true
	}
	sl := q.nextOccupied(int((q.cursor + 1) & wheelMask))
	if sl < 0 {
		panic("sim: wheel ring accounting broken")
	}
	batch := q.slots[sl]
	q.slots[sl] = q.cur // donate the spent batch's backing array
	q.occ[sl>>6] &^= 1 << uint(sl&63)
	q.ringN -= len(batch)
	q.cursor += (int64(sl) - q.cursor) & wheelMask
	slices.SortFunc(batch, eventCmp)
	q.cur = batch
	return true
}

// migrateOverflow moves overflow events whose tick now falls inside the
// ring window into their slot (or straight into the current batch when
// they tie the cursor tick). The heap pops in exact event order, so each
// destination receives them already sorted.
func (q *WheelQueue) migrateOverflow() {
	for len(q.overflow) > 0 {
		e := q.overflow[0]
		if e.state == stateCanceled {
			q.pool.recycle(heap.Pop(&q.overflow).(*Event))
			continue
		}
		if e.tick >= q.cursor+wheelSlots {
			return
		}
		heap.Pop(&q.overflow)
		if e.tick <= q.cursor {
			q.insertCur(e)
		} else {
			sl := int(e.tick & wheelMask)
			q.slots[sl] = append(q.slots[sl], e)
			q.occ[sl>>6] |= 1 << uint(sl&63)
			q.ringN++
		}
	}
}

// nextOccupied scans the occupancy bitmap circularly from slot `from` and
// returns the first occupied slot, or -1 if the ring is empty.
func (q *WheelQueue) nextOccupied(from int) int {
	w := from >> 6
	bitsW := q.occ[w] &^ ((1 << uint(from&63)) - 1)
	for i := 0; i <= len(q.occ); i++ {
		if bitsW != 0 {
			return w<<6 | bits.TrailingZeros64(bitsW)
		}
		w++
		if w == len(q.occ) {
			w = 0
		}
		bitsW = q.occ[w]
	}
	return -1
}

func eventCmp(a, b *Event) int {
	if eventLess(a, b) {
		return -1
	}
	if eventLess(b, a) {
		return 1
	}
	return 0
}
