package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (PCG-XSH-RR 64/32). It is not cryptographically secure; it exists so
// simulations are reproducible across platforms without depending on the
// global math/rand state.
type RNG struct {
	state uint64
	inc   uint64
	// seed is the construction seed, kept so SplitSeed stays a pure
	// function of (seed, stream) no matter how many draws were consumed.
	seed uint64
}

const pcgMult = 6364136223846793005

// NewRNG returns a generator seeded deterministically from seed. Two RNGs
// with the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{inc: (seed << 1) | 1, seed: seed}
	r.state = splitmix64(seed)
	r.Uint32() // advance away from the low-entropy initial state
	return r
}

// Split returns a new generator whose stream is independent of r's, derived
// deterministically from r's seed material and the given stream label. It is
// the way to give each model component its own stream.
func (r *RNG) Split(stream uint64) *RNG {
	return NewRNG(r.SplitSeed(stream))
}

// SplitSeed returns the seed Split(stream) would use, without constructing
// the generator. It is a pure function of r's construction seed and the
// stream label — draws consumed from r never change it — so the sweep
// engine can give replica i the seed SplitSeed(i) no matter which worker
// runs it, or in what order.
func (r *RNG) SplitSeed(stream uint64) uint64 {
	return splitmix64(splitmix64(r.seed) ^ splitmix64(stream+0x9e3779b97f4a7c15))
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 {
	old := r.state
	r.state = old*pcgMult + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method on 32-bit draws covers all
	// realistic model sizes; fall back to modulo for huge n.
	if n <= math.MaxInt32 {
		bound := uint32(n)
		for {
			v := r.Uint32()
			m := uint64(v) * uint64(bound)
			lo := uint32(m)
			if lo >= bound || lo >= -bound%bound {
				return int(m >> 32)
			}
		}
	}
	return int(r.Uint64() % uint64(n))
}

// IntRange returns a uniform value in [lo, hi] inclusive. It panics if
// hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		panic("sim: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Shuffle permutes the first n items via swap with a Fisher-Yates walk.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// NormFloat64 returns a standard normal deviate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential deviate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}
