package sim

import (
	"fmt"
	"math"
	"sort"
)

// Counter accumulates scalar observations with Welford's online algorithm,
// so means and variances stay numerically stable over long runs.
type Counter struct {
	n        uint64
	mean     float64
	m2       float64
	min, max float64
	sum      float64
}

// Observe records one value.
func (c *Counter) Observe(x float64) {
	c.n++
	if c.n == 1 {
		c.min, c.max = x, x
	} else {
		if x < c.min {
			c.min = x
		}
		if x > c.max {
			c.max = x
		}
	}
	c.sum += x
	delta := x - c.mean
	c.mean += delta / float64(c.n)
	c.m2 += delta * (x - c.mean)
}

// N returns the number of observations.
func (c *Counter) N() uint64 { return c.n }

// Sum returns the running sum of observations.
func (c *Counter) Sum() float64 { return c.sum }

// Mean returns the arithmetic mean, or 0 with no observations.
func (c *Counter) Mean() float64 { return c.mean }

// Variance returns the sample variance (n-1 denominator).
func (c *Counter) Variance() float64 {
	if c.n < 2 {
		return 0
	}
	return c.m2 / float64(c.n-1)
}

// StdDev returns the sample standard deviation.
func (c *Counter) StdDev() float64 { return math.Sqrt(c.Variance()) }

// Min returns the smallest observation, or 0 with no observations.
func (c *Counter) Min() float64 { return c.min }

// Max returns the largest observation, or 0 with no observations.
func (c *Counter) Max() float64 { return c.max }

// String summarizes the counter.
func (c *Counter) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g", c.n, c.Mean(), c.StdDev(), c.min, c.max)
}

// Series keeps all observations so exact quantiles can be computed; use it
// for experiment outputs, not for unbounded streams.
type Series struct {
	xs     []float64
	sorted bool
}

// Observe appends one value.
func (s *Series) Observe(x float64) {
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of observations.
func (s *Series) N() int { return len(s.xs) }

// Values returns a copy of the observations in insertion order is NOT
// guaranteed after a quantile query; callers needing order should copy first.
func (s *Series) Values() []float64 { return append([]float64(nil), s.xs...) }

// Mean returns the arithmetic mean, or 0 with no observations.
func (s *Series) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) using linear interpolation
// between closest ranks. It returns 0 with no observations.
func (s *Series) Quantile(q float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if q <= 0 {
		return s.xs[0]
	}
	if q >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := q * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 0.5 quantile.
func (s *Series) Median() float64 { return s.Quantile(0.5) }

// Summary condenses replicated observations — one value per independent
// replication — into the experiment-report form: mean, sample standard
// deviation, and the half-width of the 95% confidence interval of the mean
// (Student's t for small samples, the normal critical value beyond 30
// degrees of freedom).
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	// CI95 is the half-width of the 95% confidence interval of the mean:
	// the interval is Mean ± CI95. Zero when N < 2.
	CI95 float64
}

// String renders the summary as "mean ± ci95 (sd=…, n=…)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.3g (sd=%.3g, n=%d)", s.Mean, s.CI95, s.StdDev, s.N)
}

// tCritical95 holds two-sided 95% Student-t critical values indexed by
// degrees of freedom (index 0 unused).
var tCritical95 = []float64{
	0, 12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// Summarize computes the Summary of one value per replication.
func Summarize(xs []float64) Summary {
	var c Counter
	for _, x := range xs {
		c.Observe(x)
	}
	out := Summary{N: len(xs), Mean: c.Mean(), StdDev: c.StdDev()}
	if out.N >= 2 {
		df := out.N - 1
		t := 1.960
		if df < len(tCritical95) {
			t = tCritical95[df]
		}
		out.CI95 = t * out.StdDev / math.Sqrt(float64(out.N))
	}
	return out
}

// TimeWeighted tracks a piecewise-constant quantity (queue length,
// utilization) and integrates it over virtual time.
type TimeWeighted struct {
	last     Time
	value    float64
	integral float64
	started  bool
	max      float64
}

// Set records that the quantity changed to v at time t. Times must be
// non-decreasing.
func (w *TimeWeighted) Set(t Time, v float64) {
	if w.started {
		if t < w.last {
			panic(fmt.Sprintf("sim: TimeWeighted time went backwards: %v < %v", t, w.last))
		}
		w.integral += w.value * float64(t-w.last)
	} else {
		w.started = true
		w.max = v
	}
	if v > w.max {
		w.max = v
	}
	w.last = t
	w.value = v
}

// Add shifts the current value by delta at time t.
func (w *TimeWeighted) Add(t Time, delta float64) { w.Set(t, w.value+delta) }

// Value returns the current quantity.
func (w *TimeWeighted) Value() float64 { return w.value }

// Max returns the largest value seen.
func (w *TimeWeighted) Max() float64 { return w.max }

// MeanOver returns the time-average of the quantity from the first Set
// through time t.
func (w *TimeWeighted) MeanOver(t Time) float64 {
	if !w.started || t <= 0 {
		return 0
	}
	integral := w.integral + w.value*float64(t-w.last)
	return integral / float64(t)
}

// Histogram buckets observations into fixed-width bins for coarse shape
// inspection in experiment output.
type Histogram struct {
	Lo, Width float64
	bins      []uint64
	under     uint64
	over      uint64
	n         uint64
}

// NewHistogram creates a histogram covering [lo, lo+width*nbins) with
// nbins equal bins.
func NewHistogram(lo, width float64, nbins int) *Histogram {
	if width <= 0 || nbins <= 0 {
		panic("sim: histogram needs positive width and bins")
	}
	return &Histogram{Lo: lo, Width: width, bins: make([]uint64, nbins)}
}

// Observe records one value.
func (h *Histogram) Observe(x float64) {
	h.n++
	if x < h.Lo {
		h.under++
		return
	}
	i := int((x - h.Lo) / h.Width)
	if i >= len(h.bins) {
		h.over++
		return
	}
	h.bins[i]++
}

// N returns the observation count.
func (h *Histogram) N() uint64 { return h.n }

// Bin returns the count in bin i.
func (h *Histogram) Bin(i int) uint64 { return h.bins[i] }

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.bins) }

// Outliers returns counts below and above the covered range.
func (h *Histogram) Outliers() (under, over uint64) { return h.under, h.over }
