package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		c.Observe(x)
	}
	if c.N() != 8 {
		t.Errorf("N = %d", c.N())
	}
	if c.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", c.Mean())
	}
	// Sample variance of this classic set is 32/7.
	if math.Abs(c.Variance()-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", c.Variance(), 32.0/7)
	}
	if c.Min() != 2 || c.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", c.Min(), c.Max())
	}
	if c.Sum() != 40 {
		t.Errorf("Sum = %v", c.Sum())
	}
	if c.String() == "" {
		t.Error("empty String")
	}
}

func TestCounterEmptyAndSingle(t *testing.T) {
	var c Counter
	if c.Mean() != 0 || c.Variance() != 0 || c.StdDev() != 0 {
		t.Error("empty counter should report zeros")
	}
	c.Observe(3)
	if c.Variance() != 0 {
		t.Error("single observation variance should be 0")
	}
	if c.Min() != 3 || c.Max() != 3 {
		t.Error("single observation min/max")
	}
}

func TestCounterMatchesNaiveMoments(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		var c Counter
		var xs []float64
		n := 2 + r.Intn(100)
		for i := 0; i < n; i++ {
			x := r.Float64()*100 - 50
			xs = append(xs, x)
			c.Observe(x)
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(n-1)
		return math.Abs(c.Mean()-mean) < 1e-9 && math.Abs(c.Variance()-variance) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeriesQuantiles(t *testing.T) {
	var s Series
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i))
	}
	if s.N() != 100 {
		t.Errorf("N = %d", s.N())
	}
	if m := s.Median(); math.Abs(m-50.5) > 1e-9 {
		t.Errorf("Median = %v, want 50.5", m)
	}
	if q := s.Quantile(0); q != 1 {
		t.Errorf("Q0 = %v", q)
	}
	if q := s.Quantile(1); q != 100 {
		t.Errorf("Q1 = %v", q)
	}
	if q := s.Quantile(0.99); math.Abs(q-99.01) > 1e-9 {
		t.Errorf("Q99 = %v, want 99.01", q)
	}
	if m := s.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Errorf("Mean = %v", m)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Error("empty series should report zeros")
	}
}

func TestSeriesQuantileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		var s Series
		for i := 0; i < 50; i++ {
			s.Observe(r.Float64() * 10)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := s.Quantile(q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeWeightedIntegration(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 1)  // value 1 over [0,10)
	w.Set(10, 3) // value 3 over [10,20)
	if got := w.MeanOver(20); math.Abs(got-2) > 1e-12 {
		t.Errorf("MeanOver(20) = %v, want 2", got)
	}
	if w.Value() != 3 {
		t.Errorf("Value = %v", w.Value())
	}
	if w.Max() != 3 {
		t.Errorf("Max = %v", w.Max())
	}
}

func TestTimeWeightedAdd(t *testing.T) {
	var w TimeWeighted
	w.Set(0, 0)
	w.Add(5, 2)
	w.Add(10, -1)
	if w.Value() != 1 {
		t.Errorf("Value = %v, want 1", w.Value())
	}
	// integral = 0*5 + 2*5 + 1*10 = 20 over horizon 20
	if got := w.MeanOver(20); math.Abs(got-1) > 1e-12 {
		t.Errorf("MeanOver = %v, want 1", got)
	}
}

func TestTimeWeightedBackwardsPanics(t *testing.T) {
	var w TimeWeighted
	w.Set(5, 1)
	defer func() {
		if recover() == nil {
			t.Error("backwards time did not panic")
		}
	}()
	w.Set(4, 2)
}

func TestTimeWeightedEmptyMean(t *testing.T) {
	var w TimeWeighted
	if w.MeanOver(10) != 0 {
		t.Error("mean of unset TimeWeighted should be 0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 1, 5)
	for _, x := range []float64{-1, 0, 0.5, 1.2, 4.9, 5.0, 100} {
		h.Observe(x)
	}
	if h.N() != 7 {
		t.Errorf("N = %d", h.N())
	}
	under, over := h.Outliers()
	if under != 1 || over != 2 {
		t.Errorf("outliers = %d/%d, want 1/2", under, over)
	}
	if h.Bin(0) != 2 {
		t.Errorf("bin0 = %d, want 2", h.Bin(0))
	}
	if h.Bin(1) != 1 || h.Bin(4) != 1 {
		t.Errorf("bin1=%d bin4=%d", h.Bin(1), h.Bin(4))
	}
	if h.Bins() != 5 {
		t.Errorf("Bins = %d", h.Bins())
	}
}

func TestHistogramValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid histogram did not panic")
		}
	}()
	NewHistogram(0, 0, 5)
}

func TestSummarize(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 || s.CI95 != 0 {
		t.Errorf("empty summary = %+v", s)
	}
	if s := Summarize([]float64{7}); s.N != 1 || s.Mean != 7 || s.CI95 != 0 {
		t.Errorf("singleton summary = %+v", s)
	}
	// 1..5: mean 3, sd sqrt(2.5), CI95 = t(4)*sd/sqrt(5) = 2.776*1.5811/2.2361.
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || math.Abs(s.Mean-3) > 1e-12 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("sd = %v", s.StdDev)
	}
	want := 2.776 * math.Sqrt(2.5) / math.Sqrt(5)
	if math.Abs(s.CI95-want) > 1e-9 {
		t.Errorf("ci95 = %v, want %v", s.CI95, want)
	}
	if s.String() == "" {
		t.Error("summary must render")
	}
	// Beyond the t-table the normal critical value takes over.
	big := make([]float64, 40)
	for i := range big {
		big[i] = float64(i)
	}
	if s := Summarize(big); s.CI95 <= 0 {
		t.Errorf("large-n ci95 = %v", s.CI95)
	}
}

func TestSplitSeedOrderIndependent(t *testing.T) {
	// SplitSeed must be a pure function of (base seed, stream): calling it
	// in any order, or after consuming draws, yields the same seeds.
	a := NewRNG(42)
	b := NewRNG(42)
	_ = b.Float64() // consuming draws must not change split seeds
	s0, s1 := a.SplitSeed(0), a.SplitSeed(1)
	if b.SplitSeed(1) != s1 || b.SplitSeed(0) != s0 {
		t.Error("SplitSeed depends on call order or RNG consumption")
	}
	if s0 == s1 {
		t.Error("distinct streams collided")
	}
	if NewRNG(43).SplitSeed(0) == s0 {
		t.Error("different base seeds produced the same split seed")
	}
}
