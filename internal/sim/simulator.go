package sim

import (
	"context"
	"errors"
	"fmt"
)

// ErrStopped is returned by Run when the simulation was halted via Stop
// before the event queue drained.
var ErrStopped = errors.New("sim: stopped")

// Simulator owns a virtual clock and a pending-event scheduler and executes
// events in deterministic order. It is single-threaded by design: handlers
// run on the caller's goroutine, one at a time, which keeps simulation
// state free of data races without locks.
type Simulator struct {
	queue   Scheduler
	now     Time
	stopped bool
	// Executed counts events that have fired.
	Executed uint64
	// Horizon, when non-zero, bounds Run: events after the horizon stay
	// queued and Run returns once the clock would pass it.
	Horizon Time
	// Trace, when non-nil, receives a line per executed event.
	Trace func(t Time, label string)
}

// Option configures a Simulator at construction time.
type Option func(*Simulator)

// WithScheduler selects the pending-event set implementation. The default
// is the timing wheel (NewWheelQueue); pass NewHeapQueue() for the binary
// heap. Any Scheduler obeying the (Time, Priority, seq) contract yields
// bit-identical simulations, so this is a pure performance knob — and the
// seam future parallel schedulers plug into.
func WithScheduler(q Scheduler) Option {
	return func(s *Simulator) { s.queue = q }
}

// NewSimulator returns a simulator with the clock at TimeZero.
func NewSimulator(opts ...Option) *Simulator {
	s := &Simulator{}
	for _, o := range opts {
		o(s)
	}
	if s.queue == nil {
		s.queue = NewWheelQueue()
	}
	return s
}

// Now returns the current virtual time.
func (s *Simulator) Now() Time { return s.now }

// Pending returns the number of live queued events. Canceled events do not
// count: a simulation whose remaining events were all canceled reports 0.
func (s *Simulator) Pending() int { return s.queue.Len() }

// Schedule enqueues fn to run at absolute time t. Scheduling in the past is
// an error that would break causality, so it panics — such a call is always
// a programming bug in a model, never an input condition.
func (s *Simulator) Schedule(t Time, label string, fn Handler) EventRef {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", label, t, s.now))
	}
	return s.queue.Push(t, 0, label, fn)
}

// After enqueues fn to run d seconds after the current time.
func (s *Simulator) After(d Time, label string, fn Handler) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v for %q", d, label))
	}
	return s.queue.Push(s.now+d, 0, label, fn)
}

// ScheduleWithPriority is Schedule with an explicit tie-break priority;
// lower priorities run first among simultaneous events.
func (s *Simulator) ScheduleWithPriority(t Time, priority int, label string, fn Handler) EventRef {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling %q at %v before now %v", label, t, s.now))
	}
	return s.queue.Push(t, priority, label, fn)
}

// Cancel prevents a scheduled event from firing. It is safe on zero,
// stale, or repeated refs; it returns true only when the event was still
// pending.
func (s *Simulator) Cancel(ref EventRef) bool { return s.queue.Cancel(ref) }

// Stop halts the run loop after the current handler returns.
func (s *Simulator) Stop() { s.stopped = true }

// Step executes the single earliest event, advancing the clock to its time.
// It returns false when no events remain.
func (s *Simulator) Step() bool {
	e := s.queue.Pop()
	if e == nil {
		return false
	}
	s.now = e.Time
	s.Executed++
	if s.Trace != nil {
		s.Trace(s.now, e.Label)
	}
	e.call()
	return true
}

// Run executes events until the queue drains, Stop is called, or the horizon
// (if set) is reached. It returns nil on a drained queue or horizon stop and
// ErrStopped if halted explicitly.
func (s *Simulator) Run() error { return s.RunContext(nil) }

// ctxCheckInterval is how many events RunContext executes between
// ctx.Err() polls. Checking on every event would put a synchronized read
// on the hot path; a diverging model fires thousands of events per
// millisecond, so a few hundred events of cancellation latency is
// negligible.
const ctxCheckInterval = 256

// RunContext is Run under a context: the event loop polls ctx.Err() every
// ctxCheckInterval events (and before the first one) and returns the
// context's error as soon as cancellation or a deadline is observed. The
// clock and all model state are left exactly where the last executed event
// put them, so callers can still read partial results. A nil ctx disables
// the checks entirely.
//
// Dispatch is batched per timestamp: once an event at time t has fired,
// every further event at exactly t runs without re-checking the horizon —
// the clock cannot cross it without advancing — so dense simultaneous
// bursts pay one boundary check, not one per event.
func (s *Simulator) RunContext(ctx context.Context) error {
	s.stopped = false
	sinceCheck := 0
	for {
		if s.stopped {
			return ErrStopped
		}
		if ctx != nil && sinceCheck == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		sinceCheck++
		if sinceCheck >= ctxCheckInterval {
			sinceCheck = 0
		}
		next := s.queue.Peek()
		if next == nil {
			return nil
		}
		if next.Time != s.now && s.Horizon > 0 && next.Time > s.Horizon {
			s.now = s.Horizon
			return nil
		}
		s.Step()
	}
}

// RunUntil executes events with time ≤ t and leaves the clock at
// min(t, last event time ≥ t boundary). Later events remain queued.
func (s *Simulator) RunUntil(t Time) error {
	s.stopped = false
	for {
		if s.stopped {
			return ErrStopped
		}
		next := s.queue.Peek()
		if next == nil || next.Time > t {
			if s.now < t {
				s.now = t
			}
			return nil
		}
		s.Step()
	}
}
