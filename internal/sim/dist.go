package sim

import (
	"fmt"
	"math"
)

// Distribution draws positive-valued samples, typically inter-arrival or
// service times, from a seeded RNG.
type Distribution interface {
	// Sample draws one value using r.
	Sample(r *RNG) float64
	// Mean returns the distribution's analytic mean (may be +Inf).
	Mean() float64
	// String describes the distribution and its parameters.
	String() string
}

// Constant always returns the same value.
type Constant struct{ Value float64 }

// Sample implements Distribution.
func (c Constant) Sample(*RNG) float64 { return c.Value }

// Mean implements Distribution.
func (c Constant) Mean() float64 { return c.Value }

func (c Constant) String() string { return fmt.Sprintf("Constant(%g)", c.Value) }

// Uniform draws uniformly from [Lo, Hi).
type Uniform struct{ Lo, Hi float64 }

// Sample implements Distribution.
func (u Uniform) Sample(r *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// Mean implements Distribution.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("Uniform[%g,%g)", u.Lo, u.Hi) }

// Exponential draws from an exponential distribution with the given Rate
// (events per unit time). Its mean is 1/Rate. A Poisson arrival process uses
// Exponential inter-arrival times.
type Exponential struct{ Rate float64 }

// Sample implements Distribution.
func (e Exponential) Sample(r *RNG) float64 { return r.ExpFloat64() / e.Rate }

// Mean implements Distribution.
func (e Exponential) Mean() float64 { return 1 / e.Rate }

func (e Exponential) String() string { return fmt.Sprintf("Exponential(rate=%g)", e.Rate) }

// Normal draws from a normal distribution truncated at zero (negative draws
// are clamped), suitable for service times with moderate variance.
type Normal struct{ Mu, Sigma float64 }

// Sample implements Distribution.
func (n Normal) Sample(r *RNG) float64 {
	v := n.Mu + n.Sigma*r.NormFloat64()
	if v < 0 {
		return 0
	}
	return v
}

// Mean implements Distribution. The reported mean ignores the truncation,
// which is negligible when Mu >> Sigma.
func (n Normal) Mean() float64 { return n.Mu }

func (n Normal) String() string { return fmt.Sprintf("Normal(µ=%g,σ=%g)", n.Mu, n.Sigma) }

// LogNormal draws from a log-normal distribution parameterized by the
// underlying normal's Mu and Sigma.
type LogNormal struct{ Mu, Sigma float64 }

// Sample implements Distribution.
func (l LogNormal) Sample(r *RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Mean implements Distribution.
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

func (l LogNormal) String() string { return fmt.Sprintf("LogNormal(µ=%g,σ=%g)", l.Mu, l.Sigma) }

// Pareto draws from a Pareto (heavy-tailed) distribution with scale Xm and
// shape Alpha. Heavy-tailed service times model the occasional huge grid job.
type Pareto struct {
	Xm    float64
	Alpha float64
}

// Sample implements Distribution.
func (p Pareto) Sample(r *RNG) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return p.Xm / math.Pow(u, 1/p.Alpha)
		}
	}
}

// Mean implements Distribution. It is +Inf for Alpha <= 1.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Xm / (p.Alpha - 1)
}

func (p Pareto) String() string { return fmt.Sprintf("Pareto(xm=%g,α=%g)", p.Xm, p.Alpha) }

// Choice draws one of Values with the corresponding (non-normalized)
// Weights. It panics at construction if the inputs are inconsistent.
type Choice struct {
	values  []float64
	cum     []float64
	totalWt float64
}

// NewChoice builds a weighted discrete distribution over values.
func NewChoice(values, weights []float64) (*Choice, error) {
	if len(values) == 0 || len(values) != len(weights) {
		return nil, fmt.Errorf("sim: choice needs equal, non-empty values/weights (%d vs %d)", len(values), len(weights))
	}
	c := &Choice{values: append([]float64(nil), values...)}
	c.cum = make([]float64, len(weights))
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("sim: choice weight %d is %v", i, w)
		}
		c.totalWt += w
		c.cum[i] = c.totalWt
	}
	if c.totalWt <= 0 {
		return nil, fmt.Errorf("sim: choice weights sum to %v", c.totalWt)
	}
	return c, nil
}

// Sample implements Distribution.
func (c *Choice) Sample(r *RNG) float64 {
	x := r.Float64() * c.totalWt
	for i, cw := range c.cum {
		if x < cw {
			return c.values[i]
		}
	}
	return c.values[len(c.values)-1]
}

// Mean implements Distribution.
func (c *Choice) Mean() float64 {
	var m, prev float64
	for i, v := range c.values {
		w := c.cum[i] - prev
		prev = c.cum[i]
		m += v * w / c.totalWt
	}
	return m
}

func (c *Choice) String() string { return fmt.Sprintf("Choice(%d values)", len(c.values)) }
