// Package node implements the paper's grid node model (Eq. 1, Fig. 3):
//
//	Node(NodeID, GPP Caps, RPE Caps, state)
//
// A node holds lists of processing elements — GPPs and RPEs (and GPUs, via
// the taxonomy's extensibility) — each characterized by a Table I
// capability set, plus dynamically changing state: which configurations an
// RPE currently holds, how much reconfigurable area is free, and which GPP
// cores are busy. Nodes are "generic and adaptive in adding/removing
// resources at runtime".
package node

import (
	"fmt"
	"strings"

	"repro/internal/capability"
	"repro/internal/fabric"
	"repro/internal/gpp"
	"repro/internal/gpu"
)

// Element is one processing element installed in a node. Exactly one of
// the backing models is non-nil, matching Kind.
type Element struct {
	// ID is unique within the node, e.g. "GPP0" or "RPE1" (Fig. 5 naming).
	ID   string
	Kind capability.Kind
	// GPP, Fabric, GPU back the element's behaviour.
	GPP    *gpp.Processor
	Fabric *fabric.Fabric
	GPU    *gpu.Device

	caps      capability.Set
	busyCores int  // GPP: cores currently executing tasks
	busyGPU   bool // GPU occupancy
}

// Caps returns the element's Table I capability set.
func (e *Element) Caps() capability.Set { return e.caps }

// IsRPE reports whether the element is a reconfigurable processing element.
func (e *Element) IsRPE() bool { return e.Kind == capability.KindFPGA }

// FreeCores returns idle GPP cores (0 for non-GPP elements).
func (e *Element) FreeCores() int {
	if e.GPP == nil {
		return 0
	}
	return e.GPP.Caps.Cores - e.busyCores
}

// AcquireCore marks one GPP core busy.
func (e *Element) AcquireCore() error {
	if e.GPP == nil {
		return fmt.Errorf("node: %s is not a GPP", e.ID)
	}
	if e.FreeCores() <= 0 {
		return fmt.Errorf("node: %s has no free cores", e.ID)
	}
	e.busyCores++
	return nil
}

// ReleaseCore returns one GPP core.
func (e *Element) ReleaseCore() error {
	if e.GPP == nil {
		return fmt.Errorf("node: %s is not a GPP", e.ID)
	}
	if e.busyCores <= 0 {
		return fmt.Errorf("node: %s has no busy cores", e.ID)
	}
	e.busyCores--
	return nil
}

// AcquireGPU marks the GPU busy.
func (e *Element) AcquireGPU() error {
	if e.GPU == nil {
		return fmt.Errorf("node: %s is not a GPU", e.ID)
	}
	if e.busyGPU {
		return fmt.Errorf("node: %s is busy", e.ID)
	}
	e.busyGPU = true
	return nil
}

// ReleaseGPU returns the GPU.
func (e *Element) ReleaseGPU() error {
	if e.GPU == nil {
		return fmt.Errorf("node: %s is not a GPU", e.ID)
	}
	if !e.busyGPU {
		return fmt.Errorf("node: %s is not busy", e.ID)
	}
	e.busyGPU = false
	return nil
}

// Busy reports whether any capacity of the element is in use.
func (e *Element) Busy() bool {
	switch {
	case e.GPP != nil:
		return e.busyCores > 0
	case e.Fabric != nil:
		return e.Fabric.State().BusyRegions > 0
	case e.GPU != nil:
		return e.busyGPU
	}
	return false
}

// StateLine renders the element's dynamic state in the Fig. 5 style.
func (e *Element) StateLine() string {
	switch {
	case e.GPP != nil:
		if e.busyCores == 0 {
			return fmt.Sprintf("%s: idle (%d cores free)", e.ID, e.FreeCores())
		}
		return fmt.Sprintf("%s: %d/%d cores busy", e.ID, e.busyCores, e.GPP.Caps.Cores)
	case e.Fabric != nil:
		return fmt.Sprintf("%s: %s", e.ID, e.Fabric.State())
	case e.GPU != nil:
		if e.busyGPU {
			return fmt.Sprintf("%s: busy", e.ID)
		}
		return fmt.Sprintf("%s: idle", e.ID)
	}
	return e.ID + ": ?"
}

// Node is a grid computing node.
type Node struct {
	ID string

	elems []*Element
	byID  map[string]*Element
	seq   map[capability.Kind]int
	// byKind caches the per-kind element lists (installation order),
	// rebuilt on install/remove, so the matchmaker's per-dispatch kind
	// scans allocate nothing.
	byKind map[capability.Kind][]*Element
}

// New creates an empty node.
func New(id string) (*Node, error) {
	if id == "" {
		return nil, fmt.Errorf("node: empty node ID")
	}
	return &Node{
		ID:   id,
		byID: make(map[string]*Element),
		seq:  make(map[capability.Kind]int),
	}, nil
}

func (n *Node) install(e *Element) *Element {
	n.elems = append(n.elems, e)
	n.byID[e.ID] = e
	if n.byKind == nil {
		n.byKind = make(map[capability.Kind][]*Element)
	}
	n.byKind[e.Kind] = append(n.byKind[e.Kind], e)
	return e
}

func (n *Node) nextID(kind capability.Kind) string {
	var prefix string
	switch kind {
	case capability.KindGPP:
		prefix = "GPP"
	case capability.KindFPGA:
		prefix = "RPE"
	case capability.KindGPU:
		prefix = "GPU"
	default:
		prefix = "PE"
	}
	id := fmt.Sprintf("%s%d", prefix, n.seq[kind])
	n.seq[kind]++
	return id
}

// AddGPP installs a general-purpose processor; IDs follow Fig. 5 (GPP0,
// GPP1, …).
func (n *Node) AddGPP(caps capability.GPPCaps) (*Element, error) {
	p, err := gpp.New(caps)
	if err != nil {
		return nil, err
	}
	return n.install(&Element{
		ID:   n.nextID(capability.KindGPP),
		Kind: capability.KindGPP,
		GPP:  p,
		caps: caps.Set(),
	}), nil
}

// AddRPE installs a reconfigurable processing element backed by a catalog
// FPGA device (RPE0, RPE1, …).
func (n *Node) AddRPE(device string) (*Element, error) {
	f, err := fabric.NewByName(device)
	if err != nil {
		return nil, err
	}
	return n.installFabric(f), nil
}

// AddRPEDevice installs an RPE from an explicit device description,
// allowing experiments to vary device parameters (reconfiguration
// bandwidth, partial-reconfiguration support) beyond the catalog.
func (n *Node) AddRPEDevice(dev fabric.Device) (*Element, error) {
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	return n.installFabric(fabric.New(dev)), nil
}

func (n *Node) installFabric(f *fabric.Fabric) *Element {
	return n.install(&Element{
		ID:     n.nextID(capability.KindFPGA),
		Kind:   capability.KindFPGA,
		Fabric: f,
		caps:   f.Device().FPGACaps.Set(),
	})
}

// AddGPU installs a GPU element.
func (n *Node) AddGPU(caps capability.GPUCaps, coreClockMHz float64) (*Element, error) {
	d, err := gpu.New(caps, coreClockMHz)
	if err != nil {
		return nil, err
	}
	return n.install(&Element{
		ID:   n.nextID(capability.KindGPU),
		Kind: capability.KindGPU,
		GPU:  d,
		caps: caps.Set(),
	}), nil
}

// Remove detaches an idle element at runtime (the framework's dynamic
// remove). Busy elements cannot be removed.
func (n *Node) Remove(elemID string) error {
	e, ok := n.byID[elemID]
	if !ok {
		return fmt.Errorf("node: %s has no element %s", n.ID, elemID)
	}
	if e.Busy() {
		return fmt.Errorf("node: element %s is busy", elemID)
	}
	delete(n.byID, elemID)
	for i, el := range n.elems {
		if el == e {
			n.elems = append(n.elems[:i], n.elems[i+1:]...)
			break
		}
	}
	kin := n.byKind[e.Kind]
	for i, el := range kin {
		if el == e {
			n.byKind[e.Kind] = append(kin[:i], kin[i+1:]...)
			break
		}
	}
	return nil
}

// Element returns an element by ID.
func (n *Node) Element(id string) (*Element, bool) {
	e, ok := n.byID[id]
	return e, ok
}

// Elements returns all elements in installation order.
func (n *Node) Elements() []*Element { return append([]*Element(nil), n.elems...) }

// ByKind returns the elements of one kind in installation order. The
// returned slice is the node's cached view — read-only; callers must not
// mutate it or hold it across Add*/Remove calls. It is rendered on every
// matchmaking pass, which is why it cannot afford a defensive copy.
func (n *Node) ByKind(kind capability.Kind) []*Element {
	return n.byKind[kind]
}

// GPPs returns the node's general-purpose processors.
func (n *Node) GPPs() []*Element { return n.ByKind(capability.KindGPP) }

// RPEs returns the node's reconfigurable processing elements.
func (n *Node) RPEs() []*Element { return n.ByKind(capability.KindFPGA) }

// Snapshot is a point-in-time rendering of the node tuple: static
// capabilities plus dynamic state, as Fig. 5 draws for the case study.
type Snapshot struct {
	NodeID string
	Lines  []string
}

// Snapshot captures the node's current state.
func (n *Node) Snapshot() Snapshot {
	s := Snapshot{NodeID: n.ID}
	for _, e := range n.elems {
		var desc string
		switch {
		case e.GPP != nil:
			desc = e.GPP.Caps.String()
		case e.Fabric != nil:
			desc = e.Fabric.Device().FPGACaps.String()
		case e.GPU != nil:
			desc = e.GPU.Caps.String()
		}
		s.Lines = append(s.Lines, fmt.Sprintf("%s = %s", e.ID, desc))
		s.Lines = append(s.Lines, "  state: "+e.StateLine())
	}
	return s
}

// String renders the snapshot.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Node(%s):\n", s.NodeID)
	for _, l := range s.Lines {
		fmt.Fprintf(&b, "  %s\n", l)
	}
	return b.String()
}
