package node

import (
	"strings"
	"testing"

	"repro/internal/capability"
	"repro/internal/fabric"
)

func xeonCaps() capability.GPPCaps {
	return capability.GPPCaps{CPUType: "Intel Xeon E5540", MIPS: 42000, OS: "Linux", RAMMB: 16384, Cores: 4}
}

func testNode(t *testing.T) *Node {
	t.Helper()
	n, err := New("Node0")
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewValidates(t *testing.T) {
	if _, err := New(""); err == nil {
		t.Error("empty node ID accepted")
	}
}

func TestAddElementsAndIDs(t *testing.T) {
	n := testNode(t)
	g0, err := n.AddGPP(xeonCaps())
	if err != nil {
		t.Fatal(err)
	}
	g1, _ := n.AddGPP(xeonCaps())
	r0, err := n.AddRPE("XC6VLX365T")
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := n.AddRPE("XC5VLX155T")
	if g0.ID != "GPP0" || g1.ID != "GPP1" || r0.ID != "RPE0" || r1.ID != "RPE1" {
		t.Errorf("IDs = %s %s %s %s, want Fig. 5 naming", g0.ID, g1.ID, r0.ID, r1.ID)
	}
	if len(n.Elements()) != 4 || len(n.GPPs()) != 2 || len(n.RPEs()) != 2 {
		t.Error("element listing wrong")
	}
	if _, ok := n.Element("RPE1"); !ok {
		t.Error("lookup failed")
	}
}

func TestAddRejectsInvalid(t *testing.T) {
	n := testNode(t)
	if _, err := n.AddGPP(capability.GPPCaps{}); err != nil {
		// expected
	} else {
		t.Error("invalid GPP accepted")
	}
	if _, err := n.AddRPE("XC9VFAKE"); err == nil {
		t.Error("unknown device accepted")
	}
	if _, err := n.AddGPU(capability.GPUCaps{}, 100); err == nil {
		t.Error("invalid GPU accepted")
	}
}

func TestGPPCoreAccounting(t *testing.T) {
	n := testNode(t)
	g, _ := n.AddGPP(xeonCaps())
	if g.FreeCores() != 4 {
		t.Fatalf("free cores = %d", g.FreeCores())
	}
	for i := 0; i < 4; i++ {
		if err := g.AcquireCore(); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AcquireCore(); err == nil {
		t.Error("overcommit accepted")
	}
	if !g.Busy() {
		t.Error("4/4 busy should report Busy")
	}
	for i := 0; i < 4; i++ {
		if err := g.ReleaseCore(); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.ReleaseCore(); err == nil {
		t.Error("release of idle core accepted")
	}
	if g.Busy() {
		t.Error("idle GPP reports busy")
	}
}

func TestCoreOpsOnWrongKind(t *testing.T) {
	n := testNode(t)
	r, _ := n.AddRPE("XC5VLX110T")
	if err := r.AcquireCore(); err == nil {
		t.Error("AcquireCore on RPE accepted")
	}
	if err := r.ReleaseCore(); err == nil {
		t.Error("ReleaseCore on RPE accepted")
	}
	if err := r.AcquireGPU(); err == nil {
		t.Error("AcquireGPU on RPE accepted")
	}
	if r.FreeCores() != 0 {
		t.Error("RPE has cores?")
	}
}

func TestGPUAccounting(t *testing.T) {
	n := testNode(t)
	g, err := n.AddGPU(capability.GPUCaps{Model: "GT200", ShaderCores: 240, WarpSize: 32}, 1296)
	if err != nil {
		t.Fatal(err)
	}
	if g.ID != "GPU0" {
		t.Errorf("ID = %s", g.ID)
	}
	if err := g.AcquireGPU(); err != nil {
		t.Fatal(err)
	}
	if err := g.AcquireGPU(); err == nil {
		t.Error("double acquire accepted")
	}
	if !g.Busy() {
		t.Error("busy flag")
	}
	if err := g.ReleaseGPU(); err != nil {
		t.Fatal(err)
	}
	if err := g.ReleaseGPU(); err == nil {
		t.Error("double release accepted")
	}
}

func TestRemoveDynamic(t *testing.T) {
	n := testNode(t)
	n.AddGPP(xeonCaps())
	r, _ := n.AddRPE("XC5VLX110T")
	if err := n.Remove("RPE0"); err != nil {
		t.Fatal(err)
	}
	if len(n.Elements()) != 1 {
		t.Error("element not removed")
	}
	if err := n.Remove("RPE0"); err == nil {
		t.Error("double remove accepted")
	}
	_ = r
}

func TestRemoveBusyRejected(t *testing.T) {
	n := testNode(t)
	r, _ := n.AddRPE("XC5VLX110T")
	bs := fabric.PartialBitstream("p", "k", r.Fabric.Device(), 1000)
	reg, _, err := r.Fabric.ConfigurePartial(bs)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Fabric.Acquire(reg); err != nil {
		t.Fatal(err)
	}
	if err := n.Remove("RPE0"); err == nil {
		t.Error("busy RPE removed")
	}
	g, _ := n.AddGPP(xeonCaps())
	g.AcquireCore()
	if err := n.Remove(g.ID); err == nil {
		t.Error("busy GPP removed")
	}
}

func TestRPECapsMatchDevice(t *testing.T) {
	n := testNode(t)
	r, _ := n.AddRPE("XC6VLX365T")
	set := r.Caps()
	if set[capability.ParamFPGADevice].TextValue() != "XC6VLX365T" {
		t.Error("device cap missing")
	}
	if set[capability.ParamFPGASlices].Number() != 56880 {
		t.Errorf("slices = %v", set[capability.ParamFPGASlices].Number())
	}
	if !r.IsRPE() {
		t.Error("IsRPE")
	}
}

func TestSnapshotFormat(t *testing.T) {
	n := testNode(t)
	n.AddGPP(xeonCaps())
	n.AddRPE("XC6VLX365T")
	snap := n.Snapshot()
	out := snap.String()
	if !strings.Contains(out, "Node(Node0)") {
		t.Errorf("snapshot = %q", out)
	}
	if !strings.Contains(out, "GPP0") || !strings.Contains(out, "RPE0") {
		t.Error("snapshot missing elements")
	}
	if !strings.Contains(out, "not configured") {
		t.Error("fresh RPE should show idle unconfigured state (Fig. 5)")
	}
}

func TestStateLines(t *testing.T) {
	n := testNode(t)
	g, _ := n.AddGPP(xeonCaps())
	if !strings.Contains(g.StateLine(), "idle") {
		t.Errorf("idle GPP line = %q", g.StateLine())
	}
	g.AcquireCore()
	if !strings.Contains(g.StateLine(), "1/4") {
		t.Errorf("busy GPP line = %q", g.StateLine())
	}
	u, _ := n.AddGPU(capability.GPUCaps{Model: "m", ShaderCores: 8}, 500)
	if !strings.Contains(u.StateLine(), "idle") {
		t.Errorf("gpu line = %q", u.StateLine())
	}
	u.AcquireGPU()
	if !strings.Contains(u.StateLine(), "busy") {
		t.Errorf("gpu line = %q", u.StateLine())
	}
}

func TestAddRPEDevice(t *testing.T) {
	n := testNode(t)
	dev, err := fabric.LookupDevice("XC5VLX155T")
	if err != nil {
		t.Fatal(err)
	}
	dev.ReconfigMBps = 7 // customized part
	e, err := n.AddRPEDevice(dev)
	if err != nil {
		t.Fatal(err)
	}
	if e.Fabric.Device().ReconfigMBps != 7 {
		t.Error("device customization lost")
	}
	bad := dev
	bad.Slices = 0
	if _, err := n.AddRPEDevice(bad); err == nil {
		t.Error("invalid device accepted")
	}
}
