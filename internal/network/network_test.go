package network

import (
	"math"
	"strings"
	"testing"
)

func TestLinkValidate(t *testing.T) {
	if err := (Link{BandwidthMBps: 100, LatencySeconds: 0.001}).Validate(); err != nil {
		t.Errorf("good link rejected: %v", err)
	}
	if err := (Link{}).Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
	if err := (Link{BandwidthMBps: 1, LatencySeconds: -1}).Validate(); err == nil {
		t.Error("negative latency accepted")
	}
}

func TestTransferSeconds(t *testing.T) {
	l := Link{BandwidthMBps: 100, LatencySeconds: 0.01}
	// 50 MB at 100 MB/s = 0.5 s plus 10 ms latency.
	if got := l.TransferSeconds(50); math.Abs(got-0.51) > 1e-12 {
		t.Errorf("transfer = %v, want 0.51", got)
	}
	if got := l.TransferSeconds(0); got != 0.01 {
		t.Errorf("zero-byte transfer = %v, want latency only", got)
	}
	if got := l.TransferSeconds(-5); got != 0.01 {
		t.Errorf("negative volume should clamp: %v", got)
	}
	if !strings.Contains(l.String(), "MB/s") {
		t.Error("String")
	}
}

func TestTopologyDefaultsAndOverrides(t *testing.T) {
	topo, err := Uniform(125, 0.002)
	if err != nil {
		t.Fatal(err)
	}
	if topo.LinkTo("anything").BandwidthMBps != 125 {
		t.Error("default link wrong")
	}
	slow := Link{BandwidthMBps: 5, LatencySeconds: 0.1}
	if err := topo.SetLink("FarNode", slow); err != nil {
		t.Fatal(err)
	}
	if topo.LinkTo("FarNode") != slow {
		t.Error("override not applied")
	}
	if topo.LinkTo("NearNode").BandwidthMBps != 125 {
		t.Error("override leaked")
	}
	if topo.Default().BandwidthMBps != 125 {
		t.Error("Default")
	}
}

func TestTopologyValidation(t *testing.T) {
	if _, err := NewTopology(Link{}); err == nil {
		t.Error("invalid default accepted")
	}
	topo, _ := Uniform(100, 0)
	if err := topo.SetLink("", Link{BandwidthMBps: 1}); err == nil {
		t.Error("empty node ID accepted")
	}
	if err := topo.SetLink("n", Link{}); err == nil {
		t.Error("invalid link accepted")
	}
}
