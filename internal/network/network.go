// Package network models the links between the grid's job-submission side
// and its nodes. The paper's scheduler "takes into account … the time
// required to send configuration bitstreams"; with heterogeneous links,
// the same bitstream costs different time per node, so placement becomes a
// locality decision as well as a capability decision.
package network

import "fmt"

// Link is one node's connectivity to the data/bitstream source.
type Link struct {
	BandwidthMBps  float64
	LatencySeconds float64
}

// Validate reports impossible links.
func (l Link) Validate() error {
	if l.BandwidthMBps <= 0 {
		return fmt.Errorf("network: non-positive bandwidth %g", l.BandwidthMBps)
	}
	if l.LatencySeconds < 0 {
		return fmt.Errorf("network: negative latency %g", l.LatencySeconds)
	}
	return nil
}

// TransferSeconds returns the time to move mb megabytes over the link.
func (l Link) TransferSeconds(mb float64) float64 {
	if mb < 0 {
		mb = 0
	}
	return l.LatencySeconds + mb/l.BandwidthMBps
}

// String renders the link.
func (l Link) String() string {
	return fmt.Sprintf("%g MB/s, %g ms", l.BandwidthMBps, l.LatencySeconds*1e3)
}

// Topology maps node IDs to links, with a default for unlisted nodes.
type Topology struct {
	def   Link
	links map[string]Link
}

// NewTopology creates a topology with the given default link.
func NewTopology(def Link) (*Topology, error) {
	if err := def.Validate(); err != nil {
		return nil, err
	}
	return &Topology{def: def, links: make(map[string]Link)}, nil
}

// Uniform returns a topology where every node shares one link.
func Uniform(bandwidthMBps, latencySeconds float64) (*Topology, error) {
	return NewTopology(Link{BandwidthMBps: bandwidthMBps, LatencySeconds: latencySeconds})
}

// SetLink overrides the link for one node.
func (t *Topology) SetLink(nodeID string, l Link) error {
	if nodeID == "" {
		return fmt.Errorf("network: empty node ID")
	}
	if err := l.Validate(); err != nil {
		return err
	}
	t.links[nodeID] = l
	return nil
}

// LinkTo returns the link for a node (the default when not overridden).
func (t *Topology) LinkTo(nodeID string) Link {
	if l, ok := t.links[nodeID]; ok {
		return l
	}
	return t.def
}

// Default returns the default link.
func (t *Topology) Default() Link { return t.def }
