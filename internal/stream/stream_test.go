package stream

import (
	"strings"
	"testing"

	"repro/internal/capability"
	"repro/internal/hdl"
	"repro/internal/node"
	"repro/internal/pe"
	"repro/internal/rms"
	"repro/internal/sim"
	"repro/internal/task"
)

// streamRig builds a hybrid grid (1 Xeon + 2 Virtex-5) with a manager.
func streamRig(t *testing.T) (*Manager, *sim.Simulator, *rms.Matchmaker) {
	t.Helper()
	reg := rms.NewRegistry()
	n, err := node.New("NodeA")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddGPP(capability.GPPCaps{CPUType: "Xeon", MIPS: 42000, OS: "Linux", RAMMB: 8192, Cores: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddRPE("XC5VLX155T"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddRPE("XC5VLX330T"); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddNode(n); err != nil {
		t.Fatal(err)
	}
	tc, err := hdl.NewToolchain("ise", "Virtex-5")
	if err != nil {
		t.Fatal(err)
	}
	mm, err := rms.NewMatchmaker(reg, tc)
	if err != nil {
		t.Fatal(err)
	}
	s := sim.NewSimulator()
	mgr, err := NewManager(mm, s)
	if err != nil {
		t.Fatal(err)
	}
	return mgr, s, mm
}

// hwStream is a high-rate stream only an accelerator can sustain.
func hwStream(id string, rate float64) Spec {
	design, _ := hdl.LookupIP("fir64")
	return Spec{
		ID:               id,
		RateMBps:         rate,
		MIPerMB:          2000,
		ParallelFraction: 0.98,
		Duration:         100,
		Req: task.ExecReq{
			Scenario:     pe.UserDefinedHW,
			Requirements: task.FPGAFamily("Virtex-5", 100),
			Design:       design,
		},
	}
}

// swStream is a modest stream a GPP can sustain.
func swStream(id string, rate float64) Spec {
	return Spec{
		ID:               id,
		RateMBps:         rate,
		MIPerMB:          500,
		ParallelFraction: 0.5,
		Duration:         50,
		Req: task.ExecReq{
			Scenario:     pe.SoftwareOnly,
			Requirements: task.GPPOnly(9000, 1024),
		},
	}
}

func TestSpecValidation(t *testing.T) {
	good := swStream("s", 10)
	if err := good.Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
	bad := []Spec{
		{},
		{ID: "s"},
		{ID: "s", RateMBps: 1},
		{ID: "s", RateMBps: 1, MIPerMB: 1, ParallelFraction: 2, Duration: 1},
		{ID: "s", RateMBps: 1, MIPerMB: 1, HWSpeedup: -1, Duration: 1},
		{ID: "s", RateMBps: 1, MIPerMB: 1, Duration: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestAdmitSoftwareStream(t *testing.T) {
	mgr, _, _ := streamRig(t)
	sess, err := mgr.Admit(swStream("audio", 10))
	if err != nil {
		t.Fatal(err)
	}
	if sess.Headroom < 1 {
		t.Errorf("admitted with headroom %v < 1", sess.Headroom)
	}
	if sess.Cand.Elem.Kind != capability.KindGPP {
		t.Errorf("software stream landed on %v", sess.Cand.Elem.Kind)
	}
	if mgr.Active() != 1 || mgr.Admitted != 1 {
		t.Error("bookkeeping")
	}
	if got, ok := mgr.Get("audio"); !ok || got != sess {
		t.Error("Get")
	}
	if sess.DataMB() != 500 {
		t.Errorf("DataMB = %v", sess.DataMB())
	}
}

func TestHighRateStreamNeedsAccelerator(t *testing.T) {
	mgr, _, _ := streamRig(t)
	// 2000 MI/MB at 42,000 MIPS ≈ 21 MB/s tops on the Xeon; demand 200 MB/s.
	fast := hwStream("video", 200)
	sess, err := mgr.Admit(fast)
	if err != nil {
		t.Fatalf("accelerator admission failed: %v", err)
	}
	if sess.Cand.Elem.Kind != capability.KindFPGA {
		t.Errorf("high-rate stream landed on %v, want FPGA", sess.Cand.Elem.Kind)
	}
	// A rate beyond even the accelerator is rejected.
	impossible := hwStream("firehose", 1e9)
	if _, err := mgr.Admit(impossible); err == nil {
		t.Error("impossible rate admitted")
	}
	if mgr.Rejected != 1 {
		t.Errorf("Rejected = %d", mgr.Rejected)
	}
}

func TestRejectedWhenGPPCannotSustainSoftwareRate(t *testing.T) {
	mgr, _, _ := streamRig(t)
	// 500 MI/MB on 42,000 MIPS with p=0.5 → well under 200 MB/s.
	if _, err := mgr.Admit(swStream("toofast", 500)); err == nil {
		t.Error("unsustainable software stream admitted")
	}
}

func TestSessionAutoReleasesAtEnd(t *testing.T) {
	mgr, s, _ := streamRig(t)
	sess, err := mgr.Admit(hwStream("video", 100))
	if err != nil {
		t.Fatal(err)
	}
	elem := sess.Cand.Elem
	if !elem.Busy() {
		t.Fatal("reservation not held")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != sess.End {
		t.Errorf("clock = %v, want %v", s.Now(), sess.End)
	}
	if elem.Busy() {
		t.Error("reservation not released at session end")
	}
	if mgr.Active() != 0 {
		t.Error("session still tracked")
	}
}

func TestEarlyCloseIsSafe(t *testing.T) {
	mgr, s, _ := streamRig(t)
	sess, err := mgr.Admit(hwStream("video", 100))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Close(); err == nil {
		t.Error("double close accepted")
	}
	// The scheduled end event must not double-release.
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if mgr.Active() != 0 {
		t.Error("session still tracked")
	}
}

func TestConcurrentStreamsCoResideOnOneFabric(t *testing.T) {
	mgr, _, _ := streamRig(t)
	// fir64 is small; several sessions fit one large device via partial
	// reconfiguration regions.
	a, err := mgr.Admit(hwStream("a", 50))
	if err != nil {
		t.Fatal(err)
	}
	b, err := mgr.Admit(hwStream("b", 50))
	if err != nil {
		t.Fatalf("second stream rejected: %v", err)
	}
	if mgr.Active() != 2 {
		t.Error("both sessions should be live")
	}
	_ = a
	_ = b
}

func TestDuplicateStreamIDRejected(t *testing.T) {
	mgr, _, _ := streamRig(t)
	if _, err := mgr.Admit(swStream("dup", 5)); err != nil {
		t.Fatal(err)
	}
	_, err := mgr.Admit(swStream("dup", 5))
	if err == nil || !strings.Contains(err.Error(), "already active") {
		t.Errorf("duplicate ID: %v", err)
	}
}

func TestNewManagerValidation(t *testing.T) {
	if _, err := NewManager(nil, nil); err == nil {
		t.Error("nil inputs accepted")
	}
}
