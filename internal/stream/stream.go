// Package stream implements the paper's future-work item: a virtualization
// scenario for streaming applications. The ICPP'12 framework handles
// run-to-completion tasks only ("currently, the framework does not support
// streaming applications"); this extension adds continuous dataflows with
// throughput guarantees.
//
// A streaming task is admitted, not scheduled: the manager finds a
// processing element whose sustainable throughput meets the stream's input
// rate, reserves it for the session duration, and releases it when the
// session ends. Hardware accelerators shine here — a partial-reconfiguration
// region can host one pipeline per stream, and several streams co-reside on
// one fabric.
package stream

import (
	"fmt"
	"sort"

	"repro/internal/pe"
	"repro/internal/rms"
	"repro/internal/sim"
	"repro/internal/task"
)

// Spec describes a streaming session request.
type Spec struct {
	// ID names the stream.
	ID string
	// RateMBps is the continuous input data rate the grid must sustain.
	RateMBps float64
	// MIPerMB is the compute demand per megabyte of stream data.
	MIPerMB float64
	// ParallelFraction is the per-chunk Amdahl profile of the kernel.
	ParallelFraction float64
	// HWSpeedup is the user-characterized acceleration factor, used when
	// the stream ships its own device-specific bitstream (cf. Work.HWSpeedup).
	HWSpeedup float64
	// Duration is the session length in virtual time.
	Duration sim.Time
	// Req places the same scenario/requirement constraints as batch tasks:
	// a stream can demand a soft-core, a synthesized accelerator, or a
	// device-specific pipeline.
	Req task.ExecReq
}

// Validate reports impossible stream requests.
func (s Spec) Validate() error {
	switch {
	case s.ID == "":
		return fmt.Errorf("stream: spec without an ID")
	case s.RateMBps <= 0:
		return fmt.Errorf("stream: %s has non-positive rate", s.ID)
	case s.MIPerMB <= 0:
		return fmt.Errorf("stream: %s has non-positive compute demand", s.ID)
	case s.ParallelFraction < 0 || s.ParallelFraction > 1:
		return fmt.Errorf("stream: %s has parallel fraction outside [0,1]", s.ID)
	case s.HWSpeedup < 0:
		return fmt.Errorf("stream: %s has negative hardware speedup", s.ID)
	case s.Duration <= 0:
		return fmt.Errorf("stream: %s has non-positive duration", s.ID)
	}
	return s.Req.Validate()
}

// chunkWork converts the per-MB demand into the Work unit the estimators
// consume.
func (s Spec) chunkWork() pe.Work {
	return pe.Work{
		MInstructions:    s.MIPerMB,
		ParallelFraction: s.ParallelFraction,
		DataMB:           1,
		HWSpeedup:        s.HWSpeedup,
	}
}

// Session is an admitted stream holding its reservation.
type Session struct {
	Spec  Spec
	Cand  rms.Candidate
	Lease *rms.Lease
	// ThroughputMBps is the element's sustainable rate for this kernel.
	ThroughputMBps float64
	// Headroom is ThroughputMBps / RateMBps (≥ 1 on admission).
	Headroom float64
	// Start and End bound the session in virtual time.
	Start, End sim.Time

	mgr    *Manager
	closed bool
}

// Manager performs admission control and reservation for streams.
type Manager struct {
	mm  *rms.Matchmaker
	sim *sim.Simulator

	active map[string]*Session
	// Admitted and Rejected count admission outcomes.
	Admitted int
	Rejected int
}

// NewManager builds a streaming manager over the grid's matchmaker and a
// simulator for session timing.
func NewManager(mm *rms.Matchmaker, s *sim.Simulator) (*Manager, error) {
	if mm == nil || s == nil {
		return nil, fmt.Errorf("stream: manager needs a matchmaker and simulator")
	}
	return &Manager{mm: mm, sim: s, active: make(map[string]*Session)}, nil
}

// Throughput returns the sustainable rate (MB/s) of a candidate for the
// stream's kernel: the inverse of the per-MB execution time.
func (m *Manager) Throughput(c rms.Candidate, spec Spec) (float64, error) {
	est, err := m.mm.Estimate(c, spec.Req, spec.chunkWork())
	if err != nil {
		return 0, err
	}
	if est.ExecSeconds <= 0 {
		return 0, fmt.Errorf("stream: zero per-chunk time on %s", c.Label())
	}
	return 1 / est.ExecSeconds, nil
}

// Admit finds the best-throughput element meeting the stream's rate,
// reserves it for the session, and schedules the automatic release. It
// fails — counting a rejection — when no element sustains the rate.
func (m *Manager) Admit(spec Spec) (*Session, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if _, dup := m.active[spec.ID]; dup {
		return nil, fmt.Errorf("stream: %s already active", spec.ID)
	}
	cands, err := m.mm.Candidates(spec.Req)
	if err != nil {
		return nil, err
	}
	type scored struct {
		cand rms.Candidate
		tput float64
	}
	var feasible []scored
	for _, c := range cands {
		tput, err := m.Throughput(c, spec)
		if err != nil {
			continue
		}
		if tput >= spec.RateMBps {
			feasible = append(feasible, scored{c, tput})
		}
	}
	if len(feasible) == 0 {
		m.Rejected++
		return nil, fmt.Errorf("stream: no element sustains %.1f MB/s for %s", spec.RateMBps, spec.ID)
	}
	// Highest throughput first; stable on the deterministic candidate order.
	sort.SliceStable(feasible, func(i, j int) bool { return feasible[i].tput > feasible[j].tput })

	var sess *Session
	for _, f := range feasible {
		lease, err := m.mm.Allocate(f.cand, spec.Req)
		if err != nil {
			continue // element saturated; try the next
		}
		sess = &Session{
			Spec:           spec,
			Cand:           f.cand,
			Lease:          lease,
			ThroughputMBps: f.tput,
			Headroom:       f.tput / spec.RateMBps,
			Start:          m.sim.Now(),
			End:            m.sim.Now() + spec.Duration,
			mgr:            m,
		}
		break
	}
	if sess == nil {
		m.Rejected++
		return nil, fmt.Errorf("stream: all feasible elements saturated for %s", spec.ID)
	}
	m.active[spec.ID] = sess
	m.Admitted++
	m.sim.Schedule(sess.End, "stream-end "+spec.ID, func() {
		// The session may have been stopped early.
		if cur, ok := m.active[spec.ID]; ok && cur == sess {
			_ = sess.Close()
		}
	})
	return sess, nil
}

// Close releases the session's reservation; it is idempotent via the
// manager's bookkeeping and safe to call before the scheduled end.
func (s *Session) Close() error {
	if s.closed {
		return fmt.Errorf("stream: session %s already closed", s.Spec.ID)
	}
	s.closed = true
	delete(s.mgr.active, s.Spec.ID)
	return s.Lease.Release()
}

// DataMB returns the volume processed over the full session.
func (s *Session) DataMB() float64 {
	return s.Spec.RateMBps * float64(s.Spec.Duration)
}

// Active returns the number of live sessions.
func (m *Manager) Active() int { return len(m.active) }

// Get returns a live session by ID.
func (m *Manager) Get(id string) (*Session, bool) {
	s, ok := m.active[id]
	return s, ok
}
