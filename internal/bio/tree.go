package bio

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/profiler"
)

// TreeNode is a node of a (rooted, binary) guide tree. Leaves carry the
// index of a sequence; internal nodes carry their children.
type TreeNode struct {
	// Leaf is the sequence index for leaves, -1 for internal nodes.
	Leaf int
	// Left and Right are nil for leaves.
	Left, Right *TreeNode
	// LeftLen and RightLen are the branch lengths to the children,
	// estimated by the tree algorithm; they drive sequence weighting.
	LeftLen, RightLen float64
	// Height orders internal nodes by join time (UPGMA) or join step (NJ).
	Height float64
}

// IsLeaf reports whether the node is a leaf.
func (t *TreeNode) IsLeaf() bool { return t.Left == nil && t.Right == nil }

// Leaves returns the sequence indices under the node in left-to-right order.
func (t *TreeNode) Leaves() []int {
	if t == nil {
		return nil
	}
	if t.IsLeaf() {
		return []int{t.Leaf}
	}
	return append(t.Left.Leaves(), t.Right.Leaves()...)
}

// Newick renders the tree in Newick notation with seq indices as labels.
func (t *TreeNode) Newick() string {
	var b strings.Builder
	t.newick(&b)
	b.WriteByte(';')
	return b.String()
}

func (t *TreeNode) newick(b *strings.Builder) {
	if t.IsLeaf() {
		fmt.Fprintf(b, "%d", t.Leaf)
		return
	}
	b.WriteByte('(')
	t.Left.newick(b)
	b.WriteByte(',')
	t.Right.newick(b)
	b.WriteByte(')')
}

func validateDistances(d [][]float64) error {
	n := len(d)
	if n < 2 {
		return fmt.Errorf("bio: guide tree needs ≥2 taxa, got %d", n)
	}
	for i := range d {
		if len(d[i]) != n {
			return fmt.Errorf("bio: distance matrix row %d has %d entries, want %d", i, len(d[i]), n)
		}
		if d[i][i] != 0 {
			return fmt.Errorf("bio: non-zero self distance at %d", i)
		}
		for j := range d[i] {
			if d[i][j] < 0 {
				return fmt.Errorf("bio: negative distance d[%d][%d]=%g", i, j, d[i][j])
			}
			if d[i][j] != d[j][i] {
				return fmt.Errorf("bio: asymmetric distances at (%d,%d)", i, j)
			}
		}
	}
	return nil
}

// NeighborJoining builds a guide tree with the neighbour-joining algorithm
// (Saitou & Nei), ClustalW's default. The returned tree is rooted at the
// final join.
func NeighborJoining(dist [][]float64, prof *profiler.Profiler) (*TreeNode, error) {
	if err := validateDistances(dist); err != nil {
		return nil, err
	}
	defer prof.Enter("nj_tree")()
	n := len(dist)
	// Working copies.
	d := make([][]float64, n)
	for i := range d {
		d[i] = append([]float64(nil), dist[i]...)
	}
	nodes := make([]*TreeNode, n)
	for i := range nodes {
		nodes[i] = &TreeNode{Leaf: i}
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	step := 0.0
	for len(active) > 2 {
		m := len(active)
		// Row sums over active taxa.
		rowSum := make([]float64, m)
		for ai, i := range active {
			for _, j := range active {
				rowSum[ai] += d[i][j]
			}
		}
		// Minimize Q(i,j) = (m-2)·d(i,j) − r(i) − r(j).
		bestA, bestB := 0, 1
		bestQ := 0.0
		first := true
		for ai := 0; ai < m; ai++ {
			for bi := ai + 1; bi < m; bi++ {
				q := float64(m-2)*d[active[ai]][active[bi]] - rowSum[ai] - rowSum[bi]
				if first || q < bestQ {
					first = false
					bestQ = q
					bestA, bestB = ai, bi
				}
			}
		}
		i, j := active[bestA], active[bestB]
		step++
		// Limb lengths (Saitou & Nei):
		// l_i = d(i,j)/2 + (r_i − r_j)/(2(m−2)),  l_j = d(i,j) − l_i.
		li := d[i][j]/2 + (rowSum[bestA]-rowSum[bestB])/(2*float64(m-2))
		lj := d[i][j] - li
		if li < 0 {
			li = 0
		}
		if lj < 0 {
			lj = 0
		}
		parent := &TreeNode{Leaf: -1, Left: nodes[i], Right: nodes[j], LeftLen: li, RightLen: lj, Height: step}
		// Distances from the new node u to every other active node k:
		// d(u,k) = (d(i,k)+d(j,k)−d(i,j))/2.
		for _, k := range active {
			if k == i || k == j {
				continue
			}
			nd := (d[i][k] + d[j][k] - d[i][j]) / 2
			if nd < 0 {
				nd = 0
			}
			d[i][k] = nd
			d[k][i] = nd
		}
		nodes[i] = parent
		// Remove j from the active set.
		active = append(active[:bestB], active[bestB+1:]...)
	}
	i, j := active[0], active[1]
	half := d[i][j] / 2
	if half < 0 {
		half = 0
	}
	return &TreeNode{Leaf: -1, Left: nodes[i], Right: nodes[j], LeftLen: half, RightLen: half, Height: step + 1}, nil
}

// UPGMA builds a guide tree by unweighted pair-group averaging, the
// alternative ClustalW offers; used by the guide-tree ablation benchmark.
func UPGMA(dist [][]float64, prof *profiler.Profiler) (*TreeNode, error) {
	if err := validateDistances(dist); err != nil {
		return nil, err
	}
	defer prof.Enter("upgma")()
	n := len(dist)
	d := make([][]float64, n)
	for i := range d {
		d[i] = append([]float64(nil), dist[i]...)
	}
	nodes := make([]*TreeNode, n)
	sizes := make([]int, n)
	for i := range nodes {
		nodes[i] = &TreeNode{Leaf: i}
		sizes[i] = 1
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	for len(active) > 1 {
		bestA, bestB := 0, 1
		first := true
		var bestD float64
		for ai := 0; ai < len(active); ai++ {
			for bi := ai + 1; bi < len(active); bi++ {
				dd := d[active[ai]][active[bi]]
				if first || dd < bestD {
					first = false
					bestD = dd
					bestA, bestB = ai, bi
				}
			}
		}
		i, j := active[bestA], active[bestB]
		h := bestD / 2
		parent := &TreeNode{
			Leaf: -1, Left: nodes[i], Right: nodes[j], Height: h,
			LeftLen:  maxf(h-nodes[i].Height, 0),
			RightLen: maxf(h-nodes[j].Height, 0),
		}
		// Size-weighted average distance to the merged cluster.
		for _, k := range active {
			if k == i || k == j {
				continue
			}
			nd := (d[i][k]*float64(sizes[i]) + d[j][k]*float64(sizes[j])) / float64(sizes[i]+sizes[j])
			d[i][k] = nd
			d[k][i] = nd
		}
		nodes[i] = parent
		sizes[i] += sizes[j]
		active = append(active[:bestB], active[bestB+1:]...)
	}
	return nodes[active[0]], nil
}

// KimuraDistance converts an observed fractional identity into a Kimura
// (1983) corrected evolutionary distance, the transformation ClustalW
// applies to percent identities before building the guide tree: observed
// differences undercount multiple substitutions at one site.
//
//	D = 1 - identity;  distance = -ln(1 - D - D²/5)
//
// Identities so low the correction diverges saturate at 10 (ClustalW caps
// large corrected distances similarly).
func KimuraDistance(identity float64) float64 {
	if identity < 0 {
		identity = 0
	}
	if identity > 1 {
		identity = 1
	}
	d := 1 - identity
	arg := 1 - d - d*d/5
	if arg <= 1e-9 {
		return 10
	}
	dist := -math.Log(arg)
	if dist > 10 {
		return 10
	}
	return dist
}

// KimuraMatrix applies the Kimura correction to a matrix of pairwise
// distances expressed as 1-identity (the PairAlignAll output).
func KimuraMatrix(dist [][]float64) [][]float64 {
	out := make([][]float64, len(dist))
	for i := range dist {
		out[i] = make([]float64, len(dist[i]))
		for j := range dist[i] {
			if i == j {
				continue
			}
			out[i][j] = KimuraDistance(1 - dist[i][j])
		}
	}
	return out
}
