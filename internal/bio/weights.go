package bio

import "fmt"

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// SequenceWeights computes ClustalW's tree-derived sequence weights: each
// sequence's weight is the sum, over the branches on its root-to-leaf
// path, of branch length divided by the number of sequences sharing that
// branch. Closely related sequences share long paths and are downweighted,
// so an over-sampled subfamily cannot dominate the profile scores.
//
// Weights are normalized to mean 1; a degenerate tree (all branch lengths
// zero, e.g. identical sequences) yields uniform weights.
func SequenceWeights(tree *TreeNode, n int) ([]float64, error) {
	if tree == nil {
		return nil, fmt.Errorf("bio: nil guide tree")
	}
	leaves := tree.Leaves()
	if len(leaves) != n {
		return nil, fmt.Errorf("bio: tree covers %d leaves, want %d", len(leaves), n)
	}
	w := make([]float64, n)
	var walk func(t *TreeNode, acc float64) error
	walk = func(t *TreeNode, acc float64) error {
		if t.IsLeaf() {
			if t.Leaf < 0 || t.Leaf >= n {
				return fmt.Errorf("bio: leaf index %d out of range", t.Leaf)
			}
			w[t.Leaf] = acc
			return nil
		}
		nl := float64(len(t.Left.Leaves()))
		nr := float64(len(t.Right.Leaves()))
		if err := walk(t.Left, acc+t.LeftLen/nl); err != nil {
			return err
		}
		return walk(t.Right, acc+t.RightLen/nr)
	}
	if err := walk(tree, 0); err != nil {
		return nil, err
	}
	var sum float64
	for _, v := range w {
		sum += v
	}
	if sum <= 0 {
		for i := range w {
			w[i] = 1
		}
		return w, nil
	}
	scale := float64(n) / sum
	for i := range w {
		w[i] *= scale
	}
	return w, nil
}
