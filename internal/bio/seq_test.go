package bio

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestResidueIndexRoundTrip(t *testing.T) {
	for i := 0; i < AlphabetSize; i++ {
		if ResidueIndex(Alphabet[i]) != i {
			t.Errorf("ResidueIndex(%c) = %d, want %d", Alphabet[i], ResidueIndex(Alphabet[i]), i)
		}
		lower := Alphabet[i] + 'a' - 'A'
		if ResidueIndex(lower) != i {
			t.Errorf("lower-case index for %c wrong", lower)
		}
	}
	for _, c := range []byte{'-', 'X', 'B', 'Z', '*', ' ', '1'} {
		if ResidueIndex(c) >= 0 {
			t.Errorf("ResidueIndex(%c) should be -1", c)
		}
	}
}

func TestSequenceValidate(t *testing.T) {
	if err := (Sequence{ID: "a", Residues: "ARNDC"}).Validate(); err != nil {
		t.Errorf("valid sequence rejected: %v", err)
	}
	bad := []Sequence{
		{},
		{ID: "a"},
		{ID: "a", Residues: "AR-DC"},
		{ID: "a", Residues: "ARXDC"},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad sequence %d accepted", i)
		}
	}
}

func TestParseFASTA(t *testing.T) {
	in := ">alpha description here\nARNDC\nQEGHI\n\n>beta\nlkmfp\n"
	seqs, err := ParseFASTA(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 2 {
		t.Fatalf("parsed %d sequences", len(seqs))
	}
	if seqs[0].ID != "alpha" || seqs[0].Residues != "ARNDCQEGHI" {
		t.Errorf("seq0 = %+v", seqs[0])
	}
	if seqs[1].ID != "beta" || seqs[1].Residues != "LKMFP" {
		t.Errorf("seq1 = %+v (lower case should upcase)", seqs[1])
	}
}

func TestParseFASTAErrors(t *testing.T) {
	cases := []string{
		"ARNDC\n",     // data before header
		">\nARNDC\n",  // empty header
		">x\nAR1DC\n", // invalid residue
	}
	for _, in := range cases {
		if _, err := ParseFASTA(strings.NewReader(in)); err == nil {
			t.Errorf("ParseFASTA(%q) accepted", in)
		}
	}
}

func TestWriteFASTARoundTrip(t *testing.T) {
	long := strings.Repeat("ARNDCQEGHILKMFPSTWYV", 8) // 160 residues, forces wrapping
	orig := []Sequence{{ID: "x", Residues: long}, {ID: "y", Residues: "ARNDC"}}
	var b strings.Builder
	if err := WriteFASTA(&b, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseFASTA(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].Residues != long || back[1].ID != "y" {
		t.Errorf("round trip failed: %+v", back)
	}
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, ">") && len(line) > 60 {
			t.Errorf("unwrapped line of %d chars", len(line))
		}
	}
}

func TestGenerateFamilyValidAndRelated(t *testing.T) {
	rng := sim.NewRNG(42)
	seqs, err := GenerateFamily(rng, DefaultFamily())
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 24 {
		t.Fatalf("generated %d sequences", len(seqs))
	}
	seen := map[string]bool{}
	for _, s := range seqs {
		if err := s.Validate(); err != nil {
			t.Errorf("generated invalid sequence: %v", err)
		}
		if seen[s.ID] {
			t.Errorf("duplicate ID %s", s.ID)
		}
		seen[s.ID] = true
	}
	// Family members descend from one ancestor: pairwise identity must be
	// far above the ≈5 % expected for unrelated random proteins.
	res, err := PairAlign(seqs[0], seqs[1], nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Identity < 0.4 {
		t.Errorf("family identity = %v, want related sequences", res.Identity)
	}
}

func TestGenerateFamilyDeterministic(t *testing.T) {
	a, _ := GenerateFamily(sim.NewRNG(7), DefaultFamily())
	b, _ := GenerateFamily(sim.NewRNG(7), DefaultFamily())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different families")
		}
	}
}

func TestGenerateFamilyValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	bad := []FamilyOptions{
		{Count: 1, Length: 100},
		{Count: 5, Length: 5},
		{Count: 5, Length: 100, SubstitutionRate: -1},
		{Count: 5, Length: 100, IndelRate: 0.9},
	}
	for i, opt := range bad {
		if _, err := GenerateFamily(rng, opt); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestBlosumSymmetricPositiveDiagonal(t *testing.T) {
	for i := 0; i < AlphabetSize; i++ {
		if ScoreIdx(i, i) <= 0 {
			t.Errorf("self score for %c = %d, want positive", Alphabet[i], ScoreIdx(i, i))
		}
		for j := 0; j < AlphabetSize; j++ {
			if ScoreIdx(i, j) != ScoreIdx(j, i) {
				t.Errorf("BLOSUM62 asymmetric at (%c,%c)", Alphabet[i], Alphabet[j])
			}
		}
	}
	// Spot-check canonical entries.
	if Score('W', 'W') != 11 {
		t.Errorf("W/W = %d, want 11", Score('W', 'W'))
	}
	if Score('A', 'R') != -1 {
		t.Errorf("A/R = %d, want -1", Score('A', 'R'))
	}
	if Score('X', 'A') != -1 {
		t.Error("unknown residue should score -1")
	}
}
