package bio

import (
	"fmt"

	"repro/internal/profiler"
)

// group is a set of mutually aligned sequences (all rows equal length),
// each carrying its tree-derived weight.
type group struct {
	rows    []Sequence
	weights []float32
}

func (g *group) cols() int {
	if len(g.rows) == 0 {
		return 0
	}
	return len(g.rows[0].Residues)
}

// colWeight is one residue's weight within a profile column.
type colWeight struct {
	residue int8
	weight  float32
}

// profileTable is a group's position-specific scoring profile: for every
// column, the expected BLOSUM score against each residue, plus the sparse
// residue frequencies and the gap fraction.
type profileTable struct {
	score   [][AlphabetSize]float32
	freq    [][]colWeight
	gapFrac []float32
}

// prfscore builds the profile table for a group — ClustalW's prfscore
// kernel, run once per progressive-alignment merge.
func prfscore(g *group, prof *profiler.Profiler) *profileTable {
	defer prof.Enter("prfscore")()
	cols := g.cols()
	// Row weights default to 1 when no tree weighting is attached.
	rowWeight := func(r int) float32 {
		if r < len(g.weights) {
			return g.weights[r]
		}
		return 1
	}
	var totalWeight float32
	for r := range g.rows {
		totalWeight += rowWeight(r)
	}
	t := &profileTable{
		score:   make([][AlphabetSize]float32, cols),
		freq:    make([][]colWeight, cols),
		gapFrac: make([]float32, cols),
	}
	var counts [AlphabetSize]float32
	for i := 0; i < cols; i++ {
		for r := range counts {
			counts[r] = 0
		}
		gaps := float32(0)
		for ri, row := range g.rows {
			rw := rowWeight(ri)
			c := row.Residues[i]
			if c == '-' {
				gaps += rw
				continue
			}
			if idx := ResidueIndex(c); idx >= 0 {
				counts[idx] += rw
			}
		}
		t.gapFrac[i] = gaps / totalWeight
		for r := 0; r < AlphabetSize; r++ {
			if counts[r] == 0 {
				continue
			}
			w := counts[r] / totalWeight
			t.freq[i] = append(t.freq[i], colWeight{residue: int8(r), weight: w})
			for q := 0; q < AlphabetSize; q++ {
				t.score[i][q] += w * float32(ScoreIdx(r, q))
			}
		}
	}
	return t
}

// pdiff globally aligns two profiles with affine gap penalties and returns
// the merge trace — ClustalW's pdiff kernel (the heart of malign). Trace
// ops: 'M' consume a column from both, 'A' consume from A only (gap in B),
// 'B' consume from B only.
func pdiff(ta, tb *profileTable, prof *profiler.Profiler) []byte {
	defer prof.Enter("pdiff")()
	la, lb := len(ta.score), len(tb.score)
	cols := lb + 1
	size := (la + 1) * cols
	m := make([]float32, size)
	ix := make([]float32, size)
	iy := make([]float32, size)
	tbm := make([]byte, size)
	tbx := make([]byte, size)
	tby := make([]byte, size)
	const big = float32(-1e18)
	const open = float32(GapOpen + GapExtend)
	const ext = float32(GapExtend)

	m[0], ix[0], iy[0] = 0, big, big
	for i := 1; i <= la; i++ {
		idx := i * cols
		m[idx], iy[idx] = big, big
		ix[idx] = -open - float32(i-1)*ext
		tbx[idx] = tbIx
	}
	tbx[cols] = tbM
	for j := 1; j <= lb; j++ {
		m[j], ix[j] = big, big
		iy[j] = -open - float32(j-1)*ext
		tby[j] = tbIy
	}
	tby[1] = tbM

	for i := 1; i <= la; i++ {
		row := i * cols
		prev := row - cols
		// Gap penalties soften where the profile already has gaps, so
		// existing gap columns attract new gaps (ClustalW's position-
		// specific gap penalties).
		openA := open * (1 - 0.5*ta.gapFrac[i-1])
		for j := 1; j <= lb; j++ {
			// Expected substitution score between the two columns.
			var match float32
			for _, cw := range tb.freq[j-1] {
				match += cw.weight * ta.score[i-1][cw.residue]
			}
			dm, dx, dy := m[prev+j-1], ix[prev+j-1], iy[prev+j-1]
			best, op := dm, tbM
			if dx > best {
				best, op = dx, tbIx
			}
			if dy > best {
				best, op = dy, tbIy
			}
			m[row+j] = best + match
			tbm[row+j] = op

			openB := open * (1 - 0.5*tb.gapFrac[j-1])
			if o, e := m[prev+j]-openB, ix[prev+j]-ext; o >= e {
				ix[row+j] = o
				tbx[row+j] = tbM
			} else {
				ix[row+j] = e
				tbx[row+j] = tbIx
			}
			if o, e := m[row+j-1]-openA, iy[row+j-1]-ext; o >= e {
				iy[row+j] = o
				tby[row+j] = tbM
			} else {
				iy[row+j] = e
				tby[row+j] = tbIy
			}
		}
	}

	// Traceback.
	end := la*cols + lb
	state := tbM
	bestScore := m[end]
	if ix[end] > bestScore {
		state, bestScore = tbIx, ix[end]
	}
	if iy[end] > bestScore {
		state, bestScore = tbIy, iy[end]
	}
	_ = bestScore
	trace := make([]byte, 0, la+lb)
	i, j := la, lb
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && state == tbM:
			next := tbm[i*cols+j]
			trace = append(trace, 'M')
			i--
			j--
			state = next
		case i > 0 && (state == tbIx || j == 0):
			next := tbx[i*cols+j]
			trace = append(trace, 'A')
			i--
			state = next
		default:
			next := tby[i*cols+j]
			trace = append(trace, 'B')
			j--
			state = next
		}
	}
	reverseBytes(trace)
	return trace
}

// padd merges two groups along a pdiff trace, inserting gap columns —
// ClustalW's add-gaps step.
func padd(a, b *group, trace []byte, prof *profiler.Profiler) *group {
	defer prof.Enter("padd")()
	out := &group{rows: make([]Sequence, 0, len(a.rows)+len(b.rows))}
	build := func(src *group, consume byte) []([]byte) {
		bufs := make([][]byte, len(src.rows))
		for r := range bufs {
			bufs[r] = make([]byte, 0, len(trace))
		}
		pos := 0
		for _, op := range trace {
			if op == 'M' || op == consume {
				for r := range src.rows {
					bufs[r] = append(bufs[r], src.rows[r].Residues[pos])
				}
				pos++
			} else {
				for r := range bufs {
					bufs[r] = append(bufs[r], '-')
				}
			}
		}
		return bufs
	}
	aBufs := build(a, 'A')
	bBufs := build(b, 'B')
	for r, row := range a.rows {
		out.rows = append(out.rows, Sequence{ID: row.ID, Residues: string(aBufs[r])})
	}
	for r, row := range b.rows {
		out.rows = append(out.rows, Sequence{ID: row.ID, Residues: string(bBufs[r])})
	}
	out.weights = append(append([]float32(nil), a.weights...), b.weights...)
	return out
}

// MAlign performs progressive alignment along a guide tree — ClustalW's
// malign kernel, the case study's second task.
func MAlign(seqs []Sequence, tree *TreeNode, prof *profiler.Profiler) ([]Sequence, error) {
	if tree == nil {
		return nil, fmt.Errorf("bio: malign needs a guide tree")
	}
	leaves := tree.Leaves()
	if len(leaves) != len(seqs) {
		return nil, fmt.Errorf("bio: guide tree covers %d sequences, input has %d", len(leaves), len(seqs))
	}
	seen := make([]bool, len(seqs))
	for _, l := range leaves {
		if l < 0 || l >= len(seqs) || seen[l] {
			return nil, fmt.Errorf("bio: guide tree leaf %d invalid or duplicated", l)
		}
		seen[l] = true
	}
	defer prof.Enter("malign")()
	weights, err := SequenceWeights(tree, len(seqs))
	if err != nil {
		return nil, err
	}
	merged := mergeNode(tree, seqs, weights, prof)
	// Restore the input order.
	byID := make(map[string]Sequence, len(merged.rows))
	for _, row := range merged.rows {
		byID[row.ID] = row
	}
	out := make([]Sequence, len(seqs))
	for i, s := range seqs {
		row, ok := byID[s.ID]
		if !ok {
			return nil, fmt.Errorf("bio: sequence %s lost during merge", s.ID)
		}
		out[i] = row
	}
	return out, nil
}

func mergeNode(t *TreeNode, seqs []Sequence, weights []float64, prof *profiler.Profiler) *group {
	if t.IsLeaf() {
		return &group{
			rows:    []Sequence{seqs[t.Leaf]},
			weights: []float32{float32(weights[t.Leaf])},
		}
	}
	left := mergeNode(t.Left, seqs, weights, prof)
	right := mergeNode(t.Right, seqs, weights, prof)
	ta := prfscore(left, prof)
	tb := prfscore(right, prof)
	trace := pdiff(ta, tb, prof)
	return padd(left, right, trace, prof)
}
