package bio

import (
	"testing"

	"repro/internal/sim"
)

func familyFor(t *testing.T, seed uint64, n, length int) []Sequence {
	t.Helper()
	seqs, err := GenerateFamily(sim.NewRNG(seed), FamilyOptions{
		Count: n, Length: length, SubstitutionRate: 0.15, IndelRate: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	return seqs
}

func TestMAlignProducesRectangularAlignment(t *testing.T) {
	seqs := familyFor(t, 3, 8, 80)
	dist, err := PairAlignAll(seqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := NeighborJoining(dist, nil)
	if err != nil {
		t.Fatal(err)
	}
	aligned, err := MAlign(seqs, tree, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(aligned) != len(seqs) {
		t.Fatalf("aligned %d rows, want %d", len(aligned), len(seqs))
	}
	cols := len(aligned[0].Residues)
	for i, row := range aligned {
		if len(row.Residues) != cols {
			t.Errorf("row %d has %d cols, want %d", i, len(row.Residues), cols)
		}
		if Ungap(row.Residues) != seqs[i].Residues {
			t.Errorf("row %d corrupted residues", i)
		}
		if row.ID != seqs[i].ID {
			t.Errorf("row %d out of input order: %s vs %s", i, row.ID, seqs[i].ID)
		}
	}
}

func TestMAlignValidatesTree(t *testing.T) {
	seqs := familyFor(t, 4, 4, 40)
	if _, err := MAlign(seqs, nil, nil); err == nil {
		t.Error("nil tree accepted")
	}
	short := &TreeNode{Leaf: -1, Left: &TreeNode{Leaf: 0}, Right: &TreeNode{Leaf: 1}}
	if _, err := MAlign(seqs, short, nil); err == nil {
		t.Error("tree covering 2 of 4 sequences accepted")
	}
	dup := &TreeNode{Leaf: -1,
		Left:  &TreeNode{Leaf: -1, Left: &TreeNode{Leaf: 0}, Right: &TreeNode{Leaf: 0}},
		Right: &TreeNode{Leaf: -1, Left: &TreeNode{Leaf: 1}, Right: &TreeNode{Leaf: 2}},
	}
	if _, err := MAlign(seqs, dup, nil); err == nil {
		t.Error("tree with duplicated leaf accepted")
	}
}

func TestPrfscoreFrequencies(t *testing.T) {
	g := &group{rows: []Sequence{
		{ID: "a", Residues: "AA"},
		{ID: "b", Residues: "A-"},
		{ID: "c", Residues: "AC"},
		{ID: "d", Residues: "AC"},
	}}
	tab := prfscore(g, nil)
	if len(tab.score) != 2 {
		t.Fatalf("cols = %d", len(tab.score))
	}
	if tab.gapFrac[0] != 0 || tab.gapFrac[1] != 0.25 {
		t.Errorf("gapFrac = %v", tab.gapFrac)
	}
	// Column 0 is all A: its score against A must be the A/A BLOSUM entry.
	aIdx := ResidueIndex('A')
	if got := tab.score[0][aIdx]; got != float32(ScoreIdx(aIdx, aIdx)) {
		t.Errorf("col0 score vs A = %v", got)
	}
	// Column 1: A×1, C×2 over 4 rows (one gap).
	if len(tab.freq[1]) != 2 {
		t.Errorf("col1 freq entries = %d", len(tab.freq[1]))
	}
}

func TestPdiffIdenticalProfilesAlignDiagonally(t *testing.T) {
	g := &group{rows: []Sequence{{ID: "a", Residues: "ARNDCQEGH"}}}
	ta := prfscore(g, nil)
	tb := prfscore(g, nil)
	trace := pdiff(ta, tb, nil)
	for _, op := range trace {
		if op != 'M' {
			t.Fatalf("identical profiles should align all-match, got %s", string(trace))
		}
	}
	if len(trace) != 9 {
		t.Errorf("trace length = %d", len(trace))
	}
}

func TestPaddMergesWithGaps(t *testing.T) {
	a := &group{rows: []Sequence{{ID: "a", Residues: "AR"}}}
	b := &group{rows: []Sequence{{ID: "b", Residues: "ARN"}}}
	trace := []byte{'M', 'M', 'B'}
	merged := padd(a, b, trace, nil)
	if len(merged.rows) != 2 {
		t.Fatalf("merged rows = %d", len(merged.rows))
	}
	if merged.rows[0].Residues != "AR-" {
		t.Errorf("row a = %q", merged.rows[0].Residues)
	}
	if merged.rows[1].Residues != "ARN" {
		t.Errorf("row b = %q", merged.rows[1].Residues)
	}
}

func TestMAlignTwoSequencesMatchesPairwiseQuality(t *testing.T) {
	a := Sequence{ID: "a", Residues: "ARNDCQEGHILKMFP"}
	b := Sequence{ID: "b", Residues: "ARNDCEGHILKMFP"} // Q deleted
	tree := &TreeNode{Leaf: -1, Left: &TreeNode{Leaf: 0}, Right: &TreeNode{Leaf: 1}}
	aligned, err := MAlign([]Sequence{a, b}, tree, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(aligned[0].Residues) != len(aligned[1].Residues) {
		t.Fatal("ragged alignment")
	}
	if aligned[1].Residues != "ARNDC-EGHILKMFP" {
		t.Errorf("profile alignment = %q, want the single-gap solution", aligned[1].Residues)
	}
}
