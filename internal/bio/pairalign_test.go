package bio

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestIdenticalSequencesAlignPerfectly(t *testing.T) {
	s := Sequence{ID: "a", Residues: "ARNDCQEGHILK"}
	s2 := Sequence{ID: "b", Residues: s.Residues}
	res, err := PairAlign(s, s2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Identity != 1 {
		t.Errorf("identity = %v, want 1", res.Identity)
	}
	if res.AlignedA != s.Residues || res.AlignedB != s.Residues {
		t.Errorf("alignment introduced gaps: %q / %q", res.AlignedA, res.AlignedB)
	}
	// Score should be the sum of diagonal BLOSUM entries.
	want := 0
	for i := 0; i < len(s.Residues); i++ {
		want += Score(s.Residues[i], s.Residues[i])
	}
	if res.Score != want {
		t.Errorf("score = %d, want %d", res.Score, want)
	}
	if res.Distance() != 0 {
		t.Errorf("distance = %v", res.Distance())
	}
}

func TestSingleDeletionFindsGap(t *testing.T) {
	a := Sequence{ID: "a", Residues: "ARNDCQEGHILK"}
	b := Sequence{ID: "b", Residues: "ARNDCEGHILK"} // Q removed
	res, err := PairAlign(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AlignedA) != len(res.AlignedB) {
		t.Fatal("aligned lengths differ")
	}
	if Ungap(res.AlignedA) != a.Residues || Ungap(res.AlignedB) != b.Residues {
		t.Error("alignment corrupted residues")
	}
	if res.AlignedB != "ARNDC-EGHILK" {
		t.Errorf("alignedB = %q, want gap at the deleted Q", res.AlignedB)
	}
	if res.Identity < 0.9 {
		t.Errorf("identity = %v", res.Identity)
	}
}

func TestAffineGapsPreferOneLongGap(t *testing.T) {
	// With affine penalties one 3-gap must beat three 1-gaps.
	a := Sequence{ID: "a", Residues: "WWWWAAAWWWW"}
	b := Sequence{ID: "b", Residues: "WWWWWWWW"}
	res, err := PairAlign(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	gapRuns := 0
	inGap := false
	for i := 0; i < len(res.AlignedB); i++ {
		if res.AlignedB[i] == '-' {
			if !inGap {
				gapRuns++
				inGap = true
			}
		} else {
			inGap = false
		}
	}
	if gapRuns != 1 {
		t.Errorf("gap runs = %d, want 1 contiguous gap (affine)\n%s\n%s", gapRuns, res.AlignedA, res.AlignedB)
	}
}

func TestPairAlignValidatesInput(t *testing.T) {
	good := Sequence{ID: "a", Residues: "ARNDC"}
	if _, err := PairAlign(Sequence{}, good, nil); err == nil {
		t.Error("invalid first sequence accepted")
	}
	if _, err := PairAlign(good, Sequence{ID: "b"}, nil); err == nil {
		t.Error("invalid second sequence accepted")
	}
}

func TestPairAlignProperties(t *testing.T) {
	rng := sim.NewRNG(9)
	f := func(seed uint64) bool {
		r := rng.Split(seed)
		la := 5 + r.Intn(60)
		lb := 5 + r.Intn(60)
		mk := func(n int) string {
			b := make([]byte, n)
			for i := range b {
				b[i] = Alphabet[r.Intn(AlphabetSize)]
			}
			return string(b)
		}
		a := Sequence{ID: "a", Residues: mk(la)}
		b := Sequence{ID: "b", Residues: mk(lb)}
		res, err := PairAlign(a, b, nil)
		if err != nil {
			return false
		}
		// Invariants: equal aligned lengths, residues preserved in order,
		// identity within [0,1], no column with two gaps.
		if len(res.AlignedA) != len(res.AlignedB) {
			return false
		}
		if Ungap(res.AlignedA) != a.Residues || Ungap(res.AlignedB) != b.Residues {
			return false
		}
		if res.Identity < 0 || res.Identity > 1 {
			return false
		}
		for i := 0; i < len(res.AlignedA); i++ {
			if res.AlignedA[i] == '-' && res.AlignedB[i] == '-' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPairAlignSymmetricScore(t *testing.T) {
	r := sim.NewRNG(11)
	mk := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = Alphabet[r.Intn(AlphabetSize)]
		}
		return string(b)
	}
	a := Sequence{ID: "a", Residues: mk(40)}
	b := Sequence{ID: "b", Residues: mk(35)}
	ab, err := PairAlign(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := PairAlign(b, a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ab.Score != ba.Score {
		t.Errorf("score asymmetry: %d vs %d", ab.Score, ba.Score)
	}
	if ab.Identity != ba.Identity {
		t.Errorf("identity asymmetry: %v vs %v", ab.Identity, ba.Identity)
	}
}

func TestPairAlignAllMatrixProperties(t *testing.T) {
	rng := sim.NewRNG(5)
	seqs, err := GenerateFamily(rng, FamilyOptions{Count: 6, Length: 60, SubstitutionRate: 0.2, IndelRate: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	d, err := PairAlignAll(seqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d {
		if d[i][i] != 0 {
			t.Errorf("self distance d[%d][%d] = %v", i, i, d[i][i])
		}
		for j := range d {
			if d[i][j] != d[j][i] {
				t.Errorf("asymmetry at (%d,%d)", i, j)
			}
			if d[i][j] < 0 || d[i][j] > 1 {
				t.Errorf("distance out of range: %v", d[i][j])
			}
		}
	}
}

func TestPairAlignAllValidation(t *testing.T) {
	if _, err := PairAlignAll(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	one := []Sequence{{ID: "a", Residues: "ARNDC"}}
	if _, err := PairAlignAll(one, nil); err == nil {
		t.Error("single sequence accepted")
	}
	two := []Sequence{{ID: "a", Residues: "ARNDC"}, {ID: "b"}}
	if _, err := PairAlignAll(two, nil); err == nil {
		t.Error("invalid member accepted")
	}
}
