package bio

import (
	"testing"

	"repro/internal/sim"
)

func tracedFamily(t *testing.T, seed uint64, opt FamilyOptions) []TracedSequence {
	t.Helper()
	traced, err := GenerateFamilyTraced(sim.NewRNG(seed), opt)
	if err != nil {
		t.Fatal(err)
	}
	return traced
}

func TestTracedFamilyCoordinatesConsistent(t *testing.T) {
	traced := tracedFamily(t, 31, FamilyOptions{Count: 10, Length: 120, SubstitutionRate: 0.15, IndelRate: 0.03})
	for _, tr := range traced {
		if len(tr.AncestorPos) != tr.Seq.Len() {
			t.Fatalf("%s: %d positions for %d residues", tr.Seq.ID, len(tr.AncestorPos), tr.Seq.Len())
		}
		// Ancestor positions are strictly increasing over non-insertions.
		last := -1
		for _, p := range tr.AncestorPos {
			if p == -1 {
				continue
			}
			if p <= last {
				t.Fatalf("%s: ancestor positions not increasing", tr.Seq.ID)
			}
			last = p
		}
		if err := tr.Seq.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	seqs := Sequences(traced)
	if len(seqs) != len(traced) || seqs[0].ID != traced[0].Seq.ID {
		t.Error("Sequences helper broken")
	}
}

func TestAlignerRecoversReferenceAlignment(t *testing.T) {
	// Moderate divergence: the progressive aligner must recover the large
	// majority of ground-truth residue pairs.
	opt := FamilyOptions{Count: 12, Length: 150, SubstitutionRate: 0.15, IndelRate: 0.02}
	traced := tracedFamily(t, 33, opt)
	res, err := Align(Sequences(traced), nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	acc, err := AlignmentAccuracy(res.Aligned, traced)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("alignment accuracy = %.3f, want ≥0.9 at moderate divergence", acc)
	}
	if acc > 1.0+1e-9 {
		t.Errorf("accuracy %.3f exceeds 1", acc)
	}
}

func TestAccuracyDegradesWithDivergence(t *testing.T) {
	opt := FamilyOptions{Count: 8, Length: 120, SubstitutionRate: 0.1, IndelRate: 0.01}
	easy := tracedFamily(t, 35, opt)
	opt.SubstitutionRate = 0.55
	opt.IndelRate = 0.08
	hard := tracedFamily(t, 35, opt)

	run := func(traced []TracedSequence) float64 {
		res, err := Align(Sequences(traced), nil, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		acc, err := AlignmentAccuracy(res.Aligned, traced)
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	accEasy, accHard := run(easy), run(hard)
	if accEasy <= accHard {
		t.Errorf("accuracy should degrade with divergence: easy %.3f vs hard %.3f", accEasy, accHard)
	}
}

func TestAlignmentAccuracyValidation(t *testing.T) {
	traced := tracedFamily(t, 36, FamilyOptions{Count: 3, Length: 60, SubstitutionRate: 0.1, IndelRate: 0.01})
	res, err := Align(Sequences(traced), nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AlignmentAccuracy(res.Aligned[:2], traced); err == nil {
		t.Error("row-count mismatch accepted")
	}
	renamed := append([]Sequence(nil), res.Aligned...)
	renamed[0].ID = "ghost"
	if _, err := AlignmentAccuracy(renamed, traced); err == nil {
		t.Error("unknown row accepted")
	}
	corrupted := append([]Sequence(nil), res.Aligned...)
	corrupted[0].Residues = corrupted[1].Residues
	if _, err := AlignmentAccuracy(corrupted, traced); err == nil {
		t.Error("corrupted row accepted")
	}
}

func TestGenerateFamilyTracedValidation(t *testing.T) {
	rng := sim.NewRNG(1)
	if _, err := GenerateFamilyTraced(rng, FamilyOptions{Count: 1, Length: 100}); err == nil {
		t.Error("single-sequence family accepted")
	}
	if _, err := GenerateFamilyTraced(rng, FamilyOptions{Count: 3, Length: 2}); err == nil {
		t.Error("tiny length accepted")
	}
}
