package bio

import (
	"fmt"
	"strings"

	"repro/internal/sim"
)

// TracedSequence is a generated sequence that remembers, for every
// residue, which ancestor position it descends from (-1 for insertions).
// The traces define a ground-truth alignment: residues from the same
// ancestor position belong in the same column.
type TracedSequence struct {
	Seq Sequence
	// AncestorPos has one entry per residue.
	AncestorPos []int
}

// GenerateFamilyTraced produces a synthetic homologous family together
// with its ground-truth coordinates, for measuring aligner accuracy.
// The mutation process matches GenerateFamily's.
func GenerateFamilyTraced(rng *sim.RNG, opt FamilyOptions) ([]TracedSequence, error) {
	if opt.Count < 2 {
		return nil, fmt.Errorf("bio: family needs ≥2 sequences, got %d", opt.Count)
	}
	if opt.Length < 10 {
		return nil, fmt.Errorf("bio: family length %d too short", opt.Length)
	}
	if opt.SubstitutionRate < 0 || opt.SubstitutionRate > 1 || opt.IndelRate < 0 || opt.IndelRate > 0.5 {
		return nil, fmt.Errorf("bio: implausible mutation rates (%g, %g)", opt.SubstitutionRate, opt.IndelRate)
	}
	ancestor := make([]byte, opt.Length)
	for i := range ancestor {
		ancestor[i] = Alphabet[rng.Intn(AlphabetSize)]
	}
	out := make([]TracedSequence, opt.Count)
	for s := 0; s < opt.Count; s++ {
		var b strings.Builder
		var pos []int
		for i := 0; i < len(ancestor); i++ {
			r := rng.Float64()
			switch {
			case r < opt.IndelRate/2:
				// deletion
			case r < opt.IndelRate:
				b.WriteByte(Alphabet[rng.Intn(AlphabetSize)])
				pos = append(pos, -1)
				b.WriteByte(ancestor[i])
				pos = append(pos, i)
			case r < opt.IndelRate+opt.SubstitutionRate:
				b.WriteByte(Alphabet[rng.Intn(AlphabetSize)])
				pos = append(pos, i)
			default:
				b.WriteByte(ancestor[i])
				pos = append(pos, i)
			}
		}
		seq := b.String()
		if len(seq) < 2 {
			seq = string(ancestor[:2])
			pos = []int{0, 1}
		}
		out[s] = TracedSequence{
			Seq:         Sequence{ID: fmt.Sprintf("seq%03d", s), Residues: seq},
			AncestorPos: pos,
		}
	}
	return out, nil
}

// Sequences strips the traces.
func Sequences(traced []TracedSequence) []Sequence {
	out := make([]Sequence, len(traced))
	for i, t := range traced {
		out[i] = t.Seq
	}
	return out
}

// AlignmentAccuracy scores a finished alignment against the ground truth:
// the fraction of reference residue pairs (two residues descending from
// the same ancestor position) that the alignment places in the same
// column — the standard SP (sum-of-pairs) accuracy of MSA benchmarking.
func AlignmentAccuracy(aligned []Sequence, truth []TracedSequence) (float64, error) {
	if len(aligned) != len(truth) {
		return 0, fmt.Errorf("bio: %d aligned rows vs %d traced sequences", len(aligned), len(truth))
	}
	byID := make(map[string]TracedSequence, len(truth))
	for _, tr := range truth {
		byID[tr.Seq.ID] = tr
	}
	// For every row, map alignment columns to ancestor positions.
	cols := 0
	colPos := make([][]int, len(aligned)) // per row, per column: ancestor pos or -2 for gap
	for r, row := range aligned {
		tr, ok := byID[row.ID]
		if !ok {
			return 0, fmt.Errorf("bio: aligned row %s has no trace", row.ID)
		}
		if Ungap(row.Residues) != tr.Seq.Residues {
			return 0, fmt.Errorf("bio: aligned row %s does not match its sequence", row.ID)
		}
		if r == 0 {
			cols = len(row.Residues)
		} else if len(row.Residues) != cols {
			return 0, fmt.Errorf("bio: ragged alignment")
		}
		mapped := make([]int, cols)
		residue := 0
		for c := 0; c < cols; c++ {
			if row.Residues[c] == '-' {
				mapped[c] = -2
				continue
			}
			mapped[c] = tr.AncestorPos[residue]
			residue++
		}
		colPos[r] = mapped
	}
	// Count reference pairs and recovered pairs.
	var refPairs, hitPairs int
	for i := 0; i < len(aligned); i++ {
		for j := i + 1; j < len(aligned); j++ {
			ti, tj := byID[aligned[i].ID], byID[aligned[j].ID]
			// Reference pairs: ancestor positions present in both.
			present := make(map[int]bool, len(ti.AncestorPos))
			for _, p := range ti.AncestorPos {
				if p >= 0 {
					present[p] = true
				}
			}
			for _, p := range tj.AncestorPos {
				if p >= 0 && present[p] {
					refPairs++
				}
			}
			// Recovered pairs: same column, same ancestor position.
			for c := 0; c < cols; c++ {
				pi, pj := colPos[i][c], colPos[j][c]
				if pi >= 0 && pi == pj {
					hitPairs++
				}
			}
		}
	}
	if refPairs == 0 {
		return 0, fmt.Errorf("bio: no reference pairs (unrelated sequences?)")
	}
	return float64(hitPairs) / float64(refPairs), nil
}
