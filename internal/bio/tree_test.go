package bio

import (
	"sort"
	"strings"
	"testing"
)

// fourTaxa is the classic additive matrix where NJ must pair (0,1) and (2,3).
func fourTaxa() [][]float64 {
	return [][]float64{
		{0, 2, 7, 7},
		{2, 0, 7, 7},
		{7, 7, 0, 2},
		{7, 7, 2, 0},
	}
}

func leavesSorted(t *TreeNode) []int {
	ls := t.Leaves()
	sort.Ints(ls)
	return ls
}

func TestNJCoversAllLeaves(t *testing.T) {
	tree, err := NeighborJoining(fourTaxa(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ls := leavesSorted(tree)
	if len(ls) != 4 {
		t.Fatalf("leaves = %v", ls)
	}
	for i, l := range ls {
		if l != i {
			t.Fatalf("leaves = %v, want 0..3", ls)
		}
	}
}

// hasClade reports whether some subtree's leaf set is exactly want.
func hasClade(t *TreeNode, want []int) bool {
	if t == nil {
		return false
	}
	ls := t.Leaves()
	if len(ls) == len(want) {
		sort.Ints(ls)
		match := true
		for i := range ls {
			if ls[i] != want[i] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return hasClade(t.Left, want) || hasClade(t.Right, want)
}

func TestNJRecoversSisterPairs(t *testing.T) {
	tree, err := NeighborJoining(fourTaxa(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// The unrooted topology must separate {0,1} from {2,3}; in the rooted
	// rendering that means at least one of the two cherries is a clade.
	if !hasClade(tree, []int{0, 1}) && !hasClade(tree, []int{2, 3}) {
		t.Errorf("NJ tree %s does not recover sister pairs", tree.Newick())
	}
	// And the wrong pairings must NOT both appear as clades.
	if hasClade(tree, []int{0, 2}) || hasClade(tree, []int{1, 3}) {
		t.Errorf("NJ tree %s groups non-sisters", tree.Newick())
	}
}

func TestUPGMARecoversUltrametricTree(t *testing.T) {
	// Ultrametric: heights 1 for (0,1), 2 for ((0,1),2).
	d := [][]float64{
		{0, 2, 4},
		{2, 0, 4},
		{4, 4, 0},
	}
	tree, err := UPGMA(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	nw := tree.Newick()
	if !strings.Contains(nw, "(0,1)") && !strings.Contains(nw, "(1,0)") {
		t.Errorf("UPGMA tree %s should pair taxa 0,1 first", nw)
	}
	if len(leavesSorted(tree)) != 3 {
		t.Error("leaf coverage")
	}
}

func TestGuideTreeValidation(t *testing.T) {
	bad := [][][]float64{
		nil,
		{{0}},
		{{0, 1}, {1, 0, 0}}, // ragged
		{{0.5, 1}, {1, 0}},  // non-zero diagonal
		{{0, -1}, {-1, 0}},  // negative
		{{0, 1}, {2, 0}},    // asymmetric
	}
	for i, d := range bad {
		if _, err := NeighborJoining(d, nil); err == nil {
			t.Errorf("NJ accepted bad matrix %d", i)
		}
		if _, err := UPGMA(d, nil); err == nil {
			t.Errorf("UPGMA accepted bad matrix %d", i)
		}
	}
}

func TestTwoTaxaTree(t *testing.T) {
	d := [][]float64{{0, 1}, {1, 0}}
	tree, err := NeighborJoining(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tree.IsLeaf() || !tree.Left.IsLeaf() || !tree.Right.IsLeaf() {
		t.Error("two-taxon tree should be a single join of two leaves")
	}
	if tree.Newick() != "(0,1);" && tree.Newick() != "(1,0);" {
		t.Errorf("Newick = %s", tree.Newick())
	}
}

func TestTreeNodeHelpers(t *testing.T) {
	var nilTree *TreeNode
	if nilTree.Leaves() != nil {
		t.Error("nil tree should have no leaves")
	}
	leaf := &TreeNode{Leaf: 3}
	if !leaf.IsLeaf() || leaf.Newick() != "3;" {
		t.Error("leaf helpers broken")
	}
}

func TestNJLargerMatrixIsBinaryAndComplete(t *testing.T) {
	// A 7-taxon matrix derived from a chain topology.
	n := 7
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			diff := i - j
			if diff < 0 {
				diff = -diff
			}
			d[i][j] = float64(diff)
		}
	}
	tree, err := NeighborJoining(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := leavesSorted(tree); len(got) != n {
		t.Fatalf("leaves = %v", got)
	}
	// Binary: every internal node has exactly two children.
	var check func(*TreeNode) bool
	check = func(t *TreeNode) bool {
		if t.IsLeaf() {
			return true
		}
		if t.Left == nil || t.Right == nil {
			return false
		}
		return check(t.Left) && check(t.Right)
	}
	if !check(tree) {
		t.Error("tree is not strictly binary")
	}
}

func TestKimuraDistance(t *testing.T) {
	if KimuraDistance(1) != 0 {
		t.Errorf("identical sequences distance = %v", KimuraDistance(1))
	}
	// Correction always at least the raw distance, growing with divergence.
	prev := 0.0
	for _, id := range []float64{0.95, 0.9, 0.8, 0.6, 0.4} {
		d := KimuraDistance(id)
		raw := 1 - id
		if d < raw {
			t.Errorf("correction shrank the distance at identity %v: %v < %v", id, d, raw)
		}
		if d <= prev {
			t.Errorf("correction not monotone at identity %v", id)
		}
		prev = d
	}
	if KimuraDistance(0.05) != 10 {
		t.Errorf("diverged pair should saturate at 10, got %v", KimuraDistance(0.05))
	}
	if KimuraDistance(-1) != 10 || KimuraDistance(2) != 0 {
		t.Error("identity clamping broken")
	}
}

func TestKimuraMatrix(t *testing.T) {
	raw := [][]float64{
		{0, 0.2},
		{0.2, 0},
	}
	k := KimuraMatrix(raw)
	if k[0][0] != 0 || k[1][1] != 0 {
		t.Error("diagonal changed")
	}
	if k[0][1] <= 0.2 || k[0][1] != k[1][0] {
		t.Errorf("corrected = %v", k[0][1])
	}
	// A corrected matrix still builds a valid tree.
	if _, err := NeighborJoining(k, nil); err != nil {
		t.Errorf("NJ on corrected matrix: %v", err)
	}
}
