// Package bio implements a ClustalW-style progressive multiple-sequence
// aligner: pairwise alignment with affine gap penalties (the pairalign
// kernel), a neighbour-joining guide tree, and progressive profile
// alignment (the malign kernel).
//
// The reproduced paper profiles ClustalW from the BioBench suite with gprof
// (Fig. 10) and finds pairalign and malign consume 89.76 % and 7.79 % of
// runtime. BioBench binaries and their inputs are not available here, so
// this package is the substitution: a real aligner with the same hot-kernel
// structure, profiled by internal/profiler, regenerating the figure's shape.
package bio

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/sim"
)

// Alphabet is the 20 standard amino acids in the residue-index order used
// by the substitution matrix.
const Alphabet = "ARNDCQEGHILKMFPSTWYV"

// AlphabetSize is the number of residue symbols.
const AlphabetSize = len(Alphabet)

// residueIndex maps an amino-acid letter to its alphabet index, or -1.
var residueIndex = func() [256]int8 {
	var m [256]int8
	for i := range m {
		m[i] = -1
	}
	for i := 0; i < AlphabetSize; i++ {
		m[Alphabet[i]] = int8(i)
		m[Alphabet[i]+'a'-'A'] = int8(i)
	}
	return m
}()

// ResidueIndex returns the alphabet index of a residue letter, or -1 for
// anything that is not an amino-acid code.
func ResidueIndex(c byte) int { return int(residueIndex[c]) }

// Sequence is a named protein sequence.
type Sequence struct {
	ID       string
	Residues string
}

// Len returns the residue count.
func (s Sequence) Len() int { return len(s.Residues) }

// Validate rejects empty and non-amino-acid sequences.
func (s Sequence) Validate() error {
	if s.ID == "" {
		return fmt.Errorf("bio: sequence without an ID")
	}
	if len(s.Residues) == 0 {
		return fmt.Errorf("bio: sequence %s is empty", s.ID)
	}
	for i := 0; i < len(s.Residues); i++ {
		if ResidueIndex(s.Residues[i]) < 0 {
			return fmt.Errorf("bio: sequence %s has invalid residue %q at %d", s.ID, s.Residues[i], i)
		}
	}
	return nil
}

// ParseFASTA reads sequences in FASTA format.
func ParseFASTA(r io.Reader) ([]Sequence, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []Sequence
	var cur *Sequence
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		switch {
		case text == "":
			continue
		case strings.HasPrefix(text, ">"):
			if cur != nil {
				out = append(out, *cur)
			}
			id := strings.Fields(text[1:])
			if len(id) == 0 {
				return nil, fmt.Errorf("bio: line %d: FASTA header without an ID", line)
			}
			cur = &Sequence{ID: id[0]}
		default:
			if cur == nil {
				return nil, fmt.Errorf("bio: line %d: sequence data before any header", line)
			}
			cur.Residues += strings.ToUpper(text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bio: reading FASTA: %w", err)
	}
	if cur != nil {
		out = append(out, *cur)
	}
	for _, s := range out {
		if err := s.Validate(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WriteFASTA writes sequences in FASTA format with 60-column wrapping.
func WriteFASTA(w io.Writer, seqs []Sequence) error {
	for _, s := range seqs {
		if _, err := fmt.Fprintf(w, ">%s\n", s.ID); err != nil {
			return err
		}
		for i := 0; i < len(s.Residues); i += 60 {
			end := i + 60
			if end > len(s.Residues) {
				end = len(s.Residues)
			}
			if _, err := fmt.Fprintln(w, s.Residues[i:end]); err != nil {
				return err
			}
		}
	}
	return nil
}

// FamilyOptions control synthetic protein-family generation.
type FamilyOptions struct {
	// Count is the number of sequences.
	Count int
	// Length is the ancestor length; descendants drift around it.
	Length int
	// SubstitutionRate is the per-residue mutation probability per lineage.
	SubstitutionRate float64
	// IndelRate is the per-residue insertion/deletion probability.
	IndelRate float64
}

// DefaultFamily matches the scale of a BioBench ClustalW input: a few dozen
// related protein sequences of a few hundred residues.
func DefaultFamily() FamilyOptions {
	return FamilyOptions{Count: 24, Length: 240, SubstitutionRate: 0.15, IndelRate: 0.02}
}

// GenerateFamily produces a synthetic homologous protein family: a random
// ancestor mutated independently per descendant. Related sequences make the
// alignment non-trivial and the guide tree meaningful.
func GenerateFamily(rng *sim.RNG, opt FamilyOptions) ([]Sequence, error) {
	if opt.Count < 2 {
		return nil, fmt.Errorf("bio: family needs ≥2 sequences, got %d", opt.Count)
	}
	if opt.Length < 10 {
		return nil, fmt.Errorf("bio: family length %d too short", opt.Length)
	}
	if opt.SubstitutionRate < 0 || opt.SubstitutionRate > 1 || opt.IndelRate < 0 || opt.IndelRate > 0.5 {
		return nil, fmt.Errorf("bio: implausible mutation rates (%g, %g)", opt.SubstitutionRate, opt.IndelRate)
	}
	ancestor := make([]byte, opt.Length)
	for i := range ancestor {
		ancestor[i] = Alphabet[rng.Intn(AlphabetSize)]
	}
	out := make([]Sequence, opt.Count)
	for s := 0; s < opt.Count; s++ {
		var b strings.Builder
		for i := 0; i < len(ancestor); i++ {
			r := rng.Float64()
			switch {
			case r < opt.IndelRate/2:
				// deletion: skip residue
			case r < opt.IndelRate:
				// insertion: extra random residue plus the original
				b.WriteByte(Alphabet[rng.Intn(AlphabetSize)])
				b.WriteByte(ancestor[i])
			case r < opt.IndelRate+opt.SubstitutionRate:
				b.WriteByte(Alphabet[rng.Intn(AlphabetSize)])
			default:
				b.WriteByte(ancestor[i])
			}
		}
		seq := b.String()
		if len(seq) < 2 {
			seq = string(ancestor[:2]) // degenerate mutation path; keep valid
		}
		out[s] = Sequence{ID: fmt.Sprintf("seq%03d", s), Residues: seq}
	}
	return out, nil
}
