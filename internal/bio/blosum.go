package bio

// BLOSUM62 substitution matrix in Alphabet order (ARNDCQEGHILKMFPSTWYV),
// the standard protein scoring matrix ClustalW defaults to.
var blosum62 = [AlphabetSize][AlphabetSize]int{
	// A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V
	{4, -1, -2, -2, 0, -1, -1, 0, -2, -1, -1, -1, -1, -2, -1, 1, 0, -3, -2, 0},      // A
	{-1, 5, 0, -2, -3, 1, 0, -2, 0, -3, -2, 2, -1, -3, -2, -1, -1, -3, -2, -3},      // R
	{-2, 0, 6, 1, -3, 0, 0, 0, 1, -3, -3, 0, -2, -3, -2, 1, 0, -4, -2, -3},          // N
	{-2, -2, 1, 6, -3, 0, 2, -1, -1, -3, -4, -1, -3, -3, -1, 0, -1, -4, -3, -3},     // D
	{0, -3, -3, -3, 9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1},  // C
	{-1, 1, 0, 0, -3, 5, 2, -2, 0, -3, -2, 1, 0, -3, -1, 0, -1, -2, -1, -2},         // Q
	{-1, 0, 0, 2, -4, 2, 5, -2, 0, -3, -3, 1, -2, -3, -1, 0, -1, -3, -2, -2},        // E
	{0, -2, 0, -1, -3, -2, -2, 6, -2, -4, -4, -2, -3, -3, -2, 0, -2, -2, -3, -3},    // G
	{-2, 0, 1, -1, -3, 0, 0, -2, 8, -3, -3, -1, -2, -1, -2, -1, -2, -2, 2, -3},      // H
	{-1, -3, -3, -3, -1, -3, -3, -4, -3, 4, 2, -3, 1, 0, -3, -2, -1, -3, -1, 3},     // I
	{-1, -2, -3, -4, -1, -2, -3, -4, -3, 2, 4, -2, 2, 0, -3, -2, -1, -2, -1, 1},     // L
	{-1, 2, 0, -1, -3, 1, 1, -2, -1, -3, -2, 5, -1, -3, -1, 0, -1, -3, -2, -2},      // K
	{-1, -1, -2, -3, -1, 0, -2, -3, -2, 1, 2, -1, 5, 0, -2, -1, -1, -1, -1, 1},      // M
	{-2, -3, -3, -3, -2, -3, -3, -3, -1, 0, 0, -3, 0, 6, -4, -2, -2, 1, 3, -1},      // F
	{-1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4, 7, -1, -1, -4, -3, -2}, // P
	{1, -1, 1, 0, -1, 0, 0, 0, -1, -2, -2, 0, -1, -2, -1, 4, 1, -3, -2, -2},         // S
	{0, -1, 0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1, 1, 5, -2, -2, 0},     // T
	{-3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1, 1, -4, -3, -2, 11, 2, -3},  // W
	{-2, -2, -2, -3, -2, -1, -2, -3, 2, -1, -1, -2, -1, 3, -3, -2, -2, 2, 7, -1},    // Y
	{0, -3, -3, -3, -1, -2, -2, -3, -3, 3, 1, -2, 1, -1, -2, -2, 0, -3, -1, 4},      // V
}

// Score returns the BLOSUM62 substitution score for two residue letters.
// Unknown letters score as a mild mismatch.
func Score(a, b byte) int {
	ia, ib := ResidueIndex(a), ResidueIndex(b)
	if ia < 0 || ib < 0 {
		return -1
	}
	return blosum62[ia][ib]
}

// ScoreIdx returns the substitution score for two alphabet indices.
func ScoreIdx(ia, ib int) int { return blosum62[ia][ib] }

// Default ClustalW-style gap penalties (positive magnitudes).
const (
	// GapOpen is charged when a gap starts.
	GapOpen = 10
	// GapExtend is charged per additional gap column.
	GapExtend = 1
)
