package bio

import (
	"fmt"

	"repro/internal/profiler"
)

// GuideTreeMethod selects the guide-tree algorithm.
type GuideTreeMethod string

// Guide-tree methods.
const (
	GuideNJ    GuideTreeMethod = "nj"
	GuideUPGMA GuideTreeMethod = "upgma"
)

// Options configure a ClustalW-style run.
type Options struct {
	GuideTree GuideTreeMethod
	// Kimura applies the Kimura multiple-substitution correction to the
	// pairwise distances before tree construction, as ClustalW does for
	// divergent inputs. Off by default so distances stay directly
	// interpretable as 1-identity.
	Kimura bool
}

// DefaultOptions use neighbour joining, as ClustalW does.
func DefaultOptions() Options { return Options{GuideTree: GuideNJ} }

// Result is a completed multiple-sequence alignment.
type Result struct {
	// Aligned holds the input sequences with gaps inserted, all equal
	// length, in input order.
	Aligned []Sequence
	// Distances is the pairwise distance matrix from the pairalign stage.
	Distances [][]float64
	// Tree is the guide tree.
	Tree *TreeNode
	// MeanIdentity is the average pairwise identity of the input.
	MeanIdentity float64
}

// Columns returns the alignment length.
func (r *Result) Columns() int {
	if len(r.Aligned) == 0 {
		return 0
	}
	return len(r.Aligned[0].Residues)
}

// Align runs the full ClustalW pipeline: pairalign (all-pairs distances) →
// guide tree → malign (progressive alignment). Pass a profiler to collect
// the Fig. 10 kernel profile, or nil to run unprofiled.
func Align(seqs []Sequence, prof *profiler.Profiler, opt Options) (*Result, error) {
	if len(seqs) < 2 {
		return nil, fmt.Errorf("bio: alignment needs ≥2 sequences, got %d", len(seqs))
	}
	ids := make(map[string]bool, len(seqs))
	for _, s := range seqs {
		if err := s.Validate(); err != nil {
			return nil, err
		}
		if ids[s.ID] {
			return nil, fmt.Errorf("bio: duplicate sequence ID %s", s.ID)
		}
		ids[s.ID] = true
	}

	dist, err := PairAlignAll(seqs, prof)
	if err != nil {
		return nil, err
	}
	treeDist := dist
	if opt.Kimura {
		treeDist = KimuraMatrix(dist)
	}

	var tree *TreeNode
	switch opt.GuideTree {
	case GuideNJ, "":
		tree, err = NeighborJoining(treeDist, prof)
	case GuideUPGMA:
		tree, err = UPGMA(treeDist, prof)
	default:
		return nil, fmt.Errorf("bio: unknown guide-tree method %q", opt.GuideTree)
	}
	if err != nil {
		return nil, err
	}

	aligned, err := MAlign(seqs, tree, prof)
	if err != nil {
		return nil, err
	}

	var sum float64
	var pairs int
	for i := range dist {
		for j := i + 1; j < len(dist); j++ {
			sum += 1 - dist[i][j]
			pairs++
		}
	}
	res := &Result{Aligned: aligned, Distances: dist, Tree: tree}
	if pairs > 0 {
		res.MeanIdentity = sum / float64(pairs)
	}
	return res, nil
}

// Ungap removes gap characters, recovering the original residues.
func Ungap(aligned string) string {
	out := make([]byte, 0, len(aligned))
	for i := 0; i < len(aligned); i++ {
		if aligned[i] != '-' {
			out = append(out, aligned[i])
		}
	}
	return string(out)
}

// SumOfPairsScore scores a finished alignment column-by-column with BLOSUM
// substitution scores and affine gap penalties — the standard MSA quality
// measure, used to compare guide-tree methods.
func SumOfPairsScore(aligned []Sequence) (int, error) {
	if len(aligned) < 2 {
		return 0, fmt.Errorf("bio: sum-of-pairs needs ≥2 rows")
	}
	cols := len(aligned[0].Residues)
	for _, s := range aligned {
		if len(s.Residues) != cols {
			return 0, fmt.Errorf("bio: row %s has %d columns, want %d", s.ID, len(s.Residues), cols)
		}
	}
	total := 0
	for i := 0; i < len(aligned); i++ {
		for j := i + 1; j < len(aligned); j++ {
			a, b := aligned[i].Residues, aligned[j].Residues
			inGap := false
			for k := 0; k < cols; k++ {
				ga, gb := a[k] == '-', b[k] == '-'
				switch {
				case ga && gb:
					// shared gap: no charge
					inGap = false
				case ga || gb:
					if inGap {
						total -= GapExtend
					} else {
						total -= GapOpen + GapExtend
						inGap = true
					}
				default:
					total += Score(a[k], b[k])
					inGap = false
				}
			}
		}
	}
	return total, nil
}
