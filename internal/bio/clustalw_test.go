package bio

import (
	"testing"

	"repro/internal/profiler"
	"repro/internal/sim"
)

func TestAlignEndToEnd(t *testing.T) {
	seqs := familyFor(t, 21, 10, 100)
	res, err := Align(seqs, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aligned) != len(seqs) {
		t.Fatalf("aligned rows = %d", len(res.Aligned))
	}
	cols := res.Columns()
	if cols < 100 {
		t.Errorf("alignment columns = %d, shorter than inputs", cols)
	}
	for i, row := range res.Aligned {
		if len(row.Residues) != cols {
			t.Errorf("ragged row %d", i)
		}
		if Ungap(row.Residues) != seqs[i].Residues {
			t.Errorf("row %d corrupted", i)
		}
	}
	if res.MeanIdentity <= 0.3 || res.MeanIdentity > 1 {
		t.Errorf("mean identity = %v", res.MeanIdentity)
	}
	if res.Tree == nil || len(res.Tree.Leaves()) != len(seqs) {
		t.Error("guide tree missing or incomplete")
	}
}

func TestAlignValidation(t *testing.T) {
	if _, err := Align(nil, nil, DefaultOptions()); err == nil {
		t.Error("empty input accepted")
	}
	dup := []Sequence{{ID: "a", Residues: "ARNDC"}, {ID: "a", Residues: "ARNDC"}}
	if _, err := Align(dup, nil, DefaultOptions()); err == nil {
		t.Error("duplicate IDs accepted")
	}
	seqs := []Sequence{{ID: "a", Residues: "ARNDC"}, {ID: "b", Residues: "ARNDC"}}
	if _, err := Align(seqs, nil, Options{GuideTree: "bogus"}); err == nil {
		t.Error("unknown guide-tree method accepted")
	}
}

func TestAlignUPGMAWorksToo(t *testing.T) {
	seqs := familyFor(t, 22, 8, 80)
	res, err := Align(seqs, nil, Options{GuideTree: GuideUPGMA})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aligned) != len(seqs) {
		t.Error("UPGMA pipeline incomplete")
	}
}

func TestAlignDeterministic(t *testing.T) {
	seqs := familyFor(t, 23, 8, 80)
	r1, err := Align(seqs, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Align(seqs, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Aligned {
		if r1.Aligned[i] != r2.Aligned[i] {
			t.Fatal("alignment not deterministic")
		}
	}
}

func TestProfiledRunShapesLikeFig10(t *testing.T) {
	// The case-study claim: pairalign dominates, malign is second.
	// With a realistic family size the pair stage is quadratic in n while
	// the progressive stage is linear, so the shape is structural.
	seqs := familyFor(t, 99, 16, 120)
	prof := profiler.New()
	if _, err := Align(seqs, prof, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	total := prof.TotalSelf()
	if total <= 0 {
		t.Fatal("profiler recorded nothing")
	}
	flat := prof.Flat()
	if len(flat) < 8 {
		t.Errorf("expected ≥8 instrumented kernels, got %d", len(flat))
	}
	cum := func(name string) float64 {
		for _, l := range flat {
			if l.Name == name {
				return 100 * float64(l.Cumulative) / float64(total)
			}
		}
		return 0
	}
	pair, mal := cum("pairalign"), cum("malign")
	if pair < 60 {
		t.Errorf("pairalign cumulative share = %.1f%%, want dominant (paper: 89.76%%)", pair)
	}
	if mal <= 0 || mal > 35 {
		t.Errorf("malign cumulative share = %.1f%%, want minor but present (paper: 7.79%%)", mal)
	}
	if pair <= mal {
		t.Error("pairalign must dominate malign")
	}
}

func TestSumOfPairsScore(t *testing.T) {
	aligned := []Sequence{
		{ID: "a", Residues: "AR-D"},
		{ID: "b", Residues: "ARND"},
	}
	got, err := SumOfPairsScore(aligned)
	if err != nil {
		t.Fatal(err)
	}
	want := Score('A', 'A') + Score('R', 'R') - (GapOpen + GapExtend) + Score('D', 'D')
	if got != want {
		t.Errorf("SP score = %d, want %d", got, want)
	}
}

func TestSumOfPairsSharedGapFree(t *testing.T) {
	aligned := []Sequence{
		{ID: "a", Residues: "A-R"},
		{ID: "b", Residues: "A-R"},
	}
	got, err := SumOfPairsScore(aligned)
	if err != nil {
		t.Fatal(err)
	}
	want := Score('A', 'A') + Score('R', 'R')
	if got != want {
		t.Errorf("shared gap charged: %d, want %d", got, want)
	}
}

func TestSumOfPairsValidation(t *testing.T) {
	if _, err := SumOfPairsScore(nil); err == nil {
		t.Error("empty alignment accepted")
	}
	ragged := []Sequence{{ID: "a", Residues: "AR"}, {ID: "b", Residues: "A"}}
	if _, err := SumOfPairsScore(ragged); err == nil {
		t.Error("ragged alignment accepted")
	}
}

func TestUngap(t *testing.T) {
	if Ungap("-A-R-") != "AR" {
		t.Errorf("Ungap = %q", Ungap("-A-R-"))
	}
	if Ungap("ARND") != "ARND" {
		t.Error("gap-free string changed")
	}
	if Ungap("") != "" {
		t.Error("empty")
	}
}

func TestAlignSmallestCase(t *testing.T) {
	seqs := []Sequence{
		{ID: "a", Residues: "ARNDCQEGH"},
		{ID: "b", Residues: "ARNDCQEGH"},
	}
	res, err := Align(seqs, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanIdentity != 1 {
		t.Errorf("identical pair identity = %v", res.MeanIdentity)
	}
	if res.Columns() != 9 {
		t.Errorf("columns = %d", res.Columns())
	}
	_ = sim.TimeZero
}

func TestAlignWithKimuraCorrection(t *testing.T) {
	seqs := familyFor(t, 24, 8, 80)
	res, err := Align(seqs, nil, Options{GuideTree: GuideNJ, Kimura: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aligned) != len(seqs) {
		t.Fatal("incomplete alignment")
	}
	for i, row := range res.Aligned {
		if Ungap(row.Residues) != seqs[i].Residues {
			t.Errorf("row %d corrupted", i)
		}
	}
	// Reported distances stay in raw 1-identity form even when the tree
	// used corrected ones.
	for i := range res.Distances {
		for j := range res.Distances[i] {
			if res.Distances[i][j] < 0 || res.Distances[i][j] > 1 {
				t.Fatalf("distance out of raw range: %v", res.Distances[i][j])
			}
		}
	}
}
