package bio

import (
	"fmt"
	"math"

	"repro/internal/profiler"
)

// negInf is a safely addable minus infinity for DP scores.
const negInf = math.MinInt32 / 4

// traceback operation codes.
const (
	tbM  byte = iota // diagonal: residue vs residue
	tbIx             // up: residue of A vs gap
	tbIy             // left: gap vs residue of B
)

// PairResult is one pairwise global alignment.
type PairResult struct {
	AlignedA string
	AlignedB string
	Score    int
	// Identity is the fraction of matched residue pairs over the shorter
	// sequence length, ClustalW's percent-identity measure.
	Identity float64
}

// Distance returns the ClustalW pairwise distance 1 - identity.
func (r PairResult) Distance() float64 { return 1 - r.Identity }

// aligner holds reusable DP buffers so the O(n²) pair loop does not
// reallocate per pair.
type aligner struct {
	m, ix, iy []int32 // score matrices, row-major (la+1)×(lb+1)
	tbm       []byte  // traceback for M: which matrix fed the diagonal move
	tbx       []byte  // traceback for Ix: open (from M) or extend (from Ix)
	tby       []byte  // traceback for Iy
	cols      int
}

func (al *aligner) resize(la, lb int) {
	n := (la + 1) * (lb + 1)
	if cap(al.m) < n {
		al.m = make([]int32, n)
		al.ix = make([]int32, n)
		al.iy = make([]int32, n)
		al.tbm = make([]byte, n)
		al.tbx = make([]byte, n)
		al.tby = make([]byte, n)
	}
	al.m = al.m[:n]
	al.ix = al.ix[:n]
	al.iy = al.iy[:n]
	al.tbm = al.tbm[:n]
	al.tbx = al.tbx[:n]
	al.tby = al.tby[:n]
	al.cols = lb + 1
}

// forwardPass fills the Gotoh affine-gap matrices for global alignment.
// This is the forward_pass kernel of ClustalW's pairalign: the bulk of the
// case study's runtime lives in this triple loop.
func (al *aligner) forwardPass(a, b string, prof *profiler.Profiler) {
	defer prof.Enter("forward_pass")()
	la, lb := len(a), len(b)
	al.resize(la, lb)
	cols := al.cols
	const open = GapOpen + GapExtend
	const ext = GapExtend

	al.m[0] = 0
	al.ix[0] = negInf
	al.iy[0] = negInf
	for i := 1; i <= la; i++ {
		idx := i * cols
		al.m[idx] = negInf
		al.iy[idx] = negInf
		al.ix[idx] = int32(-open - (i-1)*ext)
		al.tbx[idx] = tbIx
	}
	for j := 1; j <= lb; j++ {
		al.m[j] = negInf
		al.ix[j] = negInf
		al.iy[j] = int32(-open - (j-1)*ext)
		al.tby[j] = tbIy
	}
	al.tbx[cols] = tbM // first gap down opens from M[0][0]
	al.tby[1] = tbM

	for i := 1; i <= la; i++ {
		ca := a[i-1]
		row := i * cols
		prev := row - cols
		for j := 1; j <= lb; j++ {
			// M: best predecessor on the diagonal plus substitution.
			dm, dx, dy := al.m[prev+j-1], al.ix[prev+j-1], al.iy[prev+j-1]
			best, op := dm, tbM
			if dx > best {
				best, op = dx, tbIx
			}
			if dy > best {
				best, op = dy, tbIy
			}
			al.m[row+j] = best + int32(Score(ca, b[j-1]))
			al.tbm[row+j] = op

			// Ix: gap in B (move down).
			openScore := al.m[prev+j] - open
			extScore := al.ix[prev+j] - ext
			if openScore >= extScore {
				al.ix[row+j] = openScore
				al.tbx[row+j] = tbM
			} else {
				al.ix[row+j] = extScore
				al.tbx[row+j] = tbIx
			}

			// Iy: gap in A (move right).
			openScore = al.m[row+j-1] - open
			extScore = al.iy[row+j-1] - ext
			if openScore >= extScore {
				al.iy[row+j] = openScore
				al.tby[row+j] = tbM
			} else {
				al.iy[row+j] = extScore
				al.tby[row+j] = tbIy
			}
		}
	}
}

// tracepath walks the traceback matrices from the terminal cell and builds
// the aligned strings — ClustalW's tracepath kernel.
func (al *aligner) tracepath(a, b string, prof *profiler.Profiler) (string, string, int) {
	defer prof.Enter("tracepath")()
	la, lb := len(a), len(b)
	cols := al.cols
	end := la*cols + lb
	state := tbM
	score := al.m[end]
	if al.ix[end] > score {
		state, score = tbIx, al.ix[end]
	}
	if al.iy[end] > score {
		state, score = tbIy, al.iy[end]
	}
	outA := make([]byte, 0, la+lb)
	outB := make([]byte, 0, la+lb)
	i, j := la, lb
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && state == tbM:
			next := al.tbm[i*cols+j]
			outA = append(outA, a[i-1])
			outB = append(outB, b[j-1])
			i--
			j--
			state = next
		case i > 0 && (state == tbIx || j == 0):
			next := al.tbx[i*cols+j]
			outA = append(outA, a[i-1])
			outB = append(outB, '-')
			i--
			state = next
		default:
			next := al.tby[i*cols+j]
			outA = append(outA, '-')
			outB = append(outB, b[j-1])
			j--
			state = next
		}
	}
	reverseBytes(outA)
	reverseBytes(outB)
	return string(outA), string(outB), int(score)
}

func reverseBytes(b []byte) {
	for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
}

// calcScore computes percent identity from an alignment — ClustalW's
// calc_score step that converts alignments to guide-tree distances.
func calcScore(alignedA, alignedB string, la, lb int, prof *profiler.Profiler) float64 {
	defer prof.Enter("calc_score")()
	matches := 0
	for k := 0; k < len(alignedA); k++ {
		if alignedA[k] != '-' && alignedA[k] == alignedB[k] {
			matches++
		}
	}
	den := la
	if lb < den {
		den = lb
	}
	if den == 0 {
		return 0
	}
	return float64(matches) / float64(den)
}

// PairAlign globally aligns two sequences with affine gap penalties.
func PairAlign(a, b Sequence, prof *profiler.Profiler) (PairResult, error) {
	if err := a.Validate(); err != nil {
		return PairResult{}, err
	}
	if err := b.Validate(); err != nil {
		return PairResult{}, err
	}
	var al aligner
	return al.pair(a, b, prof), nil
}

func (al *aligner) pair(a, b Sequence, prof *profiler.Profiler) PairResult {
	al.forwardPass(a.Residues, b.Residues, prof)
	alignedA, alignedB, score := al.tracepath(a.Residues, b.Residues, prof)
	identity := calcScore(alignedA, alignedB, a.Len(), b.Len(), prof)
	return PairResult{AlignedA: alignedA, AlignedB: alignedB, Score: score, Identity: identity}
}

// PairAlignAll runs the pairalign kernel: all-pairs global alignment
// producing the distance matrix that drives guide-tree construction. This
// is the dominant kernel of the case study (≈90 % of ClustalW runtime).
func PairAlignAll(seqs []Sequence, prof *profiler.Profiler) ([][]float64, error) {
	if len(seqs) < 2 {
		return nil, fmt.Errorf("bio: pairalign needs ≥2 sequences, got %d", len(seqs))
	}
	for i := range seqs {
		if err := seqs[i].Validate(); err != nil {
			return nil, err
		}
	}
	defer prof.Enter("pairalign")()
	n := len(seqs)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	var al aligner
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			res := al.pair(seqs[i], seqs[j], prof)
			d[i][j] = res.Distance()
			d[j][i] = d[i][j]
		}
	}
	return d, nil
}
