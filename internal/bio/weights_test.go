package bio

import (
	"math"
	"testing"
)

func TestNJBranchLengthsAdditiveMatrix(t *testing.T) {
	// On the additive 4-taxon matrix, NJ should recover the generating
	// limb lengths: taxa 0,1 are distance 2 apart (limbs 1,1).
	tree, err := NeighborJoining(fourTaxa(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Find the (0,1) or (2,3) cherry and check its limbs.
	var check func(*TreeNode) bool
	check = func(n *TreeNode) bool {
		if n == nil || n.IsLeaf() {
			return false
		}
		if n.Left.IsLeaf() && n.Right.IsLeaf() {
			a, b := n.Left.Leaf, n.Right.Leaf
			if (a == 0 && b == 1) || (a == 1 && b == 0) || (a == 2 && b == 3) || (a == 3 && b == 2) {
				if math.Abs(n.LeftLen-1) < 1e-9 && math.Abs(n.RightLen-1) < 1e-9 {
					return true
				}
			}
		}
		return check(n.Left) || check(n.Right)
	}
	if !check(tree) {
		t.Errorf("no cherry with limb lengths 1,1 in %s", tree.Newick())
	}
}

func TestBranchLengthsNonNegative(t *testing.T) {
	seqs := familyFor(t, 17, 10, 80)
	d, err := PairAlignAll(seqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, build := range []func([][]float64) (*TreeNode, error){
		func(m [][]float64) (*TreeNode, error) { return NeighborJoining(m, nil) },
		func(m [][]float64) (*TreeNode, error) { return UPGMA(m, nil) },
	} {
		tree, err := build(d)
		if err != nil {
			t.Fatal(err)
		}
		var walk func(*TreeNode)
		walk = func(n *TreeNode) {
			if n == nil || n.IsLeaf() {
				return
			}
			if n.LeftLen < 0 || n.RightLen < 0 {
				t.Errorf("negative branch length %g/%g", n.LeftLen, n.RightLen)
			}
			walk(n.Left)
			walk(n.Right)
		}
		walk(tree)
	}
}

func TestSequenceWeightsMeanOneAndPositive(t *testing.T) {
	seqs := familyFor(t, 18, 12, 90)
	d, _ := PairAlignAll(seqs, nil)
	tree, _ := NeighborJoining(d, nil)
	w, err := SequenceWeights(tree, len(seqs))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range w {
		if v < 0 {
			t.Errorf("negative weight %v", v)
		}
		sum += v
	}
	if math.Abs(sum/float64(len(w))-1) > 1e-9 {
		t.Errorf("mean weight = %v, want 1", sum/float64(len(w)))
	}
}

func TestDuplicatedSequencesAreDownweighted(t *testing.T) {
	// Three copies of one sequence plus two distinct ones: the copies must
	// each weigh less than the distinct sequences (ClustalW's motivation
	// for weighting).
	base := familyFor(t, 19, 3, 100)
	seqs := []Sequence{
		{ID: "dup1", Residues: base[0].Residues},
		{ID: "dup2", Residues: base[0].Residues},
		{ID: "dup3", Residues: base[0].Residues},
		{ID: "solo1", Residues: base[1].Residues},
		{ID: "solo2", Residues: base[2].Residues},
	}
	d, err := PairAlignAll(seqs, nil)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := NeighborJoining(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := SequenceWeights(tree, len(seqs))
	if err != nil {
		t.Fatal(err)
	}
	maxDup := math.Max(w[0], math.Max(w[1], w[2]))
	minSolo := math.Min(w[3], w[4])
	if maxDup >= minSolo {
		t.Errorf("duplicates not downweighted: dup max %v vs solo min %v (weights %v)", maxDup, minSolo, w)
	}
}

func TestSequenceWeightsDegenerateTreeUniform(t *testing.T) {
	// Identical sequences: all distances zero, all branch lengths zero →
	// uniform weights.
	seqs := []Sequence{
		{ID: "a", Residues: "ARNDCQEGH"},
		{ID: "b", Residues: "ARNDCQEGH"},
		{ID: "c", Residues: "ARNDCQEGH"},
	}
	d, _ := PairAlignAll(seqs, nil)
	tree, _ := NeighborJoining(d, nil)
	w, err := SequenceWeights(tree, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range w {
		if v != 1 {
			t.Errorf("degenerate weights = %v, want all 1", w)
		}
	}
}

func TestSequenceWeightsValidation(t *testing.T) {
	if _, err := SequenceWeights(nil, 3); err == nil {
		t.Error("nil tree accepted")
	}
	tree := &TreeNode{Leaf: -1, Left: &TreeNode{Leaf: 0}, Right: &TreeNode{Leaf: 1}}
	if _, err := SequenceWeights(tree, 5); err == nil {
		t.Error("leaf-count mismatch accepted")
	}
	bad := &TreeNode{Leaf: -1, Left: &TreeNode{Leaf: 0}, Right: &TreeNode{Leaf: 7}}
	if _, err := SequenceWeights(bad, 2); err == nil {
		t.Error("out-of-range leaf accepted")
	}
}

func TestWeightedAlignmentStillValid(t *testing.T) {
	// End-to-end with weighting in the loop: structural invariants hold.
	seqs := familyFor(t, 20, 9, 90)
	res, err := Align(seqs, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cols := res.Columns()
	for i, row := range res.Aligned {
		if len(row.Residues) != cols {
			t.Errorf("ragged row %d", i)
		}
		if Ungap(row.Residues) != seqs[i].Residues {
			t.Errorf("row %d corrupted", i)
		}
	}
}
