package sched

import (
	"errors"
	"testing"

	"repro/internal/capability"
	"repro/internal/node"
	"repro/internal/rms"
)

// optFor builds an Option over a freshly created element.
func optFor(t *testing.T, device string, slices int, loaded bool, exec, reconfig, transfer float64) Option {
	t.Helper()
	n, err := node.New("N")
	if err != nil {
		t.Fatal(err)
	}
	var elem *node.Element
	if device == "" {
		elem, err = n.AddGPP(capability.GPPCaps{CPUType: "x", MIPS: 10000, Cores: 2})
	} else {
		elem, err = n.AddRPE(device)
	}
	if err != nil {
		t.Fatal(err)
	}
	return Option{
		Cand:            rms.Candidate{Node: n, Elem: elem, Slices: slices, AlreadyLoaded: loaded},
		ExecSeconds:     exec,
		ReconfigSeconds: reconfig,
		TransferSeconds: transfer,
	}
}

func TestTotalSeconds(t *testing.T) {
	o := Option{ExecSeconds: 1, ReconfigSeconds: 2, TransferSeconds: 3, SynthesisSeconds: 4}
	if o.TotalSeconds() != 10 {
		t.Errorf("total = %v", o.TotalSeconds())
	}
}

func TestFirstFit(t *testing.T) {
	if (FirstFit{}).Choose(nil) != -1 {
		t.Error("empty should defer")
	}
	opts := []Option{
		optFor(t, "XC5VLX330T", 100, false, 10, 5, 1),
		optFor(t, "XC5VLX110T", 100, false, 1, 0, 0),
	}
	if (FirstFit{}).Choose(opts) != 0 {
		t.Error("first-fit must take index 0")
	}
}

func TestBestFitArea(t *testing.T) {
	opts := []Option{
		optFor(t, "XC5VLX330T", 10000, false, 1, 0, 0), // waste 41,840
		optFor(t, "XC5VLX110T", 10000, false, 9, 9, 9), // waste 7,280 ← tightest
		optFor(t, "XC5VLX155T", 10000, false, 1, 0, 0), // waste 14,320
	}
	if got := (BestFitArea{}).Choose(opts); got != 1 {
		t.Errorf("best-fit = %d, want 1", got)
	}
	if (BestFitArea{}).Choose(nil) != -1 {
		t.Error("empty should defer")
	}
	// GPP-only options fall back to first.
	gppOpts := []Option{optFor(t, "", 0, false, 5, 0, 0)}
	if (BestFitArea{}).Choose(gppOpts) != 0 {
		t.Error("GPP fallback broken")
	}
}

func TestReconfigAwareMinimizesTotalTime(t *testing.T) {
	opts := []Option{
		optFor(t, "XC5VLX330T", 100, false, 1, 10, 1), // total 12
		optFor(t, "XC5VLX110T", 100, true, 5, 0, 1),   // total 6 ← best
		optFor(t, "XC5VLX155T", 100, false, 3, 5, 1),  // total 9
	}
	if got := (ReconfigAware{}).Choose(opts); got != 1 {
		t.Errorf("reconfig-aware = %d, want 1", got)
	}
	if (ReconfigAware{}).Choose(nil) != -1 {
		t.Error("empty should defer")
	}
}

func TestReconfigAwareTieBreaksOnResidency(t *testing.T) {
	opts := []Option{
		optFor(t, "XC5VLX330T", 100, false, 5, 0, 1),
		optFor(t, "XC5VLX110T", 100, true, 5, 0, 1), // same total, loaded
	}
	if got := (ReconfigAware{}).Choose(opts); got != 1 {
		t.Errorf("tie-break = %d, want the resident configuration", got)
	}
}

func TestReuseFirst(t *testing.T) {
	opts := []Option{
		optFor(t, "XC5VLX330T", 100, false, 1, 0, 0), // fastest but cold
		optFor(t, "XC5VLX110T", 100, true, 50, 0, 0), // resident but slow
	}
	if got := (ReuseFirst{}).Choose(opts); got != 1 {
		t.Errorf("reuse-first = %d, want the resident one", got)
	}
	// Without any resident option it behaves like reconfig-aware.
	cold := []Option{
		optFor(t, "XC5VLX330T", 100, false, 9, 9, 9),
		optFor(t, "XC5VLX110T", 100, false, 1, 1, 1),
	}
	if got := (ReuseFirst{}).Choose(cold); got != 1 {
		t.Errorf("cold reuse-first = %d", got)
	}
}

func TestGPPOnlyRefusesHardware(t *testing.T) {
	hw := []Option{optFor(t, "XC5VLX330T", 100, true, 1, 0, 0)}
	if (GPPOnly{}).Choose(hw) != -1 {
		t.Error("gpp-only accepted an RPE")
	}
	mixed := []Option{
		optFor(t, "XC5VLX330T", 100, true, 1, 0, 0),
		optFor(t, "", 0, false, 7, 0, 0),
		optFor(t, "", 0, false, 3, 0, 0),
	}
	if got := (GPPOnly{}).Choose(mixed); got != 2 {
		t.Errorf("gpp-only = %d, want the faster GPP", got)
	}
}

func TestByNameAndAll(t *testing.T) {
	for _, s := range All() {
		got, err := ByName(s.Name())
		if err != nil {
			t.Errorf("ByName(%s): %v", s.Name(), err)
			continue
		}
		if got.Name() != s.Name() {
			t.Errorf("ByName round-trip broken for %s", s.Name())
		}
	}
	if _, err := ByName("magic"); err == nil {
		t.Error("unknown strategy accepted")
	} else if !errors.Is(err, ErrUnknownStrategy) {
		t.Errorf("err = %v, want ErrUnknownStrategy via errors.Is", err)
	}
	if len(All()) < 5 {
		t.Errorf("only %d strategies", len(All()))
	}
	if len(Names()) != len(All()) {
		t.Errorf("Names() = %d entries, want %d", len(Names()), len(All()))
	}
}

// cloningStrategy is a stateful strategy for the ForEngine contract.
type cloningStrategy struct{ clones *int }

func (c cloningStrategy) Name() string        { return "cloning" }
func (c cloningStrategy) Choose([]Option) int { return -1 }
func (c cloningStrategy) CloneStrategy() Strategy {
	*c.clones++
	return cloningStrategy{clones: c.clones}
}

func TestForEngine(t *testing.T) {
	ff := FirstFit{}
	if got := ForEngine(ff); got != (FirstFit{}) {
		t.Error("stateless strategy should pass through unchanged")
	}
	clones := 0
	ForEngine(cloningStrategy{clones: &clones})
	if clones != 1 {
		t.Errorf("Cloner invoked %d times, want 1", clones)
	}
}

func TestQueuePolicyString(t *testing.T) {
	if FCFS.String() != "fcfs" || SJF.String() != "sjf" {
		t.Error("policy names")
	}
	if QueuePolicy(9).String() == "" {
		t.Error("unknown policy should render")
	}
}
