// Package sched provides the task scheduling strategies the paper's RMS
// plugs in: "The mapping decisions are based on a particular scheduling
// strategy implemented inside the scheduler in the RMS, that takes into
// account various parameters, such as area slices, reconfiguration delays,
// and the time required to send configuration bitstreams, the availability
// and current status of the nodes."
//
// A Strategy chooses among placement options for one task; a QueuePolicy
// orders the waiting tasks. Both axes are what DReAMSim exists to compare.
package sched

import (
	"errors"
	"fmt"

	"repro/internal/capability"
	"repro/internal/rms"
)

// Option is one costed placement alternative for a task.
type Option struct {
	Cand rms.Candidate
	// ExecSeconds is the predicted execution time on this element.
	ExecSeconds float64
	// ReconfigSeconds is the reconfiguration delay this placement pays
	// (zero when the configuration is already resident).
	ReconfigSeconds float64
	// TransferSeconds is the network time for input data and, when a
	// reconfiguration is needed, the configuration bitstream.
	TransferSeconds float64
	// SynthesisSeconds is first-time CAD cost (user-defined hardware).
	SynthesisSeconds float64
}

// TotalSeconds is the completion-time estimate for the option.
func (o Option) TotalSeconds() float64 {
	return o.ExecSeconds + o.ReconfigSeconds + o.TransferSeconds + o.SynthesisSeconds
}

// Strategy picks one option for a task, or -1 to leave the task queued.
type Strategy interface {
	// Name identifies the strategy in experiment output.
	Name() string
	// Choose returns the index of the selected option, or -1.
	Choose(opts []Option) int
}

// Cloner is implemented by stateful strategies that cannot be shared
// between concurrently running engines. The sweep engine calls
// CloneStrategy once per replica and hands each engine its own copy. Every
// built-in strategy is a stateless value type, so none implements it.
type Cloner interface {
	// CloneStrategy returns an independent copy safe for a new engine.
	CloneStrategy() Strategy
}

// ForEngine returns the instance of s an engine should own: the result of
// CloneStrategy when s is stateful (implements Cloner), s itself otherwise.
func ForEngine(s Strategy) Strategy {
	if c, ok := s.(Cloner); ok {
		return c.CloneStrategy()
	}
	return s
}

// FirstFit takes the first feasible option — the naive baseline: it
// ignores reconfiguration delays and execution-time differences entirely.
type FirstFit struct{}

// Name implements Strategy.
func (FirstFit) Name() string { return "first-fit" }

// Choose implements Strategy.
func (FirstFit) Choose(opts []Option) int {
	if len(opts) == 0 {
		return -1
	}
	return 0
}

// BestFitArea places hardware tasks on the device wasting the least area
// (Slices closest to the task's need), falling back to first-fit for
// non-fabric options. It optimizes packing, not time.
type BestFitArea struct{}

// Name implements Strategy.
func (BestFitArea) Name() string { return "best-fit-area" }

// Choose implements Strategy.
func (BestFitArea) Choose(opts []Option) int {
	best := -1
	bestWaste := 0
	for i, o := range opts {
		if o.Cand.Elem.Fabric == nil {
			if best == -1 {
				best = i
				bestWaste = int(^uint(0) >> 1)
			}
			continue
		}
		waste := o.Cand.Elem.Fabric.Device().Slices - o.Cand.Slices
		if waste < 0 {
			continue
		}
		if best == -1 || waste < bestWaste {
			best = i
			bestWaste = waste
		}
	}
	return best
}

// ReconfigAware minimizes total completion time including reconfiguration,
// bitstream/data transfer, and synthesis — the strategy the paper argues
// for. Ties break toward already-loaded configurations.
type ReconfigAware struct{}

// Name implements Strategy.
func (ReconfigAware) Name() string { return "reconfig-aware" }

// Choose implements Strategy.
func (ReconfigAware) Choose(opts []Option) int {
	best := -1
	var bestT float64
	for i, o := range opts {
		t := o.TotalSeconds()
		if best == -1 || t < bestT || (t == bestT && o.Cand.AlreadyLoaded && !opts[best].Cand.AlreadyLoaded) {
			best = i
			bestT = t
		}
	}
	return best
}

// ReuseFirst strictly prefers resident configurations, then falls back to
// minimal total time; it maximizes configuration reuse at the price of
// sometimes picking a slower device.
type ReuseFirst struct{}

// Name implements Strategy.
func (ReuseFirst) Name() string { return "reuse-first" }

// Choose implements Strategy.
func (ReuseFirst) Choose(opts []Option) int {
	best := -1
	var bestT float64
	for i, o := range opts {
		if !o.Cand.AlreadyLoaded {
			continue
		}
		if best == -1 || o.TotalSeconds() < bestT {
			best = i
			bestT = o.TotalSeconds()
		}
	}
	if best >= 0 {
		return best
	}
	return ReconfigAware{}.Choose(opts)
}

// GPPOnly refuses every non-GPP placement: the traditional-grid baseline
// for the hybrid-vs-GPP experiment. Software tasks still run; hardware
// tasks starve (counted as unschedulable).
type GPPOnly struct{}

// Name implements Strategy.
func (GPPOnly) Name() string { return "gpp-only" }

// Choose implements Strategy.
func (GPPOnly) Choose(opts []Option) int {
	best := -1
	var bestT float64
	for i, o := range opts {
		if o.Cand.Elem.Kind != capability.KindGPP {
			continue
		}
		if best == -1 || o.TotalSeconds() < bestT {
			best = i
			bestT = o.TotalSeconds()
		}
	}
	return best
}

// QueuePolicy orders waiting tasks.
type QueuePolicy int

// Queue policies.
const (
	// FCFS serves tasks in arrival order.
	FCFS QueuePolicy = iota
	// SJF serves the task with the smallest t_estimated first.
	SJF
)

// String returns the policy name.
func (q QueuePolicy) String() string {
	switch q {
	case FCFS:
		return "fcfs"
	case SJF:
		return "sjf"
	}
	return fmt.Sprintf("QueuePolicy(%d)", int(q))
}

// ErrUnknownStrategy is the sentinel ByName wraps when no built-in
// strategy carries the requested name; match it with errors.Is.
var ErrUnknownStrategy = errors.New("sched: unknown strategy")

// ByName returns a built-in strategy by its Name() string, or an error
// wrapping ErrUnknownStrategy.
func ByName(name string) (Strategy, error) {
	for _, s := range All() {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("%w %q", ErrUnknownStrategy, name)
}

// All returns every built-in strategy in comparison order.
func All() []Strategy {
	return []Strategy{FirstFit{}, BestFitArea{}, ReconfigAware{}, ReuseFirst{}, GPPOnly{}}
}

// Names returns every built-in strategy name, for error messages and flag
// help.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.Name()
	}
	return out
}
