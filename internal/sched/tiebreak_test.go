package sched

import (
	"testing"

	"repro/internal/capability"
	"repro/internal/fabric"
	"repro/internal/node"
	"repro/internal/rms"
)

// gppOpt builds a GPP placement option with the given completion time.
func gppOpt(t *testing.T, total float64) Option {
	t.Helper()
	return Option{
		Cand:        rms.Candidate{Node: &node.Node{ID: "N"}, Elem: &node.Element{ID: "GPP", Kind: capability.KindGPP}},
		ExecSeconds: total,
	}
}

// fpgaOpt builds an RPE placement option on the named device.
func fpgaOpt(t *testing.T, device string, slices int, total float64, loaded bool) Option {
	t.Helper()
	f, err := fabric.NewByName(device)
	if err != nil {
		t.Fatal(err)
	}
	return Option{
		Cand: rms.Candidate{
			Node:          &node.Node{ID: "N"},
			Elem:          &node.Element{ID: "RPE", Kind: capability.KindFPGA, Fabric: f},
			Slices:        slices,
			AlreadyLoaded: loaded,
		},
		ExecSeconds: total,
	}
}

// TestChooseEmptyAndNil: every strategy must leave an option-less task
// queued, never panic or return a stray index.
func TestChooseEmptyAndNil(t *testing.T) {
	for _, s := range All() {
		if got := s.Choose(nil); got != -1 {
			t.Errorf("%s.Choose(nil) = %d, want -1", s.Name(), got)
		}
		if got := s.Choose([]Option{}); got != -1 {
			t.Errorf("%s.Choose(empty) = %d, want -1", s.Name(), got)
		}
	}
}

// TestChooseIsDeterministic: repeated calls on the same slice must agree —
// strategies may hold no hidden state and may not consult randomness.
func TestChooseIsDeterministic(t *testing.T) {
	opts := []Option{
		fpgaOpt(t, "XC5VLX110T", 4000, 10, false),
		gppOpt(t, 10),
		fpgaOpt(t, "XC5VLX110T", 4000, 10, true),
		gppOpt(t, 10),
	}
	for _, s := range All() {
		first := s.Choose(opts)
		for i := 0; i < 50; i++ {
			if got := s.Choose(opts); got != first {
				t.Fatalf("%s.Choose flapped: %d then %d", s.Name(), first, got)
			}
		}
	}
}

// TestTieBreaks pins the documented tie rule of every strategy on
// hand-built equal-cost option sets, so a refactor that silently changes
// placement order fails here rather than in a golden trace.
func TestTieBreaks(t *testing.T) {
	cases := map[string]struct {
		strategy Strategy
		opts     func(t *testing.T) []Option
		want     int
	}{
		"first-fit takes index 0 regardless of cost": {
			strategy: FirstFit{},
			opts: func(t *testing.T) []Option {
				return []Option{gppOpt(t, 99), gppOpt(t, 1)}
			},
			want: 0,
		},
		"best-fit-area: equal waste breaks to the earlier option": {
			strategy: BestFitArea{},
			opts: func(t *testing.T) []Option {
				return []Option{
					fpgaOpt(t, "XC5VLX110T", 4000, 5, false),
					fpgaOpt(t, "XC5VLX110T", 4000, 1, false),
				}
			},
			want: 0,
		},
		"best-fit-area: tighter device beats earlier looser one": {
			strategy: BestFitArea{},
			opts: func(t *testing.T) []Option {
				return []Option{
					fpgaOpt(t, "XC5VLX155T", 4000, 1, false), // 24320 slices: waste 20320
					fpgaOpt(t, "XC5VLX110T", 4000, 9, false), // 17280 slices: waste 13280
				}
			},
			want: 1,
		},
		"best-fit-area: GPP fallback only when no fabric fits": {
			strategy: BestFitArea{},
			opts: func(t *testing.T) []Option {
				over := fpgaOpt(t, "XC5VLX30", 9000, 1, false) // 4800-slice device: infeasible
				return []Option{gppOpt(t, 50), over}
			},
			want: 0,
		},
		"best-fit-area: any feasible fabric beats a GPP": {
			strategy: BestFitArea{},
			opts: func(t *testing.T) []Option {
				return []Option{gppOpt(t, 1), fpgaOpt(t, "XC5VLX110T", 4000, 50, false)}
			},
			want: 1,
		},
		"reconfig-aware: equal total breaks to the earlier option": {
			strategy: ReconfigAware{},
			opts: func(t *testing.T) []Option {
				return []Option{gppOpt(t, 10), gppOpt(t, 10), gppOpt(t, 10)}
			},
			want: 0,
		},
		"reconfig-aware: equal total prefers resident configuration": {
			strategy: ReconfigAware{},
			opts: func(t *testing.T) []Option {
				return []Option{
					fpgaOpt(t, "XC5VLX110T", 4000, 10, false),
					fpgaOpt(t, "XC5VLX110T", 4000, 10, true),
					fpgaOpt(t, "XC5VLX110T", 4000, 10, true),
				}
			},
			want: 1,
		},
		"reconfig-aware: strictly faster beats resident": {
			strategy: ReconfigAware{},
			opts: func(t *testing.T) []Option {
				return []Option{
					fpgaOpt(t, "XC5VLX110T", 4000, 10, true),
					fpgaOpt(t, "XC5VLX110T", 4000, 9, false),
				}
			},
			want: 1,
		},
		"reuse-first: resident wins even when slower": {
			strategy: ReuseFirst{},
			opts: func(t *testing.T) []Option {
				return []Option{
					fpgaOpt(t, "XC5VLX110T", 4000, 1, false),
					fpgaOpt(t, "XC5VLX110T", 4000, 50, true),
				}
			},
			want: 1,
		},
		"reuse-first: equal resident options break to the earlier one": {
			strategy: ReuseFirst{},
			opts: func(t *testing.T) []Option {
				return []Option{
					fpgaOpt(t, "XC5VLX110T", 4000, 10, true),
					fpgaOpt(t, "XC5VLX110T", 4000, 10, true),
				}
			},
			want: 0,
		},
		"reuse-first: no resident option falls back to reconfig-aware": {
			strategy: ReuseFirst{},
			opts: func(t *testing.T) []Option {
				return []Option{gppOpt(t, 10), gppOpt(t, 5)}
			},
			want: 1,
		},
		"gpp-only: skips faster non-GPP options": {
			strategy: GPPOnly{},
			opts: func(t *testing.T) []Option {
				return []Option{fpgaOpt(t, "XC5VLX110T", 4000, 1, true), gppOpt(t, 50)}
			},
			want: 1,
		},
		"gpp-only: equal GPPs break to the earlier one": {
			strategy: GPPOnly{},
			opts: func(t *testing.T) []Option {
				return []Option{gppOpt(t, 10), gppOpt(t, 10)}
			},
			want: 0,
		},
		"gpp-only: starves without a GPP option": {
			strategy: GPPOnly{},
			opts: func(t *testing.T) []Option {
				return []Option{fpgaOpt(t, "XC5VLX110T", 4000, 1, true)}
			},
			want: -1,
		},
	}
	for name, tc := range cases {
		tc := tc
		t.Run(name, func(t *testing.T) {
			if got := tc.strategy.Choose(tc.opts(t)); got != tc.want {
				t.Errorf("%s.Choose = %d, want %d", tc.strategy.Name(), got, tc.want)
			}
		})
	}
}

// TestAllNamesUniqueAndResolvable guards the strategy registry: All(),
// Names(), and ByName() must agree and collide on nothing.
func TestAllNamesUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range All() {
		name := s.Name()
		if seen[name] {
			t.Errorf("duplicate strategy name %q", name)
		}
		seen[name] = true
		got, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		} else if got.Name() != name {
			t.Errorf("ByName(%q) resolved to %q", name, got.Name())
		}
	}
	if len(Names()) != len(All()) {
		t.Errorf("Names() has %d entries, All() has %d", len(Names()), len(All()))
	}
}
