package faults

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

var testNodes = []string{"Node0", "Node1", "Node2", "Node3"}

func testSpec() Spec {
	s := Default()
	s.HorizonSeconds = 500
	return s
}

func TestScheduleIsDeterministic(t *testing.T) {
	a, err := Schedule(sim.NewRNG(7).Split(ScheduleStream), testSpec(), testNodes)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Schedule(sim.NewRNG(7).Split(ScheduleStream), testSpec(), testNodes)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 {
		t.Fatal("expected a non-empty schedule over a 500 s horizon")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	c, err := Schedule(sim.NewRNG(8).Split(ScheduleStream), testSpec(), testNodes)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestScheduleSortedAndPaired(t *testing.T) {
	evs, err := Schedule(sim.NewRNG(11).Split(ScheduleStream), testSpec(), testNodes)
	if err != nil {
		t.Fatal(err)
	}
	crash := map[uint64]Event{}
	degrade := map[uint64]Event{}
	for i, ev := range evs {
		if i > 0 && ev.Time < evs[i-1].Time {
			t.Fatalf("event %d at %v before predecessor at %v", i, ev.Time, evs[i-1].Time)
		}
		switch ev.Kind {
		case KindNodeCrash:
			crash[ev.Seq] = ev
		case KindNodeRecover:
			c, ok := crash[ev.Seq]
			if !ok {
				t.Fatalf("recovery seq %d without a crash", ev.Seq)
			}
			if ev.Node != c.Node || ev.Time < c.Time {
				t.Fatalf("recovery %+v does not pair with crash %+v", ev, c)
			}
		case KindLinkDegrade:
			if ev.Factor < 1 {
				t.Fatalf("degrade with factor %g", ev.Factor)
			}
			degrade[ev.Seq] = ev
		case KindLinkRestore:
			d, ok := degrade[ev.Seq]
			if !ok {
				t.Fatalf("restore seq %d without a degrade", ev.Seq)
			}
			if ev.Node != d.Node || ev.Time < d.Time {
				t.Fatalf("restore %+v does not pair with degrade %+v", ev, d)
			}
		}
		if ev.Node == "" {
			t.Fatalf("event %d without a victim node", i)
		}
	}
	if len(crash) == 0 || len(degrade) == 0 {
		t.Fatalf("expected crashes and link faults, got %d/%d", len(crash), len(degrade))
	}
}

func TestScheduleDisabledOrEmpty(t *testing.T) {
	evs, err := Schedule(sim.NewRNG(1), Spec{}, testNodes)
	if err != nil || evs != nil {
		t.Fatalf("zero spec: got %v, %v", evs, err)
	}
	evs, err = Schedule(sim.NewRNG(1), testSpec(), nil)
	if err != nil || evs != nil {
		t.Fatalf("no nodes: got %v, %v", evs, err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(*Spec){
		"negative rate":           func(s *Spec) { s.CrashRate = -1 },
		"crash without outage":    func(s *Spec) { s.MeanOutageSeconds = 0 },
		"link without duration":   func(s *Spec) { s.MeanLinkFaultSeconds = 0 },
		"degrade factor < 1":      func(s *Spec) { s.LinkDegradeFactor = 0.5 },
		"partition share > 1":     func(s *Spec) { s.PartitionShare = 1.5 },
		"enabled without horizon": func(s *Spec) { s.HorizonSeconds = 0 },
		"negative TTL":            func(s *Spec) { s.LeaseTTLSeconds = -1 },
		"negative retries":        func(s *Spec) { s.Retry.MaxRetries = -1 },
	}
	for name, mutate := range cases {
		s := testSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, s)
		}
	}
	if err := testSpec().Validate(); err != nil {
		t.Fatalf("default spec with horizon rejected: %v", err)
	}
	if err := (Spec{}).Validate(); err != nil {
		t.Fatalf("zero spec rejected: %v", err)
	}
}

func TestRetryDelay(t *testing.T) {
	p := RetryPolicy{BackoffSeconds: 0.5, BackoffCapSeconds: 3}
	want := []float64{0.5, 1, 2, 3, 3}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w {
			t.Errorf("Delay(%d) = %g, want %g", i+1, got, w)
		}
	}
	if got := (RetryPolicy{}).Delay(4); got != 0 {
		t.Errorf("zero policy Delay = %g, want 0", got)
	}
	// Uncapped growth must not overflow into nonsense for large counts.
	big := RetryPolicy{BackoffSeconds: 1, BackoffCapSeconds: 60}
	if got := big.Delay(500); got != 60 {
		t.Errorf("capped Delay(500) = %g, want 60", got)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindNodeCrash: "node-crash", KindNodeRecover: "node-recover",
		KindSEU: "seu", KindLinkDegrade: "link-degrade", KindLinkRestore: "link-restore",
	} {
		if k.String() != want {
			t.Errorf("Kind %d String = %q, want %q", int(k), k.String(), want)
		}
	}
}
