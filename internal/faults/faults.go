// Package faults generates deterministic fault schedules for the grid
// simulator: node crashes and recoveries, SEU-style transient corruption
// of RPE configurations, and network link degradation or partitions.
//
// A schedule is a pure function of (RNG, Spec, node list): the injector
// never reads wall-clock time or global randomness, so the same seed
// replays the same fault timeline event for event. The grid engine owns
// the *effects* of each event (which execution aborts, which lease
// expires); this package only decides *what happens when*, carrying
// enough random bits in each Event (Selector) for the engine to resolve
// victims deterministically without consulting another RNG.
package faults

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// ScheduleStream is the sim.RNG split stream reserved for fault-schedule
// derivation. Scenario runs split it off the workload seed so the fault
// timeline is independent of — but still fully determined by — the seed
// that generates the task stream.
const ScheduleStream uint64 = 0xFA17_0003

// DefaultLeaseTTL is the lease renewal interval used when a Spec enables
// faults but leaves LeaseTTLSeconds zero: failure detection latency is at
// most one TTL after a crash or partition.
const DefaultLeaseTTL = 5.0

// Kind classifies one scheduled fault event.
type Kind int

// Fault event kinds. Crash/Recover and Degrade/Restore come in pairs
// sharing the pairing sequence number Event.Seq.
const (
	KindNodeCrash Kind = iota
	KindNodeRecover
	KindSEU
	KindLinkDegrade
	KindLinkRestore
)

// String names the kind for traces and event labels.
func (k Kind) String() string {
	switch k {
	case KindNodeCrash:
		return "node-crash"
	case KindNodeRecover:
		return "node-recover"
	case KindSEU:
		return "seu"
	case KindLinkDegrade:
		return "link-degrade"
	case KindLinkRestore:
		return "link-restore"
	}
	return fmt.Sprintf("faults.Kind(%d)", int(k))
}

// Event is one scheduled fault. Events are self-contained: the engine
// applies them without any further randomness.
type Event struct {
	// Time is the virtual time the fault strikes.
	Time sim.Time
	// Kind says what happens.
	Kind Kind
	// Node is the victim node ID.
	Node string
	// Seq pairs a crash with its recovery (and a degrade with its
	// restore): a recovery only applies if the node is still down from
	// the crash with the same Seq, so overlapping fault processes cannot
	// resurrect a node early.
	Seq uint64
	// Selector carries random bits for victim resolution below node
	// granularity (which RPE, which region) — drawn at schedule time so
	// the engine stays RNG-free.
	Selector uint64
	// Factor divides link bandwidth (and multiplies latency) for
	// KindLinkDegrade events.
	Factor float64
	// Partition marks a KindLinkDegrade event as a full partition: the
	// node is unreachable rather than slow.
	Partition bool
}

// RetryPolicy bounds task re-execution after a fault-induced abort.
type RetryPolicy struct {
	// MaxRetries caps re-executions per task; a task whose retry count
	// would exceed it is declared lost. Zero means unlimited.
	MaxRetries int
	// BackoffSeconds is the delay before the first retry; each further
	// retry doubles it (capped). Zero retries immediately.
	BackoffSeconds float64
	// BackoffCapSeconds caps the exponential growth; zero means uncapped.
	BackoffCapSeconds float64
}

// Delay returns the backoff before retry attempt n (n = 1 is the first
// retry): BackoffSeconds·2^(n−1), capped at BackoffCapSeconds.
func (p RetryPolicy) Delay(attempt int) float64 {
	if p.BackoffSeconds <= 0 || attempt <= 0 {
		return 0
	}
	d := p.BackoffSeconds
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.BackoffCapSeconds > 0 && d >= p.BackoffCapSeconds {
			return p.BackoffCapSeconds
		}
	}
	if p.BackoffCapSeconds > 0 && d > p.BackoffCapSeconds {
		return p.BackoffCapSeconds
	}
	return d
}

// Spec parameterizes the fault processes. Rates are Poisson intensities
// in events per simulated second over the whole grid; the zero value
// injects nothing.
type Spec struct {
	// CrashRate is the node crash intensity (crashes/second across the
	// grid); MeanOutageSeconds the mean crash→recovery outage.
	CrashRate         float64
	MeanOutageSeconds float64
	// SEURate is the intensity of single-event upsets corrupting one
	// loaded RPE configuration (forcing reconfiguration, aborting the
	// task using it).
	SEURate float64
	// LinkFaultRate is the intensity of link faults;
	// MeanLinkFaultSeconds their mean duration; LinkDegradeFactor the
	// bandwidth divisor while degraded; PartitionShare the fraction of
	// link faults that are full partitions instead of slowdowns.
	LinkFaultRate        float64
	MeanLinkFaultSeconds float64
	LinkDegradeFactor    float64
	PartitionShare       float64
	// HorizonSeconds bounds schedule generation: no fault *starts* after
	// it (recoveries may land past it). Required when any rate is
	// positive; RunScenario derives one from the workload when left zero.
	HorizonSeconds float64
	// LeaseTTLSeconds is the lease renewal interval for failure
	// detection; zero means DefaultLeaseTTL.
	LeaseTTLSeconds float64
	// Retry bounds task re-execution after fault-induced aborts.
	Retry RetryPolicy
}

// Default returns a moderately hostile spec: a crash roughly every 50
// simulated seconds grid-wide with 30 s outages, occasional SEUs and
// link faults, and a capped-exponential retry policy.
func Default() Spec {
	return Spec{
		CrashRate:            0.02,
		MeanOutageSeconds:    30,
		SEURate:              0.01,
		LinkFaultRate:        0.01,
		MeanLinkFaultSeconds: 60,
		LinkDegradeFactor:    10,
		PartitionShare:       0.25,
		LeaseTTLSeconds:      DefaultLeaseTTL,
		Retry: RetryPolicy{
			MaxRetries:        8,
			BackoffSeconds:    0.5,
			BackoffCapSeconds: 30,
		},
	}
}

// Enabled reports whether the spec injects any faults at all.
func (s Spec) Enabled() bool {
	return s.CrashRate > 0 || s.SEURate > 0 || s.LinkFaultRate > 0
}

// Validate reports impossible specs.
func (s Spec) Validate() error {
	if s.CrashRate < 0 || s.SEURate < 0 || s.LinkFaultRate < 0 {
		return fmt.Errorf("faults: negative fault rate")
	}
	if s.CrashRate > 0 && s.MeanOutageSeconds <= 0 {
		return fmt.Errorf("faults: crash rate without a positive mean outage")
	}
	if s.LinkFaultRate > 0 {
		if s.MeanLinkFaultSeconds <= 0 {
			return fmt.Errorf("faults: link fault rate without a positive mean duration")
		}
		if s.LinkDegradeFactor < 1 {
			return fmt.Errorf("faults: link degrade factor %g < 1", s.LinkDegradeFactor)
		}
		if s.PartitionShare < 0 || s.PartitionShare > 1 {
			return fmt.Errorf("faults: partition share %g outside [0,1]", s.PartitionShare)
		}
	}
	if s.Enabled() && s.HorizonSeconds <= 0 {
		return fmt.Errorf("faults: enabled spec needs a positive horizon")
	}
	if s.LeaseTTLSeconds < 0 {
		return fmt.Errorf("faults: negative lease TTL")
	}
	if s.Retry.MaxRetries < 0 || s.Retry.BackoffSeconds < 0 || s.Retry.BackoffCapSeconds < 0 {
		return fmt.Errorf("faults: negative retry policy field")
	}
	return nil
}

// Schedule generates the fault timeline for a run: three independent
// Poisson processes (crashes, SEUs, link faults), each on its own split
// of rng, merged into one time-sorted slice. It is a pure function of
// its arguments — equal inputs yield equal schedules, which is what
// makes fault runs replayable and sweep replicas worker-count
// independent.
func Schedule(rng *sim.RNG, spec Spec, nodeIDs []string) ([]Event, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if !spec.Enabled() || len(nodeIDs) == 0 {
		return nil, nil
	}
	var events []Event
	var seq uint64
	next := func() uint64 { seq++; return seq }

	if spec.CrashRate > 0 {
		r := rng.Split(1)
		for t := sim.Time(r.ExpFloat64() / spec.CrashRate); float64(t) <= spec.HorizonSeconds; t += sim.Time(r.ExpFloat64() / spec.CrashRate) {
			id := next()
			victim := nodeIDs[r.Intn(len(nodeIDs))]
			outage := sim.Time(r.ExpFloat64() * spec.MeanOutageSeconds)
			events = append(events,
				Event{Time: t, Kind: KindNodeCrash, Node: victim, Seq: id},
				Event{Time: t + outage, Kind: KindNodeRecover, Node: victim, Seq: id})
		}
	}
	if spec.SEURate > 0 {
		r := rng.Split(2)
		for t := sim.Time(r.ExpFloat64() / spec.SEURate); float64(t) <= spec.HorizonSeconds; t += sim.Time(r.ExpFloat64() / spec.SEURate) {
			events = append(events, Event{
				Time: t, Kind: KindSEU, Seq: next(),
				Node:     nodeIDs[r.Intn(len(nodeIDs))],
				Selector: r.Uint64(),
			})
		}
	}
	if spec.LinkFaultRate > 0 {
		r := rng.Split(3)
		for t := sim.Time(r.ExpFloat64() / spec.LinkFaultRate); float64(t) <= spec.HorizonSeconds; t += sim.Time(r.ExpFloat64() / spec.LinkFaultRate) {
			id := next()
			victim := nodeIDs[r.Intn(len(nodeIDs))]
			dur := sim.Time(r.ExpFloat64() * spec.MeanLinkFaultSeconds)
			part := r.Float64() < spec.PartitionShare
			events = append(events,
				Event{Time: t, Kind: KindLinkDegrade, Node: victim, Seq: id, Factor: spec.LinkDegradeFactor, Partition: part},
				Event{Time: t + dur, Kind: KindLinkRestore, Node: victim, Seq: id, Partition: part})
		}
	}

	// Merge into one deterministic timeline. Seq is assigned in
	// generation order, so it is a stable tie-break for simultaneous
	// events across processes; Kind breaks the (vanishing) chance of an
	// equal-time pair sharing a Seq (a zero-length outage's crash must
	// precede its recovery).
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		return a.Kind < b.Kind
	})
	return events, nil
}
