package casestudy

import (
	"strings"
	"testing"

	"repro/internal/bio"
)

func TestBuildNodesMatchesFig5(t *testing.T) {
	reg, err := BuildNodes()
	if err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 3 {
		t.Fatalf("nodes = %d, want 3", reg.Len())
	}
	n0, _ := reg.Node("Node0")
	if len(n0.GPPs()) != 2 || len(n0.RPEs()) != 2 {
		t.Errorf("Node0 has %d GPPs / %d RPEs, want 2/2", len(n0.GPPs()), len(n0.RPEs()))
	}
	n1, _ := reg.Node("Node1")
	if len(n1.GPPs()) != 1 || len(n1.RPEs()) != 2 {
		t.Errorf("Node1 has %d GPPs / %d RPEs, want 1/2", len(n1.GPPs()), len(n1.RPEs()))
	}
	n2, _ := reg.Node("Node2")
	if len(n2.GPPs()) != 0 || len(n2.RPEs()) != 1 {
		t.Errorf("Node2 has %d GPPs / %d RPEs, want 0/1", len(n2.GPPs()), len(n2.RPEs()))
	}
	// "RPE0 and RPE1 in Node1 and RPE0 in Node2 all contain Virtex-5 type
	// devices with more than 24,000 slices."
	for _, e := range append(n1.RPEs(), n2.RPEs()...) {
		dev := e.Fabric.Device()
		if dev.Family != "Virtex-5" || dev.Slices < 24000 {
			t.Errorf("%s: %s (%d slices) violates the paper's Fig. 5 text", e.ID, dev.FPGACaps.Device, dev.Slices)
		}
	}
	// Fresh RPEs must be idle and unconfigured (State0/State1 in Fig. 5).
	for _, e := range n0.RPEs() {
		st := e.Fabric.State()
		if len(st.Configurations) != 0 || st.BusyRegions != 0 {
			t.Errorf("%s not idle/unconfigured: %+v", e.ID, st)
		}
	}
}

func TestTasksMatchFig6(t *testing.T) {
	tasks, err := Tasks()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 4 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	if tasks[1].ExecReq.Design.Name != "malign-core" {
		t.Errorf("Task1 design = %s", tasks[1].ExecReq.Design.Name)
	}
	if tasks[2].ExecReq.Design.Name != "pairalign-core" {
		t.Errorf("Task2 design = %s", tasks[2].ExecReq.Design.Name)
	}
	if tasks[3].ExecReq.Bitstream.Device != "XC6VLX365T" {
		t.Errorf("Task3 device = %s", tasks[3].ExecReq.Bitstream.Device)
	}
}

// TestTableIIExactReproduction is the headline T2 experiment: the
// matchmaker must regenerate the paper's Table II rows exactly.
func TestTableIIExactReproduction(t *testing.T) {
	rows, err := TableII()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string][]string{
		"Task0": {"GPP0 <-> Node0", "GPP1 <-> Node0", "GPP0 <-> Node1"},
		"Task1": {"RPE0 <-> Node1", "RPE1 <-> Node1", "RPE0 <-> Node2"},
		"Task2": {"RPE1 <-> Node1", "RPE0 <-> Node2"},
		"Task3": {"RPE0 <-> Node0"},
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		exp, ok := want[row.Task]
		if !ok {
			t.Errorf("unexpected row %s", row.Task)
			continue
		}
		if len(row.Mappings) != len(exp) {
			t.Errorf("%s mappings = %v, want %v", row.Task, row.Mappings, exp)
			continue
		}
		for i := range exp {
			if row.Mappings[i] != exp[i] {
				t.Errorf("%s mapping %d = %s, want %s", row.Task, i, row.Mappings[i], exp[i])
			}
		}
		if row.Levels == "" {
			t.Errorf("%s has no abstraction levels", row.Task)
		}
	}
	out := FormatTableII(rows)
	if !strings.Contains(out, "RPE0 <-> Node2") {
		t.Errorf("formatted table missing content:\n%s", out)
	}
}

func TestRunFig10SmallWorkload(t *testing.T) {
	// A reduced family keeps the test fast while preserving the shape.
	res, err := RunFig10(7, bio.FamilyOptions{Count: 14, Length: 100, SubstitutionRate: 0.15, IndelRate: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if res.PairalignPercent < 55 {
		t.Errorf("pairalign share = %.1f%%, want dominant", res.PairalignPercent)
	}
	if res.MalignPercent <= 0 || res.MalignPercent >= res.PairalignPercent {
		t.Errorf("malign share = %.1f%% vs pairalign %.1f%%", res.MalignPercent, res.PairalignPercent)
	}
	if len(res.Top) < 8 {
		t.Errorf("top kernels = %d, want ≥8 for a top-10 figure", len(res.Top))
	}
	if res.PairalignArea.Slices != 30790 && (res.PairalignArea.Slices < 30700 || res.PairalignArea.Slices > 30900) {
		t.Errorf("pairalign area = %d, want ≈30,790", res.PairalignArea.Slices)
	}
	if res.MalignArea.Slices < 18600 || res.MalignArea.Slices > 18800 {
		t.Errorf("malign area = %d, want ≈18,707", res.MalignArea.Slices)
	}
	if res.Columns < 100 {
		t.Errorf("alignment columns = %d", res.Columns)
	}
}

func TestProviderSupportsGridFamilies(t *testing.T) {
	tc, err := Provider()
	if err != nil {
		t.Fatal(err)
	}
	for _, fam := range []string{"Virtex-4", "Virtex-5", "Virtex-6"} {
		if !tc.Supports(fam) {
			t.Errorf("provider missing %s support", fam)
		}
	}
}

func TestFig10WorkloadScale(t *testing.T) {
	opts := Fig10Workload()
	// The published profile needs the quadratic pair stage to dominate:
	// a few dozen sequences of a couple hundred residues.
	if opts.Count < 30 || opts.Length < 150 {
		t.Errorf("Fig. 10 workload too small: %+v", opts)
	}
	if opts.SubstitutionRate <= 0 || opts.IndelRate <= 0 {
		t.Errorf("mutation rates unset: %+v", opts)
	}
}
