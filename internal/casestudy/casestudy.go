// Package casestudy reproduces Section V of the paper: the 3-node grid of
// Fig. 5, the four task execution requirements of Fig. 6, the mapping
// analysis of Table II, and the ClustalW profiling of Fig. 10.
package casestudy

import (
	"fmt"
	"strings"

	"repro/internal/bio"
	"repro/internal/capability"
	"repro/internal/fabric"
	"repro/internal/hdl"
	"repro/internal/node"
	"repro/internal/pe"
	"repro/internal/profiler"
	"repro/internal/quipu"
	"repro/internal/rms"
	"repro/internal/sim"
	"repro/internal/task"
)

// BuildNodes constructs the case study's grid (Fig. 5):
//
//	Node0: 2 GPPs + 2 RPEs (a Virtex-6 XC6VLX365T and a Virtex-4 XC4VLX60)
//	Node1: 1 GPP + 2 RPEs (Virtex-5 parts above 24,000 slices)
//	Node2: 1 RPE (a large Virtex-5)
//
// Both of Node0's RPEs start "available and idle, not configured with any
// processor configuration", as Fig. 5's State0/State1 specify.
func BuildNodes() (*rms.Registry, error) {
	reg := rms.NewRegistry()

	n0, err := node.New("Node0")
	if err != nil {
		return nil, err
	}
	if _, err := n0.AddGPP(capability.GPPCaps{CPUType: "Intel Xeon E5540", MIPS: 42000, OS: "Linux", RAMMB: 16384, Cores: 4}); err != nil {
		return nil, err
	}
	if _, err := n0.AddGPP(capability.GPPCaps{CPUType: "Intel Core2 Q9550", MIPS: 28000, OS: "Linux", RAMMB: 8192, Cores: 4}); err != nil {
		return nil, err
	}
	if _, err := n0.AddRPE("XC6VLX365T"); err != nil {
		return nil, err
	}
	if _, err := n0.AddRPE("XC4VLX60"); err != nil {
		return nil, err
	}

	n1, err := node.New("Node1")
	if err != nil {
		return nil, err
	}
	if _, err := n1.AddGPP(capability.GPPCaps{CPUType: "AMD Opteron 250", MIPS: 9600, OS: "Linux", RAMMB: 4096, Cores: 1}); err != nil {
		return nil, err
	}
	if _, err := n1.AddRPE("XC5VLX155T"); err != nil { // 24,320 slices
		return nil, err
	}
	if _, err := n1.AddRPE("XC5VLX220T"); err != nil { // 34,560 slices
		return nil, err
	}

	n2, err := node.New("Node2")
	if err != nil {
		return nil, err
	}
	if _, err := n2.AddRPE("XC5VLX330T"); err != nil { // 51,840 slices
		return nil, err
	}

	for _, n := range []*node.Node{n0, n1, n2} {
		if err := reg.AddNode(n); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// Provider returns the case-study service provider's toolchain: synthesis
// CAD tools for the Xilinx families present in the grid.
func Provider() (*hdl.Toolchain, error) {
	return hdl.NewToolchain("Xilinx ISE 13", "Virtex-4", "Virtex-5", "Virtex-6")
}

// Slice requirements quoted in Section V from the Quipu analysis.
const (
	// MalignSlices is the paper's Quipu estimate for malign.
	MalignSlices = 18707
	// PairalignSlices is the paper's Quipu estimate for pairalign.
	PairalignSlices = 30790
)

// Tasks builds the four case-study tasks with the execution requirements
// of Fig. 6:
//
//	Task0 — data distribution, GPP only (Section III-A)
//	Task1 — malign on any Virtex-5 with ≥18,707 slices (III-B2/III-B3)
//	Task2 — pairalign on any Virtex-5 with ≥30,790 slices (III-B2/III-B3)
//	Task3 — whole ClustalW as one device-specific bitstream for the
//	        XC6VLX365T (III-B3)
func Tasks() ([]*task.Task, error) {
	malign, err := hdl.LookupIP("malign-core")
	if err != nil {
		return nil, err
	}
	pairalign, err := hdl.LookupIP("pairalign-core")
	if err != nil {
		return nil, err
	}
	dev, err := fabric.LookupDevice("XC6VLX365T")
	if err != nil {
		return nil, err
	}
	// The Task3 developer ships a full-device bitstream of their own.
	userBS := fabric.FullBitstream(
		hdl.BitstreamID("clustalw-full", dev.FPGACaps.Device, false),
		"clustalw-full", dev, 49000)

	tasks := []*task.Task{
		{
			ID: "Task0",
			Inputs: []task.DataIn{
				{DataID: "sequences.fasta", SizeMB: 12},
			},
			Outputs: []task.DataOut{
				{DataID: "pair-chunks", SizeMB: 12},
				{DataID: "malign-chunks", SizeMB: 12},
			},
			ExecReq: task.ExecReq{
				Scenario:     pe.SoftwareOnly,
				Requirements: task.GPPOnly(9000, 2048),
			},
			EstimatedSeconds: 4,
			Work:             pe.Work{MInstructions: 40000, ParallelFraction: 0.1, DataMB: 24},
		},
		{
			ID: "Task1",
			Inputs: []task.DataIn{
				{SourceTask: "Task0", DataID: "malign-chunks", SizeMB: 12},
			},
			Outputs: []task.DataOut{{DataID: "alignment", SizeMB: 8}},
			ExecReq: task.ExecReq{
				Scenario:     pe.UserDefinedHW,
				Requirements: task.FPGAFamily("Virtex-5", MalignSlices),
				Design:       malign,
			},
			EstimatedSeconds: 30,
			Work:             pe.Work{MInstructions: 900000, ParallelFraction: 0.95, DataMB: 20, HWSpeedup: 40},
		},
		{
			ID: "Task2",
			Inputs: []task.DataIn{
				{SourceTask: "Task0", DataID: "pair-chunks", SizeMB: 12},
			},
			Outputs: []task.DataOut{{DataID: "distances", SizeMB: 2}},
			ExecReq: task.ExecReq{
				Scenario:     pe.UserDefinedHW,
				Requirements: task.FPGAFamily("Virtex-5", PairalignSlices),
				Design:       pairalign,
			},
			EstimatedSeconds: 120,
			Work:             pe.Work{MInstructions: 9000000, ParallelFraction: 0.98, DataMB: 14, HWSpeedup: 60},
		},
		{
			ID: "Task3",
			Inputs: []task.DataIn{
				{DataID: "sequences.fasta", SizeMB: 12},
			},
			Outputs: []task.DataOut{{DataID: "full-alignment", SizeMB: 8}},
			ExecReq: task.ExecReq{
				Scenario:     pe.DeviceSpecificHW,
				Requirements: task.FPGADevice("XC6VLX365T"),
				Bitstream:    userBS,
			},
			EstimatedSeconds: 90,
			Work:             pe.Work{MInstructions: 10000000, ParallelFraction: 0.97, DataMB: 20, HWSpeedup: 80},
		},
	}
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return nil, err
		}
	}
	return tasks, nil
}

// TableIIRow is one row of Table II.
type TableIIRow struct {
	Task     string
	Mappings []string
	Levels   string
}

// paperLevels are the "user-selected abstraction levels" column of
// Table II.
var paperLevels = map[string]string{
	"Task0": "Software-only application OR Predetermined hardware configuration",
	"Task1": "User-defined hardware configuration OR Device-specific hardware",
	"Task2": "User-defined hardware configuration OR Device-specific hardware",
	"Task3": "Device-specific hardware",
}

// TableII runs the matchmaker over the case-study grid and tasks,
// regenerating the paper's mapping table.
func TableII() ([]TableIIRow, error) {
	reg, err := BuildNodes()
	if err != nil {
		return nil, err
	}
	tc, err := Provider()
	if err != nil {
		return nil, err
	}
	mm, err := rms.NewMatchmaker(reg, tc)
	if err != nil {
		return nil, err
	}
	tasks, err := Tasks()
	if err != nil {
		return nil, err
	}
	var rows []TableIIRow
	for _, t := range tasks {
		cands, err := mm.Candidates(t.ExecReq)
		if err != nil {
			return nil, fmt.Errorf("casestudy: matching %s: %w", t.ID, err)
		}
		row := TableIIRow{Task: t.ID, Levels: paperLevels[t.ID]}
		for _, c := range cands {
			row.Mappings = append(row.Mappings, c.Label())
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig10Result is the regenerated profiling figure plus the Quipu
// predictions Section V quotes.
type Fig10Result struct {
	// Top are the top-10 flat-profile kernels (self time).
	Top []profiler.FlatLine
	// PairalignPercent and MalignPercent are the cumulative shares of the
	// two driver kernels — the 89.76 % / 7.79 % numbers.
	PairalignPercent float64
	MalignPercent    float64
	// PairalignArea and MalignArea are the Quipu predictions — the
	// 30,790 / 18,707 slice numbers.
	PairalignArea quipu.Prediction
	MalignArea    quipu.Prediction
	// Columns is the produced alignment width (sanity evidence that the
	// workload really ran).
	Columns int
}

// Fig10Workload is the input scale used to regenerate Fig. 10. The family
// size is chosen so the quadratic pairalign stage dominates the linear
// malign stage at the paper's ratio.
func Fig10Workload() bio.FamilyOptions {
	return bio.FamilyOptions{Count: 40, Length: 200, SubstitutionRate: 0.15, IndelRate: 0.02}
}

// RunFig10 generates a synthetic protein family, round-trips it through
// FASTA (ClustalW's readseqs step, profiled as seq_input), runs the
// pipeline under the instrumenting profiler, and returns the top-10 kernel
// profile with the Quipu area predictions.
func RunFig10(seed uint64, opts bio.FamilyOptions) (*Fig10Result, error) {
	generated, err := bio.GenerateFamily(sim.NewRNG(seed), opts)
	if err != nil {
		return nil, err
	}
	prof := profiler.New()

	// Sequence input: serialize and re-parse the family, as the real
	// application reads its input files.
	leave := prof.Enter("seq_input")
	var fasta strings.Builder
	if err := bio.WriteFASTA(&fasta, generated); err != nil {
		leave()
		return nil, err
	}
	seqs, err := bio.ParseFASTA(strings.NewReader(fasta.String()))
	leave()
	if err != nil {
		return nil, err
	}

	res, err := bio.Align(seqs, prof, bio.DefaultOptions())
	if err != nil {
		return nil, err
	}
	total := prof.TotalSelf()
	if total <= 0 {
		return nil, fmt.Errorf("casestudy: profiler recorded no time")
	}
	cum := func(name string) float64 {
		for _, l := range prof.Flat() {
			if l.Name == name {
				return 100 * float64(l.Cumulative) / float64(total)
			}
		}
		return 0
	}
	model := quipu.Default()
	pa, err := model.Predict(quipu.PairalignMetrics())
	if err != nil {
		return nil, err
	}
	ma, err := model.Predict(quipu.MalignMetrics())
	if err != nil {
		return nil, err
	}
	return &Fig10Result{
		Top:              prof.Top(10),
		PairalignPercent: cum("pairalign"),
		MalignPercent:    cum("malign"),
		PairalignArea:    pa,
		MalignArea:       ma,
		Columns:          res.Columns(),
	}, nil
}

// FormatTableII renders rows in the paper's layout.
func FormatTableII(rows []TableIIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s | %-55s | %s\n", "Task", "Possible mappings", "User-selected abstraction levels")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-7s | %-55s | %s\n", r.Task, strings.Join(r.Mappings, ", "), r.Levels)
	}
	return b.String()
}
