package profiler

import (
	"math"
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for deterministic tests.
type fakeClock struct{ t time.Duration }

func (c *fakeClock) now() time.Duration      { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t += d }

func TestSelfAndCumulativeAttribution(t *testing.T) {
	c := &fakeClock{}
	p := NewWithClock(c.now)

	leaveMain := p.Enter("main")
	c.advance(10 * time.Millisecond) // main self
	leavePair := p.Enter("pairalign")
	c.advance(80 * time.Millisecond) // pairalign self
	leavePair()
	c.advance(5 * time.Millisecond) // main self again
	leaveMal := p.Enter("malign")
	c.advance(5 * time.Millisecond) // malign self
	leaveMal()
	leaveMain()

	flat := p.Flat()
	if len(flat) != 3 {
		t.Fatalf("flat has %d rows", len(flat))
	}
	if flat[0].Name != "pairalign" {
		t.Errorf("top kernel = %s", flat[0].Name)
	}
	if flat[0].Self != 80*time.Millisecond {
		t.Errorf("pairalign self = %v", flat[0].Self)
	}
	if math.Abs(flat[0].SelfPercent-80) > 1e-9 {
		t.Errorf("pairalign %% = %v, want 80", flat[0].SelfPercent)
	}
	if p.SelfPercent("malign") != 5 {
		t.Errorf("malign %% = %v", p.SelfPercent("malign"))
	}
	// main: self 15 ms, cumulative 100 ms.
	for _, l := range flat {
		if l.Name == "main" {
			if l.Self != 15*time.Millisecond {
				t.Errorf("main self = %v", l.Self)
			}
			if l.Cumulative != 100*time.Millisecond {
				t.Errorf("main cum = %v", l.Cumulative)
			}
		}
	}
	if p.TotalSelf() != 100*time.Millisecond {
		t.Errorf("total = %v", p.TotalSelf())
	}
}

func TestRecursionDoesNotDoubleCountCumulative(t *testing.T) {
	c := &fakeClock{}
	p := NewWithClock(c.now)
	var rec func(depth int)
	rec = func(depth int) {
		defer p.Enter("diff")()
		c.advance(time.Millisecond)
		if depth > 0 {
			rec(depth - 1)
		}
	}
	rec(9) // 10 activations, 10 ms total
	flat := p.Flat()
	if len(flat) != 1 {
		t.Fatalf("flat rows = %d", len(flat))
	}
	if flat[0].Self != 10*time.Millisecond {
		t.Errorf("self = %v", flat[0].Self)
	}
	if flat[0].Cumulative != 10*time.Millisecond {
		t.Errorf("cum = %v (recursion double-counted)", flat[0].Cumulative)
	}
	if flat[0].Calls != 10 {
		t.Errorf("calls = %d", flat[0].Calls)
	}
}

func TestCallGraphEdges(t *testing.T) {
	c := &fakeClock{}
	p := NewWithClock(c.now)
	leaveA := p.Enter("pairalign")
	for i := 0; i < 3; i++ {
		leaveB := p.Enter("forward_pass")
		c.advance(2 * time.Millisecond)
		leaveB()
	}
	leaveA()
	edges := p.CallGraph()
	if len(edges) != 1 {
		t.Fatalf("edges = %d", len(edges))
	}
	e := edges[0]
	if e.Caller != "pairalign" || e.Callee != "forward_pass" {
		t.Errorf("edge = %+v", e)
	}
	if e.Calls != 3 || e.Time != 6*time.Millisecond {
		t.Errorf("edge stats = %+v", e)
	}
}

func TestTopTruncates(t *testing.T) {
	c := &fakeClock{}
	p := NewWithClock(c.now)
	for _, name := range []string{"a", "b", "c", "d"} {
		leave := p.Enter(name)
		c.advance(time.Millisecond)
		leave()
	}
	if got := len(p.Top(2)); got != 2 {
		t.Errorf("Top(2) = %d rows", got)
	}
	if got := len(p.Top(10)); got != 4 {
		t.Errorf("Top(10) = %d rows", got)
	}
}

func TestNilProfilerIsInert(t *testing.T) {
	var p *Profiler
	leave := p.Enter("x") // must not panic
	leave()
	if p.Flat() != nil || p.CallGraph() != nil || p.TotalSelf() != 0 {
		t.Error("nil profiler should report nothing")
	}
}

func TestMismatchedLeavePanics(t *testing.T) {
	c := &fakeClock{}
	p := NewWithClock(c.now)
	leaveA := p.Enter("a")
	p.Enter("b") // not left
	defer func() {
		if recover() == nil {
			t.Error("mismatched leave did not panic")
		}
	}()
	leaveA()
}

func TestLeaveOnEmptyStackPanics(t *testing.T) {
	c := &fakeClock{}
	p := NewWithClock(c.now)
	leave := p.Enter("a")
	leave()
	defer func() {
		if recover() == nil {
			t.Error("double leave did not panic")
		}
	}()
	leave()
}

func TestWriteFlatFormat(t *testing.T) {
	c := &fakeClock{}
	p := NewWithClock(c.now)
	leave := p.Enter("pairalign")
	c.advance(90 * time.Millisecond)
	leave()
	leave = p.Enter("malign")
	c.advance(10 * time.Millisecond)
	leave()
	out := p.String()
	if !strings.Contains(out, "pairalign") || !strings.Contains(out, "% time") {
		t.Errorf("output = %q", out)
	}
	if !strings.Contains(out, "90.00%") {
		t.Errorf("percent formatting: %q", out)
	}
}

func TestWallClockProfilerMeasuresSomething(t *testing.T) {
	p := New()
	leave := p.Enter("spin")
	deadline := time.Now().Add(2 * time.Millisecond)
	x := 0
	for time.Now().Before(deadline) {
		x++
	}
	leave()
	if p.TotalSelf() <= 0 {
		t.Error("wall-clock profiler recorded nothing")
	}
	_ = x
}

func TestDeterministicTieBreak(t *testing.T) {
	c := &fakeClock{}
	p := NewWithClock(c.now)
	for _, name := range []string{"zeta", "alpha"} {
		leave := p.Enter(name)
		c.advance(time.Millisecond)
		leave()
	}
	flat := p.Flat()
	if flat[0].Name != "alpha" {
		t.Errorf("equal-time kernels should sort by name: %v", flat)
	}
}

func TestWriteCallGraph(t *testing.T) {
	c := &fakeClock{}
	p := NewWithClock(c.now)
	leave := p.Enter("pairalign")
	inner := p.Enter("forward_pass")
	c.advance(3 * time.Millisecond)
	inner()
	leave()
	var b strings.Builder
	if err := p.WriteCallGraph(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "pairalign") || !strings.Contains(out, "forward_pass") {
		t.Errorf("call graph = %q", out)
	}
	if !strings.Contains(out, "caller") {
		t.Error("missing header")
	}
}
