// Package profiler is an instrumenting call-graph profiler producing
// gprof-style flat profiles — the tool role gprof plays in the paper's case
// study ("we first identified compute-intensive methods in the application
// using gprof"; Fig. 10 shows the top-10 kernels of ClustalW).
//
// Instrumented code brackets each kernel with Enter/Leave. The profiler
// attributes wall time to the innermost active kernel (self time) and to
// every frame on the stack (cumulative time), and tracks caller→callee
// edges for the call graph.
package profiler

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Profiler collects per-kernel timing. It is not safe for concurrent use:
// profile one goroutine's computation at a time, as gprof does for a
// single-threaded ClustalW run. A nil *Profiler is valid and records
// nothing, so instrumentation can stay in place unconditionally.
type Profiler struct {
	// now is the time source; tests may replace it for determinism.
	now   func() time.Duration
	base  time.Time
	stack []frame
	nodes map[string]*node
	edges map[edge]*edgeStat
}

type frame struct {
	name    string
	entered time.Duration // when this frame became active
	lastRun time.Duration // start of the current self-time span
	child   time.Duration // time spent in callees
}

type node struct {
	name  string
	calls uint64
	self  time.Duration
	cum   time.Duration
	depth int // current recursion depth, to avoid double-counting cum
}

type edge struct{ caller, callee string }

type edgeStat struct {
	calls uint64
	time  time.Duration
}

// New returns an empty profiler using the monotonic wall clock.
func New() *Profiler {
	base := time.Now()
	p := &Profiler{
		base:  base,
		nodes: make(map[string]*node),
		edges: make(map[edge]*edgeStat),
	}
	p.now = func() time.Duration { return time.Since(base) }
	return p
}

// NewWithClock returns a profiler driven by an explicit clock, for
// deterministic tests.
func NewWithClock(clock func() time.Duration) *Profiler {
	return &Profiler{
		now:   clock,
		nodes: make(map[string]*node),
		edges: make(map[edge]*edgeStat),
	}
}

// Enter pushes a kernel activation. Use as:
//
//	defer prof.Enter("pairalign")()
//
// The returned func pops the activation; it must be called exactly once.
func (p *Profiler) Enter(name string) func() {
	if p == nil {
		return func() {}
	}
	t := p.now()
	if len(p.stack) > 0 {
		// Close the caller's self-time span.
		top := &p.stack[len(p.stack)-1]
		p.node(top.name).self += t - top.lastRun
	}
	p.stack = append(p.stack, frame{name: name, entered: t, lastRun: t})
	n := p.node(name)
	n.calls++
	n.depth++
	if len(p.stack) > 1 {
		caller := p.stack[len(p.stack)-2].name
		e := edge{caller, name}
		st, ok := p.edges[e]
		if !ok {
			st = &edgeStat{}
			p.edges[e] = st
		}
		st.calls++
	}
	return func() { p.leave(name) }
}

func (p *Profiler) leave(name string) {
	t := p.now()
	if len(p.stack) == 0 {
		panic(fmt.Sprintf("profiler: leave %q with empty stack", name))
	}
	top := p.stack[len(p.stack)-1]
	if top.name != name {
		panic(fmt.Sprintf("profiler: leave %q but innermost frame is %q", name, top.name))
	}
	p.stack = p.stack[:len(p.stack)-1]
	n := p.node(name)
	n.self += t - top.lastRun
	total := t - top.entered
	n.depth--
	if n.depth == 0 {
		// Only outermost activations add to cumulative time, so recursion
		// does not double-count.
		n.cum += total
	}
	if len(p.stack) > 0 {
		parent := &p.stack[len(p.stack)-1]
		parent.lastRun = t
		parent.child += total
		e := edge{parent.name, name}
		if st, ok := p.edges[e]; ok {
			st.time += total
		}
	}
}

func (p *Profiler) node(name string) *node {
	n, ok := p.nodes[name]
	if !ok {
		n = &node{name: name}
		p.nodes[name] = n
	}
	return n
}

// FlatLine is one row of the gprof-style flat profile.
type FlatLine struct {
	Name       string
	Calls      uint64
	Self       time.Duration
	Cumulative time.Duration
	// SelfPercent is self time as a share of total profiled time, the
	// number Fig. 10 reports per kernel.
	SelfPercent float64
}

// TotalSelf returns the total profiled self time across kernels.
func (p *Profiler) TotalSelf() time.Duration {
	if p == nil {
		return 0
	}
	var total time.Duration
	for _, n := range p.nodes {
		total += n.self
	}
	return total
}

// Flat returns the flat profile sorted by self time descending, ties broken
// by name for determinism.
func (p *Profiler) Flat() []FlatLine {
	if p == nil {
		return nil
	}
	total := p.TotalSelf()
	out := make([]FlatLine, 0, len(p.nodes))
	for _, n := range p.nodes {
		line := FlatLine{Name: n.name, Calls: n.calls, Self: n.self, Cumulative: n.cum}
		if total > 0 {
			line.SelfPercent = 100 * float64(n.self) / float64(total)
		}
		out = append(out, line)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Self != out[j].Self {
			return out[i].Self > out[j].Self
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Top returns the first n flat-profile lines (fewer if not enough kernels),
// matching Fig. 10's "top 10 compute-intensive kernels".
func (p *Profiler) Top(n int) []FlatLine {
	flat := p.Flat()
	if len(flat) > n {
		flat = flat[:n]
	}
	return flat
}

// SelfPercent returns one kernel's share of total self time, or 0 if the
// kernel was never observed.
func (p *Profiler) SelfPercent(name string) float64 {
	for _, l := range p.Flat() {
		if l.Name == name {
			return l.SelfPercent
		}
	}
	return 0
}

// EdgeLine is one caller→callee row of the call graph.
type EdgeLine struct {
	Caller string
	Callee string
	Calls  uint64
	Time   time.Duration
}

// CallGraph returns caller→callee edges sorted by time descending.
func (p *Profiler) CallGraph() []EdgeLine {
	if p == nil {
		return nil
	}
	out := make([]EdgeLine, 0, len(p.edges))
	for e, st := range p.edges {
		out = append(out, EdgeLine{e.caller, e.callee, st.calls, st.time})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		if out[i].Caller != out[j].Caller {
			return out[i].Caller < out[j].Caller
		}
		return out[i].Callee < out[j].Callee
	})
	return out
}

// WriteFlat renders a gprof-style flat profile table.
func (p *Profiler) WriteFlat(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%7s %12s %12s %9s  %s\n", "% time", "self", "cumulative", "calls", "name"); err != nil {
		return err
	}
	for _, l := range p.Flat() {
		if _, err := fmt.Fprintf(w, "%6.2f%% %12s %12s %9d  %s\n",
			l.SelfPercent, l.Self.Round(time.Microsecond), l.Cumulative.Round(time.Microsecond), l.Calls, l.Name); err != nil {
			return err
		}
	}
	return nil
}

// String renders the flat profile.
func (p *Profiler) String() string {
	var b strings.Builder
	if err := p.WriteFlat(&b); err != nil {
		return fmt.Sprintf("profiler: %v", err)
	}
	return b.String()
}

// WriteCallGraph renders the caller→callee table, the second half of a
// gprof report.
func (p *Profiler) WriteCallGraph(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-20s %-20s %9s %12s\n", "caller", "callee", "calls", "time"); err != nil {
		return err
	}
	for _, e := range p.CallGraph() {
		if _, err := fmt.Fprintf(w, "%-20s %-20s %9d %12s\n",
			e.Caller, e.Callee, e.Calls, e.Time.Round(time.Microsecond)); err != nil {
			return err
		}
	}
	return nil
}
