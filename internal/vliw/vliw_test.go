package vliw

import (
	"strings"
	"testing"

	"repro/internal/capability"
	"repro/internal/softcore"
)

// rvex4 returns the constraints of the standard 4-issue ρ-VEX preset.
func rvex4(t *testing.T) Constraints {
	t.Helper()
	core, err := softcore.RVEX(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ConstraintsFor(core.Config().Caps)
}

// dotProduct4 is a 4-issue dot-product kernel: a[] at address 0, b[] at
// address n, accumulator in r10, n in r2.
const dotProduct4 = `
init:
  ldi r1, #0 ; ldi r10, #0
loop:
  ld r5, r1, #0 ; add r6, r1, r2
  ld r7, r6, #0
  mul r8, r5, r7
  add r10, r10, r8 ; add r1, r1, #1
  slt r9, r1, r2
  brnz r9, loop
  halt
`

func runDot(t *testing.T, cons Constraints, n int) (*CPU, Stats) {
	t.Helper()
	prog, err := Assemble(dotProduct4)
	if err != nil {
		t.Fatal(err)
	}
	cpu, err := NewCPU(cons, 2*n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		cpu.Mem[i] = int64(i + 1) // a[i] = i+1
		cpu.Mem[n+i] = 2          // b[i] = 2
	}
	cpu.Regs[2] = int64(n)
	st, err := cpu.Run(prog, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Halted {
		t.Fatal("kernel did not halt")
	}
	return cpu, st
}

func TestDotProductComputesCorrectly(t *testing.T) {
	n := 37
	cpu, _ := runDot(t, rvex4(t), n)
	want := int64(n * (n + 1)) // Σ 2(i+1) = n(n+1)
	if cpu.Regs[10] != want {
		t.Errorf("dot product = %d, want %d", cpu.Regs[10], want)
	}
}

func TestKernelExploitsILP(t *testing.T) {
	_, st := runDot(t, rvex4(t), 100)
	ipc := st.IPC()
	if ipc <= 1.0 {
		t.Errorf("4-issue kernel IPC = %.2f, should exceed scalar", ipc)
	}
	if ipc > 4.0 {
		t.Errorf("IPC = %.2f exceeds issue width", ipc)
	}
}

func TestSerializedKernelIPCAtMostOne(t *testing.T) {
	// The same algorithm with one instruction per bundle.
	serial := strings.ReplaceAll(dotProduct4, " ; ", "\n  ")
	prog, err := Assemble(serial)
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := NewCPU(rvex4(t), 200)
	for i := 0; i < 100; i++ {
		cpu.Mem[i] = int64(i + 1)
		cpu.Mem[100+i] = 2
	}
	cpu.Regs[2] = 100
	st, err := cpu.Run(prog, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.IPC() > 1.0 {
		t.Errorf("serialized IPC = %.2f", st.IPC())
	}
}

func TestConstraintsFor(t *testing.T) {
	caps := capability.SoftcoreCaps{
		ISA: "rvex-vliw", FUTypes: []string{"ALU", "MUL", "MEM"},
		IssueWidth: 4, Clusters: 1,
	}
	c := ConstraintsFor(caps)
	if c.IssueWidth != 4 || c.MulUnits != 1 || c.MemUnits != 1 {
		t.Errorf("constraints = %+v", c)
	}
	// A core without MEM in the mix still gets one memory unit.
	caps.FUTypes = []string{"ALU"}
	c = ConstraintsFor(caps)
	if c.MemUnits != 1 || c.MulUnits != 0 {
		t.Errorf("ALU-only constraints = %+v", c)
	}
}

func TestValidateRejectsConstraintViolations(t *testing.T) {
	cons := Constraints{IssueWidth: 2, MulUnits: 1, MemUnits: 1}
	cases := []struct {
		name string
		src  string
	}{
		{"too wide", "add r1, r1, r2 ; add r3, r3, r4 ; add r5, r5, r6\nhalt"},
		{"two muls", "mul r1, r2, r3 ; mul r4, r5, r6\nhalt"},
		{"two mems", "ld r1, r2, #0 ; ld r3, r4, #0\nhalt"},
		{"waw", "add r1, r2, r3 ; sub r1, r4, r5\nhalt"},
		{"two branches", "brnz r1, a ; jmp a\na: halt"},
	}
	for _, c := range cases {
		prog, err := Assemble(c.src)
		if err != nil {
			t.Fatalf("%s: assemble: %v", c.name, err)
		}
		if err := cons.Validate(prog); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	// MUL on a core without multipliers.
	noMul := Constraints{IssueWidth: 2, MulUnits: 0, MemUnits: 1}
	prog, _ := Assemble("mul r1, r2, r3\nhalt")
	if err := noMul.Validate(prog); err == nil {
		t.Error("MUL accepted on multiplier-less core")
	}
}

func TestR0IsHardwiredZero(t *testing.T) {
	prog, err := Assemble("ldi r0, #42\nadd r1, r0, #7\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := NewCPU(rvex4(t), 0)
	if _, err := cpu.Run(prog, 100); err != nil {
		t.Fatal(err)
	}
	if cpu.Regs[0] != 0 {
		t.Error("r0 was written")
	}
	if cpu.Regs[1] != 7 {
		t.Errorf("r1 = %d, want 7", cpu.Regs[1])
	}
}

func TestBundleSemanticsReadOldValues(t *testing.T) {
	// Swap via parallel reads: both slots read pre-bundle state.
	prog, err := Assemble("ldi r1, #5\nldi r2, #9\nmov r1, r2 ; mov r2, r1\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	cpu, _ := NewCPU(rvex4(t), 0)
	if _, err := cpu.Run(prog, 100); err != nil {
		t.Fatal(err)
	}
	if cpu.Regs[1] != 9 || cpu.Regs[2] != 5 {
		t.Errorf("parallel swap failed: r1=%d r2=%d", cpu.Regs[1], cpu.Regs[2])
	}
}

func TestMemoryFaults(t *testing.T) {
	cpu, _ := NewCPU(rvex4(t), 4)
	prog, _ := Assemble("ld r1, r0, #10\nhalt")
	if _, err := cpu.Run(prog, 100); err == nil {
		t.Error("out-of-bounds load accepted")
	}
	prog, _ = Assemble("st r1, r0, #-1\nhalt")
	cpu2, _ := NewCPU(rvex4(t), 4)
	if _, err := cpu2.Run(prog, 100); err == nil {
		t.Error("negative store accepted")
	}
}

func TestCycleBudget(t *testing.T) {
	prog, _ := Assemble("spin: jmp spin")
	cpu, _ := NewCPU(rvex4(t), 0)
	st, err := cpu.Run(prog, 50)
	if err != nil {
		t.Fatal(err)
	}
	if st.Halted || st.Cycles != 50 {
		t.Errorf("stats = %+v, want 50 cycles without halt", st)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"",
		"frobnicate r1, r2, r3",
		"add r1, r2",
		"add r99, r1, r2",
		"ldi r1, 42",
		"brnz r1, 5",
		"jmp nowhere\nhalt",
		"dup: halt\ndup: halt",
		"1bad: halt",
		"halt r1",
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q) accepted", src)
		}
	}
}

func TestAssembleLabelsAndComments(t *testing.T) {
	prog, err := Assemble(`
// leading comment
start:
  ldi r1, #3   // trailing comment
again: sub r1, r1, #1
  brnz r1, again
  halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Labels["start"] != 0 || prog.Labels["again"] != 1 {
		t.Errorf("labels = %v", prog.Labels)
	}
	cpu, _ := NewCPU(rvex4(t), 0)
	st, err := cpu.Run(prog, 100)
	if err != nil || !st.Halted {
		t.Fatalf("run: %v %+v", err, st)
	}
	if cpu.Regs[1] != 0 {
		t.Errorf("countdown ended at %d", cpu.Regs[1])
	}
}

func TestInstrString(t *testing.T) {
	prog, err := Assemble("ld r5, r1, #0 ; add r6, r1, r2\nst r5, r6, #3\nldi r1, #9\nbrnz r1, top\ntop: halt")
	if err != nil {
		t.Fatal(err)
	}
	rendered := []string{}
	for _, b := range prog.Bundles {
		for _, in := range b {
			rendered = append(rendered, in.String())
		}
	}
	joined := strings.Join(rendered, "\n")
	for _, want := range []string{"ld r5, r1, #0", "add r6, r1, r2", "st r5, r6, #3", "ldi r1, #9", "brnz r1, @4", "halt"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in:\n%s", want, joined)
		}
	}
}
