package vliw

import (
	"fmt"

	"repro/internal/capability"
)

// Constraints are the functional-unit limits a program must respect,
// derived from a soft-core configuration.
type Constraints struct {
	// IssueWidth bounds instructions per bundle.
	IssueWidth int
	// MulUnits bounds multiplier operations per bundle (0 forbids MUL).
	MulUnits int
	// MemUnits bounds memory operations per bundle.
	MemUnits int
}

// ConstraintsFor derives FU limits from a Table I soft-core description:
// issue width from the configuration, multiplier and memory slots from the
// FU mix.
func ConstraintsFor(caps capability.SoftcoreCaps) Constraints {
	c := Constraints{IssueWidth: caps.IssueWidth}
	for _, fu := range caps.FUTypes {
		switch {
		case equalFold(fu, "MUL"):
			c.MulUnits++
		case equalFold(fu, "MEM"):
			c.MemUnits++
		}
	}
	if c.MemUnits == 0 {
		c.MemUnits = 1 // every core can at least load/store serially
	}
	return c
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if ca >= 'a' && ca <= 'z' {
			ca -= 'a' - 'A'
		}
		if cb >= 'a' && cb <= 'z' {
			cb -= 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Validate checks a program against the constraints: bundle width, FU
// budgets, single control-flow op, and write-after-write conflicts.
func (c Constraints) Validate(p *Program) error {
	if c.IssueWidth <= 0 {
		return fmt.Errorf("vliw: non-positive issue width")
	}
	for bi, b := range p.Bundles {
		if len(b) > c.IssueWidth {
			return fmt.Errorf("vliw: bundle %d has %d slots, issue width is %d", bi, len(b), c.IssueWidth)
		}
		muls, mems, ctrls := 0, 0, 0
		writes := map[int]bool{}
		for _, in := range b {
			if in.Op.isMul() {
				muls++
			}
			if in.Op.isMem() {
				mems++
			}
			if in.Op.isControl() {
				ctrls++
			}
			if in.Op.writesReg() && in.Rd != 0 {
				if writes[in.Rd] {
					return fmt.Errorf("vliw: bundle %d writes r%d twice", bi, in.Rd)
				}
				writes[in.Rd] = true
			}
			if in.Target < 0 || (in.Op.isControl() && in.Op != HALT && in.Target >= len(p.Bundles)) {
				return fmt.Errorf("vliw: bundle %d branches outside the program", bi)
			}
		}
		if muls > c.MulUnits {
			return fmt.Errorf("vliw: bundle %d uses %d multipliers, core has %d", bi, muls, c.MulUnits)
		}
		if mems > c.MemUnits {
			return fmt.Errorf("vliw: bundle %d uses %d memory units, core has %d", bi, mems, c.MemUnits)
		}
		if ctrls > 1 {
			return fmt.Errorf("vliw: bundle %d has %d control-flow ops", bi, ctrls)
		}
	}
	return nil
}

// Stats summarize one execution.
type Stats struct {
	// Cycles is the number of bundles issued (one bundle per cycle).
	Cycles uint64
	// Instructions counts non-NOP operations executed.
	Instructions uint64
	// Halted reports a clean HALT (false means the cycle budget ran out).
	Halted bool
}

// IPC returns achieved instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// CPU is a VLIW core instance: registers plus data memory.
type CPU struct {
	cons Constraints
	Regs [NumRegs]int64
	Mem  []int64
}

// NewCPU creates a core with the given constraints and data-memory words.
func NewCPU(cons Constraints, memWords int) (*CPU, error) {
	if cons.IssueWidth <= 0 {
		return nil, fmt.Errorf("vliw: non-positive issue width")
	}
	if memWords < 0 {
		return nil, fmt.Errorf("vliw: negative memory size")
	}
	return &CPU{cons: cons, Mem: make([]int64, memWords)}, nil
}

// Run validates and executes a program, stopping at HALT or after
// maxCycles bundles.
func (c *CPU) Run(p *Program, maxCycles uint64) (Stats, error) {
	if err := c.cons.Validate(p); err != nil {
		return Stats{}, err
	}
	var st Stats
	pc := 0
	for st.Cycles < maxCycles {
		if pc < 0 || pc >= len(p.Bundles) {
			return st, fmt.Errorf("vliw: pc %d outside program", pc)
		}
		bundle := p.Bundles[pc]
		st.Cycles++
		next := pc + 1
		halted := false

		// Read phase: latch all operands against pre-bundle state.
		type write struct {
			reg int
			val int64
		}
		type memWrite struct {
			addr int64
			val  int64
		}
		var regWrites []write
		var memWrites []memWrite
		for _, in := range bundle {
			if in.Op != NOP {
				st.Instructions++
			}
			ra := c.Regs[in.Ra]
			rb := c.Regs[in.Rb]
			if in.UseImm {
				rb = in.Imm
			}
			switch in.Op {
			case NOP:
			case ADD:
				regWrites = append(regWrites, write{in.Rd, ra + rb})
			case SUB:
				regWrites = append(regWrites, write{in.Rd, ra - rb})
			case MUL:
				regWrites = append(regWrites, write{in.Rd, ra * rb})
			case AND:
				regWrites = append(regWrites, write{in.Rd, ra & rb})
			case OR:
				regWrites = append(regWrites, write{in.Rd, ra | rb})
			case XOR:
				regWrites = append(regWrites, write{in.Rd, ra ^ rb})
			case SHL:
				regWrites = append(regWrites, write{in.Rd, ra << uint64(rb&63)})
			case SHR:
				regWrites = append(regWrites, write{in.Rd, ra >> uint64(rb&63)})
			case SLT:
				regWrites = append(regWrites, write{in.Rd, boolTo64(ra < rb)})
			case SEQ:
				regWrites = append(regWrites, write{in.Rd, boolTo64(ra == rb)})
			case LDI:
				regWrites = append(regWrites, write{in.Rd, in.Imm})
			case MOV:
				regWrites = append(regWrites, write{in.Rd, ra})
			case LD:
				addr := ra + in.Imm
				if addr < 0 || addr >= int64(len(c.Mem)) {
					return st, fmt.Errorf("vliw: load fault at %d (bundle %d)", addr, pc)
				}
				regWrites = append(regWrites, write{in.Rd, c.Mem[addr]})
			case ST:
				addr := ra + in.Imm
				if addr < 0 || addr >= int64(len(c.Mem)) {
					return st, fmt.Errorf("vliw: store fault at %d (bundle %d)", addr, pc)
				}
				memWrites = append(memWrites, memWrite{addr, c.Regs[in.Rb]})
			case BRNZ:
				if ra != 0 {
					next = in.Target
				}
			case BRZ:
				if ra == 0 {
					next = in.Target
				}
			case JMP:
				next = in.Target
			case HALT:
				halted = true
			default:
				return st, fmt.Errorf("vliw: unimplemented op %v", in.Op)
			}
		}
		// Write phase.
		for _, w := range regWrites {
			if w.reg != 0 {
				c.Regs[w.reg] = w.val
			}
		}
		for _, mw := range memWrites {
			c.Mem[mw.addr] = mw.val
		}
		if halted {
			st.Halted = true
			return st, nil
		}
		pc = next
	}
	return st, nil
}

func boolTo64(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
