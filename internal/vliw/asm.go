package vliw

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses VLIW assembly into a program. Syntax:
//
//	// comment
//	label:
//	  add r1, r1, r2 ; mul r3, r1, r4   // one bundle, two slots
//	  ld r5, r3, #0
//	  brnz r6, label
//	  halt
//
// One line is one bundle; ';' separates slots. Operands are registers
// (rN), immediates (#N), or labels (branches).
func Assemble(src string) (*Program, error) {
	type pending struct {
		bundle, slot int
		label        string
	}
	prog := &Program{Labels: map[string]int{}}
	var fixups []pending

	lines := strings.Split(src, "\n")
	for lineNo, raw := range lines {
		line := raw
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly several) prefix the next bundle.
		for {
			colon := strings.Index(line, ":")
			if colon < 0 {
				break
			}
			label := strings.TrimSpace(line[:colon])
			if !isIdent(label) {
				return nil, fmt.Errorf("vliw: line %d: bad label %q", lineNo+1, label)
			}
			if _, dup := prog.Labels[label]; dup {
				return nil, fmt.Errorf("vliw: line %d: duplicate label %q", lineNo+1, label)
			}
			prog.Labels[label] = len(prog.Bundles)
			line = strings.TrimSpace(line[colon+1:])
		}
		if line == "" {
			continue
		}
		var bundle Bundle
		for slotIdx, slotSrc := range strings.Split(line, ";") {
			slotSrc = strings.TrimSpace(slotSrc)
			if slotSrc == "" {
				continue
			}
			in, labelRef, err := parseInstr(slotSrc)
			if err != nil {
				return nil, fmt.Errorf("vliw: line %d slot %d: %w", lineNo+1, slotIdx+1, err)
			}
			if labelRef != "" {
				fixups = append(fixups, pending{bundle: len(prog.Bundles), slot: len(bundle), label: labelRef})
			}
			bundle = append(bundle, in)
		}
		if len(bundle) > 0 {
			prog.Bundles = append(prog.Bundles, bundle)
		}
	}
	for _, f := range fixups {
		target, ok := prog.Labels[f.label]
		if !ok {
			return nil, fmt.Errorf("vliw: undefined label %q", f.label)
		}
		prog.Bundles[f.bundle][f.slot].Target = target
	}
	if len(prog.Bundles) == 0 {
		return nil, fmt.Errorf("vliw: empty program")
	}
	return prog, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

var mnemonics = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

// parseInstr parses one slot; a non-empty labelRef means Target needs a
// fixup once all labels are known.
func parseInstr(src string) (Instr, string, error) {
	fields := strings.SplitN(src, " ", 2)
	op, ok := mnemonics[strings.ToLower(fields[0])]
	if !ok {
		return Instr{}, "", fmt.Errorf("unknown mnemonic %q", fields[0])
	}
	rest := ""
	if len(fields) == 2 {
		rest = fields[1]
	}
	args := splitArgs(rest)
	in := Instr{Op: op}
	switch op {
	case NOP, HALT:
		if len(args) != 0 {
			return in, "", fmt.Errorf("%s takes no operands", op)
		}
		return in, "", nil
	case JMP:
		if len(args) != 1 || !isIdent(args[0]) {
			return in, "", fmt.Errorf("jmp needs a label")
		}
		return in, args[0], nil
	case BRNZ, BRZ:
		if len(args) != 2 {
			return in, "", fmt.Errorf("%s needs: reg, label", op)
		}
		ra, err := parseReg(args[0])
		if err != nil {
			return in, "", err
		}
		if !isIdent(args[1]) {
			return in, "", fmt.Errorf("%s needs a label, got %q", op, args[1])
		}
		in.Ra = ra
		return in, args[1], nil
	case LDI:
		if len(args) != 2 {
			return in, "", fmt.Errorf("ldi needs: rd, #imm")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return in, "", err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return in, "", err
		}
		in.Rd, in.Imm, in.UseImm = rd, imm, true
		return in, "", nil
	case MOV:
		if len(args) != 2 {
			return in, "", fmt.Errorf("mov needs: rd, ra")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return in, "", err
		}
		ra, err := parseReg(args[1])
		if err != nil {
			return in, "", err
		}
		in.Rd, in.Ra = rd, ra
		return in, "", nil
	case LD:
		if len(args) != 3 {
			return in, "", fmt.Errorf("ld needs: rd, ra, #off")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return in, "", err
		}
		ra, err := parseReg(args[1])
		if err != nil {
			return in, "", err
		}
		off, err := parseImm(args[2])
		if err != nil {
			return in, "", err
		}
		in.Rd, in.Ra, in.Imm = rd, ra, off
		return in, "", nil
	case ST:
		if len(args) != 3 {
			return in, "", fmt.Errorf("st needs: rb, ra, #off")
		}
		rb, err := parseReg(args[0])
		if err != nil {
			return in, "", err
		}
		ra, err := parseReg(args[1])
		if err != nil {
			return in, "", err
		}
		off, err := parseImm(args[2])
		if err != nil {
			return in, "", err
		}
		in.Rb, in.Ra, in.Imm = rb, ra, off
		return in, "", nil
	default: // three-operand ALU/MUL ops
		if len(args) != 3 {
			return in, "", fmt.Errorf("%s needs: rd, ra, rb|#imm", op)
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return in, "", err
		}
		ra, err := parseReg(args[1])
		if err != nil {
			return in, "", err
		}
		in.Rd, in.Ra = rd, ra
		if strings.HasPrefix(args[2], "#") {
			imm, err := parseImm(args[2])
			if err != nil {
				return in, "", err
			}
			in.Imm, in.UseImm = imm, true
		} else {
			rb, err := parseReg(args[2])
			if err != nil {
				return in, "", err
			}
			in.Rb = rb
		}
		return in, "", nil
	}
}

func splitArgs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		a = strings.TrimSpace(a)
		if a != "" {
			out = append(out, a)
		}
	}
	return out
}

func parseReg(s string) (int, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n >= NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return n, nil
}

func parseImm(s string) (int64, error) {
	if !strings.HasPrefix(s, "#") {
		return 0, fmt.Errorf("expected immediate, got %q", s)
	}
	n, err := strconv.ParseInt(s[1:], 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return n, nil
}
