// Package vliw is a small VLIW instruction-set simulator in the spirit of
// the ρ-VEX processor the paper builds its pre-determined-hardware
// scenario on: instructions grouped into bundles that issue together, with
// functional-unit constraints taken from a soft-core configuration
// (issue width, multiplier and memory units).
//
// The simulator serves two purposes: it makes the soft-core substrate
// concrete (programs really execute), and it validates the timing model —
// measured instructions-per-cycle on real kernels should land near the
// ILP-efficiency factor the softcore package assumes.
package vliw

import "fmt"

// Op is an operation code.
type Op int

// The instruction set: a classic VLIW integer core.
const (
	NOP  Op = iota
	ADD     // rd = ra + rb/imm
	SUB     // rd = ra - rb/imm
	MUL     // rd = ra * rb/imm (multiplier FU)
	AND     // rd = ra & rb/imm
	OR      // rd = ra | rb/imm
	XOR     // rd = ra ^ rb/imm
	SHL     // rd = ra << rb/imm
	SHR     // rd = ra >> rb/imm (arithmetic)
	SLT     // rd = 1 if ra < rb/imm else 0
	SEQ     // rd = 1 if ra == rb/imm else 0
	LDI     // rd = imm
	MOV     // rd = ra
	LD      // rd = mem[ra + imm] (memory FU)
	ST      // mem[ra + imm] = rb (memory FU)
	BRNZ    // if ra != 0 jump to Target
	BRZ     // if ra == 0 jump to Target
	JMP     // jump to Target
	HALT    // stop execution
)

var opNames = map[Op]string{
	NOP: "nop", ADD: "add", SUB: "sub", MUL: "mul", AND: "and", OR: "or",
	XOR: "xor", SHL: "shl", SHR: "shr", SLT: "slt", SEQ: "seq", LDI: "ldi",
	MOV: "mov", LD: "ld", ST: "st", BRNZ: "brnz", BRZ: "brz", JMP: "jmp",
	HALT: "halt",
}

// String returns the mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// isMem reports whether the op needs a memory unit.
func (o Op) isMem() bool { return o == LD || o == ST }

// isMul reports whether the op needs a multiplier unit.
func (o Op) isMul() bool { return o == MUL }

// isControl reports whether the op changes control flow.
func (o Op) isControl() bool { return o == BRNZ || o == BRZ || o == JMP || o == HALT }

// writesReg reports whether the op writes a destination register.
func (o Op) writesReg() bool {
	switch o {
	case NOP, ST, BRNZ, BRZ, JMP, HALT:
		return false
	}
	return true
}

// NumRegs is the architectural register count (r0 is hardwired zero, as on
// the VEX ISA).
const NumRegs = 64

// Instr is one operation within a bundle.
type Instr struct {
	Op     Op
	Rd     int   // destination register
	Ra     int   // first source register
	Rb     int   // second source register (when UseImm is false)
	Imm    int64 // immediate operand / memory offset
	UseImm bool
	// Target is the bundle index of a branch destination (resolved from a
	// label by the assembler).
	Target int
}

// String renders the instruction in assembly form.
func (in Instr) String() string {
	switch {
	case in.Op == NOP || in.Op == HALT:
		return in.Op.String()
	case in.Op == JMP:
		return fmt.Sprintf("jmp @%d", in.Target)
	case in.Op == BRNZ || in.Op == BRZ:
		return fmt.Sprintf("%s r%d, @%d", in.Op, in.Ra, in.Target)
	case in.Op == LDI:
		return fmt.Sprintf("ldi r%d, #%d", in.Rd, in.Imm)
	case in.Op == MOV:
		return fmt.Sprintf("mov r%d, r%d", in.Rd, in.Ra)
	case in.Op == LD:
		return fmt.Sprintf("ld r%d, r%d, #%d", in.Rd, in.Ra, in.Imm)
	case in.Op == ST:
		return fmt.Sprintf("st r%d, r%d, #%d", in.Rb, in.Ra, in.Imm)
	case in.UseImm:
		return fmt.Sprintf("%s r%d, r%d, #%d", in.Op, in.Rd, in.Ra, in.Imm)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Ra, in.Rb)
	}
}

// Bundle is a set of instructions issuing in the same cycle. All reads see
// the register state from before the bundle; all writes land after it.
type Bundle []Instr

// Program is an assembled sequence of bundles.
type Program struct {
	Bundles []Bundle
	// Labels maps label names to bundle indices, kept for disassembly.
	Labels map[string]int
}
