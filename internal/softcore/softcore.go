// Package softcore models parameterizable soft-core VLIW processors in the
// style of the ρ-VEX processor the paper cites [15]: a core configuration
// (issue width, clusters, functional units, memories) that can be
// synthesized onto a reconfigurable fabric, with an area cost model and an
// execution-time estimator.
//
// Soft-cores are the mechanism behind two scenarios: the software-only
// fallback ("configure a soft-core CPU on a currently available RPE") and
// the pre-determined hardware configuration scenario.
package softcore

import (
	"fmt"
	"strings"

	"repro/internal/capability"
	"repro/internal/fabric"
	"repro/internal/pe"
)

// Config is a soft-core configuration — the tunable parameter set the paper
// lists for the ρ-VEX: "the number of issue slots, cluster cores, the number
// and types of functional units, or the number of memory units".
type Config struct {
	Caps capability.SoftcoreCaps
	// ClockMHz is the synthesized core's clock; soft-cores run far below
	// hard CPU clocks, which the scenario trades for flexibility.
	ClockMHz float64
}

// Validate reports structural problems.
func (c Config) Validate() error {
	if err := c.Caps.Validate(); err != nil {
		return err
	}
	if c.ClockMHz <= 0 {
		return fmt.Errorf("softcore: non-positive clock %g MHz", c.ClockMHz)
	}
	return nil
}

// Area cost model coefficients (slices), calibrated to published ρ-VEX
// synthesis results: a 4-issue single-cluster core occupies roughly 6-7 k
// Virtex-class slices.
const (
	areaBase       = 1200 // decode, control, load/store unit
	areaPerIssue   = 900  // per issue slot: ALU datapath + bypass
	areaPerMulFU   = 450  // extra per multiplier FU
	areaPerCluster = 800  // inter-cluster interconnect and register copies
	areaPerRegByte = 2    // register file, per 32-bit register
)

// Slices returns the fabric area the configuration occupies when
// synthesized.
func (c Config) Slices() int {
	mulFUs := 0
	for _, fu := range c.Caps.FUTypes {
		if strings.EqualFold(strings.TrimSpace(fu), "MUL") {
			mulFUs++
		}
	}
	return areaBase +
		areaPerIssue*c.Caps.IssueWidth +
		areaPerMulFU*mulFUs*c.Caps.IssueWidth +
		areaPerCluster*(c.Caps.Clusters-1) +
		areaPerRegByte*c.Caps.RegFile
}

// EffectiveMIPS converts the configuration into an equivalent MIPS rating:
// clock × issue width × an ILP efficiency factor (compilers rarely fill all
// slots) × cluster scaling with diminishing returns.
func (c Config) EffectiveMIPS() float64 {
	const ilpEfficiency = 0.6
	clusterScale := 1.0
	for i := 1; i < c.Caps.Clusters; i++ {
		clusterScale += 0.7 // each extra cluster adds 70 % of a cluster
	}
	return c.ClockMHz * float64(c.Caps.IssueWidth) * ilpEfficiency * clusterScale
}

// Core is a synthesizable soft-core: a configuration plus estimator state.
type Core struct {
	cfg Config
}

// New validates the configuration and returns a core model.
func New(cfg Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Core{cfg: cfg}, nil
}

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// Kind implements pe.Estimator.
func (c *Core) Kind() capability.Kind { return capability.KindSoftcore }

// EstimateSeconds implements pe.Estimator. Issue slots act as the parallel
// resource in the Amdahl term beyond the ILP already folded into
// EffectiveMIPS: a fully sequential workload cannot even use the slots.
func (c *Core) EstimateSeconds(w pe.Work) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	mips := c.cfg.EffectiveMIPS()
	// Sequential workloads degrade toward single-issue throughput: with
	// parallel fraction 0 the effective rate collapses to mips/issueWidth.
	scale := pe.Amdahl(w.ParallelFraction, float64(c.cfg.Caps.IssueWidth)) / float64(c.cfg.Caps.IssueWidth)
	eff := mips * scale
	if eff <= 0 {
		return 0, fmt.Errorf("softcore: non-positive effective rate")
	}
	return w.MInstructions / eff, nil
}

// Bitstream synthesizes the core for a target device, producing a partial
// bitstream sized by the core's area model. It fails when the core does not
// fit the device.
func (c *Core) Bitstream(id string, dev fabric.Device) (*fabric.Bitstream, error) {
	slices := c.cfg.Slices()
	if slices > dev.Slices {
		return nil, fmt.Errorf("softcore: %s needs %d slices, %s has %d",
			c.cfg.Caps.ISA, slices, dev.FPGACaps.Device, dev.Slices)
	}
	bs := fabric.PartialBitstream(id, "softcore-"+c.cfg.Caps.ISA, dev, slices)
	bs.ClockMHz = c.cfg.ClockMHz
	return bs, nil
}

// String summarizes the core.
func (c *Core) String() string {
	return fmt.Sprintf("softcore %s @%g MHz (%d slices, %.0f effective MIPS)",
		c.cfg.Caps.ISA, c.cfg.ClockMHz, c.cfg.Slices(), c.cfg.EffectiveMIPS())
}

// RVEX returns the ρ-VEX-style preset with the requested issue width
// (2, 4, or 8) and cluster count, matching the paper's P_type example.
func RVEX(issueWidth, clusters int) (*Core, error) {
	if issueWidth != 2 && issueWidth != 4 && issueWidth != 8 {
		return nil, fmt.Errorf("softcore: rvex issue width must be 2, 4, or 8 (got %d)", issueWidth)
	}
	if clusters < 1 || clusters > 4 {
		return nil, fmt.Errorf("softcore: rvex clusters must be 1..4 (got %d)", clusters)
	}
	return New(Config{
		Caps: capability.SoftcoreCaps{
			ISA:        "rvex-vliw",
			FUTypes:    []string{"ALU", "MUL", "MEM"},
			IssueWidth: issueWidth,
			IMemKB:     32,
			DMemKB:     32,
			RegFile:    64,
			Pipeline:   5,
			Clusters:   clusters,
		},
		ClockMHz: 150,
	})
}
