package softcore

import (
	"strings"
	"testing"

	"repro/internal/capability"
	"repro/internal/fabric"
	"repro/internal/pe"
)

func TestRVEXPresets(t *testing.T) {
	for _, iw := range []int{2, 4, 8} {
		c, err := RVEX(iw, 1)
		if err != nil {
			t.Fatalf("RVEX(%d,1): %v", iw, err)
		}
		if c.Config().Caps.IssueWidth != iw {
			t.Errorf("issue width = %d", c.Config().Caps.IssueWidth)
		}
		if c.Kind() != capability.KindSoftcore {
			t.Error("kind")
		}
	}
	if _, err := RVEX(3, 1); err == nil {
		t.Error("invalid issue width accepted")
	}
	if _, err := RVEX(4, 0); err == nil {
		t.Error("zero clusters accepted")
	}
	if _, err := RVEX(4, 5); err == nil {
		t.Error("five clusters accepted")
	}
}

func TestAreaGrowsWithIssueWidth(t *testing.T) {
	c2, _ := RVEX(2, 1)
	c4, _ := RVEX(4, 1)
	c8, _ := RVEX(8, 1)
	a2, a4, a8 := c2.Config().Slices(), c4.Config().Slices(), c8.Config().Slices()
	if !(a2 < a4 && a4 < a8) {
		t.Errorf("area not monotone in issue width: %d, %d, %d", a2, a4, a8)
	}
	// The 4-issue core should land in the published ρ-VEX ballpark (5-9 k).
	if a4 < 4000 || a4 > 10000 {
		t.Errorf("4-issue area = %d slices, outside plausible range", a4)
	}
}

func TestAreaGrowsWithClusters(t *testing.T) {
	c1, _ := RVEX(4, 1)
	c2, _ := RVEX(4, 2)
	if c2.Config().Slices() <= c1.Config().Slices() {
		t.Error("extra cluster should cost area")
	}
}

func TestEffectiveMIPSMonotone(t *testing.T) {
	c2, _ := RVEX(2, 1)
	c8, _ := RVEX(8, 1)
	if c8.Config().EffectiveMIPS() <= c2.Config().EffectiveMIPS() {
		t.Error("wider issue should raise effective MIPS")
	}
	c41, _ := RVEX(4, 1)
	c42, _ := RVEX(4, 2)
	if c42.Config().EffectiveMIPS() <= c41.Config().EffectiveMIPS() {
		t.Error("extra cluster should raise effective MIPS")
	}
}

func TestEstimateSecondsParallelSensitivity(t *testing.T) {
	c, _ := RVEX(8, 1)
	seq, err := c.EstimateSeconds(pe.Work{MInstructions: 1000, ParallelFraction: 0})
	if err != nil {
		t.Fatal(err)
	}
	par, err := c.EstimateSeconds(pe.Work{MInstructions: 1000, ParallelFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	if par >= seq {
		t.Errorf("parallel work (%v) should beat sequential (%v) on an 8-issue VLIW", par, seq)
	}
	if _, err := c.EstimateSeconds(pe.Work{}); err == nil {
		t.Error("invalid work accepted")
	}
}

func TestSoftcoreSlowerThanHardCPU(t *testing.T) {
	// A 150 MHz soft-core must be far slower than a 42,000 MIPS Xeon —
	// the paper's "low-power, low-frequency, more flexible, less
	// performance" trade-off.
	c, _ := RVEX(4, 1)
	if c.Config().EffectiveMIPS() > 2000 {
		t.Errorf("soft-core effective MIPS = %v, implausibly fast", c.Config().EffectiveMIPS())
	}
}

func TestBitstreamSynthesis(t *testing.T) {
	c, _ := RVEX(4, 1)
	dev, err := fabric.LookupDevice("XC5VLX110T")
	if err != nil {
		t.Fatal(err)
	}
	bs, err := c.Bitstream("rvex4", dev)
	if err != nil {
		t.Fatal(err)
	}
	if !bs.Partial {
		t.Error("soft-core bitstream should be partial (region-sized)")
	}
	if bs.Slices != c.Config().Slices() {
		t.Errorf("bitstream slices = %d, want %d", bs.Slices, c.Config().Slices())
	}
	if bs.Device != "XC5VLX110T" {
		t.Errorf("bitstream device = %s", bs.Device)
	}
}

func TestBitstreamTooBigForDevice(t *testing.T) {
	c, _ := RVEX(8, 4)
	small, err := fabric.LookupDevice("XC5VLX30")
	if err != nil {
		t.Fatal(err)
	}
	if c.Config().Slices() <= small.Slices {
		t.Skip("preset unexpectedly fits the smallest device")
	}
	if _, err := c.Bitstream("big", small); err == nil {
		t.Error("oversized core accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("empty config accepted")
	}
	c, _ := RVEX(4, 1)
	cfg := c.Config()
	cfg.ClockMHz = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero clock accepted")
	}
	if _, err := New(cfg); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestStringMentionsISA(t *testing.T) {
	c, _ := RVEX(4, 1)
	if !strings.Contains(c.String(), "rvex") {
		t.Errorf("String = %q", c.String())
	}
}
