// Package gpp models general-purpose processors: Table I capabilities plus
// a MIPS-based execution-time estimator with Amdahl multi-core scaling.
package gpp

import (
	"fmt"
	"sort"

	"repro/internal/capability"
	"repro/internal/pe"
)

// Processor is a concrete GPP instance.
type Processor struct {
	Caps capability.GPPCaps
}

// New validates the capabilities and returns a processor model.
func New(caps capability.GPPCaps) (*Processor, error) {
	if err := caps.Validate(); err != nil {
		return nil, err
	}
	return &Processor{Caps: caps}, nil
}

// Kind implements pe.Estimator.
func (p *Processor) Kind() capability.Kind { return capability.KindGPP }

// EstimateSeconds implements pe.Estimator: time = MI / (MIPS × Amdahl(p, cores)).
func (p *Processor) EstimateSeconds(w pe.Work) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	eff := p.Caps.MIPS * pe.Amdahl(w.ParallelFraction, float64(p.Caps.Cores))
	return w.MInstructions / eff, nil
}

// String summarizes the processor.
func (p *Processor) String() string {
	return fmt.Sprintf("gpp %s", p.Caps)
}

// Presets for common grid-node processors; MIPS ratings are of the era the
// paper targets (2010-2012 commodity grid hardware).
var presets = map[string]capability.GPPCaps{
	"xeon-e5540":  {CPUType: "Intel Xeon E5540", MIPS: 42000, OS: "Linux", RAMMB: 16384, Cores: 4},
	"opteron-250": {CPUType: "AMD Opteron 250", MIPS: 9600, OS: "Linux", RAMMB: 4096, Cores: 1},
	"core2-q9550": {CPUType: "Intel Core2 Q9550", MIPS: 28000, OS: "Linux", RAMMB: 8192, Cores: 4},
	"pentium4":    {CPUType: "Intel Pentium 4", MIPS: 6500, OS: "Linux", RAMMB: 2048, Cores: 1},
}

// Preset returns a named catalog processor.
func Preset(name string) (*Processor, error) {
	caps, ok := presets[name]
	if !ok {
		return nil, fmt.Errorf("gpp: unknown preset %q", name)
	}
	return New(caps)
}

// Presets lists the available preset names, sorted so callers (and
// printed catalogs) see a stable order.
func Presets() []string {
	out := make([]string, 0, len(presets))
	for k := range presets {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
