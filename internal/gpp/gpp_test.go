package gpp

import (
	"math"
	"testing"

	"repro/internal/capability"
	"repro/internal/pe"
)

func TestNewValidates(t *testing.T) {
	if _, err := New(capability.GPPCaps{}); err == nil {
		t.Error("empty caps accepted")
	}
	p, err := New(capability.GPPCaps{CPUType: "t", MIPS: 1000, Cores: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind() != capability.KindGPP {
		t.Error("kind")
	}
	if p.String() == "" {
		t.Error("String")
	}
}

func TestEstimateSequential(t *testing.T) {
	p, _ := New(capability.GPPCaps{CPUType: "t", MIPS: 1000, Cores: 4})
	// 1000 MI of fully sequential work on 1000 MIPS = 1 s regardless of cores.
	got, err := p.EstimateSeconds(pe.Work{MInstructions: 1000, ParallelFraction: 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("sequential estimate = %v, want 1", got)
	}
}

func TestEstimateParallelScaling(t *testing.T) {
	p4, _ := New(capability.GPPCaps{CPUType: "t", MIPS: 1000, Cores: 4})
	p1, _ := New(capability.GPPCaps{CPUType: "t", MIPS: 1000, Cores: 1})
	w := pe.Work{MInstructions: 1000, ParallelFraction: 1}
	t4, _ := p4.EstimateSeconds(w)
	t1, _ := p1.EstimateSeconds(w)
	if math.Abs(t1/t4-4) > 1e-9 {
		t.Errorf("4-core speedup = %v, want 4", t1/t4)
	}
}

func TestEstimateRejectsInvalidWork(t *testing.T) {
	p, _ := New(capability.GPPCaps{CPUType: "t", MIPS: 1000, Cores: 1})
	if _, err := p.EstimateSeconds(pe.Work{}); err == nil {
		t.Error("invalid work accepted")
	}
}

func TestPresets(t *testing.T) {
	names := Presets()
	if len(names) < 3 {
		t.Fatalf("only %d presets", len(names))
	}
	for _, n := range names {
		p, err := Preset(n)
		if err != nil {
			t.Errorf("preset %s: %v", n, err)
			continue
		}
		if p.Caps.MIPS <= 0 {
			t.Errorf("preset %s has no MIPS", n)
		}
	}
	if _, err := Preset("z80"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestFasterProcessorIsFaster(t *testing.T) {
	xeon, _ := Preset("xeon-e5540")
	p4, _ := Preset("pentium4")
	w := pe.Work{MInstructions: 5000, ParallelFraction: 0.5}
	tx, _ := xeon.EstimateSeconds(w)
	tp, _ := p4.EstimateSeconds(w)
	if tx >= tp {
		t.Errorf("Xeon (%v) not faster than Pentium 4 (%v)", tx, tp)
	}
}
