// Package pe defines the taxonomy of enhanced processing elements from
// Fig. 1 of the reproduced paper and the use-case scenarios that drive the
// virtualization framework: software-only applications, pre-determined
// hardware configurations (soft-cores), user-defined hardware configurations
// (generic HDL), and device-specific hardware (user-supplied bitstreams).
package pe

import (
	"fmt"
	"strings"

	"repro/internal/capability"
)

// Scenario is a use-case scenario from Section III of the paper. The
// scenario chosen by an application determines which abstraction level the
// user operates at, what the user must supply, and what the service
// provider must possess.
type Scenario int

// The four use-case scenarios (Fig. 1, Section III).
const (
	// SoftwareOnly: existing GPP applications, unaware of reconfigurable
	// fabric; may fall back to a soft-core CPU configured on an RPE when no
	// GPP is free (Section III-A).
	SoftwareOnly Scenario = iota
	// PredeterminedHW: tasks optimized for a particular soft-core
	// architecture (e.g. the ρ-VEX VLIW) that the grid configures onto an
	// RPE (Section III-B1).
	PredeterminedHW
	// UserDefinedHW: the developer supplies a generic HDL accelerator; the
	// provider owns the CAD tools and generates device-specific bitstreams
	// (Section III-B2).
	UserDefinedHW
	// DeviceSpecificHW: the developer supplies a bitstream for one exact
	// device; maximum performance, minimum portability (Section III-B3).
	DeviceSpecificHW
)

var scenarioNames = map[Scenario]string{
	SoftwareOnly:     "Software-only application",
	PredeterminedHW:  "Predetermined hardware configuration",
	UserDefinedHW:    "User-defined hardware configuration",
	DeviceSpecificHW: "Device-specific hardware",
}

// String returns the paper's name for the scenario.
func (s Scenario) String() string {
	if n, ok := scenarioNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Scenario(%d)", int(s))
}

// Scenarios lists the four scenarios in Fig. 1 order.
func Scenarios() []Scenario {
	return []Scenario{SoftwareOnly, PredeterminedHW, UserDefinedHW, DeviceSpecificHW}
}

// scenario aliases accepted by ParseScenario, beyond the full names.
var scenarioAliases = map[string]Scenario{
	"software":        SoftwareOnly,
	"software-only":   SoftwareOnly,
	"predetermined":   PredeterminedHW,
	"softcore":        PredeterminedHW,
	"user-defined":    UserDefinedHW,
	"userdefined":     UserDefinedHW,
	"device-specific": DeviceSpecificHW,
	"devicespecific":  DeviceSpecificHW,
}

// ParseScenario converts a scenario's full name or short alias back to a
// Scenario (case-insensitive).
func ParseScenario(s string) (Scenario, error) {
	lower := strings.ToLower(strings.TrimSpace(s))
	if sc, ok := scenarioAliases[lower]; ok {
		return sc, nil
	}
	for sc, name := range scenarioNames {
		if strings.EqualFold(name, s) {
			return sc, nil
		}
	}
	return SoftwareOnly, fmt.Errorf("pe: unknown scenario %q", s)
}

// Profile describes a scenario row of the taxonomy: what the user supplies,
// what the provider needs, and the qualitative performance/flexibility
// trade-off the paper assigns to it.
type Profile struct {
	Scenario          Scenario
	UserSupplies      string
	ProviderNeeds     string
	DeviceIndependent bool // portable across a device family or beyond
	ProviderCADTools  bool // service provider must possess synthesis tools
	RelativeEffort    int  // 1 (lowest user effort) … 4 (highest)
	RelativePerf      int  // 1 (lowest performance) … 4 (highest)
}

// Profiles returns the taxonomy table behind Fig. 1/Fig. 2.
func Profiles() []Profile {
	return []Profile{
		{SoftwareOnly, "application code + input data", "GPP node, or soft-core CPU fallback on an RPE", true, false, 1, 1},
		{PredeterminedHW, "code compiled for a supported soft-core (issue slots, FUs, clusters selectable)", "soft-core bitstream library for its devices", true, false, 2, 2},
		{UserDefinedHW, "accelerator in generic HDL (VHDL/Verilog) + code + data", "synthesis CAD tools to emit device-specific bitstreams", true, true, 3, 3},
		{DeviceSpecificHW, "device-specific bitstream + code + data", "the exact device targeted by the developer", false, false, 4, 4},
	}
}

// ProfileOf returns the taxonomy row for one scenario.
func ProfileOf(s Scenario) (Profile, error) {
	for _, p := range Profiles() {
		if p.Scenario == s {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("pe: unknown scenario %d", int(s))
}

// Work is an architecture-neutral statement of a task's computational
// demand, which each processing-element model converts into an execution
// time. It is the t_estimated input of the paper's task tuple (Eq. 2).
type Work struct {
	// MInstructions is the dynamic instruction count in millions, the unit
	// Table I rates GPPs in (MIPS).
	MInstructions float64
	// ParallelFraction in [0,1] is the Amdahl-parallelizable share, which
	// multi-core GPPs, VLIW issue slots, GPU warps, and spatial hardware
	// exploit to different degrees.
	ParallelFraction float64
	// DataMB is the input+output volume, charged to network transfer when a
	// task runs remotely.
	DataMB float64
	// HWSpeedup is the factor a dedicated hardware implementation of this
	// task achieves over the reference grid CPU (ReferenceMIPS); 0 means
	// no hardware implementation exists.
	HWSpeedup float64
}

// ReferenceMIPS is the contemporary reference grid CPU rate that hardware
// acceleration factors (Work.HWSpeedup, hdl.Design.AccelFactor) are quoted
// against — a 2010-era quad-core class machine. Serial remainders of
// accelerated tasks also execute at this rate on the accelerator's host.
const ReferenceMIPS = 40000

// Validate reports structurally impossible work descriptions.
func (w Work) Validate() error {
	switch {
	case w.MInstructions <= 0:
		return fmt.Errorf("pe: work has non-positive instruction count %g", w.MInstructions)
	case w.ParallelFraction < 0 || w.ParallelFraction > 1:
		return fmt.Errorf("pe: parallel fraction %g outside [0,1]", w.ParallelFraction)
	case w.DataMB < 0:
		return fmt.Errorf("pe: negative data volume %g", w.DataMB)
	case w.HWSpeedup < 0:
		return fmt.Errorf("pe: negative hardware speedup %g", w.HWSpeedup)
	}
	return nil
}

// Amdahl returns the speedup of n-way parallel execution for a workload
// with parallel fraction p.
func Amdahl(p float64, n float64) float64 {
	if n <= 1 {
		return 1
	}
	return 1 / ((1 - p) + p/n)
}

// Estimator converts architecture-neutral work into an execution-time
// estimate in seconds on a concrete processing element. Each PE model
// package (gpp, softcore, gpu, and hardware designs from hdl) provides one.
type Estimator interface {
	// EstimateSeconds returns the predicted execution time.
	EstimateSeconds(w Work) (float64, error)
	// Kind identifies the Table I row of the underlying element.
	Kind() capability.Kind
}
