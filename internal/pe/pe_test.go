package pe

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestScenarioNames(t *testing.T) {
	want := map[Scenario]string{
		SoftwareOnly:     "Software-only application",
		PredeterminedHW:  "Predetermined hardware configuration",
		UserDefinedHW:    "User-defined hardware configuration",
		DeviceSpecificHW: "Device-specific hardware",
	}
	for s, n := range want {
		if s.String() != n {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), n)
		}
	}
	if !strings.Contains(Scenario(9).String(), "9") {
		t.Error("unknown scenario should render numerically")
	}
}

func TestScenariosOrder(t *testing.T) {
	ss := Scenarios()
	if len(ss) != 4 {
		t.Fatalf("Scenarios() = %d entries", len(ss))
	}
	if ss[0] != SoftwareOnly || ss[3] != DeviceSpecificHW {
		t.Error("scenario order wrong")
	}
}

func TestProfilesMonotonicTradeoff(t *testing.T) {
	// The paper's Fig. 2 claim: lower abstraction ⇒ more user effort and
	// more performance. Profiles must be monotone in both.
	ps := Profiles()
	if len(ps) != 4 {
		t.Fatalf("%d profiles", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i].RelativeEffort <= ps[i-1].RelativeEffort {
			t.Errorf("effort not increasing at %d", i)
		}
		if ps[i].RelativePerf <= ps[i-1].RelativePerf {
			t.Errorf("performance not increasing at %d", i)
		}
	}
}

func TestProfileProperties(t *testing.T) {
	ud, err := ProfileOf(UserDefinedHW)
	if err != nil {
		t.Fatal(err)
	}
	if !ud.ProviderCADTools {
		t.Error("user-defined HW requires provider CAD tools (Section III-B2)")
	}
	ds, err := ProfileOf(DeviceSpecificHW)
	if err != nil {
		t.Fatal(err)
	}
	if ds.ProviderCADTools {
		t.Error("device-specific HW must NOT require provider CAD tools (Section III-B3)")
	}
	if ds.DeviceIndependent {
		t.Error("device-specific HW is not device independent")
	}
	if _, err := ProfileOf(Scenario(42)); err == nil {
		t.Error("unknown scenario accepted")
	}
}

func TestWorkValidate(t *testing.T) {
	good := Work{MInstructions: 100, ParallelFraction: 0.5, DataMB: 1, HWSpeedup: 10}
	if err := good.Validate(); err != nil {
		t.Errorf("good work rejected: %v", err)
	}
	bad := []Work{
		{MInstructions: 0},
		{MInstructions: 1, ParallelFraction: -0.1},
		{MInstructions: 1, ParallelFraction: 1.1},
		{MInstructions: 1, DataMB: -1},
		{MInstructions: 1, HWSpeedup: -1},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("bad work %d accepted", i)
		}
	}
}

func TestAmdahl(t *testing.T) {
	if Amdahl(0, 8) != 1 {
		t.Error("sequential workload should not speed up")
	}
	if math.Abs(Amdahl(1, 8)-8) > 1e-12 {
		t.Error("fully parallel workload should scale linearly")
	}
	// Classic: p=0.5, n→∞ caps at 2.
	if s := Amdahl(0.5, 1e9); math.Abs(s-2) > 1e-6 {
		t.Errorf("Amdahl(0.5,∞) = %v, want 2", s)
	}
	if Amdahl(0.9, 1) != 1 {
		t.Error("single processor gives no speedup")
	}
}

func TestAmdahlBounds(t *testing.T) {
	f := func(pRaw, nRaw uint16) bool {
		p := float64(pRaw%1001) / 1000
		n := 1 + float64(nRaw%128)
		s := Amdahl(p, n)
		return s >= 1-1e-12 && s <= n+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseScenario(t *testing.T) {
	// Full names round-trip.
	for _, s := range Scenarios() {
		back, err := ParseScenario(s.String())
		if err != nil || back != s {
			t.Errorf("ParseScenario(%q) = %v, %v", s.String(), back, err)
		}
	}
	// Short aliases.
	cases := map[string]Scenario{
		"software":         SoftwareOnly,
		"SOFTWARE-ONLY":    SoftwareOnly,
		"softcore":         PredeterminedHW,
		"predetermined":    PredeterminedHW,
		"user-defined":     UserDefinedHW,
		"device-specific":  DeviceSpecificHW,
		" devicespecific ": DeviceSpecificHW,
	}
	for in, want := range cases {
		got, err := ParseScenario(in)
		if err != nil || got != want {
			t.Errorf("ParseScenario(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScenario("quantum"); err == nil {
		t.Error("unknown scenario accepted")
	}
}
