package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"

	"repro/internal/sim"
)

// Chrome is a streaming Chrome trace-event JSON sink. The output is a
// JSON-object-format trace document ({"traceEvents":[...]}) loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing:
//
//   - one "process" per grid node (plus pid 0, the scheduler) and one
//     "thread" per processing element, named via metadata events;
//   - a B/E duration span per dispatch→complete (or →fail) pair, so each
//     element's track shows its task occupancy;
//   - instant events for queue/retry/lost activity (scheduler track) and
//     for faults: SEUs, reconfigurations, lease expiries on the element
//     track, node-down/up and link faults on the node track;
//   - counter events ("C") for every gauge Sample, on the scheduler
//     process.
//
// Timestamps are virtual time in microseconds (the format's unit).
// pids/tids are assigned in first-appearance order, which is
// deterministic for a single engine: equal seeds give byte-identical
// documents. Writes stream through a buffered writer; Close finalizes
// the document. Construct with NewChrome; a zero Chrome is a no-op sink.
type Chrome struct {
	mu      sync.Mutex
	w       *bufio.Writer   // guarded by mu
	err     error           // guarded by mu; first write error, latched
	opened  bool            // guarded by mu
	closed  bool            // guarded by mu
	first   bool            // guarded by mu; next record needs no separator
	pids    map[Name]int    // guarded by mu; node → pid (zero Name = scheduler)
	nextPid int             // guarded by mu
	tids    map[[2]Name]int // guarded by mu; {node, element} → tid
	nextTid map[int]int     // guarded by mu; per-pid tid allocator
	buf     []byte          // guarded by mu; reused per record
}

// NewChrome returns a Chrome trace-event sink over w. Call Close to
// finalize the JSON document.
func NewChrome(w io.Writer) *Chrome {
	return &Chrome{
		w:       bufio.NewWriter(w),
		pids:    map[Name]int{},
		tids:    map[[2]Name]int{},
		nextTid: map[int]int{},
	}
}

// Emit converts one engine event into trace-event records.
func (c *Chrome) Emit(ev Event) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.openLocked() {
		return
	}
	switch ev.Kind {
	case KindQueued, KindRetry, KindLost:
		pid := c.pidLocked(0)
		tid := c.tidLocked(pid, 0, 0)
		c.recordLocked(string(ev.Kind), "i", ev.Time, pid, tid, `"s":"t","args":{"task":`+strconv.Quote(ev.TaskID.String())+`}`)
	case KindDispatch:
		pid := c.pidLocked(ev.Node)
		tid := c.tidLocked(pid, ev.Node, ev.Element)
		c.recordLocked(ev.TaskID.String(), "B", ev.Time, pid, tid, "")
	case KindComplete:
		pid := c.pidLocked(ev.Node)
		tid := c.tidLocked(pid, ev.Node, ev.Element)
		c.recordLocked(ev.TaskID.String(), "E", ev.Time, pid, tid, `"args":{"outcome":"complete"}`)
	case KindFail:
		pid := c.pidLocked(ev.Node)
		tid := c.tidLocked(pid, ev.Node, ev.Element)
		c.recordLocked(ev.TaskID.String(), "E", ev.Time, pid, tid, `"args":{"outcome":"fail"}`)
	case KindReconfig, KindSEU, KindLeaseExpired:
		pid := c.pidLocked(ev.Node)
		tid := c.tidLocked(pid, ev.Node, ev.Element)
		c.recordLocked(string(ev.Kind), "i", ev.Time, pid, tid, `"s":"t","args":{"task":`+strconv.Quote(ev.TaskID.String())+`}`)
	case KindNodeDown, KindNodeUp:
		pid := c.pidLocked(ev.Node)
		tid := c.tidLocked(pid, ev.Node, 0)
		c.recordLocked(string(ev.Kind), "i", ev.Time, pid, tid, `"s":"p"`)
	case KindLinkDegraded, KindLinkRestored:
		// For link events Element carries the fault detail, not a track.
		pid := c.pidLocked(ev.Node)
		tid := c.tidLocked(pid, ev.Node, 0)
		c.recordLocked(string(ev.Kind), "i", ev.Time, pid, tid, `"s":"t","args":{"detail":`+strconv.Quote(ev.Element.String())+`}`)
	default:
		pid := c.pidLocked(ev.Node)
		tid := c.tidLocked(pid, ev.Node, ev.Element)
		c.recordLocked(string(ev.Kind), "i", ev.Time, pid, tid, `"s":"t"`)
	}
}

// Sample renders one gauge snapshot as counter tracks on the scheduler
// process.
func (c *Chrome) Sample(s Sample) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.openLocked() {
		return
	}
	pid := c.pidLocked(0)
	tid := c.tidLocked(pid, 0, 0)
	c.recordLocked("queue", "C", s.Time, pid, tid,
		`"args":{"waiting":`+strconv.Itoa(s.QueueDepth)+`,"retry-backlog":`+strconv.Itoa(s.RetryBacklog)+`}`)
	c.recordLocked("running", "C", s.Time, pid, tid,
		`"args":{"gpp":`+strconv.Itoa(s.RunningGPP)+`,"fpga":`+strconv.Itoa(s.RunningFPGA)+`,"gpu":`+strconv.Itoa(s.RunningGPU)+`}`)
	c.recordLocked("fabric-slices", "C", s.Time, pid, tid,
		`"args":{"used":`+strconv.Itoa(s.FabricSlicesUsed)+`}`)
	c.recordLocked("nodes-down", "C", s.Time, pid, tid,
		`"args":{"down":`+strconv.Itoa(s.NodesDown)+`}`)
	c.recordLocked("energy-joules", "C", s.Time, pid, tid,
		`"args":{"joules":`+strconv.FormatFloat(s.EnergyJoules, 'f', 3, 64)+`}`)
}

// Flush pushes buffered records down to the writer. The document is only
// well-formed JSON after Close.
func (c *Chrome) Flush() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.w == nil || c.err != nil {
		return c.err
	}
	if err := c.w.Flush(); err != nil {
		c.err = err
	}
	return c.err
}

// Close terminates the JSON document and flushes it; later Emits are
// no-ops. An event-free sink still produces a valid empty document.
// Close is idempotent and keeps returning the latched error.
func (c *Chrome) Close() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return c.err
	}
	if c.w == nil {
		c.closed = true
		return nil
	}
	c.openLocked() // before closed is set: an empty doc still needs its preamble
	c.closed = true
	if c.err == nil {
		if _, err := c.w.WriteString("\n]}\n"); err != nil {
			c.err = err
		}
	}
	if err := c.w.Flush(); err != nil && c.err == nil {
		c.err = err
	}
	return c.err
}

// Err returns the latched write error, if any.
func (c *Chrome) Err() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// openLocked writes the document preamble on first use; false when the
// sink cannot accept records.
func (c *Chrome) openLocked() bool {
	if c.w == nil || c.closed || c.err != nil {
		return false
	}
	if !c.opened {
		c.opened = true
		c.first = true
		if _, err := c.w.WriteString("{\"traceEvents\":[\n"); err != nil {
			c.err = err
			return false
		}
	}
	return true
}

// pidLocked returns the pid for a node, assigning one (and emitting its
// process_name metadata) on first appearance. The zero Name is the
// scheduler. Keyed by interned handle: steady-state lookups hash one
// int32, and the text is only resolved for the metadata record.
func (c *Chrome) pidLocked(node Name) int {
	if pid, ok := c.pids[node]; ok {
		return pid
	}
	pid := c.nextPid
	c.nextPid++
	c.pids[node] = pid
	name := node.String()
	if name == "" {
		name = "scheduler"
	}
	c.recordLocked("process_name", "M", 0, pid, 0, `"args":{"name":`+strconv.Quote(name)+`}`)
	return pid
}

// tidLocked returns the tid for an element within a node's process,
// assigning one (with thread_name metadata) on first appearance.
func (c *Chrome) tidLocked(pid int, node, elem Name) int {
	key := [2]Name{node, elem}
	if tid, ok := c.tids[key]; ok {
		return tid
	}
	tid := c.nextTid[pid]
	c.nextTid[pid] = tid + 1
	c.tids[key] = tid
	name := elem.String()
	if name == "" {
		if node == 0 {
			name = "queue"
		} else {
			name = "node"
		}
	}
	c.recordLocked("thread_name", "M", 0, pid, tid, `"args":{"name":`+strconv.Quote(name)+`}`)
	return tid
}

// recordLocked writes one trace-event object carrying the fields Perfetto
// requires (name, ph, ts, pid, tid); extra is raw JSON appended after
// them (without a leading comma).
func (c *Chrome) recordLocked(name, ph string, ts sim.Time, pid, tid int, extra string) {
	if c.err != nil {
		return
	}
	b := c.buf[:0]
	if c.first {
		c.first = false
	} else {
		b = append(b, ',', '\n')
	}
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, name)
	b = append(b, `,"ph":"`...)
	b = append(b, ph...)
	b = append(b, `","ts":`...)
	b = strconv.AppendFloat(b, float64(ts)*1e6, 'f', -1, 64)
	b = append(b, `,"pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	if extra != "" {
		b = append(b, ',')
		b = append(b, extra...)
	}
	b = append(b, '}')
	c.buf = b
	if _, err := c.w.Write(b); err != nil {
		c.err = err
	}
}
