package obs

import (
	"encoding/csv"
	"io"
	"strconv"
	"sync"
)

// Recorder is the in-memory TraceSink: it retains every event and sample
// for post-hoc analysis (CSV dumps, Gantt charts, differential checks).
// Memory grows with the run — for production-scale sweeps prefer the
// streaming sinks. The zero value is ready to use, and a Recorder is safe
// to share across engines running on different goroutines (events from
// concurrent sweep replicas interleave; within one engine they stay in
// virtual-time order).
type Recorder struct {
	mu      sync.Mutex
	events  []Event  // guarded by mu
	samples []Sample // guarded by mu
}

// Emit retains one event.
func (r *Recorder) Emit(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Sample retains one gauge snapshot.
func (r *Recorder) Sample(s Sample) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.samples = append(r.samples, s)
	r.mu.Unlock()
}

// Flush is a no-op: a Recorder holds everything in memory.
func (r *Recorder) Flush() error { return nil }

// Close is a no-op; the recorder's contents stay readable.
func (r *Recorder) Close() error { return nil }

// Events returns the recorded events in emission order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Samples returns the recorded gauge snapshots in emission order.
func (r *Recorder) Samples() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Sample(nil), r.samples...)
}

// WriteCSV emits the trace as CSV (time_s,kind,task,node,element), the
// same encoding the streaming CSV sink produces incrementally.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "kind", "task", "node", "element"}); err != nil {
		return err
	}
	for _, ev := range r.Events() {
		rec := []string{
			strconv.FormatFloat(float64(ev.Time), 'g', -1, 64),
			string(ev.Kind), ev.TaskID.String(), ev.Node.String(), ev.Element.String(),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
