package obs

import "sync"

// Name is an interned identifier: an integer handle into the package's
// append-only intern table. Event identity fields (task, node, element)
// are Names so that building and fanning out an event on the simulation
// hot path moves one machine word instead of hashing and copying strings;
// sinks resolve the text lazily, at encode time, via String.
//
// The zero Name resolves to "". Names are comparable, and two Names are
// == exactly when their resolved strings are equal — the table is global
// and deduplicating, so equal strings intern to the same handle across
// engines, which keeps differential tests' reflect.DeepEqual working.
type Name int32

// nameTable is the process-wide intern table. Interning takes the write
// lock only on first sight of a string; resolution takes the read lock
// and an index. The table only grows — identifiers in one process
// (task/node/element IDs, fault details) form a small recurring set.
var nameTable = struct {
	sync.RWMutex
	ids  map[string]Name
	strs []string
}{ids: make(map[string]Name)}

// Str interns a string and returns its Name. Safe for concurrent use.
// Hot paths should intern once and reuse the handle; Str itself still
// hashes the string.
func Str(s string) Name {
	if s == "" {
		return 0
	}
	nameTable.RLock()
	n, ok := nameTable.ids[s]
	nameTable.RUnlock()
	if ok {
		return n
	}
	nameTable.Lock()
	defer nameTable.Unlock()
	if n, ok := nameTable.ids[s]; ok {
		return n
	}
	nameTable.strs = append(nameTable.strs, s)
	n = Name(len(nameTable.strs)) // 1-based; 0 is the empty name
	nameTable.ids[s] = n
	return n
}

// String resolves the interned text. The zero Name is "".
func (n Name) String() string {
	if n == 0 {
		return ""
	}
	nameTable.RLock()
	defer nameTable.RUnlock()
	i := int(n) - 1
	if i < 0 || i >= len(nameTable.strs) {
		return ""
	}
	return nameTable.strs[i]
}

// IsZero reports whether the name is the empty name.
func (n Name) IsZero() bool { return n == 0 }
