// Conformance suite: one shared table of behavioral requirements run
// against every TraceSink implementation in this package. The contract
// under test is the one in the package comment — virtual-time ordering
// of engine emissions, nil-receiver safety, concurrent-use safety,
// flush/close semantics, and write-error latching.
package obs_test

import (
	"bytes"
	"context"
	"errors"
	"io"
	"sync"
	"testing"

	"repro/internal/faults"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/sim"
)

// sinkCase is one implementation under conformance test.
type sinkCase struct {
	name string
	// make builds a fresh sink; w receives its output (ignored by
	// in-memory sinks).
	make func(w io.Writer) obs.TraceSink
	// nilVal returns a typed-nil receiver, or nil for value types that
	// have no nil receiver.
	nilVal func() obs.TraceSink
	// quietAfterClose marks streaming sinks whose output must not grow
	// once Close has run.
	quietAfterClose bool
}

func sinkCases() []sinkCase {
	return []sinkCase{
		{
			name:   "recorder",
			make:   func(io.Writer) obs.TraceSink { return &obs.Recorder{} },
			nilVal: func() obs.TraceSink { return (*obs.Recorder)(nil) },
		},
		{
			name:            "csv",
			make:            func(w io.Writer) obs.TraceSink { return obs.NewCSV(w) },
			nilVal:          func() obs.TraceSink { return (*obs.CSV)(nil) },
			quietAfterClose: true,
		},
		{
			name:            "chrome",
			make:            func(w io.Writer) obs.TraceSink { return obs.NewChrome(w) },
			nilVal:          func() obs.TraceSink { return (*obs.Chrome)(nil) },
			quietAfterClose: true,
		},
		{
			name:   "timeline",
			make:   func(io.Writer) obs.TraceSink { return obs.NewTimeline() },
			nilVal: func() obs.TraceSink { return (*obs.Timeline)(nil) },
		},
		{
			name: "noop",
			make: func(io.Writer) obs.TraceSink { return obs.Noop{} },
		},
		{
			name:            "multi",
			make:            func(w io.Writer) obs.TraceSink { return obs.Multi(&obs.Recorder{}, obs.NewCSV(w)) },
			quietAfterClose: true,
		},
		{
			name:            "zero-csv",
			make:            func(io.Writer) obs.TraceSink { return &obs.CSV{} },
			quietAfterClose: true,
		},
		{
			name:            "zero-chrome",
			make:            func(io.Writer) obs.TraceSink { return &obs.Chrome{} },
			quietAfterClose: true,
		},
		{
			name: "zero-timeline",
			make: func(io.Writer) obs.TraceSink { return &obs.Timeline{} },
		},
	}
}

// orderChecker is a TraceSink that verifies the ordering leg of the
// contract: within one engine, Emit and Sample arrive in non-decreasing
// virtual time.
type orderChecker struct {
	mu        sync.Mutex
	last      sim.Time // guarded by mu
	events    int      // guarded by mu
	samples   int      // guarded by mu
	regressed bool     // guarded by mu
}

func (o *orderChecker) observe(t sim.Time) {
	o.mu.Lock()
	if t < o.last {
		o.regressed = true
	}
	o.last = t
	o.mu.Unlock()
}

func (o *orderChecker) Emit(ev obs.Event) {
	o.observe(ev.Time)
	o.mu.Lock()
	o.events++
	o.mu.Unlock()
}

func (o *orderChecker) Sample(s obs.Sample) {
	o.observe(s.Time)
	o.mu.Lock()
	o.samples++
	o.mu.Unlock()
}

func (o *orderChecker) Flush() error { return nil }
func (o *orderChecker) Close() error { return nil }

// observedScenario is a pinned moderately-faulty run with sampling on;
// every conformance case drives its sink through it.
func observedScenario(sinks ...obs.TraceSink) grid.ScenarioSpec {
	f := faults.Default()
	f.CrashRate = 0.05
	f.MeanOutageSeconds = 10
	f.SEURate = 0.04
	f.LinkFaultRate = 0.03
	f.MeanLinkFaultSeconds = 12
	f.LeaseTTLSeconds = 2
	f.Retry = faults.RetryPolicy{MaxRetries: 5, BackoffSeconds: 0.5, BackoffCapSeconds: 6}
	cfg := grid.DefaultConfig()
	cfg.SampleEverySeconds = 1
	return grid.ScenarioSpec{
		Seed:     7,
		Config:   cfg,
		Grid:     grid.DefaultGridSpec(),
		Workload: grid.DefaultWorkload(12, 0.8),
		Faults:   &f,
		Sinks:    sinks,
	}
}

// TestSinkConformanceEngineRun drives a real faulty engine through every
// sink implementation alongside an ordering checker: the run must
// produce both events and samples, deliver them in virtual-time order,
// and leave the sink flushable and closable without error.
func TestSinkConformanceEngineRun(t *testing.T) {
	for _, tc := range sinkCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			sink := tc.make(&buf)
			check := &orderChecker{}
			m, err := grid.RunScenario(context.Background(), observedScenario(sink, check))
			if err != nil {
				t.Fatal(err)
			}
			if m.Submitted == 0 {
				t.Fatal("scenario submitted nothing")
			}
			if check.events == 0 {
				t.Error("engine emitted no events")
			}
			if check.samples == 0 {
				t.Error("engine took no samples with SampleEverySeconds=1")
			}
			if check.regressed {
				t.Error("virtual time regressed across emissions")
			}
			if err := sink.Flush(); err != nil {
				t.Errorf("Flush after clean run: %v", err)
			}
			if err := sink.Close(); err != nil {
				t.Errorf("Close after clean run: %v", err)
			}
		})
	}
}

// TestSinkConformanceNilReceiver: every pointer sink must tolerate a
// typed-nil receiver on all four methods — optional sinks get threaded
// through without guards.
func TestSinkConformanceNilReceiver(t *testing.T) {
	for _, tc := range sinkCases() {
		tc := tc
		if tc.nilVal == nil {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			s := tc.nilVal()
			s.Emit(obs.Event{Kind: obs.KindQueued, TaskID: obs.Str("t")})
			s.Sample(obs.Sample{Time: 1})
			if err := s.Flush(); err != nil {
				t.Errorf("nil Flush = %v", err)
			}
			if err := s.Close(); err != nil {
				t.Errorf("nil Close = %v", err)
			}
		})
	}
}

// TestSinkConformanceConcurrent hammers each sink from several
// goroutines, as concurrent sweep replicas sharing one sink do. Run
// under -race this proves the concurrency-safety leg of the contract.
func TestSinkConformanceConcurrent(t *testing.T) {
	const goroutines, perG = 8, 200
	for _, tc := range sinkCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			sink := tc.make(&buf)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						sink.Emit(obs.Event{
							Time:   sim.Time(i),
							Kind:   obs.KindDispatch,
							TaskID: obs.Str("task"),
							Node:   obs.Str("NodeX"),
						})
						if i%10 == 0 {
							sink.Sample(obs.Sample{Time: sim.Time(i), QueueDepth: g})
						}
					}
					if err := sink.Flush(); err != nil {
						t.Errorf("concurrent Flush: %v", err)
					}
				}()
			}
			wg.Wait()
			if err := sink.Close(); err != nil {
				t.Errorf("Close after concurrent use: %v", err)
			}
		})
	}
}

// TestSinkConformanceCloseSemantics: Close must be idempotent, Flush
// must stay callable after Close, and streaming sinks must stop writing
// once closed.
func TestSinkConformanceCloseSemantics(t *testing.T) {
	for _, tc := range sinkCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			sink := tc.make(&buf)
			sink.Emit(obs.Event{Time: 1, Kind: obs.KindQueued, TaskID: obs.Str("a")})
			if err := sink.Close(); err != nil {
				t.Fatalf("first Close: %v", err)
			}
			closedLen := buf.Len()
			if err := sink.Close(); err != nil {
				t.Errorf("second Close: %v", err)
			}
			if buf.Len() != closedLen {
				t.Errorf("second Close grew output by %d bytes", buf.Len()-closedLen)
			}
			sink.Emit(obs.Event{Time: 2, Kind: obs.KindQueued, TaskID: obs.Str("b")})
			sink.Sample(obs.Sample{Time: 2})
			if err := sink.Flush(); err != nil {
				t.Errorf("Flush after Close: %v", err)
			}
			if tc.quietAfterClose && buf.Len() != closedLen {
				t.Errorf("Emit after Close wrote %d bytes", buf.Len()-closedLen)
			}
		})
	}
}

// failAfterWriter accepts n bytes then fails every write.
type failAfterWriter struct {
	n   int
	err error
}

func (f *failAfterWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, f.err
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, f.err
	}
	f.n -= len(p)
	return len(p), nil
}

// TestSinkConformanceWriteError: a failing io.Writer must surface on
// Flush, latch (Close and Err keep returning it), and silence the sink
// rather than panic or spam further writes.
func TestSinkConformanceWriteError(t *testing.T) {
	sentinel := errors.New("disk full")
	cases := []struct {
		name string
		make func(w io.Writer) obs.TraceSink
		err  func(s obs.TraceSink) error
	}{
		{"csv", func(w io.Writer) obs.TraceSink { return obs.NewCSV(w) },
			func(s obs.TraceSink) error { return s.(*obs.CSV).Err() }},
		{"chrome", func(w io.Writer) obs.TraceSink { return obs.NewChrome(w) },
			func(s obs.TraceSink) error { return s.(*obs.Chrome).Err() }},
		{"multi", func(w io.Writer) obs.TraceSink { return obs.Multi(&obs.Recorder{}, obs.NewCSV(w)) },
			nil},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			fw := &failAfterWriter{n: 16, err: sentinel}
			sink := tc.make(fw)
			// Push well past any internal buffer so the error latches
			// during Emit, not only at Flush.
			for i := 0; i < 500; i++ {
				sink.Emit(obs.Event{Time: sim.Time(i), Kind: obs.KindDispatch, TaskID: obs.Str("wl-0"), Node: obs.Str("Node0"), Element: obs.Str("GPP0")})
			}
			if err := sink.Flush(); !errors.Is(err, sentinel) {
				t.Errorf("Flush = %v, want the writer's error", err)
			}
			if err := sink.Close(); !errors.Is(err, sentinel) {
				t.Errorf("Close = %v, want the latched error", err)
			}
			if err := sink.Close(); !errors.Is(err, sentinel) {
				t.Errorf("repeat Close = %v, want the latched error", err)
			}
			if tc.err != nil {
				if err := tc.err(sink); !errors.Is(err, sentinel) {
					t.Errorf("Err() = %v, want the latched error", err)
				}
			}
		})
	}
}

// TestStreamingCSVMatchesRecorder feeds one engine run to a Recorder and
// a streaming CSV sink simultaneously: the streamed bytes must equal the
// Recorder's batch WriteCSV output exactly, making the two
// interchangeable for downstream tooling.
func TestStreamingCSVMatchesRecorder(t *testing.T) {
	rec := &obs.Recorder{}
	var streamed bytes.Buffer
	csvSink := obs.NewCSV(&streamed)
	if _, err := grid.RunScenario(context.Background(), observedScenario(rec, csvSink)); err != nil {
		t.Fatal(err)
	}
	if err := csvSink.Close(); err != nil {
		t.Fatal(err)
	}
	var batch bytes.Buffer
	if err := rec.WriteCSV(&batch); err != nil {
		t.Fatal(err)
	}
	if len(rec.Events()) == 0 {
		t.Fatal("run produced no events")
	}
	if !bytes.Equal(streamed.Bytes(), batch.Bytes()) {
		t.Errorf("streamed CSV (%d bytes) differs from Recorder.WriteCSV (%d bytes)",
			streamed.Len(), batch.Len())
	}
	// Quoting equivalence on hostile field values, empty-trace header
	// equivalence included.
	hostile := []obs.Event{
		{},
		{Time: 1.5, Kind: obs.KindQueued, TaskID: obs.Str(`comma,task`), Node: obs.Str(`quote"node`), Element: obs.Str("multi\nline")},
		{Time: 2, Kind: obs.KindDispatch, TaskID: obs.Str("cr\rreturn"), Node: obs.Str("plain"), Element: obs.Str("")},
	}
	rec2 := &obs.Recorder{}
	var s2, b2 bytes.Buffer
	c2 := obs.NewCSV(&s2)
	for _, ev := range hostile {
		rec2.Emit(ev)
		c2.Emit(ev)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rec2.WriteCSV(&b2); err != nil {
		t.Fatal(err)
	}
	if s2.String() != b2.String() {
		t.Errorf("hostile-field quoting differs:\nstreamed: %q\nbatch:    %q", s2.String(), b2.String())
	}
}

// TestMultiSemantics pins Multi's composition rules: nils drop out, the
// degenerate arities collapse, fan-out reaches every member, and the
// first member error wins.
func TestMultiSemantics(t *testing.T) {
	if s := obs.Multi(); s != nil {
		t.Errorf("Multi() = %v, want nil", s)
	}
	if s := obs.Multi(nil, (*obs.Recorder)(nil)); s != nil {
		// A typed nil is still a non-nil interface; Multi keeps it, and
		// the nil-receiver safety of the sink makes that harmless.
		if _, ok := s.(*obs.Recorder); !ok {
			t.Errorf("Multi(nil, typed-nil) = %T, want the typed nil unwrapped", s)
		}
	}
	one := &obs.Recorder{}
	if s := obs.Multi(nil, one, nil); s != obs.TraceSink(one) {
		t.Errorf("Multi(one) = %v, want the sink unwrapped", s)
	}
	a, b := &obs.Recorder{}, &obs.Recorder{}
	m := obs.Multi(a, b)
	m.Emit(obs.Event{Kind: obs.KindQueued, TaskID: obs.Str("x")})
	m.Sample(obs.Sample{Time: 3})
	for i, r := range []*obs.Recorder{a, b} {
		if len(r.Events()) != 1 || len(r.Samples()) != 1 {
			t.Errorf("member %d got %d events, %d samples; want 1 and 1", i, len(r.Events()), len(r.Samples()))
		}
	}
	if err := m.Flush(); err != nil {
		t.Errorf("Flush over healthy members = %v", err)
	}
	sentinel := errors.New("sink broke")
	bad := obs.NewCSV(&failAfterWriter{err: sentinel})
	bad.Emit(obs.Event{Kind: obs.KindQueued})
	mixed := obs.Multi(&obs.Recorder{}, bad, &obs.Recorder{})
	if err := mixed.Flush(); !errors.Is(err, sentinel) {
		t.Errorf("Flush = %v, want first member error", err)
	}
	if err := mixed.Close(); !errors.Is(err, sentinel) {
		t.Errorf("Close = %v, want first member error", err)
	}
}
