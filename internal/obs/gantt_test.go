package obs

import (
	"bytes"
	"strings"
	"testing"
)

// ganttFixture builds a recorder holding one lane with a completed span,
// a failed span, and a span left open at end-of-run, plus a later event
// that establishes the run's end time.
func ganttFixture() *Recorder {
	rec := &Recorder{}
	for _, ev := range []Event{
		{Time: 0, Kind: KindQueued, TaskID: Str("done")},
		{Time: 1, Kind: KindDispatch, TaskID: Str("done"), Node: Str("Node0"), Element: Str("GPP0")},
		{Time: 4, Kind: KindComplete, TaskID: Str("done"), Node: Str("Node0"), Element: Str("GPP0")},
		{Time: 5, Kind: KindDispatch, TaskID: Str("aborted"), Node: Str("Node0"), Element: Str("GPP0")},
		{Time: 7, Kind: KindFail, TaskID: Str("aborted"), Node: Str("Node0"), Element: Str("GPP0")},
		{Time: 8, Kind: KindDispatch, TaskID: Str("stranded"), Node: Str("Node1"), Element: Str("RPE0")},
		// The run keeps going after the stranded dispatch; its bar must
		// extend to this last event, not vanish.
		{Time: 20, Kind: KindNodeDown, Node: Str("Node1")},
	} {
		rec.Emit(ev)
	}
	return rec
}

func ganttLane(t *testing.T, out, lane string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, lane) {
			return line
		}
	}
	t.Fatalf("lane %q missing in:\n%s", lane, out)
	return ""
}

// TestGanttRendersOpenAndFailedSpans is the regression test for the
// dropped-span bug: dispatches never closed by complete/fail used to
// disappear from the chart entirely, and fault aborts drew like normal
// completions.
func TestGanttRendersOpenAndFailedSpans(t *testing.T) {
	var buf bytes.Buffer
	if err := ganttFixture().Gantt(&buf, 40); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	gpp := ganttLane(t, out, "Node0/GPP0")
	if !strings.ContainsRune(gpp, ganttComplete) {
		t.Errorf("completed span missing %q glyph: %s", ganttComplete, gpp)
	}
	if !strings.ContainsRune(gpp, ganttFailed) {
		t.Errorf("failed span missing %q glyph: %s", ganttFailed, gpp)
	}
	rpe := ganttLane(t, out, "Node1/RPE0")
	if !strings.ContainsRune(rpe, ganttOpen) {
		t.Errorf("in-flight span missing %q glyph: %s", ganttOpen, rpe)
	}
	// The open span runs from dispatch (t=8) to end-of-run (t=20): at 40
	// columns over 20s that is columns 16..39, so the bar must reach the
	// lane's final column.
	bar := rpe[strings.IndexByte(rpe, '|')+1:]
	bar = bar[:strings.IndexByte(bar, '|')]
	if bar[len(bar)-1] != ganttOpen {
		t.Errorf("open span does not extend to end-of-run: %q", bar)
	}
	if !strings.Contains(out, "in flight at end") {
		t.Errorf("legend missing:\n%s", out)
	}
}

func TestGanttDeterministicOverlap(t *testing.T) {
	// Two open spans on one lane: rendering must be stable across runs
	// (sorted task order), so repeated renders are byte-identical.
	rec := &Recorder{}
	rec.Emit(Event{Time: 1, Kind: KindDispatch, TaskID: Str("b"), Node: Str("N"), Element: Str("E")})
	rec.Emit(Event{Time: 2, Kind: KindDispatch, TaskID: Str("a"), Node: Str("N"), Element: Str("E")})
	rec.Emit(Event{Time: 10, Kind: KindNodeDown, Node: Str("N")})
	var first bytes.Buffer
	if err := rec.Gantt(&first, 30); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		var again bytes.Buffer
		if err := rec.Gantt(&again, 30); err != nil {
			t.Fatal(err)
		}
		if again.String() != first.String() {
			t.Fatalf("render %d differs:\n%s\nvs\n%s", i, again.String(), first.String())
		}
	}
}

func TestGanttWidthValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := ganttFixture().Gantt(&buf, 9); err == nil {
		t.Error("width 9 accepted")
	}
	if err := ganttFixture().Gantt(&buf, 10); err != nil {
		t.Errorf("width 10 rejected: %v", err)
	}
}
