// Package obs is the simulation's observability layer: a pluggable
// TraceSink contract the grid engine emits per-task lifecycle events and
// periodic gauge samples through, plus the stock sink implementations —
// the in-memory Recorder, a bounded-memory streaming CSV sink, a
// Chrome/Perfetto trace-event JSON sink, and a Timeline sink that folds
// samples into virtual-time series. It mirrors the paper's monitoring
// user service (Fig. 9): the RMS exposes runtime state, consumers decide
// what to retain.
//
// Sink contract:
//
//   - Emit and Sample are called on the engine's (simulator) goroutine in
//     non-decreasing virtual-time order within one engine. Concurrent
//     engines — sweep replicas sharing one sink — interleave their calls,
//     so implementations must be safe for concurrent use.
//   - Emit must be cheap and must not block: it sits on the simulation's
//     hot path. Heavy encoding belongs behind buffered writers.
//   - Flush forces buffered output down to the underlying writer and
//     reports the first write error the sink has seen (errors are
//     latched: once a write fails the sink stops writing and keeps
//     returning that error).
//   - Close flushes and finalizes the output format; streaming sinks
//     treat every later Emit/Sample as a no-op, while the in-memory
//     sinks (Recorder, Timeline) keep their contents readable and keep
//     recording. Close is idempotent. The creator of a sink owns its
//     lifecycle; the engine never closes sinks it was given.
//   - All implementations in this package are nil-receiver safe, so an
//     optional sink can be threaded through without guards.
package obs

import "repro/internal/sim"

// Kind classifies trace events.
type Kind string

// Trace event kinds. The fault kinds appear only when a fault spec is
// active: node-down/node-up bracket an outage, seu marks a configuration
// upset, link-degraded/link-restored bracket a link fault (partitions
// included), lease-expired records the monitor declaring a lease dead,
// and retry/lost record a task re-queueing or exhausting its retries.
// reconfig marks a dispatch that paid a fabric reconfiguration.
const (
	KindQueued       Kind = "queued"
	KindDispatch     Kind = "dispatch"
	KindReconfig     Kind = "reconfig"
	KindComplete     Kind = "complete"
	KindFail         Kind = "fail"
	KindNodeDown     Kind = "node-down"
	KindNodeUp       Kind = "node-up"
	KindSEU          Kind = "seu"
	KindLinkDegraded Kind = "link-degraded"
	KindLinkRestored Kind = "link-restored"
	KindLeaseExpired Kind = "lease-expired"
	KindRetry        Kind = "retry"
	KindLost         Kind = "lost"
)

// Event is one engine lifecycle event. The identity fields are interned
// Names (see Name): producers pass handles they interned once, sinks
// resolve text lazily at encode time.
type Event struct {
	Time   sim.Time
	Kind   Kind
	TaskID Name
	Node   Name
	// Element is the processing element involved; for link events it
	// instead carries the fault detail ("partition" or empty).
	Element Name
}

// Sample is one periodic gauge snapshot, taken every
// Config.SampleEverySeconds of virtual time when sampling is enabled.
type Sample struct {
	Time sim.Time
	// QueueDepth counts tasks waiting for dispatch; RetryBacklog tasks
	// waiting out a retry backoff.
	QueueDepth   int
	RetryBacklog int
	// Running counts in-flight executions, also split per element kind.
	Running     int
	RunningGPP  int
	RunningFPGA int
	RunningGPU  int
	// UtilGPP is running GPP executions per GPP core; UtilFPGA and
	// UtilGPU are executions per element (UtilFPGA can exceed 1 when
	// partial reconfiguration runs several regions on one fabric).
	UtilGPP  float64
	UtilFPGA float64
	UtilGPU  float64
	// Fabric occupancy across every reachable RPE: loaded configurations
	// and slice usage.
	FabricRegions     int
	FabricSlicesUsed  int
	FabricSlicesTotal int
	// NodesDown counts nodes currently in a crash outage.
	NodesDown int
	// Completed is the tasks finished so far; EnergyJoules the energy
	// drawn so far (active charges only until end-of-run idle billing).
	Completed    int
	EnergyJoules float64
}

// FabricOccupancy returns used/total fabric slices, or 0 without fabric.
func (s Sample) FabricOccupancy() float64 {
	if s.FabricSlicesTotal == 0 {
		return 0
	}
	return float64(s.FabricSlicesUsed) / float64(s.FabricSlicesTotal)
}

// TraceSink consumes engine events and samples. See the package comment
// for the full contract.
type TraceSink interface {
	Emit(ev Event)
	Sample(s Sample)
	Flush() error
	Close() error
}

// Noop is a TraceSink that discards everything; it measures the pure
// instrumentation cost in benchmarks and stands in where a sink is
// required but nothing should be kept.
type Noop struct{}

// Emit discards the event.
func (Noop) Emit(Event) {}

// Sample discards the sample.
func (Noop) Sample(Sample) {}

// Flush reports no error.
func (Noop) Flush() error { return nil }

// Close reports no error.
func (Noop) Close() error { return nil }

// multi fans every call out to each member in order.
type multi []TraceSink

// Multi combines sinks into one fan-out TraceSink. Nil members are
// dropped; with no (non-nil) members Multi returns nil, and with exactly
// one it returns that sink unwrapped.
func Multi(sinks ...TraceSink) TraceSink {
	out := make(multi, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}

// Emit forwards the event to every member.
func (m multi) Emit(ev Event) {
	for _, s := range m {
		s.Emit(ev)
	}
}

// Sample forwards the sample to every member.
func (m multi) Sample(sa Sample) {
	for _, s := range m {
		s.Sample(sa)
	}
}

// Flush flushes every member and returns the first error.
func (m multi) Flush() error {
	var first error
	for _, s := range m {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close closes every member and returns the first error.
func (m multi) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
