package obs

import (
	"bufio"
	"io"
	"strconv"
	"strings"
	"sync"
)

// CSV is the bounded-memory streaming trace sink: every event is encoded
// and written through a buffered writer immediately, so memory stays O(1)
// in the run length — unlike Recorder, which retains the whole run. The
// encoding is byte-identical to Recorder.WriteCSV (header
// time_s,kind,task,node,element, minimal quoting), so the two are
// interchangeable for downstream tooling. Samples are discarded; pair a
// CSV with a Timeline via Multi when both are wanted.
//
// Construct with NewCSV; a zero CSV is a valid no-op sink.
type CSV struct {
	mu     sync.Mutex
	w      *bufio.Writer // guarded by mu
	err    error         // guarded by mu; first write error, latched
	closed bool          // guarded by mu
	header bool          // guarded by mu
	row    []byte        // guarded by mu; reused per event to avoid per-row allocation
}

// NewCSV returns a streaming CSV sink over w.
func NewCSV(w io.Writer) *CSV {
	return &CSV{w: bufio.NewWriter(w)}
}

// Emit encodes and writes one event row (plus the header before the first
// row). After a write error the sink goes quiet and Flush/Close report it.
func (c *CSV) Emit(ev Event) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.w == nil || c.closed || c.err != nil {
		return
	}
	if !c.writeHeaderLocked() {
		return
	}
	row := strconv.AppendFloat(c.row[:0], float64(ev.Time), 'g', -1, 64)
	row = append(row, ',')
	row = appendCSVField(row, string(ev.Kind))
	row = append(row, ',')
	row = appendCSVField(row, ev.TaskID.String())
	row = append(row, ',')
	row = appendCSVField(row, ev.Node.String())
	row = append(row, ',')
	row = appendCSVField(row, ev.Element.String())
	row = append(row, '\n')
	c.row = row
	if _, err := c.w.Write(row); err != nil {
		c.err = err
	}
}

// Sample is discarded: the CSV format carries events only.
func (c *CSV) Sample(Sample) {}

// Flush pushes buffered rows to the underlying writer and returns the
// first error seen so far.
func (c *CSV) Flush() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

// Close flushes and stops the sink; later Emits are no-ops. An event-free
// sink still emits the header, matching Recorder.WriteCSV on an empty
// trace. Close is idempotent and keeps returning the latched error.
func (c *CSV) Close() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return c.err
	}
	c.closed = true
	return c.flushLocked()
}

// Err returns the latched write error, if any.
func (c *CSV) Err() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (c *CSV) flushLocked() error {
	if c.w == nil {
		return c.err
	}
	if c.err != nil {
		return c.err
	}
	if !c.writeHeaderLocked() {
		return c.err
	}
	if err := c.w.Flush(); err != nil {
		c.err = err
	}
	return c.err
}

func (c *CSV) writeHeaderLocked() bool {
	if c.header {
		return true
	}
	c.header = true
	if _, err := c.w.WriteString("time_s,kind,task,node,element\n"); err != nil {
		c.err = err
		return false
	}
	return true
}

// appendCSVField appends one field, quoting only when the value needs it
// (comma, quote, CR, or LF) — the same minimal quoting encoding/csv
// applies, keeping streamed output byte-identical to Recorder.WriteCSV.
func appendCSVField(dst []byte, s string) []byte {
	if !strings.ContainsAny(s, ",\"\r\n") {
		return append(dst, s...)
	}
	dst = append(dst, '"')
	for i := 0; i < len(s); i++ {
		if s[i] == '"' {
			dst = append(dst, '"', '"')
		} else {
			dst = append(dst, s[i])
		}
	}
	return append(dst, '"')
}
