package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"

	"repro/internal/report"
	"repro/internal/sim"
)

// Timeline is the interval-series sink: it retains the periodic gauge
// Samples the engine takes (queue depth, per-kind utilization, fabric
// occupancy, outages, energy draw) and folds them into virtual-time
// series — time-weighted means, maxima, histograms — exported through
// internal/report. Events are only counted per kind, so memory grows with
// the number of samples, not the number of tasks. Enable sampling via
// Config.SampleEverySeconds; without it a Timeline stays empty.
//
// Construct with NewTimeline; the zero value is also usable.
type Timeline struct {
	mu      sync.Mutex
	samples []Sample     // guarded by mu
	counts  map[Kind]int // guarded by mu
}

// NewTimeline returns an empty timeline sink.
func NewTimeline() *Timeline {
	return &Timeline{counts: map[Kind]int{}}
}

// Emit counts the event per kind; the full event is not retained.
func (t *Timeline) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.counts == nil {
		t.counts = map[Kind]int{}
	}
	t.counts[ev.Kind]++
	t.mu.Unlock()
}

// Sample retains one gauge snapshot.
func (t *Timeline) Sample(s Sample) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.samples = append(t.samples, s)
	t.mu.Unlock()
}

// Flush is a no-op: a Timeline holds everything in memory.
func (t *Timeline) Flush() error { return nil }

// Close is a no-op; the timeline's contents stay readable.
func (t *Timeline) Close() error { return nil }

// Samples returns the retained snapshots in emission order.
func (t *Timeline) Samples() []Sample {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Sample(nil), t.samples...)
}

// EventCount returns how many events of one kind were emitted.
func (t *Timeline) EventCount(k Kind) int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[k]
}

// timelineHeader is the WriteCSV column layout.
const timelineHeader = "time_s,queue,retry_backlog,running,util_gpp,util_fpga,util_gpu," +
	"fabric_regions,fabric_slices_used,fabric_slices_total,nodes_down,completed,energy_j\n"

// WriteCSV emits the sampled series as CSV, one row per sample.
func (t *Timeline) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(timelineHeader); err != nil {
		return err
	}
	var row []byte
	for _, s := range t.Samples() {
		row = strconv.AppendFloat(row[:0], float64(s.Time), 'g', -1, 64)
		for _, n := range [...]int{s.QueueDepth, s.RetryBacklog, s.Running} {
			row = append(row, ',')
			row = strconv.AppendInt(row, int64(n), 10)
		}
		for _, f := range [...]float64{s.UtilGPP, s.UtilFPGA, s.UtilGPU} {
			row = append(row, ',')
			row = strconv.AppendFloat(row, f, 'g', -1, 64)
		}
		for _, n := range [...]int{s.FabricRegions, s.FabricSlicesUsed, s.FabricSlicesTotal, s.NodesDown, s.Completed} {
			row = append(row, ',')
			row = strconv.AppendInt(row, int64(n), 10)
		}
		row = append(row, ',')
		row = strconv.AppendFloat(row, s.EnergyJoules, 'g', -1, 64)
		row = append(row, '\n')
		if _, err := bw.Write(row); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// QueueHistogram buckets the sampled queue depths into a fixed-width
// sim.Histogram starting at zero.
func (t *Timeline) QueueHistogram(binWidth float64, bins int) *sim.Histogram {
	h := sim.NewHistogram(0, binWidth, bins)
	for _, s := range t.Samples() {
		h.Observe(float64(s.QueueDepth))
	}
	return h
}

// timelineSeries enumerates the summarized series in display order.
var timelineSeries = []struct {
	name string
	get  func(Sample) float64
}{
	{"queue depth", func(s Sample) float64 { return float64(s.QueueDepth) }},
	{"retry backlog", func(s Sample) float64 { return float64(s.RetryBacklog) }},
	{"running", func(s Sample) float64 { return float64(s.Running) }},
	{"util gpp", func(s Sample) float64 { return s.UtilGPP }},
	{"util fpga", func(s Sample) float64 { return s.UtilFPGA }},
	{"util gpu", func(s Sample) float64 { return s.UtilGPU }},
	{"fabric occupancy", func(s Sample) float64 { return s.FabricOccupancy() }},
	{"nodes down", func(s Sample) float64 { return float64(s.NodesDown) }},
	{"energy (J)", func(s Sample) float64 { return s.EnergyJoules }},
}

// Summary renders the series as a report table: the time-weighted mean
// over the sampled window (treating each series as piecewise-constant
// between samples), the maximum, and the final value.
func (t *Timeline) Summary(title string) *report.Table {
	tb := report.NewTable(title, "series", "mean", "max", "final")
	samples := t.Samples()
	if len(samples) == 0 {
		return tb
	}
	end := samples[len(samples)-1].Time
	for _, sp := range timelineSeries {
		var w sim.TimeWeighted
		for _, s := range samples {
			w.Set(s.Time, sp.get(s))
		}
		tb.AddRow(sp.name, w.MeanOver(end), w.Max(), sp.get(samples[len(samples)-1]))
	}
	return tb
}
