package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// span is one task's occupancy of an element.
type span struct {
	task       string
	start, end sim.Time
	glyph      byte
}

// Gantt glyphs: a span closed by a completion, a span closed by a
// fault-induced abort, and a span still in flight when the run ended
// (horizon cutoff or a crashed node whose lease never expired).
const (
	ganttComplete = '#'
	ganttFailed   = 'x'
	ganttOpen     = '>'
)

// Gantt renders an ASCII Gantt chart: one lane per processing element,
// bars spanning dispatch→completion. Spans that ended in a fault abort
// render as 'x', and tasks dispatched but never closed — cut off by the
// horizon or stranded on a dead node — render as '>' through end-of-run
// instead of being dropped.
func (r *Recorder) Gantt(w io.Writer, width int) error {
	if width < 10 {
		return fmt.Errorf("obs: gantt width %d too small", width)
	}
	open := map[Name]Event{} // task → dispatch event
	lanes := map[string][]span{}
	var maxT sim.Time
	for _, ev := range r.Events() {
		if ev.Time > maxT {
			maxT = ev.Time
		}
		switch ev.Kind {
		case KindDispatch:
			open[ev.TaskID] = ev
		case KindComplete, KindFail:
			d, ok := open[ev.TaskID]
			if !ok {
				continue
			}
			delete(open, ev.TaskID)
			glyph := byte(ganttComplete)
			if ev.Kind == KindFail {
				glyph = ganttFailed
			}
			lane := d.Node.String() + "/" + d.Element.String()
			lanes[lane] = append(lanes[lane], span{task: ev.TaskID.String(), start: d.Time, end: ev.Time, glyph: glyph})
		}
	}
	// In-flight at end-of-run: extend to the last event time, in sorted
	// task order so overlapping draws stay deterministic.
	openIDs := make([]string, 0, len(open))
	byStr := make(map[string]Event, len(open))
	for id, d := range open {
		s := id.String()
		openIDs = append(openIDs, s)
		byStr[s] = d
	}
	sort.Strings(openIDs)
	for _, id := range openIDs {
		d := byStr[id]
		lane := d.Node.String() + "/" + d.Element.String()
		lanes[lane] = append(lanes[lane], span{task: id, start: d.Time, end: maxT, glyph: ganttOpen})
	}
	if maxT <= 0 || len(lanes) == 0 {
		_, err := fmt.Fprintln(w, "(no spans)")
		return err
	}
	names := make([]string, 0, len(lanes))
	nameWidth := 0
	for name := range lanes {
		names = append(names, name)
		if len(name) > nameWidth {
			nameWidth = len(name)
		}
	}
	sort.Strings(names)
	scale := float64(width) / float64(maxT)
	for _, name := range names {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		for _, sp := range lanes[name] {
			lo := int(float64(sp.start) * scale)
			hi := int(float64(sp.end) * scale)
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi && i < width; i++ {
				row[i] = sp.glyph
			}
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s|\n", nameWidth, name, row); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s  0%s%s\n", nameWidth, "", strings.Repeat(" ", width-len(maxT.String())), maxT); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%-*s  %c complete  %c failed  %c in flight at end\n",
		nameWidth, "", ganttComplete, ganttFailed, ganttOpen)
	return err
}
