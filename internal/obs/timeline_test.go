package obs

import (
	"bytes"
	"strings"
	"testing"
)

func timelineFixture() *Timeline {
	tl := NewTimeline()
	tl.Emit(Event{Kind: KindDispatch})
	tl.Emit(Event{Kind: KindDispatch})
	tl.Emit(Event{Kind: KindRetry})
	tl.Sample(Sample{Time: 0, QueueDepth: 4, Running: 1, UtilGPP: 0.25,
		FabricSlicesUsed: 0, FabricSlicesTotal: 64, EnergyJoules: 0})
	tl.Sample(Sample{Time: 1, QueueDepth: 2, Running: 3, UtilGPP: 0.75,
		FabricSlicesUsed: 16, FabricSlicesTotal: 64, EnergyJoules: 5})
	tl.Sample(Sample{Time: 2, QueueDepth: 0, Running: 0, UtilGPP: 0,
		FabricSlicesUsed: 0, FabricSlicesTotal: 64, Completed: 5, EnergyJoules: 9})
	return tl
}

func TestTimelineCountsAndSamples(t *testing.T) {
	tl := timelineFixture()
	if got := tl.EventCount(KindDispatch); got != 2 {
		t.Errorf("dispatch count = %d", got)
	}
	if got := tl.EventCount(KindLost); got != 0 {
		t.Errorf("lost count = %d", got)
	}
	if got := len(tl.Samples()); got != 3 {
		t.Errorf("samples = %d", got)
	}
}

func TestTimelineWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := timelineFixture().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != strings.TrimSuffix(timelineHeader, "\n") {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 4 {
		t.Fatalf("rows = %d, want header + 3 samples", len(lines)-1)
	}
	if lines[2] != "1,2,0,3,0.75,0,0,0,16,64,0,0,5" {
		t.Errorf("sample row = %q", lines[2])
	}
	cols := strings.Count(timelineHeader, ",") + 1
	for i, line := range lines {
		if strings.Count(line, ",")+1 != cols {
			t.Errorf("line %d has %d columns, want %d: %q", i, strings.Count(line, ",")+1, cols, line)
		}
	}
}

func TestTimelineQueueHistogram(t *testing.T) {
	h := timelineFixture().QueueHistogram(2, 4)
	if h.N() != 3 {
		t.Errorf("histogram observed %d samples", h.N())
	}
	// Depths 4, 2, 0 → bins [0,2)=1, [2,4)=1, [4,6)=1.
	for bin, want := range map[int]uint64{0: 1, 1: 1, 2: 1} {
		if got := h.Bin(bin); got != want {
			t.Errorf("bin %d = %d, want %d", bin, got, want)
		}
	}
}

func TestTimelineSummary(t *testing.T) {
	tb := timelineFixture().Summary("obs demo")
	out := tb.String()
	for _, series := range []string{"queue depth", "util gpp", "fabric occupancy", "energy (J)"} {
		if !strings.Contains(out, series) {
			t.Errorf("summary missing series %q:\n%s", series, out)
		}
	}
	if tb.Rows() != len(timelineSeries) {
		t.Errorf("summary rows = %d, want %d", tb.Rows(), len(timelineSeries))
	}
	// Queue depth is piecewise-constant 4 over [0,1) and 2 over [1,2):
	// time-weighted mean 3, max 4, final 0.
	var queueLine string
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "queue depth") {
			queueLine = line
		}
	}
	fields := strings.Fields(queueLine)
	if len(fields) < 5 || fields[2] != "3" || fields[3] != "4" || fields[4] != "0" {
		t.Errorf("queue depth row = %q, want mean 3, max 4, final 0", queueLine)
	}
	empty := NewTimeline().Summary("empty")
	if empty.Rows() != 0 {
		t.Errorf("empty timeline summary has %d rows", empty.Rows())
	}
}
