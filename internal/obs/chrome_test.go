package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// chromeDoc mirrors the JSON-object trace format for shape validation.
type chromeDoc struct {
	TraceEvents []map[string]any `json:"traceEvents"`
}

// chromeFixtureEvents exercises every Emit arm: scheduler instants,
// dispatch/complete and dispatch/fail span pairs, element- and
// node-track fault instants, and a link event carrying detail.
func chromeFixtureEvents() []Event {
	return []Event{
		{Time: 0, Kind: KindQueued, TaskID: Str("t1")},
		{Time: 0.5, Kind: KindDispatch, TaskID: Str("t1"), Node: Str("Node0"), Element: Str("GPP0")},
		{Time: 1, Kind: KindQueued, TaskID: Str("t2")},
		{Time: 1.5, Kind: KindDispatch, TaskID: Str("t2"), Node: Str("Node1"), Element: Str("RPE0")},
		{Time: 1.5, Kind: KindReconfig, TaskID: Str("t2"), Node: Str("Node1"), Element: Str("RPE0")},
		{Time: 2, Kind: KindSEU, TaskID: Str("t2"), Node: Str("Node1"), Element: Str("RPE0")},
		{Time: 2.5, Kind: KindFail, TaskID: Str("t2"), Node: Str("Node1"), Element: Str("RPE0")},
		{Time: 2.5, Kind: KindRetry, TaskID: Str("t2")},
		{Time: 3, Kind: KindNodeDown, Node: Str("Node1")},
		{Time: 3.5, Kind: KindLinkDegraded, Node: Str("Node0"), Element: Str("partition")},
		{Time: 4, Kind: KindComplete, TaskID: Str("t1"), Node: Str("Node0"), Element: Str("GPP0")},
		{Time: 5, Kind: KindLeaseExpired, TaskID: Str("t2"), Node: Str("Node1"), Element: Str("RPE0")},
		{Time: 6, Kind: KindLinkRestored, Node: Str("Node0"), Element: Str("")},
		{Time: 7, Kind: KindNodeUp, Node: Str("Node1")},
		{Time: 8, Kind: KindLost, TaskID: Str("t2")},
	}
}

// TestChromeTraceShape validates the document a Chrome sink writes:
// parseable JSON in the object format, every record carrying the fields
// Perfetto requires (name, ph, ts, pid, tid), spans balanced, counters
// and track metadata present.
func TestChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	c := NewChrome(&buf)
	for _, ev := range chromeFixtureEvents() {
		c.Emit(ev)
	}
	c.Sample(Sample{Time: 9, QueueDepth: 1, RunningGPP: 1, FabricSlicesUsed: 2, NodesDown: 1, EnergyJoules: 12.5})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}
	phases := map[string]int{}
	openSpans := 0
	names := map[string]bool{}
	for i, rec := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := rec[field]; !ok {
				t.Fatalf("record %d missing %q: %v", i, field, rec)
			}
		}
		ph, _ := rec["ph"].(string)
		phases[ph]++
		switch ph {
		case "B":
			openSpans++
		case "E":
			openSpans--
		case "i":
			if s, _ := rec["s"].(string); s != "t" && s != "p" && s != "g" {
				t.Errorf("instant record %d has scope %q", i, s)
			}
		}
		if ts, ok := rec["ts"].(float64); !ok || ts < 0 {
			t.Errorf("record %d ts = %v", i, rec["ts"])
		}
		if name, _ := rec["name"].(string); name != "" {
			names[name] = true
		}
		// Track names for metadata records live in args.name.
		if ph == "M" {
			args, _ := rec["args"].(map[string]any)
			if track, _ := args["name"].(string); track != "" {
				names[track] = true
			} else {
				t.Errorf("metadata record %d without args.name: %v", i, rec)
			}
		}
	}
	if openSpans != 0 {
		t.Errorf("unbalanced B/E spans: %d left open", openSpans)
	}
	if phases["B"] != 2 || phases["E"] != 2 {
		t.Errorf("span records B=%d E=%d, want 2 each", phases["B"], phases["E"])
	}
	if phases["M"] == 0 {
		t.Error("no track metadata records")
	}
	if phases["C"] != 5 {
		t.Errorf("counter records = %d, want 5 per sample", phases["C"])
	}
	for _, want := range []string{"scheduler", "Node0", "Node1", "GPP0", "RPE0",
		"seu", "reconfig", "node-down", "lease-expired", "energy-joules"} {
		if !names[want] {
			t.Errorf("expected record name %q missing", want)
		}
	}
	// Dispatch at t=0.5 must surface as 500000 µs.
	found := false
	for _, rec := range doc.TraceEvents {
		if rec["name"] == "t1" && rec["ph"] == "B" {
			found = true
			if ts := rec["ts"].(float64); ts != 500000 {
				t.Errorf("dispatch ts = %v µs, want 500000", ts)
			}
		}
	}
	if !found {
		t.Error("dispatch span for t1 missing")
	}
}

// TestChromeDeterministicBytes: the same event sequence must produce
// byte-identical documents — the property the worker-independence
// differential test in internal/grid builds on.
func TestChromeDeterministicBytes(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		c := NewChrome(&buf)
		for _, ev := range chromeFixtureEvents() {
			c.Emit(ev)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := render()
	for i := 0; i < 10; i++ {
		if got := render(); got != first {
			t.Fatalf("render %d differs", i)
		}
	}
}

// TestChromeEmptyDocument: a sink closed without traffic still yields a
// valid, loadable document.
func TestChromeEmptyDocument(t *testing.T) {
	var buf bytes.Buffer
	c := NewChrome(&buf)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty document invalid: %v\n%q", err, buf.String())
	}
	if len(doc.TraceEvents) != 0 {
		t.Errorf("empty sink produced %d records", len(doc.TraceEvents))
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Errorf("document missing traceEvents key: %q", buf.String())
	}
}
