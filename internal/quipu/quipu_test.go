package quipu

import (
	"math"
	"strings"
	"testing"
)

func TestPaperAnchorPredictions(t *testing.T) {
	// Section V: "we estimated that pairalign requires 30,790 slices,
	// whereas malign requires 18707 slices on Virtex 5 devices."
	m := Default()
	pa, err := m.Predict(PairalignMetrics())
	if err != nil {
		t.Fatal(err)
	}
	ma, err := m.Predict(MalignMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if abs(pa.Slices-30790) > 30 {
		t.Errorf("pairalign slices = %d, want ≈30,790", pa.Slices)
	}
	if abs(ma.Slices-18707) > 30 {
		t.Errorf("malign slices = %d, want ≈18,707", ma.Slices)
	}
	if pa.LUTs <= pa.Slices {
		t.Error("LUTs should exceed slices")
	}
	if pa.BRAMKb <= 0 || pa.DSPSlices <= 0 || pa.MemoryUnits <= 0 {
		t.Errorf("secondary resources missing: %+v", pa)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestMetricsValidate(t *testing.T) {
	good := PairalignMetrics()
	if err := good.Validate(); err != nil {
		t.Errorf("anchor metrics invalid: %v", err)
	}
	bad := []Metrics{
		{},
		{Name: "k"},
		{Name: "k", LinesOfCode: 10},
		{Name: "k", LinesOfCode: 10, UniqueOperators: 5, UniqueOperands: 5, TotalOperators: 2, TotalOperands: 9, Cyclomatic: 1},
		{Name: "k", LinesOfCode: 10, UniqueOperators: 5, UniqueOperands: 5, TotalOperators: 9, TotalOperands: 9, Cyclomatic: 0},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("bad metrics %d accepted", i)
		}
	}
}

func TestHalsteadVolume(t *testing.T) {
	m := Metrics{
		Name: "k", LinesOfCode: 10,
		UniqueOperators: 2, UniqueOperands: 2, TotalOperators: 8, TotalOperands: 8,
		Cyclomatic: 1,
	}
	// N=16, n=4 → V = 16·log2(4) = 32.
	if v := m.HalsteadVolume(); math.Abs(v-32) > 1e-12 {
		t.Errorf("V = %v, want 32", v)
	}
	if d := m.HalsteadDifficulty(); math.Abs(d-4) > 1e-12 {
		// D = (2/2)·(8/2) = 4.
		t.Errorf("D = %v, want 4", d)
	}
	degenerate := Metrics{UniqueOperators: 1, UniqueOperands: 0}
	if degenerate.HalsteadDifficulty() != 0 {
		t.Error("zero operands should give zero difficulty")
	}
}

func TestPredictRejectsInvalid(t *testing.T) {
	m := Default()
	if _, err := m.Predict(Metrics{}); err == nil {
		t.Error("invalid metrics accepted")
	}
	badModel := &Model{SliceCoef: []float64{1}}
	if _, err := badModel.Predict(PairalignMetrics()); err == nil {
		t.Error("short coefficient vector accepted")
	}
}

func TestPredictClampsNegative(t *testing.T) {
	m := &Model{SliceCoef: []float64{-1e9, 0, 0, 0, 0, 0}, LUTsPerSlice: 3}
	p, err := m.Predict(PairalignMetrics())
	if err != nil {
		t.Fatal(err)
	}
	if p.Slices != 0 || p.LUTs != 0 {
		t.Errorf("negative prediction not clamped: %+v", p)
	}
}

func TestLargerKernelPredictsMoreArea(t *testing.T) {
	m := Default()
	pa, _ := m.Predict(PairalignMetrics())
	ma, _ := m.Predict(MalignMetrics())
	if pa.Slices <= ma.Slices {
		t.Error("pairalign should predict more slices than malign")
	}
}

func TestPredictionString(t *testing.T) {
	p := Prediction{Slices: 10, LUTs: 36, BRAMKb: 4, DSPSlices: 2, MemoryUnits: 1}
	if !strings.Contains(p.String(), "10 slices") {
		t.Errorf("String = %q", p.String())
	}
}
