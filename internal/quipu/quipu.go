// Package quipu implements a quantitative prediction model for
// hardware/software partitioning in the style of Quipu (Meeuws et al.,
// FPL 2007), which the paper's case study uses to estimate that the ClustalW
// kernels pairalign and malign require 30,790 and 18,707 Virtex-5 slices.
//
// Quipu is "a linear model based on software complexity metrics (SCMs)"
// that "can estimate the number of slices, memory units, and look-up tables
// within reasonable bounds in an early design stage". This package provides
// exactly that: SCM feature extraction (Halstead and McCabe metrics), a
// linear predictor, and least-squares calibration.
package quipu

import (
	"fmt"
	"math"
)

// Metrics are the software complexity metrics of one kernel — the model
// inputs. They can be measured by any static analyzer; the bio package
// carries hand-measured metrics for the ClustalW kernels.
type Metrics struct {
	Name string
	// LinesOfCode of the kernel body.
	LinesOfCode int
	// Halstead base counts.
	UniqueOperators int // n1
	UniqueOperands  int // n2
	TotalOperators  int // N1
	TotalOperands   int // N2
	// Cyclomatic is McCabe's cyclomatic complexity.
	Cyclomatic int
	// Branches counts conditional constructs, which synthesize to control
	// muxes.
	Branches int
	// ArrayAccesses counts indexed memory operations, which map to BRAM
	// ports and address generators.
	ArrayAccesses int
	// FloatOps counts floating-point operations, which map to DSP slices.
	FloatOps int
	// LoopNestDepth is the deepest loop nesting level.
	LoopNestDepth int
}

// Validate reports impossible metric combinations.
func (m Metrics) Validate() error {
	switch {
	case m.Name == "":
		return fmt.Errorf("quipu: metrics without a kernel name")
	case m.LinesOfCode <= 0:
		return fmt.Errorf("quipu: %s has non-positive LoC", m.Name)
	case m.UniqueOperators <= 0 || m.UniqueOperands <= 0:
		return fmt.Errorf("quipu: %s has no Halstead vocabulary", m.Name)
	case m.TotalOperators < m.UniqueOperators || m.TotalOperands < m.UniqueOperands:
		return fmt.Errorf("quipu: %s has totals below unique counts", m.Name)
	case m.Cyclomatic < 1:
		return fmt.Errorf("quipu: %s has cyclomatic complexity below 1", m.Name)
	}
	return nil
}

// HalsteadVolume returns V = N·log2(n): program length times the log of the
// vocabulary, Halstead's information-content measure.
func (m Metrics) HalsteadVolume() float64 {
	n := float64(m.UniqueOperators + m.UniqueOperands)
	N := float64(m.TotalOperators + m.TotalOperands)
	if n <= 1 {
		return 0
	}
	return N * math.Log2(n)
}

// HalsteadDifficulty returns D = (n1/2)·(N2/n2), the error-proneness proxy.
func (m Metrics) HalsteadDifficulty() float64 {
	if m.UniqueOperands == 0 {
		return 0
	}
	return float64(m.UniqueOperators) / 2 * float64(m.TotalOperands) / float64(m.UniqueOperands)
}

// features maps metrics to the model's feature vector. The first entry is
// the intercept.
func features(m Metrics) []float64 {
	return []float64{
		1,
		m.HalsteadVolume(),
		float64(m.Branches),
		float64(m.ArrayAccesses),
		float64(m.FloatOps),
		float64(m.Cyclomatic),
	}
}

// FeatureCount is the length of the model's feature vector.
const FeatureCount = 6

// Prediction is a resource estimate for a hardware implementation of a
// kernel on a Virtex-class device — the outputs the paper quotes.
type Prediction struct {
	Slices      int
	LUTs        int
	BRAMKb      int
	DSPSlices   int
	MemoryUnits int
}

// String renders the estimate.
func (p Prediction) String() string {
	return fmt.Sprintf("%d slices, %d LUTs, %d Kb BRAM, %d DSP, %d memory units",
		p.Slices, p.LUTs, p.BRAMKb, p.DSPSlices, p.MemoryUnits)
}

// Model is a linear predictor from SCM features to slice count, with
// secondary resources derived from dedicated features.
type Model struct {
	// SliceCoef are the slice-count regression coefficients over features().
	SliceCoef []float64
	// LUTsPerSlice converts slices to LUTs (4 LUTs per Virtex-5 slice,
	// discounted for unusable LUTs).
	LUTsPerSlice float64
	// BRAMKbPerArrayAccess and DSPPerFloatOp size memory and DSP demand.
	BRAMKbPerArrayAccess float64
	DSPPerFloatOp        float64
	// MemUnitsPerArrayAccess sizes Quipu's "memory units" output.
	MemUnitsPerArrayAccess float64
}

// Default returns the calibrated model. The slice coefficients reproduce
// the paper's Quipu estimates for the ClustalW kernels: pairalign →
// 30,790 slices and malign → 18,707 slices on Virtex-5 (Section V), using
// the hand-measured metrics in PairalignMetrics/MalignMetrics.
func Default() *Model {
	return &Model{
		// Solved exactly from the two ClustalW anchor kernels with a fixed
		// 500-slice intercept: slices = 500 + a·V + b·branches.
		SliceCoef:              []float64{500, 1.3040418, 178.60596, 0, 0, 0},
		LUTsPerSlice:           3.6,
		BRAMKbPerArrayAccess:   4,
		DSPPerFloatOp:          0.5,
		MemUnitsPerArrayAccess: 0.1,
	}
}

// Predict estimates the hardware resources for a kernel.
func (mo *Model) Predict(m Metrics) (Prediction, error) {
	if err := m.Validate(); err != nil {
		return Prediction{}, err
	}
	if len(mo.SliceCoef) != FeatureCount {
		return Prediction{}, fmt.Errorf("quipu: model has %d coefficients, want %d", len(mo.SliceCoef), FeatureCount)
	}
	f := features(m)
	var slices float64
	for i, c := range mo.SliceCoef {
		slices += c * f[i]
	}
	if slices < 0 {
		slices = 0
	}
	return Prediction{
		Slices:      int(math.Round(slices)),
		LUTs:        int(math.Round(slices * mo.LUTsPerSlice)),
		BRAMKb:      int(math.Round(float64(m.ArrayAccesses) * mo.BRAMKbPerArrayAccess)),
		DSPSlices:   int(math.Round(float64(m.FloatOps) * mo.DSPPerFloatOp)),
		MemoryUnits: int(math.Ceil(float64(m.ArrayAccesses) * mo.MemUnitsPerArrayAccess)),
	}, nil
}

// PairalignMetrics are the hand-measured SCM metrics of the ClustalW
// pairalign kernel (full pairwise dynamic programming over the sequence
// set), the case study's dominant kernel.
func PairalignMetrics() Metrics {
	return Metrics{
		Name:            "pairalign",
		LinesOfCode:     220,
		UniqueOperators: 28,
		UniqueOperands:  85,
		TotalOperators:  900,
		TotalOperands:   1100,
		Cyclomatic:      45,
		Branches:        70,
		ArrayAccesses:   160,
		FloatOps:        30,
		LoopNestDepth:   3,
	}
}

// MalignMetrics are the hand-measured SCM metrics of the ClustalW malign
// kernel (progressive profile alignment along the guide tree).
func MalignMetrics() Metrics {
	return Metrics{
		Name:            "malign",
		LinesOfCode:     150,
		UniqueOperators: 24,
		UniqueOperands:  60,
		TotalOperators:  560,
		TotalOperands:   660,
		Cyclomatic:      28,
		Branches:        45,
		ArrayAccesses:   95,
		FloatOps:        18,
		LoopNestDepth:   3,
	}
}
