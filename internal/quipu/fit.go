package quipu

import (
	"fmt"
	"math"
)

// Sample pairs kernel metrics with the slice count a real synthesis run
// produced, for model calibration.
type Sample struct {
	Metrics Metrics
	Slices  float64
}

// Fit calibrates slice-count coefficients by ordinary least squares over
// the samples (normal equations with Gaussian elimination and partial
// pivoting). It needs at least FeatureCount samples; with fewer, or with a
// singular design matrix, it returns an error.
func Fit(samples []Sample) ([]float64, error) {
	if len(samples) < FeatureCount {
		return nil, fmt.Errorf("quipu: need ≥%d samples to fit, got %d", FeatureCount, len(samples))
	}
	// Build XᵀX and Xᵀy.
	var xtx [FeatureCount][FeatureCount]float64
	var xty [FeatureCount]float64
	for _, s := range samples {
		if err := s.Metrics.Validate(); err != nil {
			return nil, err
		}
		f := features(s.Metrics)
		for i := 0; i < FeatureCount; i++ {
			for j := 0; j < FeatureCount; j++ {
				xtx[i][j] += f[i] * f[j]
			}
			xty[i] += f[i] * s.Slices
		}
	}
	// Gaussian elimination with partial pivoting. Singularity is judged
	// against the matrix's own scale so rank deficiency is detected even
	// when entries are large.
	scale := 0.0
	for i := 0; i < FeatureCount; i++ {
		for j := 0; j < FeatureCount; j++ {
			if v := math.Abs(xtx[i][j]); v > scale {
				scale = v
			}
		}
	}
	var a [FeatureCount][FeatureCount + 1]float64
	for i := 0; i < FeatureCount; i++ {
		copy(a[i][:FeatureCount], xtx[i][:])
		a[i][FeatureCount] = xty[i]
	}
	for col := 0; col < FeatureCount; col++ {
		pivot := col
		for r := col + 1; r < FeatureCount; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-10*scale {
			return nil, fmt.Errorf("quipu: singular design matrix at feature %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		for r := 0; r < FeatureCount; r++ {
			if r == col {
				continue
			}
			factor := a[r][col] / a[col][col]
			for c := col; c <= FeatureCount; c++ {
				a[r][c] -= factor * a[col][c]
			}
		}
	}
	coef := make([]float64, FeatureCount)
	for i := 0; i < FeatureCount; i++ {
		coef[i] = a[i][FeatureCount] / a[i][i]
	}
	return coef, nil
}

// RMSE returns the root-mean-square slice error of coefficients over
// samples, the calibration quality measure.
func RMSE(coef []float64, samples []Sample) (float64, error) {
	if len(coef) != FeatureCount {
		return 0, fmt.Errorf("quipu: %d coefficients, want %d", len(coef), FeatureCount)
	}
	if len(samples) == 0 {
		return 0, fmt.Errorf("quipu: no samples")
	}
	var se float64
	for _, s := range samples {
		f := features(s.Metrics)
		var pred float64
		for i, c := range coef {
			pred += c * f[i]
		}
		se += (pred - s.Slices) * (pred - s.Slices)
	}
	return math.Sqrt(se / float64(len(samples))), nil
}
