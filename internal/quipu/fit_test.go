package quipu

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// syntheticMetrics builds a valid random metrics struct.
func syntheticMetrics(r *sim.RNG, i int) Metrics {
	n1 := 5 + r.Intn(40)
	n2 := 10 + r.Intn(100)
	return Metrics{
		Name:            "kern",
		LinesOfCode:     20 + r.Intn(400),
		UniqueOperators: n1,
		UniqueOperands:  n2,
		TotalOperators:  n1 + r.Intn(1000),
		TotalOperands:   n2 + r.Intn(1200),
		Cyclomatic:      1 + r.Intn(60),
		Branches:        r.Intn(100),
		ArrayAccesses:   r.Intn(200),
		FloatOps:        r.Intn(50),
		LoopNestDepth:   1 + r.Intn(4),
	}
}

func TestFitRecoversKnownModel(t *testing.T) {
	truth := []float64{300, 1.5, 120, 8, 20, 5}
	r := sim.NewRNG(12345)
	var samples []Sample
	for i := 0; i < 60; i++ {
		m := syntheticMetrics(r, i)
		f := features(m)
		var y float64
		for j, c := range truth {
			y += c * f[j]
		}
		samples = append(samples, Sample{Metrics: m, Slices: y})
	}
	coef, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range coef {
		if math.Abs(c-truth[i]) > 1e-3*(math.Abs(truth[i])+1) {
			t.Errorf("coef[%d] = %v, want %v", i, c, truth[i])
		}
	}
	rmse, err := RMSE(coef, samples)
	if err != nil {
		t.Fatal(err)
	}
	if rmse > 1 {
		t.Errorf("RMSE = %v on noiseless data", rmse)
	}
}

func TestFitWithNoiseStaysClose(t *testing.T) {
	truth := []float64{500, 1.3, 170, 0, 0, 0}
	r := sim.NewRNG(777)
	var samples []Sample
	for i := 0; i < 200; i++ {
		m := syntheticMetrics(r, i)
		f := features(m)
		var y float64
		for j, c := range truth {
			y += c * f[j]
		}
		y += r.NormFloat64() * 50 // synthesis noise
		samples = append(samples, Sample{Metrics: m, Slices: y})
	}
	coef, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	// Volume coefficient is the load-bearing one; it must survive noise.
	if math.Abs(coef[1]-1.3) > 0.1 {
		t.Errorf("volume coefficient = %v, want ≈1.3", coef[1])
	}
	rmse, _ := RMSE(coef, samples)
	if rmse > 100 {
		t.Errorf("RMSE = %v with σ=50 noise", rmse)
	}
}

func TestFitNeedsEnoughSamples(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Error("empty fit accepted")
	}
	r := sim.NewRNG(1)
	var few []Sample
	for i := 0; i < FeatureCount-1; i++ {
		few = append(few, Sample{Metrics: syntheticMetrics(r, i), Slices: 100})
	}
	if _, err := Fit(few); err == nil {
		t.Error("underdetermined fit accepted")
	}
}

func TestFitRejectsInvalidMetrics(t *testing.T) {
	r := sim.NewRNG(2)
	samples := make([]Sample, FeatureCount)
	for i := range samples {
		samples[i] = Sample{Metrics: syntheticMetrics(r, i), Slices: 1}
	}
	samples[0].Metrics = Metrics{} // invalid
	if _, err := Fit(samples); err == nil {
		t.Error("invalid sample accepted")
	}
}

func TestFitSingularMatrix(t *testing.T) {
	// Identical samples make the design matrix rank-1.
	m := PairalignMetrics()
	samples := make([]Sample, FeatureCount+2)
	for i := range samples {
		samples[i] = Sample{Metrics: m, Slices: 100}
	}
	if _, err := Fit(samples); err == nil {
		t.Error("singular fit should error")
	}
}

func TestRMSEValidation(t *testing.T) {
	if _, err := RMSE([]float64{1}, []Sample{{Metrics: PairalignMetrics(), Slices: 1}}); err == nil {
		t.Error("short coefficients accepted")
	}
	coef := make([]float64, FeatureCount)
	if _, err := RMSE(coef, nil); err == nil {
		t.Error("empty samples accepted")
	}
}
