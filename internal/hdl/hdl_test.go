package hdl

import (
	"strings"
	"testing"

	"repro/internal/capability"
	"repro/internal/fabric"
	"repro/internal/pe"
	"repro/internal/quipu"
)

func TestLibraryDesignsValid(t *testing.T) {
	lib := Library()
	if len(lib) < 6 {
		t.Fatalf("library has %d designs", len(lib))
	}
	for _, d := range lib {
		if err := d.Validate(); err != nil {
			t.Errorf("library design %s invalid: %v", d.Name, err)
		}
		if d.String() == "" {
			t.Error("empty String")
		}
	}
	for i := 1; i < len(lib); i++ {
		if lib[i-1].Name >= lib[i].Name {
			t.Error("library not sorted")
		}
	}
}

func TestLookupIP(t *testing.T) {
	d, err := LookupIP("Pairalign-Core")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "pairalign-core" {
		t.Errorf("lookup = %s", d.Name)
	}
	if _, err := LookupIP("warp-drive"); err == nil {
		t.Error("unknown IP accepted")
	}
}

func TestDesignValidate(t *testing.T) {
	var nilD *Design
	if err := nilD.Validate(); err == nil {
		t.Error("nil design accepted")
	}
	bad := []*Design{
		{},
		{Name: "x"},
		{Name: "x", Language: "SystemC", AccelFactor: 1, ReferenceClockMHz: 1},
		{Name: "x", Language: VHDL, ReferenceClockMHz: 1},
		{Name: "x", Language: VHDL, AccelFactor: 1},
		{Name: "x", Language: VHDL, AccelFactor: 1, ReferenceClockMHz: 1}, // bad metrics
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad design %d accepted", i)
		}
	}
}

func TestNewToolchainValidation(t *testing.T) {
	if _, err := NewToolchain("", "Virtex-5"); err == nil {
		t.Error("empty vendor accepted")
	}
	if _, err := NewToolchain("ise"); err == nil {
		t.Error("no families accepted")
	}
	tc, err := NewToolchain("ise", "Virtex-5", "Virtex-6")
	if err != nil {
		t.Fatal(err)
	}
	if !tc.Supports("virtex-5") || tc.Supports("Stratix") {
		t.Error("Supports broken")
	}
}

func TestSynthesizePairalignMatchesPaperArea(t *testing.T) {
	tc, _ := NewToolchain("ise", "Virtex-5")
	d, _ := LookupIP("pairalign-core")
	dev, _ := fabric.LookupDevice("XC5VLX220T")
	res, err := tc.Synthesize(d, dev, true)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Quipu estimate: 30,790 slices.
	if res.Area.Slices < 30700 || res.Area.Slices > 30900 {
		t.Errorf("pairalign area = %d, want ≈30,790", res.Area.Slices)
	}
	if res.Bitstream == nil || !res.Bitstream.Partial {
		t.Error("expected a partial bitstream")
	}
	if res.Bitstream.Device != "XC5VLX220T" {
		t.Errorf("bitstream device = %s", res.Bitstream.Device)
	}
	if res.ToolSeconds < 60 {
		t.Errorf("tool runtime = %vs, implausibly fast for a 30k-slice design", res.ToolSeconds)
	}
	if res.ClockMHz <= 0 {
		t.Error("no achieved clock")
	}
}

func TestSynthesizeRejectsUnsupportedFamily(t *testing.T) {
	tc, _ := NewToolchain("ise", "Virtex-5")
	d, _ := LookupIP("fir64")
	dev, _ := fabric.LookupDevice("XC6VLX365T")
	if _, err := tc.Synthesize(d, dev, true); err == nil {
		t.Error("unsupported family accepted")
	}
}

func TestSynthesizeRejectsOversizedDesign(t *testing.T) {
	tc, _ := NewToolchain("ise", "Virtex-5")
	d, _ := LookupIP("pairalign-core") // 30,790 slices
	small, _ := fabric.LookupDevice("XC5VLX110T")
	if _, err := tc.Synthesize(d, small, true); err == nil {
		t.Error("30k-slice design accepted on 17k-slice device")
	}
}

func TestSynthesizeRejectsStreaming(t *testing.T) {
	tc, _ := NewToolchain("ise", "Virtex-5")
	d := *mustIP(t, "fir64")
	d.Streaming = true
	dev, _ := fabric.LookupDevice("XC5VLX110T")
	if _, err := tc.Synthesize(&d, dev, true); err == nil {
		t.Error("streaming design accepted (paper defers streaming to future work)")
	}
}

func mustIP(t *testing.T, name string) *Design {
	t.Helper()
	d, err := LookupIP(name)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFullVsPartialBitstreamSizes(t *testing.T) {
	tc, _ := NewToolchain("ise", "Virtex-5")
	d := mustIP(t, "fir64")
	dev, _ := fabric.LookupDevice("XC5VLX330T")
	full, err := tc.Synthesize(d, dev, false)
	if err != nil {
		t.Fatal(err)
	}
	part, err := tc.Synthesize(d, dev, true)
	if err != nil {
		t.Fatal(err)
	}
	if full.Bitstream.SizeBytes <= part.Bitstream.SizeBytes {
		t.Error("full bitstream should be larger than a partial region image")
	}
	if full.Bitstream.ID == part.Bitstream.ID {
		t.Error("full and partial bitstreams must have distinct IDs")
	}
}

func TestBitstreamIDDeterministic(t *testing.T) {
	a := BitstreamID("FIR64", "xc5vlx110t", true)
	b := BitstreamID("fir64", "XC5VLX110T", true)
	if a != b {
		t.Errorf("IDs differ: %s vs %s", a, b)
	}
	if !strings.Contains(a, "#part") {
		t.Errorf("ID = %s", a)
	}
}

func TestAcceleratorEstimate(t *testing.T) {
	d := mustIP(t, "aes128")
	acc := &Accelerator{Design: d, ClockMHz: d.ReferenceClockMHz}
	if acc.Kind() != capability.KindFPGA {
		t.Error("kind")
	}
	w := pe.Work{MInstructions: 10000, ParallelFraction: 1}
	hw, err := acc.EstimateSeconds(w)
	if err != nil {
		t.Fatal(err)
	}
	// At the reference clock a fully parallel task should run AccelFactor
	// times faster than the reference grid CPU.
	ref := w.MInstructions / pe.ReferenceMIPS
	if ratio := ref / hw; ratio < d.AccelFactor*0.99 || ratio > d.AccelFactor*1.01 {
		t.Errorf("speedup = %v, want ≈%v", ratio, d.AccelFactor)
	}
	if _, err := acc.EstimateSeconds(pe.Work{}); err == nil {
		t.Error("invalid work accepted")
	}
	empty := &Accelerator{}
	if _, err := empty.EstimateSeconds(w); err == nil {
		t.Error("unsynthesized accelerator accepted")
	}
}

func TestSerialFractionLimitsAccelerator(t *testing.T) {
	d := mustIP(t, "aes128")
	acc := &Accelerator{Design: d, ClockMHz: d.ReferenceClockMHz}
	half, _ := acc.EstimateSeconds(pe.Work{MInstructions: 10000, ParallelFraction: 0.5})
	full, _ := acc.EstimateSeconds(pe.Work{MInstructions: 10000, ParallelFraction: 1})
	if half <= full {
		t.Error("serial fraction should slow the accelerator")
	}
}

func TestEstimateArea(t *testing.T) {
	tc, _ := NewToolchain("ise", "Virtex-5")
	d := mustIP(t, "malign-core")
	area, err := tc.EstimateArea(d)
	if err != nil {
		t.Fatal(err)
	}
	if area.Slices < 18600 || area.Slices > 18800 {
		t.Errorf("malign area = %d, want ≈18,707", area.Slices)
	}
	if _, err := tc.EstimateArea(&Design{}); err == nil {
		t.Error("invalid design accepted")
	}
	_ = quipu.FeatureCount
}
