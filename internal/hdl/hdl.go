// Package hdl models the hardware-design side of the user-defined and
// device-specific scenarios: IP-core designs described in generic HDLs
// (the paper's OpenCores reuse case), a synthesis toolchain that turns a
// design into a device-specific bitstream (the CAD tools the service
// provider must possess in Section III-B2), and hardware-accelerator
// execution-time estimation.
//
// Real vendor CAD tools are not available in this environment; the
// toolchain here is a deterministic cost model: area comes from the Quipu
// predictor, bitstream size from the fabric device model, and tool runtime
// from design size. The framework only depends on these outputs.
package hdl

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/capability"
	"repro/internal/pe"
	"repro/internal/quipu"
)

// Language is an HDL source language.
type Language string

// Supported source languages (the paper names both).
const (
	VHDL    Language = "VHDL"
	Verilog Language = "Verilog"
)

// Design is a hardware design in a generic HDL: what the application
// developer hands to the grid in the user-defined-hardware scenario.
type Design struct {
	// Name identifies the design (e.g. "pairalign-core").
	Name string
	// Language is the source HDL.
	Language Language
	// Metrics characterize the kernel the design implements; the Quipu
	// model predicts area from them.
	Metrics quipu.Metrics
	// AccelFactor is the design's speedup over the reference grid CPU
	// (pe.ReferenceMIPS).
	AccelFactor float64
	// ReferenceClockMHz is the clock the AccelFactor was characterized at;
	// achieved speed scales with the synthesized clock.
	ReferenceClockMHz float64
	// Streaming marks designs that process unbounded streams; the current
	// framework rejects them (the paper defers streaming support to future
	// work).
	Streaming bool
}

// Validate reports structural problems.
func (d *Design) Validate() error {
	switch {
	case d == nil:
		return fmt.Errorf("hdl: nil design")
	case d.Name == "":
		return fmt.Errorf("hdl: design without a name")
	case d.Language != VHDL && d.Language != Verilog:
		return fmt.Errorf("hdl: design %s has unsupported language %q", d.Name, d.Language)
	case d.AccelFactor <= 0:
		return fmt.Errorf("hdl: design %s has non-positive acceleration factor", d.Name)
	case d.ReferenceClockMHz <= 0:
		return fmt.Errorf("hdl: design %s has non-positive reference clock", d.Name)
	}
	return d.Metrics.Validate()
}

// String summarizes the design.
func (d *Design) String() string {
	return fmt.Sprintf("design %s (%s, %dx speedup @%g MHz ref)", d.Name, d.Language, int(d.AccelFactor), d.ReferenceClockMHz)
}

// Accelerator is a synthesized hardware implementation of a design running
// at a concrete clock: the execution-time model for RPE-hosted tasks.
type Accelerator struct {
	Design   *Design
	ClockMHz float64
}

// Kind implements pe.Estimator. Accelerators live on FPGAs.
func (a *Accelerator) Kind() capability.Kind { return capability.KindFPGA }

// EstimateSeconds implements pe.Estimator: hardware exploits spatial
// parallelism fully, so the parallel fraction rides the accelerator while
// the serial remainder runs at reference-CPU speed on the host
// (control code).
func (a *Accelerator) EstimateSeconds(w pe.Work) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if a.Design == nil || a.ClockMHz <= 0 {
		return 0, fmt.Errorf("hdl: accelerator not synthesized")
	}
	clockScale := a.ClockMHz / a.Design.ReferenceClockMHz
	accelRate := pe.ReferenceMIPS * a.Design.AccelFactor * clockScale
	serial := w.MInstructions * (1 - w.ParallelFraction) / pe.ReferenceMIPS
	parallel := w.MInstructions * w.ParallelFraction / accelRate
	return serial + parallel, nil
}

// library is the built-in OpenCores-style IP catalog, including the two
// ClustalW kernels of the case study.
var library = func() map[string]*Design {
	designs := []*Design{
		{
			Name: "pairalign-core", Language: VHDL,
			Metrics:     quipu.PairalignMetrics(),
			AccelFactor: 60, ReferenceClockMHz: 100,
		},
		{
			Name: "malign-core", Language: VHDL,
			Metrics:     quipu.MalignMetrics(),
			AccelFactor: 40, ReferenceClockMHz: 100,
		},
		{
			Name: "fft1024", Language: Verilog,
			Metrics: quipu.Metrics{
				Name: "fft1024", LinesOfCode: 90, UniqueOperators: 18, UniqueOperands: 40,
				TotalOperators: 300, TotalOperands: 380, Cyclomatic: 12, Branches: 15,
				ArrayAccesses: 70, FloatOps: 48, LoopNestDepth: 2,
			},
			AccelFactor: 80, ReferenceClockMHz: 150,
		},
		{
			Name: "aes128", Language: Verilog,
			Metrics: quipu.Metrics{
				Name: "aes128", LinesOfCode: 120, UniqueOperators: 15, UniqueOperands: 45,
				TotalOperators: 420, TotalOperands: 500, Cyclomatic: 10, Branches: 12,
				ArrayAccesses: 64, FloatOps: 0, LoopNestDepth: 2,
			},
			AccelFactor: 120, ReferenceClockMHz: 200,
		},
		{
			Name: "fir64", Language: VHDL,
			Metrics: quipu.Metrics{
				Name: "fir64", LinesOfCode: 60, UniqueOperators: 10, UniqueOperands: 22,
				TotalOperators: 150, TotalOperands: 190, Cyclomatic: 5, Branches: 4,
				ArrayAccesses: 40, FloatOps: 64, LoopNestDepth: 1,
			},
			AccelFactor: 50, ReferenceClockMHz: 250,
		},
		{
			Name: "matmul32", Language: VHDL,
			Metrics: quipu.Metrics{
				Name: "matmul32", LinesOfCode: 45, UniqueOperators: 9, UniqueOperands: 18,
				TotalOperators: 120, TotalOperands: 160, Cyclomatic: 4, Branches: 3,
				ArrayAccesses: 96, FloatOps: 32, LoopNestDepth: 3,
			},
			AccelFactor: 45, ReferenceClockMHz: 200,
		},
	}
	m := make(map[string]*Design, len(designs))
	for _, d := range designs {
		m[strings.ToLower(d.Name)] = d
	}
	return m
}()

// LookupIP returns a library design by name (case-insensitive).
func LookupIP(name string) (*Design, error) {
	d, ok := library[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("hdl: unknown IP core %q", name)
	}
	return d, nil
}

// Library returns every built-in design sorted by name.
func Library() []*Design {
	out := make([]*Design, 0, len(library))
	for _, d := range library {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
