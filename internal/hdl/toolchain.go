package hdl

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/fabric"
	"repro/internal/quipu"
)

// Toolchain is the synthesis CAD tool a service provider possesses in the
// user-defined-hardware scenario. It maps generic HDL designs to
// device-specific bitstreams for the families it supports.
type Toolchain struct {
	Vendor   string
	families map[string]bool
	model    *quipu.Model
}

// NewToolchain creates a toolchain for the given device families using the
// default Quipu area model.
func NewToolchain(vendor string, families ...string) (*Toolchain, error) {
	if vendor == "" {
		return nil, fmt.Errorf("hdl: toolchain needs a vendor name")
	}
	if len(families) == 0 {
		return nil, fmt.Errorf("hdl: toolchain %s supports no device families", vendor)
	}
	fs := make(map[string]bool, len(families))
	for _, f := range families {
		fs[strings.ToLower(f)] = true
	}
	return &Toolchain{Vendor: vendor, families: fs, model: quipu.Default()}, nil
}

// Supports reports whether the toolchain can target a device family.
// Matched case-insensitively without lowering the query: this runs per
// estimate on the dispatch path.
func (tc *Toolchain) Supports(family string) bool {
	if tc.families[family] {
		return true
	}
	for f := range tc.families {
		if strings.EqualFold(f, family) {
			return true
		}
	}
	return false
}

// SynthesisResult is the output of one synthesis run.
type SynthesisResult struct {
	Design string
	Device string
	// Area is the Quipu resource prediction that placement confirmed.
	Area quipu.Prediction
	// Bitstream is the device-specific configuration image.
	Bitstream *fabric.Bitstream
	// ClockMHz is the achieved post-route clock.
	ClockMHz float64
	// ToolSeconds is the CAD runtime consumed (synthesis is minutes, not
	// milliseconds — a real cost in the user-defined scenario).
	ToolSeconds float64

	// accel memoizes the Estimator wrapper handed to the scheduler:
	// candidate probing asks for it once per candidate per dispatch
	// round, always for the design this result was synthesized from.
	// Atomic because cached results are shared through the matchmaker's
	// synthesis cache.
	accel atomic.Pointer[Accelerator]
}

// EstimateArea runs only the area-prediction stage, which the RMS uses to
// pick a device before committing to full synthesis.
func (tc *Toolchain) EstimateArea(d *Design) (quipu.Prediction, error) {
	if err := d.Validate(); err != nil {
		return quipu.Prediction{}, err
	}
	return tc.model.Predict(d.Metrics)
}

// Synthesize compiles a design for a concrete device and emits a bitstream.
// Set partial to produce a region-level (partial reconfiguration)
// bitstream. Synthesis fails when the toolchain does not support the
// family, the design does not fit, or the design is a streaming design
// (unsupported by the framework, per the paper's future work).
func (tc *Toolchain) Synthesize(d *Design, dev fabric.Device, partial bool) (*SynthesisResult, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if d.Streaming {
		return nil, fmt.Errorf("hdl: %s is a streaming design; streaming applications are not supported", d.Name)
	}
	if !tc.Supports(dev.Family) {
		return nil, fmt.Errorf("hdl: toolchain %s does not support family %s", tc.Vendor, dev.Family)
	}
	area, err := tc.model.Predict(d.Metrics)
	if err != nil {
		return nil, err
	}
	if area.Slices > dev.Slices {
		return nil, fmt.Errorf("hdl: %s needs %d slices, %s has %d", d.Name, area.Slices, dev.FPGACaps.Device, dev.Slices)
	}
	if area.BRAMKb > dev.BRAMKb {
		return nil, fmt.Errorf("hdl: %s needs %d Kb BRAM, %s has %d", d.Name, area.BRAMKb, dev.FPGACaps.Device, dev.BRAMKb)
	}
	if area.DSPSlices > dev.DSPSlices {
		return nil, fmt.Errorf("hdl: %s needs %d DSP slices, %s has %d", d.Name, area.DSPSlices, dev.FPGACaps.Device, dev.DSPSlices)
	}
	// Achieved clock: devices faster than the reference improve it, and
	// denser placements lose timing margin.
	utilization := float64(area.Slices) / float64(dev.Slices)
	clock := d.ReferenceClockMHz * (float64(dev.SpeedGradeMHz) / 550) * (1 - 0.3*utilization)

	id := BitstreamID(d.Name, dev.FPGACaps.Device, partial)
	var bs *fabric.Bitstream
	if partial {
		bs = fabric.PartialBitstream(id, d.Name, dev, area.Slices)
	} else {
		bs = fabric.FullBitstream(id, d.Name, dev, area.Slices)
	}
	bs.BRAMKb = area.BRAMKb
	bs.DSPSlices = area.DSPSlices
	bs.ClockMHz = clock

	// Tool runtime model: placement and routing dominate, superlinear in
	// placed area.
	toolSeconds := 30 + 0.05*float64(area.Slices) + 0.0002*float64(area.Slices)*utilization*float64(area.Slices)/1000

	return &SynthesisResult{
		Design:      d.Name,
		Device:      dev.FPGACaps.Device,
		Area:        area,
		Bitstream:   bs,
		ClockMHz:    clock,
		ToolSeconds: toolSeconds,
	}, nil
}

// BitstreamID is the deterministic identifier for a design/device/kind
// combination, letting nodes recognize already-loaded configurations.
func BitstreamID(design, device string, partial bool) string {
	kind := "#full"
	if partial {
		kind = "#part"
	}
	var b strings.Builder
	b.Grow(len(design) + 1 + len(device) + len(kind))
	b.WriteString(strings.ToLower(design))
	b.WriteByte('@')
	b.WriteString(strings.ToUpper(device))
	b.WriteString(kind)
	return b.String()
}

// Accelerate wraps a synthesis result as a pe.Estimator for the scheduler.
// The wrapper is immutable and memoized per design, so the hot candidate
// paths get the same value back instead of a fresh allocation.
func (r *SynthesisResult) Accelerate(d *Design) *Accelerator {
	if a := r.accel.Load(); a != nil && a.Design == d {
		return a
	}
	a := &Accelerator{Design: d, ClockMHz: r.ClockMHz}
	r.accel.Store(a)
	return a
}
