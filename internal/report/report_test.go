package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Demo", "Task", "Mapping")
	tb.AddRow("Task0", "GPP0 <-> Node0")
	tb.AddRow("LongTaskName", 3.14159)
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Errorf("missing title: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title, header, separator, two data rows.
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[3], "Task0") {
		t.Errorf("row = %q", lines[3])
	}
	if !strings.Contains(lines[4], "3.142") {
		t.Errorf("float formatting: %q", lines[4])
	}
	if tb.Rows() != 2 {
		t.Errorf("Rows = %d", tb.Rows())
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "A")
	tb.AddRow("x")
	if strings.Contains(tb.String(), "==") {
		t.Error("untitled table printed a title")
	}
}

func TestBar(t *testing.T) {
	if Bar(50, 100, 10) != "#####" {
		t.Errorf("Bar = %q", Bar(50, 100, 10))
	}
	if Bar(200, 100, 10) != "##########" {
		t.Error("overflow should clamp")
	}
	if Bar(-1, 100, 10) != "" {
		t.Error("negative should be empty")
	}
	if Bar(1, 0, 10) != "" {
		t.Error("zero max should be empty")
	}
}

func TestPaperVsMeasured(t *testing.T) {
	s := PaperVsMeasured("F10", "pairalign %", 89.76, 91.2, "(shape)")
	if !strings.Contains(s, "paper=89.76") || !strings.Contains(s, "measured=91.2") || !strings.Contains(s, "(shape)") {
		t.Errorf("line = %q", s)
	}
	bare := PaperVsMeasured("T2", "rows", 4, 4, "")
	if strings.HasSuffix(bare, " ") {
		t.Error("trailing space")
	}
}
