package report

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchstat"
)

var update = flag.Bool("update", false, "rewrite golden files from the current renderer")

func sampleSoak() *SoakSummary {
	return &SoakSummary{
		Mode: "closed", Tenants: 8, TasksPerTenant: 25,
		Submitted: 200, Accepted: 190, Rejected: 10,
		Completed: 180, Evicted: 6, Canceled: 4,
		Retries: 12, FaultAborts: 15,
		MeanMTTRSeconds: 3.25, Availability: 0.9875,
		ElapsedSeconds: 1.5, ThroughputRPS: 133.3,
		Latency: LatencyMS{P50: 0.8, P90: 1.4, P99: 3.1, Max: 9.7},
	}
}

func sampleBench() *benchstat.Report {
	env := map[string]string{"cpu": "test-cpu", "goarch": "amd64"}
	old := &benchstat.Doc{Env: env, Results: []benchstat.Result{
		{Name: "BenchmarkQueue", Iterations: 100, Metrics: map[string]float64{"ns/op": 1_000_000, "allocs/op": 100}},
	}}
	cur := &benchstat.Doc{Env: env, Results: []benchstat.Result{
		{Name: "BenchmarkQueue", Iterations: 100, Metrics: map[string]float64{"ns/op": 1_000_000, "allocs/op": 150}},
	}}
	return benchstat.Diff(old, cur, benchstat.DefaultOptions())
}

func TestSoakSummaryRoundTripsGridloadJSON(t *testing.T) {
	// The exact shape cmd/gridload emits (fault-free): every key must
	// land in the struct, and re-marshaling must not invent fault keys.
	const wire = `{
  "mode": "open",
  "tenants": 4,
  "tasks_per_tenant": 10,
  "submitted": 40,
  "accepted": 40,
  "rejected": 0,
  "completed": 40,
  "evicted": 0,
  "canceled": 0,
  "in_flight": 0,
  "lost": 0,
  "elapsed_seconds": 0.5,
  "throughput_rps": 80,
  "latency_ms": {"p50": 1, "p90": 2, "p99": 3, "max": 4}
}`
	var s SoakSummary
	if err := json.Unmarshal([]byte(wire), &s); err != nil {
		t.Fatal(err)
	}
	if s.Mode != "open" || s.Completed != 40 || s.Latency.P99 != 3 {
		t.Fatalf("fields lost in decode: %+v", s)
	}
	out, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"retries", "fault_aborts", "mean_mttr_seconds", "availability"} {
		if strings.Contains(string(out), field) {
			t.Errorf("fault-free summary serializes %q: %s", field, out)
		}
	}
}

func TestLoadSoakSummaryErrors(t *testing.T) {
	if _, err := LoadSoakSummary(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file: no error")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSoakSummary(bad); err == nil {
		t.Error("unparseable file: no error")
	}
}

// TestReleaseMarkdownGolden pins the full markdown document (bench +
// soak sections; coverage is exercised against the live repo elsewhere).
func TestReleaseMarkdownGolden(t *testing.T) {
	rel := &Release{Title: "PR test release", Bench: sampleBench(), Soak: sampleSoak()}
	var sb strings.Builder
	if err := rel.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	compareGoldenFile(t, "release.md.golden", sb.String())
}

func TestReleaseHTMLGolden(t *testing.T) {
	rel := &Release{Title: "PR <test> release", Bench: sampleBench(), Soak: sampleSoak()}
	var sb strings.Builder
	if err := rel.WriteHTML(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "PR &lt;test&gt; release") {
		t.Error("title not HTML-escaped")
	}
	compareGoldenFile(t, "release.html.golden", sb.String())
}

func TestReleaseOmitsAbsentSections(t *testing.T) {
	var sb strings.Builder
	if err := (&Release{}).WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if strings.Contains(got, "Benchmark deltas") || strings.Contains(got, "Soak summary") {
		t.Errorf("empty release renders sections:\n%s", got)
	}
	if !strings.Contains(got, "# Release report") {
		t.Errorf("default title missing:\n%s", got)
	}
}

func compareGoldenFile(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("output drifted from %s (regenerate with -update if intended)\ngot:\n%s", path, got)
	}
}
