// Package report renders the experiment harness's tables and series as
// aligned text, so every regenerated paper artifact prints uniformly.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells render with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(widths))
		for i := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			parts[i] = pad(cell, widths[i])
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(t.headers); err != nil {
		return err
	}
	seps := make([]string, len(widths))
	for i, wd := range widths {
		seps[i] = strings.Repeat("-", wd)
	}
	if err := line(seps); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Write(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Bar renders a horizontal ASCII bar chart line, used for the Fig. 10
// profile rendering (value as a share of max, width columns).
func Bar(value, max float64, width int) string {
	if max <= 0 || width <= 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	if n < 0 {
		n = 0
	}
	return strings.Repeat("#", n)
}

// PaperVsMeasured formats one EXPERIMENTS.md comparison line.
func PaperVsMeasured(artifact, metric string, paper, measured any, note string) string {
	s := fmt.Sprintf("%-8s %-28s paper=%-12v measured=%-12v", artifact, metric, paper, measured)
	if note != "" {
		s += " " + note
	}
	return strings.TrimRight(s, " ")
}
