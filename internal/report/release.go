package report

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"os"
	"strings"

	"repro/internal/benchstat"
	"repro/internal/covmatrix"
)

// LatencyMS is the request-latency percentile block of a soak summary,
// in milliseconds. The json tags mirror cmd/gridload's output exactly.
type LatencyMS struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// SoakSummary is the JSON document cmd/gridload emits after a soak: the
// aggregate workload counters, throughput, latency percentiles, and the
// fault/repair aggregates the release report turns into MTTR and
// availability. cmd/gridload produces this type directly, so the wire
// format and the report input cannot drift apart.
type SoakSummary struct {
	Mode           string `json:"mode"`
	Tenants        int    `json:"tenants"`
	TasksPerTenant int    `json:"tasks_per_tenant"`
	Submitted      int    `json:"submitted"`
	Accepted       int    `json:"accepted"`
	Rejected       int    `json:"rejected"`
	Completed      int    `json:"completed"`
	Evicted        int    `json:"evicted"`
	Canceled       int    `json:"canceled"`
	InFlight       int    `json:"in_flight"`
	Lost           int    `json:"lost"`
	// Retries/FaultAborts aggregate the per-tenant repair counters; all
	// fault fields are omitempty so fault-free soaks serialize exactly
	// as they did before fault accounting existed.
	Retries     int `json:"retries,omitempty"`
	FaultAborts int `json:"fault_aborts,omitempty"`
	// MeanMTTRSeconds is total repair time over repaired tasks (virtual
	// seconds); Availability is 1 - repair/virtual time across tenants,
	// clamped to [0, 1]. Zero when the soak injected no faults.
	MeanMTTRSeconds float64   `json:"mean_mttr_seconds,omitempty"`
	Availability    float64   `json:"availability,omitempty"`
	ElapsedSeconds  float64   `json:"elapsed_seconds"`
	ThroughputRPS   float64   `json:"throughput_rps"`
	Latency         LatencyMS `json:"latency_ms"`
}

// LoadSoakSummary reads a gridload JSON report from disk.
func LoadSoakSummary(path string) (*SoakSummary, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s SoakSummary
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("parsing soak summary %s: %w", path, err)
	}
	return &s, nil
}

// Release is one release's consolidated quality report: benchmark
// deltas against the committed baseline, the scenario coverage matrix,
// and (when a soak ran) the gridload throughput/latency/availability
// summary. Sections with nil inputs are omitted, so the report degrades
// gracefully when a stage did not run.
type Release struct {
	Title    string
	Bench    *benchstat.Report
	Coverage *covmatrix.Matrix
	Soak     *SoakSummary
}

// WriteMarkdown renders the full release report as markdown.
func (r *Release) WriteMarkdown(w io.Writer) error {
	title := r.Title
	if title == "" {
		title = "Release report"
	}
	if _, err := fmt.Fprintf(w, "# %s\n", title); err != nil {
		return err
	}
	if r.Bench != nil {
		fmt.Fprintf(w, "\n## Benchmark deltas\n\n")
		if err := r.Bench.WriteMarkdown(w); err != nil {
			return err
		}
	}
	if r.Soak != nil {
		fmt.Fprintf(w, "\n## Soak summary\n\n")
		if err := r.writeSoakMarkdown(w); err != nil {
			return err
		}
	}
	if r.Coverage != nil {
		// The matrix document carries its own top-level heading; demote it
		// one level so the release report has a single h1.
		var sb strings.Builder
		if err := r.Coverage.WriteMarkdown(&sb); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "\n%s", demoteHeadings(sb.String())); err != nil {
			return err
		}
	}
	return nil
}

// soakRows flattens the summary into ordered label/value pairs — the
// single source for both renderers.
func (r *Release) soakRows() [][2]string {
	s := r.Soak
	num := func(v float64) string { return fmt.Sprintf("%.4g", v) }
	rows := [][2]string{
		{"mode", s.Mode},
		{"tenants × tasks", fmt.Sprintf("%d × %d", s.Tenants, s.TasksPerTenant)},
		{"submitted / accepted / rejected", fmt.Sprintf("%d / %d / %d", s.Submitted, s.Accepted, s.Rejected)},
		{"completed / evicted / canceled / lost", fmt.Sprintf("%d / %d / %d / %d", s.Completed, s.Evicted, s.Canceled, s.Lost)},
		{"throughput", num(s.ThroughputRPS) + " req/s over " + num(s.ElapsedSeconds) + " s"},
		{"latency p50 / p90 / p99 / max (ms)", fmt.Sprintf("%s / %s / %s / %s",
			num(s.Latency.P50), num(s.Latency.P90), num(s.Latency.P99), num(s.Latency.Max))},
	}
	if s.FaultAborts > 0 || s.Retries > 0 {
		rows = append(rows,
			[2]string{"fault aborts / retries", fmt.Sprintf("%d / %d", s.FaultAborts, s.Retries)},
			[2]string{"mean MTTR", num(s.MeanMTTRSeconds) + " virtual s"},
			[2]string{"availability", num(s.Availability)},
		)
	}
	return rows
}

func (r *Release) writeSoakMarkdown(w io.Writer) error {
	fmt.Fprintln(w, "| metric | value |")
	fmt.Fprintln(w, "|---|---|")
	for _, row := range r.soakRows() {
		if _, err := fmt.Fprintf(w, "| %s | %s |\n", row[0], row[1]); err != nil {
			return err
		}
	}
	return nil
}

// demoteHeadings pushes every markdown ATX heading down one level.
func demoteHeadings(md string) string {
	lines := strings.Split(md, "\n")
	for i, line := range lines {
		if strings.HasPrefix(line, "#") {
			lines[i] = "#" + line
		}
	}
	return strings.Join(lines, "\n")
}

// WriteHTML renders the report as a standalone HTML document: bench
// deltas and the soak summary as native tables, the coverage matrix as
// preformatted markdown (its tables are already aligned for reading).
func (r *Release) WriteHTML(w io.Writer) error {
	title := r.Title
	if title == "" {
		title = "Release report"
	}
	fmt.Fprintf(w, `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>%s</title>
<style>
body { font-family: sans-serif; margin: 2em; max-width: 72em; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #999; padding: 0.3em 0.7em; text-align: left; }
th { background: #eee; }
td.regressed { color: #b00020; font-weight: bold; }
td.improved { color: #00600f; }
pre { background: #f6f6f6; padding: 1em; overflow-x: auto; }
</style></head><body>
<h1>%s</h1>
`, html.EscapeString(title), html.EscapeString(title))
	if r.Bench != nil {
		fmt.Fprintln(w, "<h2>Benchmark deltas</h2>")
		if err := r.writeBenchHTML(w); err != nil {
			return err
		}
	}
	if r.Soak != nil {
		fmt.Fprintln(w, "<h2>Soak summary</h2>")
		fmt.Fprintln(w, "<table><tr><th>metric</th><th>value</th></tr>")
		for _, row := range r.soakRows() {
			fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td></tr>\n",
				html.EscapeString(row[0]), html.EscapeString(row[1]))
		}
		fmt.Fprintln(w, "</table>")
	}
	if r.Coverage != nil {
		fmt.Fprintln(w, "<h2>Scenario coverage</h2>")
		var sb strings.Builder
		if err := r.Coverage.WriteMarkdown(&sb); err != nil {
			return err
		}
		fmt.Fprintf(w, "<pre>%s</pre>\n", html.EscapeString(sb.String()))
	}
	_, err := fmt.Fprintln(w, "</body></html>")
	return err
}

func (r *Release) writeBenchHTML(w io.Writer) error {
	fmt.Fprintln(w, "<table><tr><th>benchmark</th><th>unit</th><th>old</th><th>new</th><th>delta</th><th>status</th></tr>")
	for _, d := range r.Bench.Deltas {
		cls := ""
		switch d.Class {
		case benchstat.ClassRegressed:
			cls = ` class="regressed"`
		case benchstat.ClassImproved:
			cls = ` class="improved"`
		}
		status := d.Class.String()
		if d.Note != "" {
			status += " (" + d.Note + ")"
		}
		fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td%s>%s</td></tr>\n",
			html.EscapeString(d.Name), html.EscapeString(d.Unit),
			html.EscapeString(benchstat.FormatValue(d.Old)),
			html.EscapeString(benchstat.FormatValue(d.New)),
			html.EscapeString(benchstat.FormatPct(d.Pct)),
			cls, html.EscapeString(status))
	}
	same, improved, info, regressed := r.Bench.Counts()
	_, err := fmt.Fprintf(w, "</table>\n<p>%d regressed, %d improved, %d unchanged, %d informational.</p>\n",
		regressed, improved, same, info)
	return err
}
