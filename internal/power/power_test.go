package power

import (
	"strings"
	"testing"

	"repro/internal/capability"
)

func TestProfilesShapeMatchesPaperClaim(t *testing.T) {
	gpp := Of(capability.KindGPP)
	fpga := Of(capability.KindFPGA)
	if fpga.ActiveWatts >= gpp.ActiveWatts {
		t.Error("FPGA active draw must be below a server CPU (the paper's low-power claim)")
	}
	if fpga.IdleWatts >= gpp.IdleWatts {
		t.Error("FPGA idle draw must be below a server CPU")
	}
	for _, k := range []capability.Kind{capability.KindGPP, capability.KindFPGA, capability.KindSoftcore, capability.KindGPU} {
		d := Of(k)
		if d.ActiveWatts <= 0 || d.IdleWatts < 0 || d.IdleWatts >= d.ActiveWatts {
			t.Errorf("%v draw implausible: %+v", k, d)
		}
	}
	if Of(capability.KindUnknown).ActiveWatts != 0 {
		t.Error("unknown kind should draw nothing")
	}
}

func TestMeterAccounting(t *testing.T) {
	m := NewMeter()
	m.ChargeActive(capability.KindGPP, 10)  // 250 J
	m.ChargeIdle(capability.KindGPP, 10)    // 90 J
	m.ChargeActive(capability.KindFPGA, 10) // 200 J
	if got := m.ActiveJoules(capability.KindGPP); got != 250 {
		t.Errorf("GPP active = %v", got)
	}
	if got := m.IdleJoules(capability.KindGPP); got != 90 {
		t.Errorf("GPP idle = %v", got)
	}
	if got := m.TotalJoules(); got != 540 {
		t.Errorf("total = %v", got)
	}
	if !strings.Contains(m.String(), "kJ") {
		t.Error("String")
	}
}

func TestMeterRejectsNegative(t *testing.T) {
	m := NewMeter()
	defer func() {
		if recover() == nil {
			t.Error("negative charge accepted")
		}
	}()
	m.ChargeActive(capability.KindGPP, -1)
}
