// Package power models processing-element power draw, quantifying the
// paper's first framework objective: "More performance can be achieved by
// utilizing reconfigurable hardware, at lower power."
//
// The model is deliberately coarse — per-kind active and idle draws of
// 2010-era parts — because the framework's energy argument rests on the
// ratio between a multi-core server CPU and a mid-size FPGA accelerator,
// not on watt-level accuracy.
package power

import (
	"fmt"
	"sort"

	"repro/internal/capability"
)

// Draw is a power operating point in watts.
type Draw struct {
	// ActiveWatts is drawn while executing a task.
	ActiveWatts float64
	// IdleWatts is drawn while powered but idle.
	IdleWatts float64
}

// profiles are era-typical draws. GPP draw is PER CORE (a quad-core Xeon
// node burns ~100 W under load), matching the engine's core-second
// accounting; FPGA, soft-core, and GPU draws are per device.
var profiles = map[capability.Kind]Draw{
	capability.KindGPP:      {ActiveWatts: 25, IdleWatts: 9},
	capability.KindFPGA:     {ActiveWatts: 20, IdleWatts: 2},
	capability.KindSoftcore: {ActiveWatts: 12, IdleWatts: 2},
	capability.KindGPU:      {ActiveWatts: 200, IdleWatts: 40},
}

// Of returns the draw profile for a PE kind. Unknown kinds report zero
// draw so accounting stays additive.
func Of(kind capability.Kind) Draw {
	return profiles[kind]
}

// Meter accumulates energy per PE kind over a simulation.
type Meter struct {
	activeJ map[capability.Kind]float64
	idleJ   map[capability.Kind]float64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{
		activeJ: make(map[capability.Kind]float64),
		idleJ:   make(map[capability.Kind]float64),
	}
}

// ChargeActive records busy seconds on an element kind.
func (m *Meter) ChargeActive(kind capability.Kind, seconds float64) {
	if seconds < 0 {
		panic(fmt.Sprintf("power: negative active charge %g", seconds))
	}
	m.activeJ[kind] += Of(kind).ActiveWatts * seconds
}

// ChargeIdle records powered-but-idle seconds on an element kind.
func (m *Meter) ChargeIdle(kind capability.Kind, seconds float64) {
	if seconds < 0 {
		panic(fmt.Sprintf("power: negative idle charge %g", seconds))
	}
	m.idleJ[kind] += Of(kind).IdleWatts * seconds
}

// ActiveJoules returns active energy for one kind.
func (m *Meter) ActiveJoules(kind capability.Kind) float64 { return m.activeJ[kind] }

// IdleJoules returns idle energy for one kind.
func (m *Meter) IdleJoules(kind capability.Kind) float64 { return m.idleJ[kind] }

// TotalJoules returns all energy across kinds and states. Kinds are
// summed in a fixed order: float addition is not associative, so map
// iteration order would otherwise wobble the last bit between runs and
// break bit-for-bit reproducibility.
func (m *Meter) TotalJoules() float64 {
	var total float64
	for _, j := range inKindOrder(m.activeJ) {
		total += j
	}
	for _, j := range inKindOrder(m.idleJ) {
		total += j
	}
	return total
}

// inKindOrder returns the map's values sorted by kind.
func inKindOrder(byKind map[capability.Kind]float64) []float64 {
	kinds := make([]capability.Kind, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	out := make([]float64, len(kinds))
	for i, k := range kinds {
		out[i] = byKind[k]
	}
	return out
}

// String summarizes the meter.
func (m *Meter) String() string {
	return fmt.Sprintf("energy: %.1f kJ total", m.TotalJoules()/1e3)
}
