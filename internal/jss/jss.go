// Package jss implements the paper's Job Submission System and the user
// services of Fig. 9: application submission, per-submission status,
// quality-of-service attributes (cost, deadline, monitoring), progress
// events, and cost accounting. "The minimum level of services required by a
// user is to submit his application tasks and get results. But more
// services can be added to satisfy the Quality of Service requirements."
package jss

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/capability"
	"repro/internal/sim"
	"repro/internal/task"
)

// QoS are the optional service attributes a user attaches to a submission.
type QoS struct {
	// DeadlineSeconds, when positive, asks for completion within this many
	// seconds of submission; the response reports whether it was met.
	DeadlineSeconds float64
	// MaxCostUnits, when positive, caps the accepted cost quote; dearer
	// submissions are rejected up front.
	MaxCostUnits float64
	// Monitor subscribes the user to per-task progress events.
	Monitor bool
	// Priority orders the queue; higher runs earlier, FIFO within a level.
	Priority int
}

// Status is a submission's lifecycle state.
type Status int

// Submission states.
const (
	StatusQueued Status = iota
	StatusRunning
	StatusDone
	StatusFailed
	StatusRejected
)

var statusNames = map[Status]string{
	StatusQueued: "queued", StatusRunning: "running", StatusDone: "done",
	StatusFailed: "failed", StatusRejected: "rejected",
}

// String returns the state name.
func (s Status) String() string {
	if n, ok := statusNames[s]; ok {
		return n
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Event is one monitoring notification (Fig. 9's monitoring service).
type Event struct {
	Time   sim.Time
	TaskID string
	What   string
}

// Submission is one user application handed to the grid: a task graph and
// optionally a Seq/Par program over it.
type Submission struct {
	ID      string
	User    string
	Graph   *task.Graph
	Program *task.Program // nil: execute by graph dependencies
	QoS     QoS

	SubmittedAt sim.Time
	CompletedAt sim.Time
	Status      Status
	// QuotedCost is the estimate at submission; FinalCost accumulates
	// actual charges.
	QuotedCost float64
	FinalCost  float64
	// Events holds monitoring notifications when QoS.Monitor is set.
	Events []Event
	// DeadlineMet reports the deadline outcome once completed.
	DeadlineMet bool
	// FailureReason explains StatusFailed/StatusRejected.
	FailureReason string

	remaining int
	seq       int // FIFO tie-break
}

// CostRate is the per-execution-second price of a processing-element kind,
// the cost service of Fig. 9.
func CostRate(kind capability.Kind) float64 {
	switch kind {
	case capability.KindGPP:
		return 1.0
	case capability.KindSoftcore:
		return 1.5
	case capability.KindGPU:
		return 2.0
	case capability.KindFPGA:
		return 3.0
	}
	return 1.0
}

// QuoteCost estimates a submission's cost from t_estimated and the
// requested element kinds.
func QuoteCost(g *task.Graph) float64 {
	var total float64
	for _, id := range g.Order() {
		t, _ := g.Get(id)
		total += t.EstimatedSeconds * CostRate(t.ExecReq.Requirements.Kind())
	}
	return total
}

// JSS accepts, queues, and tracks submissions. It is driven by the grid
// engine: the engine dequeues work and reports progress back.
type JSS struct {
	nextID  int
	nextSeq int
	queue   []*Submission
	all     map[string]*Submission
}

// New returns an empty job submission system.
func New() *JSS {
	return &JSS{all: make(map[string]*Submission)}
}

// Submit validates and enqueues an application. Rejections (invalid
// graphs, over-budget quotes, streaming designs) return an error and a
// rejected submission record.
func (j *JSS) Submit(user string, g *task.Graph, prog *task.Program, qos QoS, now sim.Time) (*Submission, error) {
	j.nextID++
	j.nextSeq++
	sub := &Submission{
		ID:          subID(j.nextID),
		User:        user,
		Graph:       g,
		Program:     prog,
		QoS:         qos,
		SubmittedAt: now,
		Status:      StatusQueued,
		seq:         j.nextSeq,
	}
	if user == "" {
		return j.reject(sub, CodeInvalid, "submission without a user")
	}
	if g == nil || g.Len() == 0 {
		return j.reject(sub, CodeInvalid, "submission without tasks")
	}
	if err := g.Validate(); err != nil {
		return j.reject(sub, CodeInvalid, err.Error())
	}
	if prog != nil {
		if err := prog.Validate(); err != nil {
			return j.reject(sub, CodeInvalid, err.Error())
		}
		for _, id := range prog.TaskIDs() {
			if _, ok := g.Get(id); !ok {
				return j.reject(sub, CodeInvalid, fmt.Sprintf("program references unknown task %s", id))
			}
		}
	}
	for _, id := range g.Order() {
		t, _ := g.Get(id)
		if d := t.ExecReq.Design; d != nil && d.Streaming {
			return j.reject(sub, CodeUnsupported, fmt.Sprintf("task %s uses a streaming design; streaming applications are future work", id))
		}
	}
	sub.QuotedCost = QuoteCost(g)
	if qos.MaxCostUnits > 0 && sub.QuotedCost > qos.MaxCostUnits {
		return j.reject(sub, CodeQuotaExceeded, fmt.Sprintf("quote %.2f exceeds cost cap %.2f", sub.QuotedCost, qos.MaxCostUnits))
	}
	sub.remaining = g.Len()
	j.queue = append(j.queue, sub)
	j.all[sub.ID] = sub
	return sub, nil
}

// reject records a refused submission and returns it with the typed error
// the caller reports (see RejectError). A named method rather than a
// closure inside Submit so the accept path does not allocate a closure it
// never calls.
func (j *JSS) reject(sub *Submission, code RejectCode, reason string) (*Submission, error) {
	sub.Status = StatusRejected
	sub.FailureReason = reason
	j.all[sub.ID] = sub
	return sub, &RejectError{Code: code, Reason: reason}
}

// subID renders "sub-%04d" without fmt: one submission per task in the
// many-task workload model makes this a measurable allocation site.
func subID(n int) string {
	var buf [24]byte
	s := strconv.AppendInt(buf[:0], int64(n), 10)
	pad := 4 - len(s)
	if pad < 0 {
		pad = 0
	}
	b := make([]byte, 0, 4+pad+len(s))
	b = append(b, "sub-"...)
	for ; pad > 0; pad-- {
		b = append(b, '0')
	}
	return string(append(b, s...))
}

// Dequeue removes and returns the highest-priority queued submission
// (FIFO within a priority level), or nil when empty.
func (j *JSS) Dequeue() *Submission {
	if len(j.queue) == 0 {
		return nil
	}
	best := 0
	for i := 1; i < len(j.queue); i++ {
		a, b := j.queue[i], j.queue[best]
		if a.QoS.Priority > b.QoS.Priority || (a.QoS.Priority == b.QoS.Priority && a.seq < b.seq) {
			best = i
		}
	}
	sub := j.queue[best]
	//reconlint:sanitized queue length is bounded by the caller's admission quota before Enqueue, so this removal copy is bounded
	j.queue = append(j.queue[:best], j.queue[best+1:]...)
	sub.Status = StatusRunning
	return sub
}

// QueueLength returns the number of queued submissions.
func (j *JSS) QueueLength() int { return len(j.queue) }

// Get returns a submission by ID.
func (j *JSS) Get(id string) (*Submission, bool) {
	s, ok := j.all[id]
	return s, ok
}

// Submissions returns every known submission sorted by ID.
func (j *JSS) Submissions() []*Submission {
	out := make([]*Submission, 0, len(j.all))
	for _, s := range j.all {
		out = append(out, s)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// Notify records a monitoring event for a submission (no-op unless the
// user requested monitoring).
func (j *JSS) Notify(subID string, now sim.Time, taskID, what string) {
	if s, ok := j.all[subID]; ok {
		j.NotifyFor(s, now, taskID, what)
	}
}

// NotifyFor is Notify for a caller already holding the submission — the
// engine reports progress once per simulated event, so the hot path skips
// the ID lookup.
func (j *JSS) NotifyFor(s *Submission, now sim.Time, taskID, what string) {
	if !s.QoS.Monitor {
		return
	}
	s.Events = append(s.Events, Event{Time: now, TaskID: taskID, What: what})
}

// Charge adds actual cost for executed work.
func (j *JSS) Charge(subID string, seconds float64, kind capability.Kind) {
	if s, ok := j.all[subID]; ok {
		j.ChargeFor(s, seconds, kind)
	}
}

// ChargeFor is Charge for a caller already holding the submission.
func (j *JSS) ChargeFor(s *Submission, seconds float64, kind capability.Kind) {
	s.FinalCost += seconds * CostRate(kind)
}

// TaskDone marks one of the submission's tasks complete; when the last one
// finishes the submission completes and the deadline outcome is recorded.
func (j *JSS) TaskDone(subID string, now sim.Time) {
	if s, ok := j.all[subID]; ok {
		j.TaskDoneFor(s, now)
	}
}

// TaskDoneFor is TaskDone for a caller already holding the submission.
func (j *JSS) TaskDoneFor(s *Submission, now sim.Time) {
	if s.Status != StatusRunning {
		return
	}
	s.remaining--
	if s.remaining > 0 {
		return
	}
	s.Status = StatusDone
	s.CompletedAt = now
	elapsed := float64(now - s.SubmittedAt)
	s.DeadlineMet = s.QoS.DeadlineSeconds <= 0 || elapsed <= s.QoS.DeadlineSeconds
}

// Fail marks a submission failed with a reason.
func (j *JSS) Fail(subID string, now sim.Time, reason string) {
	s, ok := j.all[subID]
	if !ok {
		return
	}
	s.Status = StatusFailed
	s.CompletedAt = now
	s.FailureReason = reason
}

// Response is the user-facing answer to a status query (Fig. 9: "a user is
// able to submit his/her queries and get a response"). It is a snapshot —
// safe to hand across the service boundary without exposing live state.
type Response struct {
	SubmissionID  string
	User          string
	Status        Status
	SubmittedAt   sim.Time
	CompletedAt   sim.Time
	QuotedCost    float64
	FinalCost     float64
	DeadlineMet   bool
	FailureReason string
	TasksTotal    int
	TasksDone     int
	Events        []Event
}

// Query answers a user's status request for a submission.
func (j *JSS) Query(subID string) (Response, error) {
	s, ok := j.all[subID]
	if !ok {
		return Response{}, fmt.Errorf("jss: unknown submission %s", subID)
	}
	total := 0
	if s.Graph != nil {
		total = s.Graph.Len()
	}
	return Response{
		SubmissionID:  s.ID,
		User:          s.User,
		Status:        s.Status,
		SubmittedAt:   s.SubmittedAt,
		CompletedAt:   s.CompletedAt,
		QuotedCost:    s.QuotedCost,
		FinalCost:     s.FinalCost,
		DeadlineMet:   s.DeadlineMet,
		FailureReason: s.FailureReason,
		TasksTotal:    total,
		TasksDone:     total - s.remaining,
		//reconlint:sanitized Events are appended by the engine's own lifecycle transitions, never by tenant input, so this snapshot copy is bounded
		Events: append([]Event(nil), s.Events...),
	}, nil
}
