package jss

// RejectCode classifies why a submission was refused. Codes are stable,
// lower_snake strings so a service boundary (the control plane's wire
// API) can map them without parsing error prose.
type RejectCode string

// Rejection codes.
const (
	// CodeInvalid marks structurally invalid submissions: no user, no
	// tasks, broken graphs or programs.
	CodeInvalid RejectCode = "invalid"
	// CodeUnsupported marks submissions the grid cannot serve yet
	// (streaming designs — the paper's future work).
	CodeUnsupported RejectCode = "unsupported"
	// CodeQuotaExceeded marks submissions refused by a resource or cost
	// quota (the QoS cost cap, or a tenant budget at the control plane).
	CodeQuotaExceeded RejectCode = "quota_exceeded"
)

// RejectError is the typed error the JSS reject path returns. It carries
// the wire-mappable code alongside the human reason; Error keeps the
// historical "jss: <reason>" rendering so log consumers are unaffected.
type RejectError struct {
	Code   RejectCode
	Reason string
}

// Error implements error.
func (e *RejectError) Error() string { return "jss: " + e.Reason }

// Is matches two RejectErrors by code, so errors.Is(err, ErrQuotaExceeded)
// holds for every quota rejection regardless of its reason text. A target
// with a non-empty Reason additionally requires the exact reason.
func (e *RejectError) Is(target error) bool {
	t, ok := target.(*RejectError)
	if !ok {
		return false
	}
	return t.Code == e.Code && (t.Reason == "" || t.Reason == e.Reason)
}

// ErrQuotaExceeded is the sentinel for quota rejections: use
// errors.Is(err, ErrQuotaExceeded) to detect them without string matching.
var ErrQuotaExceeded = &RejectError{Code: CodeQuotaExceeded}
