package jss

import (
	"errors"
	"strings"
	"testing"
)

// TestRejectErrorTable pins the typed rejection surface: every reject
// path produces a *RejectError whose code classifies the refusal, and
// quota rejections satisfy errors.Is(err, ErrQuotaExceeded) so callers
// (the control-plane wire layer) can map them without string matching.
func TestRejectErrorTable(t *testing.T) {
	cases := []struct {
		name     string
		submit   func(j *JSS) error
		code     RejectCode
		isQuota  bool
		contains string
	}{
		{
			name: "no user",
			submit: func(j *JSS) error {
				_, err := j.Submit("", oneTaskGraph(t, "T1"), nil, QoS{}, 0)
				return err
			},
			code:     CodeInvalid,
			contains: "without a user",
		},
		{
			name: "no tasks",
			submit: func(j *JSS) error {
				_, err := j.Submit("alice", nil, nil, QoS{}, 0)
				return err
			},
			code:     CodeInvalid,
			contains: "without tasks",
		},
		{
			name: "cost cap exceeded",
			submit: func(j *JSS) error {
				// The one-task graph quotes 10 units; cap it at 1.
				_, err := j.Submit("alice", oneTaskGraph(t, "T1"), nil, QoS{MaxCostUnits: 1}, 0)
				return err
			},
			code:     CodeQuotaExceeded,
			isQuota:  true,
			contains: "exceeds cost cap",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.submit(New())
			if err == nil {
				t.Fatal("expected a rejection")
			}
			var re *RejectError
			if !errors.As(err, &re) {
				t.Fatalf("err = %T, want *RejectError", err)
			}
			if re.Code != tc.code {
				t.Errorf("code = %q, want %q", re.Code, tc.code)
			}
			if got := errors.Is(err, ErrQuotaExceeded); got != tc.isQuota {
				t.Errorf("errors.Is(err, ErrQuotaExceeded) = %v, want %v", got, tc.isQuota)
			}
			if !strings.Contains(err.Error(), tc.contains) {
				t.Errorf("error %q does not mention %q", err, tc.contains)
			}
			if !strings.HasPrefix(err.Error(), "jss: ") {
				t.Errorf("error %q lacks the jss: prefix", err)
			}
		})
	}
}

// TestRejectErrorIs pins the Is semantics: a bare-code target matches any
// reason, a target with a reason requires an exact match, and foreign
// errors never match.
func TestRejectErrorIs(t *testing.T) {
	err := &RejectError{Code: CodeQuotaExceeded, Reason: "quote 10.00 exceeds cost cap 1.00"}
	if !errors.Is(err, ErrQuotaExceeded) {
		t.Error("bare-code target should match any reason")
	}
	if !errors.Is(err, &RejectError{Code: CodeQuotaExceeded, Reason: err.Reason}) {
		t.Error("exact reason should match")
	}
	if errors.Is(err, &RejectError{Code: CodeQuotaExceeded, Reason: "other"}) {
		t.Error("different reason should not match")
	}
	if errors.Is(err, &RejectError{Code: CodeInvalid}) {
		t.Error("different code should not match")
	}
	if errors.Is(err, errors.New("jss: quote 10.00 exceeds cost cap 1.00")) {
		t.Error("foreign error type should not match")
	}
	if errors.Is(errors.New("plain"), ErrQuotaExceeded) {
		t.Error("plain error should not be a quota rejection")
	}
}

// TestRejectedSubmissionRecorded checks the rejected record stays
// queryable with the rejection reason.
func TestRejectedSubmissionRecorded(t *testing.T) {
	j := New()
	sub, err := j.Submit("alice", oneTaskGraph(t, "T1"), nil, QoS{MaxCostUnits: 1}, 0)
	if err == nil {
		t.Fatal("expected a rejection")
	}
	if sub.Status != StatusRejected {
		t.Errorf("status = %v, want rejected", sub.Status)
	}
	resp, err := j.Query(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusRejected || !strings.Contains(resp.FailureReason, "cost cap") {
		t.Errorf("query = %+v", resp)
	}
}
