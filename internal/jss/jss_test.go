package jss

import (
	"strings"
	"testing"

	"repro/internal/capability"
	"repro/internal/hdl"
	"repro/internal/pe"
	"repro/internal/task"
)

func oneTaskGraph(t *testing.T, id string) *task.Graph {
	t.Helper()
	g := task.NewGraph()
	tk := &task.Task{
		ID:               id,
		Outputs:          []task.DataOut{{DataID: "out", SizeMB: 1}},
		ExecReq:          task.ExecReq{Scenario: pe.SoftwareOnly, Requirements: task.GPPOnly(1000, 256)},
		EstimatedSeconds: 10,
		Work:             pe.Work{MInstructions: 10000, ParallelFraction: 0.5},
	}
	if err := g.Add(tk); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSubmitAndComplete(t *testing.T) {
	j := New()
	g := oneTaskGraph(t, "T1")
	sub, err := j.Submit("alice", g, nil, QoS{Monitor: true, DeadlineSeconds: 100}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Status != StatusQueued || sub.SubmittedAt != 5 {
		t.Errorf("sub = %+v", sub)
	}
	if sub.QuotedCost != 10 { // 10 s × GPP rate 1.0
		t.Errorf("quote = %v", sub.QuotedCost)
	}
	got := j.Dequeue()
	if got != sub || got.Status != StatusRunning {
		t.Error("dequeue broken")
	}
	j.Notify(sub.ID, 6, "T1", "dispatched")
	j.Charge(sub.ID, 10, capability.KindGPP)
	j.TaskDone(sub.ID, 20)
	if sub.Status != StatusDone || sub.CompletedAt != 20 {
		t.Errorf("completion: %+v", sub)
	}
	if !sub.DeadlineMet {
		t.Error("15s elapsed < 100s deadline should be met")
	}
	if sub.FinalCost != 10 {
		t.Errorf("final cost = %v", sub.FinalCost)
	}
	if len(sub.Events) != 1 || sub.Events[0].What != "dispatched" {
		t.Errorf("events = %+v", sub.Events)
	}
}

func TestDeadlineMiss(t *testing.T) {
	j := New()
	g := oneTaskGraph(t, "T1")
	sub, _ := j.Submit("alice", g, nil, QoS{DeadlineSeconds: 5}, 0)
	j.Dequeue()
	j.TaskDone(sub.ID, 50)
	if sub.DeadlineMet {
		t.Error("50s elapsed > 5s deadline reported met")
	}
}

func TestRejections(t *testing.T) {
	j := New()
	if _, err := j.Submit("", oneTaskGraph(t, "T1"), nil, QoS{}, 0); err == nil {
		t.Error("anonymous submission accepted")
	}
	if _, err := j.Submit("alice", nil, nil, QoS{}, 0); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := j.Submit("alice", task.NewGraph(), nil, QoS{}, 0); err == nil {
		t.Error("empty graph accepted")
	}
	// Program referencing a missing task.
	prog, _ := task.ParseApp("App{Seq(T9)}")
	if _, err := j.Submit("alice", oneTaskGraph(t, "T1"), prog, QoS{}, 0); err == nil {
		t.Error("dangling program reference accepted")
	}
	// Over-budget quote.
	if _, err := j.Submit("alice", oneTaskGraph(t, "T1"), nil, QoS{MaxCostUnits: 1}, 0); err == nil {
		t.Error("over-budget submission accepted")
	}
	// All rejections are recorded with reasons.
	for _, s := range j.Submissions() {
		if s.Status != StatusRejected || s.FailureReason == "" {
			t.Errorf("rejection not recorded: %+v", s)
		}
	}
}

func TestStreamingDesignRejected(t *testing.T) {
	j := New()
	g := task.NewGraph()
	d, _ := hdl.LookupIP("fir64")
	streaming := *d
	streaming.Streaming = true
	tk := &task.Task{
		ID:      "T1",
		Outputs: []task.DataOut{{DataID: "o", SizeMB: 1}},
		ExecReq: task.ExecReq{
			Scenario:     pe.UserDefinedHW,
			Requirements: task.FPGAFamily("Virtex-5", 1),
			Design:       &streaming,
		},
		EstimatedSeconds: 1,
		Work:             pe.Work{MInstructions: 100, ParallelFraction: 0.5},
	}
	if err := g.Add(tk); err != nil {
		t.Fatal(err)
	}
	_, err := j.Submit("alice", g, nil, QoS{}, 0)
	if err == nil || !strings.Contains(err.Error(), "streaming") {
		t.Errorf("streaming design not rejected: %v", err)
	}
}

func TestPriorityDequeueOrder(t *testing.T) {
	j := New()
	low, _ := j.Submit("a", oneTaskGraph(t, "T1"), nil, QoS{Priority: 1}, 0)
	high, _ := j.Submit("b", oneTaskGraph(t, "T1"), nil, QoS{Priority: 9}, 0)
	mid, _ := j.Submit("c", oneTaskGraph(t, "T1"), nil, QoS{Priority: 5}, 0)
	if j.QueueLength() != 3 {
		t.Fatalf("queue = %d", j.QueueLength())
	}
	if got := j.Dequeue(); got != high {
		t.Errorf("first dequeue = %s", got.ID)
	}
	if got := j.Dequeue(); got != mid {
		t.Errorf("second dequeue = %s", got.ID)
	}
	if got := j.Dequeue(); got != low {
		t.Errorf("third dequeue = %s", got.ID)
	}
	if j.Dequeue() != nil {
		t.Error("empty dequeue should be nil")
	}
}

func TestFIFOWithinPriority(t *testing.T) {
	j := New()
	first, _ := j.Submit("a", oneTaskGraph(t, "T1"), nil, QoS{}, 0)
	_, _ = j.Submit("b", oneTaskGraph(t, "T1"), nil, QoS{}, 0)
	if got := j.Dequeue(); got != first {
		t.Error("FIFO violated within equal priority")
	}
}

func TestNotifyRequiresMonitorQoS(t *testing.T) {
	j := New()
	sub, _ := j.Submit("a", oneTaskGraph(t, "T1"), nil, QoS{}, 0)
	j.Notify(sub.ID, 1, "T1", "x")
	if len(sub.Events) != 0 {
		t.Error("events recorded without Monitor QoS")
	}
	j.Notify("nonexistent", 1, "T1", "x") // must not panic
}

func TestFail(t *testing.T) {
	j := New()
	sub, _ := j.Submit("a", oneTaskGraph(t, "T1"), nil, QoS{}, 0)
	j.Dequeue()
	j.Fail(sub.ID, 9, "node vanished")
	if sub.Status != StatusFailed || sub.FailureReason != "node vanished" {
		t.Errorf("fail: %+v", sub)
	}
	// TaskDone after failure is a no-op.
	j.TaskDone(sub.ID, 10)
	if sub.Status != StatusFailed {
		t.Error("TaskDone resurrected a failed submission")
	}
}

func TestCostRates(t *testing.T) {
	if CostRate(capability.KindFPGA) <= CostRate(capability.KindGPP) {
		t.Error("FPGA time should cost more than GPP time")
	}
	if CostRate(capability.KindUnknown) != 1.0 {
		t.Error("unknown kind should default to base rate")
	}
}

func TestStatusString(t *testing.T) {
	if StatusDone.String() != "done" || Status(42).String() == "" {
		t.Error("Status String broken")
	}
}

func TestMultiTaskCompletionCounting(t *testing.T) {
	j := New()
	g := task.NewGraph()
	for _, id := range []string{"Ta", "Tb"} {
		tk := &task.Task{
			ID:               id,
			Outputs:          []task.DataOut{{DataID: id + "-o", SizeMB: 1}},
			ExecReq:          task.ExecReq{Scenario: pe.SoftwareOnly, Requirements: task.GPPOnly(1000, 1)},
			EstimatedSeconds: 1,
			Work:             pe.Work{MInstructions: 100, ParallelFraction: 0},
		}
		if err := g.Add(tk); err != nil {
			t.Fatal(err)
		}
	}
	sub, _ := j.Submit("a", g, nil, QoS{}, 0)
	j.Dequeue()
	j.TaskDone(sub.ID, 1)
	if sub.Status != StatusRunning {
		t.Error("submission completed early")
	}
	j.TaskDone(sub.ID, 2)
	if sub.Status != StatusDone {
		t.Error("submission not completed")
	}
}

func TestQueryResponseSnapshot(t *testing.T) {
	j := New()
	sub, _ := j.Submit("alice", oneTaskGraph(t, "T1"), nil, QoS{Monitor: true}, 2)
	j.Dequeue()
	j.Notify(sub.ID, 3, "T1", "dispatched")

	resp, err := j.Query(sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusRunning || resp.TasksTotal != 1 || resp.TasksDone != 0 {
		t.Errorf("mid-run response = %+v", resp)
	}
	j.TaskDone(sub.ID, 9)
	resp, _ = j.Query(sub.ID)
	if resp.Status != StatusDone || resp.TasksDone != 1 || resp.CompletedAt != 9 {
		t.Errorf("final response = %+v", resp)
	}
	if len(resp.Events) != 1 {
		t.Errorf("events = %d", len(resp.Events))
	}
	// The snapshot is detached from live state.
	resp.Events[0].What = "mutated"
	if sub.Events[0].What == "mutated" {
		t.Error("response aliases live events")
	}
	if _, err := j.Query("nope"); err == nil {
		t.Error("unknown submission accepted")
	}
}
