package task

import (
	"testing"
)

// FuzzParseApp throws arbitrary bytes at the application-expression
// parser. A rejected input must return an error, never panic; an
// accepted program must satisfy its own validity contract and render to
// a canonical form that re-parses to the same program (round trip).
func FuzzParseApp(f *testing.F) {
	for _, seed := range []string{
		"App{Seq(T2), Par(T4,T1,T7), Seq(T5,T10)}",
		"App{Seq, (T5, T10)}", // the paper's stray-comma form
		"{Par(a,b)}",
		"app{seq(x)}",
		"App{}",
		"App{Seq()}",
		"App{Seq(T1,T1)}",
		"App{Seq(T1)",
		"App{Seq(T1)} trailing",
		"",
		"{",
		"App{Seq(T1),}",
		"App{Seq(\x00)}",
		"App{Seq(T1)Par(T2)}",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ParseApp(src)
		if err != nil {
			if prog != nil {
				t.Errorf("ParseApp(%q) returned both a program and error %v", src, err)
			}
			return
		}
		if err := prog.Validate(); err != nil {
			t.Fatalf("ParseApp(%q) accepted an invalid program: %v", src, err)
		}
		ids := prog.TaskIDs()
		if len(ids) == 0 {
			t.Fatalf("ParseApp(%q) accepted a program with no tasks", src)
		}
		planned := 0
		for _, b := range prog.Plan() {
			planned += len(b)
		}
		if planned != len(ids) {
			t.Fatalf("ParseApp(%q): plan covers %d tasks, program has %d", src, planned, len(ids))
		}
		// Canonical form must round-trip exactly.
		rendered := prog.String()
		again, err := ParseApp(rendered)
		if err != nil {
			t.Fatalf("ParseApp(%q): canonical form %q does not re-parse: %v", src, rendered, err)
		}
		if again.String() != rendered {
			t.Fatalf("ParseApp(%q): round trip drifted: %q -> %q", src, rendered, again.String())
		}
	})
}
