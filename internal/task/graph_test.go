package task

import (
	"strings"
	"testing"

	"repro/internal/pe"
)

func chainGraph(t *testing.T, n int) *Graph {
	t.Helper()
	g := NewGraph()
	for i := 0; i < n; i++ {
		tk := validSoftwareTask(idOf(i))
		tk.Outputs = []DataOut{{DataID: idOf(i) + "-out", SizeMB: 1}}
		if i > 0 {
			tk.Inputs = []DataIn{{SourceTask: idOf(i - 1), DataID: idOf(i-1) + "-out", SizeMB: 1}}
		}
		if err := g.Add(tk); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func idOf(i int) string { return "T" + string(rune('0'+i)) }

func TestGraphAddRejectsDuplicates(t *testing.T) {
	g := NewGraph()
	if err := g.Add(validSoftwareTask("T1")); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(validSoftwareTask("T1")); err == nil {
		t.Error("duplicate accepted")
	}
	if err := g.Add(&Task{}); err == nil {
		t.Error("invalid task accepted")
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestGraphValidateMissingProducer(t *testing.T) {
	g := NewGraph()
	tk := validSoftwareTask("T1")
	tk.Inputs = []DataIn{{SourceTask: "T0", DataID: "x", SizeMB: 1}}
	if err := g.Add(tk); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err == nil {
		t.Error("missing producer accepted")
	}
}

func TestGraphValidateWrongDataID(t *testing.T) {
	g := NewGraph()
	a := validSoftwareTask("T0")
	a.Outputs = []DataOut{{DataID: "real", SizeMB: 1}}
	b := validSoftwareTask("T1")
	b.Inputs = []DataIn{{SourceTask: "T0", DataID: "imaginary", SizeMB: 1}}
	g.Add(a)
	g.Add(b)
	if err := g.Validate(); err == nil {
		t.Error("nonexistent DataID accepted")
	}
}

func TestTopoOrderChain(t *testing.T) {
	g := chainGraph(t, 5)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(order); i++ {
		if order[i-1] >= order[i] {
			t.Errorf("chain order broken: %v", order)
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := NewGraph()
	a := validSoftwareTask("Ta")
	a.Outputs = []DataOut{{DataID: "da", SizeMB: 1}}
	a.Inputs = []DataIn{{SourceTask: "Tb", DataID: "db", SizeMB: 1}}
	b := validSoftwareTask("Tb")
	b.Outputs = []DataOut{{DataID: "db", SizeMB: 1}}
	b.Inputs = []DataIn{{SourceTask: "Ta", DataID: "da", SizeMB: 1}}
	g.Add(a)
	g.Add(b)
	if _, err := g.TopoOrder(); err == nil {
		t.Error("cycle not detected")
	}
	if err := g.Validate(); err == nil {
		t.Error("Validate missed the cycle")
	}
}

func TestFig7GraphPaperDependencies(t *testing.T) {
	g := Fig7Graph()
	if g.Len() != 18 {
		t.Fatalf("Fig. 7 graph has %d tasks, want 18", g.Len())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	wantDeps := map[string][]string{
		"T8":  {"T0", "T2", "T5"},
		"T11": {"T7", "T9", "T13"},
		"T13": {"T7", "T8"},
		"T17": {"T7", "T13"},
	}
	for id, want := range wantDeps {
		got := g.Dependencies(id)
		if len(got) != len(want) {
			t.Errorf("%s deps = %v, want %v", id, got, want)
			continue
		}
		gotSet := map[string]bool{}
		for _, d := range got {
			gotSet[d] = true
		}
		for _, w := range want {
			if !gotSet[w] {
				t.Errorf("%s missing paper dependency %s", id, w)
			}
		}
	}
}

func TestDependents(t *testing.T) {
	g := Fig7Graph()
	deps := g.Dependents("T7")
	want := map[string]bool{"T11": true, "T13": true, "T17": true}
	if len(deps) != 3 {
		t.Fatalf("T7 dependents = %v", deps)
	}
	for _, d := range deps {
		if !want[d] {
			t.Errorf("unexpected dependent %s", d)
		}
	}
	if g.Dependents("T16") != nil {
		t.Error("sink should have no dependents")
	}
	if g.Dependencies("missing") != nil {
		t.Error("missing task should have nil dependencies")
	}
}

func TestCriticalPath(t *testing.T) {
	g := chainGraph(t, 4)
	path, total, err := g.CriticalPath(func(tk *Task) float64 { return 1 })
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 4 || total != 4 {
		t.Errorf("critical path = %v (%v), want full chain", path, total)
	}
	if _, _, err := g.CriticalPath(func(tk *Task) float64 { return -1 }); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestCriticalPathFig7(t *testing.T) {
	g := Fig7Graph()
	path, total, err := g.CriticalPath(func(tk *Task) float64 { return tk.EstimatedSeconds })
	if err != nil {
		t.Fatal(err)
	}
	if len(path) < 4 || total <= 0 {
		t.Errorf("Fig. 7 critical path = %v (%v)", path, total)
	}
	// Each consecutive pair must be a real dependency edge.
	for i := 1; i < len(path); i++ {
		found := false
		for _, dep := range g.Dependencies(path[i]) {
			if dep == path[i-1] {
				found = true
			}
		}
		if !found {
			t.Errorf("critical path step %s→%s is not an edge", path[i-1], path[i])
		}
	}
}

func TestRoots(t *testing.T) {
	g := Fig7Graph()
	roots := g.Roots()
	rootSet := map[string]bool{}
	for _, r := range roots {
		rootSet[r] = true
		if len(g.Dependencies(r)) != 0 {
			t.Errorf("root %s has dependencies", r)
		}
	}
	for _, want := range []string{"T0", "T1", "T2", "T3", "T5", "T7"} {
		if !rootSet[want] {
			t.Errorf("expected root %s missing (roots = %v)", want, roots)
		}
	}
	_ = pe.SoftwareOnly
}

func TestGetAndIDs(t *testing.T) {
	g := chainGraph(t, 3)
	if _, ok := g.Get("T1"); !ok {
		t.Error("Get missed existing task")
	}
	if _, ok := g.Get("T9"); ok {
		t.Error("Get invented a task")
	}
	ids := g.IDs()
	if len(ids) != 3 || ids[0] != "T0" {
		t.Errorf("IDs = %v", ids)
	}
}

func TestWriteDOT(t *testing.T) {
	g := Fig7Graph()
	var b strings.Builder
	if err := g.WriteDOT(&b, ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "digraph taskgraph {") {
		t.Errorf("header: %q", out[:30])
	}
	// The paper's stated edges must appear.
	for _, edge := range []string{`"T0" -> "T8"`, `"T7" -> "T13"`, `"T7" -> "T11"`, `"T13" -> "T17"`} {
		if !strings.Contains(out, edge) {
			t.Errorf("missing edge %s", edge)
		}
	}
	if !strings.Contains(out, "Software-only") {
		t.Error("node labels missing scenario")
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("unterminated digraph")
	}
}
