package task

import (
	"fmt"
	"strings"
	"unicode"
)

// StepKind says whether a step's tasks run sequentially or in parallel.
type StepKind int

// Step kinds (the paper's Seq and Par keywords).
const (
	StepSeq StepKind = iota
	StepPar
)

// String returns the keyword.
func (k StepKind) String() string {
	if k == StepPar {
		return "Par"
	}
	return "Seq"
}

// Step is one keyword group: Seq(T5,T10) or Par(T4,T1,T7).
type Step struct {
	Kind  StepKind
	Tasks []string
}

// String renders the group in source form.
func (s Step) String() string {
	return fmt.Sprintf("%s(%s)", s.Kind, strings.Join(s.Tasks, ","))
}

// Program is a parsed application expression (Eq. 3): an ordered list of
// keyword groups. Groups execute in order; a Par group's tasks run
// concurrently, a Seq group's tasks run one after another (Fig. 8).
type Program struct {
	Steps []Step
}

// String renders the program in source form.
func (p *Program) String() string {
	parts := make([]string, len(p.Steps))
	for i, s := range p.Steps {
		parts[i] = s.String()
	}
	return "App{" + strings.Join(parts, ", ") + "}"
}

// TaskIDs returns every task mentioned, in execution order.
func (p *Program) TaskIDs() []string {
	var out []string
	for _, s := range p.Steps {
		out = append(out, s.Tasks...)
	}
	return out
}

// Validate rejects empty programs, empty groups, and duplicate task uses.
func (p *Program) Validate() error {
	if len(p.Steps) == 0 {
		return fmt.Errorf("task: empty application program")
	}
	seen := map[string]bool{}
	for _, s := range p.Steps {
		if len(s.Tasks) == 0 {
			return fmt.Errorf("task: %s group with no tasks", s.Kind)
		}
		for _, id := range s.Tasks {
			if err := sanitizeID(id); err != nil {
				return err
			}
			if seen[id] {
				return fmt.Errorf("task: task %s appears twice in the program", id)
			}
			seen[id] = true
		}
	}
	return nil
}

// --- Lexer ---

type tokKind int

const (
	tokIdent tokKind = iota
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokComma
	tokEOF
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src string
	pos int
}

func (lx *lexer) next() (token, error) {
	for lx.pos < len(lx.src) && unicode.IsSpace(rune(lx.src[lx.pos])) {
		lx.pos++
	}
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, pos: lx.pos}, nil
	}
	start := lx.pos
	c := lx.src[lx.pos]
	switch c {
	case '{':
		lx.pos++
		return token{tokLBrace, "{", start}, nil
	case '}':
		lx.pos++
		return token{tokRBrace, "}", start}, nil
	case '(':
		lx.pos++
		return token{tokLParen, "(", start}, nil
	case ')':
		lx.pos++
		return token{tokRParen, ")", start}, nil
	case ',':
		lx.pos++
		return token{tokComma, ",", start}, nil
	}
	if isIdentByte(c) {
		for lx.pos < len(lx.src) && isIdentByte(lx.src[lx.pos]) {
			lx.pos++
		}
		return token{tokIdent, lx.src[start:lx.pos], start}, nil
	}
	return token{}, fmt.Errorf("task: unexpected character %q at offset %d", c, start)
}

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-'
}

// --- Parser ---

// ParseApp parses the paper's application expression syntax, e.g.
//
//	App{Seq(T2), Par(T4,T1,T7), Seq(T5,T10)}
//
// The leading "App" keyword is optional; commas between groups are
// optional. The paper's own example contains "Seq, (T5, T10)" — a stray
// comma after the keyword — which this parser accepts for fidelity.
func ParseApp(src string) (*Program, error) {
	lx := &lexer{src: src}
	tok, err := lx.next()
	if err != nil {
		return nil, err
	}
	if tok.kind == tokIdent && strings.EqualFold(tok.text, "App") {
		tok, err = lx.next()
		if err != nil {
			return nil, err
		}
	}
	if tok.kind != tokLBrace {
		return nil, fmt.Errorf("task: expected '{' at offset %d", tok.pos)
	}
	prog := &Program{}
	tok, err = lx.next()
	if err != nil {
		return nil, err
	}
	for tok.kind != tokRBrace {
		if tok.kind != tokIdent {
			return nil, fmt.Errorf("task: expected Seq or Par at offset %d", tok.pos)
		}
		var kind StepKind
		switch {
		case strings.EqualFold(tok.text, "Seq"):
			kind = StepSeq
		case strings.EqualFold(tok.text, "Par"):
			kind = StepPar
		default:
			return nil, fmt.Errorf("task: unknown keyword %q at offset %d", tok.text, tok.pos)
		}
		tok, err = lx.next()
		if err != nil {
			return nil, err
		}
		// Tolerate the paper's stray comma between keyword and '('.
		if tok.kind == tokComma {
			tok, err = lx.next()
			if err != nil {
				return nil, err
			}
		}
		if tok.kind != tokLParen {
			return nil, fmt.Errorf("task: expected '(' after %s at offset %d", kind, tok.pos)
		}
		var ids []string
		for {
			tok, err = lx.next()
			if err != nil {
				return nil, err
			}
			if tok.kind != tokIdent {
				return nil, fmt.Errorf("task: expected task ID at offset %d", tok.pos)
			}
			ids = append(ids, tok.text)
			tok, err = lx.next()
			if err != nil {
				return nil, err
			}
			if tok.kind == tokRParen {
				break
			}
			if tok.kind != tokComma {
				return nil, fmt.Errorf("task: expected ',' or ')' at offset %d", tok.pos)
			}
		}
		prog.Steps = append(prog.Steps, Step{Kind: kind, Tasks: ids})
		tok, err = lx.next()
		if err != nil {
			return nil, err
		}
		if tok.kind == tokComma {
			tok, err = lx.next()
			if err != nil {
				return nil, err
			}
		}
	}
	tok, err = lx.next()
	if err != nil {
		return nil, err
	}
	if tok.kind != tokEOF {
		return nil, fmt.Errorf("task: trailing input at offset %d", tok.pos)
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// Batch is one unit of concurrent dispatch in an execution plan: all tasks
// in a batch may start together; the next batch starts when the previous
// one completes.
type Batch []string

// Plan lowers a program to dispatch batches (the Fig. 8 schedule): each
// Par group is one batch; each Seq group contributes one batch per task.
func (p *Program) Plan() []Batch {
	var out []Batch
	for _, s := range p.Steps {
		if s.Kind == StepPar {
			out = append(out, append(Batch(nil), s.Tasks...))
			continue
		}
		for _, id := range s.Tasks {
			out = append(out, Batch{id})
		}
	}
	return out
}
