package task

import (
	"strings"
	"testing"
)

func TestParsePaperEq4(t *testing.T) {
	// The exact expression from the paper, including its stray comma.
	prog, err := ParseApp(Eq4Source)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(prog.Steps))
	}
	s := prog.Steps
	if s[0].Kind != StepSeq || len(s[0].Tasks) != 1 || s[0].Tasks[0] != "T2" {
		t.Errorf("step0 = %v", s[0])
	}
	if s[1].Kind != StepPar || strings.Join(s[1].Tasks, ",") != "T4,T1,T7" {
		t.Errorf("step1 = %v", s[1])
	}
	if s[2].Kind != StepSeq || strings.Join(s[2].Tasks, ",") != "T5,T10" {
		t.Errorf("step2 = %v", s[2])
	}
}

func TestParseWithoutAppKeyword(t *testing.T) {
	prog, err := ParseApp("{Par(A,B)}")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Steps) != 1 || prog.Steps[0].Kind != StepPar {
		t.Errorf("prog = %v", prog)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"App",
		"App{",
		"App{}",
		"App{Foo(T1)}",
		"App{Seq}",
		"App{Seq()}",
		"App{Seq(T1,)}",
		"App{Seq(T1)",
		"App{Seq(T1)} trailing",
		"App{Seq(T1 T2)}",
		"App{Seq(T1)}{",
		"App{Seq(T1,T1)}", // duplicate task use
		"App{Seq(T$)}",
	}
	for _, src := range cases {
		if _, err := ParseApp(src); err == nil {
			t.Errorf("ParseApp(%q) accepted", src)
		}
	}
}

func TestProgramStringRoundTrip(t *testing.T) {
	prog, err := ParseApp(Eq4Source)
	if err != nil {
		t.Fatal(err)
	}
	rendered := prog.String()
	if rendered != "App{Seq(T2), Par(T4,T1,T7), Seq(T5,T10)}" {
		t.Errorf("String = %q", rendered)
	}
	back, err := ParseApp(rendered)
	if err != nil {
		t.Fatalf("re-parse failed: %v", err)
	}
	if back.String() != rendered {
		t.Error("round trip unstable")
	}
}

func TestTaskIDsOrder(t *testing.T) {
	prog, _ := ParseApp(Eq4Source)
	ids := prog.TaskIDs()
	want := []string{"T2", "T4", "T1", "T7", "T5", "T10"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("ids[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
}

func TestPlanMatchesFig8(t *testing.T) {
	// Fig. 8: T2 first, then T4/T1/T7 concurrently, then T5, then T10.
	prog, _ := ParseApp(Eq4Source)
	plan := prog.Plan()
	if len(plan) != 4 {
		t.Fatalf("plan = %v, want 4 batches", plan)
	}
	if len(plan[0]) != 1 || plan[0][0] != "T2" {
		t.Errorf("batch0 = %v", plan[0])
	}
	if len(plan[1]) != 3 {
		t.Errorf("batch1 = %v, want the 3-task Par group", plan[1])
	}
	if len(plan[2]) != 1 || plan[2][0] != "T5" {
		t.Errorf("batch2 = %v", plan[2])
	}
	if len(plan[3]) != 1 || plan[3][0] != "T10" {
		t.Errorf("batch3 = %v", plan[3])
	}
}

func TestStepKindString(t *testing.T) {
	if StepSeq.String() != "Seq" || StepPar.String() != "Par" {
		t.Error("StepKind String broken")
	}
}

func TestValidateEmptyProgram(t *testing.T) {
	p := &Program{}
	if err := p.Validate(); err == nil {
		t.Error("empty program accepted")
	}
	p2 := &Program{Steps: []Step{{Kind: StepSeq}}}
	if err := p2.Validate(); err == nil {
		t.Error("empty group accepted")
	}
}
