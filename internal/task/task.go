// Package task implements the paper's application task model:
//
//	Task(TaskID, Data_in, Data_out, ExecReq, t_estimated)   (Eq. 2, Fig. 4)
//
// plus the application task graph (Fig. 7) and the Seq/Par application
// language of Eq. 3/4:
//
//	App{Seq(T2), Par(T4,T1,T7), Seq(T5,T10)}
package task

import (
	"fmt"
	"slices"
	"strings"

	"repro/internal/capability"
	"repro/internal/fabric"
	"repro/internal/hdl"
	"repro/internal/pe"
)

// DataIn identifies one input of a task: the producing task, the data item,
// and its size — exactly the (TaskID, DataID, DSize) triple of Fig. 4. An
// empty SourceTask means the data comes from the user's submission.
type DataIn struct {
	SourceTask string
	DataID     string
	SizeMB     float64
}

// DataOut identifies one output: (DataID, DSize).
type DataOut struct {
	DataID string
	SizeMB float64
}

// ExecReq is the execution requirement of a task (Fig. 4/6): the scenario
// it uses, the capability predicates the hosting processing element must
// satisfy, and the scenario-specific payload (soft-core choice, HDL design,
// or device-specific bitstream).
type ExecReq struct {
	// Scenario selects the use-case scenario and thereby the abstraction
	// level the task operates at.
	Scenario pe.Scenario
	// Requirements are the capability predicates ("NodeType parameters" in
	// Fig. 4) evaluated against candidate processing elements.
	Requirements capability.Requirements
	// SoftcoreISA names the required soft-core for PredeterminedHW tasks
	// (e.g. "rvex-vliw"); the provider maps it onto any fitting RPE.
	SoftcoreISA string
	// Design is the generic-HDL accelerator for UserDefinedHW tasks; the
	// provider synthesizes it for a device of its choosing.
	Design *hdl.Design
	// Bitstream is the user-supplied image for DeviceSpecificHW tasks; it
	// binds the task to one exact device.
	Bitstream *fabric.Bitstream
}

// Validate checks scenario/payload consistency.
func (e ExecReq) Validate() error {
	if err := e.Requirements.Validate(); err != nil {
		return err
	}
	switch e.Scenario {
	case pe.SoftwareOnly:
		if e.Design != nil || e.Bitstream != nil {
			return fmt.Errorf("task: software-only ExecReq carries hardware payloads")
		}
	case pe.PredeterminedHW:
		// Pre-determined architectures are soft-cores (named by ISA) or —
		// via the taxonomy's extensibility — GPUs (named by gpu.*
		// requirements).
		if e.SoftcoreISA == "" && e.Requirements.Kind() != capability.KindGPU {
			return fmt.Errorf("task: predetermined-hardware ExecReq names no soft-core ISA or GPU requirements")
		}
	case pe.UserDefinedHW:
		if e.Design == nil {
			return fmt.Errorf("task: user-defined-hardware ExecReq carries no HDL design")
		}
		if err := e.Design.Validate(); err != nil {
			return err
		}
	case pe.DeviceSpecificHW:
		if e.Bitstream == nil {
			return fmt.Errorf("task: device-specific ExecReq carries no bitstream")
		}
		if err := e.Bitstream.Validate(); err != nil {
			return err
		}
	default:
		return fmt.Errorf("task: unknown scenario %d", int(e.Scenario))
	}
	return nil
}

// Task is the paper's task tuple.
type Task struct {
	ID      string
	Inputs  []DataIn
	Outputs []DataOut
	ExecReq ExecReq
	// EstimatedSeconds is t_estimated: the completion-time estimate on a
	// processing element satisfying ExecReq.
	EstimatedSeconds float64
	// Work is the architecture-neutral demand used by the simulator to
	// derive actual execution times per processing element.
	Work pe.Work
}

// Validate checks the task tuple.
func (t *Task) Validate() error {
	if t == nil {
		return fmt.Errorf("task: nil task")
	}
	if t.ID == "" {
		return fmt.Errorf("task: task without an ID")
	}
	if err := t.ExecReq.Validate(); err != nil {
		return fmt.Errorf("task %s: %w", t.ID, err)
	}
	if t.EstimatedSeconds < 0 {
		return fmt.Errorf("task %s: negative t_estimated", t.ID)
	}
	if err := t.Work.Validate(); err != nil {
		return fmt.Errorf("task %s: %w", t.ID, err)
	}
	seen := map[string]bool{}
	for _, o := range t.Outputs {
		if o.DataID == "" {
			return fmt.Errorf("task %s: output without DataID", t.ID)
		}
		if o.SizeMB < 0 {
			return fmt.Errorf("task %s: output %s has negative size", t.ID, o.DataID)
		}
		if seen[o.DataID] {
			return fmt.Errorf("task %s: duplicate output %s", t.ID, o.DataID)
		}
		seen[o.DataID] = true
	}
	for _, in := range t.Inputs {
		if in.DataID == "" {
			return fmt.Errorf("task %s: input without DataID", t.ID)
		}
		if in.SizeMB < 0 {
			return fmt.Errorf("task %s: input %s has negative size", t.ID, in.DataID)
		}
	}
	return nil
}

// InputMB returns the total input volume.
func (t *Task) InputMB() float64 {
	var s float64
	for _, in := range t.Inputs {
		s += in.SizeMB
	}
	return s
}

// OutputMB returns the total output volume.
func (t *Task) OutputMB() float64 {
	var s float64
	for _, o := range t.Outputs {
		s += o.SizeMB
	}
	return s
}

// DependsOn returns the IDs of tasks whose outputs this task consumes, in
// input order with duplicates removed.
func (t *Task) DependsOn() []string {
	// Dedup by linear probe: dependency lists are a handful of entries,
	// and the dependency-free common case then allocates nothing at all.
	var out []string
	for _, in := range t.Inputs {
		if in.SourceTask == "" || slices.Contains(out, in.SourceTask) {
			continue
		}
		out = append(out, in.SourceTask)
	}
	return out
}

// String summarizes the tuple.
func (t *Task) String() string {
	return fmt.Sprintf("Task(%s, in=%d, out=%d, %s, t_est=%.3gs)",
		t.ID, len(t.Inputs), len(t.Outputs), t.ExecReq.Scenario, t.EstimatedSeconds)
}

// sanitizeID rejects IDs that would break the App language.
func sanitizeID(id string) error {
	if id == "" {
		return fmt.Errorf("task: empty ID")
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == '-':
		default:
			return fmt.Errorf("task: ID %q contains %q", id, r)
		}
	}
	return nil
}

// GPPOnly builds the requirements of a plain software task: a GPP with at
// least the given MIPS and RAM.
func GPPOnly(minMIPS float64, minRAMMB int) capability.Requirements {
	return capability.Requirements{}.
		Min(capability.ParamGPPMIPS, minMIPS).
		Min(capability.ParamGPPRAMMB, float64(minRAMMB))
}

// FPGAFamily builds the requirements of a family-portable hardware task: a
// device of the family with at least the given slices — the Task1/Task2
// pattern of the case study ("a Virtex-5 FPGA device with minimum of
// 18,707 slices").
func FPGAFamily(family string, minSlices int) capability.Requirements {
	return capability.Requirements{}.
		Eq(capability.ParamFPGAFamily, capability.Text(family)).
		Min(capability.ParamFPGASlices, float64(minSlices))
}

// FPGADevice builds the requirements of a device-specific task: one exact
// part — the Task3 pattern ("requires a particular device-specific
// hardware (Virtex XC6VLX365T)").
func FPGADevice(device string) capability.Requirements {
	return capability.Requirements{}.
		Eq(capability.ParamFPGADevice, capability.Text(strings.ToUpper(device)))
}
