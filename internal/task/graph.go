package task

import (
	"fmt"
	"io"
	"sort"
)

// smallGraphMax is the size up to which a Graph stores tasks in an
// inline array instead of a map. The many-task workload model submits
// one task per graph, so most graphs never pay for a map at all.
const smallGraphMax = 4

// Graph is an application task graph (Fig. 7): tasks linked by data
// dependencies derived from their DataIn.SourceTask references.
type Graph struct {
	smallN int
	small  [smallGraphMax]*Task // inline storage while tasks == nil
	tasks  map[string]*Task     // built on first growth past smallGraphMax
	order  []string             // insertion order, for deterministic iteration
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{}
}

// Add inserts a task. Duplicate IDs and invalid tasks are rejected.
func (g *Graph) Add(t *Task) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if err := sanitizeID(t.ID); err != nil {
		return err
	}
	if _, dup := g.get(t.ID); dup {
		return fmt.Errorf("task: duplicate task %s", t.ID)
	}
	switch {
	case g.tasks == nil && g.smallN < smallGraphMax:
		g.small[g.smallN] = t
		g.smallN++
	case g.tasks == nil:
		g.tasks = make(map[string]*Task, g.smallN+1)
		for _, st := range g.small[:g.smallN] {
			g.tasks[st.ID] = st
		}
		g.small, g.smallN = [smallGraphMax]*Task{}, 0
		g.tasks[t.ID] = t
	default:
		g.tasks[t.ID] = t
	}
	g.order = append(g.order, t.ID)
	return nil
}

// Len returns the task count.
func (g *Graph) Len() int { return len(g.order) }

// Get returns a task by ID.
func (g *Graph) Get(id string) (*Task, bool) {
	return g.get(id)
}

// get is the storage-aware lookup behind Get: a linear probe of the
// inline array while the graph is small, the map afterwards.
func (g *Graph) get(id string) (*Task, bool) {
	if g.tasks != nil {
		t, ok := g.tasks[id]
		return t, ok
	}
	for _, t := range g.small[:g.smallN] {
		if t.ID == id {
			return t, true
		}
	}
	return nil, false
}

// IDs returns task IDs in insertion order.
func (g *Graph) IDs() []string { return append([]string(nil), g.order...) }

// Order returns the task IDs in insertion order as a read-only view of
// the graph's internal slice: callers must neither mutate it nor hold it
// across Add. Submission-path loops use it to avoid IDs' per-call copy.
func (g *Graph) Order() []string { return g.order }

// Dependencies returns the producer IDs a task waits for.
func (g *Graph) Dependencies(id string) []string {
	t, ok := g.get(id)
	if !ok {
		return nil
	}
	return t.DependsOn()
}

// Dependents returns the IDs of tasks consuming a task's outputs, in
// insertion order.
func (g *Graph) Dependents(id string) []string {
	var out []string
	for _, tid := range g.order {
		t, _ := g.get(tid)
		for _, dep := range t.DependsOn() {
			if dep == id {
				out = append(out, tid)
				break
			}
		}
	}
	return out
}

// Validate checks referential integrity: every input's producer exists,
// produces the referenced DataID, and the graph is acyclic.
func (g *Graph) Validate() error {
	for _, id := range g.order {
		t, _ := g.get(id)
		for _, in := range t.Inputs {
			if in.SourceTask == "" {
				continue
			}
			src, ok := g.get(in.SourceTask)
			if !ok {
				return fmt.Errorf("task: %s consumes %s from missing task %s", id, in.DataID, in.SourceTask)
			}
			found := false
			for _, o := range src.Outputs {
				if o.DataID == in.DataID {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("task: %s consumes %s which %s does not produce", id, in.DataID, in.SourceTask)
			}
		}
	}
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// TopoOrder returns a topological ordering (Kahn's algorithm, insertion
// order as tie-break), or an error naming a task on a cycle.
func (g *Graph) TopoOrder() ([]string, error) {
	if len(g.order) <= 1 {
		// Single-task graphs (the many-task workload model submits one
		// task per graph) cannot cycle; skip the Kahn bookkeeping.
		return append([]string(nil), g.order...), nil
	}
	indeg := make(map[string]int, len(g.order))
	for _, id := range g.order {
		indeg[id] = 0
	}
	for _, id := range g.order {
		t, _ := g.get(id)
		for _, dep := range t.DependsOn() {
			if _, ok := g.get(dep); ok {
				indeg[id]++
			}
		}
	}
	var ready []string
	for _, id := range g.order {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	var out []string
	for len(ready) > 0 {
		id := ready[0]
		ready = ready[1:]
		out = append(out, id)
		for _, dep := range g.Dependents(id) {
			indeg[dep]--
			if indeg[dep] == 0 {
				ready = append(ready, dep)
			}
		}
	}
	if len(out) != len(g.order) {
		var stuck []string
		for id, d := range indeg {
			if d > 0 {
				stuck = append(stuck, id)
			}
		}
		sort.Strings(stuck)
		return nil, fmt.Errorf("task: dependency cycle involving %v", stuck)
	}
	return out, nil
}

// CriticalPath returns the longest path through the graph under the given
// per-task weight (typically t_estimated) and its total weight.
func (g *Graph) CriticalPath(weight func(*Task) float64) ([]string, float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, 0, err
	}
	dist := make(map[string]float64, len(order))
	prev := make(map[string]string, len(order))
	for _, id := range order {
		t, _ := g.get(id)
		w := weight(t)
		if w < 0 {
			return nil, 0, fmt.Errorf("task: negative weight for %s", id)
		}
		best := 0.0
		bestPrev := ""
		for _, dep := range t.DependsOn() {
			if d, ok := dist[dep]; ok && d > best {
				best = d
				bestPrev = dep
			}
		}
		dist[id] = best + w
		prev[id] = bestPrev
	}
	endID, endDist := "", -1.0
	for _, id := range order {
		if dist[id] > endDist {
			endID, endDist = id, dist[id]
		}
	}
	var path []string
	for id := endID; id != ""; id = prev[id] {
		path = append(path, id)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, endDist, nil
}

// WriteDOT renders the graph in Graphviz DOT form (the way to redraw
// Fig. 7), one edge per data dependency labelled with the DataID.
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "taskgraph"
	}
	if _, err := fmt.Fprintf(w, "digraph %s {\n  rankdir=LR;\n", name); err != nil {
		return err
	}
	for _, id := range g.order {
		t, _ := g.get(id)
		if _, err := fmt.Fprintf(w, "  %q [label=\"%s\\n%s\"];\n", id, id, t.ExecReq.Scenario); err != nil {
			return err
		}
	}
	for _, id := range g.order {
		t, _ := g.get(id)
		for _, in := range t.Inputs {
			if in.SourceTask == "" {
				continue
			}
			if _, err := fmt.Fprintf(w, "  %q -> %q [label=\"%s\"];\n", in.SourceTask, id, in.DataID); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// Roots returns tasks with no in-graph dependencies, in insertion order.
func (g *Graph) Roots() []string {
	var out []string
	for _, id := range g.order {
		hasDep := false
		t, _ := g.get(id)
		for _, dep := range t.DependsOn() {
			if _, ok := g.get(dep); ok {
				hasDep = true
				break
			}
		}
		if !hasDep {
			out = append(out, id)
		}
	}
	return out
}
