package task

import (
	"strings"
	"testing"

	"repro/internal/capability"
	"repro/internal/fabric"
	"repro/internal/hdl"
	"repro/internal/pe"
)

func validSoftwareTask(id string) *Task {
	return &Task{
		ID:               id,
		Outputs:          []DataOut{{DataID: "out", SizeMB: 1}},
		ExecReq:          ExecReq{Scenario: pe.SoftwareOnly, Requirements: GPPOnly(1000, 512)},
		EstimatedSeconds: 2,
		Work:             pe.Work{MInstructions: 2000, ParallelFraction: 0.5},
	}
}

func TestTaskValidate(t *testing.T) {
	if err := validSoftwareTask("T1").Validate(); err != nil {
		t.Errorf("valid task rejected: %v", err)
	}
	var nilTask *Task
	if err := nilTask.Validate(); err == nil {
		t.Error("nil task accepted")
	}
	noID := validSoftwareTask("")
	if err := noID.Validate(); err == nil {
		t.Error("empty ID accepted")
	}
	negT := validSoftwareTask("T1")
	negT.EstimatedSeconds = -1
	if err := negT.Validate(); err == nil {
		t.Error("negative t_estimated accepted")
	}
	badWork := validSoftwareTask("T1")
	badWork.Work = pe.Work{}
	if err := badWork.Validate(); err == nil {
		t.Error("invalid work accepted")
	}
	dupOut := validSoftwareTask("T1")
	dupOut.Outputs = append(dupOut.Outputs, DataOut{DataID: "out", SizeMB: 1})
	if err := dupOut.Validate(); err == nil {
		t.Error("duplicate output accepted")
	}
	badIn := validSoftwareTask("T1")
	badIn.Inputs = []DataIn{{DataID: "", SizeMB: 1}}
	if err := badIn.Validate(); err == nil {
		t.Error("input without DataID accepted")
	}
}

func TestExecReqScenarioConsistency(t *testing.T) {
	dev, _ := fabric.LookupDevice("XC6VLX365T")
	bs := fabric.FullBitstream("user-bs", "custom", dev, 40000)
	design, _ := hdl.LookupIP("fir64")

	cases := []struct {
		name string
		req  ExecReq
		ok   bool
	}{
		{"software ok", ExecReq{Scenario: pe.SoftwareOnly, Requirements: GPPOnly(1, 1)}, true},
		{"software with design", ExecReq{Scenario: pe.SoftwareOnly, Requirements: GPPOnly(1, 1), Design: design}, false},
		{"predetermined ok", ExecReq{Scenario: pe.PredeterminedHW, Requirements: capability.Requirements{}.Min(capability.ParamSoftIssueWidth, 4), SoftcoreISA: "rvex-vliw"}, true},
		{"predetermined missing isa", ExecReq{Scenario: pe.PredeterminedHW, Requirements: capability.Requirements{}.Min(capability.ParamSoftIssueWidth, 4)}, false},
		{"userdef ok", ExecReq{Scenario: pe.UserDefinedHW, Requirements: FPGAFamily("Virtex-5", 100), Design: design}, true},
		{"userdef missing design", ExecReq{Scenario: pe.UserDefinedHW, Requirements: FPGAFamily("Virtex-5", 100)}, false},
		{"device ok", ExecReq{Scenario: pe.DeviceSpecificHW, Requirements: FPGADevice("XC6VLX365T"), Bitstream: bs}, true},
		{"device missing bitstream", ExecReq{Scenario: pe.DeviceSpecificHW, Requirements: FPGADevice("XC6VLX365T")}, false},
		{"empty requirements", ExecReq{Scenario: pe.SoftwareOnly}, false},
		{"unknown scenario", ExecReq{Scenario: pe.Scenario(99), Requirements: GPPOnly(1, 1)}, true}, // validated below
	}
	for _, c := range cases {
		err := c.req.Validate()
		if c.name == "unknown scenario" {
			if err == nil {
				t.Error("unknown scenario accepted")
			}
			continue
		}
		if c.ok && err != nil {
			t.Errorf("%s: rejected: %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestRequirementBuilders(t *testing.T) {
	if GPPOnly(5000, 1024).Kind() != capability.KindGPP {
		t.Error("GPPOnly kind")
	}
	f := FPGAFamily("Virtex-5", 18707)
	if f.Kind() != capability.KindFPGA || len(f) != 2 {
		t.Error("FPGAFamily shape")
	}
	d := FPGADevice("xc6vlx365t")
	ok, err := d.SatisfiedBy(capability.Set{capability.ParamFPGADevice: capability.Text("XC6VLX365T")})
	if err != nil || !ok {
		t.Errorf("FPGADevice match: %v %v", ok, err)
	}
}

func TestDependsOnDeduplicates(t *testing.T) {
	tk := validSoftwareTask("T9")
	tk.Inputs = []DataIn{
		{SourceTask: "T1", DataID: "a", SizeMB: 1},
		{SourceTask: "T1", DataID: "b", SizeMB: 1},
		{SourceTask: "T2", DataID: "c", SizeMB: 1},
		{SourceTask: "", DataID: "user", SizeMB: 1},
	}
	deps := tk.DependsOn()
	if len(deps) != 2 || deps[0] != "T1" || deps[1] != "T2" {
		t.Errorf("DependsOn = %v", deps)
	}
	if tk.InputMB() != 4 {
		t.Errorf("InputMB = %v", tk.InputMB())
	}
	if tk.OutputMB() != 1 {
		t.Errorf("OutputMB = %v", tk.OutputMB())
	}
}

func TestTaskString(t *testing.T) {
	s := validSoftwareTask("T3").String()
	if !strings.Contains(s, "T3") || !strings.Contains(s, "Software-only") {
		t.Errorf("String = %q", s)
	}
}

func TestSanitizeID(t *testing.T) {
	for _, ok := range []string{"T0", "task-9", "a_b"} {
		if err := sanitizeID(ok); err != nil {
			t.Errorf("good ID %q rejected: %v", ok, err)
		}
	}
	for _, bad := range []string{"", "a b", "x(", "t,"} {
		if err := sanitizeID(bad); err == nil {
			t.Errorf("bad ID %q accepted", bad)
		}
	}
}
