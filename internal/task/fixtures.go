package task

import (
	"fmt"

	"repro/internal/pe"
)

// Eq4Source is the application expression of the paper's Eq. 4, executed in
// Fig. 8 — including the stray comma after the final Seq, reproduced
// verbatim from the paper.
const Eq4Source = "App{Seq(T2), Par(T4, T1, T7), Seq, (T5, T10)}"

// Fig7Graph builds the application task graph of Fig. 7: 18 tasks
// T0…T17. The paper specifies four dependency sets explicitly —
//
//	DataIN(T8)  ← DataOUT(T0, T2, T5)
//	DataIN(T11) ← DataOUT(T7, T9, T13)
//	DataIN(T13) ← DataOUT(T7, T8)
//	DataIN(T17) ← DataOUT(T7, T13)
//
// — which are reproduced exactly; the remaining edges complete the figure's
// connected DAG.
func Fig7Graph() *Graph {
	deps := map[int][]int{
		4:  {1},
		6:  {2},
		8:  {0, 2, 5}, // paper
		9:  {3, 6},
		10: {4, 5},
		11: {7, 9, 13}, // paper
		12: {10},
		13: {7, 8}, // paper
		14: {11},
		15: {12, 13},
		16: {14, 15},
		17: {7, 13}, // paper
	}
	g := NewGraph()
	for i := 0; i < 18; i++ {
		id := fmt.Sprintf("T%d", i)
		t := &Task{
			ID: id,
			Outputs: []DataOut{
				{DataID: fmt.Sprintf("d%d", i), SizeMB: 1},
			},
			ExecReq: ExecReq{
				Scenario:     pe.SoftwareOnly,
				Requirements: GPPOnly(1000, 512),
			},
			EstimatedSeconds: float64(1 + i%5),
			Work:             pe.Work{MInstructions: 1000 * float64(1+i%5), ParallelFraction: 0.5},
		}
		for _, d := range deps[i] {
			t.Inputs = append(t.Inputs, DataIn{
				SourceTask: fmt.Sprintf("T%d", d),
				DataID:     fmt.Sprintf("d%d", d),
				SizeMB:     1,
			})
		}
		if err := g.Add(t); err != nil {
			panic(err) // fixture is statically valid
		}
	}
	if err := g.Validate(); err != nil {
		panic(err)
	}
	return g
}
