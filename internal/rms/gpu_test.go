package rms

import (
	"testing"

	"repro/internal/capability"
	"repro/internal/pe"
	"repro/internal/task"
)

func gpuReq() task.ExecReq {
	return task.ExecReq{
		Scenario:     pe.PredeterminedHW,
		Requirements: capability.Requirements{}.Min(capability.ParamGPUShaderCores, 64),
	}
}

func TestGPUMatching(t *testing.T) {
	reg := NewRegistry()
	n := mkNode(t, "NodeA")
	n.AddGPP(xeon())
	if _, err := n.AddGPU(capability.GPUCaps{
		Model: "GT200", ShaderCores: 240, WarpSize: 32, SIMDWidth: 8, SharedKB: 16, MemFreqMHz: 1100,
	}, 1296); err != nil {
		t.Fatal(err)
	}
	reg.AddNode(n)
	mm := newMM(t, reg)
	cands, err := mm.Candidates(gpuReq())
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].Elem.Kind != capability.KindGPU {
		t.Fatalf("candidates = %+v", cands)
	}
	// Too-demanding requirements match nothing.
	big := task.ExecReq{
		Scenario:     pe.PredeterminedHW,
		Requirements: capability.Requirements{}.Min(capability.ParamGPUShaderCores, 10000),
	}
	cands, err = mm.Candidates(big)
	if err != nil || len(cands) != 0 {
		t.Errorf("oversized GPU demand matched: %+v, %v", cands, err)
	}
}

func TestGPUAllocationLifecycle(t *testing.T) {
	reg := NewRegistry()
	n := mkNode(t, "NodeA")
	gpuElem, err := n.AddGPU(capability.GPUCaps{
		Model: "GT200", ShaderCores: 240, WarpSize: 32, SIMDWidth: 8, SharedKB: 16, MemFreqMHz: 1100,
	}, 1296)
	if err != nil {
		t.Fatal(err)
	}
	reg.AddNode(n)
	mm := newMM(t, reg)
	req := gpuReq()
	cands, _ := mm.Candidates(req)
	est, err := mm.Estimate(cands[0], req, pe.Work{MInstructions: 100000, ParallelFraction: 0.95})
	if err != nil || est.ExecSeconds <= 0 || est.ReconfigDelay != 0 {
		t.Fatalf("estimate = %+v, %v", est, err)
	}
	lease, err := mm.Allocate(cands[0], req)
	if err != nil {
		t.Fatal(err)
	}
	if !gpuElem.Busy() {
		t.Error("GPU not held")
	}
	// While busy the GPU is not offered again.
	cands, _ = mm.Candidates(req)
	if len(cands) != 0 {
		t.Error("busy GPU still offered")
	}
	if err := lease.Release(); err != nil {
		t.Fatal(err)
	}
	if gpuElem.Busy() {
		t.Error("GPU not released")
	}
}

func TestGPUTaskValidation(t *testing.T) {
	if err := gpuReq().Validate(); err != nil {
		t.Errorf("GPU ExecReq rejected: %v", err)
	}
	// A predetermined task naming neither an ISA nor GPU requirements is
	// still invalid.
	bad := task.ExecReq{
		Scenario:     pe.PredeterminedHW,
		Requirements: capability.Requirements{}.Min(capability.ParamFPGASlices, 1),
	}
	if err := bad.Validate(); err == nil {
		t.Error("ISA-less FPGA-kind predetermined task accepted")
	}
}
