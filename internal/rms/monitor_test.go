package rms

import (
	"testing"
)

func TestMonitorLifecycle(t *testing.T) {
	m := NewMonitor()
	a, b := &Lease{}, &Lease{}
	if err := m.Grant(a, 5); err != nil {
		t.Fatal(err)
	}
	if err := m.Grant(a, 6); err == nil {
		t.Fatal("double grant accepted")
	}
	if err := m.Grant(nil, 5); err == nil {
		t.Fatal("nil grant accepted")
	}
	if err := m.Grant(b, 7); err != nil {
		t.Fatal(err)
	}
	if m.Outstanding() != 2 || !m.Active(a) || !m.Active(b) {
		t.Fatalf("outstanding=%d active(a)=%v active(b)=%v", m.Outstanding(), m.Active(a), m.Active(b))
	}
	if d, ok := m.Deadline(a); !ok || d != 5 {
		t.Fatalf("Deadline(a) = %v, %v", d, ok)
	}
	if !m.Renew(a, 10) {
		t.Fatal("renew of active lease failed")
	}
	if d, _ := m.Deadline(a); d != 10 {
		t.Fatalf("renewed deadline = %v, want 10", d)
	}
	if !m.Settle(a) || m.Settle(a) {
		t.Fatal("settle semantics broken")
	}
	if m.Renew(a, 20) {
		t.Fatal("renewed a settled lease")
	}
	if !m.Expire(b) || m.Expire(b) {
		t.Fatal("expire semantics broken")
	}
	if m.Outstanding() != 0 || m.Granted != 2 || m.Settled != 1 || m.Expired != 1 {
		t.Fatalf("counters: outstanding=%d granted=%d settled=%d expired=%d",
			m.Outstanding(), m.Granted, m.Settled, m.Expired)
	}
}

func TestMonitorOverdueAtIsDeterministic(t *testing.T) {
	m := NewMonitor()
	leases := make([]*Lease, 8)
	for i := range leases {
		leases[i] = &Lease{}
		if err := m.Grant(leases[i], 5); err != nil {
			t.Fatal(err)
		}
	}
	// Renew half past the probe time; the rest stay overdue.
	for i := 0; i < len(leases); i += 2 {
		m.Renew(leases[i], 100)
	}
	due := m.OverdueAt(50)
	if len(due) != 4 {
		t.Fatalf("overdue = %d, want 4", len(due))
	}
	for i, l := range due {
		if l != leases[2*i+1] {
			t.Fatalf("overdue[%d] not in grant order", i)
		}
	}
	if got := m.OverdueAt(2); len(got) != 0 {
		t.Fatalf("nothing should be overdue at t=2, got %d", len(got))
	}
}
