package rms

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// grant is one outstanding lease's monitoring record.
type grant struct {
	deadline sim.Time
	seq      int
}

// Monitor implements lease-based failure detection for the RMS: every
// live allocation is granted a lease with a deadline, the owner renews it
// while the node keeps answering, and a lease whose node went silent is
// expired — releasing the fabric region and, once the node drains, its
// registry entry (the engine performs those effects; the Monitor is the
// bookkeeping).
//
// A Monitor belongs to one engine and, like the simulator it follows, is
// driven from a single goroutine; it needs no locking.
type Monitor struct {
	leases map[*Lease]grant
	seq    int
	// Granted/Settled/Expired count lease lifecycle outcomes.
	Granted int
	Settled int
	Expired int
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{leases: make(map[*Lease]grant)}
}

// Grant registers a lease with its first renewal deadline.
func (m *Monitor) Grant(l *Lease, deadline sim.Time) error {
	if l == nil {
		return fmt.Errorf("rms: monitor granted a nil lease")
	}
	if _, ok := m.leases[l]; ok {
		return fmt.Errorf("rms: lease already monitored")
	}
	m.seq++
	m.leases[l] = grant{deadline: deadline, seq: m.seq}
	m.Granted++
	return nil
}

// Renew extends a monitored lease's deadline; false if the lease is not
// (or no longer) monitored.
func (m *Monitor) Renew(l *Lease, deadline sim.Time) bool {
	g, ok := m.leases[l]
	if !ok {
		return false
	}
	g.deadline = deadline
	m.leases[l] = g
	return true
}

// Active reports whether a lease is still monitored.
func (m *Monitor) Active(l *Lease) bool {
	_, ok := m.leases[l]
	return ok
}

// Deadline returns a monitored lease's current deadline.
func (m *Monitor) Deadline(l *Lease) (sim.Time, bool) {
	g, ok := m.leases[l]
	return g.deadline, ok
}

// Settle removes a lease that completed normally; false if unknown.
func (m *Monitor) Settle(l *Lease) bool {
	if _, ok := m.leases[l]; !ok {
		return false
	}
	delete(m.leases, l)
	m.Settled++
	return true
}

// Expire removes a lease whose node was detected dead; false if unknown.
func (m *Monitor) Expire(l *Lease) bool {
	if _, ok := m.leases[l]; !ok {
		return false
	}
	delete(m.leases, l)
	m.Expired++
	return true
}

// Outstanding returns the number of monitored leases.
func (m *Monitor) Outstanding() int { return len(m.leases) }

// OverdueAt returns the monitored leases whose deadline has passed at
// now, in grant order — a deterministic sweep for callers that poll
// instead of scheduling per-lease renewal events.
func (m *Monitor) OverdueAt(now sim.Time) []*Lease {
	type entry struct {
		l *Lease
		g grant
	}
	var due []entry
	for l, g := range m.leases {
		if g.deadline < now {
			due = append(due, entry{l, g})
		}
	}
	sort.Slice(due, func(i, j int) bool { return due[i].g.seq < due[j].g.seq })
	out := make([]*Lease, len(due))
	for i, e := range due {
		out[i] = e.l
	}
	return out
}
