package rms

import (
	"testing"

	"repro/internal/capability"
	"repro/internal/fabric"
	"repro/internal/hdl"
	"repro/internal/pe"
	"repro/internal/task"
)

// estimateRig builds a single hybrid node with one GPP, one GPU, and one
// large Virtex-5.
func estimateRig(t *testing.T) (*Matchmaker, *Registry) {
	t.Helper()
	reg := NewRegistry()
	n := mkNode(t, "NodeA")
	if _, err := n.AddGPP(xeon()); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddGPU(capability.GPUCaps{
		Model: "GT200", ShaderCores: 240, WarpSize: 32, SIMDWidth: 8, SharedKB: 16, MemFreqMHz: 1100,
	}, 1296); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddRPE("XC5VLX330T"); err != nil {
		t.Fatal(err)
	}
	reg.AddNode(n)
	return newMM(t, reg), reg
}

func sampleWork() pe.Work {
	return pe.Work{MInstructions: 1e5, ParallelFraction: 0.9, DataMB: 5, HWSpeedup: 50}
}

func TestEstimateGPP(t *testing.T) {
	mm, _ := estimateRig(t)
	req := task.ExecReq{Scenario: pe.SoftwareOnly, Requirements: task.GPPOnly(9000, 1024)}
	cands, err := mm.Candidates(req)
	if err != nil || len(cands) != 1 {
		t.Fatalf("candidates: %v %v", cands, err)
	}
	est, err := mm.Estimate(cands[0], req, sampleWork())
	if err != nil {
		t.Fatal(err)
	}
	if est.ExecSeconds <= 0 || est.ReconfigDelay != 0 || est.BitstreamMB != 0 || est.SynthesisSeconds != 0 {
		t.Errorf("GPP estimate = %+v", est)
	}
}

func TestEstimateUserDefinedColdThenWarm(t *testing.T) {
	mm, _ := estimateRig(t)
	design, _ := hdl.LookupIP("aes128")
	req := task.ExecReq{
		Scenario:     pe.UserDefinedHW,
		Requirements: task.FPGAFamily("Virtex-5", 100),
		Design:       design,
	}
	cands, _ := mm.Candidates(req)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d", len(cands))
	}
	// Cold: synthesis is uncached, so the estimate charges CAD time and a
	// reconfiguration with bitstream traffic.
	est, err := mm.Estimate(cands[0], req, sampleWork())
	if err != nil {
		t.Fatal(err)
	}
	if est.SynthesisSeconds <= 0 || est.ReconfigDelay <= 0 || est.BitstreamMB <= 0 {
		t.Errorf("cold estimate = %+v", est)
	}
	// Warm the library: the estimate drops the CAD charge, and after an
	// actual allocation+release the reconfiguration charge disappears too.
	dev := cands[0].Elem.Fabric.Device()
	if err := mm.PrewarmSynthesis(design, dev); err != nil {
		t.Fatal(err)
	}
	est, err = mm.Estimate(cands[0], req, sampleWork())
	if err != nil {
		t.Fatal(err)
	}
	if est.SynthesisSeconds != 0 {
		t.Errorf("warm estimate still charges synthesis: %+v", est)
	}
	lease, err := mm.Allocate(cands[0], req)
	if err != nil {
		t.Fatal(err)
	}
	lease.Release()
	est, err = mm.Estimate(cands[0], req, sampleWork())
	if err != nil {
		t.Fatal(err)
	}
	if est.ReconfigDelay != 0 || est.BitstreamMB != 0 {
		t.Errorf("resident estimate still charges reconfiguration: %+v", est)
	}
}

func TestEstimateDeviceSpecificAndGPU(t *testing.T) {
	mm, _ := estimateRig(t)
	dev, _ := fabric.LookupDevice("XC5VLX330T")
	bs := fabric.FullBitstream("user", "custom", dev, 40000)
	dsReq := task.ExecReq{
		Scenario:     pe.DeviceSpecificHW,
		Requirements: task.FPGADevice("XC5VLX330T"),
		Bitstream:    bs,
	}
	cands, _ := mm.Candidates(dsReq)
	if len(cands) != 1 {
		t.Fatalf("device-specific candidates = %d", len(cands))
	}
	est, err := mm.Estimate(cands[0], dsReq, sampleWork())
	if err != nil {
		t.Fatal(err)
	}
	if est.ExecSeconds <= 0 || est.ReconfigDelay <= 0 {
		t.Errorf("device-specific estimate = %+v", est)
	}

	gpuRequest := gpuReq()
	gpuCands, _ := mm.Candidates(gpuRequest)
	if len(gpuCands) != 1 {
		t.Fatalf("gpu candidates = %d", len(gpuCands))
	}
	gpuEst, err := mm.Estimate(gpuCands[0], gpuRequest, sampleWork())
	if err != nil {
		t.Fatal(err)
	}
	if gpuEst.ExecSeconds <= 0 || gpuEst.ReconfigDelay != 0 {
		t.Errorf("gpu estimate = %+v", gpuEst)
	}
}

func TestEstimateSoftcore(t *testing.T) {
	mm, _ := estimateRig(t)
	req := task.ExecReq{
		Scenario:     pe.PredeterminedHW,
		SoftcoreISA:  "rvex-vliw",
		Requirements: capability.Requirements{}.Min(capability.ParamSoftIssueWidth, 4),
	}
	cands, _ := mm.Candidates(req)
	if len(cands) != 1 {
		t.Fatalf("softcore candidates = %d", len(cands))
	}
	est, err := mm.Estimate(cands[0], req, sampleWork())
	if err != nil {
		t.Fatal(err)
	}
	if est.ExecSeconds <= 0 || est.ReconfigDelay <= 0 || est.BitstreamMB <= 0 {
		t.Errorf("softcore estimate = %+v", est)
	}
}

func TestEstimateRejectsInvalidWork(t *testing.T) {
	mm, _ := estimateRig(t)
	req := task.ExecReq{Scenario: pe.SoftwareOnly, Requirements: task.GPPOnly(9000, 1024)}
	cands, _ := mm.Candidates(req)
	if _, err := mm.Estimate(cands[0], req, pe.Work{}); err == nil {
		t.Error("invalid work accepted")
	}
}

func TestPrewarmValidation(t *testing.T) {
	reg := NewRegistry()
	noCAD, _ := NewMatchmaker(reg, nil)
	design, _ := hdl.LookupIP("fir64")
	dev, _ := fabric.LookupDevice("XC5VLX110T")
	if err := noCAD.PrewarmSynthesis(design, dev); err == nil {
		t.Error("prewarm without CAD tools accepted")
	}
	withCAD := newMM(t, reg)
	v6, _ := fabric.LookupDevice("XC6VLX365T")
	tcNarrow, _ := hdl.NewToolchain("ise", "Virtex-5")
	narrow, _ := NewMatchmaker(reg, tcNarrow)
	if err := narrow.PrewarmSynthesis(design, v6); err == nil {
		t.Error("prewarm for unsupported family accepted")
	}
	if err := withCAD.PrewarmSynthesis(design, dev); err != nil {
		t.Errorf("valid prewarm failed: %v", err)
	}
}

func TestUserBitstreamEstimatorKind(t *testing.T) {
	var e userBitstreamEstimator
	if e.Kind() != capability.KindFPGA {
		t.Error("estimator kind")
	}
	// Missing speedup defaults to reference speed, never faster.
	slow, err := e.EstimateSeconds(pe.Work{MInstructions: 40000, ParallelFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	if slow != 1 {
		t.Errorf("speedup-less task = %vs, want 1s at reference rate", slow)
	}
}
