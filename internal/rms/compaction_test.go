package rms

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/hdl"
	"repro/internal/pe"
	"repro/internal/task"
)

// fragmentedFabric builds a checkerboard of idle configurations on one RPE
// so the next large placement requires defragmentation.
func fragmentedFabric(t *testing.T, mm *Matchmaker, reg *Registry) *fabric.Fabric {
	t.Helper()
	n := mkNode(t, "NodeA")
	elem, err := n.AddRPE("XC5VLX110T")
	if err != nil {
		t.Fatal(err)
	}
	reg.AddNode(n)
	f := elem.Fabric
	dev := f.Device()
	var regions []*fabric.Region
	for i := 0; i < 4; i++ {
		bs := fabric.PartialBitstream(string(rune('a'+i)), "k", dev, 4000)
		r, _, err := f.ConfigurePartial(bs)
		if err != nil {
			t.Fatal(err)
		}
		regions = append(regions, r)
	}
	// Free slots 0 and 2 → 9,280 free, largest run 4,000.
	f.Evict(regions[0])
	f.Evict(regions[2])
	return f
}

func TestAllocationCompactsBeforeEvicting(t *testing.T) {
	reg := NewRegistry()
	mm := newMM(t, reg)
	f := fragmentedFabric(t, mm, reg)

	// fft1024 needs ≈8.4k slices: only a compacted fabric fits it without
	// evicting the resident configurations.
	design, err := hdl.LookupIP("fft1024")
	if err != nil {
		t.Fatal(err)
	}
	req := task.ExecReq{
		Scenario:     pe.UserDefinedHW,
		Requirements: task.FPGAFamily("Virtex-5", 100),
		Design:       design,
	}
	cands, err := mm.Candidates(req)
	if err != nil || len(cands) != 1 {
		t.Fatalf("candidates: %v %v", cands, err)
	}
	lease, err := mm.Allocate(cands[0], req)
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()
	if lease.CompactionMoves == 0 || lease.CompactionDelay <= 0 {
		t.Errorf("expected compaction: %+v", lease)
	}
	// Both resident configurations survived.
	st := f.State()
	if len(st.Configurations) != 3 { // b, d, and the new fft region
		t.Errorf("configurations after compaction = %v", st.Configurations)
	}
}

func TestDisableCompactionFallsBackToEviction(t *testing.T) {
	reg := NewRegistry()
	mm := newMM(t, reg)
	mm.DisableCompaction = true
	f := fragmentedFabric(t, mm, reg)

	design, err := hdl.LookupIP("fft1024")
	if err != nil {
		t.Fatal(err)
	}
	req := task.ExecReq{
		Scenario:     pe.UserDefinedHW,
		Requirements: task.FPGAFamily("Virtex-5", 100),
		Design:       design,
	}
	cands, _ := mm.Candidates(req)
	lease, err := mm.Allocate(cands[0], req)
	if err != nil {
		t.Fatal(err)
	}
	defer lease.Release()
	if lease.CompactionMoves != 0 {
		t.Error("compaction ran despite being disabled")
	}
	// Eviction destroyed at least one resident configuration.
	st := f.State()
	if len(st.Configurations) >= 3 {
		t.Errorf("expected evictions, configurations = %v", st.Configurations)
	}
}
