package rms

import (
	"fmt"

	"repro/internal/capability"
	"repro/internal/fabric"
	"repro/internal/hdl"
	"repro/internal/pe"
	"repro/internal/sim"
	"repro/internal/task"
)

// Lease binds a task to a processing element until released. Creating a
// lease performs whatever the scenario demands: acquiring a GPP core,
// reusing a resident configuration, or reconfiguring fabric (whose delay
// the lease reports so the simulator can charge it).
type Lease struct {
	Cand   Candidate
	Region *fabric.Region
	// Estimator predicts task execution time on the leased element.
	Estimator pe.Estimator
	// ReconfigDelay is the configuration-port time spent to set the
	// element up (zero on reuse or GPPs).
	ReconfigDelay sim.Time
	// BitstreamMB is the configuration image size shipped to the node when
	// a reconfiguration happened (zero on reuse or GPPs).
	BitstreamMB float64
	// CompactionDelay is configuration-port time spent defragmenting the
	// fabric (rewriting displaced idle regions) to make the placement fit.
	CompactionDelay sim.Time
	// CompactionMoves counts regions rewritten by that defragmentation.
	CompactionMoves int
	// SynthesisSeconds is CAD tool time consumed (first synthesis of a
	// user-defined design per device; zero afterwards thanks to caching).
	SynthesisSeconds float64
	released         bool
}

// Release returns the leased capacity. Fabric configurations stay resident
// so later tasks can reuse them without reconfiguration.
func (l *Lease) Release() error {
	if l.released {
		return fmt.Errorf("rms: lease already released")
	}
	l.released = true
	if l.Region != nil {
		return l.Cand.Elem.Fabric.ReleaseRegion(l.Region)
	}
	switch {
	case l.Cand.Elem.GPP != nil:
		return l.Cand.Elem.ReleaseCore()
	case l.Cand.Elem.GPU != nil:
		return l.Cand.Elem.ReleaseGPU()
	}
	return fmt.Errorf("rms: lease over unknown element kind")
}

// userBitstreamEstimator times device-specific hardware tasks from the
// task's own declared hardware speedup (Work.HWSpeedup): the user
// characterized their bitstream, the provider has no model of it. The
// parallel fraction rides the user's hardware at HWSpeedup over the
// 1000-MIPS reference; a missing speedup means reference speed.
type userBitstreamEstimator struct{}

// EstimateSeconds implements pe.Estimator.
func (userBitstreamEstimator) EstimateSeconds(w pe.Work) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	speedup := w.HWSpeedup
	if speedup < 1 {
		speedup = 1
	}
	serial := w.MInstructions * (1 - w.ParallelFraction) / pe.ReferenceMIPS
	parallel := w.MInstructions * w.ParallelFraction / (pe.ReferenceMIPS * speedup)
	return serial + parallel, nil
}

// Kind implements pe.Estimator.
func (userBitstreamEstimator) Kind() capability.Kind { return capability.KindFPGA }

// CostEstimate is a read-only prediction of what running a task on a
// candidate would cost, used by scheduling strategies to compare options
// before committing.
type CostEstimate struct {
	// ExecSeconds is the predicted execution time.
	ExecSeconds float64
	// ReconfigDelay is the configuration-port time (zero on reuse/GPPs).
	ReconfigDelay sim.Time
	// BitstreamMB is the configuration image size that must travel over
	// the network when reconfiguration is needed.
	BitstreamMB float64
	// SynthesisSeconds is the CAD time a first-time synthesis would cost.
	SynthesisSeconds float64
}

// Estimate predicts the cost of placing work w with requirements req on
// candidate c without mutating any node state.
func (m *Matchmaker) Estimate(c Candidate, req task.ExecReq, w pe.Work) (CostEstimate, error) {
	var out CostEstimate
	switch {
	case c.Elem.GPP != nil:
		exec, err := c.Elem.GPP.EstimateSeconds(w)
		if err != nil {
			return out, err
		}
		out.ExecSeconds = exec
		return out, nil
	case c.Elem.GPU != nil:
		exec, err := c.Elem.GPU.EstimateSeconds(w)
		if err != nil {
			return out, err
		}
		out.ExecSeconds = exec
		return out, nil
	case c.Elem.Fabric == nil:
		return out, fmt.Errorf("rms: candidate element %s has no backing model", c.Elem.ID)
	}

	f := c.Elem.Fabric
	dev := f.Device()
	var est pe.Estimator
	var bsID string
	var bsBytes int64
	switch {
	case c.Core != nil:
		cfg := c.Core.Config()
		bsID = m.bitstreamID(m.coreDesign(c.Core), dev.FPGACaps.Device, dev.PartialRecon)
		if dev.PartialRecon {
			bsBytes = fabric.PartialSizeBytes(cfg.Slices())
		} else {
			bsBytes = dev.BitstreamBytes
		}
		est = c.Core
	case req.Scenario == pe.UserDefinedHW:
		if m.tc == nil {
			return out, fmt.Errorf("rms: provider has no CAD toolchain")
		}
		key := m.bitstreamID(req.Design.Name, dev.FPGACaps.Device, dev.PartialRecon)
		m.synthMu.RLock()
		res, cached := m.synthCache[key]
		m.synthMu.RUnlock()
		if !cached {
			var err error
			res, err = m.tc.Synthesize(req.Design, dev, dev.PartialRecon)
			if err != nil {
				return out, err
			}
			out.SynthesisSeconds = res.ToolSeconds
		}
		bsID = res.Bitstream.ID
		bsBytes = res.Bitstream.SizeBytes
		est = res.Accelerate(req.Design)
	case req.Scenario == pe.DeviceSpecificHW:
		bsID = req.Bitstream.ID
		bsBytes = req.Bitstream.SizeBytes
		est = userBitstreamEstimator{}
	default:
		return out, fmt.Errorf("rms: scenario %v cannot run on fabric without a core or design", req.Scenario)
	}

	exec, err := est.EstimateSeconds(w)
	if err != nil {
		return out, err
	}
	out.ExecSeconds = exec
	if f.FindLoaded(bsID) == nil {
		out.ReconfigDelay = fabric.ConfigDelay(bsBytes, dev.ReconfigMBps)
		out.BitstreamMB = float64(bsBytes) / 1e6
	}
	return out, nil
}

// Allocate turns a candidate into a live lease. It may evict idle resident
// configurations to make room and reports reconfiguration/synthesis costs.
func (m *Matchmaker) Allocate(c Candidate, req task.ExecReq) (*Lease, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	switch {
	case c.Elem.GPP != nil:
		if err := c.Elem.AcquireCore(); err != nil {
			return nil, err
		}
		return &Lease{Cand: c, Estimator: c.Elem.GPP}, nil
	case c.Elem.GPU != nil:
		if err := c.Elem.AcquireGPU(); err != nil {
			return nil, err
		}
		return &Lease{Cand: c, Estimator: c.Elem.GPU}, nil
	case c.Elem.Fabric != nil:
		return m.allocateFabric(c, req)
	}
	return nil, fmt.Errorf("rms: candidate element %s has no backing model", c.Elem.ID)
}

func (m *Matchmaker) allocateFabric(c Candidate, req task.ExecReq) (*Lease, error) {
	f := c.Elem.Fabric
	dev := f.Device()
	lease := &Lease{Cand: c}

	var bs *fabric.Bitstream
	switch {
	case c.Core != nil:
		cfg := c.Core.Config()
		id := m.bitstreamID(m.coreDesign(c.Core), dev.FPGACaps.Device, dev.PartialRecon)
		if dev.PartialRecon {
			var err error
			bs, err = c.Core.Bitstream(id, dev)
			if err != nil {
				return nil, err
			}
		} else {
			bs = fabric.FullBitstream(id, "softcore-"+cfg.Caps.ISA, dev, cfg.Slices())
		}
		lease.Estimator = c.Core
	case req.Scenario == pe.UserDefinedHW:
		if m.tc == nil {
			return nil, fmt.Errorf("rms: provider has no CAD toolchain for user-defined hardware")
		}
		res, synthSeconds, err := m.synthesize(req.Design, dev)
		if err != nil {
			return nil, err
		}
		bs = res.Bitstream
		lease.SynthesisSeconds = synthSeconds
		lease.Estimator = res.Accelerate(req.Design)
	case req.Scenario == pe.DeviceSpecificHW:
		bs = req.Bitstream
		lease.Estimator = userBitstreamEstimator{}
	default:
		return nil, fmt.Errorf("rms: scenario %v cannot run on fabric without a core or design", req.Scenario)
	}

	// Reuse a resident idle configuration when possible.
	if r := f.FindLoaded(bs.ID); r != nil {
		if err := f.Acquire(r); err != nil {
			return nil, err
		}
		lease.Region = r
		return lease, nil
	}

	region, delay, compaction, err := m.configure(f, bs)
	if err != nil {
		return nil, err
	}
	if err := f.Acquire(region); err != nil {
		return nil, err
	}
	lease.Region = region
	lease.ReconfigDelay = delay
	lease.CompactionDelay = compaction.delay
	lease.CompactionMoves = compaction.moves
	lease.BitstreamMB = float64(bs.SizeBytes) / 1e6
	return lease, nil
}

// PrewarmSynthesis synthesizes a design for a device into the provider's
// bitstream library ahead of time, so later allocations pay no CAD time.
// This models the paper's OpenCores scenario, where the provider keeps
// ready bitstreams for popular library IPs.
func (m *Matchmaker) PrewarmSynthesis(d *hdl.Design, dev fabric.Device) error {
	if m.tc == nil {
		return fmt.Errorf("rms: provider has no CAD toolchain")
	}
	if !m.tc.Supports(dev.Family) {
		return fmt.Errorf("rms: toolchain does not support %s", dev.Family)
	}
	_, _, err := m.synthesize(d, dev)
	return err
}

// synthesize runs (or replays from cache) a synthesis for design×device.
func (m *Matchmaker) synthesize(d *hdl.Design, dev fabric.Device) (*hdl.SynthesisResult, float64, error) {
	key := m.bitstreamID(d.Name, dev.FPGACaps.Device, dev.PartialRecon)
	m.synthMu.RLock()
	res, ok := m.synthCache[key]
	m.synthMu.RUnlock()
	if ok {
		return res, 0, nil
	}
	res, err := m.tc.Synthesize(d, dev, dev.PartialRecon)
	if err != nil {
		return nil, 0, err
	}
	m.synthMu.Lock()
	defer m.synthMu.Unlock()
	if m.synthCache == nil { // zero-value Matchmaker
		m.synthCache = make(map[string]*hdl.SynthesisResult)
	}
	// A concurrent caller may have synthesized the same pair while we were;
	// keep the first result so every reader sees one canonical bitstream,
	// and report zero tool time for the duplicate (the cost was already
	// charged once).
	if prior, ok := m.synthCache[key]; ok {
		return prior, 0, nil
	}
	m.synthCache[key] = res
	return res, res.ToolSeconds, nil
}

// compactionCost reports defragmentation work done during configure.
type compactionCost struct {
	delay sim.Time
	moves int
}

// configure loads a bitstream. When a partial placement fails it first
// compacts the fabric (preserving loaded configurations), then falls back
// to evicting idle configurations oldest-first.
func (m *Matchmaker) configure(f *fabric.Fabric, bs *fabric.Bitstream) (*fabric.Region, sim.Time, compactionCost, error) {
	var compaction compactionCost
	if !bs.Partial {
		// Full reconfiguration wipes everything; it fails while any
		// region is busy, which is the correct semantics.
		region, delay, err := f.ConfigureFull(bs)
		return region, delay, compaction, err
	}
	compacted := false
	for {
		region, delay, err := f.ConfigurePartial(bs)
		if err == nil {
			return region, delay, compaction, nil
		}
		// First resort: defragment, keeping configurations resident.
		if !compacted && !m.DisableCompaction {
			compacted = true
			moved, delay, cErr := f.Compact()
			if cErr == nil && moved > 0 {
				compaction.delay += delay
				compaction.moves += moved
				continue
			}
		}
		// Second resort: evict the oldest idle region.
		evicted := false
		for _, r := range f.Regions() {
			if !r.Busy {
				if evictErr := f.Evict(r); evictErr == nil {
					evicted = true
					break
				}
			}
		}
		if !evicted {
			return nil, 0, compaction, fmt.Errorf("rms: cannot place %d slices on %s: %w", bs.Slices, f.Device().FPGACaps.Device, err)
		}
	}
}
