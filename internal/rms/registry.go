// Package rms implements the paper's Resource Management System: the node
// registry with dynamic add/remove and status updates, the matchmaker that
// evaluates task execution requirements against node capabilities (the
// engine behind Table II), and allocation leases that bind a task to a
// processing element — reconfiguring fabric on the way when needed.
package rms

import (
	"fmt"
	"sync"

	"repro/internal/node"
)

// Registry tracks the nodes of a grid. It is safe for concurrent use: the
// paper's RMS "updates the statuses of all nodes" while submissions arrive.
type Registry struct {
	mu    sync.RWMutex
	nodes []*node.Node          // guarded by mu
	byID  map[string]*node.Node // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*node.Node)}
}

// AddNode registers a node; duplicate IDs are rejected. Nodes can join at
// any time — the framework is "adaptive in adding/removing resources at
// runtime".
func (r *Registry) AddNode(n *node.Node) error {
	if n == nil {
		return fmt.Errorf("rms: nil node")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byID[n.ID]; dup {
		return fmt.Errorf("rms: duplicate node %s", n.ID)
	}
	r.nodes = append(r.nodes, n)
	r.byID[n.ID] = n
	return nil
}

// RemoveNode detaches a node. Nodes with busy elements are refused, so
// running tasks are never orphaned.
func (r *Registry) RemoveNode(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, ok := r.byID[id]
	if !ok {
		return fmt.Errorf("rms: unknown node %s", id)
	}
	for _, e := range n.Elements() {
		if e.Busy() {
			return fmt.Errorf("rms: node %s element %s is busy", id, e.ID)
		}
	}
	delete(r.byID, id)
	for i, cand := range r.nodes {
		if cand == n {
			r.nodes = append(r.nodes[:i], r.nodes[i+1:]...)
			break
		}
	}
	return nil
}

// Node returns a registered node by ID.
func (r *Registry) Node(id string) (*node.Node, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n, ok := r.byID[id]
	return n, ok
}

// Nodes returns the registered nodes in registration order.
func (r *Registry) Nodes() []*node.Node {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*node.Node(nil), r.nodes...)
}

// AppendTo appends the registered nodes in registration order to buf and
// returns the extended slice. Hot paths that scan the grid once per
// dispatch reuse one scratch buffer through this instead of paying
// Nodes' fresh copy every call.
func (r *Registry) AppendTo(buf []*node.Node) []*node.Node {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append(buf, r.nodes...)
}

// Len returns the node count.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Status returns a snapshot of every node — the RMS's status-update view.
func (r *Registry) Status() []node.Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]node.Snapshot, 0, len(r.nodes))
	for _, n := range r.nodes {
		out = append(out, n.Snapshot())
	}
	return out
}
