package rms

import (
	"strings"
	"testing"

	"repro/internal/capability"
	"repro/internal/fabric"
	"repro/internal/hdl"
	"repro/internal/node"
	"repro/internal/pe"
	"repro/internal/task"
)

func mkNode(t *testing.T, id string) *node.Node {
	t.Helper()
	n, err := node.New(id)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func xeon() capability.GPPCaps {
	return capability.GPPCaps{CPUType: "Xeon", MIPS: 42000, OS: "Linux", RAMMB: 16384, Cores: 4}
}

func TestRegistryAddRemove(t *testing.T) {
	reg := NewRegistry()
	if err := reg.AddNode(nil); err == nil {
		t.Error("nil node accepted")
	}
	n := mkNode(t, "NodeA")
	if err := reg.AddNode(n); err != nil {
		t.Fatal(err)
	}
	if err := reg.AddNode(mkNode(t, "NodeA")); err == nil {
		t.Error("duplicate node accepted")
	}
	if reg.Len() != 1 {
		t.Errorf("Len = %d", reg.Len())
	}
	if _, ok := reg.Node("NodeA"); !ok {
		t.Error("lookup failed")
	}
	if err := reg.RemoveNode("NodeA"); err != nil {
		t.Fatal(err)
	}
	if err := reg.RemoveNode("NodeA"); err == nil {
		t.Error("double remove accepted")
	}
}

func TestRegistryRemoveBusyNodeRefused(t *testing.T) {
	reg := NewRegistry()
	n := mkNode(t, "NodeA")
	g, _ := n.AddGPP(xeon())
	reg.AddNode(n)
	g.AcquireCore()
	if err := reg.RemoveNode("NodeA"); err == nil {
		t.Error("node with busy element removed")
	}
	g.ReleaseCore()
	if err := reg.RemoveNode("NodeA"); err != nil {
		t.Errorf("idle node not removable: %v", err)
	}
}

func TestRegistryStatus(t *testing.T) {
	reg := NewRegistry()
	n := mkNode(t, "NodeA")
	n.AddGPP(xeon())
	reg.AddNode(n)
	st := reg.Status()
	if len(st) != 1 || st[0].NodeID != "NodeA" {
		t.Errorf("status = %+v", st)
	}
}

func newMM(t *testing.T, reg *Registry) *Matchmaker {
	t.Helper()
	tc, err := hdl.NewToolchain("ise", "Virtex-4", "Virtex-5", "Virtex-6")
	if err != nil {
		t.Fatal(err)
	}
	mm, err := NewMatchmaker(reg, tc)
	if err != nil {
		t.Fatal(err)
	}
	return mm
}

func TestNewMatchmakerValidation(t *testing.T) {
	if _, err := NewMatchmaker(nil, nil); err == nil {
		t.Error("nil registry accepted")
	}
	if _, err := NewMatchmaker(NewRegistry(), nil); err != nil {
		t.Errorf("nil toolchain should be allowed (provider without CAD tools): %v", err)
	}
}

func TestSoftwareMatchingPrefersGPPs(t *testing.T) {
	reg := NewRegistry()
	n := mkNode(t, "NodeA")
	n.AddGPP(xeon())
	n.AddRPE("XC5VLX330T")
	reg.AddNode(n)
	mm := newMM(t, reg)
	req := task.ExecReq{Scenario: pe.SoftwareOnly, Requirements: task.GPPOnly(9000, 1024)}
	cands, err := mm.Candidates(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].Elem.ID != "GPP0" || cands[0].Fallback {
		t.Errorf("candidates = %+v", cands)
	}
	if cands[0].Label() != "GPP0 <-> NodeA" {
		t.Errorf("label = %s", cands[0].Label())
	}
}

func TestSoftwareFallbackToSoftcore(t *testing.T) {
	reg := NewRegistry()
	n := mkNode(t, "NodeA")
	g, _ := n.AddGPP(xeon())
	n.AddRPE("XC5VLX330T")
	reg.AddNode(n)
	mm := newMM(t, reg)
	// Saturate the GPP.
	for i := 0; i < 4; i++ {
		g.AcquireCore()
	}
	// Low MIPS demand a soft-core can meet.
	req := task.ExecReq{Scenario: pe.SoftwareOnly, Requirements: task.GPPOnly(100, 16)}
	cands, err := mm.Candidates(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || !cands[0].Fallback || cands[0].Core == nil {
		t.Fatalf("fallback candidates = %+v", cands)
	}
	if cands[0].Elem.ID != "RPE0" {
		t.Errorf("fallback element = %s", cands[0].Elem.ID)
	}
	// A demand beyond any soft-core yields nothing.
	req = task.ExecReq{Scenario: pe.SoftwareOnly, Requirements: task.GPPOnly(40000, 16)}
	cands, err = mm.Candidates(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Errorf("impossible fallback produced %+v", cands)
	}
}

func TestPredeterminedMatching(t *testing.T) {
	reg := NewRegistry()
	n := mkNode(t, "NodeA")
	n.AddRPE("XC5VLX110T")
	reg.AddNode(n)
	mm := newMM(t, reg)
	req := task.ExecReq{
		Scenario:     pe.PredeterminedHW,
		SoftcoreISA:  "rvex-vliw",
		Requirements: capability.Requirements{}.Min(capability.ParamSoftIssueWidth, 4),
	}
	cands, err := mm.Candidates(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].Core == nil {
		t.Fatalf("candidates = %+v", cands)
	}
	if cands[0].Core.Config().Caps.IssueWidth < 4 {
		t.Errorf("selected core issue width = %d", cands[0].Core.Config().Caps.IssueWidth)
	}
	// Unknown ISA matches nothing.
	req.SoftcoreISA = "nios"
	cands, _ = mm.Candidates(req)
	if len(cands) != 0 {
		t.Error("unknown ISA matched")
	}
}

func TestUserDefinedNeedsToolchain(t *testing.T) {
	reg := NewRegistry()
	n := mkNode(t, "NodeA")
	n.AddRPE("XC5VLX330T")
	reg.AddNode(n)
	noCAD, err := NewMatchmaker(reg, nil)
	if err != nil {
		t.Fatal(err)
	}
	design, _ := hdl.LookupIP("fir64")
	req := task.ExecReq{
		Scenario:     pe.UserDefinedHW,
		Requirements: task.FPGAFamily("Virtex-5", 100),
		Design:       design,
	}
	cands, err := noCAD.Candidates(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Error("provider without CAD tools matched a user-defined-HW task (Section III-B2)")
	}
	withCAD := newMM(t, reg)
	cands, err = withCAD.Candidates(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 {
		t.Errorf("CAD provider candidates = %+v", cands)
	}
}

func TestDeviceSpecificMatchesExactPartOnly(t *testing.T) {
	reg := NewRegistry()
	a := mkNode(t, "NodeA")
	a.AddRPE("XC6VLX365T")
	b := mkNode(t, "NodeB")
	b.AddRPE("XC6VLX240T") // same family, wrong part
	reg.AddNode(a)
	reg.AddNode(b)
	mm := newMM(t, reg)
	dev, _ := fabric.LookupDevice("XC6VLX365T")
	bs := fabric.FullBitstream("user", "custom", dev, 40000)
	req := task.ExecReq{
		Scenario:     pe.DeviceSpecificHW,
		Requirements: task.FPGADevice("XC6VLX365T"),
		Bitstream:    bs,
	}
	cands, err := mm.Candidates(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].Node.ID != "NodeA" {
		t.Errorf("candidates = %+v", cands)
	}
}

func TestCandidatesRejectInvalidReq(t *testing.T) {
	mm := newMM(t, NewRegistry())
	if _, err := mm.Candidates(task.ExecReq{}); err == nil {
		t.Error("invalid ExecReq accepted")
	}
}

func TestAllocateGPPLease(t *testing.T) {
	reg := NewRegistry()
	n := mkNode(t, "NodeA")
	n.AddGPP(xeon())
	reg.AddNode(n)
	mm := newMM(t, reg)
	req := task.ExecReq{Scenario: pe.SoftwareOnly, Requirements: task.GPPOnly(9000, 1024)}
	cands, _ := mm.Candidates(req)
	lease, err := mm.Allocate(cands[0], req)
	if err != nil {
		t.Fatal(err)
	}
	if lease.ReconfigDelay != 0 || lease.Estimator == nil {
		t.Errorf("lease = %+v", lease)
	}
	if cands[0].Elem.FreeCores() != 3 {
		t.Error("core not acquired")
	}
	if err := lease.Release(); err != nil {
		t.Fatal(err)
	}
	if err := lease.Release(); err == nil {
		t.Error("double release accepted")
	}
	if cands[0].Elem.FreeCores() != 4 {
		t.Error("core not released")
	}
}

func TestAllocateUserDefinedReconfiguresThenReuses(t *testing.T) {
	reg := NewRegistry()
	n := mkNode(t, "NodeA")
	n.AddRPE("XC5VLX330T")
	reg.AddNode(n)
	mm := newMM(t, reg)
	design, _ := hdl.LookupIP("fir64")
	req := task.ExecReq{
		Scenario:     pe.UserDefinedHW,
		Requirements: task.FPGAFamily("Virtex-5", 100),
		Design:       design,
	}
	cands, _ := mm.Candidates(req)
	l1, err := mm.Allocate(cands[0], req)
	if err != nil {
		t.Fatal(err)
	}
	if l1.ReconfigDelay <= 0 {
		t.Error("first allocation should pay reconfiguration")
	}
	if l1.SynthesisSeconds <= 0 {
		t.Error("first allocation should pay synthesis")
	}
	if err := l1.Release(); err != nil {
		t.Fatal(err)
	}
	// Second allocation: configuration is resident and idle — free reuse.
	cands2, _ := mm.Candidates(req)
	if !cands2[0].AlreadyLoaded {
		t.Error("matchmaker should see the resident configuration")
	}
	l2, err := mm.Allocate(cands2[0], req)
	if err != nil {
		t.Fatal(err)
	}
	if l2.ReconfigDelay != 0 || l2.SynthesisSeconds != 0 {
		t.Errorf("reuse paid costs: %+v", l2)
	}
	l2.Release()
}

func TestAllocateEvictsIdleConfigurations(t *testing.T) {
	reg := NewRegistry()
	n := mkNode(t, "NodeA")
	n.AddRPE("XC5VLX110T") // 17,280 slices
	reg.AddNode(n)
	mm := newMM(t, reg)
	// Fill most of the device with one design, release it, then ask for
	// another design that only fits after eviction.
	big, _ := hdl.LookupIP("malign-core") // ≈18.7k slices: too big for 110T
	_ = big
	d1, _ := hdl.LookupIP("fft1024")
	d2, _ := hdl.LookupIP("aes128")
	mkReq := func(d *hdl.Design) task.ExecReq {
		return task.ExecReq{
			Scenario:     pe.UserDefinedHW,
			Requirements: task.FPGAFamily("Virtex-5", 100),
			Design:       d,
		}
	}
	// d1 occupies ~15k of 17k slices.
	c1, err := mm.Candidates(mkReq(d1))
	if err != nil || len(c1) == 0 {
		t.Fatalf("d1 candidates: %v %v", c1, err)
	}
	l1, err := mm.Allocate(c1[0], mkReq(d1))
	if err != nil {
		t.Fatal(err)
	}
	l1.Release()
	// d2 needs ~10k: must evict d1's idle region.
	c2, err := mm.Candidates(mkReq(d2))
	if err != nil || len(c2) == 0 {
		t.Fatalf("d2 candidates: %v %v", c2, err)
	}
	l2, err := mm.Allocate(c2[0], mkReq(d2))
	if err != nil {
		t.Fatalf("allocation with eviction failed: %v", err)
	}
	defer l2.Release()
	st := c2[0].Elem.Fabric.State()
	for _, id := range st.Configurations {
		if strings.Contains(id, "fft1024") {
			t.Error("idle fft1024 configuration not evicted")
		}
	}
}

func TestAllocateDeviceSpecificFullReconfig(t *testing.T) {
	reg := NewRegistry()
	n := mkNode(t, "NodeA")
	n.AddRPE("XC6VLX365T")
	reg.AddNode(n)
	mm := newMM(t, reg)
	dev, _ := fabric.LookupDevice("XC6VLX365T")
	bs := fabric.FullBitstream("user", "custom", dev, 40000)
	req := task.ExecReq{
		Scenario:     pe.DeviceSpecificHW,
		Requirements: task.FPGADevice("XC6VLX365T"),
		Bitstream:    bs,
	}
	cands, _ := mm.Candidates(req)
	lease, err := mm.Allocate(cands[0], req)
	if err != nil {
		t.Fatal(err)
	}
	if lease.ReconfigDelay <= 0 {
		t.Error("full reconfiguration should cost time")
	}
	// The estimator honours Work.HWSpeedup over the reference grid CPU.
	est, err := lease.Estimator.EstimateSeconds(pe.Work{MInstructions: 1000, ParallelFraction: 1, HWSpeedup: 10})
	if err != nil {
		t.Fatal(err)
	}
	ref := 1000.0 / pe.ReferenceMIPS
	if est >= ref/9 {
		t.Errorf("device-specific estimate = %v, want ≈10x below the %vs reference", est, ref)
	}
	lease.Release()
}

func TestAllocateBusyGPPRejected(t *testing.T) {
	reg := NewRegistry()
	n := mkNode(t, "NodeA")
	g, _ := n.AddGPP(capability.GPPCaps{CPUType: "x", MIPS: 10000, Cores: 1})
	reg.AddNode(n)
	mm := newMM(t, reg)
	req := task.ExecReq{Scenario: pe.SoftwareOnly, Requirements: task.GPPOnly(1000, 0)}
	cands, _ := mm.Candidates(req)
	g.AcquireCore() // stolen in between
	if _, err := mm.Allocate(cands[0], req); err == nil {
		t.Error("allocation on saturated GPP accepted")
	}
}
