package rms

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/capability"
	"repro/internal/hdl"
	"repro/internal/node"
	"repro/internal/pe"
	"repro/internal/softcore"
	"repro/internal/task"
)

// Candidate is one feasible (element, node) mapping for a task — a row
// fragment of Table II ("RPE0 ↔ Node1").
type Candidate struct {
	Node *node.Node
	Elem *node.Element
	// Core is the soft-core configuration selected for predetermined-
	// hardware tasks and for the software-only fallback; nil otherwise.
	Core *softcore.Core
	// Slices is the fabric area the task will occupy (0 on GPPs/GPUs).
	Slices int
	// AlreadyLoaded reports that the required configuration is resident
	// and idle on the fabric, so no reconfiguration is needed.
	AlreadyLoaded bool
	// Fallback marks a software-only task mapped onto an RPE via a
	// soft-core CPU because no GPP was available (Section III-A).
	Fallback bool
}

// Label renders the candidate in Table II notation. It allocates; the
// engine only renders it for submissions that opted into monitoring, so
// it is deliberately outside the hotpath lint region.
func (c Candidate) Label() string {
	return c.Elem.ID + " <-> " + c.Node.ID
}

// Matchmaker evaluates ExecReq predicates against registered capability
// sets, with scenario-specific handling for each of the paper's four
// use-cases.
type Matchmaker struct {
	reg *Registry
	// tc is the provider's CAD toolchain, required for the user-defined-
	// hardware scenario.
	tc *hdl.Toolchain
	// cores is the provider's soft-core library, used by the
	// predetermined-hardware scenario and the software-only fallback.
	cores []*softcore.Core
	// synthCache memoizes synthesis results per design×device so CAD time
	// is paid once: matching mutates the cache, and two engines sharing a
	// matchmaker (or a future concurrent RMS) would otherwise race.
	synthMu    sync.RWMutex
	synthCache map[string]*hdl.SynthesisResult // guarded by synthMu
	// idCache memoizes hdl.BitstreamID per design×device×kind: the reuse
	// probe runs once per candidate per dispatch round, and rebuilding
	// the ID string dominated the allocation profile. Guarded by idMu for
	// the same shared-matchmaker reason as synthCache.
	idMu    sync.RWMutex
	idCache map[bsKey]string
	// coreName holds the precomputed design name per library soft-core.
	coreName map[*softcore.Core]string
	// candBuf is the scratch candidate slice the scenario scans build
	// into; the returned slice is valid until the next Candidates call
	// (the engine consumes it within one dispatch attempt).
	candBuf []Candidate
	// nodesBuf is the scratch node slice the candidate scans reuse.
	// Candidates runs on the engine's simulator goroutine only, so the
	// buffer is not guarded; a matchmaker shared across concurrent engines
	// must not be (each RunScenario builds its own).
	nodesBuf []*node.Node
	// DisableCompaction turns off fabric defragmentation during
	// allocation; the ablation benchmarks flip it.
	DisableCompaction bool
}

// NewMatchmaker builds a matchmaker over a registry. The toolchain may be
// nil for providers without CAD tools (they simply never match
// user-defined-hardware tasks, per Section III-B3). The soft-core library
// defaults to the ρ-VEX presets when empty.
func NewMatchmaker(reg *Registry, tc *hdl.Toolchain, cores ...*softcore.Core) (*Matchmaker, error) {
	if reg == nil {
		return nil, fmt.Errorf("rms: matchmaker needs a registry")
	}
	if len(cores) == 0 {
		for _, iw := range []int{8, 4, 2} {
			c, err := softcore.RVEX(iw, 1)
			if err != nil {
				return nil, err
			}
			cores = append(cores, c)
		}
	}
	coreName := make(map[*softcore.Core]string, len(cores))
	for _, c := range cores {
		cfg := c.Config()
		coreName[c] = "softcore-" + cfg.Caps.ISA + strconv.Itoa(cfg.Caps.IssueWidth)
	}
	return &Matchmaker{
		reg: reg, tc: tc, cores: cores,
		synthCache: make(map[string]*hdl.SynthesisResult),
		idCache:    make(map[bsKey]string),
		coreName:   coreName,
	}, nil
}

// bsKey identifies one bitstream-ID memo entry.
type bsKey struct {
	design, device string
	partial        bool
}

// bitstreamID is hdl.BitstreamID behind a memo table: candidate probing
// asks for the same design×device IDs over and over, so after the first
// build the hot path stops allocating.
func (m *Matchmaker) bitstreamID(design, device string, partial bool) string {
	k := bsKey{design: design, device: device, partial: partial}
	m.idMu.RLock()
	id, ok := m.idCache[k]
	m.idMu.RUnlock()
	if ok {
		return id
	}
	id = hdl.BitstreamID(design, device, partial)
	m.idMu.Lock()
	if m.idCache == nil { // zero-value Matchmaker
		m.idCache = make(map[bsKey]string)
	}
	m.idCache[k] = id
	m.idMu.Unlock()
	return id
}

// coreDesign returns the design name for a library soft-core, precomputed
// at construction for the hot candidate paths.
func (m *Matchmaker) coreDesign(c *softcore.Core) string {
	if name, ok := m.coreName[c]; ok {
		return name
	}
	cfg := c.Config()
	//reconlint:allow hotalloc cache-miss fallback; every library core is precomputed at construction
	return "softcore-" + cfg.Caps.ISA + strconv.Itoa(cfg.Caps.IssueWidth)
}

// nodes snapshots the registry into the matchmaker's scratch buffer for
// one candidate scan. Valid until the next call.
func (m *Matchmaker) nodes() []*node.Node {
	m.nodesBuf = m.reg.AppendTo(m.nodesBuf[:0])
	return m.nodesBuf
}

// Candidates returns every feasible mapping for the ExecReq in
// deterministic (registration, installation) order. An empty result with a
// nil error means no resource currently satisfies the requirements.
//
// The returned slice is backed by the matchmaker's scratch buffer and is
// valid until the next Candidates call: consume (or copy) it before
// matching again.
//
//reconlint:hotpath evaluated for every queued task on every dispatch round
func (m *Matchmaker) Candidates(req task.ExecReq) ([]Candidate, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	switch req.Scenario {
	case pe.SoftwareOnly:
		return m.softwareCandidates(req)
	case pe.PredeterminedHW:
		if req.Requirements.Kind() == capability.KindGPU {
			return m.gpuCandidates(req)
		}
		return m.softcoreCandidates(req, false)
	case pe.UserDefinedHW:
		return m.userDefinedCandidates(req)
	case pe.DeviceSpecificHW:
		return m.deviceSpecificCandidates(req)
	}
	//reconlint:allow hotalloc unreachable after Validate; cold error path, never taken per dispatch
	return nil, fmt.Errorf("rms: unhandled scenario %v", req.Scenario)
}

// softwareCandidates matches GPPs; when every matching GPP is fully busy
// (or none exists), it falls back to configuring a soft-core CPU on an
// available RPE — the paper's backward-compatibility path.
func (m *Matchmaker) softwareCandidates(req task.ExecReq) ([]Candidate, error) {
	out := m.candBuf[:0]
	for _, n := range m.nodes() {
		for _, e := range n.GPPs() {
			ok, err := req.Requirements.SatisfiedBy(e.Caps())
			if err != nil {
				return nil, err
			}
			if ok && e.FreeCores() > 0 {
				out = append(out, Candidate{Node: n, Elem: e})
			}
		}
	}
	if len(out) > 0 {
		m.candBuf = out
		return out, nil
	}
	// Fallback: soft-core CPU on an RPE, sized to the task's GPP demands.
	return m.softcoreFallback(req)
}

// minMIPSRequirement extracts the gpp.mips lower bound from requirements,
// or 0 when unconstrained.
func minMIPSRequirement(reqs capability.Requirements) float64 {
	min := 0.0
	for _, r := range reqs {
		if r.Param == capability.ParamGPPMIPS && (r.Op == capability.OpGe || r.Op == capability.OpGt) {
			if v := r.Value.Number(); v > min {
				min = v
			}
		}
	}
	return min
}

func (m *Matchmaker) softcoreFallback(req task.ExecReq) ([]Candidate, error) {
	needMIPS := minMIPSRequirement(req.Requirements)
	out := m.candBuf[:0]
	for _, n := range m.nodes() {
		for _, e := range n.RPEs() {
			core := m.pickCore("", needMIPS, e)
			if core == nil {
				continue
			}
			out = append(out, Candidate{
				Node: n, Elem: e, Core: core,
				Slices:   core.Config().Slices(),
				Fallback: true,
			})
		}
	}
	m.candBuf = out
	return out, nil
}

// pickCore returns the first library core matching the ISA (when given)
// that delivers the required MIPS and fits the element's device.
func (m *Matchmaker) pickCore(isa string, needMIPS float64, e *node.Element) *softcore.Core {
	if e.Fabric == nil {
		return nil
	}
	dev := e.Fabric.Device()
	for _, c := range m.cores {
		cfg := c.Config()
		if isa != "" && cfg.Caps.ISA != isa {
			continue
		}
		if needMIPS > 0 && cfg.EffectiveMIPS() < needMIPS {
			continue
		}
		if cfg.Slices() > dev.Slices {
			continue
		}
		if !dev.PartialRecon && cfg.Slices() < dev.Slices {
			// Without partial reconfiguration a soft-core occupies the whole
			// device; still feasible, just exclusive.
		}
		return c
	}
	return nil
}

// softcoreCandidates matches predetermined-hardware tasks: RPEs that can
// host a library core with the requested ISA whose capability set
// satisfies the softcore.* requirements.
func (m *Matchmaker) softcoreCandidates(req task.ExecReq, fallback bool) ([]Candidate, error) {
	out := m.candBuf[:0]
	for _, n := range m.nodes() {
		for _, e := range n.RPEs() {
			dev := e.Fabric.Device()
			for _, c := range m.cores {
				cfg := c.Config()
				if req.SoftcoreISA != "" && cfg.Caps.ISA != req.SoftcoreISA {
					continue
				}
				ok, err := req.Requirements.SatisfiedBy(cfg.Caps.Set())
				if err != nil {
					return nil, err
				}
				if !ok || cfg.Slices() > dev.Slices {
					continue
				}
				bsID := m.bitstreamID(m.coreDesign(c), dev.FPGACaps.Device, true)
				out = append(out, Candidate{
					Node: n, Elem: e, Core: c,
					Slices:        cfg.Slices(),
					AlreadyLoaded: e.Fabric.FindLoaded(bsID) != nil,
					Fallback:      fallback,
				})
				break // first matching core per element
			}
		}
	}
	m.candBuf = out
	return out, nil
}

// gpuCandidates matches GPU-targeted pre-determined tasks — the taxonomy's
// extensibility beyond FPGAs exercised: free GPU elements whose Table I
// capability set satisfies the gpu.* predicates.
func (m *Matchmaker) gpuCandidates(req task.ExecReq) ([]Candidate, error) {
	out := m.candBuf[:0]
	for _, n := range m.nodes() {
		for _, e := range n.ByKind(capability.KindGPU) {
			if e.Busy() {
				continue
			}
			ok, err := req.Requirements.SatisfiedBy(e.Caps())
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, Candidate{Node: n, Elem: e})
			}
		}
	}
	m.candBuf = out
	return out, nil
}

// userDefinedCandidates matches user-defined-hardware tasks: the provider
// must own CAD tools for the element's family, the capability predicates
// must hold, and the Quipu area estimate must fit the device.
func (m *Matchmaker) userDefinedCandidates(req task.ExecReq) ([]Candidate, error) {
	if m.tc == nil {
		// Provider has no CAD tools: it cannot serve this scenario at all.
		return nil, nil
	}
	area, err := m.tc.EstimateArea(req.Design)
	if err != nil {
		return nil, err
	}
	out := m.candBuf[:0]
	for _, n := range m.nodes() {
		for _, e := range n.RPEs() {
			dev := e.Fabric.Device()
			if !m.tc.Supports(dev.Family) {
				continue
			}
			ok, err := req.Requirements.SatisfiedBy(e.Caps())
			if err != nil {
				return nil, err
			}
			if !ok || area.Slices > dev.Slices || area.BRAMKb > dev.BRAMKb || area.DSPSlices > dev.DSPSlices {
				continue
			}
			bsID := m.bitstreamID(req.Design.Name, dev.FPGACaps.Device, true)
			out = append(out, Candidate{
				Node: n, Elem: e,
				Slices:        area.Slices,
				AlreadyLoaded: e.Fabric.FindLoaded(bsID) != nil,
			})
		}
	}
	m.candBuf = out
	return out, nil
}

// deviceSpecificCandidates matches device-specific tasks: only elements
// whose exact part matches the user's bitstream qualify.
func (m *Matchmaker) deviceSpecificCandidates(req task.ExecReq) ([]Candidate, error) {
	out := m.candBuf[:0]
	for _, n := range m.nodes() {
		for _, e := range n.RPEs() {
			dev := e.Fabric.Device()
			if dev.FPGACaps.Device != req.Bitstream.Device {
				continue
			}
			ok, err := req.Requirements.SatisfiedBy(e.Caps())
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			out = append(out, Candidate{
				Node: n, Elem: e,
				Slices:        req.Bitstream.Slices,
				AlreadyLoaded: e.Fabric.FindLoaded(req.Bitstream.ID) != nil,
			})
		}
	}
	m.candBuf = out
	return out, nil
}
