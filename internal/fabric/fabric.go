package fabric

import (
	"fmt"
	"sort"

	"repro/internal/sim"
)

// Region is a slice range on a fabric currently holding a configuration.
type Region struct {
	// ID is unique per fabric instance.
	ID int
	// Start and Slices locate the region in the slice address space.
	Start  int
	Slices int
	// Bitstream is the loaded configuration.
	Bitstream *Bitstream
	// Busy marks the region as executing a task; busy regions cannot be
	// evicted.
	Busy bool
}

// String summarizes the region.
func (r *Region) String() string {
	state := "idle"
	if r.Busy {
		state = "busy"
	}
	return fmt.Sprintf("region %d [%d+%d) %s (%s)", r.ID, r.Start, r.Start+r.Slices, state, r.Bitstream.Design)
}

// State is a point-in-time snapshot of a fabric — the dynamically changing
// "state" attribute of the paper's node model (Fig. 3): available area and
// the currently loaded configuration(s).
type State struct {
	Device          string
	TotalSlices     int
	AvailableSlices int
	LargestFree     int
	Fragmentation   float64
	Configurations  []string // loaded bitstream IDs, sorted
	BusyRegions     int
	// AvailableBRAMKb and AvailableDSP are the unclaimed secondary
	// resources.
	AvailableBRAMKb int
	AvailableDSP    int
}

// String renders the snapshot as the paper's Fig. 5 notation does
// ("available & idle, not configured").
func (s State) String() string {
	if len(s.Configurations) == 0 {
		return fmt.Sprintf("%s: available and idle, not configured (%d slices free)", s.Device, s.AvailableSlices)
	}
	return fmt.Sprintf("%s: %d configuration(s), %d busy, %d/%d slices free",
		s.Device, len(s.Configurations), s.BusyRegions, s.AvailableSlices, s.TotalSlices)
}

// Fabric is a live FPGA: a device plus its mutable configuration state.
// Fabric is not safe for concurrent use; in the simulator all mutation
// happens on the single event-loop goroutine, and the RMS serializes
// external access.
type Fabric struct {
	dev   Device
	alloc *Allocator
	// regions is kept sorted by ID: IDs are assigned in increasing order
	// and appends preserve that, so reuse lookups (FindLoaded — one call
	// per candidate per dispatch round) scan in deterministic order with
	// no per-call allocation or sort.
	regions          []*Region
	nextID           int
	policy           AllocPolicy
	reconfigurations int
	// usedBRAMKb and usedDSP track secondary-resource consumption by
	// resident configurations; slices alone do not bound a placement.
	usedBRAMKb int
	usedDSP    int
	// reconfigTime accumulates total time spent reconfiguring, for
	// utilization accounting.
	reconfigTime sim.Time
}

// AllocPolicy selects the placement policy for partial regions.
type AllocPolicy int

// Placement policies.
const (
	FirstFit AllocPolicy = iota
	BestFit
)

// New creates an idle, unconfigured fabric for a catalog device.
func New(dev Device) *Fabric {
	return &Fabric{
		dev:   dev,
		alloc: NewAllocator(dev.Slices),
	}
}

// NewByName creates a fabric for a named catalog device.
func NewByName(device string) (*Fabric, error) {
	dev, err := LookupDevice(device)
	if err != nil {
		return nil, err
	}
	return New(dev), nil
}

// SetPolicy selects the region placement policy.
func (f *Fabric) SetPolicy(p AllocPolicy) { f.policy = p }

// Device returns the immutable part description.
func (f *Fabric) Device() Device { return f.dev }

// Reconfigurations returns how many configuration loads the fabric has
// performed.
func (f *Fabric) Reconfigurations() int { return f.reconfigurations }

// ReconfigTime returns the cumulative time spent loading configurations.
func (f *Fabric) ReconfigTime() sim.Time { return f.reconfigTime }

// State returns the current snapshot.
func (f *Fabric) State() State {
	s := State{
		Device:          f.dev.FPGACaps.Device,
		TotalSlices:     f.dev.Slices,
		AvailableSlices: f.alloc.Free(),
		LargestFree:     f.alloc.LargestFree(),
		Fragmentation:   f.alloc.Fragmentation(),
		AvailableBRAMKb: f.dev.BRAMKb - f.usedBRAMKb,
		AvailableDSP:    f.dev.DSPSlices - f.usedDSP,
	}
	for _, r := range f.regions {
		s.Configurations = append(s.Configurations, r.Bitstream.ID)
		if r.Busy {
			s.BusyRegions++
		}
	}
	sort.Strings(s.Configurations)
	return s
}

// FindLoaded returns a loaded, idle region holding the given bitstream ID,
// or nil. A hit lets the scheduler skip reconfiguration entirely
// (configuration reuse). Regions are examined in ID order.
func (f *Fabric) FindLoaded(bitstreamID string) *Region {
	for _, r := range f.regions {
		if !r.Busy && r.Bitstream.ID == bitstreamID {
			return r
		}
	}
	return nil
}

// findResident locates a region in the ID-sorted resident list, returning
// its index or -1 when the exact region object is not resident.
func (f *Fabric) findResident(r *Region) int {
	lo, hi := 0, len(f.regions)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if f.regions[mid].ID < r.ID {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(f.regions) && f.regions[lo] == r {
		return lo
	}
	return -1
}

// checkTarget validates that a bitstream targets this exact device.
func (f *Fabric) checkTarget(bs *Bitstream) error {
	if err := bs.Validate(); err != nil {
		return err
	}
	if bs.Device != f.dev.FPGACaps.Device {
		return fmt.Errorf("fabric: bitstream %s targets %s, device is %s", bs.ID, bs.Device, f.dev.FPGACaps.Device)
	}
	return nil
}

// checkSecondary verifies BRAM and DSP budgets for a new configuration.
func (f *Fabric) checkSecondary(bs *Bitstream) error {
	if f.usedBRAMKb+bs.BRAMKb > f.dev.BRAMKb {
		return fmt.Errorf("fabric: %s needs %d Kb BRAM, %d free on %s",
			bs.ID, bs.BRAMKb, f.dev.BRAMKb-f.usedBRAMKb, f.dev.FPGACaps.Device)
	}
	if f.usedDSP+bs.DSPSlices > f.dev.DSPSlices {
		return fmt.Errorf("fabric: %s needs %d DSP slices, %d free on %s",
			bs.ID, bs.DSPSlices, f.dev.DSPSlices-f.usedDSP, f.dev.FPGACaps.Device)
	}
	return nil
}

// ConfigureFull performs a full reconfiguration: every existing region is
// wiped and the whole device is given to the new configuration. It fails if
// any region is busy. The returned delay is what the caller must advance in
// simulated time before the region is usable.
func (f *Fabric) ConfigureFull(bs *Bitstream) (*Region, sim.Time, error) {
	if err := f.checkTarget(bs); err != nil {
		return nil, 0, err
	}
	if bs.Partial {
		return nil, 0, fmt.Errorf("fabric: partial bitstream %s passed to full reconfiguration", bs.ID)
	}
	if bs.Slices > f.dev.Slices {
		return nil, 0, fmt.Errorf("fabric: design needs %d slices, %s has %d", bs.Slices, f.dev.FPGACaps.Device, f.dev.Slices)
	}
	for _, r := range f.regions {
		if r.Busy {
			return nil, 0, fmt.Errorf("fabric: full reconfiguration with busy region %d", r.ID)
		}
	}
	f.regions = f.regions[:0]
	f.alloc.Reset()
	f.usedBRAMKb, f.usedDSP = 0, 0
	if err := f.checkSecondary(bs); err != nil {
		return nil, 0, err
	}
	start, err := f.alloc.Alloc(bs.Slices)
	if err != nil {
		return nil, 0, err // unreachable after Reset, kept for safety
	}
	f.nextID++
	r := &Region{ID: f.nextID, Start: start, Slices: bs.Slices, Bitstream: bs}
	f.regions = append(f.regions, r)
	f.usedBRAMKb += bs.BRAMKb
	f.usedDSP += bs.DSPSlices
	delay := ConfigDelay(bs.SizeBytes, f.dev.ReconfigMBps)
	f.reconfigurations++
	f.reconfigTime += delay
	return r, delay, nil
}

// ConfigurePartial loads a partial bitstream into a newly allocated region,
// leaving existing regions untouched. It fails if the device does not
// support partial reconfiguration or no contiguous area is free.
func (f *Fabric) ConfigurePartial(bs *Bitstream) (*Region, sim.Time, error) {
	if err := f.checkTarget(bs); err != nil {
		return nil, 0, err
	}
	if !bs.Partial {
		return nil, 0, fmt.Errorf("fabric: full bitstream %s passed to partial reconfiguration", bs.ID)
	}
	if !f.dev.PartialRecon {
		return nil, 0, fmt.Errorf("fabric: %s does not support partial reconfiguration", f.dev.FPGACaps.Device)
	}
	if err := f.checkSecondary(bs); err != nil {
		return nil, 0, err
	}
	var start int
	var err error
	if f.policy == BestFit {
		start, err = f.alloc.AllocBestFit(bs.Slices)
	} else {
		start, err = f.alloc.Alloc(bs.Slices)
	}
	if err != nil {
		return nil, 0, err
	}
	f.nextID++
	r := &Region{ID: f.nextID, Start: start, Slices: bs.Slices, Bitstream: bs}
	f.regions = append(f.regions, r)
	f.usedBRAMKb += bs.BRAMKb
	f.usedDSP += bs.DSPSlices
	delay := ConfigDelay(bs.SizeBytes, f.dev.ReconfigMBps)
	f.reconfigurations++
	f.reconfigTime += delay
	return r, delay, nil
}

// Evict removes an idle region, freeing its area for future configurations.
func (f *Fabric) Evict(r *Region) error {
	idx := f.findResident(r)
	if idx < 0 {
		return fmt.Errorf("fabric: region %d is not resident", r.ID)
	}
	if r.Busy {
		return fmt.Errorf("fabric: evicting busy region %d", r.ID)
	}
	if err := f.alloc.Release(r.Start, r.Slices); err != nil {
		return err
	}
	f.regions = append(f.regions[:idx], f.regions[idx+1:]...)
	f.usedBRAMKb -= r.Bitstream.BRAMKb
	f.usedDSP -= r.Bitstream.DSPSlices
	return nil
}

// Acquire marks a region busy for task execution.
func (f *Fabric) Acquire(r *Region) error {
	if f.findResident(r) < 0 {
		return fmt.Errorf("fabric: region %d is not resident", r.ID)
	}
	if r.Busy {
		return fmt.Errorf("fabric: region %d already busy", r.ID)
	}
	r.Busy = true
	return nil
}

// ReleaseRegion marks a busy region idle again; the configuration stays
// loaded so a later task needing the same bitstream can reuse it.
func (f *Fabric) ReleaseRegion(r *Region) error {
	if f.findResident(r) < 0 {
		return fmt.Errorf("fabric: region %d is not resident", r.ID)
	}
	if !r.Busy {
		return fmt.Errorf("fabric: region %d is not busy", r.ID)
	}
	r.Busy = false
	return nil
}

// Compact repacks idle regions toward low addresses, consolidating free
// space without losing their configurations. Busy regions are pinned in
// place. Rewriting a moved region costs its configuration delay; the total
// is returned so callers can charge it in simulated time.
func (f *Fabric) Compact() (moved int, delay sim.Time, err error) {
	regions := f.Regions()
	sort.Slice(regions, func(i, j int) bool { return regions[i].Start < regions[j].Start })
	f.alloc.Reset()
	// Pin busy regions first: their addresses cannot change.
	for _, r := range regions {
		if r.Busy {
			if err := f.alloc.AllocAt(r.Start, r.Slices); err != nil {
				return 0, 0, fmt.Errorf("fabric: compaction lost a busy region: %w", err)
			}
		}
	}
	// Re-place idle regions lowest-first.
	for _, r := range regions {
		if r.Busy {
			continue
		}
		start, allocErr := f.alloc.Alloc(r.Slices)
		if allocErr != nil {
			// Cannot happen: the region fit before and nothing grew.
			return moved, delay, fmt.Errorf("fabric: compaction failed to re-place region %d: %w", r.ID, allocErr)
		}
		if start != r.Start {
			moved++
			delay += ConfigDelay(r.Bitstream.SizeBytes, f.dev.ReconfigMBps)
			r.Start = start
		}
	}
	if moved > 0 {
		f.reconfigurations += moved
		f.reconfigTime += delay
	}
	return moved, delay, nil
}

// Regions returns a copy of the resident regions sorted by ID.
func (f *Fabric) Regions() []*Region {
	out := make([]*Region, len(f.regions))
	copy(out, f.regions)
	return out
}
