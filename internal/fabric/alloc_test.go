package fabric

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestAllocatorBasics(t *testing.T) {
	a := NewAllocator(100)
	if a.Total() != 100 || a.Free() != 100 || a.LargestFree() != 100 {
		t.Fatal("fresh allocator wrong")
	}
	s1, err := a.Alloc(30)
	if err != nil || s1 != 0 {
		t.Fatalf("first alloc = %d, %v", s1, err)
	}
	s2, err := a.Alloc(30)
	if err != nil || s2 != 30 {
		t.Fatalf("second alloc = %d, %v", s2, err)
	}
	if a.Free() != 40 {
		t.Errorf("Free = %d", a.Free())
	}
	if _, err := a.Alloc(50); err == nil {
		t.Error("oversized alloc accepted")
	}
	if _, err := a.Alloc(0); err == nil {
		t.Error("zero alloc accepted")
	}
}

func TestAllocatorExternalFragmentation(t *testing.T) {
	a := NewAllocator(100)
	starts := make([]int, 0, 10)
	for i := 0; i < 10; i++ {
		s, err := a.Alloc(10)
		if err != nil {
			t.Fatal(err)
		}
		starts = append(starts, s)
	}
	// Free every other block: 50 slices free but largest run is 10.
	for i := 0; i < 10; i += 2 {
		if err := a.Release(starts[i], 10); err != nil {
			t.Fatal(err)
		}
	}
	if a.Free() != 50 {
		t.Errorf("Free = %d, want 50", a.Free())
	}
	if a.LargestFree() != 10 {
		t.Errorf("LargestFree = %d, want 10", a.LargestFree())
	}
	if _, err := a.Alloc(20); err == nil {
		t.Error("allocation should fail despite sufficient total free area")
	}
	if frag := a.Fragmentation(); frag != 0.8 {
		t.Errorf("Fragmentation = %v, want 0.8", frag)
	}
}

func TestAllocatorCoalescing(t *testing.T) {
	a := NewAllocator(100)
	s1, _ := a.Alloc(40)
	s2, _ := a.Alloc(40)
	if err := a.Release(s1, 40); err != nil {
		t.Fatal(err)
	}
	if err := a.Release(s2, 40); err != nil {
		t.Fatal(err)
	}
	if a.LargestFree() != 100 {
		t.Errorf("coalescing failed: largest = %d", a.LargestFree())
	}
	if a.Fragmentation() != 0 {
		t.Errorf("Fragmentation = %v, want 0", a.Fragmentation())
	}
}

func TestAllocatorReleaseValidation(t *testing.T) {
	a := NewAllocator(100)
	if err := a.Release(-1, 10); err == nil {
		t.Error("negative start accepted")
	}
	if err := a.Release(95, 10); err == nil {
		t.Error("out-of-range release accepted")
	}
	if err := a.Release(0, 10); err == nil {
		t.Error("double-free (overlapping free space) accepted")
	}
	s, _ := a.Alloc(10)
	if err := a.Release(s, 10); err != nil {
		t.Fatal(err)
	}
	if err := a.Release(s, 10); err == nil {
		t.Error("double release accepted")
	}
}

func TestAllocatorBestFitReducesWaste(t *testing.T) {
	a := NewAllocator(100)
	s1, _ := a.Alloc(10) // [0,10)
	_, _ = a.Alloc(50)   // [10,60)
	s3, _ := a.Alloc(40) // [60,100)
	_ = s3
	if err := a.Release(s1, 10); err != nil { // free [0,10)
		t.Fatal(err)
	}
	if err := a.Release(60, 40); err != nil { // free [60,100)
		t.Fatal(err)
	}
	// Best-fit for 10 should take the exact [0,10) hole, not carve [60,100).
	s, err := a.AllocBestFit(10)
	if err != nil {
		t.Fatal(err)
	}
	if s != 0 {
		t.Errorf("best-fit start = %d, want 0", s)
	}
	if a.LargestFree() != 40 {
		t.Errorf("largest free = %d, want 40 preserved", a.LargestFree())
	}
	if _, err := a.AllocBestFit(0); err == nil {
		t.Error("zero best-fit accepted")
	}
	if _, err := a.AllocBestFit(99); err == nil {
		t.Error("oversized best-fit accepted")
	}
}

func TestAllocatorReset(t *testing.T) {
	a := NewAllocator(50)
	a.Alloc(20)
	a.Alloc(20)
	a.Reset()
	if a.Free() != 50 || a.LargestFree() != 50 {
		t.Error("Reset did not restore full space")
	}
}

func TestAllocatorInvariantFreeNeverExceedsTotal(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		a := NewAllocator(1000)
		type block struct{ start, n int }
		var live []block
		for op := 0; op < 200; op++ {
			if r.Float64() < 0.6 || len(live) == 0 {
				n := 1 + r.Intn(200)
				if s, err := a.Alloc(n); err == nil {
					live = append(live, block{s, n})
				}
			} else {
				i := r.Intn(len(live))
				b := live[i]
				if err := a.Release(b.start, b.n); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			}
			used := 0
			for _, b := range live {
				used += b.n
			}
			if a.Free()+used != 1000 {
				return false
			}
			if a.LargestFree() > a.Free() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestNewAllocatorPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-positive area did not panic")
		}
	}()
	NewAllocator(0)
}
