package fabric

import (
	"fmt"

	"repro/internal/sim"
)

// Bitstream is a device configuration image. Full bitstreams configure a
// whole device; partial bitstreams configure one reconfigurable region.
// Bitstreams are produced either by the provider's synthesis service
// (user-defined hardware scenario) or shipped directly by the user
// (device-specific scenario).
type Bitstream struct {
	// ID identifies the configuration; nodes use it to detect that a
	// requested configuration is already loaded and skip reconfiguration.
	ID string
	// Design names the hardware function implemented (e.g. "pairalign-core").
	Design string
	// Device is the exact part the bitstream was generated for. Bitstreams
	// are never portable across parts.
	Device string
	// Partial marks a region-level (partial reconfiguration) bitstream.
	Partial bool
	// Slices is the area the configuration occupies.
	Slices int
	// BRAMKb and DSPSlices are the block-RAM and DSP budget the
	// configuration consumes.
	BRAMKb    int
	DSPSlices int
	// SizeBytes is the configuration image size, which determines
	// reconfiguration delay.
	SizeBytes int64
	// ClockMHz is the design's achieved clock after placement and routing.
	ClockMHz float64
}

// Validate reports structural problems with the bitstream.
func (b *Bitstream) Validate() error {
	switch {
	case b == nil:
		return fmt.Errorf("fabric: nil bitstream")
	case b.ID == "":
		return fmt.Errorf("fabric: bitstream has no ID")
	case b.Device == "":
		return fmt.Errorf("fabric: bitstream %s has no target device", b.ID)
	case b.Slices <= 0:
		return fmt.Errorf("fabric: bitstream %s has non-positive slices", b.ID)
	case b.SizeBytes <= 0:
		return fmt.Errorf("fabric: bitstream %s has non-positive size", b.ID)
	}
	return nil
}

// String summarizes the bitstream.
func (b *Bitstream) String() string {
	kind := "full"
	if b.Partial {
		kind = "partial"
	}
	return fmt.Sprintf("bitstream %s (%s, %s for %s, %d slices, %d B)",
		b.ID, b.Design, kind, b.Device, b.Slices, b.SizeBytes)
}

// FullBitstream builds a full-device bitstream for a catalog device. The
// image always spans the whole configuration memory regardless of how much
// logic the design uses — that is exactly why full reconfiguration is slow.
func FullBitstream(id, design string, dev Device, usedSlices int) *Bitstream {
	return &Bitstream{
		ID:        id,
		Design:    design,
		Device:    dev.FPGACaps.Device,
		Partial:   false,
		Slices:    usedSlices,
		SizeBytes: dev.BitstreamBytes,
		ClockMHz:  float64(dev.SpeedGradeMHz) * 0.5, // typical achieved clock
	}
}

// PartialBitstream builds a region bitstream whose image size scales with
// the region area, the property that makes partial reconfiguration fast.
func PartialBitstream(id, design string, dev Device, regionSlices int) *Bitstream {
	return &Bitstream{
		ID:        id,
		Design:    design,
		Device:    dev.FPGACaps.Device,
		Partial:   true,
		Slices:    regionSlices,
		SizeBytes: int64(regionSlices) * bitstreamBytesPerSlice,
		ClockMHz:  float64(dev.SpeedGradeMHz) * 0.5,
	}
}

// PartialSizeBytes returns the image size of a partial bitstream covering
// the given region area — what PartialBitstream would report — without
// building the bitstream, for cost estimators probing many candidates.
func PartialSizeBytes(regionSlices int) int64 {
	return int64(regionSlices) * bitstreamBytesPerSlice
}

// ConfigDelay returns the time to push a bitstream through a configuration
// port with the given bandwidth (MB/s).
func ConfigDelay(sizeBytes int64, reconfigMBps float64) sim.Time {
	if reconfigMBps <= 0 {
		return sim.TimeInf
	}
	return sim.Time(float64(sizeBytes) / (reconfigMBps * 1e6))
}
