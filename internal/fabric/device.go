// Package fabric models reconfigurable devices (FPGAs): a catalog of parts
// with Table I capability parameters, bitstreams, a contiguous region
// allocator for dynamic partial reconfiguration, and a configuration-port
// timing model (reconfiguration delay = bitstream size / reconfiguration
// bandwidth).
//
// The paper's framework treats an RPE as "a list of parameters plus a
// dynamically changing state" (Fig. 3); this package is the concrete device
// behind that state: which configurations are loaded, how much area remains,
// and how long the next reconfiguration takes.
package fabric

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/capability"
)

// Device is an immutable description of an FPGA part.
type Device struct {
	capability.FPGACaps
	// BitstreamBytes is the size of a full-device configuration bitstream.
	BitstreamBytes int64
}

// bitstreamBytesPerSlice approximates configuration-memory density: a
// Virtex-5 LX110T full bitstream is ≈3.9 MB over 17,280 slices ≈ 230 B/slice.
const bitstreamBytesPerSlice = 230

// defineDevice fills in derived fields for a catalog entry.
func defineDevice(c capability.FPGACaps) Device {
	return Device{
		FPGACaps:       c,
		BitstreamBytes: int64(c.Slices) * bitstreamBytesPerSlice,
	}
}

// catalog is the built-in device library. Slice/LUT/BRAM counts follow the
// public Xilinx data sheets for the Virtex-4/5/6 generations the paper's
// case study draws from (Virtex-5 for Task1/Task2, XC6VLX365T for Task3).
var catalog = func() map[string]Device {
	devices := []capability.FPGACaps{
		// Virtex-5 LX/LXT family.
		{Device: "XC5VLX30", Family: "Virtex-5", LogicCells: 30720, Slices: 4800, LUTs: 19200, BRAMKb: 1152, DSPSlices: 32, SpeedGradeMHz: 550, ReconfigMBps: 400, IOBs: 400, EthernetMAC: false, PartialRecon: true},
		{Device: "XC5VLX50T", Family: "Virtex-5", LogicCells: 46080, Slices: 7200, LUTs: 28800, BRAMKb: 2160, DSPSlices: 48, SpeedGradeMHz: 550, ReconfigMBps: 400, IOBs: 480, EthernetMAC: true, PartialRecon: true},
		{Device: "XC5VLX85", Family: "Virtex-5", LogicCells: 82944, Slices: 12960, LUTs: 51840, BRAMKb: 3456, DSPSlices: 48, SpeedGradeMHz: 550, ReconfigMBps: 400, IOBs: 560, EthernetMAC: false, PartialRecon: true},
		{Device: "XC5VLX110T", Family: "Virtex-5", LogicCells: 110592, Slices: 17280, LUTs: 69120, BRAMKb: 5328, DSPSlices: 64, SpeedGradeMHz: 550, ReconfigMBps: 400, IOBs: 680, EthernetMAC: true, PartialRecon: true},
		{Device: "XC5VLX155T", Family: "Virtex-5", LogicCells: 155648, Slices: 24320, LUTs: 97280, BRAMKb: 7632, DSPSlices: 128, SpeedGradeMHz: 550, ReconfigMBps: 400, IOBs: 680, EthernetMAC: true, PartialRecon: true},
		{Device: "XC5VLX220T", Family: "Virtex-5", LogicCells: 221184, Slices: 34560, LUTs: 138240, BRAMKb: 7632, DSPSlices: 128, SpeedGradeMHz: 550, ReconfigMBps: 400, IOBs: 680, EthernetMAC: true, PartialRecon: true},
		{Device: "XC5VLX330T", Family: "Virtex-5", LogicCells: 331776, Slices: 51840, LUTs: 207360, BRAMKb: 11664, DSPSlices: 192, SpeedGradeMHz: 550, ReconfigMBps: 400, IOBs: 960, EthernetMAC: true, PartialRecon: true},
		// Virtex-6 (the case study's device-specific Task3 target).
		{Device: "XC6VLX365T", Family: "Virtex-6", LogicCells: 364032, Slices: 56880, LUTs: 227520, BRAMKb: 14976, DSPSlices: 576, SpeedGradeMHz: 600, ReconfigMBps: 800, IOBs: 720, EthernetMAC: true, PartialRecon: true},
		{Device: "XC6VLX240T", Family: "Virtex-6", LogicCells: 241152, Slices: 37680, LUTs: 150720, BRAMKb: 14976, DSPSlices: 768, SpeedGradeMHz: 600, ReconfigMBps: 800, IOBs: 720, EthernetMAC: true, PartialRecon: true},
		// Virtex-4 (an older-generation RPE without partial reconfiguration
		// support in our model, exercising capability mismatches).
		{Device: "XC4VLX60", Family: "Virtex-4", LogicCells: 59904, Slices: 26624, LUTs: 53248, BRAMKb: 2880, DSPSlices: 64, SpeedGradeMHz: 500, ReconfigMBps: 100, IOBs: 448, EthernetMAC: false, PartialRecon: false},
	}
	m := make(map[string]Device, len(devices))
	for _, c := range devices {
		m[strings.ToUpper(c.Device)] = defineDevice(c)
	}
	return m
}()

// LookupDevice returns the catalog entry for a part number
// (case-insensitive).
func LookupDevice(name string) (Device, error) {
	d, ok := catalog[strings.ToUpper(name)]
	if !ok {
		return Device{}, fmt.Errorf("fabric: unknown device %q", name)
	}
	return d, nil
}

// Devices returns every catalog entry sorted by family then slice count.
func Devices() []Device {
	out := make([]Device, 0, len(catalog))
	for _, d := range catalog {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Family != out[j].Family {
			return out[i].Family < out[j].Family
		}
		return out[i].Slices < out[j].Slices
	})
	return out
}

// DevicesInFamily returns the catalog entries of one family, smallest first.
func DevicesInFamily(family string) []Device {
	var out []Device
	for _, d := range Devices() {
		if strings.EqualFold(d.Family, family) {
			out = append(out, d)
		}
	}
	return out
}

// SmallestFitting returns the smallest device in the family with at least
// the requested slices, supporting the user-defined-hardware scenario where
// the provider picks a device for a generic HDL design.
func SmallestFitting(family string, slices int) (Device, error) {
	for _, d := range DevicesInFamily(family) {
		if d.Slices >= slices {
			return d, nil
		}
	}
	return Device{}, fmt.Errorf("fabric: no %s device with ≥%d slices", family, slices)
}
