package fabric

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sim"
)

func lx155(t *testing.T) *Fabric {
	t.Helper()
	f, err := NewByName("XC5VLX155T")
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestConfigDelay(t *testing.T) {
	// 4 MB at 400 MB/s = 10 ms.
	d := ConfigDelay(4e6, 400)
	if math.Abs(float64(d)-0.01) > 1e-12 {
		t.Errorf("delay = %v, want 10ms", d)
	}
	if !ConfigDelay(1, 0).IsInf() {
		t.Error("zero bandwidth should give infinite delay")
	}
}

func TestFullReconfiguration(t *testing.T) {
	f := lx155(t)
	dev := f.Device()
	bs := FullBitstream("bs-a", "designA", dev, 10000)
	r, delay, err := f.ConfigureFull(bs)
	if err != nil {
		t.Fatal(err)
	}
	if delay <= 0 {
		t.Error("full reconfig should take time")
	}
	wantDelay := ConfigDelay(dev.BitstreamBytes, dev.ReconfigMBps)
	if delay != wantDelay {
		t.Errorf("delay = %v, want %v", delay, wantDelay)
	}
	st := f.State()
	if len(st.Configurations) != 1 || st.Configurations[0] != "bs-a" {
		t.Errorf("state = %+v", st)
	}
	if st.AvailableSlices != dev.Slices-10000 {
		t.Errorf("available = %d", st.AvailableSlices)
	}
	// A second full reconfiguration replaces the first entirely.
	bs2 := FullBitstream("bs-b", "designB", dev, 5000)
	_, _, err = f.ConfigureFull(bs2)
	if err != nil {
		t.Fatal(err)
	}
	st = f.State()
	if len(st.Configurations) != 1 || st.Configurations[0] != "bs-b" {
		t.Errorf("full reconfig did not wipe: %+v", st)
	}
	if f.Reconfigurations() != 2 {
		t.Errorf("reconfig count = %d", f.Reconfigurations())
	}
	if f.ReconfigTime() != 2*wantDelay {
		t.Errorf("reconfig time = %v", f.ReconfigTime())
	}
	_ = r
}

func TestFullReconfigurationRejectsBusy(t *testing.T) {
	f := lx155(t)
	bs := FullBitstream("bs-a", "d", f.Device(), 100)
	r, _, err := f.ConfigureFull(bs)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Acquire(r); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.ConfigureFull(FullBitstream("bs-b", "d", f.Device(), 100)); err == nil {
		t.Error("full reconfiguration over a busy region accepted")
	}
}

func TestPartialReconfiguration(t *testing.T) {
	f := lx155(t)
	dev := f.Device()
	bs1 := PartialBitstream("p1", "kernelA", dev, 8000)
	bs2 := PartialBitstream("p2", "kernelB", dev, 8000)
	r1, d1, err := f.ConfigurePartial(bs1)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := f.ConfigurePartial(bs2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Start == r2.Start {
		t.Error("regions overlap")
	}
	// Partial delay scales with region size, far below a full-device load.
	full := ConfigDelay(dev.BitstreamBytes, dev.ReconfigMBps)
	if d1 >= full {
		t.Errorf("partial delay %v not below full %v", d1, full)
	}
	st := f.State()
	if len(st.Configurations) != 2 {
		t.Errorf("want 2 resident configurations: %+v", st)
	}
}

func TestPartialRequiresSupport(t *testing.T) {
	f, err := NewByName("XC4VLX60") // catalog marks Virtex-4 without PR
	if err != nil {
		t.Fatal(err)
	}
	bs := PartialBitstream("p", "k", f.Device(), 100)
	if _, _, err := f.ConfigurePartial(bs); err == nil {
		t.Error("partial reconfiguration accepted on non-PR device")
	}
}

func TestBitstreamDeviceMismatch(t *testing.T) {
	f := lx155(t)
	other, _ := LookupDevice("XC5VLX330T")
	bs := FullBitstream("x", "d", other, 100)
	if _, _, err := f.ConfigureFull(bs); err == nil {
		t.Error("cross-device bitstream accepted")
	}
	p := PartialBitstream("y", "d", other, 100)
	if _, _, err := f.ConfigurePartial(p); err == nil {
		t.Error("cross-device partial bitstream accepted")
	}
}

func TestKindMismatchFullVsPartial(t *testing.T) {
	f := lx155(t)
	full := FullBitstream("f", "d", f.Device(), 100)
	part := PartialBitstream("p", "d", f.Device(), 100)
	if _, _, err := f.ConfigureFull(part); err == nil {
		t.Error("partial bitstream accepted by ConfigureFull")
	}
	if _, _, err := f.ConfigurePartial(full); err == nil {
		t.Error("full bitstream accepted by ConfigurePartial")
	}
}

func TestOversizedDesignRejected(t *testing.T) {
	f := lx155(t)
	bs := FullBitstream("f", "d", f.Device(), f.Device().Slices+1)
	if _, _, err := f.ConfigureFull(bs); err == nil {
		t.Error("oversized design accepted")
	}
}

func TestAcquireReleaseEvict(t *testing.T) {
	f := lx155(t)
	bs := PartialBitstream("p", "k", f.Device(), 1000)
	r, _, err := f.ConfigurePartial(bs)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Acquire(r); err != nil {
		t.Fatal(err)
	}
	if err := f.Acquire(r); err == nil {
		t.Error("double acquire accepted")
	}
	if err := f.Evict(r); err == nil {
		t.Error("evicting busy region accepted")
	}
	if err := f.ReleaseRegion(r); err != nil {
		t.Fatal(err)
	}
	if err := f.ReleaseRegion(r); err == nil {
		t.Error("double release accepted")
	}
	if err := f.Evict(r); err != nil {
		t.Fatal(err)
	}
	if err := f.Evict(r); err == nil {
		t.Error("double evict accepted")
	}
	if f.State().AvailableSlices != f.Device().Slices {
		t.Error("eviction did not free area")
	}
}

func TestFindLoadedReuse(t *testing.T) {
	f := lx155(t)
	bs := PartialBitstream("p", "k", f.Device(), 1000)
	r, _, err := f.ConfigurePartial(bs)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.FindLoaded("p"); got != r {
		t.Error("FindLoaded missed resident idle region")
	}
	f.Acquire(r)
	if got := f.FindLoaded("p"); got != nil {
		t.Error("FindLoaded returned busy region")
	}
	if got := f.FindLoaded("missing"); got != nil {
		t.Error("FindLoaded invented a region")
	}
}

func TestStateString(t *testing.T) {
	f := lx155(t)
	if s := f.State().String(); !strings.Contains(s, "not configured") {
		t.Errorf("idle state = %q", s)
	}
	bs := PartialBitstream("p", "k", f.Device(), 1000)
	f.ConfigurePartial(bs)
	if s := f.State().String(); !strings.Contains(s, "1 configuration") {
		t.Errorf("configured state = %q", s)
	}
}

func TestRegionString(t *testing.T) {
	f := lx155(t)
	bs := PartialBitstream("p", "kern", f.Device(), 1000)
	r, _, _ := f.ConfigurePartial(bs)
	if !strings.Contains(r.String(), "idle") || !strings.Contains(r.String(), "kern") {
		t.Errorf("region String = %q", r.String())
	}
	f.Acquire(r)
	if !strings.Contains(r.String(), "busy") {
		t.Errorf("busy region String = %q", r.String())
	}
}

func TestBitstreamValidate(t *testing.T) {
	var nilBS *Bitstream
	if err := nilBS.Validate(); err == nil {
		t.Error("nil bitstream accepted")
	}
	bad := []Bitstream{
		{},
		{ID: "x"},
		{ID: "x", Device: "d"},
		{ID: "x", Device: "d", Slices: 10},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("bad bitstream %d accepted", i)
		}
	}
	if s := (&Bitstream{ID: "a", Design: "d", Device: "dev", Slices: 1, SizeBytes: 1}).String(); !strings.Contains(s, "full") {
		t.Errorf("String = %q", s)
	}
}

func TestBestFitPolicyOnFabric(t *testing.T) {
	f := lx155(t)
	f.SetPolicy(BestFit)
	bs := PartialBitstream("p", "k", f.Device(), 1000)
	if _, _, err := f.ConfigurePartial(bs); err != nil {
		t.Fatal(err)
	}
}

func TestConfigDelayMatchesBandwidth(t *testing.T) {
	// Virtex-6 configures twice as fast per byte as Virtex-5 in the catalog.
	v5, _ := LookupDevice("XC5VLX330T")
	v6, _ := LookupDevice("XC6VLX365T")
	d5 := ConfigDelay(1e6, v5.ReconfigMBps)
	d6 := ConfigDelay(1e6, v6.ReconfigMBps)
	if d6 >= d5 {
		t.Errorf("v6 delay %v should be below v5 %v", d6, d5)
	}
	_ = sim.TimeZero
}
