package fabric

import (
	"strings"
	"testing"
)

func TestLookupDevice(t *testing.T) {
	d, err := LookupDevice("XC5VLX110T")
	if err != nil {
		t.Fatal(err)
	}
	if d.Slices != 17280 || d.Family != "Virtex-5" {
		t.Errorf("LX110T = %+v", d.FPGACaps)
	}
	if d.BitstreamBytes != int64(17280)*bitstreamBytesPerSlice {
		t.Errorf("bitstream bytes = %d", d.BitstreamBytes)
	}
}

func TestLookupDeviceCaseInsensitive(t *testing.T) {
	if _, err := LookupDevice("xc6vlx365t"); err != nil {
		t.Errorf("lower-case lookup failed: %v", err)
	}
}

func TestLookupDeviceUnknown(t *testing.T) {
	if _, err := LookupDevice("XC9VLX999"); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestDevicesSortedAndValid(t *testing.T) {
	devs := Devices()
	if len(devs) < 8 {
		t.Fatalf("catalog has only %d devices", len(devs))
	}
	for i, d := range devs {
		if err := d.Validate(); err != nil {
			t.Errorf("catalog device %s invalid: %v", d.FPGACaps.Device, err)
		}
		if i > 0 {
			prev := devs[i-1]
			if prev.Family > d.Family || (prev.Family == d.Family && prev.Slices > d.Slices) {
				t.Errorf("catalog not sorted at %d: %s before %s", i, prev.FPGACaps.Device, d.FPGACaps.Device)
			}
		}
	}
}

func TestCaseStudyDevicesPresent(t *testing.T) {
	// The case study depends on: Virtex-5 parts above 24,000 slices for
	// Task1/Task2 and the XC6VLX365T for Task3.
	for _, name := range []string{"XC5VLX155T", "XC5VLX220T", "XC5VLX330T", "XC6VLX365T"} {
		if _, err := LookupDevice(name); err != nil {
			t.Errorf("case-study device missing: %v", err)
		}
	}
	d, _ := LookupDevice("XC5VLX155T")
	if d.Slices < 24000 {
		t.Errorf("LX155T has %d slices; case study requires >24,000", d.Slices)
	}
}

func TestDevicesInFamily(t *testing.T) {
	v5 := DevicesInFamily("virtex-5")
	if len(v5) < 5 {
		t.Fatalf("Virtex-5 family has %d entries", len(v5))
	}
	for _, d := range v5 {
		if !strings.EqualFold(d.Family, "Virtex-5") {
			t.Errorf("wrong family: %s", d.Family)
		}
	}
	for i := 1; i < len(v5); i++ {
		if v5[i-1].Slices > v5[i].Slices {
			t.Error("family list not sorted by slices")
		}
	}
}

func TestSmallestFitting(t *testing.T) {
	// malign needs 18,707 slices → smallest Virtex-5 that fits is LX155T.
	d, err := SmallestFitting("Virtex-5", 18707)
	if err != nil {
		t.Fatal(err)
	}
	if d.FPGACaps.Device != "XC5VLX155T" {
		t.Errorf("smallest fit for 18,707 = %s, want XC5VLX155T", d.FPGACaps.Device)
	}
	// pairalign needs 30,790 → LX220T.
	d, err = SmallestFitting("Virtex-5", 30790)
	if err != nil {
		t.Fatal(err)
	}
	if d.FPGACaps.Device != "XC5VLX220T" {
		t.Errorf("smallest fit for 30,790 = %s, want XC5VLX220T", d.FPGACaps.Device)
	}
	if _, err := SmallestFitting("Virtex-5", 10_000_000); err == nil {
		t.Error("impossible fit accepted")
	}
}
