package fabric

import "testing"

func TestAllocAt(t *testing.T) {
	a := NewAllocator(100)
	if err := a.AllocAt(20, 30); err != nil {
		t.Fatal(err)
	}
	if a.Free() != 70 {
		t.Errorf("Free = %d", a.Free())
	}
	// The claimed range is gone; its neighbours remain.
	if err := a.AllocAt(25, 5); err == nil {
		t.Error("overlapping AllocAt accepted")
	}
	if err := a.AllocAt(0, 20); err != nil {
		t.Errorf("left remainder not allocatable: %v", err)
	}
	if err := a.AllocAt(50, 50); err != nil {
		t.Errorf("right remainder not allocatable: %v", err)
	}
	if a.Free() != 0 {
		t.Errorf("Free = %d, want 0", a.Free())
	}
	if err := a.AllocAt(-1, 5); err == nil {
		t.Error("negative start accepted")
	}
	if err := a.AllocAt(99, 5); err == nil {
		t.Error("overflow accepted")
	}
	if err := a.AllocAt(0, 0); err == nil {
		t.Error("zero length accepted")
	}
}

func TestCompactConsolidatesFreeSpace(t *testing.T) {
	f, err := NewByName("XC5VLX110T") // 17,280 slices
	if err != nil {
		t.Fatal(err)
	}
	dev := f.Device()
	// Create a checkerboard: allocate four 4,000-slice regions, evict two.
	var regions []*Region
	for i := 0; i < 4; i++ {
		bs := PartialBitstream(idFor(i), "k", dev, 4000)
		r, _, err := f.ConfigurePartial(bs)
		if err != nil {
			t.Fatal(err)
		}
		regions = append(regions, r)
	}
	f.Evict(regions[0])
	f.Evict(regions[2])
	// 9,280 free but fragmented: 4,000 + 4,000 + 1,280.
	if f.State().LargestFree >= 8000 {
		t.Fatalf("setup failed: largest free = %d", f.State().LargestFree)
	}
	before := f.Reconfigurations()
	moved, delay, err := f.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 || delay <= 0 {
		t.Fatalf("compaction did nothing: moved=%d delay=%v", moved, delay)
	}
	st := f.State()
	if st.LargestFree != st.AvailableSlices {
		t.Errorf("free space still fragmented: largest %d of %d", st.LargestFree, st.AvailableSlices)
	}
	if len(st.Configurations) != 2 {
		t.Errorf("compaction lost configurations: %v", st.Configurations)
	}
	if f.Reconfigurations() != before+moved {
		t.Error("moved regions not charged as reconfigurations")
	}
	// An 8,000-slice allocation now fits.
	big := PartialBitstream("big", "k", dev, 8000)
	if _, _, err := f.ConfigurePartial(big); err != nil {
		t.Errorf("post-compaction placement failed: %v", err)
	}
}

func idFor(i int) string {
	return string(rune('a'+i)) + "-bs"
}

func TestCompactPinsBusyRegions(t *testing.T) {
	f, _ := NewByName("XC5VLX110T")
	dev := f.Device()
	r1, _, _ := f.ConfigurePartial(PartialBitstream("a", "k", dev, 3000))
	r2, _, _ := f.ConfigurePartial(PartialBitstream("b", "k", dev, 3000))
	r3, _, _ := f.ConfigurePartial(PartialBitstream("c", "k", dev, 3000))
	f.Evict(r1)
	f.Acquire(r2)
	busyStart := r2.Start
	moved, _, err := f.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if r2.Start != busyStart {
		t.Error("busy region moved")
	}
	if moved == 0 {
		t.Error("idle region behind the busy one should have moved")
	}
	if r3.Start >= busyStart+3000+3000 {
		t.Errorf("r3 not repacked: start=%d", r3.Start)
	}
}

func TestCompactNoOpWhenDense(t *testing.T) {
	f, _ := NewByName("XC5VLX110T")
	dev := f.Device()
	f.ConfigurePartial(PartialBitstream("a", "k", dev, 3000))
	f.ConfigurePartial(PartialBitstream("b", "k", dev, 3000))
	moved, delay, err := f.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 || delay != 0 {
		t.Errorf("dense fabric compacted anyway: %d, %v", moved, delay)
	}
}

func TestSecondaryResourceAccounting(t *testing.T) {
	f, _ := NewByName("XC5VLX110T") // 5,328 Kb BRAM, 64 DSP
	dev := f.Device()
	bs1 := PartialBitstream("m1", "k", dev, 1000)
	bs1.BRAMKb = 4000
	bs1.DSPSlices = 40
	if _, _, err := f.ConfigurePartial(bs1); err != nil {
		t.Fatal(err)
	}
	st := f.State()
	if st.AvailableBRAMKb != 1328 || st.AvailableDSP != 24 {
		t.Errorf("availability = %d Kb / %d DSP", st.AvailableBRAMKb, st.AvailableDSP)
	}
	// A second BRAM-hungry configuration must be refused even though
	// plenty of slices remain.
	bs2 := PartialBitstream("m2", "k", dev, 1000)
	bs2.BRAMKb = 2000
	if _, _, err := f.ConfigurePartial(bs2); err == nil {
		t.Error("BRAM overcommit accepted")
	}
	bs3 := PartialBitstream("m3", "k", dev, 1000)
	bs3.DSPSlices = 30
	if _, _, err := f.ConfigurePartial(bs3); err == nil {
		t.Error("DSP overcommit accepted")
	}
	// Evicting the first frees the budget.
	r := f.FindLoaded("m1")
	if err := f.Evict(r); err != nil {
		t.Fatal(err)
	}
	if _, _, err := f.ConfigurePartial(bs2); err != nil {
		t.Errorf("post-evict placement failed: %v", err)
	}
}

func TestFullReconfigResetsSecondaryBudget(t *testing.T) {
	f, _ := NewByName("XC5VLX110T")
	dev := f.Device()
	p := PartialBitstream("p", "k", dev, 1000)
	p.BRAMKb = 5000
	if _, _, err := f.ConfigurePartial(p); err != nil {
		t.Fatal(err)
	}
	full := FullBitstream("f", "k", dev, 2000)
	full.BRAMKb = 5000 // fits only if the partial's budget was reclaimed
	if _, _, err := f.ConfigureFull(full); err != nil {
		t.Errorf("full reconfiguration did not reset secondary budget: %v", err)
	}
	if f.State().AvailableBRAMKb != dev.BRAMKb-5000 {
		t.Errorf("available BRAM = %d", f.State().AvailableBRAMKb)
	}
}
