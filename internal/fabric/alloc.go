package fabric

import (
	"fmt"
	"sort"
)

// extent is a contiguous range of slice addresses [Start, Start+Len).
type extent struct {
	Start int
	Len   int
}

// Allocator hands out contiguous slice ranges from a 1-D slice address
// space, the standard abstraction for slot-based dynamic partial
// reconfiguration. Contiguity matters: it makes external fragmentation a
// real phenomenon, which the partial-reconfiguration experiments measure.
type Allocator struct {
	total int
	free  []extent // sorted by Start, coalesced
}

// NewAllocator creates an allocator over [0, total) slices.
func NewAllocator(total int) *Allocator {
	if total <= 0 {
		panic(fmt.Sprintf("fabric: allocator needs positive area, got %d", total))
	}
	return &Allocator{total: total, free: []extent{{0, total}}}
}

// Total returns the size of the managed address space.
func (a *Allocator) Total() int { return a.total }

// Free returns the total unallocated slices (possibly fragmented).
func (a *Allocator) Free() int {
	n := 0
	for _, e := range a.free {
		n += e.Len
	}
	return n
}

// LargestFree returns the size of the largest contiguous free range — the
// biggest region that can actually be allocated right now.
func (a *Allocator) LargestFree() int {
	max := 0
	for _, e := range a.free {
		if e.Len > max {
			max = e.Len
		}
	}
	return max
}

// Fragmentation returns 1 - largestFree/totalFree: 0 when all free space is
// one contiguous block, approaching 1 when free space is shattered. With no
// free space it returns 0.
func (a *Allocator) Fragmentation() float64 {
	free := a.Free()
	if free == 0 {
		return 0
	}
	return 1 - float64(a.LargestFree())/float64(free)
}

// Alloc reserves n contiguous slices first-fit and returns the start
// address. It fails when no contiguous run of n slices exists, even if the
// total free area would suffice (external fragmentation).
func (a *Allocator) Alloc(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("fabric: allocation of %d slices", n)
	}
	for i, e := range a.free {
		if e.Len < n {
			continue
		}
		start := e.Start
		if e.Len == n {
			a.free = append(a.free[:i], a.free[i+1:]...)
		} else {
			a.free[i] = extent{e.Start + n, e.Len - n}
		}
		return start, nil
	}
	return 0, fmt.Errorf("fabric: no contiguous run of %d slices (free %d, largest %d)", n, a.Free(), a.LargestFree())
}

// AllocBestFit reserves n contiguous slices from the smallest free extent
// that fits, which reduces fragmentation for skewed size mixes. Used by the
// allocation-policy ablation.
func (a *Allocator) AllocBestFit(n int) (int, error) {
	if n <= 0 {
		return 0, fmt.Errorf("fabric: allocation of %d slices", n)
	}
	best := -1
	for i, e := range a.free {
		if e.Len >= n && (best < 0 || e.Len < a.free[best].Len) {
			best = i
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("fabric: no contiguous run of %d slices (free %d, largest %d)", n, a.Free(), a.LargestFree())
	}
	e := a.free[best]
	start := e.Start
	if e.Len == n {
		a.free = append(a.free[:best], a.free[best+1:]...)
	} else {
		a.free[best] = extent{e.Start + n, e.Len - n}
	}
	return start, nil
}

// AllocAt claims the exact range [start, start+n), failing if any part of
// it is already allocated. Compaction uses it to pin busy regions in place.
func (a *Allocator) AllocAt(start, n int) error {
	if n <= 0 || start < 0 || start+n > a.total {
		return fmt.Errorf("fabric: AllocAt invalid range [%d,%d)", start, start+n)
	}
	for i, e := range a.free {
		if e.Start <= start && start+n <= e.Start+e.Len {
			// Split the hosting extent into up to two remainders.
			var repl []extent
			if start > e.Start {
				repl = append(repl, extent{e.Start, start - e.Start})
			}
			if start+n < e.Start+e.Len {
				repl = append(repl, extent{start + n, e.Start + e.Len - (start + n)})
			}
			a.free = append(a.free[:i], append(repl, a.free[i+1:]...)...)
			return nil
		}
	}
	return fmt.Errorf("fabric: range [%d,%d) not free", start, start+n)
}

// Release returns [start, start+n) to the free pool, coalescing with
// adjacent free extents. Releasing a range that overlaps free space is a
// programming bug and returns an error.
func (a *Allocator) Release(start, n int) error {
	if n <= 0 || start < 0 || start+n > a.total {
		return fmt.Errorf("fabric: release of invalid range [%d,%d)", start, start+n)
	}
	for _, e := range a.free {
		if start < e.Start+e.Len && e.Start < start+n {
			return fmt.Errorf("fabric: release [%d,%d) overlaps free extent [%d,%d)", start, start+n, e.Start, e.Start+e.Len)
		}
	}
	a.free = append(a.free, extent{start, n})
	sort.Slice(a.free, func(i, j int) bool { return a.free[i].Start < a.free[j].Start })
	// Coalesce neighbours.
	out := a.free[:1]
	for _, e := range a.free[1:] {
		last := &out[len(out)-1]
		if last.Start+last.Len == e.Start {
			last.Len += e.Len
		} else {
			out = append(out, e)
		}
	}
	a.free = out
	return nil
}

// Reset frees the entire address space (what a full reconfiguration does).
func (a *Allocator) Reset() {
	a.free = []extent{{0, a.total}}
}
